// Poisoning reproduces the §3.2 active experiment interactively: pick a
// target AS, announce a PEERING prefix via every mux, and repeatedly
// poison the target's chosen next hop to walk down its preference
// order, printing each discovered route and whether the order respects
// the Gao–Rexford properties.
//
// Usage: go run ./examples/poisoning [-seed N] [-targets N]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"routelab/internal/scenario"
)

func main() {
	seed := flag.Int64("seed", 42, "scenario seed")
	targets := flag.Int("targets", 5, "number of targets to probe")
	flag.Parse()

	cfg := scenario.TestConfig()
	cfg.Seed = *seed
	s, err := scenario.Build(cfg, func(f string, a ...any) {
		fmt.Fprintf(os.Stderr, f+"\n", a...)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "poisoning:", err)
		os.Exit(1)
	}

	fmt.Printf("PEERING testbed: origin %s, muxes %v, prefixes %v\n\n",
		s.Testbed.Origin, s.Testbed.Muxes, s.Testbed.Prefixes)

	runs := s.RunAlternatesCampaign(rand.New(rand.NewSource(*seed)))
	if len(runs) > *targets {
		runs = runs[:*targets]
	}
	for _, run := range runs {
		x := s.Topo.AS(run.Target)
		fmt.Printf("target %s (%s): %d routes discovered with %d announcements\n",
			run.Target, x.Class, len(run.Steps), run.Announcements)
		for i, st := range run.Steps {
			rel := s.Context.Graph.Rel(run.Target, st.Route.NextHop)
			fmt.Printf("  #%d via %-7s inferred-rel=%-8s path=[%s]",
				i+1, st.Route.NextHop, rel, st.Route.Path)
			if len(st.PoisonedSoFar) > 0 {
				fmt.Printf("  (poisoned: %v)", st.PoisonedSoFar)
			}
			fmt.Println()
		}
		verdict := s.Context.ClassifyAlternates(run)
		fmt.Printf("  preference order: %s\n\n", verdict)
	}
}
