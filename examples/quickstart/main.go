// Quickstart: build a tiny hand-made Internet, converge BGP over it,
// poison an announcement the way the PEERING experiments do, and judge
// a routing decision against the Gao–Rexford model — the core routelab
// API tour in under a hundred lines.
package main

import (
	"fmt"

	"routelab/internal/asn"
	"routelab/internal/bgp"
	"routelab/internal/gaorexford"
	"routelab/internal/relgraph"
	"routelab/internal/topology"
)

func main() {
	// A five-AS Internet: two providers above an origin, one of them
	// also reachable via a peer link.
	//
	//	      t1 ———— t2     (peers)
	//	     /  \      \
	//	   c1    c2     \
	//	     \  /        \
	//	      org ——————(peer)
	b := topology.NewBuilder()
	t1 := b.AS(10, topology.Tier1, "").ASN
	t2 := b.AS(20, topology.Tier1, "").ASN
	c1 := b.AS(31, topology.SmallISP, "").ASN
	c2 := b.AS(32, topology.SmallISP, "").ASN
	org := b.AS(40, topology.Stub, "").ASN
	b.Link(t1, t2, topology.RelPeer)
	b.Link(c1, t1, topology.RelProvider)
	b.Link(c2, t1, topology.RelProvider)
	b.Link(org, c1, topology.RelProvider)
	b.Link(org, c2, topology.RelProvider)
	b.Link(org, t2, topology.RelPeer)
	topo := b.Build()
	prefix := topo.AS(org).Prefixes[0]

	// Converge ground-truth routing for the origin's prefix.
	engine := bgp.New(topo, 1)
	comp := engine.NewComputation(prefix)
	comp.Announce(bgp.Announcement{Origin: org})
	comp.Converge()
	fmt.Println("== converged routes toward", prefix, "==")
	for _, a := range topo.ASNs() {
		if rt, ok := comp.Best(a); ok && !rt.IsOrigin() {
			step, _ := comp.Step(a)
			fmt.Printf("  %-5s via %-5s rel=%-8s path=[%s]  decided by: %s\n",
				a, rt.NextHop, rt.FromRel, rt.Path, step)
		}
	}

	// Poison t1: the origin announces ORG {t1} ORG, so t1's BGP loop
	// prevention drops the route and everyone re-routes around it.
	comp.Announce(bgp.Announcement{Origin: org, Poisoned: []asn.ASN{t1}})
	comp.Converge()
	fmt.Println("\n== after poisoning", t1, "==")
	for _, a := range topo.ASNs() {
		if rt, ok := comp.Best(a); ok && !rt.IsOrigin() {
			fmt.Printf("  %-5s via %-5s path=[%s]\n", a, rt.NextHop, rt.Path)
		}
	}
	if _, ok := comp.Best(t1); !ok {
		fmt.Printf("  %-5s (no route — poisoned)\n", t1)
	}

	// Judge t2's original decision against the Gao-Rexford model the
	// way the paper does: is the chosen neighbor the best relationship
	// class available, and is the path as short as the model's?
	graph := relgraph.FromTopology(topo)
	model := gaorexford.Compute(graph, org)
	fmt.Println("\n== model view at", t2, "toward", org, "==")
	fmt.Printf("  best class rank: %d (0=customer, 1=peer, 2=provider)\n", model.BestRank(t2))
	fmt.Printf("  shortest policy-compliant length: %d\n", model.ShortestLen(t2))
	fmt.Printf("  shortest model path: %v\n", model.ShortestPath(graph, t2))
}
