// Policyaudit generates a small synthetic Internet, runs the full
// measurement-and-inference pipeline, and audits ONE autonomous system:
// every routing decision it was observed making, how the Gao–Rexford
// model judges each decision, and which refinement (siblings, complex
// relationships, prefix-specific policies) explains the deviations —
// the per-AS view of the paper's Figure 1 machinery.
//
// Usage: go run ./examples/policyaudit [-seed N] [-as ASN]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"routelab/internal/asn"
	"routelab/internal/classify"
	"routelab/internal/scenario"
)

func main() {
	seed := flag.Int64("seed", 42, "scenario seed")
	target := flag.Uint("as", 0, "ASN to audit (0 = busiest decision maker)")
	flag.Parse()

	cfg := scenario.TestConfig()
	cfg.Seed = *seed
	s, err := scenario.Build(cfg, func(f string, a ...any) {
		fmt.Fprintf(os.Stderr, f+"\n", a...)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "policyaudit:", err)
		os.Exit(1)
	}

	// Group decisions by the AS that made them.
	byAS := map[asn.ASN][]classify.Decision{}
	for _, d := range s.Decisions() {
		byAS[d.At] = append(byAS[d.At], d)
	}
	audited := asn.ASN(*target)
	if audited.IsZero() {
		for a, ds := range byAS {
			if audited.IsZero() || len(ds) > len(byAS[audited]) {
				audited = a
			}
		}
	}
	ds := byAS[audited]
	if len(ds) == 0 {
		fmt.Fprintf(os.Stderr, "policyaudit: no observed decisions for %s\n", audited)
		os.Exit(1)
	}

	x := s.Topo.AS(audited)
	fmt.Printf("audit of %s (%s, %s): %d observed decisions\n",
		audited, x.Class, x.HomeCountry, len(ds))
	fmt.Printf("ground-truth policies: domestic-bias=%v research-pref=%v selective-prefixes=%d\n\n",
		x.DomesticBias, x.ResearchPreference, len(x.SelectiveExport))

	for _, ref := range classify.Refinements {
		bd := s.Context.Breakdown(ds, ref)
		fmt.Printf("%-8s", ref)
		for _, cat := range classify.Categories {
			fmt.Printf("  %s=%d", cat, bd[cat])
		}
		fmt.Println()
	}

	// Show the worst offenders: destinations this AS deviates toward.
	fmt.Println("\ndeviating decisions (Simple model):")
	type row struct {
		d   classify.Decision
		cat classify.Category
	}
	var rows []row
	for _, d := range ds {
		if cat := s.Context.Classify(d, classify.Simple); cat.IsViolation() {
			rows = append(rows, row{d, cat})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].d.DstAS < rows[j].d.DstAS })
	shown := 0
	for _, r := range rows {
		if shown >= 10 {
			fmt.Printf("  ... and %d more\n", len(rows)-shown)
			break
		}
		shown++
		explained := "unexplained"
		if !s.Context.Classify(r.d, classify.All1).IsViolation() {
			explained = "explained by All-1"
		}
		fmt.Printf("  toward %s prefix %s via %s: %s (%s)\n",
			r.d.DstAS, r.d.Prefix, r.d.Via, r.cat, explained)
	}
	if len(rows) == 0 {
		fmt.Println("  none — a model citizen")
	}
}
