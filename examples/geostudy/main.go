// Geostudy runs the paper's §6 geography analyses on a synthetic
// Internet: the continental/intercontinental decision split (Figure 3),
// the domestic-path preference attribution (Table 3), and the
// undersea-cable attribution (Table 4) — plus the ground-truth answer
// key the real study never had.
//
// Usage: go run ./examples/geostudy [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"routelab/internal/classify"
	"routelab/internal/geo"
	"routelab/internal/scenario"
	"routelab/internal/stats"
	"routelab/internal/topology"
)

func main() {
	seed := flag.Int64("seed", 42, "scenario seed")
	flag.Parse()

	cfg := scenario.TestConfig()
	cfg.Seed = *seed
	s, err := scenario.Build(cfg, func(f string, a ...any) {
		fmt.Fprintf(os.Stderr, f+"\n", a...)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "geostudy:", err)
		os.Exit(1)
	}

	gb := s.Context.GeoClassify(s.Measurements, classify.Simple)
	fmt.Println("== decision breakdown by geography (Simple model) ==")
	emit := func(label string, counts map[classify.Category]int) {
		total := 0
		for _, n := range counts {
			total += n
		}
		if total == 0 {
			return
		}
		fmt.Printf("%-18s n=%-6d", label, total)
		for _, cat := range classify.Categories {
			fmt.Printf("  %s %5.1f%%", cat, stats.Pct(counts[cat], total))
		}
		fmt.Println()
	}
	for _, cont := range geo.Continents {
		if pc, ok := gb.PerContinent[cont]; ok {
			emit(cont.Name(), pc)
		}
	}
	emit("all continental", gb.Continental)
	emit("intercontinental", gb.Intercontinental)

	fmt.Println("\n== domestic-path preference (Table 3) ==")
	for _, r := range s.Context.DomesticAnalysis(s.Measurements, classify.Simple) {
		fmt.Printf("%-14s NonBest/Short=%-4d explained=%-4d (%.0f%%)\n",
			r.Continent.Name(), r.NonBestShort, r.Explained,
			stats.Pct(r.Explained, r.NonBestShort))
	}

	fmt.Println("\n== undersea cables (Table 4) ==")
	st := s.Context.CableAnalysis(s.Measurements, classify.Simple)
	fmt.Printf("cable ASes on %.1f%% of measured paths\n", stats.Pct(st.PathsWithCable, st.TotalPaths))
	for _, r := range st.Rows {
		if r.Category.IsViolation() {
			fmt.Printf("%-14s %d/%d decisions involve a cable AS\n",
				r.Category, r.WithCable, r.Total)
		}
	}

	// The answer key: ground-truth policies behind the deviations —
	// something only a simulator can print.
	fmt.Println("\n== ground-truth answer key ==")
	domestic, research, selective := 0, 0, 0
	for _, a := range s.Topo.ASNs() {
		x := s.Topo.AS(a)
		if x.DomesticBias {
			domestic++
		}
		if x.ResearchPreference {
			research++
		}
		selective += len(x.SelectiveExport)
	}
	fmt.Printf("ASes with domestic bias: %d; research preference: %d; selective prefixes: %d\n",
		domestic, research, selective)
	fmt.Printf("undersea cable operators: %d\n", len(s.Topo.ASesOfClass(topology.CableOp)))
}
