// Package routelab_test holds the benchmark harness: one benchmark per
// table and figure of the paper's evaluation (regenerating the same
// rows/series), plus micro-benchmarks of the substrates they stand on.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Any run that executes at least one benchmark also writes
// BENCH_routelab.json — a machine-readable emission (schema
// routelab-bench/v1, see internal/obs) with per-benchmark ns/op and
// allocs/op plus the obs counters the benchmarked code recorded.
// cmd/benchcheck validates the file; CI's bench-smoke job runs both and
// archives the artifact, so the perf trajectory is comparable across
// commits. Set ROUTELAB_BENCH_JSON to redirect the emission.
//
// The per-experiment benchmarks share one lazily-built scenario (the
// expensive part — topology generation plus two full routing
// convergences — is measured separately by BenchmarkScenarioBuild at a
// reduced scale).
package routelab_test

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"

	"routelab/internal/asn"
	"routelab/internal/bgp"
	"routelab/internal/classify"
	"routelab/internal/experiments"
	"routelab/internal/gaorexford"
	"routelab/internal/obs"
	"routelab/internal/scenario"
	"routelab/internal/service"
	"routelab/internal/topology"
	"routelab/internal/whatif"
	"routelab/internal/wire"
)

// TestMain writes the BENCH_routelab.json emission after the run when
// any benchmark recorded a result (plain `go test` writes nothing).
func TestMain(m *testing.M) {
	code := m.Run()
	if err := writeBenchReport(); err != nil {
		fmt.Fprintln(os.Stderr, "bench: emission failed:", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

var (
	benchRecMu   sync.Mutex
	benchRecords = map[string]obs.BenchResult{}
)

// measured records one benchmark invocation for the JSON emission:
//
//	defer measured(b)()
//
// placed AFTER setup (and any ResetTimer), so the alloc window excludes
// shared fixtures. The benchmark framework may invoke a benchmark
// several times with growing b.N; the record with the largest N (the
// one the framework reports) wins.
func measured(b *testing.B) func() {
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	return func() {
		if b.Skipped() || b.N == 0 {
			return
		}
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		elapsed := b.Elapsed()
		if elapsed <= 0 {
			elapsed = 1 // clamp: sub-ns ops still validate as timed
		}
		rec := obs.BenchResult{
			Name:        b.Name(),
			N:           b.N,
			NsPerOp:     float64(elapsed.Nanoseconds()) / float64(b.N),
			AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(b.N),
			BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(b.N),
		}
		benchRecMu.Lock()
		defer benchRecMu.Unlock()
		if prev, ok := benchRecords[rec.Name]; !ok || rec.N >= prev.N {
			benchRecords[rec.Name] = rec
		}
	}
}

// writeBenchReport assembles and validates the emission; no benchmarks
// recorded means nothing to write (not an error).
func writeBenchReport() error {
	benchRecMu.Lock()
	defer benchRecMu.Unlock()
	if len(benchRecords) == 0 {
		return nil
	}
	rep := obs.NewBenchReport()
	for _, rec := range benchRecords {
		rep.Benchmarks = append(rep.Benchmarks, rec)
	}
	sort.Slice(rep.Benchmarks, func(i, j int) bool {
		return rep.Benchmarks[i].Name < rep.Benchmarks[j].Name
	})
	rep.Metrics = obs.Snap()
	path := os.Getenv("ROUTELAB_BENCH_JSON")
	if path == "" {
		path = "BENCH_routelab.json"
	}
	if err := rep.WriteFile(path); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bench: %d results written to %s\n", len(rep.Benchmarks), path)
	return nil
}

var (
	benchOnce sync.Once
	benchScen *scenario.Scenario
	benchErr  error
)

// benchScenario builds the shared evaluation scenario once. The build
// error (not just its occurrence) is cached alongside the scenario, so
// every subsequent benchmark reports WHY the build failed instead of
// skipping silently.
func benchScenario(b *testing.B) *scenario.Scenario {
	b.Helper()
	benchOnce.Do(func() {
		cfg := scenario.TestConfig()
		cfg.Topology.Scale = 0.2
		cfg.NumProbes = 400
		cfg.TracesTarget = 5000
		benchScen, benchErr = scenario.Build(cfg, nil)
	})
	if benchErr != nil {
		b.Skipf("scenario build failed: %v", benchErr)
	}
	return benchScen
}

// BenchmarkTable1Probes regenerates Table 1 (probe distribution by AS
// class).
func BenchmarkTable1Probes(b *testing.B) {
	s := benchScenario(b)
	b.ResetTimer()
	defer measured(b)()
	for i := 0; i < b.N; i++ {
		experiments.Table1(io.Discard, s)
	}
}

// BenchmarkFigure1Breakdown regenerates Figure 1 (the decision
// classification across all seven refinement columns).
func BenchmarkFigure1Breakdown(b *testing.B) {
	s := benchScenario(b)
	b.ResetTimer()
	defer measured(b)()
	for i := 0; i < b.N; i++ {
		experiments.Figure1(io.Discard, s)
	}
}

// BenchmarkTable2Magnet regenerates Table 2 (the magnet/anycast
// experiment and its decision-step classification).
func BenchmarkTable2Magnet(b *testing.B) {
	s := benchScenario(b)
	b.ResetTimer()
	defer measured(b)()
	for i := 0; i < b.N; i++ {
		experiments.Table2(io.Discard, s, rand.New(rand.NewSource(int64(i))))
	}
}

// BenchmarkFigure2Skew regenerates Figure 2 (violation skew CDFs).
func BenchmarkFigure2Skew(b *testing.B) {
	s := benchScenario(b)
	b.ResetTimer()
	defer measured(b)()
	for i := 0; i < b.N; i++ {
		experiments.Figure2(io.Discard, s)
	}
}

// BenchmarkFigure3Continents regenerates Figure 3 (geographic
// breakdown).
func BenchmarkFigure3Continents(b *testing.B) {
	s := benchScenario(b)
	b.ResetTimer()
	defer measured(b)()
	for i := 0; i < b.N; i++ {
		experiments.Figure3(io.Discard, s)
	}
}

// BenchmarkTable3Domestic regenerates Table 3 (domestic-path
// preference attribution).
func BenchmarkTable3Domestic(b *testing.B) {
	s := benchScenario(b)
	b.ResetTimer()
	defer measured(b)()
	for i := 0; i < b.N; i++ {
		experiments.Table3(io.Discard, s)
	}
}

// BenchmarkTable4Cables regenerates Table 4 (undersea-cable
// attribution).
func BenchmarkTable4Cables(b *testing.B) {
	s := benchScenario(b)
	b.ResetTimer()
	defer measured(b)()
	for i := 0; i < b.N; i++ {
		experiments.Table4(io.Discard, s)
	}
}

// BenchmarkAlternateRoutes regenerates the §4.4 alternate-route
// discovery campaign (iterated poisoning against every observed
// target).
func BenchmarkAlternateRoutes(b *testing.B) {
	s := benchScenario(b)
	b.ResetTimer()
	defer measured(b)()
	for i := 0; i < b.N; i++ {
		experiments.Alternates(io.Discard, s, rand.New(rand.NewSource(int64(i))))
	}
}

// BenchmarkScenarioBuild measures the end-to-end cost of assembling a
// (reduced-scale) scenario — topology generation, two full routing
// convergences, five feed snapshots, inference, and the traceroute
// campaign — on the serial reference path (RoutingWorkers=1).
func BenchmarkScenarioBuild(b *testing.B) {
	benchmarkScenarioBuild(b, 1)
}

// BenchmarkScenarioBuildParallel is the same build with the worker pool
// at GOMAXPROCS; the ratio to BenchmarkScenarioBuild is the end-to-end
// parallel speedup.
func BenchmarkScenarioBuildParallel(b *testing.B) {
	benchmarkScenarioBuild(b, 0)
}

func benchmarkScenarioBuild(b *testing.B, workers int) {
	defer measured(b)()
	cfg := scenario.TestConfig()
	cfg.NumProbes = 120
	cfg.TracesTarget = 1200
	cfg.RoutingWorkers = workers
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := scenario.Build(cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate micro-benchmarks ---------------------------------------

// BenchmarkConvergePrefix measures one prefix's route-vector
// convergence over the full-size topology (the unit of work behind
// every experiment).
func BenchmarkConvergePrefix(b *testing.B) {
	topo := topology.Generate(1, topology.DefaultConfig())
	engine := bgp.New(topo, 1)
	prefixes := topo.OriginatedPrefixes()
	b.ResetTimer()
	defer measured(b)()
	for i := 0; i < b.N; i++ {
		p := prefixes[i%len(prefixes)]
		c := engine.NewComputation(p)
		c.Announce(bgp.Announcement{Origin: topo.OriginOf(p)})
		c.Converge()
	}
}

// BenchmarkPoisonReconverge measures the incremental reconvergence
// after a poisoned announcement — the inner loop of the §3.2
// experiments.
func BenchmarkPoisonReconverge(b *testing.B) {
	topo := topology.Generate(1, topology.TestConfig())
	engine := bgp.New(topo, 1)
	peeringAS := topo.Names["peering"]
	p := topo.AS(peeringAS).Prefixes[0]
	mux := topo.Names["mux-0"]
	b.ResetTimer()
	defer measured(b)()
	for i := 0; i < b.N; i++ {
		c := engine.NewComputation(p)
		c.Announce(bgp.Announcement{Origin: peeringAS})
		c.Converge()
		c.Announce(bgp.Announcement{Origin: peeringAS, Poisoned: []asn.ASN{mux}})
		c.Converge()
	}
}

// BenchmarkForkReconverge measures the same poisoned reconvergence as
// BenchmarkPoisonReconverge, but starting from a copy-on-write Fork of
// one shared converged base instead of rebuilding and re-converging a
// fresh computation per iteration — the campaign shape after ISSUE 5.
// The ratio to BenchmarkPoisonReconverge is the fork speedup.
func BenchmarkForkReconverge(b *testing.B) {
	topo := topology.Generate(1, topology.TestConfig())
	engine := bgp.New(topo, 1)
	peeringAS := topo.Names["peering"]
	p := topo.AS(peeringAS).Prefixes[0]
	mux := topo.Names["mux-0"]
	base := engine.NewComputation(p)
	base.Announce(bgp.Announcement{Origin: peeringAS})
	base.Converge()
	base.Freeze()
	b.ResetTimer()
	defer measured(b)()
	for i := 0; i < b.N; i++ {
		c := base.Fork()
		c.Announce(bgp.Announcement{Origin: peeringAS, Poisoned: []asn.ASN{mux}})
		c.Converge()
	}
}

// BenchmarkWhatIfDelta measures one what-if evaluation the engine's way:
// fork the shared frozen converged base, apply a compiled delta (an
// in-use origin uplink failing), re-converge incrementally, and diff —
// the unit of work behind every POST /v1/whatif entry.
func BenchmarkWhatIfDelta(b *testing.B) {
	base, cd, _, _ := whatIfBenchFixture(b)
	b.ResetTimer()
	defer measured(b)()
	for i := 0; i < b.N; i++ {
		if _, err := whatif.Eval(base, cd); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWhatIfRebuild evaluates the same delta the pre-fork way: a
// from-scratch computation per iteration (announce + full convergence)
// mutated and diffed against the same frozen base. The ratio to
// BenchmarkWhatIfDelta is the incremental-engine speedup cmd/benchcheck
// gates with -min-whatif-speedup.
func BenchmarkWhatIfRebuild(b *testing.B) {
	base, cd, engine, origin := whatIfBenchFixture(b)
	p := base.Prefix()
	b.ResetTimer()
	defer measured(b)()
	for i := 0; i < b.N; i++ {
		c := engine.NewComputation(p)
		c.Announce(bgp.Announcement{Origin: origin})
		c.Converge()
		if _, err := whatif.EvalOn(c, base, cd); err != nil {
			b.Fatal(err)
		}
	}
}

// whatIfBenchFixture builds the shared what-if benchmark world: the
// test topology's peering origin announcing its prefix, converged and
// frozen, plus a compiled link-failure delta on the origin's mux-0
// uplink (a link carrying live best routes, so the reconvergence does
// real work).
func whatIfBenchFixture(b *testing.B) (*bgp.Computation, *whatif.Compiled, *bgp.Engine, asn.ASN) {
	b.Helper()
	topo := topology.Generate(1, topology.TestConfig())
	engine := bgp.New(topo, 1)
	origin := topo.Names["peering"]
	mux := topo.Names["mux-0"]
	cd, err := whatif.Compile(whatif.Delta{
		Kind: whatif.LinkFailure,
		A:    origin.String(),
		B:    mux.String(),
	}, topo, origin)
	if err != nil {
		b.Fatal(err)
	}
	base := engine.NewComputation(topo.AS(origin).Prefixes[0])
	base.Announce(bgp.Announcement{Origin: origin})
	base.Converge()
	base.Freeze()
	return base, cd, engine, origin
}

// BenchmarkWireUpdateRoundTrip measures RFC 4271 UPDATE encode+decode.
func BenchmarkWireUpdateRoundTrip(b *testing.B) {
	u := wire.Update{
		Origin:  wire.OriginIGP,
		ASPath:  asn.PathFromASNs(3356, 174, 65000).PrependSet([]asn.ASN{64512, 64513}).Prepend(3356),
		NextHop: asn.AddrFrom4(192, 0, 2, 1),
		NLRI: []asn.Prefix{
			asn.NewPrefix(asn.AddrFrom4(198, 51, 100, 0), 24),
			asn.NewPrefix(asn.AddrFrom4(203, 0, 113, 0), 25),
		},
	}
	var buf []byte
	b.ResetTimer()
	b.ReportAllocs()
	defer measured(b)()
	for i := 0; i < b.N; i++ {
		buf = u.Encode(buf[:0])
		if _, err := wire.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClassifyDecision measures a single decision classification
// under the combined All-1 refinement (model caches warm).
func BenchmarkClassifyDecision(b *testing.B) {
	s := benchScenario(b)
	ds := s.Decisions()
	if len(ds) == 0 {
		b.Skip("no decisions")
	}
	// Warm caches.
	for _, d := range ds[:min(len(ds), 256)] {
		s.Context.Classify(d, classify.All1)
	}
	b.ResetTimer()
	defer measured(b)()
	for i := 0; i < b.N; i++ {
		s.Context.Classify(ds[i%len(ds)], classify.All1)
	}
}

// BenchmarkPathPrediction measures the path-predictor extension over the
// campaign's measured paths.
func BenchmarkPathPrediction(b *testing.B) {
	s := benchScenario(b)
	b.ResetTimer()
	defer measured(b)()
	for i := 0; i < b.N; i++ {
		experiments.Prediction(io.Discard, s)
	}
}

// BenchmarkGaoRexfordCompute measures one destination's model
// computation over the inferred full-scale-style graph.
func BenchmarkGaoRexfordCompute(b *testing.B) {
	s := benchScenario(b)
	ds := s.Decisions()
	if len(ds) == 0 {
		b.Skip("no decisions")
	}
	b.ResetTimer()
	defer measured(b)()
	for i := 0; i < b.N; i++ {
		gaorexford.Compute(s.Context.Graph, ds[i%len(ds)].DstAS)
	}
}

// BenchmarkServeClassify measures the /v1/classify serve path through
// the full handler stack — mux dispatch, obs middleware, admission
// gate, response cache, JSON marshal. The warm case replays one hot
// query (a cache hit returns the stored bytes); the cold case rotates
// trace ids through a 1-entry cache so every request classifies and
// marshals afresh.
func BenchmarkServeClassify(b *testing.B) {
	s := benchScenario(b)
	b.Run("warm", func(b *testing.B) {
		srv := service.New(s, service.Config{})
		h := srv.Handler()
		url := fmt.Sprintf("/v1/classify?trace=%d", s.Measurements[0].TraceID)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		if rec.Code != http.StatusOK {
			b.Fatalf("prime: status %d", rec.Code)
		}
		b.ResetTimer()
		defer measured(b)()
		for i := 0; i < b.N; i++ {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d", rec.Code)
			}
		}
	})
	b.Run("cold", func(b *testing.B) {
		srv := service.New(s, service.Config{CacheSize: 1})
		h := srv.Handler()
		if len(s.Measurements) < 2 {
			b.Skip("need two measurements to defeat the cache")
		}
		b.ResetTimer()
		defer measured(b)()
		for i := 0; i < b.N; i++ {
			// Consecutive iterations use different trace ids, so the
			// 1-entry LRU never holds the one being asked for.
			trace := s.Measurements[i%len(s.Measurements)].TraceID
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", fmt.Sprintf("/v1/classify?trace=%d", trace), nil))
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d", rec.Code)
			}
		}
	})
}
