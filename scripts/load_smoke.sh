#!/usr/bin/env bash
# load_smoke.sh — end-to-end smoke test of the multi-scenario fleet and
# the load harness.
#
# Boots routelabd in fleet mode on the checked-in corpus
# (-scenario-dir scenarios; registration is cheap, builds are lazy),
# admits one extra scenario over POST /v1/scenarios, drives the two tiny
# worlds (smoke, smoke-alt) with cmd/routeload on a small request
# budget, and gates the routelab-load/v1 emission with cmd/loadcheck:
# zero errors allowed, and a deliberately lax p99 tripwire (this is a
# blowup detector, not a latency SLO — CI machines vary). Finishes with
# a SIGTERM drain check. CI's load-smoke job runs this; locally:
# make load-smoke.
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR="${ROUTELABD_ADDR:-localhost:18090}"
OUT="${LOAD_OUT:-LOAD_routelab.json}"
WORKDIR="$(mktemp -d)"
LOG="$WORKDIR/routelabd.log"
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT

echo "==> building"
go build -o "$WORKDIR/routelabd" ./cmd/routelabd
go build -o "$WORKDIR/routeload" ./cmd/routeload
go build -o "$WORKDIR/loadcheck" ./cmd/loadcheck
go build -o "$WORKDIR/apicheck" ./cmd/apicheck

echo "==> starting routelabd fleet on $ADDR (-scenario-dir scenarios)"
"$WORKDIR/routelabd" -addr "$ADDR" -scenario-dir scenarios -quiet \
    -max-scenarios 4 -request-timeout 120s 2>"$LOG" &
PID=$!

for i in $(seq 1 60); do
    if grep -q "serving routelab-api/v1" "$LOG" 2>/dev/null; then
        break
    fi
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "routelabd died during startup:" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 1
done
grep -q "serving routelab-api/v1" "$LOG" || {
    echo "routelabd never started listening:" >&2
    cat "$LOG" >&2
    exit 1
}

echo "==> fleet lists the corpus"
curl -sS "http://$ADDR/v1/scenarios" >"$WORKDIR/scenarios.json"
for id in smoke smoke-alt paper; do
    grep -q "\"$id\"" "$WORKDIR/scenarios.json" || {
        echo "FAIL: corpus scenario $id not registered" >&2
        cat "$WORKDIR/scenarios.json" >&2
        exit 1
    }
done

echo "==> admitting a scenario over POST /v1/scenarios"
STATUS=$(curl -sS -o "$WORKDIR/admit.json" -w '%{http_code}' \
    -X POST --data-binary @- "http://$ADDR/v1/scenarios" <<'EOF'
spec: routelab-spec/v1
name: admitted-smoke
description: Admitted over the API by load_smoke.sh
profile: tiny
seed: 2017
EOF
)
if [ "$STATUS" != 201 ]; then
    echo "FAIL: admission -> $STATUS (want 201)" >&2
    cat "$WORKDIR/admit.json" >&2
    exit 1
fi
STATUS=$(curl -sS -o /dev/null -w '%{http_code}' \
    "http://$ADDR/v1/scenarios/admitted-smoke/healthz")
if [ "$STATUS" != 200 ]; then
    echo "FAIL: admitted scenario healthz -> $STATUS" >&2
    exit 1
fi

echo "==> what-if round trip: request and response both pass apicheck"
WHATIF_DOC='{"schema":"routelab-whatif/v1","deltas":[{"kind":"withdraw"},{"kind":"prepend","prepend":2}]}'
printf '%s' "$WHATIF_DOC" | "$WORKDIR/apicheck"
STATUS=$(curl -sS -o "$WORKDIR/whatif.json" -w '%{http_code}' \
    -X POST -H 'Content-Type: application/json' \
    --data-binary "$WHATIF_DOC" "http://$ADDR/v1/scenarios/smoke/whatif")
if [ "$STATUS" != 200 ]; then
    echo "FAIL: whatif -> $STATUS (want 200)" >&2
    cat "$WORKDIR/whatif.json" >&2
    exit 1
fi
"$WORKDIR/apicheck" "$WORKDIR/whatif.json"

echo "==> driving the tiny fleet with routeload"
"$WORKDIR/routeload" -addr "$ADDR" -scenarios smoke,smoke-alt \
    -clients 8 -requests 160 -out "$OUT"

echo "==> gating the emission with loadcheck"
"$WORKDIR/loadcheck" -max-error-rate 0 -max-p99 30s "$OUT"

echo "==> SIGTERM: graceful drain"
kill -TERM "$PID"
wait "$PID" && rc=0 || rc=$?
if [ "$rc" != 0 ]; then
    echo "FAIL: routelabd exited $rc after SIGTERM" >&2
    cat "$LOG" >&2
    exit 1
fi
grep -q "drained, bye" "$LOG" || {
    echo "FAIL: no drain confirmation in log" >&2
    cat "$LOG" >&2
    exit 1
}

echo "load smoke: OK ($OUT)"
