#!/usr/bin/env bash
# load_smoke.sh — end-to-end smoke test of the multi-scenario fleet and
# the load harness.
#
# Leg 1 (healthy fleet): boots routelabd in fleet mode on the checked-in
# corpus (-scenario-dir scenarios; registration is cheap, builds are
# lazy), admits one extra scenario over POST /v1/scenarios, polls the
# build-progress endpoint through cmd/apicheck, drives the two tiny
# worlds (smoke, smoke-alt) with cmd/routeload on a small request budget
# with 1 s latency buckets, and gates the routelab-load/v1 emission with
# cmd/loadcheck: zero errors, zero sheds (an unsaturated fleet must
# never shed), and a deliberately lax p99 tripwire (this is a blowup
# detector, not a latency SLO — CI machines vary). Finishes with a
# SIGTERM drain check.
#
# Leg 2 (saturation): reboots the fleet with tiny overload gates
# (-max-concurrent 1 -max-queued-requests 1 -max-builds 1
# -max-queued-builds 1) and hammers it with more clients than it can
# admit. The gate: nonzero clean sheds (verified 429s with Retry-After
# and the overloaded code — loadcheck -min-sheds 1) and zero errors
# otherwise. Overload protection must engage, and must stay clean while
# it does.
#
# CI's load-smoke job runs this; locally: make load-smoke.
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR="${ROUTELABD_ADDR:-localhost:18090}"
SAT_ADDR="${ROUTELABD_SAT_ADDR:-localhost:18091}"
OUT="${LOAD_OUT:-LOAD_routelab.json}"
WORKDIR="$(mktemp -d)"
LOG="$WORKDIR/routelabd.log"
SAT_LOG="$WORKDIR/routelabd-sat.log"
PID=""
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT

echo "==> building"
go build -o "$WORKDIR/routelabd" ./cmd/routelabd
go build -o "$WORKDIR/routeload" ./cmd/routeload
go build -o "$WORKDIR/loadcheck" ./cmd/loadcheck
go build -o "$WORKDIR/apicheck" ./cmd/apicheck

# wait_serving LOG: block until routelabd logs its listening line.
wait_serving() {
    local log="$1"
    for i in $(seq 1 60); do
        if grep -q "serving routelab-api/v1" "$log" 2>/dev/null; then
            return 0
        fi
        if ! kill -0 "$PID" 2>/dev/null; then
            echo "routelabd died during startup:" >&2
            cat "$log" >&2
            exit 1
        fi
        sleep 1
    done
    echo "routelabd never started listening:" >&2
    cat "$log" >&2
    exit 1
}

echo "==> starting routelabd fleet on $ADDR (-scenario-dir scenarios)"
"$WORKDIR/routelabd" -addr "$ADDR" -scenario-dir scenarios -quiet \
    -max-scenarios 4 -request-timeout 120s 2>"$LOG" &
PID=$!
wait_serving "$LOG"

echo "==> fleet lists the corpus"
curl -sS "http://$ADDR/v1/scenarios" >"$WORKDIR/scenarios.json"
for id in smoke smoke-alt paper; do
    grep -q "\"$id\"" "$WORKDIR/scenarios.json" || {
        echo "FAIL: corpus scenario $id not registered" >&2
        cat "$WORKDIR/scenarios.json" >&2
        exit 1
    }
done

echo "==> admitting a scenario over POST /v1/scenarios"
STATUS=$(curl -sS -o "$WORKDIR/admit.json" -w '%{http_code}' \
    -X POST --data-binary @- "http://$ADDR/v1/scenarios" <<'EOF'
spec: routelab-spec/v1
name: admitted-smoke
description: Admitted over the API by load_smoke.sh
profile: tiny
seed: 2017
EOF
)
if [ "$STATUS" != 201 ]; then
    echo "FAIL: admission -> $STATUS (want 201)" >&2
    cat "$WORKDIR/admit.json" >&2
    exit 1
fi
STATUS=$(curl -sS -o /dev/null -w '%{http_code}' \
    "http://$ADDR/v1/scenarios/admitted-smoke/healthz")
if [ "$STATUS" != 200 ]; then
    echo "FAIL: admitted scenario healthz -> $STATUS" >&2
    exit 1
fi

echo "==> build progress: pending and built snapshots both pass apicheck"
# paper is registered but never driven: pending. admitted-smoke was just
# served: built. Both bodies must be valid kind "build" envelopes, and
# polling must answer instantly without triggering a build.
curl -sS "http://$ADDR/v1/scenarios/paper/build" | "$WORKDIR/apicheck"
curl -sS "http://$ADDR/v1/scenarios/paper/build" >"$WORKDIR/pending.json"
grep -q '"state":"pending"' "$WORKDIR/pending.json" || {
    echo "FAIL: un-driven scenario is not pending" >&2
    cat "$WORKDIR/pending.json" >&2
    exit 1
}
curl -sS "http://$ADDR/v1/scenarios/admitted-smoke/build" >"$WORKDIR/built.json"
"$WORKDIR/apicheck" "$WORKDIR/built.json"
grep -q '"state":"built"' "$WORKDIR/built.json" || {
    echo "FAIL: served scenario is not built" >&2
    cat "$WORKDIR/built.json" >&2
    exit 1
}

echo "==> what-if round trip: request and response both pass apicheck"
WHATIF_DOC='{"schema":"routelab-whatif/v1","deltas":[{"kind":"withdraw"},{"kind":"prepend","prepend":2}]}'
printf '%s' "$WHATIF_DOC" | "$WORKDIR/apicheck"
STATUS=$(curl -sS -o "$WORKDIR/whatif.json" -w '%{http_code}' \
    -X POST -H 'Content-Type: application/json' \
    --data-binary "$WHATIF_DOC" "http://$ADDR/v1/scenarios/smoke/whatif")
if [ "$STATUS" != 200 ]; then
    echo "FAIL: whatif -> $STATUS (want 200)" >&2
    cat "$WORKDIR/whatif.json" >&2
    exit 1
fi
"$WORKDIR/apicheck" "$WORKDIR/whatif.json"

echo "==> driving the tiny fleet with routeload"
"$WORKDIR/routeload" -addr "$ADDR" -scenarios smoke,smoke-alt \
    -clients 8 -requests 160 -bucket 1s -out "$OUT"

echo "==> gating the emission with loadcheck"
"$WORKDIR/loadcheck" -max-error-rate 0 -max-shed-rate 0 -max-p99 30s "$OUT"

echo "==> SIGTERM: graceful drain"
kill -TERM "$PID"
wait "$PID" && rc=0 || rc=$?
if [ "$rc" != 0 ]; then
    echo "FAIL: routelabd exited $rc after SIGTERM" >&2
    cat "$LOG" >&2
    exit 1
fi
grep -q "drained, bye" "$LOG" || {
    echo "FAIL: no drain confirmation in log" >&2
    cat "$LOG" >&2
    exit 1
}

echo "==> saturation leg: tiny gates on $SAT_ADDR must shed cleanly"
# -cache 1 keeps the response cache from absorbing the load: routeload's
# warmup touches every target once, and with the default cache the
# measured run would be ~all hits that never reach the admission gate.
# One entry forces recomputation, so the 16 clients actually contend.
"$WORKDIR/routelabd" -addr "$SAT_ADDR" -scenario-dir scenarios -quiet \
    -max-concurrent 1 -max-queued-requests 1 -cache 1 \
    -max-builds 1 -max-queued-builds 1 -request-timeout 120s 2>"$SAT_LOG" &
PID=$!
wait_serving "$SAT_LOG"

# Twice the clients of the healthy leg against one build slot and a
# one-deep build queue, plus four COLD corpus scenarios whose first
# touches land mid-run: concurrent cold builds overrun the build gate,
# and the overflow must surface as verified 429s (counted as sheds by
# routeload, never as errors) while everything the fleet does admit
# still serves correctly. The cold ids are default-scale test worlds
# (~2-3s builds — NOT the scale-1.0 pathological worlds, whose builds
# run minutes and would stall the leg past the client timeout): seconds
# of build against millisecond arrivals keeps the shed floor machine-
# independent — single-core runners included, where request computes
# are too quick to ever overlap on the request gate. -spread adds
# distinct experiments cache keys so fast machines exercise request
# shedding too (coalesced waiters never shed).
"$WORKDIR/routeload" -addr "$SAT_ADDR" -scenarios smoke,smoke-alt \
    -cold clean-baseline,jittered,domestic,monitor-starved \
    -clients 16 -requests 320 -bucket 1s -spread 320 \
    -out "$WORKDIR/LOAD_saturation.json"
"$WORKDIR/loadcheck" -max-error-rate 0 -min-sheds 1 "$WORKDIR/LOAD_saturation.json"

kill -TERM "$PID"
wait "$PID" && rc=0 || rc=$?
if [ "$rc" != 0 ]; then
    echo "FAIL: saturated routelabd exited $rc after SIGTERM" >&2
    cat "$SAT_LOG" >&2
    exit 1
fi

echo "load smoke: OK ($OUT)"
