#!/usr/bin/env bash
# service_smoke.sh — end-to-end smoke test of cmd/routelabd.
#
# Starts the daemon on a tiny scenario (-scale 0.05), waits for the
# listening line, curls every /v1 endpoint, validates each JSON body
# against routelab-api/v1 with cmd/apicheck, then sends SIGTERM and
# checks the graceful drain exits 0. CI's service-smoke job runs this;
# locally: make service-smoke.
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR="${ROUTELABD_ADDR:-localhost:18080}"
WORKDIR="$(mktemp -d)"
LOG="$WORKDIR/routelabd.log"
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT

echo "==> building"
go build -o "$WORKDIR/routelabd" ./cmd/routelabd
go build -o "$WORKDIR/apicheck" ./cmd/apicheck

echo "==> starting routelabd at -scale 0.05 on $ADDR"
"$WORKDIR/routelabd" -addr "$ADDR" -scale 0.05 -quiet \
    -request-timeout 60s -metrics-json "$WORKDIR/metrics.json" 2>"$LOG" &
PID=$!

for i in $(seq 1 120); do
    if grep -q "serving routelab-api/v1" "$LOG" 2>/dev/null; then
        break
    fi
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "routelabd died during startup:" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 1
done
grep -q "serving routelab-api/v1" "$LOG" || {
    echo "routelabd never started listening:" >&2
    cat "$LOG" >&2
    exit 1
}

fetch() { # fetch NAME URL [expected_status]
    local name="$1" url="$2" want="${3:-200}"
    local out="$WORKDIR/$name.json"
    local status
    status=$(curl -sS -o "$out" -w '%{http_code}' "http://$ADDR$url")
    if [ "$status" != "$want" ]; then
        echo "FAIL $name: GET $url -> $status (want $want)" >&2
        cat "$out" >&2
        exit 1
    fi
    "$WORKDIR/apicheck" "$out"
}

echo "==> querying every /v1 endpoint"
fetch healthz     /v1/healthz
fetch metrics     /v1/metrics

# Trace ids are sparse (unusable traceroutes are dropped); find a live one.
TRACE=""
for t in $(seq 0 199); do
    if [ "$(curl -sS -o "$WORKDIR/classify.json" -w '%{http_code}'             "http://$ADDR/v1/classify?trace=$t")" = 200 ]; then
        TRACE=$t
        break
    fi
done
if [ -z "$TRACE" ]; then
    echo "FAIL: no measurement found in trace ids 0..199" >&2
    exit 1
fi
fetch classify    "/v1/classify?trace=$TRACE"
fetch classify1   "/v1/classify?trace=$TRACE&refinement=All-2"
fetch experiments /v1/experiments/table1
fetch prediction  /v1/experiments/prediction
fetch accuracy    /v1/experiments/accuracy

# Discover a live AS + alternates target from the healthz-validated
# classify payload (the first decision's "at").
AS=$(sed -n 's/.*"at":"AS\([0-9]*\)".*/\1/p' "$WORKDIR/classify.json" | head -1)
if [ -z "$AS" ]; then
    echo "FAIL: could not extract an AS from the classify payload" >&2
    exit 1
fi
fetch as          "/v1/as/$AS"
fetch alternates  "/v1/alternates?target=$AS"

echo "==> checking error paths"
fetch notfound    /v1/definitely-not-a-route 404
fetch unknownexp  /v1/experiments/bogus      404

echo "==> SIGTERM: graceful drain"
kill -TERM "$PID"
# No requests are in flight, so the drain is immediate and bounded by
# the daemon's -drain budget either way.
wait "$PID" && rc=0 || rc=$?
if [ "$rc" != 0 ]; then
    echo "FAIL: routelabd exited $rc after SIGTERM" >&2
    cat "$LOG" >&2
    exit 1
fi
grep -q "drained, bye" "$LOG" || {
    echo "FAIL: no drain confirmation in log" >&2
    cat "$LOG" >&2
    exit 1
}
test -s "$WORKDIR/metrics.json" || {
    echo "FAIL: no metrics emission on exit" >&2
    exit 1
}

echo "service smoke: OK"
