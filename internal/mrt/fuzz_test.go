package mrt

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzRead drives the MRT snapshot parser with arbitrary bytes (seed
// corpus under testdata/fuzz/FuzzRead; regenerate with cmd/corpusgen).
// Properties:
//
//   - Read never panics and never allocates unboundedly (the record cap
//     bounds each allocation; truncated streams error out).
//   - Read is a retraction: any snapshot Read accepts survives a
//     Write/Read round trip deep-equal — every field Read populates is
//     serialized faithfully, so stored snapshots re-read identically.
func FuzzRead(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("RMRT"))
	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := Read(bytes.NewReader(b))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, s); err != nil {
			t.Fatalf("Write of parsed snapshot failed: %v", err)
		}
		s2, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-read of own serialization failed: %v", err)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("snapshot changed across round trip:\n got: %#v\nwant: %#v", s2, s)
		}
	})
}
