// Package mrt serializes monitor snapshots in an MRT-style framing
// (after RFC 6396's TABLE_DUMP_V2 spirit, simplified to the fields
// routelab's pipeline consumes): a sequence of length-prefixed records,
// each carrying (peer AS, prefix, AS path). Snapshots written by the
// collector can be stored, shipped, and re-read by the inference stage.
package mrt

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"routelab/internal/asn"
	"routelab/internal/vantage"
)

// magic identifies a routelab MRT stream (not a registered MRT type —
// real MRT has no magic; this guards against feeding arbitrary files in).
var magic = [4]byte{'R', 'M', 'R', 'T'}

const version = 1

// maxRecord caps a record to keep corrupted streams from exhausting
// memory.
const maxRecord = 1 << 16

// Write serializes a snapshot.
func Write(w io.Writer, s *vantage.Snapshot) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return fmt.Errorf("mrt: write magic: %w", err)
	}
	var hdr [8]byte
	binary.BigEndian.PutUint16(hdr[0:], version)
	binary.BigEndian.PutUint16(hdr[2:], uint16(s.Epoch))
	binary.BigEndian.PutUint32(hdr[4:], uint32(len(s.Entries)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("mrt: write header: %w", err)
	}
	var rec []byte
	for i := range s.Entries {
		e := &s.Entries[i]
		rec = rec[:0]
		rec = binary.BigEndian.AppendUint32(rec, uint32(e.Peer))
		rec = binary.BigEndian.AppendUint32(rec, uint32(e.Prefix.Addr))
		rec = append(rec, e.Prefix.Len)
		rec = binary.BigEndian.AppendUint16(rec, uint16(len(e.Path)))
		for _, a := range e.Path {
			rec = binary.BigEndian.AppendUint32(rec, uint32(a))
		}
		var sz [2]byte
		binary.BigEndian.PutUint16(sz[:], uint16(len(rec)))
		if _, err := bw.Write(sz[:]); err != nil {
			return fmt.Errorf("mrt: write record size: %w", err)
		}
		if _, err := bw.Write(rec); err != nil {
			return fmt.Errorf("mrt: write record: %w", err)
		}
	}
	return bw.Flush()
}

// Read parses a snapshot.
func Read(r io.Reader) (*vantage.Snapshot, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("mrt: read magic: %w", err)
	}
	if m != magic {
		return nil, errors.New("mrt: bad magic")
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("mrt: read header: %w", err)
	}
	if v := binary.BigEndian.Uint16(hdr[0:]); v != version {
		return nil, fmt.Errorf("mrt: unsupported version %d", v)
	}
	s := &vantage.Snapshot{Epoch: int(binary.BigEndian.Uint16(hdr[2:]))}
	n := binary.BigEndian.Uint32(hdr[4:])
	for i := uint32(0); i < n; i++ {
		var sz [2]byte
		if _, err := io.ReadFull(br, sz[:]); err != nil {
			return nil, fmt.Errorf("mrt: read record %d size: %w", i, err)
		}
		recLen := int(binary.BigEndian.Uint16(sz[:]))
		if recLen > maxRecord || recLen < 11 {
			return nil, fmt.Errorf("mrt: record %d has invalid size %d", i, recLen)
		}
		rec := make([]byte, recLen)
		if _, err := io.ReadFull(br, rec); err != nil {
			return nil, fmt.Errorf("mrt: read record %d: %w", i, err)
		}
		e := vantage.Entry{
			Peer: asn.ASN(binary.BigEndian.Uint32(rec[0:])),
			Prefix: asn.NewPrefix(
				asn.Addr(binary.BigEndian.Uint32(rec[4:])), rec[8]),
		}
		pathLen := int(binary.BigEndian.Uint16(rec[9:]))
		if len(rec) != 11+4*pathLen {
			return nil, fmt.Errorf("mrt: record %d path truncated", i)
		}
		for j := 0; j < pathLen; j++ {
			e.Path = append(e.Path, asn.ASN(binary.BigEndian.Uint32(rec[11+4*j:])))
		}
		s.Entries = append(s.Entries, e)
	}
	return s, nil
}
