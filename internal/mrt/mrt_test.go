package mrt

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"routelab/internal/asn"
	"routelab/internal/vantage"
)

func sample() *vantage.Snapshot {
	return &vantage.Snapshot{
		Epoch: 3,
		Entries: []vantage.Entry{
			{Peer: 3356, Prefix: asn.NewPrefix(asn.AddrFrom4(10, 0, 0, 0), 8), Path: []asn.ASN{3356, 174, 65000}},
			{Peer: 174, Prefix: asn.NewPrefix(asn.AddrFrom4(198, 51, 100, 0), 24), Path: []asn.ASN{174}},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sample()
	if got.Epoch != want.Epoch || len(got.Entries) != len(want.Entries) {
		t.Fatalf("shape mismatch: %+v", got)
	}
	for i := range want.Entries {
		w, g := want.Entries[i], got.Entries[i]
		if g.Peer != w.Peer || g.Prefix != w.Prefix || len(g.Path) != len(w.Path) {
			t.Fatalf("entry %d: %+v vs %+v", i, g, w)
		}
		for j := range w.Path {
			if g.Path[j] != w.Path[j] {
				t.Fatalf("entry %d path[%d]", i, j)
			}
		}
	}
}

func TestEmptySnapshot(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &vantage.Snapshot{Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 1 || len(got.Entries) != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOPE00000000"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut += 3 {
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestCorruptRecordSize(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Record size field sits right after the 12-byte preamble.
	b[12], b[13] = 0xff, 0xff
	if _, err := Read(bytes.NewReader(b)); err == nil {
		t.Fatal("oversized record accepted")
	}
}

// Property: arbitrary snapshots round-trip.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := &vantage.Snapshot{Epoch: int(n) % 7}
		for i := 0; i < int(n%12); i++ {
			e := vantage.Entry{
				Peer:   asn.ASN(rng.Uint32()),
				Prefix: asn.NewPrefix(asn.Addr(rng.Uint32()), uint8(rng.Intn(33))),
			}
			for j := 0; j < rng.Intn(9); j++ {
				e.Path = append(e.Path, asn.ASN(rng.Uint32()))
			}
			s.Entries = append(s.Entries, e)
		}
		var buf bytes.Buffer
		if err := Write(&buf, s); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || got.Epoch != s.Epoch || len(got.Entries) != len(s.Entries) {
			return false
		}
		for i := range s.Entries {
			if got.Entries[i].Peer != s.Entries[i].Peer ||
				got.Entries[i].Prefix != s.Entries[i].Prefix ||
				len(got.Entries[i].Path) != len(s.Entries[i].Path) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
