package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
)

// ReportSchema identifies the machine-readable routelint emission
// format, versioned like routelab-bench/v1 and routelab-api/v1 so
// downstream tooling can reject drift.
const ReportSchema = "routelab-lint/v1"

// Report is the -format=json emission of cmd/routelint: the analyzed
// module, the suite that ran, and every (post-suppression) finding.
type Report struct {
	Schema    string          `json:"schema"`
	Module    string          `json:"module"`
	GoVersion string          `json:"go_version"`
	Analyzers []AnalyzerInfo  `json:"analyzers"`
	Packages  int             `json:"packages"`
	Findings  []ReportFinding `json:"findings"`
	Clean     bool            `json:"clean"`
}

// AnalyzerInfo describes one rule of the suite.
type AnalyzerInfo struct {
	Name string `json:"name"`
	Doc  string `json:"doc"`
}

// ReportFinding is one finding in emission form.
type ReportFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// BuildReport assembles the emission for a completed run. packages is
// the number of packages analyzed; findings are post-suppression.
func BuildReport(module string, analyzers []*Analyzer, packages int, findings []Finding) *Report {
	rep := &Report{
		Schema:    ReportSchema,
		Module:    module,
		GoVersion: runtime.Version(),
		Packages:  packages,
		Findings:  make([]ReportFinding, 0, len(findings)),
		Clean:     len(findings) == 0,
	}
	for _, a := range analyzers {
		rep.Analyzers = append(rep.Analyzers, AnalyzerInfo{Name: a.Name, Doc: a.Doc})
	}
	for _, f := range findings {
		rep.Findings = append(rep.Findings, ReportFinding{
			File: f.Pos.Filename, Line: f.Pos.Line, Col: f.Pos.Column,
			Rule: f.Rule, Message: f.Message,
		})
	}
	return rep
}

// Validate checks the structural invariants of a routelab-lint/v1
// emission, mirroring obs.BenchReport validation: schema pinned,
// non-empty suite, well-formed findings, and a Clean flag consistent
// with the finding count.
func (r *Report) Validate() error {
	if r.Schema != ReportSchema {
		return fmt.Errorf("lint report: schema %q, want %q", r.Schema, ReportSchema)
	}
	if r.Module == "" {
		return fmt.Errorf("lint report: empty module")
	}
	if r.GoVersion == "" {
		return fmt.Errorf("lint report: empty go_version")
	}
	if len(r.Analyzers) == 0 {
		return fmt.Errorf("lint report: no analyzers ran")
	}
	for i, a := range r.Analyzers {
		if a.Name == "" || a.Doc == "" {
			return fmt.Errorf("lint report: analyzer %d has empty name or doc", i)
		}
	}
	if r.Packages <= 0 {
		return fmt.Errorf("lint report: packages = %d, want > 0", r.Packages)
	}
	for i, f := range r.Findings {
		switch {
		case f.File == "":
			return fmt.Errorf("lint report: finding %d has empty file", i)
		case f.Line <= 0:
			return fmt.Errorf("lint report: finding %d (%s) has line %d, want > 0", i, f.File, f.Line)
		case f.Rule == "":
			return fmt.Errorf("lint report: finding %d (%s:%d) has empty rule", i, f.File, f.Line)
		case f.Message == "":
			return fmt.Errorf("lint report: finding %d (%s:%d) has empty message", i, f.File, f.Line)
		}
	}
	if r.Clean != (len(r.Findings) == 0) {
		return fmt.Errorf("lint report: clean = %v with %d findings", r.Clean, len(r.Findings))
	}
	return nil
}

// ReadReport loads and validates a routelab-lint/v1 emission from disk
// (the cmd/lintcheck entry point, mirroring obs.ReadBenchReport).
func ReadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("lint report: %w", err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("lint report: parse %s: %w", path, err)
	}
	if err := rep.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}
