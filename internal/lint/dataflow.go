package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// stringFlow proves facts of the form "this string expression mentions
// that object" by walking the expression's data sources: concatenation
// operands, fmt.Sprint*/strings.Join arguments, local-variable
// assignments inside the enclosing declaration, and — through the call
// graph — in-module helper functions all of whose return values carry
// the mention. It is deliberately an under-approximation: code that
// wants a clean bill must make the flow syntactically evident, which is
// exactly the reviewability property the cachekey rule enforces.
type stringFlow struct {
	cg *CallGraph
	// visitedVars/visitedFuncs break cycles (x = x + "|", mutually
	// recursive helpers) without bounding legitimate depth.
	visitedVars  map[*types.Var]bool
	visitedFuncs map[*types.Func]bool
}

func newStringFlow(cg *CallGraph) *stringFlow {
	return &stringFlow{
		cg:           cg,
		visitedVars:  make(map[*types.Var]bool),
		visitedFuncs: make(map[*types.Func]bool),
	}
}

// mentions reports whether expr provably references target. pkg is the
// package expr belongs to; scope is the enclosing declaration body
// searched for local assignments (may be nil).
func (sf *stringFlow) mentions(pkg *Package, scope *ast.BlockStmt, expr ast.Expr, target types.Object) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		obj := pkg.Info.Uses[e]
		if obj == target {
			return true
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() || scope == nil || sf.visitedVars[v] {
			return false
		}
		sf.visitedVars[v] = true
		for _, src := range assignedSources(pkg.Info, scope, v) {
			if sf.mentions(pkg, scope, src, target) {
				return true
			}
		}
	case *ast.SelectorExpr:
		return pkg.Info.Uses[e.Sel] == target
	case *ast.BinaryExpr:
		if e.Op == token.ADD {
			return sf.mentions(pkg, scope, e.X, target) || sf.mentions(pkg, scope, e.Y, target)
		}
	case *ast.CallExpr:
		f := calleeFunc(pkg.Info, e)
		if f == nil {
			return false
		}
		// String-building stdlib calls propagate any argument's mention.
		if pkgPath := funcPkgPath(f); (pkgPath == "fmt" && strings.HasPrefix(f.Name(), "Sprint")) ||
			(pkgPath == "strings" && f.Name() == "Join") {
			for _, arg := range e.Args {
				if sf.mentions(pkg, scope, arg, target) {
					return true
				}
			}
			return false
		}
		// An in-module helper proves the mention when every return path
		// does. Field targets (the interesting case: Server.id) resolve
		// to the same object from any receiver, so no parameter
		// substitution is needed.
		decl := sf.cg.Decl(f)
		if decl == nil || sf.visitedFuncs[f] {
			return false
		}
		sf.visitedFuncs[f] = true
		return allReturnsMention(sf, sf.cg.PackageOf(f), decl, target)
	}
	return false
}

// assignedSources collects every right-hand side assigned to v inside
// scope (including its := definition and var declaration).
func assignedSources(info *types.Info, scope *ast.BlockStmt, v *types.Var) []ast.Expr {
	var out []ast.Expr
	ast.Inspect(scope, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				if info.Defs[id] == v || info.Uses[id] == v {
					out = append(out, n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) != len(n.Values) {
				return true
			}
			for i, name := range n.Names {
				if info.Defs[name] == v {
					out = append(out, n.Values[i])
				}
			}
		}
		return true
	})
	return out
}

// allReturnsMention reports whether every return statement of decl
// returns an expression mentioning target (and there is at least one).
func allReturnsMention(sf *stringFlow, pkg *Package, decl *ast.FuncDecl, target types.Object) bool {
	if pkg == nil {
		return false
	}
	found := false
	ok := true
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		ret, isRet := n.(*ast.ReturnStmt)
		if !isRet || !ok {
			return !isRet
		}
		if len(ret.Results) == 0 {
			ok = false
			return false
		}
		found = true
		mentioned := false
		for _, res := range ret.Results {
			if sf.mentions(pkg, decl.Body, res, target) {
				mentioned = true
				break
			}
		}
		if !mentioned {
			ok = false
		}
		return true
	})
	return found && ok
}
