package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// analyzerMapOrder flags `range` over a map whose body feeds
// order-sensitive output — fmt.Fprint*/Sprint* calls, strings.Builder /
// bytes.Buffer writes, io.WriteString, or appends into a struct field
// (the shape of every experiments Result) — without going through a
// sorted key slice first. Go randomizes map iteration order, so any
// such loop produces nondeterministic bytes: the exact class of the
// PR 3 Figure 2 bug, where multi-name AS labels flipped between runs
// because a map of scenario names was rendered in iteration order.
//
// The sanctioned idiom — collect keys into a local slice, sort, then
// range over the slice — is not flagged: appending to a *local*
// variable is order-insensitive once sorted, and the second loop ranges
// over a slice, not a map.
func analyzerMapOrder() *Analyzer {
	return &Analyzer{
		Name: "maporder",
		Doc:  "range over a map must not feed order-sensitive output (print, string building, Result field appends)",
		Run:  runMapOrder,
	}
}

func runMapOrder(prog *Program, pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if !isMapType(pkg.Info.Types[rs.X].Type) {
				return true
			}
			if sink := findOrderSink(pkg.Info, rs.Body); sink != "" {
				out = append(out, Finding{
					Pos:  prog.Fset.Position(rs.Pos()),
					Rule: "maporder",
					Message: "range over map " + exprString(rs.X) + " feeds order-sensitive output (" + sink +
						"); iterate a sorted key slice instead",
				})
			}
			return true
		})
	}
	return out
}

// findOrderSink scans a map-range body for the first construct whose
// output depends on iteration order, returning a short description or
// "".
func findOrderSink(info *types.Info, body *ast.BlockStmt) string {
	var sink string
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if s := callSink(info, n); s != "" {
				sink = s
				return false
			}
		case *ast.AssignStmt:
			// x.Field = append(x.Field, ...): accumulating into a struct
			// field (a Result row slice) in iteration order. Appends to
			// local variables are the sorted-keys idiom's collect phase
			// and stay legal.
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				if _, isSel := ast.Unparen(lhs).(*ast.SelectorExpr); !isSel {
					continue
				}
				if call, ok := ast.Unparen(n.Rhs[i]).(*ast.CallExpr); ok && isAppendCall(info, call) {
					sink = "append to field " + exprString(lhs)
					return false
				}
			}
		}
		return true
	})
	return sink
}

// callSink classifies a call as an order-sensitive output sink.
func callSink(info *types.Info, call *ast.CallExpr) string {
	f := calleeFunc(info, call)
	if f == nil {
		return ""
	}
	name := f.Name()
	switch funcPkgPath(f) {
	case "fmt":
		for _, prefix := range []string{"Fprint", "Print", "Sprint", "Append"} {
			if strings.HasPrefix(name, prefix) {
				return "fmt." + name
			}
		}
	case "io":
		if name == "WriteString" {
			return "io.WriteString"
		}
	case "strings", "bytes":
		// Methods on strings.Builder / bytes.Buffer that emit bytes.
		if recv := f.Type().(*types.Signature).Recv(); recv != nil && strings.HasPrefix(name, "Write") {
			if isNamedType(recv.Type(), "strings", "Builder") {
				return "strings.Builder." + name
			}
			if isNamedType(recv.Type(), "bytes", "Buffer") {
				return "bytes.Buffer." + name
			}
		}
	}
	return ""
}

func isAppendCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// exprString renders a short source-like form of simple expressions for
// messages (identifiers and selector chains; anything else is "<expr>").
func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	default:
		return "<expr>"
	}
}
