package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// analyzerWallTime flags nondeterminism sources — wall-clock reads and
// the globally seeded math/rand — inside the packages whose outputs
// goldens pin byte-for-byte: internal/experiments, internal/classify,
// internal/inference, internal/gaorexford (the 14 experiment goldens),
// internal/spec (the scenarios/golden corpus dumps), internal/whatif
// (golden-backed diffs), and internal/service (deterministic cached
// response bodies). A time.Now() or rand.Intn() there would not fail
// any test immediately; it would silently make golden refreshes
// unreproducible — or cached bodies history-dependent — which is the
// failure mode the seeded-run contract exists to prevent.
//
// Allowed: constructing scenario-seeded sources (rand.New,
// rand.NewSource, and every other rand.New* constructor) and calling
// methods on a *rand.Rand derived from them — that is the sanctioned
// determinism idiom (one seed per experiment, derived from env.Seed).
func analyzerWallTime() *Analyzer {
	return &Analyzer{
		Name: "walltime",
		Doc:  "no wall-clock or globally seeded randomness in golden-backed packages (experiments, classify, inference, gaorexford, spec, whatif, service)",
		Run:  runWallTime,
	}
}

// wallTimeScopes are the module-relative package prefixes the rule
// covers (a prefix also covers subpackages). internal/whatif and
// internal/service joined the set when their outputs became
// golden-backed and cache-keyed respectively: a wall-clock read there
// would skew what-if goldens or poison deterministic cached bodies.
var wallTimeScopes = []string{
	"internal/experiments",
	"internal/classify",
	"internal/inference",
	"internal/gaorexford",
	"internal/spec",
	"internal/whatif",
	"internal/service",
}

// timeFuncs are the wall-clock reads the rule bans.
var timeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runWallTime(prog *Program, pkg *Package) []Finding {
	if !inWallTimeScope(prog, pkg) {
		return nil
	}
	var out []Finding
	flag := func(n ast.Node, msg string) {
		out = append(out, Finding{Pos: prog.Fset.Position(n.Pos()), Rule: "walltime", Message: msg})
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			f, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			switch funcPkgPath(f) {
			case "time":
				if timeFuncs[f.Name()] {
					flag(sel, fmt.Sprintf("wall-clock time.%s in a golden-backed package; "+
						"outputs must be a pure function of the scenario seed", f.Name()))
				}
			case "math/rand", "math/rand/v2":
				// Methods on *rand.Rand are the seeded idiom; package-level
				// functions draw from the shared global source. The New*
				// constructors build seeded sources and stay legal.
				if f.Type().(*types.Signature).Recv() != nil {
					return true
				}
				if strings.HasPrefix(f.Name(), "New") {
					return true
				}
				flag(sel, fmt.Sprintf("globally seeded %s.%s in a golden-backed package; "+
					"derive a *rand.Rand from the scenario seed instead", funcPkgPath(f), f.Name()))
			}
			return true
		})
	}
	return out
}

func inWallTimeScope(prog *Program, pkg *Package) bool {
	for _, scope := range wallTimeScopes {
		full := prog.ModulePath + "/" + scope
		if pkg.Path == full || strings.HasPrefix(pkg.Path, full+"/") {
			return true
		}
	}
	return false
}
