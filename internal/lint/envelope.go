package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// analyzerEnvelope enforces the typed error envelope in
// internal/service: every error response must flow through the one
// function that builds ErrorData (fail, which failCompute/failStore
// wrap), so error bodies always carry the stable machine-readable code
// the API contract promises. Bypasses are exactly what the rule flags:
//
//   - http.Error writes a text/plain body with no envelope at all;
//   - w.WriteHeader with a constant status >= 400 (or a status the
//     checker cannot prove < 400) commits an error response before any
//     envelope is marshaled;
//   - a raw w.Write whose results are dropped loses the short-write
//     error the service's write() helper exists to count.
//
// The blessed writer is derived from source, not named: any function in
// the package whose body builds an ErrorData composite literal is the
// envelope writer and may use the raw primitives. Methods on types that
// embed http.ResponseWriter (the statusWriter instrumentation wrapper)
// are exempt for WriteHeader forwarding, which is their whole job.
func analyzerEnvelope() *Analyzer {
	return &Analyzer{
		Name: "envelope",
		Doc:  "service error responses go through the typed envelope (fail/failCompute/failStore), never raw http.Error/WriteHeader/Write",
		Run:  runEnvelope,
	}
}

func runEnvelope(prog *Program, pkg *Package) []Finding {
	if !strings.HasPrefix(pkg.Path, prog.ModulePath+"/internal/service") {
		return nil
	}
	// ErrorData must be declared in the package for the rule to have an
	// envelope to enforce.
	if _, ok := pkg.Types.Scope().Lookup("ErrorData").(*types.TypeName); !ok {
		return nil
	}
	var out []Finding
	for _, decl := range enclosingFuncDecls(pkg) {
		if buildsErrorData(pkg, decl) {
			continue // the blessed envelope writer
		}
		wrapper := isResponseWriterWrapperMethod(pkg, decl)
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			// A Write whose results land nowhere is a bare expression
			// statement — the dropped-short-write shape.
			if stmt, ok := n.(*ast.ExprStmt); ok {
				if call, ok := ast.Unparen(stmt.X).(*ast.CallExpr); ok &&
					isResponseWriterMethodCall(pkg.Info, call, "Write") {
					out = append(out, Finding{
						Pos:  prog.Fset.Position(call.Pos()),
						Rule: "envelope",
						Message: "raw ResponseWriter.Write with dropped results; use the write() helper " +
							"(short-write errors are counted) or the envelope writer for error bodies",
					})
				}
				return true
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := calleeFunc(pkg.Info, call)
			if f != nil && funcPkgPath(f) == "net/http" && f.Name() == "Error" {
				out = append(out, Finding{
					Pos:  prog.Fset.Position(call.Pos()),
					Rule: "envelope",
					Message: "http.Error writes an unversioned text body; route errors through the " +
						"typed envelope writer (fail) so responses carry a stable error code",
				})
				return true
			}
			if !isResponseWriterMethodCall(pkg.Info, call, "WriteHeader") {
				return true
			}
			if wrapper {
				return true // statusWriter forwarding
			}
			if status, known := constantInt(pkg.Info, call.Args); known && status < 400 {
				return true // provably a success status
			}
			out = append(out, Finding{
				Pos:  prog.Fset.Position(call.Pos()),
				Rule: "envelope",
				Message: "WriteHeader with a status not provably < 400 outside the envelope writer; " +
					"error statuses must come from fail so the body carries ErrorData",
			})
			return true
		})
	}
	return out
}

// buildsErrorData reports whether decl's body constructs an ErrorData
// composite literal of the analyzed package.
func buildsErrorData(pkg *Package, decl *ast.FuncDecl) bool {
	found := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		if tv, ok := pkg.Info.Types[lit]; ok && isNamedType(tv.Type, pkg.Path, "ErrorData") {
			found = true
		}
		return !found
	})
	return found
}

// isResponseWriterWrapperMethod reports whether decl is a method on a
// struct that embeds http.ResponseWriter — the instrumentation-wrapper
// shape whose WriteHeader forwarding is its contract.
func isResponseWriterWrapperMethod(pkg *Package, decl *ast.FuncDecl) bool {
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return false
	}
	named := namedOf(pkg.Info.TypeOf(decl.Recv.List[0].Type))
	if named == nil {
		return false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Embedded() && isNamedType(f.Type(), "net/http", "ResponseWriter") {
			return true
		}
	}
	return false
}

// isResponseWriterMethodCall reports whether call invokes the named
// method on a value whose type is (or embeds, via field selection)
// net/http.ResponseWriter.
func isResponseWriterMethodCall(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	f, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	if isNamedType(info.TypeOf(sel.X), "net/http", "ResponseWriter") {
		return true
	}
	// Concrete wrapper (e.g. *statusWriter): the method object's origin
	// is the embedded interface's method.
	recv := f.Type().(*types.Signature).Recv()
	return recv != nil && isNamedType(recv.Type(), "net/http", "ResponseWriter")
}

// constantInt extracts the first argument's constant integer value.
func constantInt(info *types.Info, args []ast.Expr) (int64, bool) {
	if len(args) == 0 {
		return 0, false
	}
	tv, ok := info.Types[ast.Unparen(args[0])]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	v, exact := constant.Int64Val(tv.Value)
	if !exact {
		return 0, false
	}
	return v, true
}
