package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// analyzerGoroLeak guards the service layer's shutdown contract: a
// goroutine started in internal/service (store/pool/fleet paths) must
// be stoppable — otherwise a drained tenant or a shut-down server
// leaves workers running against evicted state. A `go` statement passes
// when the spawned body proves one of:
//
//   - it consults a context.Context (cancelable: references any
//     ctx-typed value, which covers ctx.Done() selects and ctx.Err()
//     polls);
//   - it receives from a channel (a done/stop channel close reaches
//     it);
//   - it calls sync.WaitGroup.Done (it is joined: drain/Close waits).
//
// Named functions and methods are resolved through the call graph and
// judged by their bodies; a spawn the checker cannot resolve (function
// value, interface method) is flagged — shutdown-safety must be
// locally evident in this package.
func analyzerGoroLeak() *Analyzer {
	return &Analyzer{
		Name: "goroleak",
		Doc:  "service goroutines must be cancelable (ctx/done channel) or joined (WaitGroup) before shutdown/drain",
		Run:  runGoroLeak,
	}
}

func runGoroLeak(prog *Program, pkg *Package) []Finding {
	if !strings.HasPrefix(pkg.Path, prog.ModulePath+"/internal/service") {
		return nil
	}
	cg := prog.CallGraph()
	var out []Finding
	for _, decl := range enclosingFuncDecls(pkg) {
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			stmt, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body, info, what := spawnedBody(cg, pkg, stmt.Call)
			if body != nil && goroutineIsStoppable(info, body) {
				return true
			}
			reason := "neither consults a ctx/done channel nor calls WaitGroup.Done"
			if body == nil {
				reason = "cannot be resolved to a declared body"
			}
			out = append(out, Finding{
				Pos:  prog.Fset.Position(stmt.Pos()),
				Rule: "goroleak",
				Message: fmt.Sprintf("goroutine %s %s; it would outlive shutdown/drain — select on a "+
					"stop channel or join it with a WaitGroup the drain path waits on", what, reason),
			})
			return true
		})
	}
	return out
}

// spawnedBody resolves the body a go statement runs: a function
// literal's own body, or the declaration of a statically resolved
// function/method. what describes the spawn for the message.
func spawnedBody(cg *CallGraph, pkg *Package, call *ast.CallExpr) (body *ast.BlockStmt, info *types.Info, what string) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return lit.Body, pkg.Info, "closure"
	}
	f := calleeFunc(pkg.Info, call)
	if f == nil {
		return nil, nil, "target"
	}
	decl := cg.Decl(f)
	if decl == nil {
		return nil, nil, f.Name()
	}
	return decl.Body, cg.PackageOf(f).Info, f.Name()
}

// goroutineIsStoppable applies the three proofs described on the
// analyzer.
func goroutineIsStoppable(info *types.Info, body *ast.BlockStmt) bool {
	ok := false
	ast.Inspect(body, func(n ast.Node) bool {
		if ok {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if obj := info.Uses[n]; obj != nil && isNamedType(obj.Type(), "context", "Context") {
				ok = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				ok = true
			}
		case *ast.CallExpr:
			if f := calleeFunc(info, n); f != nil && f.Name() == "Done" {
				if recv := f.Type().(*types.Signature).Recv(); recv != nil &&
					isNamedType(recv.Type(), "sync", "WaitGroup") {
					ok = true
				}
			}
		}
		return !ok
	})
	return ok
}
