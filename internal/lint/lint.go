package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one analyzer report: a position, the rule that fired, and
// a message explaining the violated invariant.
type Finding struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the canonical "file:line:col: [rule] message" form the
// CLI prints and CI greps.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Message)
}

// Analyzer is one repo-invariant rule. Run is invoked once per analyzed
// package and may consult the whole Program for cross-package facts
// (the sealed-mutator set, the bgp hot-path call graph).
type Analyzer struct {
	// Name is the rule id findings and //lint:allow comments use.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Run reports the rule's raw findings for one package; suppression
	// is applied by the driver, not the analyzer.
	Run func(prog *Program, pkg *Package) []Finding
}

// Analyzers returns the full suite in stable order. Each rule encodes
// an invariant this repository has already paid for in bugs; see
// DESIGN.md §"Static analysis" for the history.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		analyzerMapOrder(),
		analyzerSealedMut(),
		analyzerHotAtomic(),
		analyzerCtxFlow(),
		analyzerWallTime(),
		analyzerFrozenFork(),
		analyzerEnvelope(),
		analyzerCacheKey(),
		analyzerGoroLeak(),
	}
}

// SelectAnalyzers filters the suite by rule id: include keeps only the
// named rules (empty keeps all), exclude then drops its names. Unknown
// ids and an empty selection are errors — a typoed -rules flag must
// fail loudly, not silently lint nothing.
func SelectAnalyzers(all []*Analyzer, include, exclude []string) ([]*Analyzer, error) {
	byName := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	keep := make(map[string]bool, len(all))
	if len(include) == 0 {
		for name := range byName {
			keep[name] = true
		}
	}
	for _, name := range include {
		if byName[name] == nil {
			return nil, fmt.Errorf("unknown rule %q (have %s)", name, strings.Join(AnalyzerNames(), ", "))
		}
		keep[name] = true
	}
	for _, name := range exclude {
		if byName[name] == nil {
			return nil, fmt.Errorf("unknown rule %q (have %s)", name, strings.Join(AnalyzerNames(), ", "))
		}
		delete(keep, name)
	}
	if len(keep) == 0 {
		return nil, fmt.Errorf("no rules selected (have %s)", strings.Join(AnalyzerNames(), ", "))
	}
	out := make([]*Analyzer, 0, len(keep))
	for _, a := range all { // preserve registry order
		if keep[a.Name] {
			out = append(out, a)
		}
	}
	return out, nil
}

// AnalyzerNames returns the rule ids of the full suite, sorted.
func AnalyzerNames() []string {
	as := Analyzers()
	out := make([]string, 0, len(as))
	for _, a := range as {
		out = append(out, a.Name)
	}
	sort.Strings(out)
	return out
}

// allowDirective is the suppression comment prefix. The full syntax is
//
//	//lint:allow <rule-id> <reason>
//
// placed on the finding's line or the line directly above it. The
// reason is mandatory: an unexplained suppression is itself reported
// (rule id "allow"), as is an unknown rule id.
const allowDirective = "//lint:allow"

// allowKey identifies one (file, line) suppression site.
type allowKey struct {
	file string
	line int
}

// suppressions holds every well-formed //lint:allow site of a package,
// plus findings for malformed ones.
type suppressions struct {
	allowed map[allowKey]map[string]bool
	bad     []Finding
}

// collectSuppressions scans a package's comments for allow directives.
// known is the set of valid rule ids.
func collectSuppressions(prog *Program, pkg *Package, known map[string]bool) *suppressions {
	s := &suppressions{allowed: make(map[allowKey]map[string]bool)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, allowDirective) {
					continue
				}
				pos := prog.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(text, allowDirective)
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					s.bad = append(s.bad, Finding{Pos: pos, Rule: "allow",
						Message: "malformed //lint:allow: missing rule id and reason"})
				case !known[fields[0]]:
					s.bad = append(s.bad, Finding{Pos: pos, Rule: "allow",
						Message: fmt.Sprintf("//lint:allow names unknown rule %q (have %s)",
							fields[0], strings.Join(sortedKeys(known), ", "))})
				case len(fields) == 1:
					s.bad = append(s.bad, Finding{Pos: pos, Rule: "allow",
						Message: fmt.Sprintf("//lint:allow %s: missing reason (suppressions must say why)", fields[0])})
				default:
					k := allowKey{file: pos.Filename, line: pos.Line}
					if s.allowed[k] == nil {
						s.allowed[k] = make(map[string]bool)
					}
					s.allowed[k][fields[0]] = true
				}
			}
		}
	}
	return s
}

// suppressed reports whether a finding is covered by an allow directive
// on its own line or the line directly above.
func (s *suppressions) suppressed(f Finding) bool {
	for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
		if rules := s.allowed[allowKey{file: f.Pos.Filename, line: line}]; rules[f.Rule] {
			return true
		}
	}
	return false
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Run executes the analyzers over the selected packages, applies
// //lint:allow suppression, and returns deduplicated findings sorted by
// position then rule — a stable order for golden output and CI diffs.
func Run(prog *Program, pkgs []*Package, analyzers []*Analyzer) []Finding {
	known := make(map[string]bool, len(analyzers))
	for _, a := range Analyzers() {
		// Directives are validated against the full registry, not the
		// selected subset, so a partial run never misreports a valid
		// suppression as unknown.
		known[a.Name] = true
	}
	var out []Finding
	for _, pkg := range pkgs {
		sup := collectSuppressions(prog, pkg, known)
		out = append(out, sup.bad...)
		for _, a := range analyzers {
			for _, f := range a.Run(prog, pkg) {
				if !sup.suppressed(f) {
					out = append(out, f)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	// Dedupe: cross-analyzer overlap (and the parallel-package worker
	// rules) can report one site twice.
	dedup := out[:0]
	for i, f := range out {
		if i > 0 && f == out[i-1] {
			continue
		}
		dedup = append(dedup, f)
	}
	return dedup
}

// --- shared type-resolution helpers ----------------------------------

// calleeFunc resolves a call expression to the *types.Func it invokes
// (package function or method), or nil for builtins, conversions, and
// calls through function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	case *ast.IndexExpr: // instantiated generic, one type arg: Pool[T](...)
		return instantiatedFunc(info, fun.X)
	case *ast.IndexListExpr: // instantiated generic, several: Map[T, R](...)
		return instantiatedFunc(info, fun.X)
	}
	return nil
}

// instantiatedFunc resolves the function expression under an explicit
// generic instantiation's index brackets.
func instantiatedFunc(info *types.Info, x ast.Expr) *types.Func {
	switch x := ast.Unparen(x).(type) {
	case *ast.Ident:
		f, _ := info.Uses[x].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[x.Sel].(*types.Func)
		return f
	}
	return nil
}

// funcPkgPath returns the import path of the package a function (or
// method) is declared in, or "".
func funcPkgPath(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// namedOf unwraps pointers to the named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// isNamedType reports whether t (possibly behind pointers) is the named
// type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	n := namedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}
