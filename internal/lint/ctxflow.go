package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// analyzerCtxFlow flags functions in internal/experiments and
// internal/service that accept a context.Context but never consult it
// — no ctx.Err()/ctx.Done() check and no forwarding to a callee. Those
// are the packages where cancellation is load-bearing: routelabd's
// request deadline (504-on-timeout) and graceful drain only work if
// every Experiment.Run implementation and service handler observes its
// ctx before blocking work. A ctx parameter that is silently dropped
// compiles fine, passes goldens (Background never cancels), and breaks
// only under production timeout pressure.
//
// Both declared functions and function literals (the compute closures
// handed to the cache/gate) are checked; a parameter named _ is an
// explicit opt-out — except for functions with the Experiment.Run
// shape, func(context.Context, *Env) (Result, error), inside
// internal/experiments: a registered experiment that blanks its ctx
// runs to completion even after its routelabd request timed out, so
// discarding the parameter there is flagged too.
func analyzerCtxFlow() *Analyzer {
	return &Analyzer{
		Name: "ctxflow",
		Doc:  "experiments and service functions taking a ctx must consult it (Err/Done or forwarding) before blocking work",
		Run:  runCtxFlow,
	}
}

func runCtxFlow(prog *Program, pkg *Package) []Finding {
	switch pkg.Path {
	case prog.ModulePath + "/internal/experiments", prog.ModulePath + "/internal/service":
	default:
		return nil
	}
	experimentsPkg := pkg.Path == prog.ModulePath+"/internal/experiments"
	var out []Finding
	check := func(name string, ftype *ast.FuncType, body *ast.BlockStmt, pos ast.Node) {
		if body == nil {
			return
		}
		for _, param := range ctxParams(pkg.Info, ftype) {
			if usesObject(pkg.Info, body, param) {
				continue
			}
			out = append(out, Finding{
				Pos:  prog.Fset.Position(pos.Pos()),
				Rule: "ctxflow",
				Message: fmt.Sprintf("%s accepts %s but never consults it; check ctx.Err()/Done() or forward it "+
					"before blocking work (cancellation and request deadlines silently stop here)", name, param.Name()),
			})
		}
		if experimentsPkg && blanksRunCtx(pkg, ftype) {
			out = append(out, Finding{
				Pos:  prog.Fset.Position(pos.Pos()),
				Rule: "ctxflow",
				Message: fmt.Sprintf("%s has the Experiment.Run shape but discards its ctx (_); "+
					"bind it and check ctx.Err() so a timed-out routelabd request stops computing", name),
			})
		}
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				check(n.Name.Name, n.Type, n.Body, n)
			case *ast.FuncLit:
				check("function literal", n.Type, n.Body, n)
			}
			return true
		})
	}
	return out
}

// blanksRunCtx reports whether a function type has the Experiment.Run
// shape — func(context.Context, *Env) (Result, error), with Env and
// Result resolved in the analyzed package — while binding its context
// parameter to the blank identifier.
func blanksRunCtx(pkg *Package, ftype *ast.FuncType) bool {
	tv, ok := pkg.Info.Types[ftype]
	if !ok {
		// Declared functions: the FuncType node itself carries no type
		// entry; reconstruct from the parameter/result fields.
		return blanksRunCtxFields(pkg, ftype)
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok || !isRunSignature(pkg, sig) {
		return false
	}
	return firstParamIsBlank(ftype)
}

func blanksRunCtxFields(pkg *Package, ftype *ast.FuncType) bool {
	if ftype.Params == nil || ftype.Results == nil ||
		len(ftype.Params.List) != 2 || len(ftype.Results.List) != 2 {
		return false
	}
	typeAt := func(fields *ast.FieldList, i int) types.Type {
		tv, ok := pkg.Info.Types[fields.List[i].Type]
		if !ok {
			return nil
		}
		return tv.Type
	}
	if !isNamedType(typeAt(ftype.Params, 0), "context", "Context") ||
		!isNamedType(typeAt(ftype.Params, 1), pkg.Path, "Env") ||
		!isNamedType(typeAt(ftype.Results, 0), pkg.Path, "Result") {
		return false
	}
	return firstParamIsBlank(ftype)
}

func isRunSignature(pkg *Package, sig *types.Signature) bool {
	return sig.Params().Len() == 2 && sig.Results().Len() == 2 &&
		isNamedType(sig.Params().At(0).Type(), "context", "Context") &&
		isNamedType(sig.Params().At(1).Type(), pkg.Path, "Env") &&
		isNamedType(sig.Results().At(0).Type(), pkg.Path, "Result")
}

func firstParamIsBlank(ftype *ast.FuncType) bool {
	names := ftype.Params.List[0].Names
	return len(names) == 1 && names[0].Name == "_"
}

// ctxParams returns the declared (named, non-blank) context.Context
// parameters of a function type.
func ctxParams(info *types.Info, ftype *ast.FuncType) []*types.Var {
	if ftype.Params == nil {
		return nil
	}
	var out []*types.Var
	for _, field := range ftype.Params.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			v, ok := info.Defs[name].(*types.Var)
			if ok && isNamedType(v.Type(), "context", "Context") {
				out = append(out, v)
			}
		}
	}
	return out
}

// usesObject reports whether any identifier in body resolves to obj.
func usesObject(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
			return false
		}
		return true
	})
	return found
}
