package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
)

// fixtureProg loads the fixture module under testdata/src once per test
// binary; loading type-checks the stdlib from source, so it is shared.
var fixtureProg = sync.OnceValues(func() (*Program, error) {
	return Load(filepath.Join("testdata", "src"))
})

func loadFixture(t *testing.T) *Program {
	t.Helper()
	prog, err := fixtureProg()
	if err != nil {
		t.Fatalf("load fixture module: %v", err)
	}
	return prog
}

// wantMarker is the fixture expectation syntax: a trailing
// "//lint:want <rule>" comment on the exact line a finding must be
// reported at.
const wantMarker = "//lint:want"

type expectation struct {
	file string
	line int
	rule string
}

func (e expectation) String() string { return fmt.Sprintf("%s:%d: [%s]", e.file, e.line, e.rule) }

// collectExpectations scans a package's comments for want markers.
func collectExpectations(prog *Program, pkg *Package) []expectation {
	var out []expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				rest, ok := strings.CutPrefix(text, wantMarker)
				if !ok {
					continue
				}
				pos := prog.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) != 1 {
					panic(fmt.Sprintf("%s:%d: malformed %s marker", pos.Filename, pos.Line, wantMarker))
				}
				out = append(out, expectation{file: pos.Filename, line: pos.Line, rule: fields[0]})
			}
		}
	}
	return out
}

// TestFixtures runs the full suite over the fixture module and requires
// the findings to match the //lint:want markers exactly: every positive
// fires, every negative stays silent, and every //lint:allow suppresses
// its finding. The fix/allow package is exercised separately by
// TestAllowDirectiveValidation.
func TestFixtures(t *testing.T) {
	prog := loadFixture(t)
	var pkgs []*Package
	var want []expectation
	for _, pkg := range prog.Packages {
		if pkg.Path == "routelab/fix/allow" {
			continue
		}
		pkgs = append(pkgs, pkg)
		want = append(want, collectExpectations(prog, pkg)...)
	}
	got := Run(prog, pkgs, Analyzers())

	wantSet := make(map[expectation]bool, len(want))
	for _, e := range want {
		wantSet[e] = true
	}
	gotSet := make(map[expectation]bool, len(got))
	for _, f := range got {
		gotSet[expectation{file: f.Pos.Filename, line: f.Pos.Line, rule: f.Rule}] = true
	}
	for _, e := range want {
		if !gotSet[e] {
			t.Errorf("expected finding missing: %s", e)
		}
	}
	for _, f := range got {
		if !wantSet[expectation{file: f.Pos.Filename, line: f.Pos.Line, rule: f.Rule}] {
			t.Errorf("unexpected finding: %s", f)
		}
	}
}

// TestEveryAnalyzerHasFixtureCoverage guards against fixture bit-rot:
// each of the nine rules must have at least one positive marker and at
// least one suppression in the fixture tree.
func TestEveryAnalyzerHasFixtureCoverage(t *testing.T) {
	prog := loadFixture(t)
	positives := make(map[string]int)
	allows := make(map[string]int)
	for _, pkg := range prog.Packages {
		for _, e := range collectExpectations(prog, pkg) {
			positives[e.rule]++
		}
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if rest, ok := strings.CutPrefix(strings.TrimSpace(c.Text), allowDirective); ok {
						if fields := strings.Fields(rest); len(fields) >= 2 {
							allows[fields[0]]++
						}
					}
				}
			}
		}
	}
	for _, a := range Analyzers() {
		if positives[a.Name] == 0 {
			t.Errorf("analyzer %s has no positive fixture case", a.Name)
		}
		if allows[a.Name] == 0 {
			t.Errorf("analyzer %s has no suppressed fixture case", a.Name)
		}
	}
}

// TestAllowDirectiveValidation checks that malformed //lint:allow
// comments (bare, unknown rule, missing reason) are themselves reported
// under rule id "allow".
func TestAllowDirectiveValidation(t *testing.T) {
	prog := loadFixture(t)
	pkg := prog.Package("routelab/fix/allow")
	if pkg == nil {
		t.Fatal("fixture package routelab/fix/allow not loaded")
	}
	findings := Run(prog, []*Package{pkg}, Analyzers())
	if len(findings) != 3 {
		t.Fatalf("got %d findings, want 3 (bare, unknown rule, missing reason):\n%s",
			len(findings), findingLines(findings))
	}
	wantFrags := []string{"missing rule id", "unknown rule", "missing reason"}
	for i, f := range findings {
		if f.Rule != "allow" {
			t.Errorf("finding %d: rule %q, want \"allow\"", i, f.Rule)
		}
		if !strings.Contains(f.Message, wantFrags[i]) {
			t.Errorf("finding %d: message %q does not mention %q", i, f.Message, wantFrags[i])
		}
	}
}

// TestSealedMutatorSetIsDerived checks that the sealedmut rule derives
// the guarded mutator set from source (any Topology method calling
// mutable) instead of a hardcoded list.
func TestSealedMutatorSetIsDerived(t *testing.T) {
	prog := loadFixture(t)
	got := MutatorNames(prog)
	want := []string{"MarkContentPrefix", "PinPrefix"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("fixture mutator set = %v, want %v", got, want)
	}
}

// TestFrozenMutatorSetIsDerived checks that frozenfork derives its
// mutator set from the guard pattern in source (frozen-field read +
// panic, unblessed adj-in writes), not a hardcoded method list: the
// fixture's Announce/Withdraw carry the guard and stomp writes adjIn
// without consulting sharedRow, while Freeze/Fork/deliver stay out.
func TestFrozenMutatorSetIsDerived(t *testing.T) {
	prog := loadFixture(t)
	got := FrozenMutatorNames(prog)
	want := []string{"Announce", "Withdraw", "stomp"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("fixture frozen mutator set = %v, want %v", got, want)
	}
}

// TestSelectAnalyzers covers the -rules/-exclude-rules surface: include
// keeps registry order, exclude subtracts, unknown ids and an empty
// selection fail.
func TestSelectAnalyzers(t *testing.T) {
	all := Analyzers()
	sub, err := SelectAnalyzers(all, []string{"walltime", "frozenfork"}, nil)
	if err != nil {
		t.Fatalf("select: %v", err)
	}
	if len(sub) != 2 || sub[0].Name != "walltime" || sub[1].Name != "frozenfork" {
		t.Fatalf("include selection = %v, want [walltime frozenfork] in registry order", analyzerNamesOf(sub))
	}
	sub, err = SelectAnalyzers(all, nil, []string{"hotatomic"})
	if err != nil {
		t.Fatalf("exclude: %v", err)
	}
	if len(sub) != len(all)-1 {
		t.Fatalf("exclude left %d rules, want %d", len(sub), len(all)-1)
	}
	for _, a := range sub {
		if a.Name == "hotatomic" {
			t.Fatal("excluded rule still selected")
		}
	}
	if _, err := SelectAnalyzers(all, []string{"nosuchrule"}, nil); err == nil {
		t.Fatal("unknown include rule did not error")
	}
	if _, err := SelectAnalyzers(all, nil, []string{"nosuchrule"}); err == nil {
		t.Fatal("unknown exclude rule did not error")
	}
	if _, err := SelectAnalyzers(all, []string{"walltime"}, []string{"walltime"}); err == nil {
		t.Fatal("empty selection did not error")
	}
}

func analyzerNamesOf(as []*Analyzer) []string {
	out := make([]string, 0, len(as))
	for _, a := range as {
		out = append(out, a.Name)
	}
	return out
}

// TestLoaderGenericsAndAliases pins the loader on the multi-file
// generics/alias fixture package: both files load, the alias and
// generic declarations resolve, and calleeFunc resolves the explicit
// two-type-argument instantiation (IndexListExpr) so interprocedural
// rules see through generic call edges.
func TestLoaderGenericsAndAliases(t *testing.T) {
	prog := loadFixture(t)
	pkg := prog.Package("routelab/fix/loader")
	if pkg == nil {
		t.Fatal("fixture package routelab/fix/loader not loaded")
	}
	if len(pkg.Files) != 2 {
		t.Fatalf("loaded %d files, want 2 (a.go, b.go)", len(pkg.Files))
	}
	scope := pkg.Types.Scope()
	row, ok := scope.Lookup("Row").(*types.TypeName)
	if !ok || !row.IsAlias() {
		t.Fatalf("Row = %v, want a type alias", scope.Lookup("Row"))
	}
	intPool, ok := scope.Lookup("IntPool").(*types.TypeName)
	if !ok || !intPool.IsAlias() {
		t.Fatalf("IntPool = %v, want an alias of a generic instantiation", scope.Lookup("IntPool"))
	}
	pool, ok := scope.Lookup("Pool").(*types.TypeName)
	if !ok {
		t.Fatal("Pool not found")
	}
	named, ok := pool.Type().(*types.Named)
	if !ok || named.TypeParams().Len() != 1 {
		t.Fatalf("Pool = %v, want a generic named type with one type parameter", pool.Type())
	}
	// The explicit instantiation Map[int, int](...) must resolve to the
	// generic Map both via calleeFunc and in the call graph.
	cg := prog.CallGraph()
	squares, ok := scope.Lookup("Squares").(*types.Func)
	if !ok {
		t.Fatal("Squares not found")
	}
	found := false
	for _, callee := range cg.Callees(squares) {
		if callee.Name() == "Map" {
			found = true
		}
	}
	if !found {
		t.Fatalf("call graph misses Squares -> Map (IndexListExpr instantiation); callees = %v", cg.Callees(squares))
	}
	resolved := false
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, isIdx := call.Fun.(*ast.IndexListExpr); !isIdx {
				return true
			}
			if f := calleeFunc(pkg.Info, call); f != nil && f.Name() == "Map" {
				resolved = true
			}
			return true
		})
	}
	if !resolved {
		t.Fatal("calleeFunc did not resolve the IndexListExpr instantiation of Map")
	}
}

// TestRunIsDeterministic re-runs the suite and requires byte-identical
// finding lists — the tool that proves determinism must itself be
// deterministic.
func TestRunIsDeterministic(t *testing.T) {
	prog := loadFixture(t)
	render := func() string {
		var b strings.Builder
		for _, f := range Run(prog, prog.Packages, Analyzers()) {
			fmt.Fprintln(&b, f)
		}
		return b.String()
	}
	first := render()
	for i := 0; i < 3; i++ {
		if again := render(); again != first {
			t.Fatalf("run %d differs:\n--- first\n%s--- again\n%s", i+2, first, again)
		}
	}
}

// TestRepoIsClean is the self-check the acceptance criteria pin: the
// suite over this repository itself reports nothing, so any regression
// against the encoded invariants fails tier-1 here before CI.
func TestRepoIsClean(t *testing.T) {
	prog, err := Load(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("load repository module: %v", err)
	}
	if prog.ModulePath != "routelab" {
		t.Fatalf("loaded module %q, want routelab", prog.ModulePath)
	}
	if len(prog.Packages) < 30 {
		t.Fatalf("loaded only %d packages; the loader is missing most of the tree", len(prog.Packages))
	}
	findings := Run(prog, prog.Packages, Analyzers())
	if len(findings) > 0 {
		t.Errorf("routelint is not clean on the repository (%d findings):\n%s",
			len(findings), findingLines(findings))
	}
}

// TestAnalyzerNamesStable pins the public rule-id surface: DESIGN.md,
// CI, and //lint:allow comments all reference these ids.
func TestAnalyzerNamesStable(t *testing.T) {
	want := []string{"cachekey", "ctxflow", "envelope", "frozenfork", "goroleak",
		"hotatomic", "maporder", "sealedmut", "walltime"}
	got := AnalyzerNames()
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("analyzer names = %v, want %v", got, want)
	}
	for _, a := range Analyzers() {
		if a.Doc == "" {
			t.Errorf("analyzer %s has no doc line", a.Name)
		}
	}
}

// TestFixtureASTsHaveComments guards the loader's ParseComments mode:
// suppression and markers both depend on comments surviving the parse.
func TestFixtureASTsHaveComments(t *testing.T) {
	prog := loadFixture(t)
	total := 0
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			total += len(f.Comments)
		}
	}
	if total == 0 {
		t.Fatal("no comments in fixture ASTs; loader must parse with parser.ParseComments")
	}
	// And positions must resolve to real files.
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			if name := prog.Fset.Position(f.Pos()).Filename; !strings.HasSuffix(name, ".go") {
				t.Fatalf("file position %q does not resolve to a .go file", name)
			}
			var count int
			ast.Inspect(f, func(ast.Node) bool { count++; return true })
			if count == 0 {
				t.Fatal("empty AST in fixture package")
			}
		}
	}
}

func findingLines(fs []Finding) string {
	lines := make([]string, 0, len(fs))
	for _, f := range fs {
		lines = append(lines, "  "+f.String())
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
