package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
)

// analyzerHotAtomic flags per-event instrumentation on the two hot
// paths PR 2's batching mandate covers:
//
//  1. The bgp.Converge event loop. Every function reachable from
//     Computation.Converge inside internal/bgp runs once per routing
//     event (millions per full-scale build); obs counter bumps or
//     sync/atomic operations there serialize the convergence on cache
//     lines. Counters must accumulate in plain Computation fields and
//     flush once per Converge via flushObs — the one sanctioned flush
//     point, which this rule excludes from the traversal.
//
//  2. parallel worker bodies. Function literals passed to
//     parallel.ForEach/Map/ForEachStage/MapStage (and the worker
//     closures inside the parallel package itself) run once per item
//     across all workers; per-item atomics or obs calls contend across
//     the pool. The two deliberate per-item atomics the package
//     documents (the work-stealing index, the stage busy-clock) carry
//     //lint:allow annotations.
//
// The hot set is derived from the source call graph, not hardcoded, so
// new helpers on the Converge path are covered automatically.
func analyzerHotAtomic() *Analyzer {
	return &Analyzer{
		Name: "hotatomic",
		Doc:  "no per-event obs or sync/atomic calls on the bgp.Converge hot path or in parallel worker bodies",
		Run:  runHotAtomic,
	}
}

func runHotAtomic(prog *Program, pkg *Package) []Finding {
	var out []Finding
	out = append(out, hotAtomicConverge(prog, pkg)...)
	out = append(out, hotAtomicWorkers(prog, pkg)...)
	return out
}

// --- part 1: the bgp.Converge call tree -------------------------------

func hotAtomicConverge(prog *Program, pkg *Package) []Finding {
	if pkg.Path != prog.ModulePath+"/internal/bgp" {
		return nil
	}
	cg := prog.CallGraph()
	root := cg.Method(pkg, "Computation", "Converge")
	if root == nil {
		return nil
	}
	// The hot set is the same-package Converge call tree; flushObs is the
	// one sanctioned flush point and is excluded from the traversal.
	hot := cg.Reachable(root, true, map[string]bool{"flushObs": true})
	// Walk the hot set in source order so raw findings are deterministic
	// before the driver's final sort.
	ordered := make([]*types.Func, 0, len(hot))
	for fn := range hot {
		ordered = append(ordered, fn)
	}
	sort.Slice(ordered, func(i, j int) bool { return hot[ordered[i]].Pos() < hot[ordered[j]].Pos() })
	var out []Finding
	for _, fn := range ordered {
		decl, fnName := hot[fn], fn.Name()
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if desc := instrumentationCall(prog, pkg.Info, call); desc != "" {
				out = append(out, Finding{
					Pos:  prog.Fset.Position(call.Pos()),
					Rule: "hotatomic",
					Message: fmt.Sprintf("per-event %s call in %s, on the bgp.Converge hot path "+
						"(accumulate in Computation fields and flush once per Converge in flushObs)", desc, fnName),
				})
			}
			return true
		})
	}
	return out
}

// --- part 2: parallel worker bodies -----------------------------------

// parallelEntryPoints are the fan-out functions whose fn arguments run
// once per item.
var parallelEntryPoints = map[string]bool{
	"ForEach": true, "Map": true, "ForEachStage": true, "MapStage": true,
}

func hotAtomicWorkers(prog *Program, pkg *Package) []Finding {
	parallelPath := prog.ModulePath + "/internal/parallel"
	var out []Finding
	flagLit := func(lit *ast.FuncLit, where string) {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if desc := instrumentationCall(prog, pkg.Info, call); desc != "" {
				out = append(out, Finding{
					Pos:  prog.Fset.Position(call.Pos()),
					Rule: "hotatomic",
					Message: fmt.Sprintf("per-item %s call in a %s worker body "+
						"(workers run once per item; batch after the merge barrier instead)", desc, where),
				})
			}
			return true
		})
	}
	for _, file := range pkg.Files {
		// Call sites anywhere in the module: function literals handed to
		// parallel.ForEach/Map/ForEachStage/MapStage.
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := calleeFunc(pkg.Info, call)
			if f == nil || funcPkgPath(f) != parallelPath || !parallelEntryPoints[f.Name()] {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					flagLit(lit, "parallel."+f.Name())
				}
			}
			return true
		})
		// Inside the parallel package itself: the worker goroutine and
		// wrapper closures within the fan-out implementations.
		if pkg.Path == parallelPath {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !parallelEntryPoints[fd.Name.Name] {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						flagLit(lit, fd.Name.Name)
						return false // flagLit descends into nested literals
					}
					return true
				})
			}
		}
	}
	return out
}

// instrumentationCall classifies a call as hot-path instrumentation:
// anything from internal/obs (counters, gauges, timers, stages) or
// sync/atomic (package functions and atomic-type methods). Returns a
// short description or "".
func instrumentationCall(prog *Program, info *types.Info, call *ast.CallExpr) string {
	f := calleeFunc(info, call)
	if f == nil {
		return ""
	}
	switch funcPkgPath(f) {
	case prog.ModulePath + "/internal/obs":
		return "obs." + f.Name()
	case "sync/atomic":
		return "sync/atomic " + f.Name()
	}
	return ""
}
