package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
)

// analyzerSealedMut flags calls to topology.Topology's generator-only
// mutators from outside the build phase. PR 1 sealed the topology with
// runtime panics (Topology.mutable) so the routing engine and every
// parallel stage can share one Topology lock-free; this rule moves that
// guarantee to compile time. The mutator set is derived from source —
// any method on Topology whose body calls mutable — so new mutators are
// covered automatically.
//
// Allowed call sites: internal/topology itself (the generator and
// builder) and internal/scenario (the scenario build phase, which
// constructs topologies before sealing them).
func analyzerSealedMut() *Analyzer {
	return &Analyzer{
		Name: "sealedmut",
		Doc:  "topology.Topology mutators may only be called from internal/topology and the scenario build phase",
		Run:  runSealedMut,
	}
}

func runSealedMut(prog *Program, pkg *Package) []Finding {
	topoPath := prog.ModulePath + "/internal/topology"
	switch pkg.Path {
	case topoPath, prog.ModulePath + "/internal/scenario":
		return nil // the build phase may mutate
	}
	topo := prog.Package(topoPath)
	if topo == nil {
		return nil
	}
	mutators := sealedMutators(topo)
	if len(mutators) == 0 {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := calleeFunc(pkg.Info, call)
			if f == nil || funcPkgPath(f) != topoPath || !mutators[f.Name()] {
				return true
			}
			recv := f.Type().(*types.Signature).Recv()
			if recv == nil || !isNamedType(recv.Type(), topoPath, "Topology") {
				return true
			}
			out = append(out, Finding{
				Pos:  prog.Fset.Position(call.Pos()),
				Rule: "sealedmut",
				Message: fmt.Sprintf("call to sealed topology mutator %s outside the build phase "+
					"(Topology is read-only after build; mutators panic on a sealed topology)", f.Name()),
			})
			return true
		})
	}
	return out
}

// sealedMutators returns the names of Topology methods guarded by
// t.mutable — the generator-only mutator set.
func sealedMutators(topo *Package) map[string]bool {
	out := make(map[string]bool)
	for _, file := range topo.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			if !receiverIsTopology(topo, fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if f := calleeFunc(topo.Info, call); f != nil && f.Name() == "mutable" &&
					funcPkgPath(f) == topo.Path {
					out[fd.Name.Name] = true
					return false
				}
				return true
			})
		}
	}
	return out
}

func receiverIsTopology(topo *Package, fd *ast.FuncDecl) bool {
	if len(fd.Recv.List) != 1 {
		return false
	}
	t := topo.Info.Types[fd.Recv.List[0].Type].Type
	return t != nil && isNamedType(t, topo.Path, "Topology")
}

// MutatorNames exposes the derived mutator set for documentation and
// tests (sorted). Returns nil when the program has no topology package.
func MutatorNames(prog *Program) []string {
	topo := prog.Package(prog.ModulePath + "/internal/topology")
	if topo == nil {
		return nil
	}
	names := sealedMutators(topo)
	out := make([]string, 0, len(names))
	for n := range names {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
