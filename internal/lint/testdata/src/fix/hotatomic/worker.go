// Package hotatomic exercises the worker-body half of the hotatomic
// rule: per-item atomics or obs calls inside function literals handed
// to the parallel fan-out entry points are flagged.
package hotatomic

import (
	"sync/atomic"

	"routelab/internal/obs"
	"routelab/internal/parallel"
)

func workerBad(n int) int64 {
	var total atomic.Int64
	parallel.ForEachStage("fixture/bad", n, 0, func(i int) {
		total.Add(1)             //lint:want hotatomic
		obs.Inc("fixture.items") //lint:want hotatomic
	})
	return total.Load()
}

// workerGood writes only to its index-owned slot and batches after the
// merge barrier: the sanctioned shape.
func workerGood(items []int) int64 {
	out := parallel.Map(items, 0, func(i int, v int) int64 {
		return int64(v * v)
	})
	var sum int64
	for _, v := range out {
		sum += v
	}
	return sum
}

func workerSuppressed(n int) int64 {
	var total atomic.Int64
	parallel.ForEach(n, 0, func(i int) {
		//lint:allow hotatomic fixture demonstrates suppression
		total.Add(1)
	})
	return total.Load()
}
