package loader

// Row is a plain type alias; IntPool aliases a generic instantiation.
type Row = map[string]int

type IntPool = Pool[int]

// Squares instantiates Map explicitly (an IndexListExpr callee).
func Squares(in []int) []int {
	return Map[int, int](in, func(v int) int { return v * v })
}

// Fill drives the aliases and the generic method set together across
// the file boundary.
func Fill(p *IntPool, rows Row) int {
	p.Put(rows["a"])
	return p.Len()
}
