// Package loader exercises the lint loader on a multi-file package
// using generics and type aliases — the internal/spec and
// internal/whatif code shapes the loader must type-check faithfully.
// TestLoaderGenericsAndAliases pins resolution of the declarations and
// the instantiated call edges.
package loader

// Pool is a generic container (one type parameter).
type Pool[T any] struct{ items []T }

func (p *Pool[T]) Put(v T)  { p.items = append(p.items, v) }
func (p *Pool[T]) Len() int { return len(p.items) }

// Map is a two-type-parameter generic function; explicit instantiation
// produces the IndexListExpr call shape calleeFunc must resolve.
func Map[T, R any](in []T, fn func(T) R) []R {
	out := make([]R, 0, len(in))
	for _, v := range in {
		out = append(out, fn(v))
	}
	return out
}
