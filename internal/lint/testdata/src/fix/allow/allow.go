// Package allow exercises the driver's directive validation: every
// malformed //lint:allow comment is itself a finding (rule id "allow"),
// so suppressions can never silently rot.
package allow

func directives() {
	//lint:allow
	//lint:allow nosuchrule some reason text
	//lint:allow maporder
}
