// Package maporder exercises the maporder rule: map ranges feeding
// order-sensitive output are flagged; the collect-sort-render idiom and
// order-insensitive bodies are not.
package maporder

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

type result struct{ Rows []string }

func printBad(w io.Writer, m map[string]int) {
	for k, v := range m { //lint:want maporder
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

func buildBad(m map[string]int) string {
	var b strings.Builder
	for k := range m { //lint:want maporder
		b.WriteString(k)
	}
	return b.String()
}

func fieldAppendBad(m map[string]int) result {
	var r result
	for k := range m { //lint:want maporder
		r.Rows = append(r.Rows, k)
	}
	return r
}

// sortedGood is the sanctioned idiom: collect keys into a local slice,
// sort, then render from the slice.
func sortedGood(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// countGood never renders inside the loop: order-insensitive.
func countGood(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func printSuppressed(w io.Writer, m map[string]int) {
	//lint:allow maporder fixture demonstrates suppression
	for k := range m {
		fmt.Fprintln(w, k)
	}
}
