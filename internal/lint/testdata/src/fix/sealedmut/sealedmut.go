// Package sealedmut exercises the sealedmut rule: topology mutators
// called outside internal/topology and the scenario build phase are
// flagged; read-only accessors are not.
package sealedmut

import "routelab/internal/topology"

func mutateBad(t *topology.Topology) {
	t.MarkContentPrefix(7) //lint:want sealedmut
}

func readGood(t *topology.Topology) bool {
	return t.IsContentPrefix(7)
}

func mutateSuppressed(t *topology.Topology) {
	//lint:allow sealedmut fixture demonstrates suppression
	t.PinPrefix(7, 1)
}
