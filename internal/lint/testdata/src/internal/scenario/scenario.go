// Package scenario is the fixture build phase: the one place outside
// internal/topology where calling topology mutators is sanctioned, so
// nothing here may be flagged by sealedmut.
package scenario

import "routelab/internal/topology"

// Build constructs and seals a topology — the allowed mutation window.
func Build() *topology.Topology {
	t := &topology.Topology{}
	t.MarkContentPrefix(1)
	t.PinPrefix(1, 2)
	t.Seal()
	return t
}
