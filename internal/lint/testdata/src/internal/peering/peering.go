// Package peering is the cross-package frozenfork fixture: a
// frozen-returning base builder (the AnycastBase shape) and campaign
// helpers that forward computations into mutating positions, proving
// the interprocedural halves of the rule — frozen-return propagation
// and the mutated-parameter fixpoint.
package peering

import "routelab/internal/bgp"

// Base builds, freezes, and memoizes-by-contract a computation: the
// analyzer derives it as frozen-returning (it returns a value it froze).
func Base() *bgp.Computation {
	c := &bgp.Computation{}
	c.Announce()
	c.Freeze()
	return c
}

// mutate reaches bgp.Announce through its parameter, so the fixpoint
// marks its position 0 as mutating.
func mutate(c *bgp.Computation) {
	c.Announce()
}

// inspect only reads; its parameter is not a mutating position.
func inspect(c *bgp.Computation) bool {
	return c != nil
}

// BadCampaign forwards a frozen base into a mutating position.
func BadCampaign() {
	base := Base()
	mutate(base) //lint:want frozenfork
}

// BadInline passes the frozen result directly.
func BadInline() {
	mutate(Base()) //lint:want frozenfork
}

// GoodCampaign mutates a fork of the frozen base and merely inspects
// the base itself (negative cases for both propagation halves).
func GoodCampaign() {
	base := Base()
	mutate(base.Fork())
	inspect(base)
}

// AllowedCampaign demonstrates suppression on the interprocedural form.
func AllowedCampaign() {
	base := Base()
	//lint:allow frozenfork fixture demonstrates suppression
	mutate(base)
}
