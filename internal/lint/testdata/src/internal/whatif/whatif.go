// Package whatif proves the walltime scope extension: what-if diffs
// are golden-backed, so wall-clock reads and globally seeded
// randomness are banned; seeded *rand.Rand stays legal.
package whatif

import (
	"math/rand"
	"time"
)

func jitter() int64 {
	return rand.Int63() //lint:want walltime
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) //lint:want walltime
}

// seeded is the sanctioned determinism idiom (negative case).
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// allowedClock demonstrates suppression in the new scope.
func allowedClock() time.Time {
	//lint:allow walltime fixture demonstrates suppression
	return time.Now()
}
