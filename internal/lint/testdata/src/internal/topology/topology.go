// Package topology is a fixture stub of the real sealed topology: the
// sealedmut analyzer derives the mutator set from methods that call
// mutable, exactly as it does on the real package.
package topology

// Topology seals after build; mutators panic afterwards.
type Topology struct{ sealed bool }

func (t *Topology) mutable(op string) {
	if t.sealed {
		panic("topology: " + op + " on a sealed topology")
	}
}

// MarkContentPrefix is a generator-only mutator.
func (t *Topology) MarkContentPrefix(p int) {
	t.mutable("MarkContentPrefix")
}

// PinPrefix is a generator-only mutator.
func (t *Topology) PinPrefix(p, city int) {
	t.mutable("PinPrefix")
}

// IsContentPrefix is a read-only accessor: never flagged.
func (t *Topology) IsContentPrefix(p int) bool { return t.sealed && p >= 0 }

// Seal marks the topology read-only.
func (t *Topology) Seal() { t.sealed = true }
