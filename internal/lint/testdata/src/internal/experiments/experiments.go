// Package experiments is the ctxflow fixture: run implementations and
// helpers that take a context must consult it, and the Experiment.Run
// shape may not blank its ctx.
package experiments

import "context"

// Env is the fixture execution environment.
type Env struct{ Seed int64 }

// Result is the fixture structured-outcome interface.
type Result interface{ renderable() }

type okResult struct{}

func (okResult) renderable() {}

// runGuarded consults its ctx before computing: the sanctioned shape.
func runGuarded(ctx context.Context, env *Env) (Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return okResult{}, nil
}

// runForwarded forwards its ctx to a callee: forwarding counts as
// consulting.
func runForwarded(ctx context.Context, env *Env) (Result, error) {
	return runGuarded(ctx, env)
}

func runDiscards(_ context.Context, env *Env) (Result, error) { //lint:want ctxflow
	return okResult{}, nil
}

func runIgnores(ctx context.Context, env *Env) (Result, error) { //lint:want ctxflow
	return okResult{}, nil
}

func helperIgnores(ctx context.Context, n int) int { //lint:want ctxflow
	return n + 1
}

//lint:allow ctxflow fixture demonstrates suppression
func runSuppressed(ctx context.Context, env *Env) (Result, error) {
	return okResult{}, nil
}
