// frozen.go is the frozenfork fixture: the COW discipline (Freeze,
// Fork, guarded mutators, blessed and unblessed adj-in writers) plus
// positive, negative, and suppressed use sites.
package bgp

// Freeze marks the computation immutable (plain-bool form of the real
// engine's atomic flag; the analyzer derives freezers from the field
// write, not the type).
func (c *Computation) Freeze() { c.frozen = true }

// Fork freezes the parent and returns a mutable child — a freezer for
// its receiver, and NOT frozen-returning (the child is fresh).
func (c *Computation) Fork() *Computation {
	c.Freeze()
	return &Computation{n: c.n}
}

// Withdraw is the second guarded mutator.
func (c *Computation) Withdraw() {
	if c.frozen {
		panic("bgp: Withdraw on a frozen Computation")
	}
	c.pending--
}

// deliver is the blessed adj-in writer: it consults the sharedRow COW
// bitmap before writing, so it is NOT a derived mutator.
func (c *Computation) deliver(i, v int) {
	if c.sharedRow[i] {
		row := make([]int, len(c.adjIn[i]))
		copy(row, c.adjIn[i])
		c.adjIn[i] = row
		c.sharedRow[i] = false
	}
	c.adjIn[i][0] = v
}

// stomp writes adj-in rows without consulting sharedRow: an unblessed
// writer the analyzer derives as a mutator.
func (c *Computation) stomp(i, v int) {
	c.adjIn[i][0] = v
}

// badDirect mutates after an explicit Freeze.
func badDirect() {
	c := &Computation{}
	c.Freeze()
	c.Announce() //lint:want frozenfork
}

// badAfterFork mutates the parent a Fork froze; the fork child itself
// stays legal (negative case).
func badAfterFork() {
	c := &Computation{}
	kid := c.Fork()
	c.Withdraw() //lint:want frozenfork
	kid.Announce()
}

// badStomp reaches the unblessed adj-in writer on a frozen value.
func badStomp() {
	c := &Computation{}
	c.Freeze()
	c.stomp(0, 1) //lint:want frozenfork
}

// goodForkMutate is the sanctioned pattern: freeze the base, mutate a
// fork (negative case).
func goodForkMutate() {
	c := &Computation{}
	c.Freeze()
	f := c.Fork()
	f.Announce()
	c.deliver(0, 1) // blessed writer: no finding even on the frozen base
}

// goodBeforeFreeze mutates before freezing — order matters (negative).
func goodBeforeFreeze() {
	c := &Computation{}
	c.Announce()
	c.Freeze()
}

// allowedMutate demonstrates suppression on a frozenfork finding.
func allowedMutate() {
	c := &Computation{}
	c.Freeze()
	c.Announce() //lint:allow frozenfork fixture demonstrates suppression
}
