// Package bgp is the hotatomic fixture for the Converge call tree: the
// analyzer walks the static call graph from Computation.Converge and
// flags per-event instrumentation everywhere except flushObs.
package bgp

import (
	"sync/atomic"

	"routelab/internal/obs"
)

var (
	events   = obs.Default().Counter("bgp.fixture.events")
	poolHits = obs.Default().Counter("bgp.fixture.pool_hits")
)

// Computation mirrors the real engine's shape: an event loop whose
// helpers must stay free of per-event instrumentation, plus the COW
// fork discipline (frozen flag, shared adj-RIB-in rows) the frozenfork
// analyzer derives its mutator set from.
type Computation struct {
	n         int64
	pending   int
	pool      pathPool
	frozen    bool
	adjIn     [][]int
	sharedRow []bool
}

// pathPool mirrors the intern pool: a helper type whose methods run once
// per event. Counters accumulate in plain fields (legal) and flush once
// per Converge from flushObs; a per-intern obs bump is flagged even
// though it sits on a different receiver than Computation — the hot set
// is the call graph, not one type's methods.
type pathPool struct {
	hits int64
}

func (p *pathPool) intern() {
	p.hits++       // plain field accumulation: the sanctioned pattern
	poolHits.Inc() //lint:want hotatomic
}

// Converge drains the event queue — the hot-path root.
func (c *Computation) Converge() bool {
	for c.pending > 0 {
		c.process()
	}
	c.flushObs()
	return true
}

func (c *Computation) process() {
	events.Inc() //lint:want hotatomic
	c.bump()
	c.allowed()
	c.pool.intern()
	c.pending--
}

// bump is reachable from Converge through process: still hot.
func (c *Computation) bump() {
	atomic.AddInt64(&c.n, 1) //lint:want hotatomic
}

// allowed demonstrates suppression inside the hot set.
func (c *Computation) allowed() {
	//lint:allow hotatomic fixture demonstrates suppression on the hot path
	events.Inc()
}

// flushObs is the sanctioned once-per-Converge flush point: excluded
// from the traversal, so these obs calls — including the pool-counter
// flush — are legal.
func (c *Computation) flushObs() {
	events.Add(c.n)
	poolHits.Add(c.pool.hits)
	c.pool.hits = 0
}

// Announce is per-call API, not reachable from Converge: its counter
// bump is legal. The frozen guard makes it a derived frozenfork
// mutator, mirroring the real engine.
func (c *Computation) Announce() {
	if c.frozen {
		panic("bgp: Announce on a frozen Computation")
	}
	events.Inc()
}
