// Package bgp is the hotatomic fixture for the Converge call tree: the
// analyzer walks the static call graph from Computation.Converge and
// flags per-event instrumentation everywhere except flushObs.
package bgp

import (
	"sync/atomic"

	"routelab/internal/obs"
)

var events = obs.Default().Counter("bgp.fixture.events")

// Computation mirrors the real engine's shape: an event loop whose
// helpers must stay free of per-event instrumentation.
type Computation struct {
	n       int64
	pending int
}

// Converge drains the event queue — the hot-path root.
func (c *Computation) Converge() bool {
	for c.pending > 0 {
		c.process()
	}
	c.flushObs()
	return true
}

func (c *Computation) process() {
	events.Inc() //lint:want hotatomic
	c.bump()
	c.allowed()
	c.pending--
}

// bump is reachable from Converge through process: still hot.
func (c *Computation) bump() {
	atomic.AddInt64(&c.n, 1) //lint:want hotatomic
}

// allowed demonstrates suppression inside the hot set.
func (c *Computation) allowed() {
	//lint:allow hotatomic fixture demonstrates suppression on the hot path
	events.Inc()
}

// flushObs is the sanctioned once-per-Converge flush point: excluded
// from the traversal, so this obs call is legal.
func (c *Computation) flushObs() {
	events.Add(c.n)
}

// Announce is per-call API, not reachable from Converge: its counter
// bump is legal.
func (c *Computation) Announce() {
	events.Inc()
}
