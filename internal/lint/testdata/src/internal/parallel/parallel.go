// Package parallel is a fixture stub of the real fan-out layer:
// function literals handed to these entry points are worker bodies,
// the hotatomic rule's second scope.
package parallel

// ForEach runs fn(i) for i in [0, n).
func ForEach(n, workers int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// Map applies fn to every item, results in input order.
func Map[T, R any](items []T, workers int, fn func(i int, item T) R) []R {
	out := make([]R, len(items))
	for i, item := range items {
		out[i] = fn(i, item)
	}
	return out
}

// ForEachStage is the instrumented ForEach.
func ForEachStage(stage string, n, workers int, fn func(i int)) { ForEach(n, workers, fn) }

// MapStage is the instrumented Map.
func MapStage[T, R any](stage string, items []T, workers int, fn func(i int, item T) R) []R {
	return Map(items, workers, fn)
}
