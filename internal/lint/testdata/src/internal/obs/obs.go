// Package obs is a fixture stub of the real metrics registry: the
// hotatomic analyzer recognizes any call into this package path as
// instrumentation.
package obs

// Counter is a monotonic metric.
type Counter struct{ v int64 }

// Inc bumps the counter by one.
func (c *Counter) Inc() { c.v++ }

// Add bumps the counter by n.
func (c *Counter) Add(n int64) { c.v += n }

// Registry holds named metrics.
type Registry struct{}

var def Registry

// Default returns the process-wide registry.
func Default() *Registry { return &def }

// Counter returns the named counter.
func (r *Registry) Counter(name string) *Counter { return &Counter{} }

// Inc bumps a named counter on the default registry.
func Inc(name string) { Default().Counter(name).Inc() }
