// clock.go proves the walltime scope extension to internal/service:
// cached response bodies must not depend on wall-clock reads.
package service

import "time"

func stamp() int64 {
	return time.Now().UnixNano() //lint:want walltime
}
