// Package service is the ctxflow fixture for handler closures: the
// compute closures handed to the cache/gate take a ctx of their own and
// must consult it.
package service

import "context"

type server struct{}

// compute forwards its ctx into the closure.
func (s *server) compute(ctx context.Context, fn func(ctx context.Context) error) error {
	return fn(ctx)
}

// handleGood's closure checks its ctx: legal.
func (s *server) handleGood(ctx context.Context) error {
	return s.compute(ctx, func(ctx context.Context) error {
		return ctx.Err()
	})
}

// handleBad's closure shadows ctx and then ignores it.
func (s *server) handleBad(ctx context.Context) error {
	return s.compute(ctx, func(ctx context.Context) error { //lint:want ctxflow
		return nil
	})
}

// handleSuppressed demonstrates suppression on a closure finding.
func (s *server) handleSuppressed(ctx context.Context) error {
	//lint:allow ctxflow fixture demonstrates suppression
	return s.compute(ctx, func(ctx context.Context) error {
		return nil
	})
}
