// goroleak.go is the goroleak fixture: spawns that are provably
// stoppable (ctx, done channel, WaitGroup join) and spawns that would
// outlive shutdown/drain.
package service

import (
	"context"
	"sync"
)

// pump has no stop proof of its own; spawning it is the leak shape.
func pump(ch chan int) {
	ch <- 1
}

// spawnBadNamed resolves pump through the call graph and flags it.
func spawnBadNamed(ch chan int) {
	go pump(ch) //lint:want goroleak
}

// spawnBadClosure is the literal form of the same leak.
func spawnBadClosure(ch chan int) {
	go func() { //lint:want goroleak
		ch <- 1
	}()
}

// spawnBadValue spawns through a function value the checker cannot
// resolve — flagged, stop-safety must be locally evident.
func spawnBadValue(work func()) {
	go work() //lint:want goroleak
}

// spawnCtx consults its context (negative case).
func spawnCtx(ctx context.Context, ch chan int) {
	go func() {
		select {
		case <-ctx.Done():
		case ch <- 1:
		}
	}()
}

// spawnDone selects on a stop channel (negative case).
func spawnDone(stop chan struct{}, ch chan int) {
	go func() {
		select {
		case <-stop:
		case ch <- 1:
		}
	}()
}

// spawnJoined is joined by a WaitGroup the drain path waits on
// (negative case).
func spawnJoined(wg *sync.WaitGroup, ch chan int) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		ch <- 1
	}()
}

// spawnAllowed demonstrates suppression.
func spawnAllowed(ch chan int) {
	//lint:allow goroleak fixture demonstrates suppression
	go pump(ch)
}
