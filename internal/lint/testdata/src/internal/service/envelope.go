// envelope.go is the envelope fixture: the typed error payload, the
// one blessed writer that builds it, the instrumentation wrapper, and
// handlers that do/don't bypass the envelope.
package service

import "net/http"

// ErrorData mirrors the real API's error payload; building it is what
// marks a function as the blessed envelope writer.
type ErrorData struct {
	Error string
	Code  string
}

// fail is the envelope writer: it builds ErrorData, so its raw
// WriteHeader/Write are sanctioned.
func fail(w http.ResponseWriter, status int, msg, code string) {
	e := ErrorData{Error: msg, Code: code}
	w.WriteHeader(status)
	_, _ = w.Write([]byte(e.Code + ": " + e.Error))
}

// statusWriter is the instrumentation-wrapper shape: embedding
// http.ResponseWriter exempts its WriteHeader forwarding.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.code = code
	sw.ResponseWriter.WriteHeader(code)
}

// handleOK commits a provable success status (negative case).
func handleOK(w http.ResponseWriter) {
	w.WriteHeader(http.StatusNoContent)
}

// handleGood routes its error through the envelope writer (negative).
func handleGood(w http.ResponseWriter, err error) {
	if err != nil {
		fail(w, http.StatusBadRequest, err.Error(), "bad_param")
	}
}

// handleBadError bypasses the envelope with http.Error.
func handleBadError(w http.ResponseWriter) {
	http.Error(w, "boom", http.StatusInternalServerError) //lint:want envelope
}

// handleBadHeader commits error statuses raw: one constant, one the
// checker cannot prove < 400.
func handleBadHeader(w http.ResponseWriter, status int) {
	w.WriteHeader(http.StatusBadGateway) //lint:want envelope
	w.WriteHeader(status)                //lint:want envelope
}

// handleBadWrite drops a raw Write's results.
func handleBadWrite(w http.ResponseWriter) {
	w.Write([]byte("oops")) //lint:want envelope
}

// handleAllowed demonstrates suppression.
func handleAllowed(w http.ResponseWriter) {
	//lint:allow envelope fixture demonstrates suppression
	http.Error(w, "legacy", http.StatusGone)
}
