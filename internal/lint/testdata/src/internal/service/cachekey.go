// cachekey.go is the cachekey fixture: a coalescing cache, a tenant
// (id + cache fields — the shape the analyzer derives), and do calls
// whose keys are/aren't provably scenario-namespaced.
package service

type cache struct{ m map[string][]byte }

// do is the cache's single entry point; the analyzer finds the string
// key parameter by type.
func (c *cache) do(key string, fill func() []byte) []byte {
	if b, ok := c.m[key]; ok {
		return b
	}
	b := fill()
	c.m[key] = b
	return b
}

// tenant is the per-scenario server shape: a string id field plus a
// cache field mark it as the namespace source.
type tenant struct {
	id string
	c  *cache
}

// key is the namespacing helper: every return mentions the id field.
func (t *tenant) key(k string) string { return t.id + "|" + k }

// computeDirect namespaces inline (negative case).
func (t *tenant) computeDirect(k string) []byte {
	return t.c.do(t.id+"|"+k, func() []byte { return nil })
}

// computeVar namespaces through a local variable (negative case).
func (t *tenant) computeVar(k string) []byte {
	key := t.id + "|" + k
	return t.c.do(key, func() []byte { return nil })
}

// computeHelper namespaces through the helper (negative case: the
// string-flow proof follows in-module calls).
func (t *tenant) computeHelper(k string) []byte {
	return t.c.do(t.key(k), func() []byte { return nil })
}

// computeBad hands the raw request key to the shared cache — the PR 7
// cross-scenario bug shape.
func (t *tenant) computeBad(k string) []byte {
	return t.c.do(k, func() []byte { return nil }) //lint:want cachekey
}

// computeAllowed demonstrates suppression for a deliberately
// scenario-global entry.
func (t *tenant) computeAllowed(k string) []byte {
	//lint:allow cachekey fixture demonstrates suppression
	return t.c.do("global|"+k, func() []byte { return nil })
}
