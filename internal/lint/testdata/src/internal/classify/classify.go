// Package classify is the walltime fixture: a golden-backed package
// where wall-clock reads and globally seeded randomness are banned, and
// scenario-seeded sources are the sanctioned idiom.
package classify

import (
	"math/rand"
	"time"
)

func stampBad() int64 {
	return time.Now().UnixNano() //lint:want walltime
}

func elapsedBad(t0 time.Time) time.Duration {
	return time.Since(t0) //lint:want walltime
}

func drawBad() int {
	return rand.Intn(10) //lint:want walltime
}

// drawGood derives a seeded source: the determinism idiom, never
// flagged (rand.New and rand.NewSource are constructors, and methods on
// the derived *rand.Rand are legal).
func drawGood(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func drawSuppressed() float64 {
	//lint:allow walltime fixture demonstrates suppression
	return rand.Float64()
}
