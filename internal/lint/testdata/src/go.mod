module routelab

go 1.22
