package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// CallGraph is the module-wide static call graph: every function and
// method declared in the analyzed module, with edges to the in-module
// functions its body statically calls. Calls through function-typed
// values, interface methods, and builtins carry no edge — the graph is
// an under-approximation, which is the right polarity for the rules
// built on it (a missing edge can only make a rule quieter, never
// noisier on code that proves its own safety).
//
// The graph is built once per Program (see Program.CallGraph) and
// shared by every interprocedural analyzer: hotatomic's Converge
// traversal, frozenfork's mutated-parameter fixpoint, cachekey's
// string-flow proof, and goroleak's spawned-body resolution.
type CallGraph struct {
	prog *Program
	// decls maps every in-module function object to its declaration.
	decls map[*types.Func]*ast.FuncDecl
	// pkgs maps every in-module function object to its home package.
	pkgs map[*types.Func]*Package
	// callees holds the deduplicated in-module callees of each function,
	// in source order (deterministic traversals fall out for free).
	callees map[*types.Func][]*types.Func
}

// CallGraph returns the module's call graph, building it on first use.
func (p *Program) CallGraph() *CallGraph {
	p.cgOnce.Do(func() { p.cg = buildCallGraph(p) })
	return p.cg
}

func buildCallGraph(prog *Program) *CallGraph {
	cg := &CallGraph{
		prog:    prog,
		decls:   make(map[*types.Func]*ast.FuncDecl),
		pkgs:    make(map[*types.Func]*Package),
		callees: make(map[*types.Func][]*types.Func),
	}
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if f, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					cg.decls[f] = fd
					cg.pkgs[f] = pkg
				}
			}
		}
	}
	for f, fd := range cg.decls {
		info := cg.pkgs[f].Info
		seen := make(map[*types.Func]bool)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(info, call)
			if callee == nil || seen[callee] {
				return true
			}
			if _, inModule := cg.decls[callee]; !inModule {
				return true
			}
			seen[callee] = true
			cg.callees[f] = append(cg.callees[f], callee)
			return true
		})
	}
	return cg
}

// Decl returns f's declaration, or nil if f is not declared in the
// module (stdlib, interface method, nil).
func (g *CallGraph) Decl(f *types.Func) *ast.FuncDecl { return g.decls[f] }

// PackageOf returns the package f is declared in, or nil.
func (g *CallGraph) PackageOf(f *types.Func) *Package { return g.pkgs[f] }

// Callees returns f's in-module static callees in source order.
func (g *CallGraph) Callees(f *types.Func) []*types.Func { return g.callees[f] }

// Funcs returns every in-module function, sorted by declaration
// position — the stable iteration order for whole-module fixpoints.
func (g *CallGraph) Funcs() []*types.Func {
	out := make([]*types.Func, 0, len(g.decls))
	for f := range g.decls {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return g.decls[out[i]].Pos() < g.decls[out[j]].Pos() })
	return out
}

// Method locates the method recvType.name declared in pkg, or nil.
func (g *CallGraph) Method(pkg *Package, recvType, name string) *types.Func {
	for f := range g.decls {
		if f.Name() != name || g.pkgs[f] != pkg {
			continue
		}
		recv := f.Type().(*types.Signature).Recv()
		if recv != nil && isNamedType(recv.Type(), pkg.Path, recvType) {
			return f
		}
	}
	return nil
}

// Reachable walks the call graph from root and returns every reached
// function (including root). samePkg restricts the walk to root's
// package — the hotatomic semantics, where the hot set is the Converge
// tree inside internal/bgp. stop names functions that are neither
// reported nor descended into (sanctioned flush points).
func (g *CallGraph) Reachable(root *types.Func, samePkg bool, stop map[string]bool) map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	rootPkg := g.pkgs[root]
	var visit func(f *types.Func)
	visit = func(f *types.Func) {
		decl, ok := g.decls[f]
		if !ok || out[f] != nil || stop[f.Name()] {
			return
		}
		if samePkg && g.pkgs[f] != rootPkg {
			return
		}
		out[f] = decl
		for _, callee := range g.callees[f] {
			visit(callee)
		}
	}
	visit(root)
	return out
}

// enclosingFuncDecls pairs every function declaration of a package with
// its defining object, in source order. Analyzers that reason per
// enclosing function (envelope's blessed writers, goroleak's spawn
// sites, frozenfork's flow tracking) iterate this instead of raw files
// so a finding always knows its home declaration.
func enclosingFuncDecls(pkg *Package) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

// identObject resolves an expression to the object it names: an
// identifier's use/def, or a selector's field/method object. Returns
// nil for anything more complex.
func identObject(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			return obj
		}
		return info.Defs[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

// receiverIdentObject returns the object of a method call's receiver
// when the receiver is a plain identifier (x.M(...)), else nil.
func receiverIdentObject(info *types.Info, call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	return info.Uses[id]
}
