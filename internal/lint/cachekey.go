package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// analyzerCacheKey proves the scenario-namespacing of response-cache
// keys structurally — the PR 7 bug class (one scenario's cached body
// served for another) checked at every key-construction site instead of
// by a single regression test.
//
// The shapes are derived from source:
//
//   - The cache type is any named struct in internal/service with a
//     method named "do" taking a string key (the single entry point the
//     coalescing cache exposes).
//   - The tenant type is any struct in the package holding both a cache
//     field and a string field named "id" — the per-scenario server.
//     Its id field is the namespace every key must carry.
//
// A do call's key argument must provably mention a tenant id: directly
// (srv.id + "|" + key), through local variables, fmt.Sprint*/
// strings.Join, or an in-module helper all of whose returns carry the
// mention (see stringFlow). Calls inside the cache's own methods are
// exempt — the implementation stores what it is handed.
func analyzerCacheKey() *Analyzer {
	return &Analyzer{
		Name: "cachekey",
		Doc:  "response-cache keys must provably include the scenario id (the fleet shares one cache across tenants)",
		Run:  runCacheKey,
	}
}

func runCacheKey(prog *Program, pkg *Package) []Finding {
	if !strings.HasPrefix(pkg.Path, prog.ModulePath+"/internal/service") {
		return nil
	}
	caches, keyIdx := cacheTypes(pkg)
	if len(caches) == 0 {
		return nil
	}
	idFields := tenantIDFields(pkg, caches)
	if len(idFields) == 0 {
		return nil
	}
	cg := prog.CallGraph()
	var out []Finding
	for _, decl := range enclosingFuncDecls(pkg) {
		// The cache implementation itself stores what callers hand it.
		if decl.Recv != nil && len(decl.Recv.List) > 0 {
			if named := namedOf(pkg.Info.TypeOf(decl.Recv.List[0].Type)); named != nil && caches[named] {
				continue
			}
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := calleeFunc(pkg.Info, call)
			if f == nil || f.Name() != "do" {
				return true
			}
			recv := f.Type().(*types.Signature).Recv()
			if recv == nil || !caches[namedOf(recv.Type())] {
				return true
			}
			idx := keyIdx[namedOf(recv.Type())]
			if idx >= len(call.Args) {
				return true
			}
			key := call.Args[idx]
			proven := false
			for _, id := range idFields {
				// Fresh flow state per proof: visited sets are
				// per-question, not per-package.
				if newStringFlow(cg).mentions(pkg, decl.Body, key, id) {
					proven = true
					break
				}
			}
			if !proven {
				out = append(out, Finding{
					Pos:  prog.Fset.Position(key.Pos()),
					Rule: "cachekey",
					Message: "cache key does not provably include the scenario id (prefix it with " +
						"the tenant's id field: one shared cache serves every tenant, and an " +
						"unnamespaced key leaks one scenario's bytes into another's responses)",
				})
			}
			return true
		})
	}
	return out
}

// cacheTypes finds the package's cache-like named structs (a method
// named "do" with a string parameter) and the index of that string key
// parameter.
func cacheTypes(pkg *Package) (map[*types.Named]bool, map[*types.Named]int) {
	caches := make(map[*types.Named]bool)
	keyIdx := make(map[*types.Named]int)
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		for i := 0; i < named.NumMethods(); i++ {
			m := named.Method(i)
			if m.Name() != "do" {
				continue
			}
			params := m.Type().(*types.Signature).Params()
			for j := 0; j < params.Len(); j++ {
				if basic, ok := params.At(j).Type().(*types.Basic); ok && basic.Kind() == types.String {
					caches[named] = true
					keyIdx[named] = j
					break
				}
			}
		}
	}
	return caches, keyIdx
}

// tenantIDFields collects the string "id" fields of structs that also
// hold a cache — the scenario-namespace sources.
func tenantIDFields(pkg *Package, caches map[*types.Named]bool) []*types.Var {
	var out []*types.Var
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		var id *types.Var
		hasCache := false
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if caches[namedOf(f.Type())] {
				hasCache = true
			}
			if f.Name() == "id" {
				if basic, ok := f.Type().(*types.Basic); ok && basic.Kind() == types.String {
					id = f
				}
			}
		}
		if hasCache && id != nil {
			out = append(out, id)
		}
	}
	return out
}

