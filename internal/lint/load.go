// Package lint is routelab's repository-invariant static-analysis
// suite: a dependency-free (stdlib go/ast, go/parser, go/types,
// go/importer) driver plus analyzers that prove the determinism,
// sealing, and hot-path rules this repo's reproducibility claims rest
// on. cmd/routelint is the CLI; DESIGN.md §"Static analysis" documents
// every rule and its motivating bug.
//
// The loader below parses every package in the module from source and
// type-checks it with go/types. Intra-module imports resolve against
// the loader's own package set; standard-library imports resolve
// through go/importer's source importer, so the module's go.mod stays
// require-free and the tool runs on a bare toolchain.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one type-checked package of the analyzed module.
type Package struct {
	// Path is the package's import path (modulePath/relative-dir).
	Path string
	// Dir is the absolute directory the package was parsed from.
	Dir string
	// Files are the parsed source files, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type-checker's resolution results for Files.
	Info *types.Info
}

// Program is a fully loaded module: every package parsed and
// type-checked against one shared FileSet. Analyzers receive the whole
// Program so cross-package rules (the sealed-mutator set, the bgp hot
// path) can be derived from source instead of hardcoded.
type Program struct {
	Fset       *token.FileSet
	ModulePath string
	Root       string
	Packages   []*Package // sorted by Path
	byPath     map[string]*Package

	// cgOnce/cg lazily cache the module-wide call graph so the
	// interprocedural analyzers (frozenfork, cachekey, goroleak) share
	// one build per Run instead of re-walking every body per package.
	cgOnce sync.Once
	cg     *CallGraph

	// ffOnce/ff cache the frozenfork fact tables (derived sink set,
	// frozen-returning functions, mutated-parameter fixpoint), which are
	// module-wide and identical for every analyzed package.
	ffOnce sync.Once
	ff     *frozenFacts
}

// Package returns the loaded package with the given import path, or nil.
func (p *Program) Package(path string) *Package { return p.byPath[path] }

// Load parses and type-checks every package of the module containing
// dir. It fails on parse errors, type errors, or import cycles — the
// analyzers' results are only trustworthy over a fully checked tree.
func Load(dir string) (*Program, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	l := &loader{
		prog: &Program{
			Fset:       token.NewFileSet(),
			ModulePath: modPath,
			Root:       root,
			byPath:     make(map[string]*Package),
		},
		checked: make(map[string]*loadEntry),
	}
	l.std = importer.ForCompiler(l.prog.Fset, "source", nil)
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	for _, d := range dirs {
		if _, err := l.check(l.importPath(d), d); err != nil {
			return nil, err
		}
	}
	paths := make([]string, 0, len(l.prog.byPath))
	for path := range l.prog.byPath {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		l.prog.Packages = append(l.prog.Packages, l.prog.byPath[path])
	}
	return l.prog, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if p, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(p), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		d = parent
	}
}

// packageDirs collects every directory under root holding at least one
// non-test .go file, skipping testdata, vendor, and hidden/underscore
// directories (the same pruning the go tool applies to ./... walks).
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

type loadEntry struct {
	pkg *Package
	err error
	// inProgress marks a package currently being checked, for import
	// cycle detection.
	inProgress bool
}

type loader struct {
	prog    *Program
	std     types.Importer
	checked map[string]*loadEntry
}

// importPath maps an absolute package directory to its import path.
func (l *loader) importPath(dir string) string {
	rel, err := filepath.Rel(l.prog.Root, dir)
	if err != nil || rel == "." {
		return l.prog.ModulePath
	}
	return l.prog.ModulePath + "/" + filepath.ToSlash(rel)
}

// dirOf maps a module-internal import path back to its directory.
func (l *loader) dirOf(path string) string {
	if path == l.prog.ModulePath {
		return l.prog.Root
	}
	rel := strings.TrimPrefix(path, l.prog.ModulePath+"/")
	return filepath.Join(l.prog.Root, filepath.FromSlash(rel))
}

// Import satisfies types.Importer for the module's own packages and
// defers everything else to the stdlib source importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.prog.ModulePath || strings.HasPrefix(path, l.prog.ModulePath+"/") {
		pkg, err := l.check(path, l.dirOf(path))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// check parses and type-checks one module package (memoized).
func (l *loader) check(path, dir string) (*Package, error) {
	if e, ok := l.checked[path]; ok {
		if e.inProgress {
			return nil, fmt.Errorf("lint: import cycle through %s", path)
		}
		return e.pkg, e.err
	}
	e := &loadEntry{inProgress: true}
	l.checked[path] = e

	files, err := l.parseDir(dir)
	if err == nil && len(files) == 0 {
		err = fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	var pkg *Package
	if err == nil {
		pkg, err = l.typeCheck(path, dir, files)
	}
	e.pkg, e.err, e.inProgress = pkg, err, false
	if err == nil {
		l.prog.byPath[path] = pkg
	}
	return pkg, err
}

func (l *loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, ent := range entries {
		n := ent.Name()
		if strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") && !ent.IsDir() {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, n := range names {
		f, err := parser.ParseFile(l.prog.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func (l *loader) typeCheck(path, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	cfg := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := cfg.Check(path, l.prog.Fset, files, info)
	if len(typeErrs) > 0 {
		msgs := make([]string, 0, len(typeErrs))
		for i, e := range typeErrs {
			if i == 8 {
				msgs = append(msgs, fmt.Sprintf("... and %d more", len(typeErrs)-i))
				break
			}
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("lint: type errors in %s:\n  %s", path, strings.Join(msgs, "\n  "))
	}
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}, nil
}
