package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// analyzerFrozenFork proves the COW fork discipline statically: no path
// may reach a frozen-guarded mutator (Announce, Withdraw, the what-if
// edits) or an unblessed adj-RIB-in write on a Computation after
// Freeze()/Fork(). The runtime enforces this with panics; this rule
// moves the failure from a served 500 to a CI diff.
//
// Everything is derived from source, not hardcoded:
//
//   - The frozen-disciplined type and its mutator set come from the
//     guard pattern itself: a method that reads a field named "frozen"
//     and panics is a mutator; a method that writes that field (or
//     calls such a method on its receiver) is a freezer (Freeze, Fork).
//   - Adj-RIB-in writes are blessed only inside methods that consult
//     the sharedRow copy-on-write bitmap (deliver); any other method
//     indexing into the adjIn field is a mutator too.
//   - Functions whose returned value was frozen in their own body
//     (peering.AnycastBase) mark their call results as frozen at call
//     sites, so the discipline follows values across packages.
//   - A module-wide fixpoint over the call graph lifts the mutator set
//     to parameters: a function that forwards a *Computation argument
//     into a mutating position is itself mutating in that position
//     (whatif.EvalOn, peering.DiscoverAlternatesOn).
//
// The flow analysis is an under-approximation: a value is "frozen" at a
// use only when the freeze is provable inside the enclosing declaration
// (a freezer call on the same identifier, or assignment from a
// frozen-returning function). That polarity means no false positives on
// code that re-derives its forks explicitly — which is the pattern the
// repo's campaign code already follows.
func analyzerFrozenFork() *Analyzer {
	return &Analyzer{
		Name: "frozenfork",
		Doc:  "no mutation of a frozen bgp.Computation: paths reaching Announce/Withdraw/what-if edits or unblessed adj-in writes after Freeze/Fork must go through a Fork() child",
		Run:  runFrozenFork,
	}
}

// frozenFacts are the module-wide tables frozenfork derives once per
// Program (cached on Program.ff).
type frozenFacts struct {
	// types are the frozen-disciplined named types (bgp.Computation).
	types map[*types.Named]bool
	// sinks are the frozen-guarded mutators plus unblessed adj-in
	// writers: calling one on a frozen value panics (or corrupts shared
	// COW state).
	sinks map[*types.Func]bool
	// freezers freeze their receiver: Freeze, Fork, and anything that
	// calls one of them on its own receiver.
	freezers map[*types.Func]bool
	// frozenRet marks functions that return a value they froze
	// (peering.AnycastBase): call results are frozen at the call site.
	frozenRet map[*types.Func]bool
	// mut maps a function to its mutated parameter positions (-1 is the
	// receiver); the value is the witness mutator name for messages.
	mut map[*types.Func]map[int]string
}

func (p *Program) frozenFacts() *frozenFacts {
	p.ffOnce.Do(func() { p.ff = buildFrozenFacts(p) })
	return p.ff
}

func buildFrozenFacts(prog *Program) *frozenFacts {
	cg := prog.CallGraph()
	ff := &frozenFacts{
		types:     make(map[*types.Named]bool),
		sinks:     make(map[*types.Func]bool),
		freezers:  make(map[*types.Func]bool),
		frozenRet: make(map[*types.Func]bool),
		mut:       make(map[*types.Func]map[int]string),
	}
	funcs := cg.Funcs()

	// Pass 1: guard-pattern scan — frozen readers that panic are sinks,
	// frozen writers are freezers; both identify the disciplined type.
	for _, f := range funcs {
		recv := f.Type().(*types.Signature).Recv()
		if recv == nil {
			continue
		}
		named := namedOf(recv.Type())
		if named == nil {
			continue
		}
		decl, info := cg.Decl(f), cg.PackageOf(f).Info
		reads, writes, panics := frozenFieldUsage(info, decl.Body)
		if reads && panics {
			ff.sinks[f] = true
			ff.types[named] = true
		}
		if writes {
			ff.freezers[f] = true
			ff.types[named] = true
		}
	}

	// Pass 2: unblessed adj-in writers on disciplined types. Methods
	// that consult the sharedRow COW bitmap (deliver) are the blessed
	// clone sites; everything else writing adjIn is a mutator.
	for _, f := range funcs {
		recv := f.Type().(*types.Signature).Recv()
		if recv == nil || !ff.types[namedOf(recv.Type())] {
			continue
		}
		decl, info := cg.Decl(f), cg.PackageOf(f).Info
		if writesFieldIndex(info, decl.Body, "adjIn") && !referencesField(info, decl.Body, "sharedRow") {
			ff.sinks[f] = true
		}
	}

	// Pass 3: freezer closure — a method that calls a freezer on its own
	// receiver freezes it too (Fork calls Freeze).
	for changed := true; changed; {
		changed = false
		for _, f := range funcs {
			if ff.freezers[f] {
				continue
			}
			sig := f.Type().(*types.Signature)
			if sig.Recv() == nil || !ff.types[namedOf(sig.Recv().Type())] {
				continue
			}
			decl, info := cg.Decl(f), cg.PackageOf(f).Info
			recvObj := receiverObject(info, decl)
			if recvObj == nil {
				continue
			}
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || ff.freezers[f] {
					return !ok
				}
				if ff.freezers[calleeFunc(info, call)] && receiverIdentObject(info, call) == recvObj {
					ff.freezers[f] = true
					changed = true
				}
				return true
			})
		}
	}

	// Pass 4: frozen-returning functions — some return statement returns
	// an identifier the body froze.
	for _, f := range funcs {
		if !resultsIncludeDisciplined(ff, f) {
			continue
		}
		decl, info := cg.Decl(f), cg.PackageOf(f).Info
		frozenLocals := make(map[types.Object]bool)
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if ff.freezers[calleeFunc(info, call)] {
				if obj := receiverIdentObject(info, call); obj != nil {
					frozenLocals[obj] = true
				}
			}
			return true
		})
		if len(frozenLocals) == 0 {
			continue
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			for _, res := range ret.Results {
				if id, ok := ast.Unparen(res).(*ast.Ident); ok && frozenLocals[info.Uses[id]] {
					ff.frozenRet[f] = true
				}
			}
			return true
		})
	}

	// Pass 5: mutated-parameter fixpoint over the call graph. Sinks
	// mutate their receiver; a function forwarding a disciplined
	// parameter into a mutated position inherits the mutation.
	for s := range ff.sinks {
		ff.mut[s] = map[int]string{-1: s.Name()}
	}
	for changed := true; changed; {
		changed = false
		for _, f := range funcs {
			params := disciplinedParams(ff, f)
			if len(params) == 0 {
				continue
			}
			decl, info := cg.Decl(f), cg.PackageOf(f).Info
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				gm := ff.mut[calleeFunc(info, call)]
				if gm == nil {
					return true
				}
				record := func(obj types.Object, witness string) {
					pos, isParam := params[obj]
					if !isParam {
						return
					}
					if ff.mut[f] == nil {
						ff.mut[f] = make(map[int]string)
					}
					if _, done := ff.mut[f][pos]; !done {
						ff.mut[f][pos] = witness
						changed = true
					}
				}
				if w, ok := gm[-1]; ok {
					if obj := receiverIdentObject(info, call); obj != nil {
						record(obj, w)
					}
				}
				for i, arg := range call.Args {
					if w, ok := gm[i]; ok {
						if id, isIdent := ast.Unparen(arg).(*ast.Ident); isIdent {
							record(info.Uses[id], w)
						}
					}
				}
				return true
			})
		}
	}
	return ff
}

// frozenFieldUsage reports whether body reads/writes a struct field
// named "frozen" and whether it panics.
func frozenFieldUsage(info *types.Info, body *ast.BlockStmt) (reads, writes, panics bool) {
	isFrozenSel := func(e ast.Expr) bool {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok {
			return false
		}
		v, ok := info.Uses[sel.Sel].(*types.Var)
		return ok && v.IsField() && v.Name() == "frozen"
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "panic" {
				panics = true
			}
			// atomic.Bool form: c.frozen.Store(...) writes, .Load() reads.
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && isFrozenSel(sel.X) {
				if sel.Sel.Name == "Store" {
					writes = true
				} else {
					reads = true
				}
				return false
			}
		case *ast.AssignStmt: // plain bool form: c.frozen = true
			for _, lhs := range n.Lhs {
				if isFrozenSel(lhs) {
					writes = true
				}
			}
		case *ast.SelectorExpr:
			if isFrozenSel(n) {
				reads = true
			}
		}
		return true
	})
	return reads, writes, panics
}

// writesFieldIndex reports whether body assigns through an index of a
// struct field with the given name (c.adjIn[i] = ..., c.adjIn[i][s] = ...).
func writesFieldIndex(info *types.Info, body *ast.BlockStmt, field string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range assign.Lhs {
			for e := ast.Unparen(lhs); ; {
				idx, ok := e.(*ast.IndexExpr)
				if !ok {
					break
				}
				if sel, ok := ast.Unparen(idx.X).(*ast.SelectorExpr); ok {
					if v, isVar := info.Uses[sel.Sel].(*types.Var); isVar && v.IsField() && v.Name() == field {
						found = true
					}
					break
				}
				e = ast.Unparen(idx.X)
			}
		}
		return true
	})
	return found
}

// referencesField reports whether body mentions a struct field with the
// given name.
func referencesField(info *types.Info, body *ast.BlockStmt, field string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if v, isVar := info.Uses[sel.Sel].(*types.Var); isVar && v.IsField() && v.Name() == field {
				found = true
			}
		}
		return !found
	})
	return found
}

// receiverObject returns the object of a method declaration's named
// receiver, or nil for anonymous receivers.
func receiverObject(info *types.Info, decl *ast.FuncDecl) types.Object {
	if decl.Recv == nil || len(decl.Recv.List) == 0 || len(decl.Recv.List[0].Names) == 0 {
		return nil
	}
	return info.Defs[decl.Recv.List[0].Names[0]]
}

// resultsIncludeDisciplined reports whether f returns a pointer to a
// frozen-disciplined type.
func resultsIncludeDisciplined(ff *frozenFacts, f *types.Func) bool {
	res := f.Type().(*types.Signature).Results()
	for i := 0; i < res.Len(); i++ {
		if ff.types[namedOf(res.At(i).Type())] {
			return true
		}
	}
	return false
}

// disciplinedParams maps f's receiver/parameter objects of disciplined
// pointer type to their position (-1 for the receiver).
func disciplinedParams(ff *frozenFacts, f *types.Func) map[types.Object]int {
	out := make(map[types.Object]int)
	sig := f.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil && ff.types[namedOf(recv.Type())] {
		out[recv] = -1
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if p := sig.Params().At(i); ff.types[namedOf(p.Type())] {
			out[p] = i
		}
	}
	return out
}

// --- per-package flow analysis ----------------------------------------

// frozenEvent is one freeze/clear transition of a local identifier.
type frozenEvent struct {
	pos    token.Pos
	frozen bool
	line   int // origin line, for messages
}

func runFrozenFork(prog *Program, pkg *Package) []Finding {
	ff := prog.frozenFacts()
	if len(ff.sinks) == 0 {
		return nil
	}
	var out []Finding
	for _, decl := range enclosingFuncDecls(pkg) {
		out = append(out, frozenForkDecl(prog, pkg, ff, decl)...)
	}
	return out
}

func frozenForkDecl(prog *Program, pkg *Package, ff *frozenFacts, decl *ast.FuncDecl) []Finding {
	info := pkg.Info
	events := make(map[types.Object][]frozenEvent)
	add := func(obj types.Object, pos token.Pos, frozen bool) {
		if obj == nil || !ff.types[namedOf(obj.Type())] {
			return
		}
		events[obj] = append(events[obj], frozenEvent{pos: pos, frozen: frozen, line: prog.Fset.Position(pos).Line})
	}
	// Event collection: freezer calls freeze their receiver identifier;
	// assignment from a frozen-returning call freezes the target; any
	// other assignment clears it (fresh value, provability lost).
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if ff.freezers[calleeFunc(info, n)] {
				add(receiverIdentObject(info, n), n.Pos(), true)
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				call, isCall := ast.Unparen(n.Rhs[i]).(*ast.CallExpr)
				add(obj, n.Pos(), isCall && ff.frozenRet[calleeFunc(info, call)])
			}
		}
		return true
	})
	for _, evs := range events {
		sort.Slice(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
	}
	frozenAt := func(obj types.Object, pos token.Pos) (bool, int) {
		frozen, line := false, 0
		for _, e := range events[obj] {
			if e.pos >= pos {
				break
			}
			frozen, line = e.frozen, e.line
		}
		return frozen, line
	}

	var out []Finding
	report := func(pos token.Pos, format string, args ...any) {
		out = append(out, Finding{
			Pos:     prog.Fset.Position(pos),
			Rule:    "frozenfork",
			Message: fmt.Sprintf(format, args...),
		})
	}
	frozenRetCall := func(e ast.Expr) *types.Func {
		if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
			if g := calleeFunc(info, call); g != nil && ff.frozenRet[g] {
				return g
			}
		}
		return nil
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		g := calleeFunc(info, call)
		gm := ff.mut[g]
		if gm == nil {
			return true
		}
		if w, mutRecv := gm[-1]; mutRecv {
			if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel {
				if id, isIdent := ast.Unparen(sel.X).(*ast.Ident); isIdent {
					obj := info.Uses[id]
					if frozen, line := frozenAt(obj, call.Pos()); frozen {
						report(call.Pos(), "%s on %q, frozen since line %d: %s panics on a frozen Computation — Fork() a child and mutate that",
							g.Name(), id.Name, line, w)
					}
				} else if rf := frozenRetCall(sel.X); rf != nil {
					report(call.Pos(), "%s on the frozen result of %s: %s panics on a frozen Computation — Fork() it first",
						g.Name(), rf.Name(), w)
				}
			}
		}
		for i, arg := range call.Args {
			w, mutArg := gm[i]
			if !mutArg {
				continue
			}
			if id, isIdent := ast.Unparen(arg).(*ast.Ident); isIdent {
				if frozen, line := frozenAt(info.Uses[id], call.Pos()); frozen {
					report(arg.Pos(), "%s passes %q, frozen since line %d, into a position that reaches mutator %s — pass a Fork() instead",
						g.Name(), id.Name, line, w)
				}
			} else if rf := frozenRetCall(arg); rf != nil {
				report(arg.Pos(), "%s passes the frozen result of %s into a position that reaches mutator %s — Fork() it first",
					g.Name(), rf.Name(), w)
			}
		}
		return true
	})
	return out
}

// FrozenMutatorNames returns the derived frozen-guarded mutator set
// (sinks) of a loaded program, sorted — exported for tests proving the
// set tracks source instead of a hardcoded list.
func FrozenMutatorNames(prog *Program) []string {
	ff := prog.frozenFacts()
	out := make([]string, 0, len(ff.sinks))
	for f := range ff.sinks {
		out = append(out, f.Name())
	}
	sort.Strings(out)
	return out
}
