package lint

import (
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleFindings() []Finding {
	return []Finding{{
		Pos:     token.Position{Filename: "internal/bgp/engine.go", Line: 42, Column: 3},
		Rule:    "hotatomic",
		Message: "per-event counter on the Converge hot path",
	}}
}

func TestBuildReportRoundTrip(t *testing.T) {
	rep := BuildReport("routelab", Analyzers(), 31, sampleFindings())
	if err := rep.Validate(); err != nil {
		t.Fatalf("built report invalid: %v", err)
	}
	if rep.Clean {
		t.Fatal("report with findings marked clean")
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	path := filepath.Join(t.TempDir(), "LINT_routelab.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	back, err := ReadReport(path)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	if back.Module != "routelab" || back.Packages != 31 || len(back.Findings) != 1 {
		t.Fatalf("round trip mangled report: %+v", back)
	}
	if back.Findings[0].Rule != "hotatomic" || back.Findings[0].Line != 42 {
		t.Fatalf("round trip mangled finding: %+v", back.Findings[0])
	}
}

func TestBuildReportClean(t *testing.T) {
	rep := BuildReport("routelab", Analyzers(), 31, nil)
	if err := rep.Validate(); err != nil {
		t.Fatalf("clean report invalid: %v", err)
	}
	if !rep.Clean {
		t.Fatal("finding-free report not marked clean")
	}
	// Findings must encode as [] rather than null so consumers can
	// range without a nil check.
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if strings.Contains(string(data), `"findings":null`) {
		t.Fatalf("clean report encodes findings as null: %s", data)
	}
}

func TestReportValidateRejects(t *testing.T) {
	base := func() *Report { return BuildReport("routelab", Analyzers(), 31, sampleFindings()) }
	cases := []struct {
		name     string
		mutate   func(*Report)
		wantFrag string
	}{
		{"wrong schema", func(r *Report) { r.Schema = "routelab-lint/v2" }, "schema"},
		{"empty module", func(r *Report) { r.Module = "" }, "module"},
		{"empty go version", func(r *Report) { r.GoVersion = "" }, "go_version"},
		{"no analyzers", func(r *Report) { r.Analyzers = nil }, "no analyzers"},
		{"anonymous analyzer", func(r *Report) { r.Analyzers[0].Name = "" }, "empty name"},
		{"zero packages", func(r *Report) { r.Packages = 0 }, "packages"},
		{"finding without file", func(r *Report) { r.Findings[0].File = "" }, "empty file"},
		{"finding without line", func(r *Report) { r.Findings[0].Line = 0 }, "line"},
		{"finding without rule", func(r *Report) { r.Findings[0].Rule = "" }, "empty rule"},
		{"finding without message", func(r *Report) { r.Findings[0].Message = "" }, "empty message"},
		{"clean flag lies", func(r *Report) { r.Clean = true }, "clean"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := base()
			tc.mutate(rep)
			err := rep.Validate()
			if err == nil {
				t.Fatal("validate accepted a corrupt report")
			}
			if !strings.Contains(err.Error(), tc.wantFrag) {
				t.Fatalf("error %q does not mention %q", err, tc.wantFrag)
			}
		})
	}
}

func TestReadReportErrors(t *testing.T) {
	if _, err := ReadReport(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReport(bad); err == nil || !strings.Contains(err.Error(), "parse") {
		t.Fatalf("malformed JSON: got %v, want parse error", err)
	}
}
