package peering

import (
	"testing"

	"routelab/internal/asn"
	"routelab/internal/bgp"
	"routelab/internal/topology"
)

func newTestbed(t *testing.T, seed int64) (*Testbed, *topology.Topology) {
	t.Helper()
	topo := topology.Generate(seed, topology.TestConfig())
	tb, err := NewTestbed(bgp.New(topo, seed))
	if err != nil {
		t.Fatal(err)
	}
	return tb, topo
}

func TestTestbedShape(t *testing.T) {
	tb, topo := newTestbed(t, 61)
	if len(tb.Muxes) != 7 {
		t.Fatalf("%d muxes, want 7", len(tb.Muxes))
	}
	if len(tb.Prefixes) < 2 {
		t.Fatalf("%d prefixes, want >= 2", len(tb.Prefixes))
	}
	for _, m := range tb.Muxes {
		if topo.Rel(tb.Origin, m) != topology.RelProvider {
			t.Errorf("mux %v is not a provider of the testbed AS", m)
		}
	}
}

func TestNewTestbedRequiresHandles(t *testing.T) {
	b := topology.NewBuilder()
	b.AS(1, topology.Stub, "")
	if _, err := NewTestbed(bgp.New(b.Build(), 1)); err == nil {
		t.Error("testbed without handles must fail")
	}
}

func TestDiscoverAlternatesPreferenceOrder(t *testing.T) {
	tb, topo := newTestbed(t, 61)
	// Target: a university's commercial provider (a transit AS that is
	// guaranteed to sit on paths toward PEERING).
	mux := tb.Muxes[0]
	var target asn.ASN
	for _, n := range topo.Neighbors(mux) {
		if n.Role == topology.RelProvider && topo.AS(n.ASN).Class == topology.LargeISP {
			target = n.ASN
			break
		}
	}
	if target.IsZero() {
		// Fall back to the research backbone.
		for _, n := range topo.Neighbors(mux) {
			if n.Role == topology.RelProvider {
				target = n.ASN
				break
			}
		}
	}
	res := tb.DiscoverAlternates(tb.Prefixes[0], target)
	if len(res.Steps) == 0 {
		t.Fatal("no routes discovered")
	}
	if res.Announcements < len(res.Steps) {
		t.Errorf("announcements %d < steps %d", res.Announcements, len(res.Steps))
	}
	// Each step's next hop must be new (poisoning removes it).
	seen := map[asn.ASN]bool{}
	for i, s := range res.Steps {
		nh := s.Route.NextHop
		if seen[nh] {
			t.Fatalf("step %d reuses poisoned next hop %v", i, nh)
		}
		seen[nh] = true
		if i > 0 && len(s.PoisonedSoFar) != i {
			t.Errorf("step %d carries %d poisons, want %d", i, len(s.PoisonedSoFar), i)
		}
		// The poisoned announcement's path must show the AS_SET sandwich
		// for every step after the first.
		if i > 0 && !s.Route.Path.HasSet() {
			t.Errorf("step %d route lacks the poisoned AS_SET: %v", i, s.Route.Path)
		}
	}
	if !res.Exhausted && len(res.Steps) >= maxAlternateRounds {
		t.Error("discovery hit the safety bound without exhausting routes")
	}
	links := res.InterASLinks()
	if len(links) == 0 {
		t.Error("no inter-AS links extracted")
	}
}

func TestMagnetAgingAndMoves(t *testing.T) {
	tb, topo := newTestbed(t, 62)
	// Observe every transit AS (it is cheap at test scale).
	var observe []asn.ASN
	for _, cls := range []topology.Class{topology.Tier1, topology.LargeISP, topology.Research} {
		observe = append(observe, topo.ASesOfClass(cls)...)
	}
	res := tb.Magnet(tb.Prefixes[0], 0, observe)
	if len(res.Observations) == 0 {
		t.Fatal("no observations")
	}
	moved, kept := 0, 0
	for _, o := range res.Observations {
		if o.Moved {
			moved++
		} else {
			kept++
		}
		if len(o.Alternatives) == 0 {
			t.Fatalf("%v has a best route but no alternatives listed", o.AS)
		}
		// The after-route must be among the alternatives (it is the most
		// preferred one).
		if o.Alternatives[0].NextHop != o.After.NextHop {
			t.Errorf("%v: best alternative %v != after route %v",
				o.AS, o.Alternatives[0].NextHop, o.After.NextHop)
		}
	}
	if kept == 0 {
		t.Error("nobody kept the magnet route — ages are not working")
	}
	t.Logf("magnet: %d moved, %d kept", moved, kept)
}

func TestMagnetDifferentMagnetsDiffer(t *testing.T) {
	tb, topo := newTestbed(t, 63)
	observe := topo.ASesOfClass(topology.LargeISP)
	a := tb.Magnet(tb.Prefixes[0], 0, observe)
	b := tb.Magnet(tb.Prefixes[0], 1, observe)
	if a.Magnet == b.Magnet {
		t.Fatal("different mux indexes produced the same magnet")
	}
	// At least some AS should behave differently across magnets.
	diff := false
	bm := map[asn.ASN]MagnetObservation{}
	for _, o := range b.Observations {
		bm[o.AS] = o
	}
	for _, o := range a.Observations {
		if ob, ok := bm[o.AS]; ok && ob.Before.NextHop != o.Before.NextHop {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("magnet location had no effect on any observed AS")
	}
}

func TestDiscoverAlternatesDeterministic(t *testing.T) {
	tb, topo := newTestbed(t, 64)
	target := topo.Names["mux-0"]
	a := tb.DiscoverAlternates(tb.Prefixes[0], target)
	b := tb.DiscoverAlternates(tb.Prefixes[0], target)
	if len(a.Steps) != len(b.Steps) || a.Announcements != b.Announcements {
		t.Fatalf("nondeterministic discovery: %d/%d vs %d/%d",
			len(a.Steps), a.Announcements, len(b.Steps), b.Announcements)
	}
	for i := range a.Steps {
		if a.Steps[i].Route.NextHop != b.Steps[i].Route.NextHop {
			t.Fatalf("step %d differs", i)
		}
	}
}

func TestDiscoverAlternatesUnreachableTarget(t *testing.T) {
	tb, topo := newTestbed(t, 65)
	// A cable operator may have no route toward PEERING prefixes (its
	// only neighbors are its customers and their exports are limited).
	var unreachable asn.ASN
	for _, a := range topo.ASesOfClass(topology.CableOp) {
		res := tb.DiscoverAlternates(tb.Prefixes[0], a)
		if len(res.Steps) == 0 {
			unreachable = a
			if !res.Exhausted {
				t.Errorf("routeless target should report Exhausted")
			}
			if res.Announcements != 1 {
				t.Errorf("routeless target used %d announcements", res.Announcements)
			}
		}
	}
	_ = unreachable // some seeds route everywhere; absence is fine
}

func TestMagnetObservationSubset(t *testing.T) {
	tb, topo := newTestbed(t, 66)
	// Observing a subset yields exactly that subset (those with routes).
	observe := topo.ASesOfClass(topology.Tier1)[:2]
	res := tb.Magnet(tb.Prefixes[0], 0, observe)
	if len(res.Observations) > len(observe) {
		t.Fatalf("%d observations from %d observed ASes", len(res.Observations), len(observe))
	}
	for _, o := range res.Observations {
		found := false
		for _, a := range observe {
			if a == o.AS {
				found = true
			}
		}
		if !found {
			t.Fatalf("observation for unrequested AS %v", o.AS)
		}
	}
}
