// Package wire implements the BGP-4 message formats of RFC 4271 (with
// four-octet AS numbers per RFC 6793 used natively): OPEN, UPDATE,
// KEEPALIVE, and NOTIFICATION encoding and decoding over byte slices.
//
// routelab uses it to move routes between the simulator and the
// collector emulation over real TCP connections (package session), so
// the feed pipeline exercises genuine wire parsing rather than passing
// Go structs around.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"routelab/internal/asn"
)

// MsgType is the BGP message type code.
type MsgType uint8

// RFC 4271 §4.1 message types.
const (
	MsgOpen         MsgType = 1
	MsgUpdate       MsgType = 2
	MsgNotification MsgType = 3
	MsgKeepalive    MsgType = 4
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case MsgOpen:
		return "OPEN"
	case MsgUpdate:
		return "UPDATE"
	case MsgNotification:
		return "NOTIFICATION"
	case MsgKeepalive:
		return "KEEPALIVE"
	default:
		return fmt.Sprintf("type-%d", uint8(t))
	}
}

const (
	// HeaderLen is the fixed BGP header size.
	HeaderLen = 19
	// MaxMessageLen caps any BGP message (RFC 4271 §4.1).
	MaxMessageLen = 4096
	markerByte    = 0xff
)

// ErrShortMessage reports a truncated buffer.
var ErrShortMessage = errors.New("wire: short message")

// ErrBadMarker reports a corrupted synchronization marker.
var ErrBadMarker = errors.New("wire: bad marker")

// Message is any decodable BGP message.
type Message interface {
	Type() MsgType
	// Encode appends the complete message (header included) to dst.
	Encode(dst []byte) []byte
}

// header appends the 19-byte header with a length placeholder and
// returns the offset of the length field.
func header(dst []byte, t MsgType) ([]byte, int) {
	for i := 0; i < 16; i++ {
		dst = append(dst, markerByte)
	}
	lenOff := len(dst)
	dst = append(dst, 0, 0, byte(t))
	return dst, lenOff
}

// finish patches the message length.
func finish(dst []byte, lenOff int) []byte {
	binary.BigEndian.PutUint16(dst[lenOff:], uint16(len(dst)-lenOff+16))
	return dst
}

// DecodeHeader validates a header and returns the type and TOTAL message
// length (header included).
func DecodeHeader(b []byte) (MsgType, int, error) {
	if len(b) < HeaderLen {
		return 0, 0, ErrShortMessage
	}
	for i := 0; i < 16; i++ {
		if b[i] != markerByte {
			return 0, 0, ErrBadMarker
		}
	}
	total := int(binary.BigEndian.Uint16(b[16:]))
	t := MsgType(b[18])
	if total < HeaderLen || total > MaxMessageLen {
		return 0, 0, fmt.Errorf("wire: invalid length %d", total)
	}
	return t, total, nil
}

// Decode parses one complete message.
func Decode(b []byte) (Message, error) {
	t, total, err := DecodeHeader(b)
	if err != nil {
		return nil, err
	}
	if len(b) < total {
		return nil, ErrShortMessage
	}
	body := b[HeaderLen:total]
	switch t {
	case MsgOpen:
		return decodeOpen(body)
	case MsgUpdate:
		return decodeUpdate(body)
	case MsgKeepalive:
		if len(body) != 0 {
			return nil, errors.New("wire: KEEPALIVE with body")
		}
		return Keepalive{}, nil
	case MsgNotification:
		return decodeNotification(body)
	default:
		return nil, fmt.Errorf("wire: unknown message type %d", t)
	}
}

// Open is the OPEN message. AS numbers are carried four-octet in the
// capabilities (RFC 6793); the fixed field holds AS_TRANS when needed.
type Open struct {
	Version  uint8
	AS       asn.ASN
	HoldTime uint16
	BGPID    uint32
}

// asTrans is the RFC 6793 placeholder for the two-octet AS field.
const asTrans = 23456

// Type implements Message.
func (Open) Type() MsgType { return MsgOpen }

// Encode implements Message.
func (o Open) Encode(dst []byte) []byte {
	dst, lenOff := header(dst, MsgOpen)
	dst = append(dst, o.Version)
	short := uint16(asTrans)
	if o.AS <= 0xffff {
		short = uint16(o.AS)
	}
	dst = binary.BigEndian.AppendUint16(dst, short)
	dst = binary.BigEndian.AppendUint16(dst, o.HoldTime)
	dst = binary.BigEndian.AppendUint32(dst, o.BGPID)
	// Optional parameters: one capabilities parameter holding the
	// four-octet-AS capability (code 65).
	cap65 := []byte{65, 4, 0, 0, 0, 0}
	binary.BigEndian.PutUint32(cap65[2:], uint32(o.AS))
	param := append([]byte{2, byte(len(cap65))}, cap65...)
	dst = append(dst, byte(len(param)))
	dst = append(dst, param...)
	return finish(dst, lenOff)
}

func decodeOpen(b []byte) (Open, error) {
	var o Open
	if len(b) < 10 {
		return o, ErrShortMessage
	}
	o.Version = b[0]
	o.AS = asn.ASN(binary.BigEndian.Uint16(b[1:]))
	o.HoldTime = binary.BigEndian.Uint16(b[3:])
	o.BGPID = binary.BigEndian.Uint32(b[5:])
	optLen := int(b[9])
	opts := b[10:]
	if len(opts) != optLen {
		return o, fmt.Errorf("wire: OPEN optional parameters truncated")
	}
	// Scan for the four-octet-AS capability.
	for len(opts) >= 2 {
		ptype, plen := opts[0], int(opts[1])
		if len(opts) < 2+plen {
			return o, fmt.Errorf("wire: OPEN parameter truncated")
		}
		body := opts[2 : 2+plen]
		if ptype == 2 { // capabilities
			for len(body) >= 2 {
				code, clen := body[0], int(body[1])
				if len(body) < 2+clen {
					return o, fmt.Errorf("wire: capability truncated")
				}
				if code == 65 && clen == 4 {
					o.AS = asn.ASN(binary.BigEndian.Uint32(body[2:]))
				}
				body = body[2+clen:]
			}
		}
		opts = opts[2+plen:]
	}
	return o, nil
}

// Keepalive is the (bodyless) KEEPALIVE message.
type Keepalive struct{}

// Type implements Message.
func (Keepalive) Type() MsgType { return MsgKeepalive }

// Encode implements Message.
func (Keepalive) Encode(dst []byte) []byte {
	dst, lenOff := header(dst, MsgKeepalive)
	return finish(dst, lenOff)
}

// Notification is the NOTIFICATION message.
type Notification struct {
	Code, Subcode uint8
	Data          []byte
}

// Type implements Message.
func (Notification) Type() MsgType { return MsgNotification }

// Encode implements Message.
func (n Notification) Encode(dst []byte) []byte {
	dst, lenOff := header(dst, MsgNotification)
	dst = append(dst, n.Code, n.Subcode)
	dst = append(dst, n.Data...)
	return finish(dst, lenOff)
}

func decodeNotification(b []byte) (Notification, error) {
	if len(b) < 2 {
		return Notification{}, ErrShortMessage
	}
	return Notification{Code: b[0], Subcode: b[1], Data: append([]byte(nil), b[2:]...)}, nil
}
