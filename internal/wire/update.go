package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"routelab/internal/asn"
)

// Path attribute type codes (RFC 4271 §4.3, RFC 1997 for COMMUNITIES).
const (
	attrOrigin      = 1
	attrASPath      = 2
	attrNextHop     = 3
	attrMED         = 4
	attrCommunities = 8

	flagOptional   = 0x80
	flagTransitive = 0x40
	flagExtLen     = 0x10
)

// Community is an RFC 1997 community value (asn:value packed 16:16).
type Community uint32

// MakeCommunity packs asn:value.
func MakeCommunity(as uint16, value uint16) Community {
	return Community(uint32(as)<<16 | uint32(value))
}

// Well-known communities (RFC 1997 §2).
const (
	CommunityNoExport    Community = 0xFFFFFF01
	CommunityNoAdvertise Community = 0xFFFFFF02
)

// Origin attribute values.
const (
	OriginIGP        = 0
	OriginEGP        = 1
	OriginIncomplete = 2
)

// Update is the UPDATE message: withdrawn prefixes, path attributes,
// and announced NLRI. AS_PATH uses four-octet AS numbers natively.
type Update struct {
	Withdrawn []asn.Prefix
	Origin    uint8
	ASPath    asn.Path
	NextHop   asn.Addr
	// MED is the multi-exit discriminator; HasMED gates its emission
	// (zero is a legal MED).
	MED    uint32
	HasMED bool
	// Communities carries RFC 1997 community values.
	Communities []Community
	NLRI        []asn.Prefix
}

// Type implements Message.
func (Update) Type() MsgType { return MsgUpdate }

// Encode implements Message.
func (u Update) Encode(dst []byte) []byte {
	dst, lenOff := header(dst, MsgUpdate)
	// Withdrawn routes.
	wStart := len(dst)
	dst = append(dst, 0, 0)
	for _, p := range u.Withdrawn {
		dst = appendPrefix(dst, p)
	}
	binary.BigEndian.PutUint16(dst[wStart:], uint16(len(dst)-wStart-2))
	// Path attributes (only when announcing).
	aStart := len(dst)
	dst = append(dst, 0, 0)
	if len(u.NLRI) > 0 {
		dst = appendAttr(dst, attrOrigin, []byte{u.Origin})
		dst = appendAttr(dst, attrASPath, encodeASPath(u.ASPath))
		var nh [4]byte
		binary.BigEndian.PutUint32(nh[:], uint32(u.NextHop))
		dst = appendAttr(dst, attrNextHop, nh[:])
		if u.HasMED {
			var med [4]byte
			binary.BigEndian.PutUint32(med[:], u.MED)
			dst = appendOptAttr(dst, attrMED, med[:])
		}
		if len(u.Communities) > 0 {
			body := make([]byte, 0, 4*len(u.Communities))
			for _, c := range u.Communities {
				body = binary.BigEndian.AppendUint32(body, uint32(c))
			}
			dst = appendOptAttr(dst, attrCommunities, body)
		}
	}
	binary.BigEndian.PutUint16(dst[aStart:], uint16(len(dst)-aStart-2))
	for _, p := range u.NLRI {
		dst = appendPrefix(dst, p)
	}
	return finish(dst, lenOff)
}

func appendAttr(dst []byte, code uint8, body []byte) []byte {
	return appendAttrFlags(dst, flagTransitive, code, body)
}

// appendOptAttr writes an optional transitive attribute (MED is
// formally optional non-transitive; communities optional transitive —
// the flag nuance is preserved).
func appendOptAttr(dst []byte, code uint8, body []byte) []byte {
	flags := uint8(flagOptional)
	if code == attrCommunities {
		flags |= flagTransitive
	}
	return appendAttrFlags(dst, flags, code, body)
}

func appendAttrFlags(dst []byte, flags, code uint8, body []byte) []byte {
	if len(body) > 255 {
		dst = append(dst, flags|flagExtLen, code)
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(body)))
	} else {
		dst = append(dst, flags, code, byte(len(body)))
	}
	return append(dst, body...)
}

// appendPrefix writes the RFC 4271 (length, truncated-address) encoding.
func appendPrefix(dst []byte, p asn.Prefix) []byte {
	dst = append(dst, p.Len)
	nBytes := (int(p.Len) + 7) / 8
	var raw [4]byte
	binary.BigEndian.PutUint32(raw[:], uint32(p.Addr))
	return append(dst, raw[:nBytes]...)
}

// encodeASPath writes segments with four-octet ASNs.
func encodeASPath(p asn.Path) []byte {
	var out []byte
	for _, s := range p.Segments {
		out = append(out, byte(s.Type), byte(len(s.ASNs)))
		for _, a := range s.ASNs {
			out = binary.BigEndian.AppendUint32(out, uint32(a))
		}
	}
	return out
}

func decodeUpdate(b []byte) (Update, error) {
	var u Update
	if len(b) < 2 {
		return u, ErrShortMessage
	}
	wLen := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < wLen {
		return u, fmt.Errorf("wire: withdrawn routes truncated")
	}
	var err error
	u.Withdrawn, err = decodePrefixes(b[:wLen])
	if err != nil {
		return u, err
	}
	b = b[wLen:]
	if len(b) < 2 {
		return u, ErrShortMessage
	}
	aLen := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < aLen {
		return u, fmt.Errorf("wire: path attributes truncated")
	}
	if err := u.decodeAttrs(b[:aLen]); err != nil {
		return u, err
	}
	u.NLRI, err = decodePrefixes(b[aLen:])
	return u, err
}

func (u *Update) decodeAttrs(b []byte) error {
	for len(b) > 0 {
		if len(b) < 3 {
			return ErrShortMessage
		}
		flags, code := b[0], b[1]
		var alen, hdr int
		if flags&flagExtLen != 0 {
			if len(b) < 4 {
				return ErrShortMessage
			}
			alen, hdr = int(binary.BigEndian.Uint16(b[2:])), 4
		} else {
			alen, hdr = int(b[2]), 3
		}
		if len(b) < hdr+alen {
			return fmt.Errorf("wire: attribute %d truncated", code)
		}
		body := b[hdr : hdr+alen]
		switch code {
		case attrOrigin:
			if alen != 1 {
				return errors.New("wire: bad ORIGIN length")
			}
			u.Origin = body[0]
		case attrASPath:
			p, err := decodeASPath(body)
			if err != nil {
				return err
			}
			u.ASPath = p
		case attrNextHop:
			if alen != 4 {
				return errors.New("wire: bad NEXT_HOP length")
			}
			u.NextHop = asn.Addr(binary.BigEndian.Uint32(body))
		case attrMED:
			if alen != 4 {
				return errors.New("wire: bad MED length")
			}
			u.MED = binary.BigEndian.Uint32(body)
			u.HasMED = true
		case attrCommunities:
			if alen%4 != 0 {
				return errors.New("wire: bad COMMUNITIES length")
			}
			for i := 0; i < alen; i += 4 {
				u.Communities = append(u.Communities, Community(binary.BigEndian.Uint32(body[i:])))
			}
		default:
			// Unknown transitive attributes are tolerated.
		}
		b = b[hdr+alen:]
	}
	return nil
}

func decodeASPath(b []byte) (asn.Path, error) {
	var p asn.Path
	for len(b) > 0 {
		if len(b) < 2 {
			return p, ErrShortMessage
		}
		st := asn.SegmentType(b[0])
		if st != asn.Sequence && st != asn.Set {
			return p, fmt.Errorf("wire: unsupported AS_PATH segment type %d", b[0])
		}
		n := int(b[1])
		if len(b) < 2+4*n {
			return p, errors.New("wire: AS_PATH segment truncated")
		}
		seg := asn.Segment{Type: st}
		for i := 0; i < n; i++ {
			seg.ASNs = append(seg.ASNs, asn.ASN(binary.BigEndian.Uint32(b[2+4*i:])))
		}
		p.Segments = append(p.Segments, seg)
		b = b[2+4*n:]
	}
	return p, nil
}

func decodePrefixes(b []byte) ([]asn.Prefix, error) {
	var out []asn.Prefix
	for len(b) > 0 {
		l := b[0]
		if l > 32 {
			return nil, fmt.Errorf("wire: prefix length %d", l)
		}
		nBytes := (int(l) + 7) / 8
		if len(b) < 1+nBytes {
			return nil, errors.New("wire: prefix truncated")
		}
		var raw [4]byte
		copy(raw[:], b[1:1+nBytes])
		out = append(out, asn.NewPrefix(asn.Addr(binary.BigEndian.Uint32(raw[:])), l))
		b = b[1+nBytes:]
	}
	return out, nil
}
