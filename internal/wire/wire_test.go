package wire

import (
	"math/rand"
	"testing"
	"testing/quick"

	"routelab/internal/asn"
)

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	buf := m.Encode(nil)
	got, err := Decode(buf)
	if err != nil {
		t.Fatalf("decode %s: %v", m.Type(), err)
	}
	if got.Type() != m.Type() {
		t.Fatalf("type mismatch: %v vs %v", got.Type(), m.Type())
	}
	return got
}

func TestOpenRoundTrip(t *testing.T) {
	o := Open{Version: 4, AS: 64512, HoldTime: 180, BGPID: 0x0a000001}
	got := roundTrip(t, o).(Open)
	if got != o {
		t.Fatalf("got %+v, want %+v", got, o)
	}
}

func TestOpenFourOctetAS(t *testing.T) {
	o := Open{Version: 4, AS: 4200000001, HoldTime: 90, BGPID: 7}
	buf := o.Encode(nil)
	// The fixed two-octet field must carry AS_TRANS.
	body := buf[HeaderLen:]
	if short := int(body[1])<<8 | int(body[2]); short != asTrans {
		t.Errorf("two-octet field = %d, want AS_TRANS", short)
	}
	got := roundTrip(t, o).(Open)
	if got.AS != o.AS {
		t.Fatalf("four-octet AS lost: %v", got.AS)
	}
}

func TestKeepaliveRoundTrip(t *testing.T) {
	buf := Keepalive{}.Encode(nil)
	if len(buf) != HeaderLen {
		t.Fatalf("keepalive length = %d", len(buf))
	}
	roundTrip(t, Keepalive{})
}

func TestNotificationRoundTrip(t *testing.T) {
	n := Notification{Code: 6, Subcode: 2, Data: []byte("bye")}
	got := roundTrip(t, n).(Notification)
	if got.Code != 6 || got.Subcode != 2 || string(got.Data) != "bye" {
		t.Fatalf("got %+v", got)
	}
}

func TestUpdateRoundTrip(t *testing.T) {
	u := Update{
		Withdrawn: []asn.Prefix{mustPfx("10.1.0.0/16")},
		Origin:    OriginIGP,
		ASPath: asn.PathFromASNs(65001, 65002).
			PrependSet([]asn.ASN{64512, 64513}).Prepend(65000),
		NextHop: asn.AddrFrom4(192, 0, 2, 1),
		NLRI:    []asn.Prefix{mustPfx("198.51.100.0/24"), mustPfx("203.0.113.0/25")},
	}
	got := roundTrip(t, u).(Update)
	if len(got.Withdrawn) != 1 || got.Withdrawn[0] != u.Withdrawn[0] {
		t.Errorf("withdrawn: %v", got.Withdrawn)
	}
	if !got.ASPath.Equal(u.ASPath) {
		t.Errorf("as path: %v vs %v", got.ASPath, u.ASPath)
	}
	if got.NextHop != u.NextHop || got.Origin != u.Origin {
		t.Errorf("attrs: %+v", got)
	}
	if len(got.NLRI) != 2 || got.NLRI[0] != u.NLRI[0] || got.NLRI[1] != u.NLRI[1] {
		t.Errorf("nlri: %v", got.NLRI)
	}
}

func TestUpdateWithdrawOnly(t *testing.T) {
	u := Update{Withdrawn: []asn.Prefix{mustPfx("10.0.0.0/8")}}
	got := roundTrip(t, u).(Update)
	if len(got.NLRI) != 0 || len(got.Withdrawn) != 1 {
		t.Fatalf("got %+v", got)
	}
}

func TestDecodeHeaderErrors(t *testing.T) {
	if _, _, err := DecodeHeader(make([]byte, 5)); err != ErrShortMessage {
		t.Error("short buffer must fail")
	}
	bad := Keepalive{}.Encode(nil)
	bad[3] = 0
	if _, _, err := DecodeHeader(bad); err != ErrBadMarker {
		t.Error("corrupt marker must fail")
	}
	tooLong := Keepalive{}.Encode(nil)
	tooLong[16], tooLong[17] = 0xff, 0xff
	if _, _, err := DecodeHeader(tooLong); err == nil {
		t.Error("oversized message must fail")
	}
}

func TestDecodeTruncatedUpdate(t *testing.T) {
	u := Update{NLRI: []asn.Prefix{mustPfx("10.0.0.0/8")}, ASPath: asn.PathFromASNs(1)}
	buf := u.Encode(nil)
	for cut := HeaderLen; cut < len(buf); cut++ {
		trimmed := make([]byte, cut)
		copy(trimmed, buf[:cut])
		if _, err := Decode(trimmed); err == nil {
			// Patch length so the header passes, body is short.
			t.Fatalf("truncated at %d decoded successfully", cut)
		}
	}
}

func TestDecodeGarbageBodyDoesNotPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	base := Update{NLRI: []asn.Prefix{mustPfx("10.0.0.0/8")}, ASPath: asn.PathFromASNs(1, 2)}.Encode(nil)
	for i := 0; i < 2000; i++ {
		buf := append([]byte(nil), base...)
		// Flip random body bytes; Decode must never panic.
		for j := 0; j < 3; j++ {
			buf[HeaderLen+rng.Intn(len(buf)-HeaderLen)] = byte(rng.Intn(256))
		}
		_, _ = Decode(buf)
	}
}

// Property: any single-sequence path with valid prefixes round-trips.
func TestUpdateRoundTripProperty(t *testing.T) {
	f := func(seed int64, nASNs, nPfx uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var asns []asn.ASN
		for i := 0; i < int(nASNs%20)+1; i++ {
			asns = append(asns, asn.ASN(rng.Uint32()%1e6+1))
		}
		u := Update{
			Origin:  uint8(rng.Intn(3)),
			ASPath:  asn.PathFromASNs(asns...),
			NextHop: asn.Addr(rng.Uint32()),
		}
		for i := 0; i < int(nPfx%8)+1; i++ {
			u.NLRI = append(u.NLRI, asn.NewPrefix(asn.Addr(rng.Uint32()), uint8(rng.Intn(33))))
		}
		got, err := Decode(u.Encode(nil))
		if err != nil {
			return false
		}
		gu := got.(Update)
		if !gu.ASPath.Equal(u.ASPath) || gu.NextHop != u.NextHop || len(gu.NLRI) != len(u.NLRI) {
			return false
		}
		for i := range u.NLRI {
			if gu.NLRI[i] != u.NLRI[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func mustPfx(s string) asn.Prefix {
	p, err := asn.ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

func TestUpdateMEDAndCommunities(t *testing.T) {
	u := Update{
		Origin:      OriginIGP,
		ASPath:      asn.PathFromASNs(65000),
		NextHop:     asn.AddrFrom4(10, 0, 0, 1),
		MED:         0, // zero MED must still round-trip
		HasMED:      true,
		Communities: []Community{MakeCommunity(65000, 120), CommunityNoExport},
		NLRI:        []asn.Prefix{mustPfx("198.51.100.0/24")},
	}
	got := roundTrip(t, u).(Update)
	if !got.HasMED || got.MED != 0 {
		t.Errorf("MED = %v/%v", got.MED, got.HasMED)
	}
	if len(got.Communities) != 2 || got.Communities[0] != MakeCommunity(65000, 120) ||
		got.Communities[1] != CommunityNoExport {
		t.Errorf("communities = %v", got.Communities)
	}
}

func TestUpdateWithoutMED(t *testing.T) {
	u := Update{ASPath: asn.PathFromASNs(1), NextHop: 1, NLRI: []asn.Prefix{mustPfx("10.0.0.0/8")}}
	got := roundTrip(t, u).(Update)
	if got.HasMED {
		t.Error("MED appeared out of nowhere")
	}
	if len(got.Communities) != 0 {
		t.Error("communities appeared out of nowhere")
	}
}

func TestMakeCommunity(t *testing.T) {
	c := MakeCommunity(3356, 70)
	if uint32(c) != 3356<<16|70 {
		t.Errorf("MakeCommunity = %x", uint32(c))
	}
	if CommunityNoExport != 0xFFFFFF01 {
		t.Error("well-known NO_EXPORT value drifted")
	}
}
