package wire

import (
	"bytes"
	"testing"
)

// FuzzDecode drives the BGP message decoder with arbitrary bytes (the
// checked-in seed corpus under testdata/fuzz/FuzzDecode holds encodings
// of every message type plus corrupted framings; regenerate with
// cmd/corpusgen). Properties:
//
//   - Decode never panics; malformed input returns an error.
//   - Decoding is left-inverse to encoding on decoder-accepted values:
//     whatever Decode accepts, its re-encoding decodes to a message that
//     re-encodes byte-identically (encode∘decode is idempotent). Plain
//     DeepEqual of the two messages would be too strong — the encoder
//     canonicalizes (attributes without NLRI are dropped, extended
//     lengths are minimized), so the fixed point is the encoding.
//
// The re-decode leg is skipped when the canonical encoding exceeds
// MaxMessageLen: a near-cap UPDATE carrying only NLRI grows past 4096
// once the encoder adds the mandatory attributes, and the framing layer
// legitimately refuses such a message.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(Keepalive{}.Encode(nil))
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := Decode(b)
		if err != nil {
			return
		}
		enc1 := m.Encode(nil)
		if len(enc1) > MaxMessageLen {
			return
		}
		m2, err := Decode(enc1)
		if err != nil {
			t.Fatalf("re-decode of own encoding failed: %v\nmsg: %#v\nenc: %x", err, m, enc1)
		}
		if m2.Type() != m.Type() {
			t.Fatalf("type changed across round trip: %v -> %v", m.Type(), m2.Type())
		}
		enc2 := m2.Encode(nil)
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("encoding not idempotent:\nenc1: %x\nenc2: %x", enc1, enc2)
		}
	})
}
