package topology

import (
	"fmt"
	"sort"

	"routelab/internal/asn"
	"routelab/internal/dnsdb"
	"routelab/internal/geo"
	"routelab/internal/registry"
)

// Topology is the ground-truth Internet. It is explicitly read-only
// after build: Generate, Builder.Build, and Restored seal the topology,
// after which every mutator panics. Sealing is what lets the routing
// engine, the traceroute simulator, and every parallel stage (see
// internal/parallel) share one Topology across goroutines with no
// locking — concurrent readers are always safe on a sealed topology.
type Topology struct {
	World    *geo.World
	Registry *registry.Registry
	DNS      *dnsdb.DB

	ases      map[asn.ASN]*AS
	order     []asn.ASN // generation order, ascending ASN
	links     map[LinkKey]*Link
	neighbors map[asn.ASN][]Neighbor

	prefixOrigin map[asn.Prefix]asn.ASN
	infraOwner   map[asn.Prefix]asn.ASN
	// prefixCity pins an announced prefix's hosts to one city (content
	// providers announce regional serving prefixes). Unpinned prefixes
	// have hosts spread across the owner's PoPs.
	prefixCity map[asn.Prefix]geo.CityID
	// contentPrefix marks prefixes that serve content traffic (a major
	// provider's serving prefixes and off-net cache prefixes): the
	// destinations traffic-engineering policies key on.
	contentPrefix map[asn.Prefix]bool

	// Names exposes scenario handles ("cdn-major", "vod-major", ...)
	// for ASes that play a named role in experiments.
	Names map[string]asn.ASN

	// RetiredLinks existed in earlier snapshot epochs but have been
	// decommissioned; relationship inference that aggregates historical
	// snapshots may still believe in them (the paper's stale
	// AS3549–Netflix link). They are NOT part of current routing.
	RetiredLinks []*Link

	// sealed marks the topology read-only; see seal.
	sealed bool
}

// newTopology returns an empty topology bound to its substrates.
func newTopology(w *geo.World, reg *registry.Registry, dns *dnsdb.DB) *Topology {
	return &Topology{
		World:         w,
		Registry:      reg,
		DNS:           dns,
		ases:          make(map[asn.ASN]*AS),
		links:         make(map[LinkKey]*Link),
		neighbors:     make(map[asn.ASN][]Neighbor),
		prefixOrigin:  make(map[asn.Prefix]asn.ASN),
		infraOwner:    make(map[asn.Prefix]asn.ASN),
		prefixCity:    make(map[asn.Prefix]geo.CityID),
		contentPrefix: make(map[asn.Prefix]bool),
		Names:         make(map[string]asn.ASN),
	}
}

// seal marks the topology read-only. Every construction path (Generate,
// Builder.Build, Restored) calls it exactly once; after that, mutators
// panic, which is what makes lock-free concurrent reads sound.
func (t *Topology) seal() { t.sealed = true }

// mutable panics when the topology is sealed. Every generator-only
// mutator calls it first, turning a would-be data race into a loud,
// deterministic failure at the mutation site.
func (t *Topology) mutable(op string) {
	if t.sealed {
		panic("topology: " + op + " on a sealed topology (read-only after build)")
	}
}

// MarkContentPrefix tags a prefix as content-serving. Generator-only.
func (t *Topology) MarkContentPrefix(p asn.Prefix) {
	t.mutable("MarkContentPrefix")
	t.contentPrefix[p] = true
}

// IsContentPrefix reports whether the prefix serves content traffic
// (a major provider's serving space or a hosted cache).
func (t *Topology) IsContentPrefix(p asn.Prefix) bool {
	if t.contentPrefix[p] {
		return true
	}
	o := t.ases[t.prefixOrigin[p]]
	return o != nil && o.Class == Content
}

// PinPrefix anchors a prefix's hosts to a city (a regional serving
// prefix). Generator-only.
func (t *Topology) PinPrefix(p asn.Prefix, c geo.CityID) {
	t.mutable("PinPrefix")
	t.prefixCity[p] = c
}

// CityOfPrefix returns the pinned city of a prefix, or 0.
func (t *Topology) CityOfPrefix(p asn.Prefix) geo.CityID { return t.prefixCity[p] }

// addAS inserts an AS; panics on duplicates (generator bug, not runtime
// condition).
func (t *Topology) addAS(a *AS) {
	t.mutable("addAS")
	if _, dup := t.ases[a.ASN]; dup {
		panic(fmt.Sprintf("topology: duplicate %s", a.ASN))
	}
	t.ases[a.ASN] = a
	t.order = append(t.order, a.ASN)
	for _, p := range a.Prefixes {
		t.prefixOrigin[p] = a.ASN
	}
	if !a.InfraPrefix.IsZero() {
		t.infraOwner[a.InfraPrefix] = a.ASN
	}
}

// addLink inserts a link and indexes both neighbor lists.
func (t *Topology) addLink(l *Link) {
	t.mutable("addLink")
	if l.Lo > l.Hi {
		panic("topology: link endpoints not canonical")
	}
	k := l.Key()
	if _, dup := t.links[k]; dup {
		return // generator may propose the same pair twice; keep first
	}
	t.links[k] = l
	t.neighbors[l.Lo] = append(t.neighbors[l.Lo], Neighbor{ASN: l.Hi, Role: l.HiRole, Link: l})
	t.neighbors[l.Hi] = append(t.neighbors[l.Hi], Neighbor{ASN: l.Lo, Role: l.HiRole.Invert(), Link: l})
}

// Restored returns a historical view of the topology as it was before
// any links were retired: AS records, registries, and prefix tables are
// shared with the receiver; the link and neighbor indexes are rebuilt to
// include RetiredLinks. Routing computed over the restored view is what
// old snapshots (and therefore stale relationship databases) saw.
func (t *Topology) Restored() *Topology {
	h := &Topology{
		World:         t.World,
		Registry:      t.Registry,
		DNS:           t.DNS,
		ases:          t.ases,
		order:         t.order,
		links:         make(map[LinkKey]*Link, len(t.links)+len(t.RetiredLinks)),
		neighbors:     make(map[asn.ASN][]Neighbor, len(t.neighbors)),
		prefixOrigin:  t.prefixOrigin,
		infraOwner:    t.infraOwner,
		prefixCity:    t.prefixCity,
		contentPrefix: t.contentPrefix,
		Names:         t.Names,
	}
	// Rebuild in canonical order: neighbor-list order feeds the routing
	// engine's event clock, so it must not depend on map iteration.
	all := make([]*Link, 0, len(t.links)+len(t.RetiredLinks))
	for _, l := range t.links {
		all = append(all, l)
	}
	all = append(all, t.RetiredLinks...)
	sortLinks(all)
	for _, l := range all {
		h.addLink(l)
	}
	h.seal()
	return h
}

// setLinkRole rewrites a link's base relationship, keeping the cached
// neighbor entries consistent. Generator-only; the topology is immutable
// once Generate returns.
func (t *Topology) setLinkRole(l *Link, hiRole Rel) {
	t.mutable("setLinkRole")
	l.HiRole = hiRole
	fix := func(owner, other asn.ASN, role Rel) {
		ns := t.neighbors[owner]
		for i := range ns {
			if ns[i].ASN == other {
				ns[i].Role = role
			}
		}
	}
	fix(l.Lo, l.Hi, hiRole)
	fix(l.Hi, l.Lo, hiRole.Invert())
}

// AS returns the AS record, or nil.
func (t *Topology) AS(a asn.ASN) *AS { return t.ases[a] }

// ASNs returns every ASN in ascending order. The returned slice is shared;
// callers must not modify it.
func (t *Topology) ASNs() []asn.ASN { return t.order }

// NumASes returns the AS count.
func (t *Topology) NumASes() int { return len(t.ases) }

// NumLinks returns the live link count.
func (t *Topology) NumLinks() int { return len(t.links) }

// Link returns the link between two ASes, or nil.
func (t *Topology) Link(a, b asn.ASN) *Link { return t.links[MakeLinkKey(a, b)] }

// Links calls fn for every live link in an unspecified order.
func (t *Topology) Links(fn func(*Link)) {
	for _, l := range t.links {
		fn(l)
	}
}

// ProposeLink validates a would-be adjacency against the sealed graph
// and returns a canonical candidate Link for it. The topology itself is
// never touched — the result is not registered anywhere; the what-if
// engine attaches it to a single bgp computation (new-peering delta).
// roleOfB is b's role from a's perspective, so
// ProposeLink(a, b, r) ≡ ProposeLink(b, a, r.Invert()) exactly, down to
// the interconnection-city order. Errors: a == b, unknown AS, bad role,
// already adjacent, or no shared interconnection city.
func (t *Topology) ProposeLink(a, b asn.ASN, roleOfB Rel) (*Link, error) {
	if a == b {
		return nil, fmt.Errorf("topology: propose link %s-%s: an AS cannot peer with itself", a, b)
	}
	if t.ases[a] == nil {
		return nil, fmt.Errorf("topology: propose link: no such AS: %s", a)
	}
	if t.ases[b] == nil {
		return nil, fmt.Errorf("topology: propose link: no such AS: %s", b)
	}
	switch roleOfB {
	case RelCustomer, RelSibling, RelPeer, RelProvider:
	default:
		return nil, fmt.Errorf("topology: propose link %s-%s: bad role", a, b)
	}
	if t.Link(a, b) != nil {
		return nil, fmt.Errorf("topology: propose link %s-%s: already adjacent", a, b)
	}
	l := &Link{Lo: a, Hi: b, HiRole: roleOfB}
	if a > b {
		l.Lo, l.Hi = b, a
		l.HiRole = roleOfB.Invert()
	}
	// Cities come from the canonical (Lo, Hi) orientation so the two
	// argument orders build byte-identical links.
	l.Cities = t.SharedCities(l.Lo, l.Hi)
	if len(l.Cities) == 0 {
		return nil, fmt.Errorf("topology: propose link %s-%s: no shared interconnection city", a, b)
	}
	return l, nil
}

// Neighbors returns the adjacency list of an AS. The slice is shared;
// callers must not modify it.
func (t *Topology) Neighbors(a asn.ASN) []Neighbor { return t.neighbors[a] }

// Rel returns b's role from a's perspective (base relationship), or
// RelNone when not adjacent.
func (t *Topology) Rel(a, b asn.ASN) Rel {
	l := t.Link(a, b)
	if l == nil {
		return RelNone
	}
	return l.RoleOf(a, b)
}

// OriginOf returns the AS originating a prefix, or 0.
func (t *Topology) OriginOf(p asn.Prefix) asn.ASN { return t.prefixOrigin[p] }

// OriginatedPrefixes returns all originated prefixes sorted by address.
func (t *Topology) OriginatedPrefixes() []asn.Prefix {
	out := make([]asn.Prefix, 0, len(t.prefixOrigin))
	for p := range t.prefixOrigin {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr != out[j].Addr {
			return out[i].Addr < out[j].Addr
		}
		return out[i].Len < out[j].Len
	})
	return out
}

// ASesOfClass returns ASNs of a class in ascending order.
func (t *Topology) ASesOfClass(c Class) []asn.ASN {
	var out []asn.ASN
	for _, a := range t.order {
		if t.ases[a].Class == c {
			out = append(out, a)
		}
	}
	return out
}

// IsCableAS reports whether the AS is an undersea-cable operator.
func (t *Topology) IsCableAS(a asn.ASN) bool {
	x := t.ases[a]
	return x != nil && x.Class == CableOp
}

// CountryOf returns the home country of an AS, or "".
func (t *Topology) CountryOf(a asn.ASN) geo.CountryCode {
	if x := t.ases[a]; x != nil {
		return x.HomeCountry
	}
	return ""
}

// SharedCities returns the cities where both ASes have PoPs.
func (t *Topology) SharedCities(a, b asn.ASN) []geo.CityID {
	x, y := t.ases[a], t.ases[b]
	if x == nil || y == nil {
		return nil
	}
	var out []geo.CityID
	for _, c := range x.Cities {
		if y.HasCity(c) {
			out = append(out, c)
		}
	}
	return out
}

// Orgs returns the map org → member ASNs (sorted), built from AS records.
// Sibling inference ground truth.
func (t *Topology) Orgs() map[registry.OrgID][]asn.ASN {
	m := make(map[registry.OrgID][]asn.ASN)
	for _, a := range t.order {
		o := t.ases[a].Org
		if o != "" {
			m[o] = append(m[o], a)
		}
	}
	return m
}
