package topology

import (
	"routelab/internal/asn"
	"routelab/internal/geo"
)

// The deterministic address plan.
//
// Each generated AS with index i (1-based, generation order) owns the
// /16 whose address is i<<16:
//
//	offset 0    /18  the AS's FIRST announced prefix; its first /24 is
//	                 the router-infrastructure block, so backbone
//	                 addresses are resolvable by IP→AS longest match —
//	                 as on the real Internet, where ISPs announce
//	                 covering blocks for their backbones. Hosts inside
//	                 the /18 are numbered from offset 1024 up, clear of
//	                 the infrastructure /24.
//	offset 16+  /24  additional originated (announced) prefixes
//	offset 200+ /24  off-net cache prefixes hosted for content providers
//
// Router addresses encode their city: a router in the AS's city slot s
// (index into AS.Cities) with unit k lives at infra.Nth(s*routersPerCity
// + k), which makes ground-truth IP geolocation exact and invertible.
//
// IXP fabrics get /24s in 240.0.0.0/8 keyed by city; IXP prefixes are
// never announced in BGP, so the IP→AS mapping step cannot resolve them —
// exactly the artifact Chen et al.'s conversion must cope with.

const (
	routersPerCity = 8
	ixpBase        = asn.Addr(240) << 24
)

// asBlock returns the /16 owned by the i-th generated AS.
func asBlock(i int) asn.Prefix {
	return asn.NewPrefix(asn.Addr(uint32(i))<<16, 16)
}

// infraPrefixFor returns the router /24 of the i-th generated AS.
func infraPrefixFor(i int) asn.Prefix {
	return asn.NewPrefix(asBlock(i).Addr, 24)
}

// originPrefixFor returns the j-th announced prefix of the i-th
// generated AS: the covering /18 first, then /24s.
func originPrefixFor(i, j int) asn.Prefix {
	if j == 0 {
		return asn.NewPrefix(asBlock(i).Addr, 18)
	}
	return asn.NewPrefix(asBlock(i).Addr+asn.Addr((16+uint32(j))<<8), 24)
}

// HostOffset converts a small host index into an address offset inside
// an AS's first (covering) prefix that cannot collide with the
// infrastructure /24 or the additional /24s at offsets 16+.
func HostOffset(k uint32) uint32 { return 1024 + k%3072 }

// cachePrefixFor returns the j-th cache /24 inside the i-th generated
// AS's block.
func cachePrefixFor(i, j int) asn.Prefix {
	return asn.NewPrefix(asBlock(i).Addr+asn.Addr((200+uint32(j))<<8), 24)
}

// IXPPrefix returns the (unannounced) exchange-fabric /24 of a city.
func IXPPrefix(c geo.CityID) asn.Prefix {
	return asn.NewPrefix(ixpBase+asn.Addr(uint32(c))<<8, 24)
}

// IsIXPAddr reports whether ip belongs to any IXP fabric.
func IsIXPAddr(ip asn.Addr) bool { return ip >= ixpBase }

// RouterIP returns the address of router k of the AS in city c. It
// returns 0 if the AS has no PoP in c or k is out of range.
func (t *Topology) RouterIP(a asn.ASN, c geo.CityID, k int) asn.Addr {
	x := t.ases[a]
	if x == nil || k < 0 || k >= routersPerCity {
		return 0
	}
	slot := x.citySlot(c)
	if slot < 0 {
		return 0
	}
	return x.InfraPrefix.Nth(uint32(slot*routersPerCity + k))
}

// LocateRouter inverts RouterIP: it returns the owning AS and city of an
// infrastructure address. ok is false for non-infrastructure addresses.
func (t *Topology) LocateRouter(ip asn.Addr) (a asn.ASN, c geo.CityID, ok bool) {
	p := asn.NewPrefix(ip, 24)
	owner, found := t.infraOwner[p]
	if !found {
		return 0, 0, false
	}
	x := t.ases[owner]
	slot := int(ip-p.Addr) / routersPerCity
	if slot >= len(x.Cities) {
		return owner, 0, true // a router with no modeled city
	}
	return owner, x.Cities[slot], true
}

// ASByAddr resolves an address to the AS announcing its covering prefix
// (longest match). Infrastructure and IXP addresses are NOT announced and
// return 0 — resolving those is the measurement pipeline's problem.
func (t *Topology) ASByAddr(ip asn.Addr) asn.ASN {
	for l := uint8(32); l >= 8; l-- {
		if o, ok := t.prefixOrigin[asn.NewPrefix(ip, l)]; ok {
			return o
		}
	}
	return 0
}

// CityOfAddr returns the pinned city of the announced prefix covering
// ip, or 0 when the covering prefix (if any) is unpinned.
func (t *Topology) CityOfAddr(ip asn.Addr) geo.CityID {
	for l := uint8(32); l >= 8; l-- {
		p := asn.NewPrefix(ip, l)
		if _, ok := t.prefixOrigin[p]; ok {
			return t.prefixCity[p]
		}
	}
	return 0
}

// AnnouncedBy returns the prefixes an AS originates (owned plus hosted
// cache prefixes), i.e. everything it must inject into BGP.
func (t *Topology) AnnouncedBy(a asn.ASN) []asn.Prefix {
	x := t.ases[a]
	if x == nil {
		return nil
	}
	return x.Prefixes
}
