package topology

import (
	"fmt"
	"math/rand"
	"sort"

	"routelab/internal/asn"
	"routelab/internal/dnsdb"
	"routelab/internal/geo"
	"routelab/internal/registry"
)

// Config sizes the generated Internet and sets the rates of the policy
// phenomena the paper investigates. Rates are probabilities in [0,1].
type Config struct {
	// Scale multiplies every class count; 1.0 is the default Internet of
	// roughly 3,400 ASes. Use small values in unit tests.
	Scale float64

	NumTier1    int
	NumLargeISP int
	NumSmallISP int
	NumStub     int
	NumContent  int
	NumCableOps int

	// NumContentMajors of the content ASes are "major providers" hosting
	// the measured hostnames (the paper's 14).
	NumContentMajors int
	// NumHostnames is the number of content DNS names (the paper's 34).
	NumHostnames int
	// NumCDNCaches is how many eyeball ASes host off-net caches for the
	// major CDN (drives the 218-destination-AS effect and the Akamai
	// violation share).
	NumCDNCaches int

	// SiblingGroups is the number of multi-AS organizations.
	SiblingGroups int
	// SiblingFreemailRate is the chance a sibling org registers whois
	// contacts at a shared mail provider (hiding it from inference).
	SiblingFreemailRate float64

	// HybridLinkRate is the fraction of multi-city peer links whose
	// relationship differs by city (Giotsas hybrid).
	HybridLinkRate float64
	// PartialTransitRate is the fraction of peer links carrying a
	// partial-transit arrangement for a handful of prefixes.
	PartialTransitRate float64
	// SelectiveExportRate is the fraction of multi-homed ASes applying
	// an origin-side prefix-specific export policy to one prefix.
	SelectiveExportRate float64
	// ContentSelectiveRate is the (higher) rate at which content
	// providers restrict one of their prefixes — enterprise-class
	// services behind a chosen provider (§4.3's motivating case).
	ContentSelectiveRate float64
	// CacheSelectiveRate is the chance an off-net cache prefix is
	// announced through only a subset of the host's upstreams, the way
	// CDN on-net deployments steer traffic. These selective prefixes
	// are what concentrate unexpected decisions on CDN destinations
	// (§5's Akamai skew).
	CacheSelectiveRate float64
	// DomesticBiasRate is the fraction of ISPs preferring domestic paths.
	DomesticBiasRate float64
	// ContentPeerTERate is the fraction of transit ISPs that
	// traffic-engineer content traffic onto peering (the Cogent
	// behavior of §5).
	ContentPeerTERate float64
	// ASSetFilterRate is the fraction of ASes dropping AS_SET updates.
	ASSetFilterRate float64
	// NoLoopPreventionRate is the fraction of ASes with loop prevention
	// disabled (breaks poisoning).
	NoLoopPreventionRate float64
	// RetiredLinkCount is how many once-existing links were recently
	// decommissioned (stale-topology fodder for inference).
	RetiredLinkCount int
}

// DefaultConfig is the full-size "wild Internet" scenario.
func DefaultConfig() Config {
	return Config{
		Scale:                1.0,
		NumTier1:             12,
		NumLargeISP:          140,
		NumSmallISP:          700,
		NumStub:              2350,
		NumContent:           80,
		NumCableOps:          24,
		NumContentMajors:     14,
		NumHostnames:         34,
		NumCDNCaches:         450,
		SiblingGroups:        30,
		SiblingFreemailRate:  0.2,
		HybridLinkRate:       0.05,
		PartialTransitRate:   0.02,
		SelectiveExportRate:  0.15,
		ContentSelectiveRate: 0.7,
		CacheSelectiveRate:   0.55,
		DomesticBiasRate:     0.6,
		ContentPeerTERate:    0.5,
		ASSetFilterRate:      0.10,
		NoLoopPreventionRate: 0.01,
		RetiredLinkCount:     6,
	}
}

// TestConfig is a small topology for unit tests: same structure, ~1/10th
// the size.
func TestConfig() Config {
	c := DefaultConfig()
	c.Scale = 0.1
	return c
}

func (c Config) scaled() Config {
	if c.Scale == 0 {
		c.Scale = 1
	}
	s := func(n int, min int) int {
		v := int(float64(n)*c.Scale + 0.5)
		if v < min {
			v = min
		}
		return v
	}
	// At least five Tier-1s: with fewer, every Tier-1 directly provides
	// every large ISP and no clique member ever appears ABOVE another's
	// customer edge, which starves relationship inference of its
	// strongest signal (a degenerate shape the real Internet never has).
	c.NumTier1 = s(c.NumTier1, 5)
	c.NumLargeISP = s(c.NumLargeISP, 6)
	c.NumSmallISP = s(c.NumSmallISP, 12)
	c.NumStub = s(c.NumStub, 24)
	c.NumContent = s(c.NumContent, c.NumContentMajors)
	c.NumCableOps = s(c.NumCableOps, 2)
	c.NumCDNCaches = s(c.NumCDNCaches, 4)
	if c.SiblingGroups > 0 {
		c.SiblingGroups = s(c.SiblingGroups, 2)
	}
	c.RetiredLinkCount = s(c.RetiredLinkCount, 1)
	return c
}

// generator carries the working state of one Generate call.
type generator struct {
	cfg  Config
	rng  *rand.Rand
	topo *Topology
	w    *geo.World

	nextIdx int // AS generation index (1-based); determines ASN and block
	hubs    map[geo.Continent][]geo.CityID
	// cableDependent lists large ISPs that reach other continents only
	// through undersea-cable operators.
	cableDependent []asn.ASN
}

// Generate builds a complete ground-truth Internet from a seed.
func Generate(seed int64, cfg Config) *Topology {
	cfg = cfg.scaled()
	rng := rand.New(rand.NewSource(seed))
	w := geo.NewWorld(rng, geo.Config{})
	g := &generator{
		cfg:  cfg,
		rng:  rng,
		topo: newTopology(w, registry.New(), dnsdb.New()),
		w:    w,
	}
	g.pickHubs()

	tier1s := g.makeTier1s()
	larges := g.makeLargeISPs(tier1s)
	smalls := g.makeSmallISPs(larges)
	g.makeStubs(smalls, larges)
	contents := g.makeContent(tier1s, larges, smalls)
	g.makeCableOps(larges, tier1s)
	g.makeResearch(tier1s, larges)
	g.makeSiblings()
	g.applyHybrid()
	g.applyPartialTransit()
	g.applySelectiveExport()
	g.makeContentHosting(contents)
	g.retireLinks()
	g.topo.seal()
	return g.topo
}

// pickHubs designates per-continent interconnection hub cities where the
// global players meet (the IXP metros of the synthetic world).
func (g *generator) pickHubs() {
	g.hubs = make(map[geo.Continent][]geo.CityID)
	for _, cont := range geo.Continents {
		countries := g.w.Countries(cont)
		n := 4
		if len(countries) < n {
			n = len(countries)
		}
		for i := 0; i < n; i++ {
			c := g.w.Country(countries[i])
			g.hubs[cont] = append(g.hubs[cont], c.Cities[0])
		}
	}
}

func (g *generator) allHubs() []geo.CityID {
	var out []geo.CityID
	for _, cont := range geo.Continents {
		out = append(out, g.hubs[cont]...)
	}
	return out
}

// newAS allocates the next AS with its address plan and whois record.
func (g *generator) newAS(class Class, home geo.CountryCode, cities []geo.CityID, numPrefixes int) *AS {
	g.nextIdx++
	i := g.nextIdx
	a := &AS{
		ASN:         asn.ASN(100 + i),
		Class:       class,
		HomeCountry: home,
		Cities:      dedupCities(cities),
		InfraPrefix: infraPrefixFor(i),
	}
	for j := 0; j < numPrefixes; j++ {
		a.Prefixes = append(a.Prefixes, originPrefixFor(i, j))
	}
	a.Org = registry.OrgID(fmt.Sprintf("org-%d", a.ASN))
	domain := fmt.Sprintf("as%d.example", a.ASN)
	g.topo.Registry.AddOrg(registry.Org{
		ID: a.Org, Name: fmt.Sprintf("Network %d", a.ASN),
		EmailDomains: []string{domain},
	})
	cont := g.w.Country(home).Continent
	rec := registry.ASRecord{
		ASN: a.ASN, Org: a.Org, Country: home,
		Registry: registry.RIRForContinent(cont),
		Email:    "noc@" + domain,
	}
	// Multinational ASes show different countries in other RIRs.
	if class == Tier1 || (class == LargeISP && g.rng.Float64() < 0.25) {
		rec.AltCountries = map[registry.RIR]geo.CountryCode{}
		for _, oc := range []geo.Continent{geo.EU, geo.NA, geo.AS} {
			rir := registry.RIRForContinent(oc)
			if rir == rec.Registry {
				continue
			}
			cs := g.w.Countries(oc)
			rec.AltCountries[rir] = cs[g.rng.Intn(len(cs))]
		}
	}
	if err := g.topo.Registry.AddAS(rec); err != nil {
		panic(err)
	}
	// Behavioral policy flags.
	switch class {
	case LargeISP, SmallISP:
		a.DomesticBias = g.rng.Float64() < g.cfg.DomesticBiasRate
		a.ContentPeerTE = g.rng.Float64() < g.cfg.ContentPeerTERate
	case Tier1:
		a.ContentPeerTE = g.rng.Float64() < g.cfg.ContentPeerTERate
	}
	a.FiltersASSets = g.rng.Float64() < g.cfg.ASSetFilterRate
	a.NoLoopPrevention = g.rng.Float64() < g.cfg.NoLoopPreventionRate
	g.topo.addAS(a)
	return a
}

func dedupCities(in []geo.CityID) []geo.CityID {
	seen := make(map[geo.CityID]bool, len(in))
	out := in[:0]
	for _, c := range in {
		if c != 0 && !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// link connects two ASes; role is hi's role from lo's perspective after
// canonical ordering. Interconnection happens at the shared cities (PoPs
// are extended so at least one exists).
func (g *generator) link(a, b asn.ASN, roleOfBFromA Rel, maxCities int) *Link {
	lo, hi := a, b
	role := roleOfBFromA
	if lo > hi {
		lo, hi = hi, lo
		role = role.Invert()
	}
	shared := g.topo.SharedCities(lo, hi)
	if len(shared) == 0 {
		// Extend one endpoint's footprint to the other's first city.
		la, lb := g.topo.AS(lo), g.topo.AS(hi)
		c := lb.Cities[0]
		la.Cities = append(la.Cities, c)
		shared = []geo.CityID{c}
	}
	if maxCities < 1 {
		maxCities = 1
	}
	if len(shared) > maxCities {
		g.rng.Shuffle(len(shared), func(i, j int) { shared[i], shared[j] = shared[j], shared[i] })
		shared = shared[:maxCities]
	}
	cp := make([]geo.CityID, len(shared))
	copy(cp, shared)
	l := &Link{Lo: lo, Hi: hi, HiRole: role, Cities: cp}
	g.topo.addLink(l)
	return g.topo.links[l.Key()]
}

// randomCountry picks a country, optionally constrained to a continent.
func (g *generator) randomCountry(cont geo.Continent) geo.CountryCode {
	if cont == geo.ContinentNone {
		cont = geo.Continents[g.rng.Intn(len(geo.Continents))]
	}
	cs := g.w.Countries(cont)
	return cs[g.rng.Intn(len(cs))]
}

// citiesIn returns up to n distinct cities of a country (all if fewer).
func (g *generator) citiesIn(cc geo.CountryCode, n int) []geo.CityID {
	all := g.w.Country(cc).Cities
	if n >= len(all) {
		cp := make([]geo.CityID, len(all))
		copy(cp, all)
		return cp
	}
	idx := g.rng.Perm(len(all))[:n]
	out := make([]geo.CityID, 0, n)
	for _, i := range idx {
		out = append(out, all[i])
	}
	return out
}

func (g *generator) makeTier1s() []asn.ASN {
	var out []asn.ASN
	hubs := g.allHubs()
	for i := 0; i < g.cfg.NumTier1; i++ {
		home := g.randomCountry(geo.ContinentNone)
		cities := append([]geo.CityID(nil), hubs...)
		cities = append(cities, g.citiesIn(home, 2)...)
		a := g.newAS(Tier1, home, cities, 2)
		out = append(out, a.ASN)
	}
	// Full settlement-free clique.
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			g.link(out[i], out[j], RelPeer, 6)
		}
	}
	return out
}

func (g *generator) makeLargeISPs(tier1s []asn.ASN) []asn.ASN {
	var out []asn.ASN
	regularByCont := map[geo.Continent][]asn.ASN{}
	for i := 0; i < g.cfg.NumLargeISP; i++ {
		cont := geo.Continents[i%len(geo.Continents)]
		home := g.randomCountry(cont)
		cities := g.citiesIn(home, 3)
		// Continental footprint: PoPs at the continent's hubs plus a
		// second country sometimes.
		cities = append(cities, g.hubs[cont]...)
		if g.rng.Float64() < 0.3 {
			cities = append(cities, g.citiesIn(g.randomCountry(cont), 2)...)
		}
		a := g.newAS(LargeISP, home, cities, 2)
		out = append(out, a.ASN)
		// On the ocean-separated continents, some large ISPs buy no
		// direct Tier-1 transit: they reach the world through a
		// regional provider plus leased undersea-cable capacity
		// (makeCableOps wires the cable side). This is what puts cable
		// ASes on real forwarding paths (§6).
		remote := cont == geo.AF || cont == geo.SA || cont == geo.OC
		if remote && len(regularByCont[cont]) > 0 && g.rng.Float64() < 0.5 {
			g.cableDependent = append(g.cableDependent, a.ASN)
			regional := regularByCont[cont]
			g.link(a.ASN, regional[g.rng.Intn(len(regional))], RelProvider, 2)
			continue
		}
		regularByCont[cont] = append(regularByCont[cont], a.ASN)
		// Providers: 2-3 Tier-1s.
		for _, t := range pickDistinct(g.rng, tier1s, 2+g.rng.Intn(2)) {
			g.link(a.ASN, t, RelProvider, 3)
		}
	}
	// Peering mesh among large ISPs, biased to the same continent.
	for _, x := range out {
		nPeers := 2 + g.rng.Intn(5)
		for k := 0; k < nPeers; k++ {
			y := out[g.rng.Intn(len(out))]
			if y == x {
				continue
			}
			// Same-continent peers are likelier to be selected.
			if g.topo.CountryOf(x) != g.topo.CountryOf(y) &&
				g.contOf(x) != g.contOf(y) && g.rng.Float64() < 0.6 {
				continue
			}
			g.link(x, y, RelPeer, 3)
		}
	}
	return out
}

func (g *generator) contOf(a asn.ASN) geo.Continent {
	return g.w.Country(g.topo.CountryOf(a)).Continent
}

func (g *generator) makeSmallISPs(larges []asn.ASN) []asn.ASN {
	var out []asn.ASN
	// Bucket large ISPs per continent for provider locality.
	byCont := map[geo.Continent][]asn.ASN{}
	for _, l := range larges {
		byCont[g.contOf(l)] = append(byCont[g.contOf(l)], l)
	}
	for i := 0; i < g.cfg.NumSmallISP; i++ {
		cont := geo.Continents[i%len(geo.Continents)]
		home := g.randomCountry(cont)
		a := g.newAS(SmallISP, home, g.citiesIn(home, 1+g.rng.Intn(3)), 2)
		out = append(out, a.ASN)
		provs := byCont[cont]
		if len(provs) == 0 {
			provs = larges
		}
		for _, p := range pickDistinct(g.rng, provs, 1+g.rng.Intn(3)) {
			g.link(a.ASN, p, RelProvider, 2)
		}
	}
	// Edge peering mesh: small ISPs in the same country often peer —
	// the "rich peering mesh near the edge" route monitors miss.
	byCountry := map[geo.CountryCode][]asn.ASN{}
	var countries []geo.CountryCode
	for _, s := range out {
		cc := g.topo.CountryOf(s)
		if byCountry[cc] == nil {
			countries = append(countries, cc)
		}
		byCountry[cc] = append(byCountry[cc], s)
	}
	sort.Slice(countries, func(i, j int) bool { return countries[i] < countries[j] })
	for _, cc := range countries {
		group := byCountry[cc]
		for i := 0; i < len(group); i++ {
			for j := i + 1; j < len(group); j++ {
				if g.rng.Float64() < 0.5 {
					g.link(group[i], group[j], RelPeer, 1)
				}
			}
		}
	}
	return out
}

func (g *generator) makeStubs(smalls, larges []asn.ASN) {
	byCountry := map[geo.CountryCode][]asn.ASN{}
	for _, s := range smalls {
		byCountry[g.topo.CountryOf(s)] = append(byCountry[g.topo.CountryOf(s)], s)
	}
	byCont := map[geo.Continent][]asn.ASN{}
	for _, s := range smalls {
		byCont[g.contOf(s)] = append(byCont[g.contOf(s)], s)
	}
	largeByCont := map[geo.Continent][]asn.ASN{}
	for _, l := range larges {
		largeByCont[g.contOf(l)] = append(largeByCont[g.contOf(l)], l)
	}
	for i := 0; i < g.cfg.NumStub; i++ {
		cont := geo.Continents[i%len(geo.Continents)]
		home := g.randomCountry(cont)
		a := g.newAS(Stub, home, g.citiesIn(home, 1+g.rng.Intn(2)), 1)
		// First provider: a small ISP in-country if possible, else
		// in-continent, else a large ISP.
		var prov asn.ASN
		if cands := byCountry[home]; len(cands) > 0 {
			prov = cands[g.rng.Intn(len(cands))]
		} else if cands := byCont[cont]; len(cands) > 0 {
			prov = cands[g.rng.Intn(len(cands))]
		} else {
			cands := largeByCont[cont]
			if len(cands) == 0 {
				cands = larges
			}
			prov = cands[g.rng.Intn(len(cands))]
		}
		g.link(a.ASN, prov, RelProvider, 1)
		// ~35% multihome to a second upstream (often a large ISP).
		if g.rng.Float64() < 0.35 {
			var second asn.ASN
			if ls := largeByCont[cont]; len(ls) > 0 && g.rng.Float64() < 0.6 {
				second = ls[g.rng.Intn(len(ls))]
			} else if cands := byCont[cont]; len(cands) > 0 {
				second = cands[g.rng.Intn(len(cands))]
			}
			if second != 0 && second != prov {
				g.link(a.ASN, second, RelProvider, 1)
			}
		}
	}
}

func (g *generator) makeContent(tier1s, larges, smalls []asn.ASN) []asn.ASN {
	var out []asn.ASN
	hubs := g.allHubs()
	// Content homes skew to NA but cover every region, so probes on
	// each continent have some domestic targets (the Figure 3 split
	// depends on this).
	contentConts := []geo.Continent{
		geo.NA, geo.NA, geo.NA, geo.NA, geo.EU, geo.EU, geo.EU,
		geo.AS, geo.AS, geo.SA, geo.AF, geo.OC,
	}
	for i := 0; i < g.cfg.NumContent; i++ {
		major := i < g.cfg.NumContentMajors
		home := g.randomCountry(contentConts[i%len(contentConts)])
		var cities []geo.CityID
		cities = append(cities, g.citiesIn(home, 2)...)
		if major {
			cities = append(cities, hubs...) // majors are at every hub
		} else if g.rng.Float64() < 0.4 {
			cont := g.w.Country(home).Continent
			cities = append(cities, g.hubs[cont]...)
		}
		nPfx := 1 + g.rng.Intn(2)
		if major {
			// One regional serving prefix per continent, plus extras.
			nPfx = 6 + g.rng.Intn(3)
		}
		a := g.newAS(Content, home, cities, nPfx)
		out = append(out, a.ASN)
		if major {
			g.topo.Names[fmt.Sprintf("content-%d", i)] = a.ASN
		}
		// Transit: majors buy from Tier-1s AND regional large ISPs (the
		// multi-provider mix that gives upstream networks genuine
		// customer routes toward content — the raw material of the
		// Cogent-style traffic-engineering violations).
		if major {
			// Majors are heavily multihomed (the Akamai pattern): a
			// couple of Tier-1s plus transit from many regional large
			// ISPs, which is what gives so many networks customer
			// routes toward content.
			for _, p := range pickDistinct(g.rng, tier1s, 2) {
				g.link(a.ASN, p, RelProvider, 2)
			}
			for _, p := range pickDistinct(g.rng, larges, 6+g.rng.Intn(4)) {
				g.link(a.ASN, p, RelProvider, 2)
			}
		} else {
			provs := tier1s
			if g.rng.Float64() < 0.5 {
				provs = larges
			}
			for _, p := range pickDistinct(g.rng, provs, 1+g.rng.Intn(2)) {
				g.link(a.ASN, p, RelProvider, 2)
			}
		}
		// Rich peering: majors peer broadly with large and small ISPs.
		nPeer := 2 + g.rng.Intn(4)
		if major {
			nPeer = 10 + g.rng.Intn(8)
		}
		for _, p := range pickDistinct(g.rng, larges, nPeer) {
			g.link(a.ASN, p, RelPeer, 2)
		}
		if major {
			for _, p := range pickDistinct(g.rng, smalls, nPeer/2) {
				g.link(a.ASN, p, RelPeer, 1)
			}
		}
	}
	g.topo.Names["cdn-major"] = out[0]          // Akamai analogue (off-net CDN)
	g.topo.Names["vod-major"] = out[1%len(out)] // Netflix analogue
	return out
}

// makeCableOps creates undersea-cable operator ASes. A cable AS lands on
// two continents and sells point-to-point transit: the ISPs at each
// landing are its customers, so valley-free routing may cross the ocean
// through it. Cable ASes originate only a management prefix.
func (g *generator) makeCableOps(larges, tier1s []asn.ASN) {
	byCont := map[geo.Continent][]asn.ASN{}
	for _, l := range larges {
		byCont[g.contOf(l)] = append(byCont[g.contOf(l)], l)
	}
	pairs := [][2]geo.Continent{
		{geo.NA, geo.EU}, {geo.NA, geo.AS}, {geo.EU, geo.AS},
		{geo.NA, geo.SA}, {geo.EU, geo.AF}, {geo.AS, geo.OC},
		{geo.EU, geo.SA}, {geo.AF, geo.AS},
	}
	depByCont := map[geo.Continent][]asn.ASN{}
	for _, d := range g.cableDependent {
		depByCont[g.contOf(d)] = append(depByCont[g.contOf(d)], d)
	}
	for i := 0; i < g.cfg.NumCableOps; i++ {
		pr := pairs[i%len(pairs)]
		landA := g.hubs[pr[0]][g.rng.Intn(len(g.hubs[pr[0]]))]
		landB := g.hubs[pr[1]][g.rng.Intn(len(g.hubs[pr[1]]))]
		home := g.w.CountryOf(landA)
		a := g.newAS(CableOp, home, []geo.CityID{landA, landB}, 1)
		for _, cont := range pr {
			// Cable-dependent ISPs of this continent land first; regular
			// larges fill the remaining capacity.
			n := 2 + g.rng.Intn(3)
			var customers []asn.ASN
			customers = append(customers, pickDistinct(g.rng, depByCont[cont], n)...)
			if len(customers) < n {
				cands := byCont[cont]
				if len(cands) == 0 {
					cands = larges
				}
				customers = append(customers, pickDistinct(g.rng, cands, n-len(customers))...)
			}
			for _, c := range customers {
				g.link(c, a.ASN, RelProvider, 1) // cable is the ISP's provider
			}
		}
		// A few cables also connect a Tier-1 (jointly-used systems).
		if g.rng.Float64() < 0.3 && len(tier1s) > 0 {
			t := tier1s[g.rng.Intn(len(tier1s))]
			g.link(t, a.ASN, RelProvider, 1)
		}
	}
}

// makeResearch builds the research & education substrate that the active
// PEERING experiments run over: three continental R&E backbones, a set of
// universities multihomed to a backbone (provider) and, cross-continent,
// peered with a foreign backbone, plus the PEERING testbed AS itself,
// which buys transit from seven of the universities (its muxes).
func (g *generator) makeResearch(tier1s, larges []asn.ASN) {
	backboneConts := []geo.Continent{geo.NA, geo.EU, geo.SA}
	var backbones []asn.ASN
	for bi, cont := range backboneConts {
		home := g.randomCountry(cont)
		cities := append(g.citiesIn(home, 2), g.hubs[cont]...)
		b := g.newAS(Research, home, cities, 1)
		backbones = append(backbones, b.ASN)
		g.topo.Names[fmt.Sprintf("research-%d", bi)] = b.ASN
		// R&E backbones peer with a couple of Tier-1s for commodity
		// reachability, and with each other (below).
		for _, t := range pickDistinct(g.rng, tier1s, 2) {
			g.link(b.ASN, t, RelPeer, 2)
		}
	}
	for i := 0; i < len(backbones); i++ {
		for j := i + 1; j < len(backbones); j++ {
			g.link(backbones[i], backbones[j], RelPeer, 1)
		}
	}
	// Universities mirror the paper's mux sites: six in North America
	// and one in South America (plus a few non-mux universities
	// elsewhere). Every NA university hangs off the SAME backbone and a
	// DIFFERENT commercial large ISP, so core networks see several
	// equal-length paths toward the testbed — the tie-rich structure
	// behind the paper's intradomain observations. Some universities
	// additionally peer with a foreign backbone (the AMPATH pattern).
	largeByCont := map[geo.Continent][]asn.ASN{}
	for _, l := range larges {
		largeByCont[g.contOf(l)] = append(largeByCont[g.contOf(l)], l)
	}
	univConts := []geo.Continent{
		geo.NA, geo.NA, geo.NA, geo.NA, geo.NA, geo.NA, // the six US muxes
		geo.SA,                                 // the Brazilian mux
		geo.EU, geo.EU, geo.NA, geo.SA, geo.EU, // non-mux universities
	}
	backboneFor := map[geo.Continent]asn.ASN{
		geo.NA: backbones[0], geo.EU: backbones[1], geo.SA: backbones[2],
	}
	var univs []asn.ASN
	usedLarge := map[asn.ASN]bool{}
	for ui, cont := range univConts {
		home := g.randomCountry(cont)
		u := g.newAS(Stub, home, g.citiesIn(home, 1), 1)
		u.ResearchPreference = true
		univs = append(univs, u.ASN)
		g.topo.Names[fmt.Sprintf("univ-%d", ui)] = u.ASN
		g.link(u.ASN, backboneFor[cont], RelProvider, 1)
		if ui%3 == 2 {
			foreign := backbones[(ui+1)%len(backbones)]
			g.link(u.ASN, foreign, RelPeer, 1)
		}
		// Commodity transit from a large ISP this campus does not share
		// with the other universities, when enough exist.
		cands := largeByCont[cont]
		if len(cands) == 0 {
			cands = larges
		}
		pick := cands[g.rng.Intn(len(cands))]
		for tries := 0; usedLarge[pick] && tries < 8; tries++ {
			pick = cands[g.rng.Intn(len(cands))]
		}
		usedLarge[pick] = true
		g.link(u.ASN, pick, RelProvider, 1)
	}
	// The PEERING testbed AS: customers of seven universities (muxes).
	home := g.topo.CountryOf(univs[0])
	p := g.newAS(Stub, home, g.citiesIn(home, 1), 2)
	g.topo.Names["peering"] = p.ASN
	nMux := 7
	if nMux > len(univs) {
		nMux = len(univs)
	}
	for mi := 0; mi < nMux; mi++ {
		g.link(p.ASN, univs[mi], RelProvider, 1)
		g.topo.Names[fmt.Sprintf("mux-%d", mi)] = univs[mi]
	}
}

// makeSiblings merges existing ISP ASes into multi-AS organizations and
// interconnects them with sibling links (mergers, regional ASNs).
func (g *generator) makeSiblings() {
	cands := append(g.topo.ASesOfClass(LargeISP), g.topo.ASesOfClass(SmallISP)...)
	g.rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	used := 0
	for grp := 0; grp < g.cfg.SiblingGroups && used+2 <= len(cands); grp++ {
		size := 2 + g.rng.Intn(3)
		if used+size > len(cands) {
			size = len(cands) - used
		}
		members := cands[used : used+size]
		used += size
		orgID := registry.OrgID(fmt.Sprintf("org-group-%d", grp))
		zone := fmt.Sprintf("group%d.example", grp)
		freemail := g.rng.Float64() < g.cfg.SiblingFreemailRate
		var domains []string
		for mi, m := range members {
			a := g.topo.AS(m)
			a.Org = orgID
			// Each member gets its own vanity domain; SOA ties them to
			// the shared zone (the dish.com/dishaccess.tv pattern).
			domain := fmt.Sprintf("as%d-grp%d.example", m, grp)
			if freemail {
				domain = "hotmail.example"
			} else {
				g.topo.DNS.AddSOA(dnsdb.SOARecord{Domain: domain, Zone: zone})
			}
			domains = append(domains, domain)
			rec, _ := g.topo.Registry.Whois(m)
			rec.Org = orgID
			rec.Email = fmt.Sprintf("noc%d@%s", mi, domain)
			if err := g.topo.Registry.AddAS(rec); err != nil {
				panic(err)
			}
		}
		g.topo.Registry.AddOrg(registry.Org{
			ID: orgID, Name: fmt.Sprintf("Group %d Holdings", grp),
			EmailDomains: domains,
		})
		// Interconnect members pairwise as siblings.
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				if l := g.topo.Link(members[i], members[j]); l != nil {
					g.topo.setLinkRole(l, RelSibling)
				} else {
					g.link(members[i], members[j], RelSibling, 2)
				}
			}
		}
	}
}

// applyHybrid turns a fraction of multi-city ISP-to-ISP peer links into
// hybrid relationships: at one interconnection city the roles differ.
// (The published hybrid datasets are dominated by transit networks with
// region-dependent arrangements; content peering stays uniform.)
func (g *generator) applyHybrid() {
	var multi []*Link
	g.topo.Links(func(l *Link) {
		if l.HiRole == RelPeer && len(l.Cities) >= 2 &&
			g.ispClass(l.Lo) && g.ispClass(l.Hi) {
			multi = append(multi, l)
		}
	})
	sortLinks(multi)
	n := int(float64(len(multi)) * g.cfg.HybridLinkRate)
	if n == 0 && len(multi) > 0 && g.cfg.HybridLinkRate > 0 {
		n = 1 // keep the phenomenon present at test scales
	}
	g.rng.Shuffle(len(multi), func(i, j int) { multi[i], multi[j] = multi[j], multi[i] })
	for _, l := range multi[:n] {
		city := l.Cities[1+g.rng.Intn(len(l.Cities)-1)]
		role := RelCustomer
		if g.rng.Float64() < 0.5 {
			role = RelProvider
		}
		l.HybridRoles = map[geo.CityID]Rel{city: role}
	}
}

// applyPartialTransit marks a fraction of peer links as partial transit
// toward a handful of destination prefixes.
func (g *generator) applyPartialTransit() {
	var peers []*Link
	g.topo.Links(func(l *Link) {
		if l.HiRole == RelPeer && l.HybridRoles == nil &&
			g.ispClass(l.Lo) && g.ispClass(l.Hi) {
			peers = append(peers, l)
		}
	})
	sortLinks(peers)
	n := int(float64(len(peers)) * g.cfg.PartialTransitRate)
	if n == 0 && len(peers) > 0 && g.cfg.PartialTransitRate > 0 {
		n = 1
	}
	g.rng.Shuffle(len(peers), func(i, j int) { peers[i], peers[j] = peers[j], peers[i] })
	all := g.topo.OriginatedPrefixes()
	for _, l := range peers[:n] {
		set := make(map[asn.Prefix]bool)
		for k := 0; k < 2+g.rng.Intn(4); k++ {
			set[all[g.rng.Intn(len(all))]] = true
		}
		l.PartialTransitFor = set
	}
}

// applySelectiveExport installs origin-side prefix-specific policies on a
// fraction of multi-homed ASes: one prefix is announced to only a strict
// subset of neighbors.
func (g *generator) applySelectiveExport() {
	for _, a := range g.topo.ASNs() {
		x := g.topo.AS(a)
		nbrs := g.topo.Neighbors(a)
		if len(x.Prefixes) == 0 || len(nbrs) < 2 {
			continue
		}
		if g.rng.Float64() >= g.cfg.SelectiveExportRate {
			continue
		}
		p := x.Prefixes[g.rng.Intn(len(x.Prefixes))]
		// Announce to a strict subset: between 1 and len(nbrs)-1.
		k := 1 + g.rng.Intn(len(nbrs)-1)
		var allowed []asn.ASN
		for _, idx := range g.rng.Perm(len(nbrs))[:k] {
			allowed = append(allowed, nbrs[idx].ASN)
		}
		sort.Slice(allowed, func(i, j int) bool { return allowed[i] < allowed[j] })
		if x.SelectiveExport == nil {
			x.SelectiveExport = make(map[asn.Prefix][]asn.ASN)
		}
		x.SelectiveExport[p] = allowed
	}
}

// makeContentHosting creates the hostnames, serving prefixes, and off-net
// caches of the major content providers.
func (g *generator) makeContentHosting(contents []asn.ASN) {
	majors := contents
	if len(majors) > g.cfg.NumContentMajors {
		majors = majors[:g.cfg.NumContentMajors]
	}
	cdn := g.topo.Names["cdn-major"]
	vod := g.topo.Names["vod-major"]
	// Hostnames skew toward the two biggest providers, as the real
	// top-application lists do (Akamai fronts many top sites; Netflix
	// alone is a large share of downstream bytes): the CDN major gets
	// roughly 30% of names, the VOD major 15%, the rest round-robin.
	owners := make([]asn.ASN, 0, g.cfg.NumHostnames)
	for len(owners) < (g.cfg.NumHostnames*3)/10 {
		owners = append(owners, cdn)
	}
	for len(owners) < (g.cfg.NumHostnames*45)/100 {
		owners = append(owners, vod)
	}
	for i := 0; len(owners) < g.cfg.NumHostnames; i++ {
		owners = append(owners, majors[i%len(majors)])
	}
	// Majors regionalize their serving prefixes: each announced prefix
	// is pinned to one of the provider's hub PoPs, spreading the fleet
	// across continents; DNS then maps clients to their region.
	regionOf := make(map[asn.ASN][]geo.Continent)
	hubs := g.allHubs() // ordered AF, NA, EU, SA, AS, OC blocks
	perCont := len(hubs) / len(geo.Continents)
	for _, owner := range majors {
		x := g.topo.AS(owner)
		conts := make([]geo.Continent, len(x.Prefixes))
		for j, p := range x.Prefixes {
			// Stride across continent blocks so the first six prefixes
			// cover all six continents.
			city := hubs[(j%len(geo.Continents))*perCont+(j/len(geo.Continents))%perCont]
			g.topo.PinPrefix(p, city)
			g.topo.MarkContentPrefix(p)
			conts[j] = g.w.ContinentOf(city)
		}
		regionOf[owner] = conts
	}
	for h := 0; h < g.cfg.NumHostnames; h++ {
		owner := owners[h]
		kind := dnsdb.OnNet
		if owner == cdn {
			kind = dnsdb.OffNet
		}
		x := g.topo.AS(owner)
		err := g.topo.DNS.AddHostname(dnsdb.Hostname{
			Name:       fmt.Sprintf("host-%02d.content.example", h),
			Provider:   owner,
			Kind:       kind,
			Prefixes:   x.Prefixes,
			Continents: regionOf[owner],
		})
		if err != nil {
			panic(err)
		}
	}
	// Content majors often steer one prefix behind a chosen provider
	// (enterprise services): a concentrated source of §4.3 policies.
	for _, owner := range majors {
		if g.rng.Float64() >= g.cfg.ContentSelectiveRate {
			continue
		}
		x := g.topo.AS(owner)
		nbrs := g.topo.Neighbors(owner)
		if len(x.Prefixes) < 2 || len(nbrs) < 2 {
			continue
		}
		p := x.Prefixes[1+g.rng.Intn(len(x.Prefixes)-1)]
		if _, done := x.SelectiveExport[p]; done {
			continue
		}
		k := 1 + g.rng.Intn((len(nbrs)+1)/2)
		var allowed []asn.ASN
		for _, idx := range g.rng.Perm(len(nbrs))[:k] {
			allowed = append(allowed, nbrs[idx].ASN)
		}
		sort.Slice(allowed, func(i, j int) bool { return allowed[i] < allowed[j] })
		if x.SelectiveExport == nil {
			x.SelectiveExport = make(map[asn.Prefix][]asn.ASN)
		}
		x.SelectiveExport[p] = allowed
	}
	// Off-net caches for the CDN major: access ISPs first (their whole
	// customer cone is served from the cache — the real deployment
	// pattern), then large eyeball stubs for the remainder.
	smalls := g.topo.ASesOfClass(SmallISP)
	hosts := pickDistinct(g.rng, smalls, (g.cfg.NumCDNCaches*2)/3)
	hosts = append(hosts, pickDistinct(g.rng, g.topo.ASesOfClass(Stub), g.cfg.NumCDNCaches-len(hosts))...)
	for _, h := range hosts {
		host := g.topo.AS(h)
		idx := int(h) - 100 // invert ASN = 100 + generation index
		j := 0
		var p asn.Prefix
		for {
			p = cachePrefixFor(idx, j)
			if g.topo.prefixOrigin[p] == 0 {
				break
			}
			j++
		}
		host.Prefixes = append(host.Prefixes, p)
		g.topo.prefixOrigin[p] = h
		g.topo.PinPrefix(p, host.Cities[0])
		g.topo.MarkContentPrefix(p)
		g.topo.DNS.AddCache(dnsdb.Cache{Provider: cdn, HostAS: h, Prefix: p})
		// The CDN steers: many cache prefixes are announced through
		// only one chosen upstream.
		nbrs := g.topo.Neighbors(h)
		if len(nbrs) >= 2 && g.rng.Float64() < g.cfg.CacheSelectiveRate {
			if host.SelectiveExport == nil {
				host.SelectiveExport = make(map[asn.Prefix][]asn.ASN)
			}
			host.SelectiveExport[p] = []asn.ASN{nbrs[g.rng.Intn(len(nbrs))].ASN}
		}
	}
}

// retireLinks decommissions a few content peering links: they remain in
// RetiredLinks (and thus in historical snapshots) but are gone from the
// live topology. The first retiree is the vod-major's old direct link —
// the AS3549→Netflix stale-edge analogue.
func (g *generator) retireLinks() {
	vod := g.topo.Names["vod-major"]
	var victims []*Link
	// Prefer a vod-major peer link first.
	for _, n := range g.topo.Neighbors(vod) {
		if n.Role == RelPeer {
			victims = append(victims, n.Link)
			break
		}
	}
	var peers []*Link
	g.topo.Links(func(l *Link) {
		if l.HiRole == RelPeer && l.Lo != vod && l.Hi != vod &&
			l.HybridRoles == nil && l.PartialTransitFor == nil {
			peers = append(peers, l)
		}
	})
	sortLinks(peers)
	g.rng.Shuffle(len(peers), func(i, j int) { peers[i], peers[j] = peers[j], peers[i] })
	for _, l := range peers {
		if len(victims) >= g.cfg.RetiredLinkCount {
			break
		}
		victims = append(victims, l)
	}
	for _, l := range victims {
		g.removeLink(l)
		g.topo.RetiredLinks = append(g.topo.RetiredLinks, l)
	}
}

func (g *generator) removeLink(l *Link) {
	delete(g.topo.links, l.Key())
	filter := func(a, other asn.ASN) {
		ns := g.topo.neighbors[a]
		out := ns[:0]
		for _, n := range ns {
			if n.ASN != other {
				out = append(out, n)
			}
		}
		g.topo.neighbors[a] = out
	}
	filter(l.Lo, l.Hi)
	filter(l.Hi, l.Lo)
}

// ispClass reports whether the AS is a transit ISP (the population the
// published hybrid/partial-transit arrangements live in).
func (g *generator) ispClass(a asn.ASN) bool {
	switch g.topo.AS(a).Class {
	case Tier1, LargeISP, SmallISP:
		return true
	default:
		return false
	}
}

// pickDistinct samples up to n distinct elements from pool.
func pickDistinct(rng *rand.Rand, pool []asn.ASN, n int) []asn.ASN {
	if n >= len(pool) {
		cp := make([]asn.ASN, len(pool))
		copy(cp, pool)
		return cp
	}
	idx := rng.Perm(len(pool))[:n]
	out := make([]asn.ASN, 0, n)
	for _, i := range idx {
		out = append(out, pool[i])
	}
	return out
}

// sortLinks orders links canonically so that rng.Shuffle over them is
// deterministic regardless of map iteration order.
func sortLinks(ls []*Link) {
	sort.Slice(ls, func(i, j int) bool {
		if ls[i].Lo != ls[j].Lo {
			return ls[i].Lo < ls[j].Lo
		}
		return ls[i].Hi < ls[j].Hi
	})
}
