// Package topology holds the ground-truth AS-level Internet of routelab:
// ASes with classes and geographic footprints, inter-AS links with
// business relationships (including sibling, hybrid, and partial-transit
// arrangements), undersea-cable operator ASes, originated prefixes, and a
// deterministic generator that wires it all together.
//
// Everything downstream — the BGP engine, the measurement pipeline, the
// inference pipeline — consumes this package. Crucially, the inference
// pipeline is NOT allowed to read ground-truth relationships; it must
// re-infer them from vantage-point paths, exactly as CAIDA does.
package topology

import (
	"fmt"

	"routelab/internal/asn"
	"routelab/internal/geo"
	"routelab/internal/registry"
)

// Class buckets ASes the way Oliveira et al.'s categorization (used for
// the paper's Table 1) does, with two extra classes the generator needs:
// content networks and undersea-cable operators.
type Class uint8

const (
	// ClassNone is the zero value; no generated AS carries it.
	ClassNone Class = iota
	// Tier1 ASes form the settlement-free core clique.
	Tier1
	// LargeISP ASes are national/continental transit providers.
	LargeISP
	// SmallISP ASes are regional/access providers.
	SmallISP
	// Stub ASes are eyeball and enterprise edge networks.
	Stub
	// Content ASes originate popular services (CDN, video, web).
	Content
	// CableOp ASes operate undersea cables: independently-numbered
	// point-to-point transit systems between continents (§6). They
	// originate no user traffic and peer only at cable landings.
	CableOp
	// Research ASes are national research & education backbones
	// (Internet2 / AMPATH / Switch analogues): universities are their
	// customers, they peer with each other and a few Tier-1s, and they
	// buy no commercial transit.
	Research
)

// String returns the class name used in reports.
func (c Class) String() string {
	switch c {
	case Tier1:
		return "Tier-1"
	case LargeISP:
		return "Large ISP"
	case SmallISP:
		return "Small ISP"
	case Stub:
		return "Stub-AS"
	case Content:
		return "Content"
	case CableOp:
		return "Cable"
	case Research:
		return "Research"
	default:
		return "None"
	}
}

// Rel is the business role of a NEIGHBOR as seen from a given AS.
// RelCustomer means "that neighbor is my customer".
type Rel int8

const (
	// RelNone means the two ASes are not adjacent.
	RelNone Rel = iota
	// RelCustomer: the neighbor pays me; cheapest (best) routes.
	RelCustomer
	// RelSibling: the neighbor is under the same organization; routes
	// are exchanged freely and rank with customer routes.
	RelSibling
	// RelPeer: settlement-free exchange of customer routes.
	RelPeer
	// RelProvider: I pay the neighbor; most expensive routes.
	RelProvider
)

// String names the relationship.
func (r Rel) String() string {
	switch r {
	case RelCustomer:
		return "customer"
	case RelSibling:
		return "sibling"
	case RelPeer:
		return "peer"
	case RelProvider:
		return "provider"
	default:
		return "none"
	}
}

// Rank orders relationships by Gao–Rexford preference: lower is better.
// Customer and sibling routes rank together (the paper marks decisions
// through siblings as satisfying Best), peers next, providers last.
func (r Rel) Rank() int {
	switch r {
	case RelCustomer, RelSibling:
		return 0
	case RelPeer:
		return 1
	case RelProvider:
		return 2
	default:
		return 3
	}
}

// Invert returns the relationship from the other end's point of view.
func (r Rel) Invert() Rel {
	switch r {
	case RelCustomer:
		return RelProvider
	case RelProvider:
		return RelCustomer
	default:
		return r
	}
}

// AS is one autonomous system of the ground truth.
type AS struct {
	ASN   asn.ASN
	Class Class
	Org   registry.OrgID
	// HomeCountry is where the AS is headquartered (and whois-registered).
	HomeCountry geo.CountryCode
	// Cities are the PoPs, in stable order; index into this slice is the
	// "city slot" used by the deterministic router address plan.
	Cities []geo.CityID
	// InfraPrefix numbers the AS's routers (never announced in BGP).
	InfraPrefix asn.Prefix
	// Prefixes are the address blocks this AS originates.
	Prefixes []asn.Prefix

	// DomesticBias: the AS raises LocalPref for routes that stay inside
	// its country when the destination is domestic (§6 "Domestic paths").
	DomesticBias bool
	// FiltersASSets: the AS drops announcements carrying AS_SET segments,
	// which blunts poisoning experiments (§4.4 Limitations).
	FiltersASSets bool
	// NoLoopPrevention: the AS fails to drop paths containing its own
	// ASN (a rare misconfiguration the paper's §4.4 notes as a poisoning
	// limitation).
	NoLoopPrevention bool
	// ContentPeerTE: the AS traffic-engineers content traffic onto its
	// settlement-free peering fabric, preferring peer routes over
	// (possibly cheaper) customer routes when the destination is a
	// content network — the Cogent-toward-Akamai behavior behind many
	// of the paper's §5 violations.
	ContentPeerTE bool
	// ResearchPreference: the AS (a university, typically) raises
	// LocalPref for any route whose AS path traverses a Research-class
	// backbone, regardless of the next hop's business relationship.
	// This produces exactly the §4.4 case-study violations (Internet2
	// preferred as "provider" over AMPATH the "peer").
	ResearchPreference bool
	// SelectiveExport restricts the neighbors a prefix is announced to
	// (origin-side prefix-specific policy, §4.3). A prefix absent from
	// the map is announced to every neighbor the export rules allow; a
	// present prefix is announced only to the listed neighbors.
	SelectiveExport map[asn.Prefix][]asn.ASN
}

// MayAnnounce reports whether the origin AS's selective-export policy
// permits announcing p to neighbor n. Export-rule filtering (customer vs
// peer routes) is the BGP engine's job; this is only the origin policy.
func (a *AS) MayAnnounce(p asn.Prefix, n asn.ASN) bool {
	allowed, restricted := a.SelectiveExport[p]
	if !restricted {
		return true
	}
	for _, x := range allowed {
		if x == n {
			return true
		}
	}
	return false
}

// HasCity reports whether the AS has a PoP in the given city.
func (a *AS) HasCity(c geo.CityID) bool {
	for _, x := range a.Cities {
		if x == c {
			return true
		}
	}
	return false
}

// citySlot returns the index of c in Cities, or -1.
func (a *AS) citySlot(c geo.CityID) int {
	for i, x := range a.Cities {
		if x == c {
			return i
		}
	}
	return -1
}

// Link is an inter-AS adjacency. Lo < Hi canonically.
type Link struct {
	Lo, Hi asn.ASN
	// HiRole is Hi's role from Lo's perspective (RelProvider: Hi is Lo's
	// provider). The opposite direction is HiRole.Invert().
	HiRole Rel
	// Cities are the interconnection points (cities where both ASes have
	// PoPs and exchange traffic).
	Cities []geo.CityID
	// HybridRoles maps an interconnection city to a DIFFERENT role Hi
	// plays there (Giotsas-style hybrid relationship). Nil for ordinary
	// links. A link with HybridRoles set routes each destination prefix
	// according to the role at the city the traffic enters.
	HybridRoles map[geo.CityID]Rel
	// PartialTransitFor, when non-nil on a link whose base role is peer,
	// lists destination prefixes for which Hi additionally provides Lo
	// full transit (partial-transit arrangement). For those prefixes the
	// effective role of Hi (from Lo) is RelProvider.
	PartialTransitFor map[asn.Prefix]bool
}

// Key returns the canonical identity of the link.
func (l *Link) Key() LinkKey { return LinkKey{l.Lo, l.Hi} }

// RoleOf returns other's role from self's perspective on this link
// (ignoring hybrid/partial overrides), or RelNone if self is not an
// endpoint.
func (l *Link) RoleOf(self, other asn.ASN) Rel {
	switch {
	case self == l.Lo && other == l.Hi:
		return l.HiRole
	case self == l.Hi && other == l.Lo:
		return l.HiRole.Invert()
	default:
		return RelNone
	}
}

// IsHybrid reports whether the link's role varies by city.
func (l *Link) IsHybrid() bool { return len(l.HybridRoles) > 0 }

// LinkKey canonically identifies a link (Lo < Hi).
type LinkKey struct{ Lo, Hi asn.ASN }

// MakeLinkKey orders the pair canonically.
func MakeLinkKey(a, b asn.ASN) LinkKey {
	if a > b {
		a, b = b, a
	}
	return LinkKey{a, b}
}

// Neighbor pairs an adjacent AS with its (base) role and the link record.
type Neighbor struct {
	ASN  asn.ASN
	Role Rel // the neighbor's role from the owning AS's perspective
	Link *Link
}

func (n Neighbor) String() string {
	return fmt.Sprintf("%s(%s)", n.ASN, n.Role)
}
