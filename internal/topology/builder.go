package topology

import (
	"fmt"
	"math/rand"

	"routelab/internal/asn"
	"routelab/internal/dnsdb"
	"routelab/internal/geo"
	"routelab/internal/registry"
)

// Builder assembles small, explicit topologies by hand — the tool used
// in unit tests, fixtures for the paper's §4.4 case studies, and the
// quickstart example. Generated production topologies come from Generate.
type Builder struct {
	topo *Topology
	idx  map[asn.ASN]int // ASN -> address-plan index
}

// NewBuilder starts a builder over a default world (so countries and
// cities are available) with empty registry and DNS databases.
func NewBuilder() *Builder {
	w := geo.NewWorld(rand.New(rand.NewSource(1)), geo.Config{})
	return &Builder{
		topo: newTopology(w, registry.New(), dnsdb.New()),
		idx:  make(map[asn.ASN]int),
	}
}

// World returns the builder's world for city/country lookups.
func (b *Builder) World() *geo.World { return b.topo.World }

// AS adds an AS homed in the given country (empty selects the world's
// first country) with a PoP in that country's first city, one originated
// prefix, and a whois record. The returned record may be customized
// (extra cities, policy flags, more prefixes via AddPrefix) before Build.
func (b *Builder) AS(a asn.ASN, class Class, country geo.CountryCode) *AS {
	if country == "" {
		country = b.topo.World.AllCountries()[0]
	}
	c := b.topo.World.Country(country)
	if c == nil {
		panic(fmt.Sprintf("builder: unknown country %q", country))
	}
	i := len(b.idx) + 1
	b.idx[a] = i
	x := &AS{
		ASN:         a,
		Class:       class,
		Org:         registry.OrgID(fmt.Sprintf("org-%d", a)),
		HomeCountry: country,
		Cities:      []geo.CityID{c.Cities[0]},
		InfraPrefix: infraPrefixFor(i),
		Prefixes:    []asn.Prefix{originPrefixFor(i, 0)},
	}
	b.topo.Registry.AddOrg(registry.Org{ID: x.Org, Name: a.String(),
		EmailDomains: []string{fmt.Sprintf("as%d.example", a)}})
	if err := b.topo.Registry.AddAS(registry.ASRecord{
		ASN: a, Org: x.Org, Country: country,
		Registry: registry.RIRForContinent(c.Continent),
		Email:    fmt.Sprintf("noc@as%d.example", a),
	}); err != nil {
		panic(err)
	}
	b.topo.addAS(x)
	return x
}

// AddPrefix originates one more prefix at an existing AS and returns it.
func (b *Builder) AddPrefix(a asn.ASN) asn.Prefix {
	x := b.topo.AS(a)
	if x == nil {
		panic(fmt.Sprintf("builder: unknown %s", a))
	}
	p := originPrefixFor(b.idx[a], len(x.Prefixes))
	x.Prefixes = append(x.Prefixes, p)
	b.topo.prefixOrigin[p] = a
	return p
}

// Link connects x and y; roleOfY is y's role from x's perspective.
// Interconnection cities default to the shared PoPs (extending x's
// footprint to y's first city when there is no overlap).
func (b *Builder) Link(x, y asn.ASN, roleOfY Rel, cities ...geo.CityID) *Link {
	xs, ys := b.topo.AS(x), b.topo.AS(y)
	if xs == nil || ys == nil {
		panic("builder: link endpoints must be added first")
	}
	if len(cities) == 0 {
		cities = b.topo.SharedCities(x, y)
		if len(cities) == 0 {
			xs.Cities = append(xs.Cities, ys.Cities[0])
			cities = []geo.CityID{ys.Cities[0]}
		}
	} else {
		for _, c := range cities {
			if !xs.HasCity(c) {
				xs.Cities = append(xs.Cities, c)
			}
			if !ys.HasCity(c) {
				ys.Cities = append(ys.Cities, c)
			}
		}
	}
	lo, hi := x, y
	role := roleOfY
	if lo > hi {
		lo, hi = hi, lo
		role = role.Invert()
	}
	l := &Link{Lo: lo, Hi: hi, HiRole: role, Cities: append([]geo.CityID(nil), cities...)}
	b.topo.addLink(l)
	return b.topo.links[l.Key()]
}

// Retire removes a live link and records it in RetiredLinks.
func (b *Builder) Retire(x, y asn.ASN) {
	l := b.topo.Link(x, y)
	if l == nil {
		panic("builder: retiring a nonexistent link")
	}
	g := &generator{topo: b.topo}
	g.removeLink(l)
	b.topo.RetiredLinks = append(b.topo.RetiredLinks, l)
}

// Name registers a scenario handle.
func (b *Builder) Name(name string, a asn.ASN) { b.topo.Names[name] = a }

// Build seals and returns the topology: it is read-only from here on
// (mutators panic), which makes it safe to share across goroutines.
// Build is idempotent; builder methods must not be called after it.
func (b *Builder) Build() *Topology {
	b.topo.seal()
	return b.topo
}
