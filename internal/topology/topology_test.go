package topology

import (
	"testing"

	"routelab/internal/asn"
	"routelab/internal/geo"
)

// testTopo caches a small generated topology for the whole test package.
var testTopo = Generate(42, TestConfig())

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(7, TestConfig())
	b := Generate(7, TestConfig())
	if a.NumASes() != b.NumASes() || a.NumLinks() != b.NumLinks() {
		t.Fatalf("same seed differs: %d/%d ASes, %d/%d links",
			a.NumASes(), b.NumASes(), a.NumLinks(), b.NumLinks())
	}
	for _, x := range a.ASNs() {
		av, bv := a.AS(x), b.AS(x)
		if av.Class != bv.Class || av.HomeCountry != bv.HomeCountry ||
			len(av.Cities) != len(bv.Cities) || len(av.Prefixes) != len(bv.Prefixes) {
			t.Fatalf("AS %s differs between identical seeds", x)
		}
	}
	c := Generate(8, TestConfig())
	if a.NumLinks() == c.NumLinks() && a.NumASes() == c.NumASes() {
		// Extremely unlikely to match exactly on both counts.
		t.Log("warning: different seeds produced identical counts")
	}
}

func TestClassCounts(t *testing.T) {
	cfg := TestConfig().scaled()
	counts := map[Class]int{}
	for _, a := range testTopo.ASNs() {
		counts[testTopo.AS(a).Class]++
	}
	if counts[Tier1] != cfg.NumTier1 {
		t.Errorf("Tier1 = %d, want %d", counts[Tier1], cfg.NumTier1)
	}
	// Universities and the PEERING AS are generated as extra stubs.
	if counts[Stub] != cfg.NumStub+12+1 {
		t.Errorf("Stub = %d, want %d", counts[Stub], cfg.NumStub+13)
	}
	if counts[CableOp] != cfg.NumCableOps {
		t.Errorf("CableOp = %d, want %d", counts[CableOp], cfg.NumCableOps)
	}
}

func TestTier1Clique(t *testing.T) {
	t1 := testTopo.ASesOfClass(Tier1)
	for i := 0; i < len(t1); i++ {
		for j := i + 1; j < len(t1); j++ {
			rel := testTopo.Rel(t1[i], t1[j])
			// Sibling conversion can only touch ISP classes, so every
			// Tier-1 pair must be plain peers.
			if rel != RelPeer {
				t.Errorf("%s-%s: rel %s, want peer", t1[i], t1[j], rel)
			}
		}
	}
}

// Every non-Tier1, non-cable AS must have a strictly-upward provider
// chain reaching the Tier-1 clique, or routing cannot be complete.
func TestProviderChainsReachTier1(t *testing.T) {
	// BFS downward from Tier-1s along provider->customer edges.
	reached := map[asn.ASN]bool{}
	var queue []asn.ASN
	for _, a := range testTopo.ASesOfClass(Tier1) {
		reached[a] = true
		queue = append(queue, a)
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, n := range testTopo.Neighbors(cur) {
			if (n.Role == RelCustomer || n.Role == RelSibling) && !reached[n.ASN] {
				reached[n.ASN] = true
				queue = append(queue, n.ASN)
			}
		}
	}
	missing := 0
	for _, a := range testTopo.ASNs() {
		if c := testTopo.AS(a).Class; c == CableOp || c == Research {
			continue // cables and R&E backbones sit outside the cone by design
		}
		if !reached[a] {
			missing++
			if missing < 5 {
				t.Errorf("%s (%s) unreachable from Tier-1 via customer edges",
					a, testTopo.AS(a).Class)
			}
		}
	}
	if missing > 0 {
		t.Fatalf("%d ASes outside the Tier-1 customer cone", missing)
	}
}

// The customer-provider graph must be acyclic or BGP simulation diverges.
func TestNoCustomerProviderCycles(t *testing.T) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[asn.ASN]int{}
	var visit func(a asn.ASN) bool
	visit = func(a asn.ASN) bool {
		color[a] = gray
		for _, n := range testTopo.Neighbors(a) {
			if n.Role != RelProvider {
				continue // follow customer->provider edges only
			}
			switch color[n.ASN] {
			case gray:
				return false
			case white:
				if !visit(n.ASN) {
					return false
				}
			}
		}
		color[a] = black
		return true
	}
	for _, a := range testTopo.ASNs() {
		if color[a] == white {
			if !visit(a) {
				t.Fatal("customer-provider cycle detected")
			}
		}
	}
}

func TestLinksHaveInterconnectionCities(t *testing.T) {
	testTopo.Links(func(l *Link) {
		if len(l.Cities) == 0 {
			t.Errorf("link %s-%s has no interconnection city", l.Lo, l.Hi)
			return
		}
		for _, c := range l.Cities {
			if !testTopo.AS(l.Lo).HasCity(c) || !testTopo.AS(l.Hi).HasCity(c) {
				t.Errorf("link %s-%s city %d not a PoP of both ends", l.Lo, l.Hi, c)
			}
		}
	})
}

func TestRelSymmetry(t *testing.T) {
	testTopo.Links(func(l *Link) {
		if testTopo.Rel(l.Lo, l.Hi) != testTopo.Rel(l.Hi, l.Lo).Invert() {
			t.Errorf("asymmetric rel on %s-%s", l.Lo, l.Hi)
		}
	})
	if testTopo.Rel(101, 99999) != RelNone {
		t.Error("non-adjacent pair should be RelNone")
	}
}

func TestNeighborRolesMatchLinks(t *testing.T) {
	for _, a := range testTopo.ASNs() {
		for _, n := range testTopo.Neighbors(a) {
			if got := n.Link.RoleOf(a, n.ASN); got != n.Role {
				t.Fatalf("%s neighbor %s: cached role %s != link role %s",
					a, n.ASN, n.Role, got)
			}
		}
	}
}

func TestSiblingGroupsShareOrg(t *testing.T) {
	orgs := testTopo.Orgs()
	multi := 0
	for _, members := range orgs {
		if len(members) < 2 {
			continue
		}
		multi++
		// Sibling members must be pairwise connected with sibling links.
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				if testTopo.Rel(members[i], members[j]) != RelSibling {
					t.Errorf("org members %s-%s not sibling-linked",
						members[i], members[j])
				}
			}
		}
	}
	if multi == 0 {
		t.Fatal("no multi-AS organizations generated")
	}
}

func TestAddressPlanInvertible(t *testing.T) {
	for _, a := range testTopo.ASNs() {
		x := testTopo.AS(a)
		for ci, city := range x.Cities {
			ip := testTopo.RouterIP(a, city, ci%routersPerCity)
			if ip == 0 {
				t.Fatalf("%s has no router IP in city %d", a, city)
			}
			owner, gotCity, ok := testTopo.LocateRouter(ip)
			if !ok || owner != a || gotCity != city {
				t.Fatalf("LocateRouter(%v) = %v,%v,%v; want %v,%v",
					ip, owner, gotCity, ok, a, city)
			}
		}
	}
}

func TestRouterIPBounds(t *testing.T) {
	a := testTopo.ASNs()[0]
	city := testTopo.AS(a).Cities[0]
	if testTopo.RouterIP(a, city, -1) != 0 || testTopo.RouterIP(a, city, routersPerCity) != 0 {
		t.Error("out-of-range router index should yield 0")
	}
	if testTopo.RouterIP(a, geo.CityID(60000), 0) != 0 {
		t.Error("unknown city should yield 0")
	}
	if testTopo.RouterIP(99999, city, 0) != 0 {
		t.Error("unknown AS should yield 0")
	}
}

func TestASByAddrResolvesAnnounced(t *testing.T) {
	for _, a := range testTopo.ASNs() {
		for _, p := range testTopo.AS(a).Prefixes {
			if got := testTopo.ASByAddr(p.Nth(13)); got != a {
				t.Fatalf("ASByAddr inside %s = %v, want %v", p, got, a)
			}
		}
	}
	// Infra addresses resolve through the covering /18 to their owner.
	a := testTopo.ASNs()[0]
	infra := testTopo.AS(a).InfraPrefix
	if got := testTopo.ASByAddr(infra.Nth(1)); got != a {
		t.Errorf("infrastructure address resolved to %v, want owner %v", got, a)
	}
	if testTopo.ASByAddr(IXPPrefix(1).Nth(9)) != 0 {
		t.Error("IXP address resolved via BGP prefix table")
	}
}

func TestCoveringPrefixContainsInfra(t *testing.T) {
	for _, a := range testTopo.ASNs()[:40] {
		x := testTopo.AS(a)
		if len(x.Prefixes) == 0 {
			continue
		}
		if !x.Prefixes[0].ContainsPrefix(x.InfraPrefix) {
			t.Fatalf("%s first prefix %s does not cover infra %s", a, x.Prefixes[0], x.InfraPrefix)
		}
		// Host offsets stay clear of the infrastructure block.
		if x.InfraPrefix.Contains(x.Prefixes[0].Nth(HostOffset(0))) {
			t.Fatal("host offset landed inside the infrastructure /24")
		}
	}
}

func TestIXPAddrSpace(t *testing.T) {
	if !IsIXPAddr(IXPPrefix(5).Nth(3)) {
		t.Error("IXP prefix address not recognized")
	}
	if IsIXPAddr(asn.AddrFrom4(10, 0, 0, 1)) {
		t.Error("ordinary address misdetected as IXP")
	}
}

func TestNamedHandles(t *testing.T) {
	for _, name := range []string{"cdn-major", "vod-major"} {
		a, ok := testTopo.Names[name]
		if !ok || testTopo.AS(a) == nil {
			t.Fatalf("missing named AS %q", name)
		}
		if testTopo.AS(a).Class != Content {
			t.Errorf("%q should be a content AS", name)
		}
	}
}

func TestResearchSubstrate(t *testing.T) {
	peering, ok := testTopo.Names["peering"]
	if !ok {
		t.Fatal("no peering testbed AS")
	}
	if len(testTopo.AS(peering).Prefixes) < 2 {
		t.Error("peering AS should own at least two experiment prefixes")
	}
	muxes := 0
	for i := 0; ; i++ {
		mux, ok := testTopo.Names["mux-"+string(rune('0'+i))]
		if !ok {
			break
		}
		muxes++
		if testTopo.Rel(peering, mux) != RelProvider {
			t.Errorf("mux %s is not a provider of the peering AS", mux)
		}
		if !testTopo.AS(mux).ResearchPreference {
			t.Errorf("mux university %s lacks research preference", mux)
		}
	}
	if muxes != 7 {
		t.Errorf("found %d muxes, want 7", muxes)
	}
	backbones := testTopo.ASesOfClass(Research)
	if len(backbones) != 3 {
		t.Fatalf("%d research backbones, want 3", len(backbones))
	}
	for _, b := range backbones {
		for _, n := range testTopo.Neighbors(b) {
			if n.Role == RelProvider {
				t.Errorf("research backbone %s buys transit from %s", b, n.ASN)
			}
		}
	}
}

func TestCDNCachesHosted(t *testing.T) {
	cdn := testTopo.Names["cdn-major"]
	hosts := testTopo.DNS.CacheHosts(cdn)
	if len(hosts) == 0 {
		t.Fatal("cdn-major has no off-net caches")
	}
	for _, h := range hosts {
		host := testTopo.AS(h)
		if host.Class != Stub && host.Class != SmallISP {
			t.Errorf("cache host %s has class %s, want eyeball", h, host.Class)
		}
		// The cache prefix is announced by the HOST, not the CDN.
		found := false
		for _, p := range host.Prefixes {
			if testTopo.OriginOf(p) == h && p.Addr >= asBlock(int(h)-100).Addr {
				found = true
			}
		}
		if !found {
			t.Errorf("cache host %s does not announce a cache prefix", h)
		}
	}
}

func TestRetiredLinksAbsentFromLive(t *testing.T) {
	if len(testTopo.RetiredLinks) == 0 {
		t.Fatal("no retired links generated")
	}
	for _, l := range testTopo.RetiredLinks {
		if testTopo.Link(l.Lo, l.Hi) != nil {
			t.Errorf("retired link %s-%s still live", l.Lo, l.Hi)
		}
		for _, n := range testTopo.Neighbors(l.Lo) {
			if n.ASN == l.Hi {
				t.Errorf("retired link %s-%s still in neighbor list", l.Lo, l.Hi)
			}
		}
	}
	vod := testTopo.Names["vod-major"]
	if l := testTopo.RetiredLinks[0]; l.Lo != vod && l.Hi != vod {
		t.Error("first retired link should touch vod-major (the stale-edge fixture)")
	}
}

func TestHybridAndPartialTransitPresent(t *testing.T) {
	hybrid, partial := 0, 0
	testTopo.Links(func(l *Link) {
		if l.IsHybrid() {
			hybrid++
			for c, r := range l.HybridRoles {
				found := false
				for _, lc := range l.Cities {
					if lc == c {
						found = true
					}
				}
				if !found {
					t.Errorf("hybrid city %d not an interconnection city", c)
				}
				if r == l.HiRole {
					t.Error("hybrid role equals base role — not hybrid")
				}
			}
		}
		if l.PartialTransitFor != nil {
			partial++
			if l.HiRole != RelPeer {
				t.Error("partial transit on a non-peer link")
			}
		}
	})
	if hybrid == 0 {
		t.Error("no hybrid links generated")
	}
	if partial == 0 {
		t.Error("no partial-transit links generated")
	}
}

func TestSelectiveExportStrictSubset(t *testing.T) {
	found := 0
	for _, a := range testTopo.ASNs() {
		x := testTopo.AS(a)
		for p, allowed := range x.SelectiveExport {
			found++
			if len(allowed) == 0 || len(allowed) >= len(testTopo.Neighbors(a)) {
				t.Errorf("%s selective export for %s not a strict subset", a, p)
			}
			if !x.MayAnnounce(p, allowed[0]) {
				t.Error("MayAnnounce denies an allowed neighbor")
			}
			denied := asn.ASN(99999)
			if x.MayAnnounce(p, denied) {
				t.Error("MayAnnounce allows an unlisted neighbor")
			}
		}
		// Unrestricted prefixes are announced to anyone.
		if len(x.Prefixes) > 0 {
			free := x.Prefixes[len(x.Prefixes)-1]
			if _, restricted := x.SelectiveExport[free]; !restricted {
				if !x.MayAnnounce(free, 12345) {
					t.Error("unrestricted prefix refused")
				}
			}
		}
	}
	if found == 0 {
		t.Error("no selective-export policies generated")
	}
}

func TestCableOpsSpanContinents(t *testing.T) {
	for _, a := range testTopo.ASesOfClass(CableOp) {
		x := testTopo.AS(a)
		if len(x.Cities) < 2 {
			t.Fatalf("cable %s has fewer than two landings", a)
		}
		if !testTopo.World.Intercontinental(x.Cities[0], x.Cities[1]) {
			t.Errorf("cable %s landings on same continent", a)
		}
		// Landings are customers of the cable.
		for _, n := range testTopo.Neighbors(a) {
			if n.Role != RelCustomer {
				t.Errorf("cable %s neighbor %s has role %s, want customer", a, n.ASN, n.Role)
			}
		}
	}
}

func TestWhoisCoverage(t *testing.T) {
	for _, a := range testTopo.ASNs() {
		rec, ok := testTopo.Registry.Whois(a)
		if !ok {
			t.Fatalf("no whois record for %s", a)
		}
		if rec.Country != testTopo.AS(a).HomeCountry {
			t.Errorf("%s whois country %s != home %s", a, rec.Country, testTopo.AS(a).HomeCountry)
		}
		if rec.EmailDomain() == "" {
			t.Errorf("%s has no contact e-mail domain", a)
		}
	}
}

func TestRelHelpers(t *testing.T) {
	if RelCustomer.Invert() != RelProvider || RelProvider.Invert() != RelCustomer {
		t.Error("customer/provider inversion")
	}
	if RelPeer.Invert() != RelPeer || RelSibling.Invert() != RelSibling {
		t.Error("peer/sibling are self-inverse")
	}
	if RelCustomer.Rank() != 0 || RelSibling.Rank() != 0 || RelPeer.Rank() != 1 || RelProvider.Rank() != 2 {
		t.Error("rank ordering broken")
	}
	if RelNone.Rank() <= RelProvider.Rank() {
		t.Error("RelNone must rank worst")
	}
}

func TestHostnamesGenerated(t *testing.T) {
	cfg := TestConfig().scaled()
	hs := testTopo.DNS.Hostnames()
	if len(hs) != cfg.NumHostnames {
		t.Fatalf("%d hostnames, want %d", len(hs), cfg.NumHostnames)
	}
	majors := map[asn.ASN]bool{}
	for _, h := range hs {
		majors[h.Provider] = true
		if testTopo.AS(h.Provider) == nil {
			t.Errorf("hostname %s has unknown provider", h.Name)
		}
	}
	if len(majors) != cfg.NumContentMajors {
		t.Errorf("%d distinct providers, want %d", len(majors), cfg.NumContentMajors)
	}
}

func TestContentPrefixTagging(t *testing.T) {
	cdn := testTopo.Names["cdn-major"]
	for _, p := range testTopo.AS(cdn).Prefixes {
		if !testTopo.IsContentPrefix(p) {
			t.Errorf("major serving prefix %s not tagged as content", p)
		}
		if testTopo.CityOfPrefix(p) == 0 {
			t.Errorf("major serving prefix %s not regionally pinned", p)
		}
	}
	// Cache prefixes are content too, even though their origin is an
	// eyeball AS.
	hosts := testTopo.DNS.CacheHosts(cdn)
	if len(hosts) == 0 {
		t.Fatal("no caches")
	}
	host := testTopo.AS(hosts[0])
	cachePfx := host.Prefixes[len(host.Prefixes)-1]
	if !testTopo.IsContentPrefix(cachePfx) {
		t.Errorf("cache prefix %s not tagged as content", cachePfx)
	}
	// Ordinary eyeball space is not content.
	stub := testTopo.ASesOfClass(Stub)[0]
	if testTopo.IsContentPrefix(testTopo.AS(stub).Prefixes[0]) {
		t.Error("plain stub prefix tagged as content")
	}
}

func TestContentMajorsHeavilyMultihomed(t *testing.T) {
	for i := 0; ; i++ {
		name := "content-" + string(rune('0'+i))
		a, ok := testTopo.Names[name]
		if !ok {
			if i == 0 {
				t.Fatal("no content majors")
			}
			return
		}
		providers := 0
		for _, n := range testTopo.Neighbors(a) {
			if n.Role == RelProvider {
				providers++
			}
		}
		if providers < 5 {
			t.Errorf("%s has only %d providers; majors are heavily multihomed", name, providers)
		}
		if i >= 9 {
			return
		}
	}
}

func TestPolicyFlagsPresent(t *testing.T) {
	te, domestic := 0, 0
	for _, a := range testTopo.ASNs() {
		x := testTopo.AS(a)
		if x.ContentPeerTE {
			te++
			if x.Class != Tier1 && x.Class != LargeISP && x.Class != SmallISP {
				t.Errorf("%v (%s) runs content TE", a, x.Class)
			}
		}
		if x.DomesticBias {
			domestic++
		}
	}
	if te == 0 {
		t.Error("no content-TE ASes generated")
	}
	if domestic == 0 {
		t.Error("no domestic-bias ASes generated")
	}
}

func TestRegionalPrefixContinentsCovered(t *testing.T) {
	cdn := testTopo.Names["cdn-major"]
	conts := map[geo.Continent]bool{}
	for _, p := range testTopo.AS(cdn).Prefixes {
		if c := testTopo.CityOfPrefix(p); c != 0 {
			conts[testTopo.World.ContinentOf(c)] = true
		}
	}
	if len(conts) < 5 {
		t.Errorf("major's serving prefixes cover only %d continents", len(conts))
	}
}
