// Package classify is the paper's analysis core (§3.3–§6): it judges
// every measured routing decision against the Gao–Rexford model computed
// over the inferred topology, applies the successive refinements of
// Figure 1 (complex relationships, siblings, prefix-specific policies),
// attributes violations to geography and undersea cables, and
// reverse-engineers the BGP decision steps behind the active-experiment
// observations (Table 2, §4.4).
package classify

import (
	"sync"

	"routelab/internal/asn"
	"routelab/internal/complexrel"
	"routelab/internal/gaorexford"
	"routelab/internal/geo"
	"routelab/internal/registry"
	"routelab/internal/relgraph"
	"routelab/internal/siblings"
	"routelab/internal/topology"
)

// Category is a Figure 1 quadrant: did the decision use the best
// available relationship class (Best), and is the measured path as short
// as the model's shortest (Short)?
type Category uint8

const (
	// BestShort decisions follow the model fully.
	BestShort Category = iota
	// NonBestShort decisions pick a more expensive neighbor but a
	// shortest-length path.
	NonBestShort
	// BestLong decisions pick the cheapest class but a longer path.
	BestLong
	// NonBestLong decisions are explained by neither property.
	NonBestLong
)

// Categories lists the quadrants in the paper's legend order.
var Categories = []Category{BestShort, NonBestShort, BestLong, NonBestLong}

// String names the category as Figure 1 does.
func (c Category) String() string {
	switch c {
	case BestShort:
		return "Best/Short"
	case NonBestShort:
		return "NonBest/Short"
	case BestLong:
		return "Best/Long"
	default:
		return "NonBest/Long"
	}
}

// IsViolation reports whether the category deviates from the model (the
// paper's Figure 2 pools all three non-Best/Short categories).
func (c Category) IsViolation() bool { return c != BestShort }

// Refinement selects a Figure 1 column.
type Refinement uint8

const (
	// Simple is the plain Gao–Rexford comparison on the inferred graph.
	Simple Refinement = iota
	// Complex adds hybrid and partial-transit relationships (§4.1).
	Complex
	// Sibs marks decisions through inferred siblings as Best (§4.2).
	Sibs
	// PSP1 applies prefix-specific-policy Criteria 1 (§4.3): drop the
	// origin edge N–O for prefix P unless feeds show O announcing P to N.
	PSP1
	// PSP2 is Criteria 2: like PSP1, but an edge is only droppable when
	// feeds observed it carrying at least one prefix (visibility guard).
	PSP2
	// All1 combines Complex + Sibs + PSP1.
	All1
	// All2 combines Complex + Sibs + PSP2.
	All2
)

// Refinements lists the Figure 1 columns in order.
var Refinements = []Refinement{Simple, Complex, Sibs, PSP1, PSP2, All1, All2}

// String names the refinement as the Figure 1 x-axis does.
func (r Refinement) String() string {
	switch r {
	case Simple:
		return "Simple"
	case Complex:
		return "Complex"
	case Sibs:
		return "Sibs"
	case PSP1:
		return "PSP-1"
	case PSP2:
		return "PSP-2"
	case All1:
		return "All-1"
	default:
		return "All-2"
	}
}

func (r Refinement) usesComplex() bool { return r == Complex || r == All1 || r == All2 }
func (r Refinement) usesSibs() bool    { return r == Sibs || r == All1 || r == All2 }
func (r Refinement) pspCriteria() int {
	switch r {
	case PSP1, All1:
		return 1
	case PSP2, All2:
		return 2
	default:
		return 0
	}
}

// Decision is one measured routing decision: AS At forwarded traffic for
// Prefix (originated by DstAS) to neighbor Via, with RestLen ASes left
// on the measured path after At.
type Decision struct {
	At, Via asn.ASN
	Prefix  asn.Prefix
	DstAS   asn.ASN
	RestLen int
	// BoundaryCity is the geolocated interconnection city between At
	// and Via (0 when geolocation failed) — the key for hybrid
	// relationships.
	BoundaryCity geo.CityID
	// SrcAS is the AS originating the measurement (for Figure 2).
	SrcAS asn.ASN
	// TraceID links the decision back to its measurement.
	TraceID int
}

// Context bundles every dataset the classification consumes. All fields
// are measurement-plane artifacts; none reads routing ground truth.
//
// The exported datasets are read-only after assembly; the only mutable
// state is the pair of internal model caches, which are guarded by a
// mutex. Classify, Breakdown, and the other judging methods are
// therefore safe for concurrent use — on a cache miss two goroutines
// may both compute the (deterministic, identical) model result and one
// copy wins, so parallel classification stays byte-identical to serial.
type Context struct {
	// Graph is the aggregated inferred relationship graph (the CAIDA
	// stand-in).
	Graph *relgraph.Graph
	// Siblings is the whois/SOA sibling grouping.
	Siblings *siblings.Groups
	// Complex is the hybrid/partial-transit dataset.
	Complex *complexrel.Dataset
	// OriginEvidence records, per prefix, the neighbors the origin was
	// seen announcing it to in BGP feeds (§4.3 evidence).
	OriginEvidence map[asn.Prefix]map[asn.ASN]bool
	// EdgeEverAtOrigin records origin-position edges seen for ANY
	// prefix; Criteria 2 only drops edges present here.
	EdgeEverAtOrigin map[topology.LinkKey]bool
	// Registry and World serve the whois-country checks of §6.
	Registry *registry.Registry
	World    *geo.World
	// CableASes is the TeleGeography-style undersea-cable AS list.
	CableASes map[asn.ASN]bool

	// cacheMu guards the two model caches below. Model results are
	// deterministic functions of (Graph, key), so the lock is released
	// during computation: racing goroutines may duplicate work but
	// never disagree.
	cacheMu  sync.Mutex
	grCache  map[asn.ASN]*gaorexford.Result
	pspCache map[pspKey]*gaorexford.Result
}

type pspKey struct {
	prefix   asn.Prefix
	criteria int
}

// WithGraph returns a copy of the context judging against a different
// relationship graph (fresh model caches). The ablation experiments use
// it to re-score the same decisions under alternative inferences.
func (cx *Context) WithGraph(g *relgraph.Graph) *Context {
	// Field-by-field copy: the receiver's mutex and caches must not be
	// carried over (and a struct copy would race with concurrent users).
	return &Context{
		Graph:            g,
		Siblings:         cx.Siblings,
		Complex:          cx.Complex,
		OriginEvidence:   cx.OriginEvidence,
		EdgeEverAtOrigin: cx.EdgeEverAtOrigin,
		Registry:         cx.Registry,
		World:            cx.World,
		CableASes:        cx.CableASes,
	}
}

// cachedModel returns the cached result under key when present, or runs
// compute outside the lock and installs the result (first writer wins).
func cachedModel[K comparable](cx *Context, cache *map[K]*gaorexford.Result, key K, compute func() *gaorexford.Result) *gaorexford.Result {
	cx.cacheMu.Lock()
	if *cache == nil {
		*cache = make(map[K]*gaorexford.Result)
	}
	if r, ok := (*cache)[key]; ok {
		cx.cacheMu.Unlock()
		return r
	}
	cx.cacheMu.Unlock()
	r := compute()
	cx.cacheMu.Lock()
	defer cx.cacheMu.Unlock()
	if prev, ok := (*cache)[key]; ok {
		return prev
	}
	(*cache)[key] = r
	return r
}

// gr returns (cached) model results toward a destination on the plain
// graph.
func (cx *Context) gr(dst asn.ASN) *gaorexford.Result {
	return cachedModel(cx, &cx.grCache, dst, func() *gaorexford.Result {
		return gaorexford.Compute(cx.Graph, dst)
	})
}

// grPSP returns model results with the §4.3 origin-edge masking applied
// for a prefix.
func (cx *Context) grPSP(dst asn.ASN, prefix asn.Prefix, criteria int) *gaorexford.Result {
	return cachedModel(cx, &cx.pspCache, pspKey{prefix, criteria}, func() *gaorexford.Result {
		return gaorexford.Compute(cx.Graph, dst, cx.MaskedEdges(dst, prefix, criteria)...)
	})
}

// MaskedEdges returns the origin edges the PSP criteria drop for a
// prefix: every graph edge N–O (O the origin) that feeds never showed
// carrying the prefix — under Criteria 2 only when the edge was seen at
// origin position for some other prefix.
func (cx *Context) MaskedEdges(dst asn.ASN, prefix asn.Prefix, criteria int) []relgraph.Edge {
	if criteria == 0 {
		return nil
	}
	observed := cx.OriginEvidence[prefix]
	var masked []relgraph.Edge
	for _, n := range cx.Graph.Neighbors(dst) {
		if observed[n] {
			continue
		}
		if criteria == 2 && !cx.EdgeEverAtOrigin[topology.MakeLinkKey(dst, n)] {
			continue // poor visibility, not evidence of policy
		}
		masked = append(masked, relgraph.Edge{A: dst, B: n})
	}
	return masked
}

// chosenRel resolves the relationship the decision used under a
// refinement: the inferred base relationship, optionally overridden by
// the complex dataset at the geolocated interconnection city or by a
// published partial-transit arrangement for the prefix.
func (cx *Context) chosenRel(d Decision, ref Refinement) topology.Rel {
	rel := cx.Graph.Rel(d.At, d.Via)
	if !ref.usesComplex() {
		return rel
	}
	if d.BoundaryCity != 0 {
		if hr, ok := cx.Complex.HybridRole(d.At, d.Via, d.BoundaryCity); ok {
			rel = hr
		}
	}
	if cx.Complex.PartialTransit(d.At, d.Via, d.Prefix) {
		// Via provides At transit for this prefix: the decision is a
		// (legitimate) provider-class route.
		rel = topology.RelProvider
	}
	return rel
}

// Classify judges one decision under a refinement.
func (cx *Context) Classify(d Decision, ref Refinement) Category {
	var res *gaorexford.Result
	if c := ref.pspCriteria(); c > 0 {
		res = cx.grPSP(d.DstAS, d.Prefix, c)
	} else {
		res = cx.gr(d.DstAS)
	}
	rel := cx.chosenRel(d, ref)
	bestRank := res.BestRank(d.At)
	best := rel != topology.RelNone && rel.Rank() <= bestRank
	if !best && ref.usesSibs() && cx.Siblings.SameOrg(d.At, d.Via) {
		// §4.2: a decision routed through a sibling satisfies Best.
		best = true
	}
	// The Short reference is the shortest path SATISFYING the GR model
	// of local preference (§3.3), i.e. through the best available
	// relationship class.
	short := d.RestLen <= bestClassLen(res, d.At, bestRank)
	switch {
	case best && short:
		return BestShort
	case short:
		return NonBestShort
	case best:
		return BestLong
	default:
		return NonBestLong
	}
}

// bestClassLen maps an AS's BestRank back to that class's shortest
// model length.
func bestClassLen(res *gaorexford.Result, at asn.ASN, bestRank int) int {
	switch bestRank {
	case 0:
		return res.ClassLen(at, topology.RelCustomer)
	case 1:
		return res.ClassLen(at, topology.RelPeer)
	case 2:
		return res.ClassLen(at, topology.RelProvider)
	default:
		return gaorexford.Unreachable
	}
}

// Breakdown counts decisions per category under a refinement.
func (cx *Context) Breakdown(decisions []Decision, ref Refinement) map[Category]int {
	out := make(map[Category]int, 4)
	for _, d := range decisions {
		out[cx.Classify(d, ref)]++
	}
	return out
}
