package classify

import (
	"routelab/internal/asn"
	"routelab/internal/bgp"
)

// MagnetCause is a Table 2 row: the BGP decision step inferred to be
// behind an AS's route choice after the anycast.
type MagnetCause uint8

const (
	// CauseBestRel: the chosen route is cheaper (per the inferred
	// relationships) than every other route observed from the AS.
	CauseBestRel MagnetCause = iota
	// CauseShorterPath: same cost class, strictly shortest AS path.
	CauseShorterPath
	// CauseIntradomain: the AS moved to a route that ties on cost and
	// length — an intradomain (IGP) tie-breaker.
	CauseIntradomain
	// CauseOldestRoute: the AS kept the magnet route on a pure tie —
	// route age (the last tie-breaker before router ID).
	CauseOldestRoute
	// CauseViolation: the chosen route is more expensive, or same cost
	// but longer, than another observed route.
	CauseViolation
)

// MagnetCauses lists the Table 2 rows in order.
var MagnetCauses = []MagnetCause{CauseBestRel, CauseShorterPath, CauseIntradomain, CauseOldestRoute, CauseViolation}

// String names the cause as Table 2 does.
func (m MagnetCause) String() string {
	switch m {
	case CauseBestRel:
		return "Best relationship"
	case CauseShorterPath:
		return "Shorter path"
	case CauseIntradomain:
		return "Intradomain tie-breaker"
	case CauseOldestRoute:
		return "Oldest route (magnet)"
	default:
		return "Violation"
	}
}

// MagnetDecision is one observation prepared for classification: the
// route an AS chose after anycast and every other route the observer
// saw from that AS across the experiment campaign.
type MagnetDecision struct {
	AS asn.ASN
	// Chosen is the post-anycast route.
	Chosen bgp.Route
	// KeptMagnet reports whether the AS stayed on its magnet-phase
	// route.
	KeptMagnet bool
	// Sticky reports whether the AS settled on the SAME next hop after
	// every anycast in the campaign, regardless of which mux was the
	// magnet. A sticky AS is driven by a static preference (IGP cost);
	// a non-sticky keeper follows whichever route arrived first (age).
	Sticky bool
	// Others are the distinct alternative routes observed from the AS
	// (excluding Chosen).
	Others []bgp.Route
}

// ClassifyMagnet reverse-engineers the decision step (§3.2): cost is
// the inferred relationship rank of the route's next hop; length is the
// BGP path length.
func (cx *Context) ClassifyMagnet(d MagnetDecision) MagnetCause {
	if len(d.Others) == 0 {
		// No alternative observed: trivially the best available; the
		// paper's totals only include ASes with alternatives, so
		// callers filter these out — return BestRel defensively.
		return CauseBestRel
	}
	cost := func(r bgp.Route) int { return cx.Graph.Rel(d.AS, r.NextHop).Rank() }
	cCost, cLen := cost(d.Chosen), d.Chosen.Path.Len()
	cheaperThanAll, minOtherCost := true, 99
	shortestAmongTies := true
	for _, o := range d.Others {
		oc := cost(o)
		if oc < minOtherCost {
			minOtherCost = oc
		}
		if oc <= cCost {
			cheaperThanAll = false
		}
		if oc == cCost && o.Path.Len() <= cLen {
			shortestAmongTies = false
		}
	}
	switch {
	case cheaperThanAll:
		return CauseBestRel
	case minOtherCost < cCost:
		return CauseViolation
	case shortestAmongTies:
		return CauseShorterPath
	default:
		// Cost ties exist and the chosen route is not strictly
		// shortest. If an equal-cost alternative is strictly SHORTER,
		// the model is violated; on exact ties the tie-breakers decide.
		for _, o := range d.Others {
			if cost(o) == cCost && o.Path.Len() < cLen {
				return CauseViolation
			}
		}
		if d.KeptMagnet && !d.Sticky {
			// Kept whatever arrived first, and lands on different next
			// hops depending on the magnet: route age decided.
			return CauseOldestRoute
		}
		// A static per-exit preference decided (the same winner
		// regardless of history): intradomain cost.
		return CauseIntradomain
	}
}

// MagnetBreakdown tallies a batch of decisions into Table 2 rows.
func (cx *Context) MagnetBreakdown(ds []MagnetDecision) map[MagnetCause]int {
	out := make(map[MagnetCause]int, 5)
	for _, d := range ds {
		if len(d.Others) == 0 {
			continue // unobservable: no alternatives known
		}
		out[cx.ClassifyMagnet(d)]++
	}
	return out
}
