package classify

import (
	"testing"

	"routelab/internal/asn"
	"routelab/internal/bgp"
	"routelab/internal/complexrel"
	"routelab/internal/dnsdb"
	"routelab/internal/geo"
	"routelab/internal/registry"
	"routelab/internal/relgraph"
	"routelab/internal/siblings"
	"routelab/internal/topology"
)

// newContext builds a Context over an explicit graph with empty side
// datasets (tests fill what they need).
func newContext(g *relgraph.Graph) *Context {
	return &Context{
		Graph:            g,
		Siblings:         siblings.Infer(registry.New(), dnsdb.New()),
		Complex:          complexrel.New(),
		OriginEvidence:   map[asn.Prefix]map[asn.ASN]bool{},
		EdgeEverAtOrigin: map[topology.LinkKey]bool{},
		Registry:         registry.New(),
		CableASes:        map[asn.ASN]bool{},
	}
}

// starGraph: dst(1) has providers 2 and 3; 2 and 3 both connect to 10.
//
//	10 —(customer 2)— 2 —(customer 1)
//	10 —(peer 3)—     3 —(customer 1)
//
// 10's best class toward 1 is customer (via 2), length 2 either way.
func starGraph() *relgraph.Graph {
	g := relgraph.New()
	g.Set(2, 1, topology.RelCustomer)
	g.Set(3, 1, topology.RelCustomer)
	g.Set(10, 2, topology.RelCustomer) // 2 is 10's customer
	g.Set(10, 3, topology.RelPeer)     // 3 is 10's peer
	return g
}

func TestClassifyQuadrants(t *testing.T) {
	cx := newContext(starGraph())
	p := asn.NewPrefix(asn.AddrFrom4(10, 0, 0, 0), 24)
	base := Decision{At: 10, Prefix: p, DstAS: 1}

	d := base
	d.Via, d.RestLen = 2, 2 // customer route, shortest
	if got := cx.Classify(d, Simple); got != BestShort {
		t.Errorf("customer/shortest = %v, want Best/Short", got)
	}
	d.Via, d.RestLen = 3, 2 // peer route, shortest
	if got := cx.Classify(d, Simple); got != NonBestShort {
		t.Errorf("peer/shortest = %v, want NonBest/Short", got)
	}
	d.Via, d.RestLen = 2, 4 // customer route, longer than model's 2
	if got := cx.Classify(d, Simple); got != BestLong {
		t.Errorf("customer/long = %v, want Best/Long", got)
	}
	d.Via, d.RestLen = 3, 4
	if got := cx.Classify(d, Simple); got != NonBestLong {
		t.Errorf("peer/long = %v, want NonBest/Long", got)
	}
}

func TestClassifyUnknownEdgeIsNonBest(t *testing.T) {
	cx := newContext(starGraph())
	d := Decision{At: 10, Via: 99, DstAS: 1, RestLen: 2}
	if got := cx.Classify(d, Simple); got != NonBestShort {
		t.Errorf("unknown edge, shortest = %v, want NonBest/Short", got)
	}
}

func TestSibsRefinementMarksBest(t *testing.T) {
	g := starGraph()
	cx := newContext(g)
	// Make 10 and 3 siblings via whois+SOA.
	reg := registry.New()
	for _, a := range []asn.ASN{10, 3} {
		if err := reg.AddAS(registry.ASRecord{ASN: a, Country: "AA", Registry: registry.ARIN, Email: "noc@grp.example"}); err != nil {
			t.Fatal(err)
		}
	}
	cx.Siblings = siblings.Infer(reg, dnsdb.New())
	d := Decision{At: 10, Via: 3, DstAS: 1, RestLen: 2}
	if got := cx.Classify(d, Simple); got != NonBestShort {
		t.Fatalf("without Sibs: %v, want NonBest/Short", got)
	}
	if got := cx.Classify(d, Sibs); got != BestShort {
		t.Errorf("with Sibs: %v, want Best/Short", got)
	}
}

func TestComplexRefinementHybrid(t *testing.T) {
	cx := newContext(starGraph())
	city := geo.CityID(5)
	cx.Complex.AddHybrid(complexrel.HybridEntry{A: 10, B: 3, City: city, Role: topology.RelCustomer})
	d := Decision{At: 10, Via: 3, DstAS: 1, RestLen: 2, BoundaryCity: city}
	if got := cx.Classify(d, Simple); got != NonBestShort {
		t.Fatalf("Simple: %v, want NonBest/Short", got)
	}
	if got := cx.Classify(d, Complex); got != BestShort {
		t.Errorf("Complex with hybrid customer role: %v, want Best/Short", got)
	}
	// Without a geolocated boundary the hybrid entry cannot apply.
	d.BoundaryCity = 0
	if got := cx.Classify(d, Complex); got != NonBestShort {
		t.Errorf("Complex without boundary city: %v, want NonBest/Short", got)
	}
}

func TestComplexRefinementPartialTransit(t *testing.T) {
	// 10 reaches 1 ONLY via peer 3 (remove the customer edge), and the
	// published dataset says 3 gives 10 partial transit for p.
	g := relgraph.New()
	g.Set(3, 1, topology.RelCustomer)
	g.Set(10, 3, topology.RelPeer)
	cx := newContext(g)
	p := asn.NewPrefix(asn.AddrFrom4(10, 0, 0, 0), 24)
	cx.Complex.AddPartial(complexrel.PartialEntry{A: 10, B: 3, Prefixes: []asn.Prefix{p}})
	d := Decision{At: 10, Via: 3, Prefix: p, DstAS: 1, RestLen: 2}
	// Simple: peer route is 10's best available class → Best/Short.
	if got := cx.Classify(d, Simple); got != BestShort {
		t.Fatalf("Simple: %v", got)
	}
	// Complex: the decision is re-labeled a provider-class route; the
	// model's best class (peer) now beats it → NonBest.
	if got := cx.Classify(d, Complex); got != NonBestShort {
		t.Errorf("Complex partial transit: %v, want NonBest/Short", got)
	}
}

func TestPSPMasking(t *testing.T) {
	// Origin 1 has neighbors 2 (observed announcing p) and 3 (not).
	g := starGraph()
	cx := newContext(g)
	p := asn.NewPrefix(asn.AddrFrom4(10, 0, 0, 0), 24)
	cx.OriginEvidence[p] = map[asn.ASN]bool{2: true}
	cx.EdgeEverAtOrigin[topology.MakeLinkKey(1, 2)] = true

	// Under Criteria 1, edge 1-3 is masked: 10's peer route via 3
	// disappears from the model, so choosing the customer route via 2
	// with a longer path can become Best/Short.
	masked := cx.MaskedEdges(1, p, 1)
	if len(masked) != 1 || masked[0].B != 3 {
		t.Fatalf("criteria 1 masked = %v, want edge 1-3", masked)
	}
	// Criteria 2 requires the edge to have appeared at origin position
	// for SOME prefix; 1-3 never did, so nothing is masked.
	if got := cx.MaskedEdges(1, p, 2); len(got) != 0 {
		t.Fatalf("criteria 2 masked = %v, want none", got)
	}
	// Once 1-3 is known to carry some prefix, criteria 2 masks it too.
	cx.EdgeEverAtOrigin[topology.MakeLinkKey(1, 3)] = true
	if got := cx.MaskedEdges(1, p, 2); len(got) != 1 {
		t.Fatalf("criteria 2 after evidence = %v, want edge 1-3", got)
	}
}

func TestPSPChangesClassification(t *testing.T) {
	// 10 chooses a 3-hop customer route (via 2-5) while the model knows
	// a 2-hop customer route via 3 — but feeds show origin 1 never
	// announcing p to 3 (selective announcement).
	g := relgraph.New()
	g.Set(10, 2, topology.RelCustomer) // 2 is 10's customer
	g.Set(2, 5, topology.RelCustomer)  // 5 is 2's customer
	g.Set(5, 1, topology.RelCustomer)  // 1 is 5's customer: 10-2-5-1
	g.Set(10, 3, topology.RelCustomer) // 3 is 10's customer
	g.Set(3, 1, topology.RelCustomer)  // 10-3-1: shorter customer route
	cx := newContext(g)
	p := asn.NewPrefix(asn.AddrFrom4(10, 0, 0, 0), 24)
	cx.OriginEvidence[p] = map[asn.ASN]bool{5: true}

	d := Decision{At: 10, Via: 2, Prefix: p, DstAS: 1, RestLen: 3}
	// Simple: the best-class (customer) shortest is 2 via 3, so the
	// 3-hop measured path is Long.
	if got := cx.Classify(d, Simple); got != BestLong {
		t.Fatalf("Simple: %v, want Best/Long", got)
	}
	// PSP-1 masks edge 1-3 (feeds never showed 1 announcing p to 3):
	// the short route vanishes; the class shortest becomes 3 →
	// Best/Short.
	if got := cx.Classify(d, PSP1); got != BestShort {
		t.Errorf("PSP-1: %v, want Best/Short", got)
	}
}

func TestBreakdownCounts(t *testing.T) {
	cx := newContext(starGraph())
	ds := []Decision{
		{At: 10, Via: 2, DstAS: 1, RestLen: 2},
		{At: 10, Via: 3, DstAS: 1, RestLen: 2},
		{At: 10, Via: 3, DstAS: 1, RestLen: 5},
	}
	got := cx.Breakdown(ds, Simple)
	if got[BestShort] != 1 || got[NonBestShort] != 1 || got[NonBestLong] != 1 {
		t.Errorf("Breakdown = %v", got)
	}
}

func TestMagnetClassification(t *testing.T) {
	g := starGraph() // at AS 10: via 2 customer, via 3 peer
	cx := newContext(g)
	route := func(nh asn.ASN, pathLen int) bgp.Route {
		asns := make([]asn.ASN, pathLen)
		for i := range asns {
			asns[i] = asn.ASN(1000 + i)
		}
		asns[0] = nh
		return bgp.Route{Path: asn.PathFromASNs(asns...), NextHop: nh}
	}
	cases := []struct {
		name string
		d    MagnetDecision
		want MagnetCause
	}{
		{
			"cheaper wins",
			MagnetDecision{AS: 10, Chosen: route(2, 3), Others: []bgp.Route{route(3, 2)}},
			CauseBestRel,
		},
		{
			"violation when cheaper alternative ignored",
			MagnetDecision{AS: 10, Chosen: route(3, 2), Others: []bgp.Route{route(2, 3)}},
			CauseViolation,
		},
		{
			"shorter within class",
			MagnetDecision{AS: 10, Chosen: route(3, 2), Others: []bgp.Route{route(3, 4)}},
			CauseShorterPath,
		},
		{
			"same cost longer is violation",
			MagnetDecision{AS: 10, Chosen: route(3, 4), Others: []bgp.Route{route(3, 2)}},
			CauseViolation,
		},
		{
			"pure tie kept magnet = oldest",
			MagnetDecision{AS: 10, Chosen: route(3, 2), KeptMagnet: true, Others: []bgp.Route{route(3, 2)}},
			CauseOldestRoute,
		},
		{
			"pure tie moved = intradomain",
			MagnetDecision{AS: 10, Chosen: route(3, 2), KeptMagnet: false, Others: []bgp.Route{route(3, 2)}},
			CauseIntradomain,
		},
	}
	for _, c := range cases {
		if got := cx.ClassifyMagnet(c.d); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
	bd := cx.MagnetBreakdown([]MagnetDecision{cases[0].d, cases[1].d, {AS: 10, Chosen: route(2, 2)}})
	if bd[CauseBestRel] != 1 || bd[CauseViolation] != 1 {
		t.Errorf("MagnetBreakdown = %v", bd)
	}
	total := 0
	for _, n := range bd {
		total += n
	}
	if total != 2 {
		t.Errorf("alternatives-free decisions must be excluded; total = %d", total)
	}
}
