package classify

import (
	"sort"

	"routelab/internal/asn"
	"routelab/internal/lookingglass"
)

// PSPCase is one prefix-specific-policy inference: the model dropped
// edge Origin–Neighbor for Prefix because feeds never showed the origin
// announcing the prefix there.
type PSPCase struct {
	Prefix   asn.Prefix
	Origin   asn.ASN
	Neighbor asn.ASN
}

// PSPValidation summarizes the §4.3 validation run.
type PSPValidation struct {
	// Cases is the number of (prefix, masked-edge) inferences found.
	Cases int
	// NeighborsWithLG is how many distinct masked-edge neighbors run a
	// reachable looking glass (paper: 28 of 149).
	NeighborsWithLG int
	// Checked is how many cases could be validated.
	Checked int
	// Confirmed is how many checked cases were consistent with a real
	// selective announcement: the neighbor's route server shows its
	// best route for the prefix NOT coming directly from the origin
	// (paper: Criteria 1 correct 78% of the time).
	Confirmed int
}

// CollectPSPCases enumerates every Criteria-1 masked edge across the
// measured destination prefixes.
func (cx *Context) CollectPSPCases(ms []Measurement) []PSPCase {
	seen := map[PSPCase]bool{}
	var out []PSPCase
	for i := range ms {
		m := &ms[i]
		for _, e := range cx.MaskedEdges(m.DstAS, m.Prefix, 1) {
			nbr := e.B
			if nbr == m.DstAS {
				nbr = e.A
			}
			c := PSPCase{Prefix: m.Prefix, Origin: m.DstAS, Neighbor: nbr}
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Origin != out[j].Origin {
			return out[i].Origin < out[j].Origin
		}
		if out[i].Neighbor != out[j].Neighbor {
			return out[i].Neighbor < out[j].Neighbor
		}
		return out[i].Prefix.Addr < out[j].Prefix.Addr
	})
	return out
}

// ValidatePSP mirrors the paper's validation: for each case whose
// neighbor runs a looking glass, ask the neighbor's route server for
// its best route toward the prefix. If that route does NOT arrive
// directly from the origin, the selective-announcement inference is
// consistent with reality.
func (cx *Context) ValidatePSP(cases []PSPCase, lg *lookingglass.Directory) PSPValidation {
	v := PSPValidation{Cases: len(cases)}
	withLG := map[asn.ASN]bool{}
	for _, c := range cases {
		if !lg.Has(c.Neighbor) {
			continue
		}
		withLG[c.Neighbor] = true
		direct, err := lg.RouteVia(c.Neighbor, c.Prefix, c.Origin)
		if err != nil {
			// The neighbor has no route at all: the strongest possible
			// confirmation of a selective announcement.
			v.Checked++
			v.Confirmed++
			continue
		}
		v.Checked++
		if !direct {
			v.Confirmed++
		}
	}
	v.NeighborsWithLG = len(withLG)
	return v
}
