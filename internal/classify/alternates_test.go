package classify

import (
	"testing"

	"routelab/internal/asn"
	"routelab/internal/bgp"
	"routelab/internal/peering"
	"routelab/internal/relgraph"
	"routelab/internal/topology"
)

func mkRoute(prefix asn.Prefix, nextHop asn.ASN, rest []asn.ASN, poisoned []asn.ASN) bgp.Route {
	p := asn.PathFromASNs(rest...)
	if len(poisoned) > 0 {
		p = p.PrependSet(poisoned).Prepend(rest[len(rest)-1])
	}
	p = p.Prepend(nextHop)
	return bgp.Route{Prefix: prefix, Path: p, NextHop: nextHop}
}

func TestClassifyAlternatesOrdered(t *testing.T) {
	g := relgraph.New()
	g.Set(100, 1, topology.RelCustomer) // 1 is customer of target 100
	g.Set(100, 2, topology.RelPeer)
	g.Set(100, 3, topology.RelProvider)
	cx := newContext(g)
	p := asn.NewPrefix(asn.AddrFrom4(10, 0, 0, 0), 24)
	run := peering.AlternateResult{
		Target: 100,
		Prefix: p,
		Steps: []peering.AlternateStep{
			{Route: mkRoute(p, 1, []asn.ASN{500}, nil)},
			{Route: mkRoute(p, 2, []asn.ASN{500}, []asn.ASN{1})},
			{Route: mkRoute(p, 3, []asn.ASN{500}, []asn.ASN{1, 2})},
		},
	}
	if got := cx.ClassifyAlternates(run); got != AltBestShort {
		t.Errorf("ordered run = %v, want Best & Shortest", got)
	}
}

// The §4.4 case-study fixture: a university U whose most-preferred route
// runs through its research backbone (CAIDA: provider) with an
// unnecessary detour; after poisoning, U uses its settlement-free peer
// with a shorter path. Both the Best and the Short properties fail.
func TestClassifyAlternatesCaseStudyViolation(t *testing.T) {
	g := relgraph.New()
	g.Set(100, 11537, topology.RelProvider) // Internet2 analogue: provider
	g.Set(100, 20080, topology.RelPeer)     // AMPATH analogue: peer
	cx := newContext(g)
	p := asn.NewPrefix(asn.AddrFrom4(10, 0, 0, 0), 24)
	run := peering.AlternateResult{
		Target: 100,
		Prefix: p,
		Steps: []peering.AlternateStep{
			// First choice: via the provider, with a detour (the second
			// route is a SUFFIX of the first).
			{Route: mkRoute(p, 11537, []asn.ASN{20080, 64500, 65000}, nil)},
			// After poisoning Internet2: directly via the peer.
			{Route: mkRoute(p, 20080, []asn.ASN{64500, 65000}, []asn.ASN{11537})},
		},
	}
	if got := cx.ClassifyAlternates(run); got != AltNeither {
		t.Errorf("case-study run = %v, want Neither (a §4.4 violation)", got)
	}
}

func TestClassifyAlternatesBestOnly(t *testing.T) {
	g := relgraph.New()
	g.Set(100, 1, topology.RelCustomer)
	g.Set(100, 2, topology.RelCustomer)
	cx := newContext(g)
	p := asn.NewPrefix(asn.AddrFrom4(10, 0, 0, 0), 24)
	run := peering.AlternateResult{
		Target: 100,
		Prefix: p,
		Steps: []peering.AlternateStep{
			// Same class, but the first path is LONGER: Short fails.
			{Route: mkRoute(p, 1, []asn.ASN{7, 8, 9}, nil)},
			{Route: mkRoute(p, 2, []asn.ASN{9}, []asn.ASN{1})},
		},
	}
	if got := cx.ClassifyAlternates(run); got != AltBestOnly {
		t.Errorf("got %v, want Best only", got)
	}
}

func TestSummarizeAlternates(t *testing.T) {
	g := relgraph.New()
	g.Set(100, 1, topology.RelCustomer)
	g.Set(100, 2, topology.RelPeer)
	g.Set(1, 500, topology.RelCustomer)
	// Edge 2-500 is MISSING from the graph: only the poisoned route
	// reveals it.
	cx := newContext(g)
	p := asn.NewPrefix(asn.AddrFrom4(10, 0, 0, 0), 24)
	runs := []peering.AlternateResult{{
		Target: 100,
		Prefix: p,
		Steps: []peering.AlternateStep{
			{Route: mkRoute(p, 1, []asn.ASN{500}, nil)},
			{Route: mkRoute(p, 2, []asn.ASN{500}, []asn.ASN{1}), PoisonedSoFar: []asn.ASN{1}},
		},
	}}
	s := cx.SummarizeAlternates(runs)
	if s.Targets != 1 {
		t.Fatalf("Targets = %d", s.Targets)
	}
	if s.Verdicts[AltBestShort] != 1 {
		t.Errorf("Verdicts = %v", s.Verdicts)
	}
	if s.Announcements != 2 {
		t.Errorf("Announcements = %d, want 2", s.Announcements)
	}
	if s.LinksMissing == 0 || s.LinksOnlyPoisoned == 0 {
		t.Errorf("poison-only missing link not counted: %+v", s)
	}
}
