package classify

import (
	"sort"

	"routelab/internal/asn"
	"routelab/internal/geo"
)

// GeoBreakdown partitions decisions by their measurement's geography and
// classifies each group — Figure 3.
type GeoBreakdown struct {
	// PerContinent holds decision categories for traceroutes confined to
	// one continent.
	PerContinent map[geo.Continent]map[Category]int
	// Continental pools every single-continent decision.
	Continental map[Category]int
	// Intercontinental pools the rest.
	Intercontinental map[Category]int
}

// GeoClassify computes Figure 3 under a refinement.
func (cx *Context) GeoClassify(ms []Measurement, ref Refinement) GeoBreakdown {
	gb := GeoBreakdown{
		PerContinent:     make(map[geo.Continent]map[Category]int),
		Continental:      make(map[Category]int),
		Intercontinental: make(map[Category]int),
	}
	for i := range ms {
		m := &ms[i]
		cont, confined := m.Continental(cx.World)
		for _, d := range m.Decisions {
			cat := cx.Classify(d, ref)
			if confined {
				pc := gb.PerContinent[cont]
				if pc == nil {
					pc = make(map[Category]int)
					gb.PerContinent[cont] = pc
				}
				pc[cat]++
				gb.Continental[cat]++
			} else {
				gb.Intercontinental[cat]++
			}
		}
	}
	return gb
}

// DomesticRow is one Table 3 row: how many NonBest/Short decisions on
// single-country traceroutes are explained by the AS preferring a
// domestic route although a better multinational path existed.
type DomesticRow struct {
	Continent geo.Continent
	// NonBestShort counts the continent's NonBest/Short decisions on
	// single-country traces.
	NonBestShort int
	// Explained counts those with a better multinational model path.
	Explained int
}

// DomesticAnalysis computes Table 3 (§6 "Domestic paths"): for every
// NonBest/Short decision whose whole traceroute stayed in one country,
// check whether the model offers a Best/Short path that is multinational
// — containing at least one AS whois-registered outside the source and
// destination ASes' countries.
func (cx *Context) DomesticAnalysis(ms []Measurement, ref Refinement) []DomesticRow {
	rows := make(map[geo.Continent]*DomesticRow)
	for i := range ms {
		m := &ms[i]
		country, single := m.SingleCountry(cx.World)
		if !single {
			continue
		}
		cont := cx.World.Country(country).Continent
		row := rows[cont]
		if row == nil {
			row = &DomesticRow{Continent: cont}
			rows[cont] = row
		}
		srcCountry := cx.Registry.RegisteredCountry(m.SrcAS)
		dstCountry := cx.Registry.RegisteredCountry(m.DstAS)
		for _, d := range m.Decisions {
			if cx.Classify(d, ref) != NonBestShort {
				continue
			}
			row.NonBestShort++
			if cx.hasMultinationalAlternative(d, srcCountry, dstCountry) {
				row.Explained++
			}
		}
	}
	out := make([]DomesticRow, 0, len(rows))
	for _, cont := range []geo.Continent{geo.AS, geo.AF, geo.EU, geo.NA, geo.OC, geo.SA} {
		if r, ok := rows[cont]; ok {
			out = append(out, *r)
		}
	}
	return out
}

// hasMultinationalAlternative checks whether the model's shortest
// Best-class path from the decision point crosses a foreign-registered
// AS (per whois — which, as §6 notes, is itself lossy for multinational
// ASes).
func (cx *Context) hasMultinationalAlternative(d Decision, srcCountry, dstCountry geo.CountryCode) bool {
	res := cx.gr(d.DstAS)
	path := res.ShortestPath(cx.Graph, d.At)
	if path == nil {
		return false
	}
	for _, a := range path[1 : len(path)-1] {
		cc := cx.Registry.RegisteredCountry(a)
		if cc != "" && cc != srcCountry && cc != dstCountry {
			return true
		}
	}
	return false
}

// CableRow is a Table 4 row: the share of a violation category
// attributable to undersea-cable ASes.
type CableRow struct {
	Category Category
	// Total decisions of this category.
	Total int
	// WithCable decisions of this category where the deciding AS or the
	// chosen next hop is a cable operator.
	WithCable int
}

// CableStats aggregates Table 4 plus the §6 headline numbers.
type CableStats struct {
	Rows []CableRow
	// PathsWithCable / TotalPaths give the "<2% of paths" figure.
	PathsWithCable, TotalPaths int
	// CableDecisions / CableDeviations give the "51.2% of decisions
	// involving cable ASes deviate" figure.
	CableDecisions, CableDeviations int
}

// CableAnalysis computes Table 4 under a refinement.
func (cx *Context) CableAnalysis(ms []Measurement, ref Refinement) CableStats {
	var st CableStats
	perCat := map[Category]*CableRow{}
	for _, c := range Categories {
		perCat[c] = &CableRow{Category: c}
	}
	for i := range ms {
		m := &ms[i]
		st.TotalPaths++
		onPath := false
		for _, a := range m.ASPath {
			if cx.CableASes[a] {
				onPath = true
			}
		}
		if onPath {
			st.PathsWithCable++
		}
		for _, d := range m.Decisions {
			cat := cx.Classify(d, ref)
			row := perCat[cat]
			row.Total++
			involved := cx.CableASes[d.At] || cx.CableASes[d.Via]
			if involved {
				row.WithCable++
				st.CableDecisions++
				if cat.IsViolation() {
					st.CableDeviations++
				}
			}
		}
	}
	for _, c := range Categories {
		st.Rows = append(st.Rows, *perCat[c])
	}
	return st
}

// SkewPoint is one AS's share of the violations (Figure 2).
type SkewPoint struct {
	AS    asn.ASN
	Count int
	// PerCategory splits the AS's violations by quadrant.
	PerCategory map[Category]int
}

// ViolationSkew ranks ASes by their share of violating decisions (every
// category but Best/Short). The "source" of a violation is the AS that
// MADE the deviating decision (the paper's Cogent example), not the
// probe host; the destination is the decision's destination AS.
func (cx *Context) ViolationSkew(ms []Measurement, ref Refinement, byDestination bool) []SkewPoint {
	counts := map[asn.ASN]*SkewPoint{}
	for i := range ms {
		m := &ms[i]
		for _, d := range m.Decisions {
			cat := cx.Classify(d, ref)
			if !cat.IsViolation() {
				continue
			}
			key := d.At
			if byDestination {
				key = d.DstAS
			}
			sp := counts[key]
			if sp == nil {
				sp = &SkewPoint{AS: key, PerCategory: make(map[Category]int)}
				counts[key] = sp
			}
			sp.Count++
			sp.PerCategory[cat]++
		}
	}
	out := make([]SkewPoint, 0, len(counts))
	for _, sp := range counts {
		out = append(out, *sp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].AS < out[j].AS
	})
	return out
}
