package classify

import (
	"routelab/internal/asn"
	"routelab/internal/geo"
	"routelab/internal/geodb"
	"routelab/internal/ipasmap"
	"routelab/internal/traceroute"
)

// Measurement is one converted traceroute with its extracted decisions
// and geographic annotations.
type Measurement struct {
	TraceID int
	SrcAS   asn.ASN
	ASPath  []asn.ASN
	Prefix  asn.Prefix
	DstAS   asn.ASN
	// HopCities are the geolocated cities of the responsive hops (only
	// located ones).
	HopCities []geo.CityID
	Decisions []Decision
}

// Continental reports whether every located hop stays on one continent,
// and which. False when hops span continents or nothing was locatable.
func (m *Measurement) Continental(w *geo.World) (geo.Continent, bool) {
	cont := geo.ContinentNone
	for _, c := range m.HopCities {
		cc := w.ContinentOf(c)
		if cc == geo.ContinentNone {
			continue
		}
		if cont == geo.ContinentNone {
			cont = cc
		} else if cont != cc {
			return geo.ContinentNone, false
		}
	}
	return cont, cont != geo.ContinentNone
}

// SingleCountry reports whether every located hop stays in one country.
func (m *Measurement) SingleCountry(w *geo.World) (geo.CountryCode, bool) {
	country := geo.CountryCode("")
	for _, c := range m.HopCities {
		cc := w.CountryOf(c)
		if cc == "" {
			continue
		}
		if country == "" {
			country = cc
		} else if country != cc {
			return "", false
		}
	}
	return country, country != ""
}

// Extract converts a raw traceroute into a Measurement: AS path via the
// mapper, per-hop geolocation via the geo database, and one Decision per
// on-path AS (§3.1: "since interdomain routing is destination-based, we
// can observe routing decisions for all ASes along the path").
// ok=false when the trace did not yield a usable AS path.
func Extract(id int, tr traceroute.Trace, mapper *ipasmap.Mapper, gdb *geodb.DB) (Measurement, bool) {
	path, usable := mapper.ConvertTrace(tr)
	if !usable || len(path) < 2 {
		return Measurement{}, false
	}
	m := Measurement{
		TraceID: id,
		SrcAS:   tr.SrcAS,
		ASPath:  path,
		DstAS:   path[len(path)-1],
	}
	// The destination prefix is the announced prefix covering the target.
	m.Prefix = mapper.PrefixOf(tr.Dst)
	if m.Prefix.IsZero() {
		return Measurement{}, false
	}
	// Geolocate hops and record AS boundaries for hybrid lookups.
	boundary := make(map[[2]asn.ASN]geo.CityID)
	prevAS := tr.SrcAS
	for _, h := range tr.Hops {
		if h.IP == 0 {
			continue
		}
		city, located := gdb.Locate(h.IP)
		if located {
			m.HopCities = append(m.HopCities, city)
		}
		hopAS := mapper.ASOf(h.IP)
		if hopAS.IsZero() {
			continue
		}
		if hopAS != prevAS && located {
			if _, dup := boundary[[2]asn.ASN{prevAS, hopAS}]; !dup {
				boundary[[2]asn.ASN{prevAS, hopAS}] = city
			}
		}
		prevAS = hopAS
	}
	for i := 0; i+1 < len(path); i++ {
		m.Decisions = append(m.Decisions, Decision{
			At:           path[i],
			Via:          path[i+1],
			Prefix:       m.Prefix,
			DstAS:        m.DstAS,
			RestLen:      len(path) - 1 - i,
			BoundaryCity: boundary[[2]asn.ASN{path[i], path[i+1]}],
			SrcAS:        tr.SrcAS,
			TraceID:      id,
		})
	}
	return m, true
}
