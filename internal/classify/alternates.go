package classify

import (
	"encoding/binary"

	"routelab/internal/bgp"
	"routelab/internal/peering"
	"routelab/internal/topology"
)

// AlternateVerdict classifies one target's discovered preference order
// (§4.4 "Alternate routes"): does the sequence respect relationship
// ordering (Best), length ordering (Short), both, or neither?
type AlternateVerdict uint8

const (
	// AltBestShort: relationships never improve and lengths never
	// shrink down the preference order.
	AltBestShort AlternateVerdict = iota
	// AltBestOnly: relationship ordering holds, lengths jump around.
	AltBestOnly
	// AltShortOnly: length ordering holds, relationships jump around.
	AltShortOnly
	// AltNeither: a later (less preferred) route was cheaper or
	// strictly shorter — the §4.4 violations.
	AltNeither
)

// String names the verdict as §4.4 reports it.
func (v AlternateVerdict) String() string {
	switch v {
	case AltBestShort:
		return "Best & Shortest"
	case AltBestOnly:
		return "Best only"
	case AltShortOnly:
		return "Shortest only"
	default:
		return "Neither"
	}
}

// ClassifyAlternates checks the §3.3 active-measurement properties over
// a discovery run: for each consecutive route pair, (1) the earlier
// next hop's relationship must be equal or better, and (2) the earlier
// path must be shorter or equal.
func (cx *Context) ClassifyAlternates(r peering.AlternateResult) AlternateVerdict {
	best, short := true, true
	steps := r.Steps
	for i := 0; i+1 < len(steps); i++ {
		a, b := steps[i].Route, steps[i+1].Route
		ra := cx.Graph.Rel(r.Target, a.NextHop).Rank()
		rb := cx.Graph.Rel(r.Target, b.NextHop).Rank()
		if ra > rb {
			best = false
		}
		if pathLenIgnoringPoison(a) > pathLenIgnoringPoison(b) {
			short = false
		}
	}
	switch {
	case best && short:
		return AltBestShort
	case best:
		return AltBestOnly
	case short:
		return AltShortOnly
	default:
		return AltNeither
	}
}

// pathLenIgnoringPoison compares route lengths fairly across rounds: the
// poisoning sandwich (origin + AS_SET) inflates later paths by two hops
// regardless of the target's actual choice, so discount it.
func pathLenIgnoringPoison(r bgp.Route) int {
	l := r.Path.Len()
	if r.Path.HasSet() {
		l -= 2
	}
	return l
}

// AlternateSummary aggregates a campaign of discovery runs into the
// §4.4 headline numbers.
type AlternateSummary struct {
	Targets  int
	Verdicts map[AlternateVerdict]int
	// Announcements is the number of distinct poisoned announcements
	// issued across the campaign.
	Announcements int
	// LinksObserved is the set of inter-AS links seen across all runs;
	// LinksMissing are those absent from the inferred graph, and
	// LinksOnlyPoisoned the subset visible only after poisoning forced
	// an alternate (the "22.2%" of §3.2).
	LinksObserved, LinksMissing, LinksOnlyPoisoned int
}

// SummarizeAlternates classifies every run and tallies link visibility.
func (cx *Context) SummarizeAlternates(runs []peering.AlternateResult) AlternateSummary {
	s := AlternateSummary{Verdicts: make(map[AlternateVerdict]int)}
	type linkInfo struct{ first, later bool }
	links := map[topology.LinkKey]*linkInfo{}
	seenAnn := map[string]bool{}
	// keyBuf is the reusable announcement-identity scratch key: prefix
	// addr+len then the poisoned ASNs, all fixed-width big-endian. The
	// string(keyBuf) map probe does not allocate (the compiler keeps the
	// conversion on the stack for lookups); only a first-seen insert pays
	// for a copy. Announcements are identified by (prefix, poison set) —
	// the same identity the retired string rendering encoded, without the
	// per-step decimal formatting.
	var keyBuf []byte
	for _, r := range runs {
		if len(r.Steps) == 0 {
			continue
		}
		s.Targets++
		s.Verdicts[cx.ClassifyAlternates(r)]++
		for i, st := range r.Steps {
			keyBuf = binary.BigEndian.AppendUint32(keyBuf[:0], uint32(st.Route.Prefix.Addr))
			keyBuf = append(keyBuf, st.Route.Prefix.Len)
			for _, a := range st.PoisonedSoFar {
				keyBuf = binary.BigEndian.AppendUint32(keyBuf, uint32(a))
			}
			if !seenAnn[string(keyBuf)] {
				seenAnn[string(keyBuf)] = true
				s.Announcements++
			}
			path := st.Route.ASPathFrom(r.Target)
			for j := 0; j+1 < len(path); j++ {
				k := topology.MakeLinkKey(path[j], path[j+1])
				li := links[k]
				if li == nil {
					li = &linkInfo{}
					links[k] = li
				}
				if i == 0 {
					li.first = true
				} else {
					li.later = true
				}
			}
		}
	}
	for k, li := range links {
		s.LinksObserved++
		if !cx.Graph.HasEdge(k.Lo, k.Hi) {
			s.LinksMissing++
			if !li.first && li.later {
				s.LinksOnlyPoisoned++
			}
		}
	}
	return s
}
