package classify

import (
	"math/rand"
	"testing"

	"routelab/internal/asn"
	"routelab/internal/bgp"
	"routelab/internal/lookingglass"
	"routelab/internal/relgraph"
	"routelab/internal/topology"
)

func TestCollectPSPCases(t *testing.T) {
	g := relgraph.New()
	g.Set(2, 1, topology.RelCustomer) // origin 1, neighbors 2 and 3
	g.Set(3, 1, topology.RelCustomer)
	cx := newContext(g)
	p := asn.NewPrefix(asn.AddrFrom4(10, 0, 0, 0), 24)
	cx.OriginEvidence[p] = map[asn.ASN]bool{2: true}                  // 3 unobserved
	ms := []Measurement{{DstAS: 1, Prefix: p}, {DstAS: 1, Prefix: p}} // dupes collapse
	cases := cx.CollectPSPCases(ms)
	if len(cases) != 1 {
		t.Fatalf("cases = %v", cases)
	}
	if cases[0].Origin != 1 || cases[0].Neighbor != 3 || cases[0].Prefix != p {
		t.Fatalf("case = %+v", cases[0])
	}
}

// End-to-end validation against a real looking-glass deployment: build
// a topology where a content origin selectively announces one prefix,
// then check the validation confirms the masked edge.
func TestValidatePSPConfirms(t *testing.T) {
	b := topology.NewBuilder()
	origin := b.AS(100, topology.Content, "")
	n1 := b.AS(200, topology.LargeISP, "").ASN
	n2 := b.AS(300, topology.LargeISP, "").ASN
	up := b.AS(400, topology.Tier1, "").ASN
	b.Link(origin.ASN, n1, topology.RelProvider)
	b.Link(origin.ASN, n2, topology.RelProvider)
	b.Link(n1, up, topology.RelProvider)
	b.Link(n2, up, topology.RelProvider)
	topo := b.Build()
	p := topo.AS(origin.ASN).Prefixes[0]
	// Ground truth: p goes only to n1.
	origin.SelectiveExport = map[asn.Prefix][]asn.ASN{p: {n1}}

	e := bgp.New(topo, 1)
	rib := e.ComputeRIB([]asn.Prefix{p}, 0)
	lg := lookingglass.Deploy(topo, rib, rand.New(rand.NewSource(1)), 1.0)

	g := relgraph.New()
	g.Set(n1, origin.ASN, topology.RelCustomer)
	g.Set(n2, origin.ASN, topology.RelCustomer)
	g.Set(up, n1, topology.RelCustomer)
	g.Set(up, n2, topology.RelCustomer)
	cx := newContext(g)
	cx.OriginEvidence[p] = map[asn.ASN]bool{n1: true}

	cases := cx.CollectPSPCases([]Measurement{{DstAS: origin.ASN, Prefix: p}})
	if len(cases) != 1 || cases[0].Neighbor != n2 {
		t.Fatalf("cases = %+v", cases)
	}
	v := cx.ValidatePSP(cases, lg)
	if v.Checked != 1 || v.Confirmed != 1 {
		t.Fatalf("validation = %+v; n2's route server shows its best route NOT via the origin", v)
	}
}

// When the origin actually announces everywhere (the mask was a
// visibility artifact), the neighbor's best route comes straight from
// the origin and the validation must refute the case.
func TestValidatePSPRefutes(t *testing.T) {
	b := topology.NewBuilder()
	origin := b.AS(100, topology.Content, "")
	n1 := b.AS(200, topology.LargeISP, "").ASN
	n2 := b.AS(300, topology.LargeISP, "").ASN
	b.Link(origin.ASN, n1, topology.RelProvider)
	b.Link(origin.ASN, n2, topology.RelProvider)
	topo := b.Build()
	p := topo.AS(origin.ASN).Prefixes[0]

	e := bgp.New(topo, 1)
	rib := e.ComputeRIB([]asn.Prefix{p}, 0)
	lg := lookingglass.Deploy(topo, rib, rand.New(rand.NewSource(1)), 1.0)

	g := relgraph.New()
	g.Set(n1, origin.ASN, topology.RelCustomer)
	g.Set(n2, origin.ASN, topology.RelCustomer)
	cx := newContext(g)
	cx.OriginEvidence[p] = map[asn.ASN]bool{n1: true} // poor visibility of n2

	v := cx.ValidatePSP(cx.CollectPSPCases([]Measurement{{DstAS: origin.ASN, Prefix: p}}), lg)
	if v.Checked != 1 || v.Confirmed != 0 {
		t.Fatalf("validation = %+v; n2 demonstrably hears the prefix directly", v)
	}
}

func TestValidatePSPNoServers(t *testing.T) {
	g := relgraph.New()
	g.Set(2, 1, topology.RelCustomer)
	cx := newContext(g)
	p := asn.NewPrefix(asn.AddrFrom4(10, 0, 0, 0), 24)
	cx.OriginEvidence[p] = map[asn.ASN]bool{}
	b := topology.NewBuilder()
	b.AS(1, topology.Stub, "")
	lg := lookingglass.Deploy(b.Build(), nil, rand.New(rand.NewSource(1)), 0)
	v := cx.ValidatePSP(cx.CollectPSPCases([]Measurement{{DstAS: 1, Prefix: p}}), lg)
	if v.Checked != 0 || v.NeighborsWithLG != 0 {
		t.Fatalf("validation without servers = %+v", v)
	}
}
