package whatif

import (
	"routelab/internal/bgp"
)

// RouteInfo is the decision-relevant slice of one installed route.
type RouteInfo struct {
	NextHop   string `json:"next_hop"`
	Path      string `json:"path"`
	LocalPref int    `json:"local_pref"`
}

// Change is one AS whose best-path decision differs between the base
// and the delta world. A nil Before is a gained route, a nil After a
// lost one, both set a move.
type Change struct {
	AS     string     `json:"as"`
	Before *RouteInfo `json:"before,omitempty"`
	After  *RouteInfo `json:"after,omitempty"`
}

// Diff is the structured outcome of one delta evaluation: the changed
// best-path decisions (ascending ASN) plus the reconvergence churn the
// delta caused. It deliberately carries no full snapshot — the point of
// the what-if API is that the answer is the difference.
type Diff struct {
	// Delta is the canonical form of the evaluated delta.
	Delta string `json:"delta"`
	Kind  string `json:"kind"`
	// Converged reports whether the reconvergence reached a fixed point
	// (policy deltas can, in principle, oscillate into the event cap).
	Converged bool `json:"converged"`
	// Affected counts the ASes whose decision changed (== len(Changes)).
	Affected int `json:"affected"`
	// Gained/Lost/Moved split Affected by change shape.
	Gained int `json:"gained"`
	Lost   int `json:"lost"`
	Moved  int `json:"moved"`
	// Events counts the per-AS process events of the reconvergence;
	// Churn the best-route installations. Together they are the path
	// churn the paper's counterfactual probes measure.
	Events int `json:"events"`
	Churn  int `json:"churn"`
	// Changes lists every affected AS, ascending.
	Changes []Change `json:"changes"`
}

// EvalOn applies cd to eval — a mutable computation continuing from
// base's exact state: a COW fork of it, or (in the differential oracle)
// an independently built twin — re-converges, and diffs the outcome
// against base. Events and Churn count only the work the delta caused.
func EvalOn(eval, base *bgp.Computation, cd *Compiled) (Diff, error) {
	ev0, ch0 := eval.Counters()
	if err := cd.Apply(eval); err != nil {
		return Diff{}, err
	}
	converged := eval.Converge()
	ev1, ch1 := eval.Counters()
	d := Diff{
		Delta:     cd.Canonical(),
		Kind:      string(cd.kind),
		Converged: converged,
		Events:    ev1 - ev0,
		Churn:     ch1 - ch0,
	}
	for _, bc := range eval.BestDiff(base) {
		ch := Change{AS: bc.AS.String()}
		if bc.Before != nil {
			ch.Before = &RouteInfo{
				NextHop:   bc.Before.NextHop.String(),
				Path:      bc.Before.Path.String(),
				LocalPref: bc.Before.LocalPref,
			}
		}
		if bc.After != nil {
			ch.After = &RouteInfo{
				NextHop:   bc.After.NextHop.String(),
				Path:      bc.After.Path.String(),
				LocalPref: bc.After.LocalPref,
			}
		}
		switch {
		case ch.Before == nil:
			d.Gained++
		case ch.After == nil:
			d.Lost++
		default:
			d.Moved++
		}
		d.Changes = append(d.Changes, ch)
	}
	d.Affected = len(d.Changes)
	return d, nil
}

// Eval evaluates one delta the engine's way: fork the frozen converged
// base (O(#ASes) pointer copies; the base must be frozen, which Fork
// enforces by freezing), apply, re-converge incrementally, diff. Any
// number of Evals may run against one base — concurrently, too, since
// forks of a frozen parent are independent.
func Eval(base *bgp.Computation, cd *Compiled) (Diff, error) {
	return EvalOn(base.Fork(), base, cd)
}
