package whatif_test

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"routelab/internal/bgp"
	"routelab/internal/peering"
	"routelab/internal/topology"
	"routelab/internal/whatif"
)

// oracleDeltas is the deterministic delta set the oracle replays on
// every seed: one of each kind, targeting the testbed's own adjacencies
// so they compile on any generated topology.
func oracleDeltas(t *testing.T, topo *topology.Topology, tb *peering.Testbed) []*whatif.Compiled {
	t.Helper()
	origin := tb.Origin
	mux0, mux1 := tb.Muxes[0], tb.Muxes[1%len(tb.Muxes)]
	pa, pb := peeringPair(t, topo)
	ds := []whatif.Delta{
		{Kind: whatif.LinkFailure, A: origin.String(), B: mux0.String()},
		{Kind: whatif.NewPeering, A: pa.String(), B: pb.String(), Rel: "provider"},
		{Kind: whatif.Poison, Poisoned: []string{mux0.String()}},
		{Kind: whatif.Poison, Poisoned: []string{mux1.String(), mux0.String()}},
		{Kind: whatif.Prepend, Prepend: 3},
		{Kind: whatif.LocalPref, At: mux0.String(), From: origin.String(), Pref: 10},
		{Kind: whatif.Withdraw},
	}
	cds, err := whatif.CompileAll(ds, topo, origin)
	if err != nil {
		t.Fatal(err)
	}
	return cds
}

// TestForkDiffMatchesRebuildDiff is the differential oracle the tentpole
// rests on: for every delta kind, the diff computed the cheap way (COW
// fork of the frozen base, incremental reconvergence) must equal the
// diff of two from-scratch builds — one replaying only the base
// announcement, one replaying base + delta. PR 5's fork suite pins
// fork ≡ replay at the full-state level; this pins the derived Diff
// (including churn counters) at the API level, across ≥4 seeds, under
// -race via make verify.
func TestForkDiffMatchesRebuildDiff(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			topo, engine, tb := world(t, seed)
			p := tb.Prefixes[0]
			base := tb.AnycastBase(p)
			for _, cd := range oracleDeltas(t, topo, tb) {
				forked, err := whatif.Eval(base, cd)
				if err != nil {
					t.Fatalf("%s: fork eval: %v", cd.Canonical(), err)
				}

				// From-scratch twins: one stays at the base announcement,
				// the other continues into the delta. Neither shares any
				// state with the fork path.
				mkBase := func() *bgp.Computation {
					c := engine.NewComputation(p)
					c.Announce(bgp.Announcement{Origin: tb.Origin})
					if !c.Converge() {
						t.Fatalf("%s: rebuild base did not converge", cd.Canonical())
					}
					return c
				}
				before := mkBase()
				after := mkBase()
				rebuilt, err := whatif.EvalOn(after, before, cd)
				if err != nil {
					t.Fatalf("%s: rebuild eval: %v", cd.Canonical(), err)
				}

				if !reflect.DeepEqual(forked, rebuilt) {
					t.Errorf("%s: fork-diff != rebuild-diff\nfork:    %+v\nrebuild: %+v",
						cd.Canonical(), forked, rebuilt)
				}
			}
		})
	}
}

// TestConcurrentEvalsShareOneBase pins the batch contract: any number
// of evaluations may fork one frozen base concurrently, and each
// produces the identical diff.
func TestConcurrentEvalsShareOneBase(t *testing.T) {
	topo, _, tb := world(t, 1)
	p := tb.Prefixes[0]
	base := tb.AnycastBase(p)
	cd, err := whatif.Compile(
		whatif.Delta{Kind: whatif.Poison, Poisoned: []string{tb.Muxes[0].String()}},
		topo, tb.Origin)
	if err != nil {
		t.Fatal(err)
	}
	want, err := whatif.Eval(base, cd)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	diffs := make([]whatif.Diff, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			diffs[w], errs[w] = whatif.Eval(base, cd)
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if !reflect.DeepEqual(diffs[w], want) {
			t.Fatalf("worker %d diff diverges:\n%+v\nwant %+v", w, diffs[w], want)
		}
	}
}
