package whatif_test

import (
	"strings"
	"testing"

	"routelab/internal/asn"
	"routelab/internal/bgp"
	"routelab/internal/peering"
	"routelab/internal/topology"
	"routelab/internal/whatif"
)

// world builds the standard test world and its PEERING testbed.
func world(t *testing.T, seed int64) (*topology.Topology, *bgp.Engine, *peering.Testbed) {
	t.Helper()
	topo := topology.Generate(seed, topology.TestConfig())
	engine := bgp.New(topo, seed)
	tb, err := peering.NewTestbed(engine)
	if err != nil {
		t.Fatal(err)
	}
	return topo, engine, tb
}

// nonNeighbor finds the first AS (ascending) not adjacent to a —
// deterministic for a given topology.
func nonNeighbor(t *testing.T, topo *topology.Topology, a asn.ASN) asn.ASN {
	t.Helper()
	for _, b := range topo.ASNs() {
		if b != a && topo.Link(a, b) == nil {
			return b
		}
	}
	t.Fatalf("%s is adjacent to everyone", a)
	return 0
}

// peeringPair finds the first (ascending) pair of ASes a new link could
// join: non-adjacent with a shared city — deterministic for a given
// topology.
func peeringPair(t *testing.T, topo *topology.Topology) (asn.ASN, asn.ASN) {
	t.Helper()
	all := topo.ASNs()
	for i, a := range all {
		for _, b := range all[i+1:] {
			if _, err := topo.ProposeLink(a, b, topology.RelProvider); err == nil {
				return a, b
			}
		}
	}
	t.Fatal("no peerable pair in the topology")
	return 0, 0
}

func TestCompileValidation(t *testing.T) {
	topo, _, tb := world(t, 1)
	origin, mux := tb.Origin, tb.Muxes[0]
	stranger := nonNeighbor(t, topo, origin)
	pa, pb := peeringPair(t, topo)

	bad := []whatif.Delta{
		{Kind: "no_such_kind"},
		{},
		{Kind: whatif.LinkFailure, A: origin.String(), B: stranger.String()},     // not adjacent
		{Kind: whatif.LinkFailure, A: origin.String(), B: "AS999999"},            // unknown AS
		{Kind: whatif.LinkFailure, A: origin.String()},                           // missing b
		{Kind: whatif.NewPeering, A: origin.String(), B: mux.String(), Rel: "peer"},   // already adjacent
		{Kind: whatif.NewPeering, A: pa.String(), B: pb.String(), Rel: "mentor"},      // bad rel
		{Kind: whatif.Poison},                                          // empty set
		{Kind: whatif.Poison, Poisoned: []string{origin.String()}},     // origin in set
		{Kind: whatif.Poison, Poisoned: []string{"AS999999"}},          // unknown AS
		{Kind: whatif.Prepend},                                         // zero count
		{Kind: whatif.Prepend, Prepend: 99},                            // out of range
		{Kind: whatif.LocalPref, At: origin.String(), From: stranger.String(), Pref: 100}, // not adjacent
		{Kind: whatif.LocalPref, At: mux.String(), From: origin.String(), Pref: -1},       // bad pref
	}
	for i, d := range bad {
		if _, err := whatif.Compile(d, topo, origin); err == nil {
			t.Errorf("bad delta %d (%+v) compiled", i, d)
		}
	}

	good := []whatif.Delta{
		{Kind: whatif.LinkFailure, A: mux.String(), B: origin.String()},
		{Kind: whatif.NewPeering, A: pa.String(), B: pb.String(), Rel: "provider"},
		{Kind: whatif.Poison, Poisoned: []string{mux.String()}},
		{Kind: whatif.Prepend, Prepend: 3},
		{Kind: whatif.LocalPref, At: mux.String(), From: origin.String(), Pref: 50},
		{Kind: whatif.Withdraw},
	}
	if _, err := whatif.CompileAll(good, topo, origin); err != nil {
		t.Fatalf("good batch rejected: %v", err)
	}
}

func TestCanonicalization(t *testing.T) {
	topo, _, tb := world(t, 1)
	origin := tb.Origin
	mux0, mux1 := tb.Muxes[0], tb.Muxes[1]
	pa, pb := peeringPair(t, topo)

	canon := func(d whatif.Delta) string {
		t.Helper()
		cd, err := whatif.Compile(d, topo, origin)
		if err != nil {
			t.Fatalf("compile %+v: %v", d, err)
		}
		return cd.Canonical()
	}

	// Link endpoints canonicalize order-insensitively.
	ab := canon(whatif.Delta{Kind: whatif.LinkFailure, A: origin.String(), B: mux0.String()})
	ba := canon(whatif.Delta{Kind: whatif.LinkFailure, A: mux0.String(), B: origin.String()})
	if ab != ba {
		t.Errorf("fail canonical differs by order: %q vs %q", ab, ba)
	}

	// A new peering proposed from either end with mirrored roles is one
	// delta.
	p1 := canon(whatif.Delta{Kind: whatif.NewPeering, A: pa.String(), B: pb.String(), Rel: "provider"})
	p2 := canon(whatif.Delta{Kind: whatif.NewPeering, A: pb.String(), B: pa.String(), Rel: "customer"})
	if p1 != p2 {
		t.Errorf("peer canonical differs by orientation: %q vs %q", p1, p2)
	}

	// Poison sets sort and dedup.
	s1 := canon(whatif.Delta{Kind: whatif.Poison, Poisoned: []string{mux1.String(), mux0.String(), mux1.String()}})
	s2 := canon(whatif.Delta{Kind: whatif.Poison, Poisoned: []string{mux0.String(), mux1.String()}})
	if s1 != s2 {
		t.Errorf("poison canonical differs: %q vs %q", s1, s2)
	}
	if strings.Count(s1, "AS") != 2 {
		t.Errorf("poison canonical %q should carry exactly two ASes", s1)
	}

	// local_pref is directional: (at, from) and (from, at) are different
	// deltas.
	l1 := canon(whatif.Delta{Kind: whatif.LocalPref, At: mux0.String(), From: origin.String(), Pref: 50})
	l2 := canon(whatif.Delta{Kind: whatif.LocalPref, At: origin.String(), From: mux0.String(), Pref: 50})
	if l1 == l2 {
		t.Errorf("local_pref canonical must be directional, both %q", l1)
	}

	if got := canon(whatif.Delta{Kind: whatif.Withdraw}); got != "withdraw()" {
		t.Errorf("withdraw canonical = %q", got)
	}
	if got := canon(whatif.Delta{Kind: whatif.Prepend, Prepend: 3}); got != "prepend(3)" {
		t.Errorf("prepend canonical = %q", got)
	}
}

func TestEvalSemantics(t *testing.T) {
	topo, _, tb := world(t, 1)
	p := tb.Prefixes[0]
	base := tb.AnycastBase(p)
	origin, mux := tb.Origin, tb.Muxes[0]

	// Withdraw: every AS that had a route (except the origin itself)
	// loses it; nothing is gained or moved.
	cd, err := whatif.Compile(whatif.Delta{Kind: whatif.Withdraw}, topo, origin)
	if err != nil {
		t.Fatal(err)
	}
	d, err := whatif.Eval(base, cd)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Converged {
		t.Fatal("withdraw did not reconverge")
	}
	if d.Gained != 0 || d.Moved != 0 || d.Lost == 0 || d.Affected != d.Lost {
		t.Fatalf("withdraw diff shape: %+v", d)
	}
	sawOrigin := false
	for _, ch := range d.Changes {
		if ch.AS == origin.String() {
			sawOrigin = true
		}
	}
	if !sawOrigin {
		t.Fatal("withdraw diff must include the origin losing its own origin route")
	}

	// Failing one mux uplink must never grow the routed set. (It may
	// legitimately affect nobody: the direct customer route is not
	// necessarily anyone's best under the policy bonuses.)
	cd, err = whatif.Compile(whatif.Delta{Kind: whatif.LinkFailure, A: origin.String(), B: mux.String()}, topo, origin)
	if err != nil {
		t.Fatal(err)
	}
	d, err = whatif.Eval(base, cd)
	if err != nil {
		t.Fatal(err)
	}
	if d.Gained != 0 {
		t.Fatalf("a link failure cannot gain routes: %+v", d)
	}

	// Poisoning a mux forces a fresh announcement through the whole
	// world: the poisoned AS must at least drop out (every candidate
	// path now carries its own ASN), and the reconvergence must register
	// measurable churn.
	cd, err = whatif.Compile(whatif.Delta{Kind: whatif.Poison, Poisoned: []string{mux.String()}}, topo, origin)
	if err != nil {
		t.Fatal(err)
	}
	d, err = whatif.Eval(base, cd)
	if err != nil {
		t.Fatal(err)
	}
	if d.Affected == 0 {
		t.Fatalf("poisoning %s affected nobody: %+v", mux, d)
	}
	if d.Events == 0 || d.Churn == 0 {
		t.Fatalf("reconvergence churn not measured: %+v", d)
	}

	// The frozen base is untouched by any number of evaluations.
	if _, ok := base.Best(mux); !ok {
		t.Fatal("base lost state after Eval")
	}
}
