// Package whatif is the incremental what-if engine: typed routing
// deltas — link failure, new peering, AS-path poison, origin prepend,
// LocalPref override, withdraw — applied to a copy-on-write fork of a
// frozen converged base computation, re-converged incrementally, and
// reported as a structured diff of changed best-path decisions instead
// of a full routing snapshot.
//
// It productizes the internal/bgp Fork layer (DESIGN.md §12): a delta
// evaluation pays only the fork (O(#ASes) pointer copies) plus the
// reconvergence the delta actually causes, instead of rebuilding the
// world from scratch. The differential oracle in oracle_test.go pins
// the semantics: the fork-diff of every delta equals the diff of two
// from-scratch builds of the same before/after worlds.
//
// The package has three stages, split so the service layer can cache on
// canonical keys before paying for evaluation:
//
//	Compile  — validate a wire Delta against the sealed topology and
//	           resolve it to a Compiled delta (typed, canonicalized)
//	Canonical — the delta's canonical cache-key fragment
//	Eval     — fork the frozen base, Apply, Converge, diff
package whatif

import (
	"fmt"
	"slices"
	"strconv"
	"strings"

	"routelab/internal/asn"
	"routelab/internal/bgp"
	"routelab/internal/topology"
)

// Kind names a delta type on the wire.
type Kind string

const (
	// LinkFailure takes the adjacency between ASes A and B down.
	LinkFailure Kind = "link_failure"
	// NewPeering attaches a link between non-adjacent ASes A and B; Rel
	// gives B's role from A's perspective.
	NewPeering Kind = "new_peering"
	// Poison re-announces the base prefix with the listed ASes wrapped
	// in an AS_SET sandwiched by the origin (the paper's §3.2 idiom).
	Poison Kind = "poison"
	// Prepend re-announces the base prefix with N extra copies of the
	// origin on the path.
	Prepend Kind = "prepend"
	// LocalPref overrides the local preference AS At assigns to routes
	// learned from neighbor From.
	LocalPref Kind = "local_pref"
	// Withdraw removes the origin's announcement entirely.
	Withdraw Kind = "withdraw"
)

// Kinds lists every delta kind, in documentation order.
var Kinds = []Kind{LinkFailure, NewPeering, Poison, Prepend, LocalPref, Withdraw}

// maxPrepend bounds the prepend delta; real-world prepending beyond a
// handful of copies is pathological and only inflates path memory.
const maxPrepend = 10

// maxLocalPref bounds the LocalPref override; engine policy values live
// in the hundreds.
const maxLocalPref = 1 << 20

// Delta is one what-if mutation as it appears on the wire
// (routelab-whatif/v1 request documents). Exactly the fields of its
// Kind must be set; Compile validates everything against the sealed
// topology before any computation is touched.
type Delta struct {
	Kind Kind `json:"kind"`
	// A and B name the link endpoints (link_failure, new_peering).
	A string `json:"a,omitempty"`
	B string `json:"b,omitempty"`
	// Rel is B's role from A's perspective for new_peering: "customer",
	// "peer", "provider", or "sibling".
	Rel string `json:"rel,omitempty"`
	// Poisoned lists the ASes a poison delta wraps in the AS_SET.
	Poisoned []string `json:"poisoned,omitempty"`
	// Prepend is the extra origin-copy count for a prepend delta.
	Prepend int `json:"prepend,omitempty"`
	// At and From identify the adjacency of a local_pref delta: At's
	// preference for routes learned from From.
	At   string `json:"at,omitempty"`
	From string `json:"from,omitempty"`
	// Pref is the overriding local-preference value.
	Pref int `json:"pref,omitempty"`
}

// Compiled is a validated, topology-resolved delta ready to Apply. It
// is immutable after Compile and safe to share across evaluations.
type Compiled struct {
	kind      Kind
	canonical string

	a, b     asn.ASN          // link_failure endpoints
	link     *topology.Link   // new_peering candidate
	poisoned []asn.ASN        // poison set, sorted ascending, deduped
	prepend  int              // prepend count
	at, from asn.ASN          // local_pref adjacency
	pref     int              // local_pref value
	origin   asn.ASN          // the base announcement's origin
}

// Kind returns the compiled delta's kind.
func (cd *Compiled) Kind() Kind { return cd.kind }

// Canonical returns the delta's canonical form — the cache-key fragment
// the service layer namespaces responses under. Two wire deltas with
// the same meaning canonicalize identically: link endpoints are ordered
// Lo<Hi with the role re-oriented, poison sets are sorted and deduped.
func (cd *Compiled) Canonical() string { return cd.canonical }

// Compile validates one wire delta against the sealed topology and the
// base announcement's origin, and resolves it to an applicable Compiled
// delta. All validation happens here: Apply on the result cannot fail
// against the same engine and the returned error is always a client
// error (the service maps it to 400).
func Compile(d Delta, topo *topology.Topology, origin asn.ASN) (*Compiled, error) {
	cd := &Compiled{kind: d.Kind, origin: origin}
	switch d.Kind {
	case LinkFailure:
		a, b, err := parseEndpoints(topo, d.A, d.B)
		if err != nil {
			return nil, fmt.Errorf("link_failure: %w", err)
		}
		if topo.Link(a, b) == nil {
			return nil, fmt.Errorf("link_failure: %s and %s are not adjacent", a, b)
		}
		// Canonical endpoint order, so fail(a,b) and fail(b,a) share a
		// cache entry.
		if a > b {
			a, b = b, a
		}
		cd.a, cd.b = a, b
		cd.canonical = fmt.Sprintf("fail(%s,%s)", a, b)

	case NewPeering:
		a, b, err := parseEndpoints(topo, d.A, d.B)
		if err != nil {
			return nil, fmt.Errorf("new_peering: %w", err)
		}
		rel, err := parseRel(d.Rel)
		if err != nil {
			return nil, fmt.Errorf("new_peering: %w", err)
		}
		l, err := topo.ProposeLink(a, b, rel)
		if err != nil {
			return nil, fmt.Errorf("new_peering: %w", err)
		}
		cd.link = l
		cd.canonical = fmt.Sprintf("peer(%s,%s,%s)", l.Lo, l.Hi, l.HiRole)

	case Poison:
		if len(d.Poisoned) == 0 {
			return nil, fmt.Errorf("poison: empty poisoned list")
		}
		var set []asn.ASN
		for _, s := range d.Poisoned {
			a, err := asn.ParseASN(s)
			if err != nil {
				return nil, fmt.Errorf("poison: %w", err)
			}
			if topo.AS(a) == nil {
				return nil, fmt.Errorf("poison: no such AS: %s", a)
			}
			if a == origin {
				return nil, fmt.Errorf("poison: cannot poison the origin %s", a)
			}
			set = append(set, a)
		}
		slices.Sort(set)
		set = slices.Compact(set)
		cd.poisoned = set
		names := make([]string, len(set))
		for i, a := range set {
			names[i] = a.String()
		}
		cd.canonical = "poison(" + strings.Join(names, ",") + ")"

	case Prepend:
		if d.Prepend < 1 || d.Prepend > maxPrepend {
			return nil, fmt.Errorf("prepend: count %d out of range [1,%d]", d.Prepend, maxPrepend)
		}
		cd.prepend = d.Prepend
		cd.canonical = "prepend(" + strconv.Itoa(d.Prepend) + ")"

	case LocalPref:
		at, err := parseAS(topo, d.At)
		if err != nil {
			return nil, fmt.Errorf("local_pref: at: %w", err)
		}
		from, err := parseAS(topo, d.From)
		if err != nil {
			return nil, fmt.Errorf("local_pref: from: %w", err)
		}
		if topo.Link(at, from) == nil {
			return nil, fmt.Errorf("local_pref: %s and %s are not adjacent", at, from)
		}
		if d.Pref < 0 || d.Pref > maxLocalPref {
			return nil, fmt.Errorf("local_pref: pref %d out of range [0,%d]", d.Pref, maxLocalPref)
		}
		cd.at, cd.from, cd.pref = at, from, d.Pref
		cd.canonical = fmt.Sprintf("lp(%s,%s,%d)", at, from, d.Pref)

	case Withdraw:
		cd.canonical = "withdraw()"

	default:
		return nil, fmt.Errorf("unknown delta kind %q (have %v)", d.Kind, Kinds)
	}
	return cd, nil
}

// CompileAll compiles a batch, prefixing errors with the failing
// entry's index.
func CompileAll(ds []Delta, topo *topology.Topology, origin asn.ASN) ([]*Compiled, error) {
	out := make([]*Compiled, len(ds))
	for i, d := range ds {
		cd, err := Compile(d, topo, origin)
		if err != nil {
			return nil, fmt.Errorf("delta %d: %w", i, err)
		}
		out[i] = cd
	}
	return out, nil
}

// CanonicalKey joins a compiled batch into one cache-key fragment.
func CanonicalKey(cds []*Compiled) string {
	parts := make([]string, len(cds))
	for i, cd := range cds {
		parts[i] = cd.canonical
	}
	return strings.Join(parts, ";")
}

// Apply mutates c with the delta. Compile already validated everything
// against the same sealed topology, so errors are engine-state
// conflicts only (e.g. applying the same new_peering twice to one
// computation).
func (cd *Compiled) Apply(c *bgp.Computation) error {
	switch cd.kind {
	case LinkFailure:
		return c.FailLink(cd.a, cd.b)
	case NewPeering:
		return c.AddPeering(cd.link)
	case Poison:
		c.Announce(bgp.Announcement{Origin: cd.origin, Poisoned: cd.poisoned})
		return nil
	case Prepend:
		c.Announce(bgp.Announcement{Origin: cd.origin, Prepend: cd.prepend})
		return nil
	case LocalPref:
		return c.SetLocalPref(cd.at, cd.from, cd.pref)
	case Withdraw:
		c.Withdraw(cd.origin)
		return nil
	default:
		return fmt.Errorf("whatif: apply: unknown kind %q", cd.kind)
	}
}

func parseAS(topo *topology.Topology, s string) (asn.ASN, error) {
	if s == "" {
		return 0, fmt.Errorf("missing AS")
	}
	a, err := asn.ParseASN(s)
	if err != nil {
		return 0, err
	}
	if topo.AS(a) == nil {
		return 0, fmt.Errorf("no such AS: %s", a)
	}
	return a, nil
}

func parseEndpoints(topo *topology.Topology, sa, sb string) (a, b asn.ASN, err error) {
	if a, err = parseAS(topo, sa); err != nil {
		return 0, 0, fmt.Errorf("a: %w", err)
	}
	if b, err = parseAS(topo, sb); err != nil {
		return 0, 0, fmt.Errorf("b: %w", err)
	}
	return a, b, nil
}

func parseRel(s string) (topology.Rel, error) {
	switch s {
	case "customer":
		return topology.RelCustomer, nil
	case "peer":
		return topology.RelPeer, nil
	case "provider":
		return topology.RelProvider, nil
	case "sibling":
		return topology.RelSibling, nil
	default:
		return topology.RelNone, fmt.Errorf("bad rel %q (have customer, peer, provider, sibling)", s)
	}
}
