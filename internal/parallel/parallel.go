// Package parallel is the repository's single execution layer for
// running independent units of routing work concurrently. Every
// parallel stage in routelab — per-prefix RIB convergence, per-probe
// traceroute generation, per-mux magnet runs, per-target alternate
// discovery, per-snapshot inference, per-refinement classification —
// funnels through this package, so the concurrency model is stated
// once, here, and in DESIGN.md §"Concurrency model".
//
// # Determinism contract
//
// Parallelism must never change output. The package guarantees it
// structurally:
//
//   - Work is identified by index. Map and ForEach hand item i to
//     exactly one worker and store its result at slot i; no result
//     passes through a channel or a time-ordered merge.
//   - The merge barrier is the return: when Map/ForEach return, every
//     slot is written and the caller consumes results in index order —
//     a stable, seed- and schedule-independent order. Output is
//     byte-identical for any worker count, including 1.
//   - The worker function must be a pure function of (read-only shared
//     state, its item): it may not touch shared mutable state, draw
//     from a shared rand.Rand, or depend on completion order. Callers
//     that need randomness derive one seed per item BEFORE the fan-out
//     (see scenario.Campaign) so the stream split is itself
//     deterministic.
//
// # Ownership rules
//
// Shared inputs (topology.Topology, bgp.Engine, bgp.RIB, the
// measurement databases) are immutable after construction and safe to
// read from any worker. Per-item state (bgp.Computation, a worker's
// rand.Rand, a traceroute in flight) is confined to the worker that
// owns the item and must not escape except as the item's result.
//
// # Sizing
//
// Workers(0) — and any n <= 0 — selects runtime.GOMAXPROCS(0), the
// default everywhere a worker count is plumbed (scenario.Config
// RoutingWorkers, the -workers CLI flags). Workers(1) runs the caller's
// loop inline with no goroutines, which is the serial reference path
// the determinism tests compare against.
//
// # Observability
//
// The Stage variants (ForEachStage, MapStage) additionally record the
// stage's wall clock, item count, items/sec, and worker utilization in
// the default obs registry (see internal/obs and DESIGN.md
// §"Observability"). Metrics never feed back into results.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"routelab/internal/obs"
)

// Workers normalizes a configured worker count: values <= 0 select
// GOMAXPROCS (use all hardware), anything else is taken as-is.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n) using the given number of
// workers (normalized by Workers). It returns when every call has
// finished — the merge barrier. fn must not touch shared mutable state;
// see the package comment for the full contract. A panic in any fn is
// re-raised on the calling goroutine after the pool drains.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Serial reference path: same loop, no goroutines.
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		panicMu sync.Mutex
		panicV  any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicV == nil {
						panicV = r
					}
					panicMu.Unlock()
				}
			}()
			for {
				//lint:allow hotatomic the work-stealing index is the fan-out mechanism itself: one atomic per item, by design
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicV != nil {
		panic(panicV)
	}
}

// Map applies fn to every item concurrently and returns the results in
// input order (slot i holds fn(items[i])) — the stable merge the
// determinism contract requires. fn receives the item index and the
// item; it must not touch shared mutable state.
func Map[T, R any](items []T, workers int, fn func(i int, item T) R) []R {
	out := make([]R, len(items))
	ForEach(len(items), workers, func(i int) {
		out[i] = fn(i, items[i])
	})
	return out
}

// ForEachStage is ForEach instrumented under a stage name: it records
// the stage's wall clock on the obs timer of that name, plus
// "<stage>.items" (counter), "<stage>.items_per_sec",
// "<stage>.utilization" (busy worker-time / workers × wall), and
// "<stage>.workers" (gauges) in the default obs registry. The metrics
// are a side channel — the determinism contract is untouched; output
// stays byte-identical for any worker count. Instrumentation costs one
// clock read pair plus one atomic add per item, so use it for stages
// whose items are substantial (a convergence, a probe's traceroutes),
// not micro-loops.
func ForEachStage(stage string, n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	effective := Workers(workers)
	if effective > n {
		effective = n
	}
	var busy atomic.Int64
	reg := obs.Default()
	// StartStage (rather than a bare Timer) so registered stage
	// listeners see the begin/end of the fan-out live — the service
	// layer's build-progress tracker rides these events.
	stop := reg.StartStage(stage)
	start := time.Now()
	ForEach(n, workers, func(i int) {
		t0 := time.Now()
		fn(i)
		//lint:allow hotatomic documented stage cost: one clock pair plus one atomic add per item (see ForEachStage doc)
		busy.Add(int64(time.Since(t0)))
	})
	wall := time.Since(start)
	stop()
	reg.Counter(stage + ".items").Add(int64(n))
	reg.Gauge(stage + ".workers").Set(float64(effective))
	if wall > 0 {
		reg.Gauge(stage + ".items_per_sec").Set(float64(n) / wall.Seconds())
		reg.Gauge(stage + ".utilization").Set(float64(busy.Load()) / (float64(wall) * float64(effective)))
	}
}

// MapStage is Map instrumented under a stage name; see ForEachStage for
// the recorded metrics and their cost.
func MapStage[T, R any](stage string, items []T, workers int, fn func(i int, item T) R) []R {
	out := make([]R, len(items))
	ForEachStage(stage, len(items), workers, func(i int) {
		out[i] = fn(i, items[i])
	})
	return out
}
