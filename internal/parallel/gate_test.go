package parallel

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGateBoundsConcurrency(t *testing.T) {
	const bound = 3
	g := NewGate(bound)
	if g.Cap() != bound {
		t.Fatalf("Cap() = %d, want %d", g.Cap(), bound)
	}
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := g.Enter(context.Background()); err != nil {
				t.Error(err)
				return
			}
			defer g.Leave()
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > bound {
		t.Errorf("observed %d concurrent holders, bound %d", p, bound)
	}
	if g.InUse() != 0 {
		t.Errorf("InUse() = %d after drain", g.InUse())
	}
}

func TestGateEnterHonorsContext(t *testing.T) {
	g := NewGate(1)
	if err := g.Enter(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := g.Enter(ctx); err != context.DeadlineExceeded {
		t.Errorf("Enter on a full gate = %v, want DeadlineExceeded", err)
	}
	g.Leave()

	// A pre-expired context loses even when a slot is free.
	done, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if err := g.Enter(done); err != context.Canceled {
		t.Errorf("Enter with canceled ctx = %v, want Canceled", err)
	}
}

func TestGateDefaultSizing(t *testing.T) {
	if g := NewGate(0); g.Cap() != Workers(0) {
		t.Errorf("NewGate(0).Cap() = %d, want Workers(0) = %d", g.Cap(), Workers(0))
	}
	if g := NewGate(-4); g.Cap() != Workers(0) {
		t.Errorf("NewGate(-4).Cap() = %d, want Workers(0) = %d", g.Cap(), Workers(0))
	}
}
