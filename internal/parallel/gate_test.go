package parallel

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGateBoundsConcurrency(t *testing.T) {
	const bound = 3
	g := NewGate(bound)
	if g.Cap() != bound {
		t.Fatalf("Cap() = %d, want %d", g.Cap(), bound)
	}
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := g.Enter(context.Background()); err != nil {
				t.Error(err)
				return
			}
			defer g.Leave()
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > bound {
		t.Errorf("observed %d concurrent holders, bound %d", p, bound)
	}
	if g.InUse() != 0 {
		t.Errorf("InUse() = %d after drain", g.InUse())
	}
}

func TestGateEnterHonorsContext(t *testing.T) {
	g := NewGate(1)
	if err := g.Enter(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := g.Enter(ctx); err != context.DeadlineExceeded {
		t.Errorf("Enter on a full gate = %v, want DeadlineExceeded", err)
	}
	g.Leave()

	// A pre-expired context loses even when a slot is free.
	done, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if err := g.Enter(done); err != context.Canceled {
		t.Errorf("Enter with canceled ctx = %v, want Canceled", err)
	}
}

func TestGateWaitingCountsQueuedCallers(t *testing.T) {
	g := NewGate(1)
	if err := g.Enter(context.Background()); err != nil {
		t.Fatal(err)
	}
	if w := g.Waiting(); w != 0 {
		t.Fatalf("Waiting() = %d with an empty queue", w)
	}

	const queued = 4
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < queued; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := g.Enter(ctx); err == nil {
				g.Leave()
			}
		}()
	}
	// The waiters have no other rendezvous point, so poll until all of
	// them are provably parked in Enter's blocking select.
	deadline := time.Now().Add(5 * time.Second)
	for g.Waiting() != queued {
		if time.Now().After(deadline) {
			t.Fatalf("Waiting() = %d, want %d", g.Waiting(), queued)
		}
		time.Sleep(time.Millisecond)
	}

	// Releasing the slot lets the line drain; canceling evicts the rest.
	g.Leave()
	cancel()
	wg.Wait()
	if w := g.Waiting(); w != 0 {
		t.Errorf("Waiting() = %d after drain", w)
	}
}

func TestGateWaitingZeroOnFastPath(t *testing.T) {
	// A caller that finds a free slot must never be counted as waiting.
	g := NewGate(2)
	for i := 0; i < 10; i++ {
		if err := g.Enter(context.Background()); err != nil {
			t.Fatal(err)
		}
		if w := g.Waiting(); w != 0 {
			t.Fatalf("Waiting() = %d on uncontended Enter", w)
		}
		g.Leave()
	}
}

func TestGateDefaultSizing(t *testing.T) {
	if g := NewGate(0); g.Cap() != Workers(0) {
		t.Errorf("NewGate(0).Cap() = %d, want Workers(0) = %d", g.Cap(), Workers(0))
	}
	if g := NewGate(-4); g.Cap() != Workers(0) {
		t.Errorf("NewGate(-4).Cap() = %d, want Workers(0) = %d", g.Cap(), Workers(0))
	}
}
