package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"

	"routelab/internal/obs"
)

func TestWorkersNormalization(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
}

func TestForEachCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 257
		var counts [n]atomic.Int32
		ForEach(n, workers, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmptyAndOversizedPool(t *testing.T) {
	ForEach(0, 8, func(int) { t.Fatal("fn called for n=0") })
	ran := 0
	ForEach(1, 64, func(i int) { ran++ })
	if ran != 1 {
		t.Fatalf("ran=%d", ran)
	}
}

// Map must return results in input order regardless of worker count —
// the stable merge the determinism contract promises.
func TestMapStableOrder(t *testing.T) {
	items := make([]int, 1000)
	for i := range items {
		items[i] = i * 3
	}
	serial := Map(items, 1, func(i, v int) int { return v*v + i })
	for _, workers := range []int{2, 4, 16} {
		got := Map(items, workers, func(i, v int) int { return v*v + i })
		for i := range got {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], serial[i])
			}
		}
	}
}

// TestMapStageRecordsMetrics checks the instrumented variant produces
// the same stable merge AND leaves the advertised metrics behind in the
// default obs registry.
func TestMapStageRecordsMetrics(t *testing.T) {
	obs.Reset()
	t.Cleanup(obs.Reset)
	items := []int{5, 6, 7, 8, 9}
	got := MapStage("parallel-test/square", items, 2, func(i, v int) int { return v * v })
	for i, v := range items {
		if got[i] != v*v {
			t.Fatalf("slot %d = %d, want %d", i, got[i], v*v)
		}
	}
	snap := obs.Snap()
	if n := snap.Counters["parallel-test/square.items"]; n != int64(len(items)) {
		t.Errorf("items counter = %d, want %d", n, len(items))
	}
	if w := snap.Gauges["parallel-test/square.workers"]; w != 2 {
		t.Errorf("workers gauge = %v, want 2", w)
	}
	if u := snap.Gauges["parallel-test/square.utilization"]; u < 0 || u > 1.5 {
		t.Errorf("utilization gauge = %v, want a plausible ratio", u)
	}
	found := false
	for _, st := range snap.Stages {
		if st.Name == "parallel-test/square" && st.Count == 1 && st.TotalNS > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("stage timer missing or empty: %+v", snap.Stages)
	}
}

// TestForEachStageEmpty must not record a stage for zero items.
func TestForEachStageEmpty(t *testing.T) {
	obs.Reset()
	t.Cleanup(obs.Reset)
	ForEachStage("parallel-test/empty", 0, 4, func(int) { t.Fatal("fn called for n=0") })
	for _, st := range obs.Snap().Stages {
		if st.Name == "parallel-test/empty" && st.Count != 0 {
			t.Errorf("empty stage recorded: %+v", st)
		}
	}
}

func TestForEachPropagatesPanic(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic in worker was swallowed")
		}
	}()
	ForEach(100, 4, func(i int) {
		if i == 37 {
			panic("boom")
		}
	})
}
