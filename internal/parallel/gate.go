package parallel

import (
	"context"
	"sync/atomic"
)

// A Gate bounds admission to a shared resource: at most N holders at
// once, extra callers queue. It is the request-side complement of the
// worker pools above — Map/ForEach bound CPU fan-out inside one
// computation, a Gate bounds how many computations run at all (e.g.
// concurrent service requests over one warm scenario).
//
// Unlike a bare buffered channel, Enter is context-aware: a caller
// whose request deadline expires while queued gets ctx.Err() back
// instead of occupying a slot it no longer wants.
//
// A Gate never affects results — it only sequences WHEN work starts.
// Work admitted through a Gate must still follow the package's purity
// rules if it fans out further.
type Gate struct {
	slots   chan struct{}
	waiting atomic.Int64
}

// NewGate returns a Gate admitting at most n concurrent holders.
// n <= 0 selects Workers(0) (GOMAXPROCS), mirroring the worker-count
// normalization used everywhere else in the package.
func NewGate(n int) *Gate {
	return &Gate{slots: make(chan struct{}, Workers(n))}
}

// Cap reports the admission bound.
func (g *Gate) Cap() int { return cap(g.slots) }

// Enter blocks until a slot is free or ctx is done. On success it
// returns nil and the caller MUST call Leave exactly once. On ctx
// expiry it returns ctx.Err() and the caller holds nothing.
func (g *Gate) Enter(ctx context.Context) error {
	// Prefer reporting expiry even when a slot is also free — a dead
	// request should not start work.
	if err := ctx.Err(); err != nil {
		return err
	}
	// Fast path: a free slot means the caller never queues and Waiting
	// stays untouched, so an unloaded gate always reports depth 0.
	select {
	case g.slots <- struct{}{}:
		return nil
	default:
	}
	g.waiting.Add(1)
	defer g.waiting.Add(-1)
	select {
	case g.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Leave releases a slot taken by a successful Enter.
func (g *Gate) Leave() { <-g.slots }

// InUse reports how many slots are currently held (racy by nature;
// for metrics only).
func (g *Gate) InUse() int { return len(g.slots) }

// Waiting reports how many callers are currently queued in Enter with
// all slots taken. Like InUse it is instantaneously racy, but it is the
// load-shedding signal: admission layers compare it against a queue
// budget BEFORE calling Enter, so a saturated gate fails fast instead
// of growing an unbounded line of doomed waiters.
func (g *Gate) Waiting() int { return int(g.waiting.Load()) }
