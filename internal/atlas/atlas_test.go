package atlas

import (
	"math/rand"
	"testing"

	"routelab/internal/geo"
	"routelab/internal/topology"
)

var testTopo = topology.Generate(51, topology.TestConfig())

func TestPlatformPopulation(t *testing.T) {
	pl := NewPlatform(testTopo, 51)
	if pl.NumProbes() < 100 {
		t.Fatalf("only %d probes deployed", pl.NumProbes())
	}
	// The raw population must be EU-skewed.
	byCont := map[geo.Continent]int{}
	for _, p := range pl.Probes() {
		cont := testTopo.World.ContinentOf(p.City)
		if cont == geo.ContinentNone {
			t.Fatalf("probe %d has no continent", p.ID)
		}
		byCont[cont]++
		// Probe address must be inside the host AS's announced space.
		if got := testTopo.ASByAddr(p.Addr); got != p.AS {
			t.Fatalf("probe %d address %v resolves to %v, want %v", p.ID, p.Addr, got, p.AS)
		}
		if !testTopo.AS(p.AS).HasCity(p.City) {
			t.Fatalf("probe %d city %d is not a PoP of %v", p.ID, p.City, p.AS)
		}
	}
	if byCont[geo.EU] <= byCont[geo.AF] {
		t.Errorf("population not EU-skewed: EU=%d AF=%d", byCont[geo.EU], byCont[geo.AF])
	}
}

func TestPlatformDeterministic(t *testing.T) {
	a := NewPlatform(testTopo, 7)
	b := NewPlatform(testTopo, 7)
	if a.NumProbes() != b.NumProbes() {
		t.Fatal("same seed, different populations")
	}
	for i := range a.Probes() {
		if a.Probes()[i] != b.Probes()[i] {
			t.Fatalf("probe %d differs", i)
		}
	}
}

func TestSelectBalancedEvensContinents(t *testing.T) {
	pl := NewPlatform(testTopo, 51)
	sel := pl.SelectBalanced(rand.New(rand.NewSource(1)), 120)
	if len(sel) == 0 {
		t.Fatal("empty selection")
	}
	byCont := map[geo.Continent]int{}
	seen := map[int]bool{}
	for _, p := range sel {
		if seen[p.ID] {
			t.Fatalf("probe %d selected twice", p.ID)
		}
		seen[p.ID] = true
		byCont[testTopo.World.ContinentOf(p.City)]++
	}
	quota := 120 / 6
	for _, cont := range geo.Continents {
		if byCont[cont] > quota {
			t.Errorf("%s over quota: %d > %d", cont, byCont[cont], quota)
		}
	}
	// Europe must not dominate despite the population skew.
	if byCont[geo.EU] > 2*byCont[geo.NA]+5 {
		t.Errorf("selection still EU-skewed: %v", byCont)
	}
}

func TestSelectBalancedSpreadsASes(t *testing.T) {
	pl := NewPlatform(testTopo, 51)
	sel := pl.SelectBalanced(rand.New(rand.NewSource(2)), 120)
	ases := map[string]int{}
	for _, p := range sel {
		ases[p.AS.String()]++
	}
	// Round-robin over countries and ASes should keep per-AS counts low.
	for a, n := range ases {
		if n > 6 {
			t.Errorf("AS %s holds %d selected probes — selection not spread", a, n)
		}
	}
}

func TestClassifyByDegree(t *testing.T) {
	counts := map[topology.Class]int{}
	for _, p := range NewPlatform(testTopo, 51).Probes() {
		counts[ClassifyByDegree(testTopo, p.AS)]++
	}
	if counts[topology.Stub] == 0 || counts[topology.SmallISP] == 0 {
		t.Errorf("probe classification missing edge classes: %v", counts)
	}
	// Ground-truth agreement on clear-cut cases. A Tier-1 that leases
	// undersea-cable capacity LOOKS like it buys transit, so the
	// degree method legitimately demotes it — skip those.
	for _, a := range testTopo.ASesOfClass(topology.Tier1) {
		buysCable := false
		for _, n := range testTopo.Neighbors(a) {
			if n.Role == topology.RelProvider {
				buysCable = buysCable || testTopo.IsCableAS(n.ASN)
			}
		}
		if buysCable {
			continue
		}
		if got := ClassifyByDegree(testTopo, a); got != topology.Tier1 {
			t.Errorf("Tier-1 %v classified as %v", a, got)
		}
	}
	misStub := 0
	stubs := testTopo.ASesOfClass(topology.Stub)
	for _, a := range stubs {
		if got := ClassifyByDegree(testTopo, a); got != topology.Stub {
			misStub++
		}
	}
	if misStub > len(stubs)/10 {
		t.Errorf("%d/%d stubs misclassified", misStub, len(stubs))
	}
}
