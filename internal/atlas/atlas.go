// Package atlas emulates the RIPE Atlas measurement platform: a global
// probe population skewed toward Europe (as the real platform is), the
// paper's continent-balanced round-robin probe selection (§3.1), and
// the degree-based AS categorization (after Oliveira et al.) used to
// report Table 1.
package atlas

import (
	"math/rand"
	"sort"

	"routelab/internal/asn"
	"routelab/internal/geo"
	"routelab/internal/topology"
)

// Probe is one measurement vantage point: a host inside an eyeball AS.
type Probe struct {
	ID   int
	AS   asn.ASN
	City geo.CityID
	Addr asn.Addr
}

// Platform is the probe population.
type Platform struct {
	topo   *topology.Topology
	probes []Probe
}

// continentWeight reproduces Atlas's deployment skew.
var continentWeight = map[geo.Continent]float64{
	geo.EU: 3.0, geo.NA: 1.5, geo.AS: 0.8,
	geo.SA: 0.5, geo.AF: 0.3, geo.OC: 0.5,
}

// NewPlatform deploys probes across the topology's eyeball networks.
// Density follows the continent weights; a few probes land in large
// ISPs and Tier-1 backbones, as on the real platform.
func NewPlatform(topo *topology.Topology, seed int64) *Platform {
	rng := rand.New(rand.NewSource(seed))
	pl := &Platform{topo: topo}
	candidates := append(topo.ASesOfClass(topology.Stub), topo.ASesOfClass(topology.SmallISP)...)
	candidates = append(candidates, topo.ASesOfClass(topology.LargeISP)...)
	candidates = append(candidates, topo.ASesOfClass(topology.Tier1)...)
	for _, a := range candidates {
		x := topo.AS(a)
		if len(x.Prefixes) == 0 || len(x.Cities) == 0 {
			continue
		}
		cont := topo.World.Country(x.HomeCountry).Continent
		w := continentWeight[cont]
		switch x.Class {
		case topology.LargeISP:
			w *= 0.4
		case topology.Tier1:
			w *= 0.2
		}
		n := 0
		for rng.Float64() < w {
			n++
			w /= 2.5
			if n >= 6 {
				break
			}
		}
		for k := 0; k < n; k++ {
			city := x.Cities[rng.Intn(len(x.Cities))]
			pl.probes = append(pl.probes, Probe{
				ID:   len(pl.probes) + 1,
				AS:   a,
				City: city,
				Addr: x.Prefixes[0].Nth(topology.HostOffset(uint32(len(pl.probes)))),
			})
		}
	}
	return pl
}

// Probes returns the whole population. Shared; do not modify.
func (pl *Platform) Probes() []Probe { return pl.probes }

// NumProbes returns the population size.
func (pl *Platform) NumProbes() int { return len(pl.probes) }

// SelectBalanced implements §3.1's sampling: an equal quota per
// continent, filled round-robin across the continent's countries and,
// within a country, round-robin across its ASes, so the sample covers a
// wide range of ASes instead of mirroring the EU-heavy population.
func (pl *Platform) SelectBalanced(rng *rand.Rand, total int) []Probe {
	quota := total / len(geo.Continents)
	// Index probes by continent → country → AS.
	byCont := make(map[geo.Continent]map[geo.CountryCode]map[asn.ASN][]Probe)
	for _, p := range pl.probes {
		cont := pl.topo.World.ContinentOf(p.City)
		cc := pl.topo.World.CountryOf(p.City)
		if byCont[cont] == nil {
			byCont[cont] = make(map[geo.CountryCode]map[asn.ASN][]Probe)
		}
		if byCont[cont][cc] == nil {
			byCont[cont][cc] = make(map[asn.ASN][]Probe)
		}
		byCont[cont][cc][p.AS] = append(byCont[cont][cc][p.AS], p)
	}
	var out []Probe
	for _, cont := range geo.Continents {
		countries := make([]geo.CountryCode, 0, len(byCont[cont]))
		for cc := range byCont[cont] {
			countries = append(countries, cc)
		}
		sort.Slice(countries, func(i, j int) bool { return countries[i] < countries[j] })
		rng.Shuffle(len(countries), func(i, j int) { countries[i], countries[j] = countries[j], countries[i] })
		// Per-country AS rings.
		rings := make([][][]Probe, len(countries))
		for ci, cc := range countries {
			asns := make([]asn.ASN, 0, len(byCont[cont][cc]))
			for a := range byCont[cont][cc] {
				asns = append(asns, a)
			}
			sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
			for _, a := range asns {
				ps := byCont[cont][cc][a]
				rng.Shuffle(len(ps), func(i, j int) { ps[i], ps[j] = ps[j], ps[i] })
				rings[ci] = append(rings[ci], ps)
			}
		}
		picked := 0
		for round := 0; picked < quota; round++ {
			progress := false
			for ci := range rings {
				if picked >= quota {
					break
				}
				// Within the country, take from the round-th AS ring.
				for len(rings[ci]) > 0 {
					ai := round % len(rings[ci])
					if len(rings[ci][ai]) == 0 {
						rings[ci] = append(rings[ci][:ai], rings[ci][ai+1:]...)
						continue
					}
					out = append(out, rings[ci][ai][0])
					rings[ci][ai] = rings[ci][ai][1:]
					picked++
					progress = true
					break
				}
			}
			if !progress {
				break // continent exhausted
			}
		}
	}
	return out
}

// ClassifyByDegree categorizes an AS from observable graph structure
// (the Oliveira-et-al.-style method behind Table 1): Tier-1 networks
// buy no transit; large ISPs have big customer cones; small ISPs have
// customers; stubs have none.
func ClassifyByDegree(topo *topology.Topology, a asn.ASN) topology.Class {
	providers, customers := 0, 0
	for _, n := range topo.Neighbors(a) {
		switch n.Role {
		case topology.RelProvider:
			providers++
		case topology.RelCustomer:
			customers++
		}
	}
	switch {
	case providers == 0 && customers > 0:
		return topology.Tier1
	case customers == 0:
		return topology.Stub
	case coneSize(topo, a) >= 40:
		return topology.LargeISP
	default:
		return topology.SmallISP
	}
}

// coneSize counts the ASes in a's customer cone (a excluded).
func coneSize(topo *topology.Topology, a asn.ASN) int {
	seen := map[asn.ASN]bool{a: true}
	queue := []asn.ASN{a}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, n := range topo.Neighbors(cur) {
			if n.Role == topology.RelCustomer && !seen[n.ASN] {
				seen[n.ASN] = true
				queue = append(queue, n.ASN)
			}
		}
	}
	return len(seen) - 1
}
