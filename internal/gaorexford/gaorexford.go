// Package gaorexford computes, over an (inferred) relationship graph,
// everything the Gao–Rexford routing model predicts about paths toward a
// destination AS: which relationship classes of route each AS has
// available, and the shortest policy-compliant path length per class.
//
// This is the "model" side of the paper's comparison (§3.3): a measured
// decision is judged Best if the chosen neighbor's relationship class is
// the best class the model says is available, and Short if the measured
// path is as short as the shortest valley-free path.
//
// The computation is the classic three-phase relaxation:
//
//	phase 1 (customer routes)  BFS from the destination up customer→
//	                           provider edges: custLen.
//	phase 2 (peer routes)      one peer edge on top of a customer route:
//	                           peerLen.
//	phase 3 (provider routes)  Dijkstra-style downward propagation:
//	                           provLen[a] = 1 + min over providers v of
//	                           min(custLen, peerLen, provLen)(v).
//
// Sibling edges, when present in a graph, relay routes without changing
// their class (the organization acts as one AS).
package gaorexford

import (
	"math"

	"routelab/internal/asn"
	"routelab/internal/relgraph"
	"routelab/internal/topology"
)

// Unreachable is the length reported when no policy-compliant path of a
// class exists.
const Unreachable = math.MaxInt32

// Result holds the model's predictions toward one destination.
type Result struct {
	Dst asn.ASN

	custLen map[asn.ASN]int32
	peerLen map[asn.ASN]int32
	provLen map[asn.ASN]int32
	skip    map[[2]asn.ASN]bool
}

// Compute runs the model toward dst on g. The masked edges (if any) are
// treated as absent — the mechanism behind the prefix-specific-policy
// refinements, which drop origin edges not observed carrying the prefix.
func Compute(g *relgraph.Graph, dst asn.ASN, masked ...relgraph.Edge) *Result {
	skip := make(map[[2]asn.ASN]bool, len(masked))
	for _, e := range masked {
		skip[[2]asn.ASN{e.A, e.B}] = true
		skip[[2]asn.ASN{e.B, e.A}] = true
	}
	res := &Result{
		Dst:     dst,
		custLen: make(map[asn.ASN]int32),
		peerLen: make(map[asn.ASN]int32),
		provLen: make(map[asn.ASN]int32),
		skip:    skip,
	}
	res.compute(g)
	return res
}

// Route-class states of the unified relaxation. classCust covers routes
// exportable to everyone: own routes and customer-learned routes.
// Sibling edges are organizational glue: a sibling relays ANY route, but
// the route's class (and thus its exportability) is preserved across the
// sibling hop — the organization acts as one AS.
const (
	classCust = 0
	classPeer = 1
	classProv = 2
)

func (r *Result) compute(g *relgraph.Graph) {
	blocked := func(a, b asn.ASN) bool { return r.skip[[2]asn.ASN{a, b}] }
	dist := [3]map[asn.ASN]int32{r.custLen, r.peerLen, r.provLen}

	// Dijkstra with uniform edge weights (bucket queue) over states
	// (AS, class). Lengths count edges, matching Path.Len() as seen from
	// each AS (dst itself is 0).
	const maxLen = 64
	type state struct {
		a   asn.ASN
		cls int
	}
	buckets := make([][]state, maxLen)
	relax := func(a asn.ASN, cls int, d int32) {
		if cur, ok := dist[cls][a]; ok && cur <= d {
			return
		}
		dist[cls][a] = d
		if d < maxLen {
			buckets[d] = append(buckets[d], state{a, cls})
		}
	}
	relax(r.Dst, classCust, 0)
	for d := int32(0); d < maxLen; d++ {
		for qi := 0; qi < len(buckets[d]); qi++ {
			s := buckets[d][qi]
			if dist[s.cls][s.a] != d {
				continue // stale
			}
			for _, b := range g.Neighbors(s.a) {
				if blocked(s.a, b) {
					continue
				}
				switch g.Rel(b, s.a) { // s.a's role from b's perspective
				case topology.RelCustomer:
					// b hears from its customer s.a only s.a's
					// exportable-to-all routes.
					if s.cls == classCust {
						relax(b, classCust, d+1)
					}
				case topology.RelSibling:
					// b hears ANY of its sibling's routes; the class
					// (exportability) is preserved across the hop.
					relax(b, s.cls, d+1)
				case topology.RelPeer:
					// b hears s.a's exportable-to-all routes as peer
					// routes.
					if s.cls == classCust {
						relax(b, classPeer, d+1)
					}
				case topology.RelProvider:
					// b hears ANY of its provider s.a's routes.
					relax(b, classProv, d+1)
				}
			}
		}
	}
}

// ClassLen returns the shortest model path length from a to the
// destination using a route of the given class (the class is the
// relationship of the FIRST edge: customer route, peer route, provider
// route), or Unreachable.
func (r *Result) ClassLen(a asn.ASN, class topology.Rel) int {
	var m map[asn.ASN]int32
	switch class {
	case topology.RelCustomer, topology.RelSibling:
		m = r.custLen
	case topology.RelPeer:
		m = r.peerLen
	case topology.RelProvider:
		m = r.provLen
	default:
		return Unreachable
	}
	if d, ok := m[a]; ok {
		return int(d)
	}
	return Unreachable
}

// BestRank returns the rank (0 customer, 1 peer, 2 provider) of the best
// relationship class through which the model says a can reach the
// destination, or 3 when unreachable.
func (r *Result) BestRank(a asn.ASN) int {
	if a == r.Dst {
		return 0
	}
	if _, ok := r.custLen[a]; ok {
		return 0
	}
	if _, ok := r.peerLen[a]; ok {
		return 1
	}
	if _, ok := r.provLen[a]; ok {
		return 2
	}
	return 3
}

// ShortestLen returns the shortest valley-free path length from a to the
// destination across all classes (the "Short" reference), counting the
// ASes after a itself — so a path a→x→dst has length 2. Unreachable when
// the model offers no path.
func (r *Result) ShortestLen(a asn.ASN) int {
	if a == r.Dst {
		return 0
	}
	best := Unreachable
	for _, m := range []map[asn.ASN]int32{r.custLen, r.peerLen, r.provLen} {
		if d, ok := m[a]; ok && int(d) < best {
			best = int(d)
		}
	}
	return best
}

// Reachable reports whether the model offers a any path to the
// destination.
func (r *Result) Reachable(a asn.ASN) bool { return r.ShortestLen(a) < Unreachable }

// ShortestPath reconstructs ONE shortest policy-compliant path from a to
// the destination through the best available class (a first, destination
// last), or nil when unreachable. Ties break toward lower ASNs, so the
// result is deterministic. The graph must be the one Compute ran on; the
// masked edges from Compute are honored automatically.
func (r *Result) ShortestPath(g *relgraph.Graph, a asn.ASN) []asn.ASN {
	skip := r.skip
	dist := [3]map[asn.ASN]int32{r.custLen, r.peerLen, r.provLen}
	// Start at a's best state.
	cls, d := -1, int32(Unreachable)
	for c := 0; c < 3; c++ {
		if x, ok := dist[c][a]; ok && x < d {
			cls, d = c, x
		}
	}
	if cls < 0 {
		return nil
	}
	path := []asn.ASN{a}
	cur := a
	for cur != r.Dst {
		next, nextCls := asn.ASN(0), -1
		for _, b := range g.Neighbors(cur) {
			if skip[[2]asn.ASN{cur, b}] {
				continue
			}
			rel := g.Rel(cur, b) // b's role from cur
			// Which of b's states could have produced cur's state?
			var okCls []int
			switch {
			case cls == classCust && rel == topology.RelCustomer:
				okCls = []int{classCust}
			case rel == topology.RelSibling:
				okCls = []int{cls} // class preserved across sibling hops
			case cls == classPeer && rel == topology.RelPeer:
				okCls = []int{classCust}
			case cls == classProv && rel == topology.RelProvider:
				okCls = []int{classCust, classPeer, classProv}
			}
			for _, bc := range okCls {
				if bd, ok := dist[bc][b]; ok && bd == d-1 {
					if next.IsZero() || b < next {
						next, nextCls = b, bc
					}
					break
				}
			}
		}
		if next.IsZero() {
			return nil // inconsistent state (wrong graph passed)
		}
		path = append(path, next)
		cur, cls, d = next, nextCls, d-1
	}
	return path
}
