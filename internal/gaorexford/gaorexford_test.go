package gaorexford

import (
	"testing"

	"routelab/internal/asn"
	"routelab/internal/bgp"
	"routelab/internal/relgraph"
	"routelab/internal/topology"
)

// line builds d — m — a as a provider chain: d is m's customer, m is a's
// customer (so a reaches d via customer route of length 2).
func line() *relgraph.Graph {
	g := relgraph.New()
	g.Set(2, 1, topology.RelCustomer) // 1 is 2's customer
	g.Set(3, 2, topology.RelCustomer) // 2 is 3's customer
	return g
}

func TestCustomerChain(t *testing.T) {
	g := line()
	r := Compute(g, 1)
	if got := r.ClassLen(2, topology.RelCustomer); got != 1 {
		t.Errorf("ClassLen(2, customer) = %d, want 1", got)
	}
	if got := r.ClassLen(3, topology.RelCustomer); got != 2 {
		t.Errorf("ClassLen(3, customer) = %d, want 2", got)
	}
	if r.BestRank(3) != 0 {
		t.Errorf("BestRank(3) = %d, want 0", r.BestRank(3))
	}
	if r.ShortestLen(3) != 2 {
		t.Errorf("ShortestLen(3) = %d, want 2", r.ShortestLen(3))
	}
	if r.ShortestLen(1) != 0 || r.BestRank(1) != 0 {
		t.Error("destination must be trivially reachable at length 0")
	}
}

func TestPeerRoute(t *testing.T) {
	g := line()
	g.Set(4, 2, topology.RelPeer) // 4 peers with 2
	r := Compute(g, 1)
	// 4 reaches 1 via peer 2 (which holds a customer route): len 2.
	if got := r.ClassLen(4, topology.RelPeer); got != 2 {
		t.Errorf("ClassLen(4, peer) = %d, want 2", got)
	}
	if r.BestRank(4) != 1 {
		t.Errorf("BestRank(4) = %d, want 1 (peer)", r.BestRank(4))
	}
}

func TestPeerDoesNotRelayPeerRoutes(t *testing.T) {
	g := line()
	g.Set(4, 2, topology.RelPeer)
	g.Set(5, 4, topology.RelPeer) // 5 peers with 4
	r := Compute(g, 1)
	// 4's route to 1 is a peer route; it must NOT be exported to peer 5.
	if r.Reachable(5) {
		t.Errorf("5 should be unreachable (peer route not exported to peers), got len %d", r.ShortestLen(5))
	}
}

func TestProviderRoutePropagatation(t *testing.T) {
	g := line()
	g.Set(4, 2, topology.RelPeer)
	g.Set(4, 5, topology.RelCustomer) // 5 is 4's customer
	r := Compute(g, 1)
	// 5 hears 4's peer route as a provider route: len 3.
	if got := r.ClassLen(5, topology.RelProvider); got != 3 {
		t.Errorf("ClassLen(5, provider) = %d, want 3", got)
	}
	if r.BestRank(5) != 2 {
		t.Errorf("BestRank(5) = %d, want 2", r.BestRank(5))
	}
}

func TestProviderChainsExtend(t *testing.T) {
	g := line()
	g.Set(4, 2, topology.RelPeer)
	g.Set(4, 5, topology.RelCustomer)
	g.Set(5, 6, topology.RelCustomer) // 6 under 5
	r := Compute(g, 1)
	if got := r.ClassLen(6, topology.RelProvider); got != 4 {
		t.Errorf("ClassLen(6, provider) = %d, want 4", got)
	}
}

func TestBestRankPrefersCheapestClass(t *testing.T) {
	// AS 10 has: customer route (long), peer route (short).
	g := relgraph.New()
	g.Set(10, 11, topology.RelCustomer)
	g.Set(11, 12, topology.RelCustomer)
	g.Set(12, 1, topology.RelCustomer) // customer chain length 3
	g.Set(10, 20, topology.RelPeer)
	g.Set(20, 1, topology.RelCustomer) // peer route length 2
	r := Compute(g, 1)
	if r.BestRank(10) != 0 {
		t.Errorf("BestRank = %d; the customer class is available and must rank best", r.BestRank(10))
	}
	if r.ClassLen(10, topology.RelCustomer) != 3 {
		t.Errorf("customer len = %d", r.ClassLen(10, topology.RelCustomer))
	}
	if r.ClassLen(10, topology.RelPeer) != 2 {
		t.Errorf("peer len = %d", r.ClassLen(10, topology.RelPeer))
	}
	if r.ShortestLen(10) != 2 {
		t.Errorf("ShortestLen = %d, want 2 (via peer)", r.ShortestLen(10))
	}
}

func TestMaskedEdge(t *testing.T) {
	g := line()
	r := Compute(g, 1, relgraph.Edge{A: 2, B: 1})
	if r.Reachable(2) || r.Reachable(3) {
		t.Error("masking the only edge to the destination must cut reachability")
	}
}

func TestUnknownASUnreachable(t *testing.T) {
	r := Compute(line(), 1)
	if r.Reachable(999) {
		t.Error("an AS absent from the graph cannot be reachable")
	}
	if r.BestRank(999) != 3 {
		t.Errorf("BestRank(999) = %d, want 3", r.BestRank(999))
	}
	if r.ClassLen(999, topology.RelNone) != Unreachable {
		t.Error("ClassLen with RelNone must be Unreachable")
	}
}

func TestSiblingEdgesAreFreeTransit(t *testing.T) {
	g := relgraph.New()
	g.Set(2, 1, topology.RelCustomer) // 1 customer of 2
	g.Set(2, 3, topology.RelSibling)  // 2 and 3 siblings
	g.Set(3, 4, topology.RelPeer)     // 3 peers with 4 — wait, we want 4 reaching 1
	r := Compute(g, 1)
	// 3 reaches 1 through its sibling's customer route.
	if got := r.ClassLen(3, topology.RelSibling); got != 2 {
		t.Errorf("ClassLen(3, sibling) = %d, want 2", got)
	}
	// 4 hears it as a peer route relayed across the sibling: valley-free
	// because sibling routes count as customer routes.
	if got := r.ClassLen(4, topology.RelPeer); got != 3 {
		t.Errorf("ClassLen(4, peer) = %d, want 3", got)
	}
}

// The model must agree with the ground-truth engine on a policy-free
// topology: every ground-truth path's length equals the model's class
// length for the relationship actually used, and the ground-truth next
// hop's class never beats the model's BestRank.
func TestModelMatchesEngineOnPlainTopology(t *testing.T) {
	cfg := topology.TestConfig()
	cfg.HybridLinkRate = 0
	cfg.PartialTransitRate = 0
	cfg.SelectiveExportRate = 0
	cfg.DomesticBiasRate = 0
	cfg.SiblingGroups = 0
	topo := topology.Generate(3, cfg)
	e := bgp.New(topo, 3)
	g := relgraph.FromTopology(topo)

	checked := 0
	for _, p := range topo.OriginatedPrefixes() {
		if checked >= 6 {
			break
		}
		origin := topo.OriginOf(p)
		if topo.AS(origin).ResearchPreference {
			continue // universities still run research preference
		}
		checked++
		res := Compute(g, origin)
		routes := e.ComputePrefix(p)
		for a, rt := range routes {
			if rt.IsOrigin() {
				continue
			}
			if topo.AS(a).ResearchPreference {
				continue
			}
			modelBest := res.BestRank(a)
			chosen := rt.FromRel.Rank()
			if chosen < modelBest {
				t.Fatalf("%s chose class rank %d but model says best available is %d", a, chosen, modelBest)
			}
			if chosen > modelBest {
				t.Fatalf("%s (no policies!) chose class rank %d worse than model best %d (route %v)",
					a, chosen, modelBest, rt)
			}
			// The ground-truth path cannot be shorter than the model's
			// shortest for its class.
			if cl := res.ClassLen(a, rt.FromRel); rt.Path.Len() < cl {
				t.Fatalf("%s ground path len %d < model class len %d", a, rt.Path.Len(), cl)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no prefixes checked")
	}
}

func TestGraphBasics(t *testing.T) {
	g := relgraph.New()
	g.Set(1, 2, topology.RelCustomer)
	if g.Rel(1, 2) != topology.RelCustomer || g.Rel(2, 1) != topology.RelProvider {
		t.Error("Set must record both directions")
	}
	if !g.HasEdge(1, 2) || g.HasEdge(1, 3) {
		t.Error("HasEdge misbehaves")
	}
	g.Set(1, 3, topology.RelPeer)
	if n := g.Neighbors(1); len(n) != 2 || n[0] != 2 || n[1] != 3 {
		t.Errorf("Neighbors = %v", n)
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
	cl := g.Clone()
	cl.Remove(1, 2)
	if !g.HasEdge(1, 2) {
		t.Error("Clone is not independent")
	}
	if cl.HasEdge(1, 2) || cl.Rel(2, 1) != topology.RelNone {
		t.Error("Remove must delete both directions")
	}
	edges := g.Edges()
	if len(edges) != 2 || edges[0].A != 1 || edges[0].B != 2 {
		t.Errorf("Edges = %v", edges)
	}
	asns := g.ASNs()
	if len(asns) != 3 || asns[0] != asn.ASN(1) {
		t.Errorf("ASNs = %v", asns)
	}
}
