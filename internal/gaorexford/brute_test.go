package gaorexford

import (
	"math/rand"
	"testing"

	"routelab/internal/asn"
	"routelab/internal/relgraph"
	"routelab/internal/topology"
)

// bruteForce enumerates ALL export-legal paths from every AS to dst by
// BFS over (AS, class) states — an independent, obviously-correct (if
// slow) reimplementation of the model used to cross-check the
// production Dijkstra on random graphs.
func bruteForce(g *relgraph.Graph, dst asn.ASN) map[asn.ASN][3]int {
	const inf = int(Unreachable)
	dist := map[asn.ASN][3]int{}
	get := func(a asn.ASN) [3]int {
		if d, ok := dist[a]; ok {
			return d
		}
		return [3]int{inf, inf, inf}
	}
	set := func(a asn.ASN, cls, v int) bool {
		d := get(a)
		if d[cls] <= v {
			return false
		}
		d[cls] = v
		dist[a] = d
		return true
	}
	set(dst, 0, 0)
	// Bellman-Ford style sweeps until fixpoint: slow but simple.
	for changed := true; changed; {
		changed = false
		for _, a := range g.ASNs() {
			da := get(a)
			for _, b := range g.Neighbors(a) {
				rel := g.Rel(b, a) // a's role from b's perspective
				for cls := 0; cls < 3; cls++ {
					if da[cls] >= inf {
						continue
					}
					v := da[cls] + 1
					switch rel {
					case topology.RelCustomer:
						if cls == 0 && set(b, 0, v) {
							changed = true
						}
					case topology.RelSibling:
						if set(b, cls, v) {
							changed = true
						}
					case topology.RelPeer:
						if cls == 0 && set(b, 1, v) {
							changed = true
						}
					case topology.RelProvider:
						if set(b, 2, v) {
							changed = true
						}
					}
				}
			}
		}
	}
	return dist
}

func TestComputeMatchesBruteForce(t *testing.T) {
	roles := []topology.Rel{topology.RelCustomer, topology.RelProvider, topology.RelPeer, topology.RelSibling}
	classRel := []topology.Rel{topology.RelCustomer, topology.RelPeer, topology.RelProvider}
	for trial := 0; trial < 60; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		g := relgraph.New()
		nAS := 5 + rng.Intn(12)
		nEdges := nAS + rng.Intn(nAS*2)
		for i := 0; i < nEdges; i++ {
			a := asn.ASN(1 + rng.Intn(nAS))
			b := asn.ASN(1 + rng.Intn(nAS))
			if a == b {
				continue
			}
			g.Set(a, b, roles[rng.Intn(len(roles))])
		}
		dst := asn.ASN(1 + rng.Intn(nAS))
		want := bruteForce(g, dst)
		got := Compute(g, dst)
		for _, a := range g.ASNs() {
			for cls := 0; cls < 3; cls++ {
				wv := int(Unreachable)
				if d, ok := want[a]; ok {
					wv = d[cls]
				}
				gv := got.ClassLen(a, classRel[cls])
				if gv != wv {
					t.Fatalf("trial %d: dst=%v as=%v class=%d: got %d want %d",
						trial, dst, a, cls, gv, wv)
				}
			}
		}
	}
}

// Property: ShortestPath, when it exists, has exactly ShortestLen edges,
// starts at the queried AS, ends at the destination, and every hop is a
// graph adjacency.
func TestShortestPathConsistency(t *testing.T) {
	roles := []topology.Rel{topology.RelCustomer, topology.RelProvider, topology.RelPeer, topology.RelSibling}
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		g := relgraph.New()
		nAS := 5 + rng.Intn(12)
		for i := 0; i < nAS*2; i++ {
			a := asn.ASN(1 + rng.Intn(nAS))
			b := asn.ASN(1 + rng.Intn(nAS))
			if a != b {
				g.Set(a, b, roles[rng.Intn(len(roles))])
			}
		}
		dst := asn.ASN(1 + rng.Intn(nAS))
		res := Compute(g, dst)
		for _, a := range g.ASNs() {
			if !res.Reachable(a) || a == dst {
				continue
			}
			path := res.ShortestPath(g, a)
			if path == nil {
				t.Fatalf("trial %d: %v reachable but no path", trial, a)
			}
			if path[0] != a || path[len(path)-1] != dst {
				t.Fatalf("trial %d: path endpoints %v", trial, path)
			}
			if len(path)-1 != res.ShortestLen(a) {
				t.Fatalf("trial %d: path len %d != ShortestLen %d (%v)",
					trial, len(path)-1, res.ShortestLen(a), path)
			}
			for i := 0; i+1 < len(path); i++ {
				if !g.HasEdge(path[i], path[i+1]) {
					t.Fatalf("trial %d: phantom hop %v-%v", trial, path[i], path[i+1])
				}
			}
		}
	}
}
