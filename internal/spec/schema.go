package spec

import (
	"fmt"
	"math"

	"routelab/internal/scenario"
)

// fieldKind classifies a schema field for validation and resolution.
type fieldKind int

const (
	// kindCount is a non-negative integer (AS class sizes, probe
	// counts, epoch counts). Ranges draw inclusively.
	kindCount fieldKind = iota
	// kindRate is a probability in [0, 1].
	kindRate
	// kindScale is a non-negative float (topology.scale).
	kindScale
	// kindSeed is an integer sub-seed; ranges are rejected (a rolled
	// seed would hide the thing that makes a run reproducible).
	kindSeed
)

// fieldDef binds one spec document path to its kind and its slot in
// scenario.Config. The table is the single source of truth: decode,
// Validate, Compile, and the SCENARIOS.md reference all follow it.
type fieldDef struct {
	path string
	kind fieldKind
	set  func(cfg *scenario.Config, n *Num, seed int64)
}

// newIntDef/newFloatDef/newSeedDef build definitions whose writers
// capture the field path once, for range resolution.

func newIntDef(path string, kind fieldKind, dst func(*scenario.Config) *int) fieldDef {
	return fieldDef{path: path, kind: kind, set: func(cfg *scenario.Config, n *Num, seed int64) {
		*dst(cfg) = n.Int(seed, path)
	}}
}

func newFloatDef(path string, kind fieldKind, dst func(*scenario.Config) *float64) fieldDef {
	return fieldDef{path: path, kind: kind, set: func(cfg *scenario.Config, n *Num, seed int64) {
		*dst(cfg) = n.Float(seed, path)
	}}
}

func newSeedDef(path string, dst func(*scenario.Config) *int64) fieldDef {
	return fieldDef{path: path, kind: kindSeed, set: func(cfg *scenario.Config, n *Num, seed int64) {
		*dst(cfg) = int64(math.Round(n.Literal))
	}}
}

// schema lists every overridable field in document order: the
// topology section (class counts and structure), the policy section
// (the paper's phenomenon rates), the campaign section (measurement
// campaign sizing), and the measurement section (data-plane artifact
// and geolocation error models).
var schema = []fieldDef{
	// topology — how big the synthetic Internet is.
	newFloatDef("topology.scale", kindScale, func(c *scenario.Config) *float64 { return &c.Topology.Scale }),
	newIntDef("topology.tier1s", kindCount, func(c *scenario.Config) *int { return &c.Topology.NumTier1 }),
	newIntDef("topology.large_isps", kindCount, func(c *scenario.Config) *int { return &c.Topology.NumLargeISP }),
	newIntDef("topology.small_isps", kindCount, func(c *scenario.Config) *int { return &c.Topology.NumSmallISP }),
	newIntDef("topology.stubs", kindCount, func(c *scenario.Config) *int { return &c.Topology.NumStub }),
	newIntDef("topology.content", kindCount, func(c *scenario.Config) *int { return &c.Topology.NumContent }),
	newIntDef("topology.cable_ops", kindCount, func(c *scenario.Config) *int { return &c.Topology.NumCableOps }),
	newIntDef("topology.content_majors", kindCount, func(c *scenario.Config) *int { return &c.Topology.NumContentMajors }),
	newIntDef("topology.hostnames", kindCount, func(c *scenario.Config) *int { return &c.Topology.NumHostnames }),
	newIntDef("topology.cdn_caches", kindCount, func(c *scenario.Config) *int { return &c.Topology.NumCDNCaches }),
	newIntDef("topology.sibling_groups", kindCount, func(c *scenario.Config) *int { return &c.Topology.SiblingGroups }),
	newIntDef("topology.retired_links", kindCount, func(c *scenario.Config) *int { return &c.Topology.RetiredLinkCount }),

	// policy — the rates of the routing-policy phenomena the paper
	// investigates (all probabilities in [0, 1]).
	newFloatDef("policy.sibling_freemail_rate", kindRate, func(c *scenario.Config) *float64 { return &c.Topology.SiblingFreemailRate }),
	newFloatDef("policy.hybrid_link_rate", kindRate, func(c *scenario.Config) *float64 { return &c.Topology.HybridLinkRate }),
	newFloatDef("policy.partial_transit_rate", kindRate, func(c *scenario.Config) *float64 { return &c.Topology.PartialTransitRate }),
	newFloatDef("policy.selective_export_rate", kindRate, func(c *scenario.Config) *float64 { return &c.Topology.SelectiveExportRate }),
	newFloatDef("policy.content_selective_rate", kindRate, func(c *scenario.Config) *float64 { return &c.Topology.ContentSelectiveRate }),
	newFloatDef("policy.cache_selective_rate", kindRate, func(c *scenario.Config) *float64 { return &c.Topology.CacheSelectiveRate }),
	newFloatDef("policy.domestic_bias_rate", kindRate, func(c *scenario.Config) *float64 { return &c.Topology.DomesticBiasRate }),
	newFloatDef("policy.content_peer_te_rate", kindRate, func(c *scenario.Config) *float64 { return &c.Topology.ContentPeerTERate }),
	newFloatDef("policy.as_set_filter_rate", kindRate, func(c *scenario.Config) *float64 { return &c.Topology.ASSetFilterRate }),
	newFloatDef("policy.no_loop_prevention_rate", kindRate, func(c *scenario.Config) *float64 { return &c.Topology.NoLoopPreventionRate }),

	// campaign — how the world is measured.
	newIntDef("campaign.vantage_peers", kindCount, func(c *scenario.Config) *int { return &c.NumVantagePeers }),
	newIntDef("campaign.historic_epochs", kindCount, func(c *scenario.Config) *int { return &c.HistoricEpochs }),
	newIntDef("campaign.current_epochs", kindCount, func(c *scenario.Config) *int { return &c.CurrentEpochs }),
	newIntDef("campaign.probes", kindCount, func(c *scenario.Config) *int { return &c.NumProbes }),
	newIntDef("campaign.traces", kindCount, func(c *scenario.Config) *int { return &c.TracesTarget }),
	newIntDef("campaign.active_probes", kindCount, func(c *scenario.Config) *int { return &c.ActiveProbes }),
	newIntDef("campaign.planetlab_nodes", kindCount, func(c *scenario.Config) *int { return &c.PlanetLabNodes }),
	newIntDef("campaign.max_alternate_targets", kindCount, func(c *scenario.Config) *int { return &c.MaxAlternateTargets }),
	newFloatDef("campaign.complex_coverage", kindRate, func(c *scenario.Config) *float64 { return &c.ComplexCoverage }),

	// measurement — data-plane artifact rates and the geolocation
	// error model.
	newFloatDef("measurement.no_reply_rate", kindRate, func(c *scenario.Config) *float64 { return &c.Traceroute.NoReplyRate }),
	newFloatDef("measurement.third_party_rate", kindRate, func(c *scenario.Config) *float64 { return &c.Traceroute.ThirdPartyRate }),
	newFloatDef("measurement.ixp_rate", kindRate, func(c *scenario.Config) *float64 { return &c.Traceroute.IXPRate }),
	newIntDef("measurement.max_hops", kindCount, func(c *scenario.Config) *int { return &c.Traceroute.MaxHops }),
	newSeedDef("measurement.trace_seed", func(c *scenario.Config) *int64 { return &c.Traceroute.Seed }),
	newFloatDef("measurement.geo_miss_rate", kindRate, func(c *scenario.Config) *float64 { return &c.GeoDB.MissRate }),
	newFloatDef("measurement.geo_wrong_city_rate", kindRate, func(c *scenario.Config) *float64 { return &c.GeoDB.WrongCityRate }),
	newSeedDef("measurement.geo_seed", func(c *scenario.Config) *int64 { return &c.GeoDB.Seed }),
}

// schemaIndex resolves a dotted path to its definition.
var schemaIndex = func() map[string]*fieldDef {
	idx := make(map[string]*fieldDef, len(schema))
	for i := range schema {
		idx[schema[i].path] = &schema[i]
	}
	return idx
}()

// Sections are the top-level section keys, in document order.
var Sections = []string{"topology", "policy", "campaign", "measurement"}

// check validates one explicit value against the field's kind rules.
func (d *fieldDef) check(path string, n *Num) error {
	bad := func(v any, reason string) error {
		return &FieldError{Path: path, Value: v, Reason: reason}
	}
	if n.Ranged {
		if d.kind == kindSeed {
			return bad(fmt.Sprintf("{min: %v, max: %v}", n.Min, n.Max),
				"seeds cannot be ranged; a rolled seed would make the run irreproducible")
		}
		if n.Min > n.Max {
			return bad(fmt.Sprintf("{min: %v, max: %v}", n.Min, n.Max), "range needs min <= max")
		}
	}
	each := func(v float64) error {
		switch d.kind {
		case kindCount:
			if v != math.Trunc(v) {
				return bad(v, "must be an integer")
			}
			if v < 0 {
				return bad(v, "must be >= 0")
			}
		case kindRate:
			if v < 0 || v > 1 {
				return bad(v, "is a probability in [0, 1]")
			}
		case kindScale:
			if v < 0 {
				return bad(v, "must be >= 0")
			}
		case kindSeed:
			if v != math.Trunc(v) {
				return bad(v, "must be an integer")
			}
		}
		return nil
	}
	if n.Ranged {
		if err := each(n.Min); err != nil {
			return err
		}
		return each(n.Max)
	}
	return each(n.Literal)
}
