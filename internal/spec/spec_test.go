package spec

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"routelab/internal/scenario"
)

func mustParse(t *testing.T, doc string, overlays ...string) *Spec {
	t.Helper()
	s, err := Parse("inline.yaml", []byte(doc), "yaml", overlays)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestProfileDefaults(t *testing.T) {
	s := mustParse(t, "spec: routelab-spec/v1\nname: bare\n")
	cfg, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cfg, scenario.DefaultConfig()) {
		t.Error("empty spec with implicit paper profile should compile to DefaultConfig")
	}

	s = mustParse(t, "spec: routelab-spec/v1\nname: bare\nprofile: test\n")
	cfg, err = s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cfg, scenario.TestConfig()) {
		t.Error("profile test should compile to TestConfig")
	}
}

func TestFieldOverrides(t *testing.T) {
	s := mustParse(t, `
spec: routelab-spec/v1
name: overrides
profile: test
seed: 99
workers: 3
topology:
  tier1s: 7
  scale: 0.4
policy:
  hybrid_link_rate: 0.25
campaign:
  probes: 123
measurement:
  max_hops: 40
  trace_seed: 777
`)
	cfg, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	want := scenario.TestConfig()
	want.Seed = 99
	want.RoutingWorkers = 3
	want.Topology.NumTier1 = 7
	want.Topology.Scale = 0.4
	want.Topology.HybridLinkRate = 0.25
	want.NumProbes = 123
	want.Traceroute.MaxHops = 40
	want.Traceroute.Seed = 777
	if !reflect.DeepEqual(cfg, want) {
		t.Errorf("compiled config mismatch:\n got %+v\nwant %+v", cfg, want)
	}
}

func TestRangedFieldsDeterministic(t *testing.T) {
	doc := `
spec: routelab-spec/v1
name: ranged
profile: test
seed: 42
topology:
  tier1s: {min: 5, max: 9}
policy:
  hybrid_link_rate: {min: 0.1, max: 0.3}
`
	a, err := mustParse(t, doc).Compile()
	if err != nil {
		t.Fatal(err)
	}
	b, err := mustParse(t, doc).Compile()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same document must compile identically twice")
	}
	if a.Topology.NumTier1 < 5 || a.Topology.NumTier1 > 9 {
		t.Errorf("ranged tier1s = %d, want in [5, 9]", a.Topology.NumTier1)
	}
	if a.Topology.HybridLinkRate < 0.1 || a.Topology.HybridLinkRate > 0.3 {
		t.Errorf("ranged hybrid rate = %v, want in [0.1, 0.3]", a.Topology.HybridLinkRate)
	}

	// A different seed re-rolls the draws (with overwhelming likelihood
	// at least one of the two fields moves).
	c, err := mustParse(t, strings.Replace(doc, "seed: 42", "seed: 43", 1)).Compile()
	if err != nil {
		t.Fatal(err)
	}
	if c.Topology.NumTier1 == a.Topology.NumTier1 && c.Topology.HybridLinkRate == a.Topology.HybridLinkRate {
		t.Error("changing the seed left every ranged field unchanged")
	}
}

func TestResolveFracBounds(t *testing.T) {
	paths := []string{"topology.tier1s", "policy.hybrid_link_rate", "campaign.probes", "x"}
	for seed := int64(-3); seed < 50; seed++ {
		for _, p := range paths {
			f := resolveFrac(seed, p)
			if f < 0 || f >= 1 {
				t.Fatalf("resolveFrac(%d, %q) = %v, want [0, 1)", seed, p, f)
			}
		}
	}
	// Int draws must cover the full inclusive range and never escape it.
	n := &Num{Min: 2, Max: 4, Ranged: true}
	seen := map[int]bool{}
	for seed := int64(0); seed < 200; seed++ {
		v := n.Int(seed, "campaign.probes")
		if v < 2 || v > 4 {
			t.Fatalf("Int draw %d escapes {2, 3, 4}", v)
		}
		seen[v] = true
	}
	if len(seen) != 3 {
		t.Errorf("200 seeds drew only %v from {2, 3, 4}", seen)
	}
}

func TestOverlays(t *testing.T) {
	doc := `
spec: routelab-spec/v1
name: layered
profile: test
campaign:
  probes: 100
  traces: 1000
overlays:
  more-probes:
    campaign:
      probes: 500
  more-traces:
    campaign:
      traces: 9000
  drop-probes:
    campaign:
      probes: null
`
	// No overlays: base values.
	cfg, err := mustParse(t, doc).Compile()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NumProbes != 100 || cfg.TracesTarget != 1000 {
		t.Errorf("base: probes=%d traces=%d", cfg.NumProbes, cfg.TracesTarget)
	}

	// Caller-selected overlays compose, later wins on conflicts.
	cfg, err = mustParse(t, doc, "more-probes", "more-traces").Compile()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NumProbes != 500 || cfg.TracesTarget != 9000 {
		t.Errorf("overlaid: probes=%d traces=%d", cfg.NumProbes, cfg.TracesTarget)
	}

	// A null in a patch deletes the key, falling back to the profile.
	cfg, err = mustParse(t, doc, "drop-probes").Compile()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NumProbes != scenario.TestConfig().NumProbes {
		t.Errorf("null override: probes=%d, want profile default %d",
			cfg.NumProbes, scenario.TestConfig().NumProbes)
	}

	// Applied records the selection in order.
	s := mustParse(t, doc, "more-traces", "more-probes")
	if !reflect.DeepEqual(s.Applied, []string{"more-traces", "more-probes"}) {
		t.Errorf("Applied = %v", s.Applied)
	}
}

func TestOverlayOrderMatters(t *testing.T) {
	doc := `
spec: routelab-spec/v1
name: order
profile: test
overlays:
  a:
    campaign:
      probes: 111
  b:
    campaign:
      probes: 222
`
	ab, err := mustParse(t, doc, "a", "b").Compile()
	if err != nil {
		t.Fatal(err)
	}
	ba, err := mustParse(t, doc, "b", "a").Compile()
	if err != nil {
		t.Fatal(err)
	}
	if ab.NumProbes != 222 || ba.NumProbes != 111 {
		t.Errorf("overlay order: a,b→%d b,a→%d (want 222 / 111)", ab.NumProbes, ba.NumProbes)
	}
}

func TestInvalidFixtures(t *testing.T) {
	cases := []struct {
		file     string
		overlays []string
		wantMsg  string // substring of the error
		wantType string // "field" or "parse"
	}{
		{"bad-version.yaml", nil, "unsupported spec version", "field"},
		{"bad-name.yaml", nil, "must match [a-z0-9]", "field"},
		{"unknown-field.yaml", nil, "unknown field", "field"},
		{"unknown-section.yaml", nil, "unknown field", "field"},
		{"bad-rate.yaml", nil, "probability in [0, 1]", "field"},
		{"bad-range.yaml", nil, "min <= max", "field"},
		{"seed-range.yaml", nil, "seeds cannot be ranged", "field"},
		{"count-float.yaml", nil, "must be an integer", "field"},
		{"negative-count.yaml", nil, "must be >= 0", "field"},
		{"bad-profile.yaml", nil, "unknown profile", "field"},
		{"overlay-unknown.yaml", nil, "overlay not defined", "field"},
		{"overlay-banned.yaml", nil, "cannot change the document's identity", "field"},
		{"overlay-dup.yaml", nil, "overlay applied twice", "field"},
		{"tab.yaml", nil, "tab in indentation", "parse"},
		{"cycle-a.yaml", nil, "base chain forms a cycle", "parse"},
		{"bad-version.yaml", []string{"ghost"}, "overlay not defined", "field"},
	}
	for _, tc := range cases {
		path := filepath.Join("testdata", "invalid", tc.file)
		_, err := Load(path, tc.overlays)
		if err == nil {
			t.Errorf("%s (overlays %v): accepted, want error", tc.file, tc.overlays)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantMsg) {
			t.Errorf("%s: error %q does not contain %q", tc.file, err, tc.wantMsg)
		}
		var fe *FieldError
		var pe *ParseError
		switch tc.wantType {
		case "field":
			if !errors.As(err, &fe) {
				t.Errorf("%s: error is not a *FieldError: %v", tc.file, err)
			}
		case "parse":
			if !errors.As(err, &pe) {
				t.Errorf("%s: error is not a *ParseError: %v", tc.file, err)
			}
		}
	}
}

func TestAllProblemsReportedTogether(t *testing.T) {
	_, err := Parse("multi.yaml", []byte(`
spec: routelab-spec/v1
name: multi
topology:
  tier1s: -1
policy:
  hybrid_link_rate: 2.0
`), "yaml", nil)
	if err == nil {
		t.Fatal("two bad fields accepted")
	}
	for _, want := range []string{"topology.tier1s", "policy.hybrid_link_rate"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error %q misses %s", err, want)
		}
	}
}

func TestBaseChain(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	write("base.yaml", `
spec: routelab-spec/v1
name: base
profile: test
campaign:
  probes: 100
  traces: 1000
overlays:
  inherited:
    campaign:
      traces: 5000
`)
	child := write("child.yaml", `
base: ./base.yaml
name: child
campaign:
  probes: 250
`)
	s, err := Load(child, []string{"inherited"})
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "child" {
		t.Errorf("name = %q, want child (child wins)", s.Name)
	}
	cfg, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	// probes from the child, traces via the base's overlay, profile
	// inherited from the base.
	if cfg.NumProbes != 250 || cfg.TracesTarget != 5000 {
		t.Errorf("probes=%d traces=%d, want 250/5000", cfg.NumProbes, cfg.TracesTarget)
	}
	if cfg.Seed != scenario.TestConfig().Seed {
		t.Errorf("profile not inherited from base: seed=%d", cfg.Seed)
	}
}

func TestParseRejectsBase(t *testing.T) {
	_, err := Parse("x.yaml", []byte("base: ./a.yaml\nname: x\n"), "yaml", nil)
	if err == nil || !strings.Contains(err.Error(), "use Load") {
		t.Errorf("Parse with base: err = %v", err)
	}
}

func TestJSONAndYAMLEquivalent(t *testing.T) {
	yml := `
spec: routelab-spec/v1
name: twin
profile: test
seed: 7
topology:
  tier1s: 8
policy:
  hybrid_link_rate: 0.2
`
	jsn := `{
  "spec": "routelab-spec/v1",
  "name": "twin",
  "profile": "test",
  "seed": 7,
  "topology": {"tier1s": 8},
  "policy": {"hybrid_link_rate": 0.2}
}`
	a, err := Parse("twin.yaml", []byte(yml), "yaml", nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse("twin.json", []byte(jsn), "json", nil)
	if err != nil {
		t.Fatal(err)
	}
	ca, err := a.Compile()
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ca, cb) {
		t.Error("YAML and JSON twins compiled differently")
	}
}

func TestConcurrentExpansion(t *testing.T) {
	// Overlay application deep-merges shared parsed documents; expanding
	// the same spec from many goroutines must be race-free (run under
	// -race) and byte-identical.
	path := filepath.Join("..", "..", "scenarios", "valley-heavy.yaml")
	want, err := Expand(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, err := want.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	results := make([][]byte, n)
	errs := make([]error, n)
	done := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer func() { done <- i }()
			e, err := Expand(path, nil)
			if err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = e.MarshalCanonical()
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if string(results[i]) != string(wantBytes) {
			t.Fatalf("goroutine %d produced different bytes", i)
		}
	}
}

func TestDiff(t *testing.T) {
	a, err := Expand(filepath.Join("..", "..", "scenarios", "test.yaml"), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Expand(filepath.Join("..", "..", "scenarios", "valley-heavy.yaml"), nil)
	if err != nil {
		t.Fatal(err)
	}
	same, err := Diff(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if len(same) != 0 {
		t.Errorf("self-diff produced %v", same)
	}
	lines, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Fatal("test vs valley-heavy: no differences reported")
	}
	found := false
	for _, l := range lines {
		if strings.HasPrefix(l, "Topology.HybridLinkRate: ") {
			found = true
		}
	}
	if !found {
		t.Errorf("diff lines %v miss Topology.HybridLinkRate", lines)
	}
}
