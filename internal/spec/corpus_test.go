package spec

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"routelab/internal/scenario"
)

const corpusDir = "../../scenarios"

// corpusFiles lists the spec documents under scenarios/ (not the
// goldens).
func corpusFiles(t *testing.T) []string {
	t.Helper()
	entries, err := os.ReadDir(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		ext := filepath.Ext(e.Name())
		if ext == ".yaml" || ext == ".yml" || ext == ".json" {
			files = append(files, e.Name())
		}
	}
	sort.Strings(files)
	if len(files) < 12 {
		t.Fatalf("corpus has %d specs, want at least 12", len(files))
	}
	return files
}

// TestCorpusExpandsDeterministically is the determinism contract for
// the corpus: every spec loads, compiles, and produces byte-identical
// canonical output when expanded twice.
func TestCorpusExpandsDeterministically(t *testing.T) {
	for _, file := range corpusFiles(t) {
		path := filepath.Join(corpusDir, file)
		first, err := Expand(path, nil)
		if err != nil {
			t.Errorf("%s: %v", file, err)
			continue
		}
		a, err := first.MarshalCanonical()
		if err != nil {
			t.Errorf("%s: %v", file, err)
			continue
		}
		second, err := Expand(path, nil)
		if err != nil {
			t.Errorf("%s: re-expand: %v", file, err)
			continue
		}
		b, err := second.MarshalCanonical()
		if err != nil {
			t.Errorf("%s: %v", file, err)
			continue
		}
		if string(a) != string(b) {
			t.Errorf("%s: two expansions differ", file)
		}
	}
}

// TestCorpusMatchesGoldens re-runs scengen check's comparison inside go
// test, so `go test ./...` alone catches a drifted corpus. Regenerate
// with: go run ./cmd/scengen -update check scenarios
func TestCorpusMatchesGoldens(t *testing.T) {
	for _, file := range corpusFiles(t) {
		e, err := Expand(filepath.Join(corpusDir, file), nil)
		if err != nil {
			t.Errorf("%s: %v", file, err)
			continue
		}
		// scengen check normalizes Source so goldens are cwd-independent.
		e.Source = "scenarios/" + file
		got, err := e.MarshalCanonical()
		if err != nil {
			t.Errorf("%s: %v", file, err)
			continue
		}
		goldenPath := filepath.Join(corpusDir, "golden", e.Name+".json")
		want, err := os.ReadFile(goldenPath)
		if err != nil {
			t.Errorf("%s: missing golden (run: go run ./cmd/scengen -update check scenarios): %v", file, err)
			continue
		}
		if string(got) != string(want) {
			t.Errorf("%s: expansion differs from %s (regenerate with scengen -update check)", file, goldenPath)
		}
	}
}

// TestCorpusNamesUnique: goldens are keyed by spec name, so the corpus
// cannot contain two documents with the same name.
func TestCorpusNamesUnique(t *testing.T) {
	seen := map[string]string{}
	for _, file := range corpusFiles(t) {
		s, err := Load(filepath.Join(corpusDir, file), nil)
		if err != nil {
			t.Errorf("%s: %v", file, err)
			continue
		}
		if prev, dup := seen[s.Name]; dup {
			t.Errorf("name %q claimed by both %s and %s", s.Name, prev, file)
		}
		seen[s.Name] = file
	}
}

// TestPaperSpecMatchesDefaultConfig pins the acceptance criterion: the
// canonical corpus entry compiles to exactly the hand-built
// DefaultConfig, so a scenario built from scenarios/paper.yaml leaves
// the 14 experiment goldens byte-identical to the default run.
func TestPaperSpecMatchesDefaultConfig(t *testing.T) {
	e, err := Expand(filepath.Join(corpusDir, "paper.yaml"), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := scenario.DefaultConfig()
	if !reflect.DeepEqual(e.Config, want) {
		lines, _ := Diff(e, &Expansion{Config: want})
		t.Fatalf("paper.yaml no longer compiles to scenario.DefaultConfig():\n  %s",
			strings.Join(lines, "\n  "))
	}
}

// TestTestSpecMatchesTestConfig: same pin for the test-profile twin,
// which the spec-layer tests and docs lean on.
func TestTestSpecMatchesTestConfig(t *testing.T) {
	e, err := Expand(filepath.Join(corpusDir, "test.yaml"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(e.Config, scenario.TestConfig()) {
		t.Fatal("test.yaml no longer compiles to scenario.TestConfig()")
	}
}
