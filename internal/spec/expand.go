package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"routelab/internal/scenario"
)

// Expansion is the versioned envelope cmd/scengen emits for a compiled
// spec ("routelab-scengen/v1") and the shape pinned byte-for-byte by
// the scenarios/golden corpus dumps: which document, which overlays,
// and the exact sealed Config it compiles to.
type Expansion struct {
	SpecVersion string          `json:"spec"`
	Name        string          `json:"name"`
	Description string          `json:"description,omitempty"`
	Source      string          `json:"source,omitempty"`
	Profile     string          `json:"profile"`
	Overlays    []string        `json:"overlays"`
	Config      scenario.Config `json:"config"`
}

// Expand loads a spec file, applies the overlay selection, and
// compiles it. This is the one-call path cmd/scengen, cmd/routelab,
// and cmd/routelabd share.
func Expand(path string, overlays []string) (*Expansion, error) {
	s, err := Load(path, overlays)
	if err != nil {
		return nil, err
	}
	return expand(s)
}

// Expansion compiles an already-loaded spec into its versioned
// envelope — the path routelabd's POST /v1/scenarios admission uses,
// where the document arrives as request bytes (via Parse) rather than
// a corpus file.
func (s *Spec) Expansion() (*Expansion, error) { return expand(s) }

func expand(s *Spec) (*Expansion, error) {
	cfg, err := s.Compile()
	if err != nil {
		return nil, err
	}
	profile := s.Profile
	if profile == "" {
		profile = "paper"
	}
	overlays := s.Applied
	if overlays == nil {
		overlays = []string{}
	}
	return &Expansion{
		SpecVersion: ExpansionVersion,
		Name:        s.Name,
		Description: s.Description,
		Source:      s.Source,
		Profile:     profile,
		Overlays:    overlays,
		Config:      cfg,
	}, nil
}

// MarshalCanonical renders the envelope as the canonical indented JSON
// the goldens commit: fixed field order (struct order), two-space
// indent, trailing newline. Byte-identical across runs and platforms.
func (e *Expansion) MarshalCanonical() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(e); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Flatten renders the expansion's Config as sorted "path = value"
// lines ("topology.NumTier1 = 12") — the text output of scengen
// -expand and the vocabulary of Diff.
func (e *Expansion) Flatten() ([]string, error) {
	raw, err := json.Marshal(e.Config)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, err
	}
	flat := map[string]string{}
	flattenInto(flat, "", v)
	keys := make([]string, 0, len(flat))
	for k := range flat {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = k + " = " + flat[k]
	}
	return out, nil
}

func flattenInto(flat map[string]string, prefix string, v any) {
	switch t := v.(type) {
	case map[string]any:
		for _, k := range sortedKeys(t) {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			flattenInto(flat, p, t[k])
		}
	case []any:
		for i, e := range t {
			flattenInto(flat, fmt.Sprintf("%s[%d]", prefix, i), e)
		}
	case json.Number:
		flat[prefix] = t.String()
	case string:
		flat[prefix] = fmt.Sprintf("%q", t)
	default:
		flat[prefix] = fmt.Sprint(t)
	}
}

// Diff compares two expansions' Configs field by field, returning one
// "path: a -> b" line per differing field (empty = identical configs;
// names and provenance are not compared). Missing fields render as
// "<unset>".
func Diff(a, b *Expansion) ([]string, error) {
	fa, err := a.Flatten()
	if err != nil {
		return nil, err
	}
	fb, err := b.Flatten()
	if err != nil {
		return nil, err
	}
	toMap := func(lines []string) map[string]string {
		m := make(map[string]string, len(lines))
		for _, l := range lines {
			if i := strings.Index(l, " = "); i >= 0 {
				m[l[:i]] = l[i+3:]
			}
		}
		return m
	}
	ma, mb := toMap(fa), toMap(fb)
	keys := map[string]bool{}
	for k := range ma {
		keys[k] = true
	}
	for k := range mb {
		keys[k] = true
	}
	ordered := make([]string, 0, len(keys))
	for k := range keys {
		ordered = append(ordered, k)
	}
	sort.Strings(ordered)
	var out []string
	for _, k := range ordered {
		va, okA := ma[k]
		vb, okB := mb[k]
		if okA && okB && va == vb {
			continue
		}
		if !okA {
			va = "<unset>"
		}
		if !okB {
			vb = "<unset>"
		}
		out = append(out, fmt.Sprintf("%s: %s -> %s", k, va, vb))
	}
	return out, nil
}
