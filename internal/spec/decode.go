package spec

import (
	"fmt"
	"math"
	"strings"
)

// decode maps a merged generic document onto a Spec. Unknown top-level
// keys, unknown section fields, and wrongly-typed values are all
// errors — a spec that parses is either fully understood or rejected,
// never silently half-applied. Every problem is reported (joined), so
// an author fixes a document in one round trip.
func decode(doc map[string]any) (*Spec, error) {
	s := &Spec{values: map[string]*Num{}}
	var errs []error
	bad := func(path string, value any, reason string) {
		errs = append(errs, &FieldError{Path: path, Value: value, Reason: reason})
	}

	sectionSet := make(map[string]bool, len(Sections))
	for _, sec := range Sections {
		sectionSet[sec] = true
	}
	for _, key := range sortedKeys(doc) {
		v := doc[key]
		switch key {
		case "spec":
			s.Version, _ = v.(string)
			if _, ok := v.(string); !ok {
				bad("spec", v, "must be a string")
			}
		case "name":
			s.Name, _ = v.(string)
			if _, ok := v.(string); !ok {
				bad("name", v, "must be a string")
			}
		case "description":
			s.Description, _ = v.(string)
			if _, ok := v.(string); !ok {
				bad("description", v, "must be a string")
			}
		case "profile":
			s.Profile, _ = v.(string)
			if _, ok := v.(string); !ok {
				bad("profile", v, "must be a string")
			}
		case "seed":
			if i, ok := asInt64(v); ok {
				s.Seed = &i
			} else {
				bad("seed", v, "must be an integer")
			}
		case "workers":
			if i, ok := asInt64(v); ok {
				w := int(i)
				s.Workers = &w
			} else {
				bad("workers", v, "must be an integer")
			}
		default:
			if !sectionSet[key] {
				bad(key, v, fmt.Sprintf("unknown field (top-level fields: spec, name, description, "+
					"profile, seed, workers, base, overlays, apply, %s)", strings.Join(Sections, ", ")))
				continue
			}
			sec, ok := v.(map[string]any)
			if !ok {
				bad(key, v, "must be a mapping")
				continue
			}
			errs = append(errs, decodeSection(s, key, sec)...)
		}
	}
	if err := joinErrors(errs); err != nil {
		return nil, err
	}
	return s, nil
}

// decodeSection decodes one section's fields against the schema index.
func decodeSection(s *Spec, section string, sec map[string]any) []error {
	var errs []error
	for _, key := range sortedKeys(sec) {
		path := section + "." + key
		if _, known := schemaIndex[path]; !known {
			errs = append(errs, &FieldError{Path: path, Value: sec[key],
				Reason: "unknown field (see SCENARIOS.md for the field reference)"})
			continue
		}
		n, err := parseNum(path, sec[key])
		if err != nil {
			errs = append(errs, err)
			continue
		}
		s.values[path] = n
	}
	return errs
}

// parseNum accepts a numeric literal or a {min, max} range mapping.
func parseNum(path string, v any) (*Num, error) {
	if f, ok := asFloat(v); ok {
		return &Num{Literal: f}, nil
	}
	m, ok := v.(map[string]any)
	if !ok {
		return nil, &FieldError{Path: path, Value: v,
			Reason: "must be a number or a {min, max} range"}
	}
	for _, k := range sortedKeys(m) {
		if k != "min" && k != "max" {
			return nil, &FieldError{Path: path + "." + k, Value: m[k],
				Reason: "ranges take exactly the keys min and max"}
		}
	}
	mn, okMin := asFloat(m["min"])
	mx, okMax := asFloat(m["max"])
	if !okMin || !okMax {
		return nil, &FieldError{Path: path, Value: v,
			Reason: "a range needs numeric min and max"}
	}
	return &Num{Min: mn, Max: mx, Ranged: true}, nil
}

// asFloat widens any parsed numeric to float64.
func asFloat(v any) (float64, bool) {
	switch t := v.(type) {
	case int64:
		return float64(t), true
	case float64:
		return t, true
	default:
		return 0, false
	}
}

// asInt64 accepts integers and integral floats.
func asInt64(v any) (int64, bool) {
	switch t := v.(type) {
	case int64:
		return t, true
	case float64:
		if t == math.Trunc(t) {
			return int64(t), true
		}
	}
	return 0, false
}
