package spec

import (
	"reflect"
	"strings"
	"testing"
)

func TestYAMLSubset(t *testing.T) {
	doc := `
# full-line comment
spec: routelab-spec/v1
name: demo            # trailing comment
description: "a # not-a-comment inside quotes"
seed: -7
profile: 'test'
topology:
  scale: 0.5
  tier1s: 12
  large_isps: {min: 10, max: 20}
policy:
  hybrid_link_rate: 0.05
apply: [a, b]
overlays:
  a:
    campaign:
      probes: 100
`
	got, err := parseYAML("demo.yaml", []byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{
		"spec":        "routelab-spec/v1",
		"name":        "demo",
		"description": "a # not-a-comment inside quotes",
		"seed":        int64(-7),
		"profile":     "test",
		"topology": map[string]any{
			"scale":      0.5,
			"tier1s":     int64(12),
			"large_isps": map[string]any{"min": int64(10), "max": int64(20)},
		},
		"policy":   map[string]any{"hybrid_link_rate": 0.05},
		"apply":    []any{"a", "b"},
		"overlays": map[string]any{"a": map[string]any{"campaign": map[string]any{"probes": int64(100)}}},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parsed doc mismatch:\n got %#v\nwant %#v", got, want)
	}
}

func TestYAMLBlockSequence(t *testing.T) {
	got, err := parseYAML("seq.yaml", []byte("apply:\n  - first\n  - second\n"))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{"apply": []any{"first", "second"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %#v, want %#v", got, want)
	}
	// YAML also allows sequence items at the key's own indent.
	got, err = parseYAML("seq.yaml", []byte("apply:\n- first\n- second\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("same-indent sequence: got %#v, want %#v", got, want)
	}
}

func TestYAMLScalars(t *testing.T) {
	cases := map[string]any{
		"v: null":      nil,
		"v: ~":         nil,
		"v:":           nil,
		"v: true":      true,
		"v: false":     false,
		"v: 42":        int64(42),
		"v: -3":        int64(-3),
		"v: 0.25":      0.25,
		"v: 1e3":       1000.0,
		"v: plain":     "plain",
		`v: "qu#oted"`: "qu#oted",
		"v: 'it''s'":   "it's",
		"v: []":        nil, // empty flow sequence parses to an empty []any (checked below)
	}
	for in, want := range cases {
		doc, err := parseYAML("scalar.yaml", []byte(in))
		if err != nil {
			t.Errorf("%q: %v", in, err)
			continue
		}
		got := doc["v"]
		if in == "v: []" {
			if l, ok := got.([]any); !ok || len(l) != 0 {
				t.Errorf("%q: got %#v, want empty sequence", in, got)
			}
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%q: got %#v (%T), want %#v", in, got, got, want)
		}
	}
}

func TestYAMLErrors(t *testing.T) {
	cases := []struct {
		name, doc, wantMsg string
		wantLine           int
	}{
		{"tab", "a: 1\n\tb: 2\n", "tab in indentation", 2},
		{"dup", "a: 1\na: 2\n", "duplicate key", 2},
		{"seq-of-maps", "xs:\n  - k: v\n", "sequences of mappings", 2},
		{"nested-seq", "xs:\n  -\n", "nested block sequences", 2},
		{"no-colon", "just a line\n", `expected "key: value"`, 1},
		{"bad-indent", "a:\n  b: 1\n    c: 2\n", "unexpected indentation", 3},
		{"anchor", "a: &x 1\n", "unsupported YAML syntax", 1},
		{"unterminated-flow", "a: [1, 2\n", "unterminated flow sequence", 1},
	}
	for _, tc := range cases {
		_, err := parseYAML(tc.name+".yaml", []byte(tc.doc))
		if err == nil {
			t.Errorf("%s: parse accepted %q", tc.name, tc.doc)
			continue
		}
		pe, ok := err.(*ParseError)
		if !ok {
			t.Errorf("%s: error is %T, want *ParseError: %v", tc.name, err, err)
			continue
		}
		if !strings.Contains(pe.Msg, tc.wantMsg) {
			t.Errorf("%s: message %q does not contain %q", tc.name, pe.Msg, tc.wantMsg)
		}
		if pe.Line != tc.wantLine {
			t.Errorf("%s: line %d, want %d", tc.name, pe.Line, tc.wantLine)
		}
	}
}

func TestDeepMerge(t *testing.T) {
	base := map[string]any{
		"a": int64(1),
		"m": map[string]any{"x": int64(1), "y": int64(2)},
		"l": []any{"a", "b"},
	}
	patch := map[string]any{
		"a": int64(9),
		"m": map[string]any{"y": nil, "z": int64(3)},
		"l": []any{"c"},
	}
	got := deepMerge(base, patch).(map[string]any)
	want := map[string]any{
		"a": int64(9),
		"m": map[string]any{"x": int64(1), "z": int64(3)},
		"l": []any{"c"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("merge: got %#v, want %#v", got, want)
	}
	// Inputs untouched.
	if base["a"] != int64(1) || len(base["m"].(map[string]any)) != 2 {
		t.Error("deepMerge mutated its base")
	}
	if patch["m"].(map[string]any)["y"] != nil {
		t.Error("deepMerge mutated its patch")
	}
}
