package spec

// deepMerge merges patch over base, configlet-style (the resolution
// rule newtron's labgen uses for configlets, and the rule SCENARIOS.md
// documents for overlays):
//
//   - mapping ∧ mapping: merge key-by-key, recursively
//   - anything else: the patch value replaces the base value wholesale
//     (sequences are NOT concatenated — an overlay that sets a list
//     owns the whole list)
//   - a null patch value deletes the base key, so an overlay can unset
//     an inherited override and fall back to the profile default
//
// Inputs are never mutated; the result shares no mutable state with
// either, which is what makes concurrent merges of the same base safe
// (pinned by TestOverlayMergeConcurrent under -race).
func deepMerge(base, patch any) any {
	bm, bok := base.(map[string]any)
	pm, pok := patch.(map[string]any)
	if !bok || !pok {
		return deepClone(patch)
	}
	out := make(map[string]any, len(bm)+len(pm))
	for k, v := range bm {
		out[k] = deepClone(v)
	}
	for k, v := range pm {
		if v == nil {
			delete(out, k)
			continue
		}
		if cur, ok := out[k]; ok {
			out[k] = deepMerge(cur, v)
		} else {
			out[k] = deepClone(v)
		}
	}
	return out
}

// deepClone copies the generic document tree.
func deepClone(v any) any {
	switch t := v.(type) {
	case map[string]any:
		out := make(map[string]any, len(t))
		for k, e := range t {
			out[k] = deepClone(e)
		}
		return out
	case []any:
		out := make([]any, len(t))
		for i, e := range t {
			out[i] = deepClone(e)
		}
		return out
	default:
		return v
	}
}
