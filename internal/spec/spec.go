// Package spec implements routelab's declarative scenario documents:
// versioned YAML/JSON files ("routelab-spec/v1") that compile down to a
// sealed scenario.Config, so a world can be chosen — and a corpus of
// worlds maintained — without recompiling Go.
//
// A document names a profile (the role defaults: "paper", "test",
// "tiny"), overrides any subset of the profile's fields across four
// sections (topology, policy, campaign, measurement), and may carry
// named overlay patches that deep-merge over the base document
// configlet-style (see Load). Numeric fields accept either a literal
// or a {min, max} range; ranges resolve deterministically from the
// spec seed and the field's path, so a spec with ranges still compiles
// to exactly one Config (see Num).
//
// The compilation pipeline is parse → merge (base chain, then applied
// overlays, in order) → decode → validate → resolve ranges → Config,
// documented in DESIGN.md §13 and, field by field, in SCENARIOS.md.
//
// # Determinism
//
// Compile is a pure function of the document bytes and the overlay
// selection: no wall clock, no global randomness (enforced by the
// routelint walltime analyzer, which covers this package). Expanding
// the same spec twice yields byte-identical output — the property
// `make spec-check` pins for every corpus entry under scenarios/.
package spec

import (
	"fmt"
	"math"
	"regexp"

	"routelab/internal/scenario"
)

// Version is the document envelope every spec must declare in its
// `spec:` field.
const Version = "routelab-spec/v1"

// ExpansionVersion is the envelope of the compiled-Config JSON emitted
// by cmd/scengen -format=json and pinned by the scenarios/golden
// corpus dumps.
const ExpansionVersion = "routelab-scengen/v1"

// Profiles are the role-default bases a spec can extend. A profile is
// a complete, valid scenario.Config; the spec's explicit fields
// override it. The zero profile is "paper".
var Profiles = []string{"paper", "test", "tiny"}

// ProfileConfig returns the named profile's complete Config.
func ProfileConfig(name string) (scenario.Config, error) {
	switch name {
	case "", "paper":
		return scenario.DefaultConfig(), nil
	case "test":
		return scenario.TestConfig(), nil
	case "tiny":
		// The smallest world the generator floors still accept: the
		// smoke-test profile routelabd boots in seconds.
		c := scenario.TestConfig()
		c.Topology.Scale = 0.05
		c.NumProbes = 60
		c.TracesTarget = 600
		c.ActiveProbes = 12
		c.PlanetLabNodes = 10
		c.MaxAlternateTargets = 20
		return c, nil
	default:
		return scenario.Config{}, &FieldError{
			Path:   "profile",
			Value:  name,
			Reason: fmt.Sprintf("unknown profile (have %v)", Profiles),
		}
	}
}

// Num is one numeric spec value: either a literal or a closed {min,
// max} range. A ranged Num resolves to a concrete value via a hash of
// the spec seed and the field's dotted path — coherent (the same spec
// always generates the same attribute) yet varied (different fields,
// and different seeds, draw independently). Changing the seed re-rolls
// every ranged field at once, which is how a single corpus entry
// describes a family of related worlds.
type Num struct {
	Literal  float64
	Min, Max float64
	Ranged   bool
}

// resolveFrac maps (seed, path) to a deterministic fraction in [0, 1).
// FNV-1a over the path folded with the seed, finished with the
// splitmix64 mixer so nearby seeds decorrelate.
func resolveFrac(seed int64, path string) float64 {
	h := uint64(seed) ^ 0x9e3779b97f4a7c15
	for i := 0; i < len(path); i++ {
		h ^= uint64(path[i])
		h *= 0x100000001b3
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return float64(h>>11) / float64(1<<53)
}

// Float resolves the value for a float-valued field.
func (n *Num) Float(seed int64, path string) float64 {
	if !n.Ranged {
		return n.Literal
	}
	return n.Min + resolveFrac(seed, path)*(n.Max-n.Min)
}

// Int resolves the value for an integer-valued field. Ranges are
// inclusive on both ends: {min: 2, max: 4} draws uniformly from
// {2, 3, 4}.
func (n *Num) Int(seed int64, path string) int {
	if !n.Ranged {
		return int(math.Round(n.Literal))
	}
	lo, hi := int(math.Round(n.Min)), int(math.Round(n.Max))
	v := lo + int(resolveFrac(seed, path)*float64(hi-lo+1))
	if v > hi {
		v = hi
	}
	return v
}

// Spec is one decoded, validated scenario document with its overlay
// selection already applied. Build one with Load (files) or Parse
// (bytes); the zero value is not usable.
type Spec struct {
	// Version is the declared document envelope (always Version once
	// validated).
	Version string
	// Name identifies the spec ([a-z0-9._-], starting alphanumeric);
	// corpus goldens are keyed on it.
	Name        string
	Description string
	// Profile names the role-default base Config ("paper" when empty).
	Profile string
	// Seed overrides the profile's master seed.
	Seed *int64
	// Workers overrides RoutingWorkers (parallelism only — never
	// output bytes; see internal/parallel).
	Workers *int
	// Applied lists the overlay names merged into the document, in
	// application order (the spec's own `apply:` list first, then the
	// caller's selection).
	Applied []string
	// Source is the path the spec was loaded from ("" for Parse).
	Source string

	// values holds the explicit field overrides keyed by schema path
	// ("topology.tier1s"). Fields absent here inherit the profile.
	values map[string]*Num
}

// Value returns the explicit override for a schema path, if any.
func (s *Spec) Value(path string) (*Num, bool) {
	n, ok := s.values[path]
	return n, ok
}

var nameRE = regexp.MustCompile(`^[a-z0-9][a-z0-9._-]*$`)

// Validate checks the document against the schema: envelope version,
// name shape, known profile, and every explicit field's kind rules
// (counts are non-negative integers, rates live in [0, 1], ranges need
// min <= max). It returns nil or one *FieldError per problem, joined —
// the same contract as scenario.Config.Validate, but with spec-file
// field paths (e.g. "policy.hybrid_link_rate") so cmd/scengen can
// point at the offending line of the document.
func (s *Spec) Validate() error {
	var errs []error
	bad := func(path string, value any, reason string) {
		errs = append(errs, &FieldError{Path: path, Value: value, Reason: reason})
	}
	if s.Version != Version {
		bad("spec", s.Version, fmt.Sprintf("unsupported spec version (want %q)", Version))
	}
	if s.Name == "" {
		bad("name", s.Name, "every spec needs a name")
	} else if !nameRE.MatchString(s.Name) {
		bad("name", s.Name, "must match [a-z0-9][a-z0-9._-]*")
	}
	if _, err := ProfileConfig(s.Profile); err != nil {
		errs = append(errs, err)
	}
	if s.Workers != nil && *s.Workers < 0 {
		bad("workers", *s.Workers, "must be >= 0 (0 selects GOMAXPROCS)")
	}
	for _, def := range schema {
		n, ok := s.values[def.path]
		if !ok {
			continue
		}
		if err := def.check(def.path, n); err != nil {
			errs = append(errs, err)
		}
	}
	return joinErrors(errs)
}

// Compile resolves the spec to a concrete scenario.Config: profile
// defaults first, then every explicit field in schema order, with
// ranged values drawn from the resolved seed. The result is validated
// with scenario.Config.Validate before it is returned, so a Config
// obtained here is always buildable.
func (s *Spec) Compile() (scenario.Config, error) {
	if err := s.Validate(); err != nil {
		return scenario.Config{}, err
	}
	cfg, err := ProfileConfig(s.Profile)
	if err != nil {
		return scenario.Config{}, err
	}
	if s.Seed != nil {
		cfg.Seed = *s.Seed
	}
	if s.Workers != nil {
		cfg.RoutingWorkers = *s.Workers
	}
	for _, def := range schema {
		n, ok := s.values[def.path]
		if !ok {
			continue
		}
		def.set(&cfg, n, cfg.Seed)
	}
	if err := cfg.Validate(); err != nil {
		return scenario.Config{}, fmt.Errorf("spec %s: compiled config invalid: %w", s.Name, err)
	}
	return cfg, nil
}
