package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Load reads, merges, decodes, and validates a spec document. The
// pipeline, in order (DESIGN.md §13):
//
//  1. Parse the file (YAML by default; JSON for .json files).
//  2. Resolve the `base:` chain: each base file is loaded the same way
//     (recursively, cycles rejected) and the child document deep-merges
//     over it — including the overlay definitions, so a child inherits
//     its base's overlays.
//  3. Apply overlays: the document's own `apply:` list first, then the
//     caller's extra selection, each deep-merged in order over the
//     document. Later overlays win.
//  4. Decode the merged document against the schema (unknown fields
//     are errors, never silently dropped).
//  5. Validate (see Spec.Validate).
func Load(path string, extraOverlays []string) (*Spec, error) {
	doc, err := loadMerged(path, map[string]bool{})
	if err != nil {
		return nil, err
	}
	s, err := finish(doc, path, extraOverlays)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Parse decodes a standalone document from bytes (no base resolution —
// a `base:` field is an error here). The name parameter labels parse
// errors; format is "yaml" or "json".
func Parse(name string, data []byte, format string, extraOverlays []string) (*Spec, error) {
	doc, err := parseDoc(name, data, format)
	if err != nil {
		return nil, err
	}
	if _, ok := doc["base"]; ok {
		return nil, &FieldError{Path: "base", Value: doc["base"],
			Reason: "base chains need file resolution; use Load"}
	}
	s, err := finish(doc, "", extraOverlays)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return s, nil
}

// loadMerged loads one file and resolves its base chain.
func loadMerged(path string, visiting map[string]bool) (map[string]any, error) {
	abs, err := filepath.Abs(path)
	if err != nil {
		return nil, err
	}
	if visiting[abs] {
		return nil, &ParseError{File: path, Msg: "base chain forms a cycle"}
	}
	visiting[abs] = true
	defer delete(visiting, abs)

	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	doc, err := parseDoc(path, data, formatOf(path))
	if err != nil {
		return nil, err
	}
	baseVal, ok := doc["base"]
	if !ok {
		return doc, nil
	}
	baseRel, ok := baseVal.(string)
	if !ok || baseRel == "" {
		return nil, &ParseError{File: path, Msg: "base must be a relative file path"}
	}
	basePath := filepath.Join(filepath.Dir(path), filepath.FromSlash(baseRel))
	baseDoc, err := loadMerged(basePath, visiting)
	if err != nil {
		return nil, err
	}
	delete(doc, "base")
	// The child wins everywhere it speaks (including name and
	// description); the base supplies everything else, overlay
	// definitions included.
	return deepMerge(baseDoc, doc).(map[string]any), nil
}

// formatOf picks the parser by extension.
func formatOf(path string) string {
	if strings.EqualFold(filepath.Ext(path), ".json") {
		return "json"
	}
	return "yaml"
}

// parseDoc parses bytes into the generic document form.
func parseDoc(name string, data []byte, format string) (map[string]any, error) {
	switch format {
	case "json":
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.UseNumber()
		var v any
		if err := dec.Decode(&v); err != nil {
			return nil, &ParseError{File: name, Msg: "invalid JSON: " + err.Error()}
		}
		doc, ok := normalizeJSON(v).(map[string]any)
		if !ok {
			return nil, &ParseError{File: name, Msg: "top level must be an object"}
		}
		return doc, nil
	case "yaml":
		return parseYAML(name, data)
	default:
		return nil, fmt.Errorf("spec: unknown format %q (have yaml, json)", format)
	}
}

// normalizeJSON rewrites json.Number into int64 when integral, float64
// otherwise, so both parsers feed the decoder identical shapes.
func normalizeJSON(v any) any {
	switch t := v.(type) {
	case map[string]any:
		for k, e := range t {
			t[k] = normalizeJSON(e)
		}
		return t
	case []any:
		for i, e := range t {
			t[i] = normalizeJSON(e)
		}
		return t
	case json.Number:
		if i, err := t.Int64(); err == nil {
			return i
		}
		f, _ := t.Float64()
		return f
	default:
		return v
	}
}

// finish applies overlays, decodes, and validates a merged document.
func finish(doc map[string]any, source string, extraOverlays []string) (*Spec, error) {
	doc = deepClone(doc).(map[string]any)
	overlays, err := overlayDefs(doc)
	if err != nil {
		return nil, err
	}
	selection, err := overlaySelection(doc, extraOverlays)
	if err != nil {
		return nil, err
	}
	delete(doc, "overlays")
	delete(doc, "apply")
	for _, name := range selection {
		patch, ok := overlays[name]
		if !ok {
			return nil, &FieldError{Path: "overlays." + name, Value: name,
				Reason: fmt.Sprintf("overlay not defined (have %v)", overlayNames(overlays))}
		}
		doc = deepMerge(doc, patch).(map[string]any)
	}
	s, err := decode(doc)
	if err != nil {
		return nil, err
	}
	s.Source = filepath.ToSlash(source)
	s.Applied = selection
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// overlayDefs extracts and type-checks the overlays section. Patches
// may touch anything except the document's identity and the overlay
// machinery itself.
func overlayDefs(doc map[string]any) (map[string]map[string]any, error) {
	raw, ok := doc["overlays"]
	if !ok {
		return map[string]map[string]any{}, nil
	}
	m, ok := raw.(map[string]any)
	if !ok {
		return nil, &FieldError{Path: "overlays", Value: raw, Reason: "must be a mapping of name → patch"}
	}
	out := make(map[string]map[string]any, len(m))
	names := sortedKeys(m)
	for _, name := range names {
		patch, ok := m[name].(map[string]any)
		if !ok {
			return nil, &FieldError{Path: "overlays." + name, Value: m[name], Reason: "patch must be a mapping"}
		}
		for _, banned := range []string{"spec", "name", "base", "overlays", "apply"} {
			if _, has := patch[banned]; has {
				return nil, &FieldError{Path: "overlays." + name + "." + banned, Value: patch[banned],
					Reason: "overlay patches cannot change the document's identity or overlay set"}
			}
		}
		out[name] = patch
	}
	return out, nil
}

// overlaySelection builds the ordered application list: the document's
// `apply:` list, then the caller's extras, duplicates rejected.
func overlaySelection(doc map[string]any, extra []string) ([]string, error) {
	var out []string
	if raw, ok := doc["apply"]; ok {
		list, ok := raw.([]any)
		if !ok {
			return nil, &FieldError{Path: "apply", Value: raw, Reason: "must be a sequence of overlay names"}
		}
		for _, e := range list {
			name, ok := e.(string)
			if !ok {
				return nil, &FieldError{Path: "apply", Value: e, Reason: "overlay names are strings"}
			}
			out = append(out, name)
		}
	}
	out = append(out, extra...)
	seen := make(map[string]bool, len(out))
	for _, name := range out {
		if seen[name] {
			return nil, &FieldError{Path: "apply", Value: name, Reason: "overlay applied twice"}
		}
		seen[name] = true
	}
	return out, nil
}

func overlayNames(m map[string]map[string]any) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

func sortedKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
