package spec

import (
	"fmt"
	"strconv"
	"strings"
)

// This file is a deliberately small YAML-subset parser, written so the
// module stays dependency-free (go.mod has no requires, and the
// container bakes in only the toolchain). The subset covers what a
// scenario document needs and nothing else:
//
//   - block mappings nested by indentation (spaces only; tabs are an
//     error)
//   - block sequences of scalars ("- item")
//   - flow sequences ("[a, b]") and flow mappings ("{min: 1, max: 2}")
//     on a single line
//   - scalars: null/~, true/false, integers, floats, single- and
//     double-quoted strings, and plain strings
//   - '#' comments (full-line and trailing) and blank lines
//
// Anchors, aliases, multi-document streams, multi-line strings, and
// sequences of mappings are rejected with a positioned ParseError.
// SCENARIOS.md documents the subset for spec authors.

// yamlLine is one significant (non-blank, non-comment) input line.
type yamlLine struct {
	num    int // 1-based source line
	indent int
	text   string // content with indentation and trailing comment removed
}

// parseYAML parses a document into the generic form the merge and
// decode layers share: map[string]any / []any / scalar values.
func parseYAML(file string, data []byte) (map[string]any, error) {
	lines, err := yamlLines(file, data)
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return map[string]any{}, nil
	}
	p := &yamlParser{file: file, lines: lines}
	doc, err := p.parseMap(lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		l := p.lines[p.pos]
		return nil, p.errAt(l.num, fmt.Sprintf("unexpected indentation (%d spaces)", l.indent))
	}
	return doc, nil
}

// yamlLines splits, de-comments, and measures indentation.
func yamlLines(file string, data []byte) ([]yamlLine, error) {
	var out []yamlLine
	for num, raw := range strings.Split(string(data), "\n") {
		indent := 0
		for indent < len(raw) && raw[indent] == ' ' {
			indent++
		}
		if indent < len(raw) && raw[indent] == '\t' {
			return nil, &ParseError{File: file, Line: num + 1, Msg: "tab in indentation (use spaces)"}
		}
		text := strings.TrimRight(stripComment(raw[indent:]), " \t\r")
		if text == "" {
			continue
		}
		out = append(out, yamlLine{num: num + 1, indent: indent, text: text})
	}
	return out, nil
}

// stripComment removes a trailing "#..." comment, respecting quotes. A
// '#' only starts a comment at the line start or after whitespace
// (YAML's rule, so "host#3" stays intact).
func stripComment(s string) string {
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '"' || c == '\'':
			quote = c
		case c == '#' && (i == 0 || s[i-1] == ' ' || s[i-1] == '\t'):
			return s[:i]
		}
	}
	return s
}

type yamlParser struct {
	file  string
	lines []yamlLine
	pos   int
}

func (p *yamlParser) errAt(line int, msg string) error {
	return &ParseError{File: p.file, Line: line, Msg: msg}
}

// parseMap consumes a block mapping whose keys sit at exactly indent.
func (p *yamlParser) parseMap(indent int) (map[string]any, error) {
	out := map[string]any{}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < indent {
			break // end of this block
		}
		if l.indent > indent {
			return nil, p.errAt(l.num, "unexpected indentation")
		}
		if strings.HasPrefix(l.text, "- ") || l.text == "-" {
			return nil, p.errAt(l.num, "sequence item where a mapping key was expected")
		}
		key, rest, err := splitKey(l.text)
		if err != nil {
			return nil, p.errAt(l.num, err.Error())
		}
		if _, dup := out[key]; dup {
			return nil, p.errAt(l.num, fmt.Sprintf("duplicate key %q", key))
		}
		p.pos++
		if rest != "" {
			v, err := parseScalar(rest)
			if err != nil {
				return nil, p.errAt(l.num, err.Error())
			}
			out[key] = v
			continue
		}
		// No inline value: a nested block (more-indented mapping, or a
		// sequence at >= this indent), or an empty value.
		v, err := p.parseNested(l, indent)
		if err != nil {
			return nil, err
		}
		out[key] = v
	}
	return out, nil
}

// parseNested parses the block value of "key:" at parentIndent.
func (p *yamlParser) parseNested(keyLine yamlLine, parentIndent int) (any, error) {
	if p.pos >= len(p.lines) {
		return nil, nil
	}
	next := p.lines[p.pos]
	switch {
	case (strings.HasPrefix(next.text, "- ") || next.text == "-") && next.indent >= parentIndent:
		// YAML allows a sequence under a key at the key's own indent.
		return p.parseSeq(next.indent)
	case next.indent > parentIndent:
		return p.parseMap(next.indent)
	default:
		return nil, nil // "key:" with nothing nested → null
	}
}

// parseSeq consumes a block sequence of scalar items at exactly indent.
func (p *yamlParser) parseSeq(indent int) ([]any, error) {
	var out []any
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent != indent || !(strings.HasPrefix(l.text, "- ") || l.text == "-") {
			break
		}
		rest := strings.TrimSpace(strings.TrimPrefix(l.text, "-"))
		if rest == "" {
			return nil, p.errAt(l.num, "nested block sequences are outside the supported YAML subset")
		}
		if strings.Contains(rest, ": ") || strings.HasSuffix(rest, ":") {
			return nil, p.errAt(l.num, "sequences of mappings are outside the supported YAML subset")
		}
		v, err := parseScalar(rest)
		if err != nil {
			return nil, p.errAt(l.num, err.Error())
		}
		out = append(out, v)
		p.pos++
	}
	return out, nil
}

// splitKey splits "key: rest" (or "key:") at the first unquoted colon.
func splitKey(s string) (key, rest string, err error) {
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '"' || c == '\'':
			quote = c
		case c == ':' && (i+1 == len(s) || s[i+1] == ' '):
			key = strings.TrimSpace(s[:i])
			if key == "" {
				return "", "", fmt.Errorf("empty mapping key")
			}
			if k, ok := unquote(key); ok {
				key = k
			}
			return key, strings.TrimSpace(s[i+1:]), nil
		}
	}
	return "", "", fmt.Errorf("expected \"key: value\", got %q", s)
}

// parseScalar parses an inline value: scalar, flow sequence, or flow
// mapping.
func parseScalar(s string) (any, error) {
	s = strings.TrimSpace(s)
	switch {
	case strings.HasPrefix(s, "["):
		if !strings.HasSuffix(s, "]") {
			return nil, fmt.Errorf("unterminated flow sequence %q", s)
		}
		items, err := splitFlow(s[1 : len(s)-1])
		if err != nil {
			return nil, err
		}
		out := make([]any, 0, len(items))
		for _, it := range items {
			v, err := parseScalar(it)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	case strings.HasPrefix(s, "{"):
		if !strings.HasSuffix(s, "}") {
			return nil, fmt.Errorf("unterminated flow mapping %q", s)
		}
		items, err := splitFlow(s[1 : len(s)-1])
		if err != nil {
			return nil, err
		}
		out := make(map[string]any, len(items))
		for _, it := range items {
			key, rest, err := splitKey(it)
			if err != nil {
				return nil, err
			}
			if rest == "" {
				return nil, fmt.Errorf("flow mapping entry %q needs a value", it)
			}
			if _, dup := out[key]; dup {
				return nil, fmt.Errorf("duplicate key %q", key)
			}
			v, err := parseScalar(rest)
			if err != nil {
				return nil, err
			}
			out[key] = v
		}
		return out, nil
	}
	if v, ok := unquote(s); ok {
		return v, nil
	}
	switch s {
	case "null", "~", "":
		return nil, nil
	case "true":
		return true, nil
	case "false":
		return false, nil
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return i, nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f, nil
	}
	if strings.ContainsAny(s, "&*|>%@`") {
		return nil, fmt.Errorf("unsupported YAML syntax in %q", s)
	}
	return s, nil // plain string
}

// unquote handles single- and double-quoted scalars.
func unquote(s string) (string, bool) {
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		if u, err := strconv.Unquote(s); err == nil {
			return u, true
		}
		return s[1 : len(s)-1], true
	}
	if len(s) >= 2 && s[0] == '\'' && s[len(s)-1] == '\'' {
		return strings.ReplaceAll(s[1:len(s)-1], "''", "'"), true
	}
	return "", false
}

// splitFlow splits a flow body on top-level commas, respecting nested
// brackets and quotes. Empty bodies yield no items.
func splitFlow(s string) ([]string, error) {
	var out []string
	depth := 0
	var quote byte
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '"' || c == '\'':
			quote = c
		case c == '[' || c == '{':
			depth++
		case c == ']' || c == '}':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("unbalanced brackets in %q", s)
			}
		case c == ',' && depth == 0:
			out = append(out, strings.TrimSpace(s[start:i]))
			start = i + 1
		}
	}
	if quote != 0 || depth != 0 {
		return nil, fmt.Errorf("unterminated flow syntax in %q", s)
	}
	if last := strings.TrimSpace(s[start:]); last != "" || len(out) > 0 {
		out = append(out, last)
	}
	// Drop a single empty trailing item ("[]" or "[a, ]").
	if len(out) > 0 && out[len(out)-1] == "" {
		out = out[:len(out)-1]
	}
	return out, nil
}
