package spec

import (
	"errors"
	"fmt"
)

// A FieldError reports one invalid spec-document field, named by its
// dotted document path ("policy.hybrid_link_rate"), mirroring
// scenario.ConfigError but speaking the spec file's vocabulary so
// cmd/scengen can point the author at the offending line. Validate
// joins several with errors.Join; match with errors.As.
type FieldError struct {
	Path   string // dotted document path, e.g. "topology.stubs"
	Value  any    // the rejected value
	Reason string // why it was rejected
}

func (e *FieldError) Error() string {
	return fmt.Sprintf("spec: invalid field %s = %v: %s", e.Path, e.Value, e.Reason)
}

// A ParseError reports a syntax problem in a spec document, with the
// 1-based line it was detected on (0 when the position is unknown,
// e.g. for JSON documents).
type ParseError struct {
	File string
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	name := e.File
	if name == "" {
		name = "spec"
	}
	if e.Line > 0 {
		return fmt.Sprintf("%s:%d: %s", name, e.Line, e.Msg)
	}
	return fmt.Sprintf("%s: %s", name, e.Msg)
}

// joinErrors is errors.Join with a stable nil for the empty slice.
func joinErrors(errs []error) error {
	if len(errs) == 0 {
		return nil
	}
	return errors.Join(errs...)
}
