package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	var b strings.Builder
	NewTable("Table X: demo", "AS type", "Probes", "Share").
		Row("Stub-AS", 120, 61.5).
		Row("Small ISP", 60, 30.8).
		Note("synthetic data").
		Render(&b)
	out := b.String()
	for _, want := range []string{"Table X: demo", "Stub-AS", "61.5", "note: synthetic data"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Columns align: the numeric column is right-aligned.
	lines := strings.Split(out, "\n")
	var dataLines []string
	for _, l := range lines {
		if strings.Contains(l, "Stub-AS") || strings.Contains(l, "Small ISP") {
			dataLines = append(dataLines, l)
		}
	}
	if len(dataLines) != 2 || len(dataLines[0]) != len(dataLines[1]) {
		t.Errorf("rows not aligned:\n%s", out)
	}
}

func TestStackedBars(t *testing.T) {
	var b strings.Builder
	NewStackedBars("Figure X", "Best/Short", "NonBest/Short").
		Column("Simple", 64.7, 35.3).
		Column("All-1", 85.7, 14.3).
		Render(&b)
	out := b.String()
	if !strings.Contains(out, "Simple") || !strings.Contains(out, "64.7%") {
		t.Errorf("bars missing content:\n%s", out)
	}
	if !strings.Contains(out, "#") || !strings.Contains(out, "o") {
		t.Errorf("bars missing glyphs:\n%s", out)
	}
}

func TestStackedBarsTooManyLegends(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for too many legend entries")
		}
	}()
	NewStackedBars("x", "a", "b", "c", "d", "e", "f", "g")
}

func TestSeries(t *testing.T) {
	var b strings.Builder
	Series(&b, "cdf", []float64{0.25, 0.5, 1})
	if got := b.String(); got != "cdf: 0.25 0.50 1.00\n" {
		t.Errorf("Series = %q", got)
	}
}
