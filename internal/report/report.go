// Package report renders experiment results as fixed-width text tables
// and simple ASCII series — the "rows the paper reports" output format
// of every routelab experiment binary.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders them aligned.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
	notes   []string
}

// NewTable starts a table.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// Row appends one row; values are formatted with %v, floats as %.1f.
func (t *Table) Row(cells ...any) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		case float32:
			row[i] = fmt.Sprintf("%.1f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// Note appends a footnote line.
func (t *Table) Note(format string, args ...any) *Table {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
	return t
}

// Render writes the table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == 0 {
				b.WriteString(pad(c, widths[i]))
			} else {
				b.WriteString(padLeft(c, widths[i]))
			}
		}
		return b.String()
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	hdr := line(t.headers)
	fmt.Fprintf(w, "%s\n%s\n", hdr, strings.Repeat("-", len(hdr)))
	for _, r := range t.rows {
		fmt.Fprintf(w, "%s\n", line(r))
	}
	for _, n := range t.notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func padLeft(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return strings.Repeat(" ", w-len(s)) + s
}

// StackedBars renders a Figure 1 / Figure 3-style stacked percentage
// breakdown: one line per column with proportional glyph segments.
type StackedBars struct {
	Title   string
	legend  []string
	glyphs  []rune
	columns []barColumn
}

type barColumn struct {
	label  string
	shares []float64 // percentages, same order as legend
}

// NewStackedBars starts a chart; legend entries map to glyphs in order.
func NewStackedBars(title string, legend ...string) *StackedBars {
	glyphs := []rune{'#', 'o', '=', '.', '~', '+'}
	if len(legend) > len(glyphs) {
		panic("report: too many legend entries")
	}
	return &StackedBars{Title: title, legend: legend, glyphs: glyphs[:len(legend)]}
}

// Column appends a bar; shares are percentages summing to ~100.
func (s *StackedBars) Column(label string, shares ...float64) *StackedBars {
	s.columns = append(s.columns, barColumn{label, shares})
	return s
}

// Render writes the chart.
func (s *StackedBars) Render(w io.Writer) {
	if s.Title != "" {
		fmt.Fprintf(w, "%s\n", s.Title)
	}
	for i, l := range s.legend {
		fmt.Fprintf(w, "  %c %s\n", s.glyphs[i], l)
	}
	const width = 60
	labelW := 0
	for _, c := range s.columns {
		if len(c.label) > labelW {
			labelW = len(c.label)
		}
	}
	for _, c := range s.columns {
		var bar strings.Builder
		for i, share := range c.shares {
			n := int(share/100*width + 0.5)
			for j := 0; j < n && bar.Len() < width; j++ {
				bar.WriteRune(s.glyphs[i])
			}
		}
		fmt.Fprintf(w, "%s |%s|", pad(c.label, labelW), pad(bar.String(), width))
		for i, share := range c.shares {
			fmt.Fprintf(w, " %c%5.1f%%", s.glyphs[i], share)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// Series renders a compact CDF line: label followed by points.
func Series(w io.Writer, label string, points []float64) {
	fmt.Fprintf(w, "%s:", label)
	for _, p := range points {
		fmt.Fprintf(w, " %.2f", p)
	}
	fmt.Fprintln(w)
}
