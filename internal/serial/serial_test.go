package serial

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"routelab/internal/asn"
	"routelab/internal/relgraph"
	"routelab/internal/topology"
)

func TestRoundTrip(t *testing.T) {
	g := relgraph.New()
	g.Set(3356, 65000, topology.RelCustomer)
	g.Set(3356, 174, topology.RelPeer)
	g.Set(701, 702, topology.RelSibling)
	g.Set(65000, 64999, topology.RelCustomer)

	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges() {
		if got.Rel(e.A, e.B) != e.Role {
			t.Errorf("edge %v-%v: %v, want %v", e.A, e.B, got.Rel(e.A, e.B), e.Role)
		}
	}
	if got.NumEdges() != g.NumEdges() {
		t.Errorf("edge counts: %d vs %d", got.NumEdges(), g.NumEdges())
	}
}

func TestReadInverseCode(t *testing.T) {
	g, err := Read(strings.NewReader("64496|64497|1\n"))
	if err != nil {
		t.Fatal(err)
	}
	// 64496 is a customer of 64497 → 64497's role from 64496 = provider.
	if g.Rel(64496, 64497) != topology.RelProvider {
		t.Errorf("got %v", g.Rel(64496, 64497))
	}
}

func TestReadSkipsCommentsAndBlank(t *testing.T) {
	in := "# header\n\n1|2|0\n   \n# trailing\n"
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 || g.Rel(1, 2) != topology.RelPeer {
		t.Fatalf("graph: %d edges", g.NumEdges())
	}
}

func TestReadErrors(t *testing.T) {
	for _, in := range []string{
		"1|2",             // missing field
		"1|2|0|9",         // extra field
		"x|2|0",           // bad ASN
		"1|y|0",           // bad ASN
		"1|2|zebra",       // bad rel
		"1|2|7",           // unknown rel code
		"99999999999|2|0", // ASN overflow
	} {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("Read(%q) succeeded, want error", in)
		}
	}
}

// Property: any generated graph round-trips with identical labels.
func TestRoundTripProperty(t *testing.T) {
	roles := []topology.Rel{topology.RelCustomer, topology.RelProvider, topology.RelPeer, topology.RelSibling}
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := relgraph.New()
		for i := 0; i < int(n%40); i++ {
			a := asn.ASN(1 + rng.Intn(500))
			b := asn.ASN(1 + rng.Intn(500))
			if a == b {
				continue
			}
			g.Set(a, b, roles[rng.Intn(len(roles))])
		}
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		for _, e := range g.Edges() {
			if got.Rel(e.A, e.B) != e.Role {
				return false
			}
		}
		return got.NumEdges() == g.NumEdges()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWriteGeneratedTopology(t *testing.T) {
	topo := topology.Generate(91, topology.TestConfig())
	g := relgraph.FromTopology(topo)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEdges() != g.NumEdges() {
		t.Fatalf("edges: %d vs %d", got.NumEdges(), g.NumEdges())
	}
}
