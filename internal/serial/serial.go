// Package serial reads and writes AS-relationship files in the CAIDA
// serial-1 text format the paper's tooling consumes:
//
//	# comment lines
//	<AS1>|<AS2>|<relationship>
//
// where relationship is -1 (AS1 is a provider of AS2), 0 (peers), or 1
// (AS1 is a customer of AS2 — the rarely-used inverse, accepted on
// input and never emitted). routelab extends the format with 2 for
// sibling assertions, flagged in the header.
package serial

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"routelab/internal/asn"
	"routelab/internal/relgraph"
	"routelab/internal/topology"
)

// Write emits the graph in serial-1 form, edges sorted, one per line.
func Write(w io.Writer, g *relgraph.Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# routelab AS relationships (CAIDA serial-1 format)")
	fmt.Fprintln(bw, "# <provider-as>|<customer-as>|-1  <peer-as>|<peer-as>|0  <sibling>|<sibling>|2")
	for _, e := range g.Edges() {
		var a, b asn.ASN
		var rel int
		switch e.Role { // e.Role is B's role from A
		case topology.RelCustomer: // A is the provider
			a, b, rel = e.A, e.B, -1
		case topology.RelProvider: // B is the provider
			a, b, rel = e.B, e.A, -1
		case topology.RelPeer:
			a, b, rel = e.A, e.B, 0
		case topology.RelSibling:
			a, b, rel = e.A, e.B, 2
		default:
			continue
		}
		if _, err := fmt.Fprintf(bw, "%d|%d|%d\n", uint32(a), uint32(b), rel); err != nil {
			return fmt.Errorf("serial: write: %w", err)
		}
	}
	return bw.Flush()
}

// Read parses a serial-1 file into a graph. Unknown relationship codes
// and malformed lines are errors; comments and blank lines are skipped.
func Read(r io.Reader) (*relgraph.Graph, error) {
	g := relgraph.New()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, "|")
		if len(parts) != 3 {
			return nil, fmt.Errorf("serial: line %d: want AS1|AS2|rel, got %q", lineNo, line)
		}
		a, err := parseASN(parts[0])
		if err != nil {
			return nil, fmt.Errorf("serial: line %d: %w", lineNo, err)
		}
		b, err := parseASN(parts[1])
		if err != nil {
			return nil, fmt.Errorf("serial: line %d: %w", lineNo, err)
		}
		rel, err := strconv.Atoi(strings.TrimSpace(parts[2]))
		if err != nil {
			return nil, fmt.Errorf("serial: line %d: bad relationship: %w", lineNo, err)
		}
		switch rel {
		case -1: // a provider of b
			g.Set(a, b, topology.RelCustomer)
		case 1: // a customer of b
			g.Set(a, b, topology.RelProvider)
		case 0:
			g.Set(a, b, topology.RelPeer)
		case 2:
			g.Set(a, b, topology.RelSibling)
		default:
			return nil, fmt.Errorf("serial: line %d: unknown relationship %d", lineNo, rel)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("serial: scan: %w", err)
	}
	return g, nil
}

func parseASN(s string) (asn.ASN, error) {
	n, err := strconv.ParseUint(strings.TrimSpace(s), 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad ASN %q: %w", s, err)
	}
	return asn.ASN(n), nil
}
