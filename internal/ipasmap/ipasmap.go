// Package ipasmap converts traceroute IP paths into AS-level paths the
// way the paper does (after Chen et al., CoNEXT'09): longest-prefix
// matching against BGP-announced prefixes, then a cleanup pass that
// collapses duplicates, discards unresponsive and unmappable (IXP)
// hops, and resolves third-party-address anomalies using the observed
// AS adjacency graph.
//
// The conversion is intentionally fallible — it works only from what
// BGP feeds expose, so a hop inside an unannounced block stays unknown
// and a single misattributed border address can insert a phantom AS.
// The paper's pipeline has the same property.
package ipasmap

import (
	"sort"

	"routelab/internal/asn"
	"routelab/internal/topology"
	"routelab/internal/traceroute"
	"routelab/internal/vantage"
)

// Mapper resolves addresses to origin ASes using prefixes observed in
// BGP feeds.
type Mapper struct {
	// prefixes sorted by descending mask length for longest match.
	prefixes []asn.Prefix
	origin   map[asn.Prefix]asn.ASN
	// knownLink reports adjacencies observed in feeds; used to veto
	// phantom ASes during cleanup.
	knownLink map[topology.LinkKey]bool
}

// FromSnapshot builds a mapper from a monitor snapshot: prefix origins
// are taken from the last AS of each feed path, adjacencies from every
// consecutive pair.
func FromSnapshot(s *vantage.Snapshot) *Mapper {
	m := &Mapper{
		origin:    make(map[asn.Prefix]asn.ASN),
		knownLink: s.ObservedLinks(),
	}
	for i := range s.Entries {
		e := &s.Entries[i]
		if len(e.Path) == 0 {
			continue
		}
		if _, dup := m.origin[e.Prefix]; !dup {
			m.origin[e.Prefix] = e.Path[len(e.Path)-1]
			m.prefixes = append(m.prefixes, e.Prefix)
		}
	}
	sort.Slice(m.prefixes, func(i, j int) bool {
		if m.prefixes[i].Len != m.prefixes[j].Len {
			return m.prefixes[i].Len > m.prefixes[j].Len
		}
		return m.prefixes[i].Addr < m.prefixes[j].Addr
	})
	return m
}

// ASOf longest-prefix-matches ip against announced prefixes; 0 when no
// covering prefix was announced (router infrastructure, IXP fabrics).
func (m *Mapper) ASOf(ip asn.Addr) asn.ASN {
	if ip == 0 {
		return 0
	}
	for _, p := range m.prefixes {
		if p.Contains(ip) {
			return m.origin[p]
		}
	}
	return 0
}

// ConvertTrace derives the AS path of a traceroute, source AS first.
// The boolean reports whether the conversion is usable (reached the
// destination AS and left no unresolved gap).
func (m *Mapper) ConvertTrace(tr traceroute.Trace) ([]asn.ASN, bool) {
	// 1. Map each responsive hop.
	raw := make([]asn.ASN, 0, len(tr.Hops)+1)
	raw = append(raw, tr.SrcAS) // the probe knows its own AS
	for _, h := range tr.Hops {
		a := m.ASOf(h.IP)
		if a.IsZero() {
			// Unresponsive or unmappable hop: ignore; gaps are
			// tolerated once anomalies are dropped below.
			continue
		}
		raw = append(raw, a)
	}
	// 2. Collapse consecutive duplicates.
	path := raw[:0]
	for _, a := range raw {
		if len(path) == 0 || path[len(path)-1] != a {
			path = append(path, a)
		}
	}
	// 3. Resolve single-hop anomalies: X sandwiched between A ... A is a
	// third-party address (drop X); A X B where the feeds know A-B but
	// neither A-X nor X-B is a phantom (drop X).
	path = m.dropAnomalies(path)
	// 4. A usable decision path must end at the destination AS.
	ok := tr.Reached && len(path) >= 1
	return path, ok
}

func (m *Mapper) dropAnomalies(path []asn.ASN) []asn.ASN {
	changed := true
	for changed {
		changed = false
		for i := 1; i+1 < len(path); i++ {
			a, x, b := path[i-1], path[i], path[i+1]
			if a == b {
				// A X A: classic third-party interface.
				path = append(path[:i], path[i+2:]...)
				path = collapse(path)
				changed = true
				break
			}
			if m.knownLink[topology.MakeLinkKey(a, b)] &&
				!m.knownLink[topology.MakeLinkKey(a, x)] &&
				!m.knownLink[topology.MakeLinkKey(x, b)] {
				// A X B with A-B known and X floating: phantom.
				path = append(path[:i], path[i+1:]...)
				path = collapse(path)
				changed = true
				break
			}
		}
	}
	return path
}

func collapse(path []asn.ASN) []asn.ASN {
	out := path[:0]
	for _, a := range path {
		if len(out) == 0 || out[len(out)-1] != a {
			out = append(out, a)
		}
	}
	return out
}

// PrefixOf returns the longest announced prefix covering ip, or the zero
// prefix.
func (m *Mapper) PrefixOf(ip asn.Addr) asn.Prefix {
	for _, p := range m.prefixes {
		if p.Contains(ip) {
			return p
		}
	}
	return asn.Prefix{}
}

// NumPrefixes reports how many announced prefixes the mapper knows.
func (m *Mapper) NumPrefixes() int { return len(m.prefixes) }
