package ipasmap

import (
	"math/rand"
	"testing"

	"routelab/internal/asn"
	"routelab/internal/bgp"
	"routelab/internal/topology"
	"routelab/internal/traceroute"
	"routelab/internal/vantage"
)

type fixture struct {
	topo   *topology.Topology
	rib    *bgp.RIB
	mapper *Mapper
	tracer *traceroute.Tracer
	dst    asn.Addr
}

func newFixture(t *testing.T, seed int64, trCfg traceroute.Config) *fixture {
	t.Helper()
	topo := topology.Generate(seed, topology.TestConfig())
	e := bgp.New(topo, seed)
	rib := e.ComputeFullRIB(0)
	peers := vantage.SelectPeers(topo, rand.New(rand.NewSource(seed)), 30)
	snap := vantage.Collect(rib, peers, 0)
	cdn := topo.Names["cdn-major"]
	return &fixture{
		topo:   topo,
		rib:    rib,
		mapper: FromSnapshot(snap),
		tracer: traceroute.New(topo, rib, trCfg),
		dst:    topo.AS(cdn).Prefixes[0].Nth(40),
	}
}

func TestASOfLongestMatch(t *testing.T) {
	f := newFixture(t, 41, traceroute.DefaultConfig())
	if f.mapper.NumPrefixes() == 0 {
		t.Fatal("mapper learned no prefixes")
	}
	// Announced prefixes resolve to their origin.
	for _, a := range f.topo.ASNs()[:50] {
		for _, p := range f.topo.AS(a).Prefixes {
			if got := f.mapper.ASOf(p.Nth(9)); got != a && got != 0 {
				t.Fatalf("ASOf inside %s = %v, want %v (or unknown)", p, got, a)
			}
		}
	}
	// Router addresses resolve through covering prefixes; IXP fabrics
	// stay unknown.
	first := f.topo.ASNs()[0]
	infra := f.topo.AS(first).InfraPrefix
	if got := f.mapper.ASOf(infra.Nth(1)); got != first && got != 0 {
		t.Errorf("router address resolved to %v, want %v or unknown", got, first)
	}
	if f.mapper.ASOf(topology.IXPPrefix(3).Nth(1)) != 0 {
		t.Error("IXP fabric resolved via BGP prefixes")
	}
	if f.mapper.ASOf(0) != 0 {
		t.Error("the zero address must be unknown")
	}
}

// With artifacts disabled, conversion must reproduce the true AS path
// modulo hops whose infrastructure is invisible to BGP (which the
// cleanup bridges).
func TestConvertCleanTraces(t *testing.T) {
	f := newFixture(t, 42, traceroute.Config{MaxHops: 30, Seed: 1})
	exact, total := 0, 0
	for _, src := range f.topo.ASesOfClass(topology.Stub)[:25] {
		tr := f.tracer.Trace(src, f.topo.AS(src).Cities[0], f.dst)
		if !tr.Reached {
			continue
		}
		got, ok := f.mapper.ConvertTrace(tr)
		if !ok {
			continue
		}
		total++
		if pathsEqual(got, tr.TrueASPath) {
			exact++
		}
	}
	if total == 0 {
		t.Fatal("no usable conversions")
	}
	if frac := float64(exact) / float64(total); frac < 0.9 {
		t.Errorf("only %.2f of clean traces converted exactly (%d/%d)", frac, exact, total)
	}
}

// With realistic artifact rates, conversion must still be mostly right —
// the Chen-et-al. pipeline achieves high accuracy — but not perfect.
func TestConvertNoisyTraces(t *testing.T) {
	f := newFixture(t, 43, traceroute.DefaultConfig())
	exact, total := 0, 0
	for _, src := range f.topo.ASesOfClass(topology.Stub)[:40] {
		tr := f.tracer.Trace(src, f.topo.AS(src).Cities[0], f.dst)
		if !tr.Reached {
			continue
		}
		got, ok := f.mapper.ConvertTrace(tr)
		if !ok {
			continue
		}
		total++
		if pathsEqual(got, tr.TrueASPath) {
			exact++
		}
	}
	if total < 20 {
		t.Fatalf("only %d usable conversions", total)
	}
	frac := float64(exact) / float64(total)
	t.Logf("noisy conversion accuracy: %d/%d = %.2f", exact, total, frac)
	if frac < 0.75 {
		t.Errorf("conversion accuracy %.2f too low to be useful", frac)
	}
}

func TestDropAnomaliesThirdParty(t *testing.T) {
	m := &Mapper{knownLink: map[topology.LinkKey]bool{}}
	// A X A collapses to A.
	got := m.dropAnomalies([]asn.ASN{1, 2, 1, 3})
	if len(got) != 3 || got[0] != 1 || got[1] != 1 && got[1] != 3 {
		// After dropping X=2 the two 1s merge: 1 3.
	}
	got = m.dropAnomalies([]asn.ASN{1, 2, 1})
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("A X A should collapse to A: %v", got)
	}
}

func TestDropAnomaliesPhantom(t *testing.T) {
	m := &Mapper{knownLink: map[topology.LinkKey]bool{
		topology.MakeLinkKey(1, 3): true,
	}}
	got := m.dropAnomalies([]asn.ASN{1, 2, 3})
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("phantom middle AS should be dropped: %v", got)
	}
	// If the middle AS has a known link to either side, keep it.
	m.knownLink[topology.MakeLinkKey(1, 2)] = true
	got = m.dropAnomalies([]asn.ASN{1, 2, 3})
	if len(got) != 3 {
		t.Errorf("legitimate middle AS dropped: %v", got)
	}
}

func pathsEqual(a, b []asn.ASN) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
