package scenario

import (
	"math/rand"
	"sort"

	"routelab/internal/asn"
	"routelab/internal/bgp"
	"routelab/internal/classify"
	"routelab/internal/parallel"
	"routelab/internal/peering"
	"routelab/internal/traceroute"
	"routelab/internal/vantage"
)

// MagnetCampaign is the assembled §3.2 magnet experiment: one run per
// mux, with decisions prepared for Table 2 classification under both
// observation channels.
type MagnetCampaign struct {
	Runs []peering.MagnetResult
	// FeedDecisions observe ASes visible on monitor-feed paths toward
	// the PEERING prefix; TraceDecisions those on active traceroute
	// paths from the RIPE/PlanetLab probe set.
	FeedDecisions, TraceDecisions []classify.MagnetDecision
}

// RunMagnetCampaign executes a magnet run per mux and builds the
// decision sets. The "other routes observed from x" pool only contains
// routes genuinely visible through the respective channel across the
// whole campaign, mirroring the paper's observer.
func (s *Scenario) RunMagnetCampaign(rng *rand.Rand) MagnetCampaign {
	prefix := s.Testbed.Prefixes[0]
	feedPeers := vantage.SelectPeers(s.Topo, rng, s.Cfg.NumVantagePeers)
	activeProbes := s.activeProbeSet(rng)

	var campaign MagnetCampaign
	// Every AS either channel could possibly observe (cheap superset:
	// transit ASes plus muxes' neighborhoods); the per-channel
	// visibility is filtered after the runs using actual paths.
	observe := s.Topo.ASNs()

	// Each channel learns, per AS, the set of NEXT HOPS the AS was ever
	// seen using (across all runs and both phases) — that is everything
	// an outside observer can establish about x's alternatives. The
	// comparison set for a run is then the routes those neighbors were
	// ACTUALLY offering x in that run's post-anycast state (the paper
	// verified exactly this availability assumption before reporting).
	feedHops := map[asn.ASN]map[asn.ASN]bool{}
	traceHops := map[asn.ASN]map[asn.ASN]bool{}
	feedVisible := map[asn.ASN]bool{}
	traceVisible := map[asn.ASN]bool{}

	record := func(hops map[asn.ASN]map[asn.ASN]bool, a asn.ASN, r bgp.Route) {
		if r.NextHop.IsZero() {
			return
		}
		m := hops[a]
		if m == nil {
			m = map[asn.ASN]bool{}
			hops[a] = m
		}
		m[r.NextHop] = true
	}

	// One magnet run per mux, each over its own bgp.Computation — fan
	// out, then do the order-sensitive visibility marking serially over
	// the merged runs (in mux order, same as the serial path).
	campaign.Runs = parallel.MapStage("scenario/magnet", s.Testbed.Muxes, s.Cfg.RoutingWorkers,
		func(mi int, _ asn.ASN) peering.MagnetResult {
			return s.Testbed.Magnet(prefix, mi, observe)
		})
	for ri := range campaign.Runs {
		res := campaign.Runs[ri]
		// Determine per-channel visibility from the post-anycast state:
		// feed channel sees ASes on feed-peer paths; trace channel sees
		// ASes on data-plane paths from the active probes.
		byAS := map[asn.ASN]*peering.MagnetObservation{}
		for i := range res.Observations {
			byAS[res.Observations[i].AS] = &res.Observations[i]
		}
		markPath := func(visible map[asn.ASN]bool, hops map[asn.ASN]map[asn.ASN]bool, start asn.ASN) {
			cur := start
			for hop := 0; hop < 32; hop++ {
				o := byAS[cur]
				if o == nil {
					return
				}
				visible[cur] = true
				record(hops, cur, o.Before)
				record(hops, cur, o.After)
				nh := o.After.NextHop
				if nh.IsZero() {
					return
				}
				cur = nh
			}
		}
		for _, p := range feedPeers {
			markPath(feedVisible, feedHops, p)
		}
		for _, pr := range activeProbes {
			markPath(traceVisible, traceHops, pr)
		}
	}

	// Stickiness: does the AS settle on one dominant next hop after the
	// anycasts, regardless of magnet placement? A static preference
	// (IGP) produces the same winner in a clear majority of runs;
	// history-driven (age) selection follows the magnet around.
	// Majority (not unanimity) keeps the signal robust to the
	// occasional alternate BGP equilibrium.
	nhCounts := map[asn.ASN]map[asn.ASN]int{}
	runsSeen := map[asn.ASN]int{}
	for _, res := range campaign.Runs {
		for _, o := range res.Observations {
			m := nhCounts[o.AS]
			if m == nil {
				m = map[asn.ASN]int{}
				nhCounts[o.AS] = m
			}
			m[o.After.NextHop]++
			runsSeen[o.AS]++
		}
	}
	sticky := map[asn.ASN]bool{}
	for a, m := range nhCounts {
		best := 0
		for _, n := range m {
			if n > best {
				best = n
			}
		}
		sticky[a] = best*3 >= runsSeen[a]*2 // dominant ≥ 2/3 of runs
	}

	// Assemble decisions: one per (run, visible AS with alternatives).
	build := func(visible map[asn.ASN]bool, hops map[asn.ASN]map[asn.ASN]bool) []classify.MagnetDecision {
		var out []classify.MagnetDecision
		for _, res := range campaign.Runs {
			for _, o := range res.Observations {
				if !visible[o.AS] {
					continue
				}
				// The run's genuine candidate set, restricted to next
				// hops the observer established, one route per next hop
				// (same-next-hop differences are the downstream AS's
				// decision, which the paper attributes downstream).
				var others []bgp.Route
				seenNH := map[asn.ASN]bool{o.After.NextHop: true}
				for _, alt := range o.Alternatives {
					if seenNH[alt.NextHop] || !hops[o.AS][alt.NextHop] {
						continue
					}
					seenNH[alt.NextHop] = true
					others = append(others, alt)
				}
				sort.Slice(others, func(i, j int) bool {
					return others[i].NextHop < others[j].NextHop
				})
				// "Keeping the route toward the magnet" (§3.2) means the
				// post-anycast route still exits through the MAGNET mux
				// via the same neighbor — not merely an unchanged next
				// hop (the path may now lead to a closer anycast site,
				// which is the downstream's doing).
				keptMagnet := !o.Moved && muxOf(o.After) == res.Magnet
				out = append(out, classify.MagnetDecision{
					AS:         o.AS,
					Chosen:     o.After,
					KeptMagnet: keptMagnet,
					Sticky:     sticky[o.AS],
					Others:     others,
				})
			}
		}
		return out
	}
	campaign.FeedDecisions = build(feedVisible, feedHops)
	campaign.TraceDecisions = build(traceVisible, traceHops)
	return campaign
}

// muxOf extracts the mux a PEERING route exits through (the AS right
// before the origin), or 0 for direct/odd paths.
func muxOf(r bgp.Route) asn.ASN {
	seq := r.Path.Sequence()
	if len(seq) < 2 {
		return 0
	}
	return seq[len(seq)-2]
}

// activeProbeSet picks the RIPE+PlanetLab AS set for active experiments:
// a greedy selection maximizing distinct ASes (the paper's heuristic),
// approximated by sampling distinct probe ASes.
func (s *Scenario) activeProbeSet(rng *rand.Rand) []asn.ASN {
	want := s.Cfg.ActiveProbes + s.Cfg.PlanetLabNodes
	seen := map[asn.ASN]bool{}
	var out []asn.ASN
	probes := s.Platform.Probes()
	for _, i := range rng.Perm(len(probes)) {
		if len(out) >= want {
			break
		}
		a := probes[i].AS
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RunAlternatesCampaign discovers alternate routes for every AS observed
// on paths toward the PEERING prefixes (§3.2/§4.4), up to the configured
// cap. The converged anycast base is built once (AnycastBase) and every
// target's poisoning loop runs over its own copy-on-write fork of it, so
// targets fan out across the worker pool without re-paying the base
// convergence; the result slice follows the sorted target order
// regardless of worker count.
func (s *Scenario) RunAlternatesCampaign(rng *rand.Rand) []peering.AlternateResult {
	prefix := s.Testbed.Prefixes[0]
	targets := s.observedTargets(rng, prefix)
	if limit := s.Cfg.MaxAlternateTargets; limit > 0 && len(targets) > limit {
		targets = targets[:limit]
	}
	base := s.Testbed.AnycastBase(prefix)
	return parallel.MapStage("scenario/alternates", targets, s.Cfg.RoutingWorkers,
		func(_ int, t asn.ASN) peering.AlternateResult {
			return s.Testbed.DiscoverAlternatesFrom(base, t)
		})
}

// observedTargets lists ASes seen on paths toward a PEERING prefix from
// the monitors and the active probes (excluding the testbed itself). It
// reads the shared anycast base — the same converged state the discovery
// runs fork from.
func (s *Scenario) observedTargets(rng *rand.Rand, prefix asn.Prefix) []asn.ASN {
	c := s.Testbed.AnycastBase(prefix)
	seen := map[asn.ASN]bool{}
	walk := func(start asn.ASN) {
		cur := start
		for hops := 0; hops < 32; hops++ {
			if cur == s.Testbed.Origin {
				return
			}
			rt, ok := c.Best(cur)
			if !ok {
				return
			}
			seen[cur] = true
			if rt.NextHop.IsZero() {
				return
			}
			cur = rt.NextHop
		}
	}
	for _, p := range vantage.SelectPeers(s.Topo, rng, s.Cfg.NumVantagePeers) {
		walk(p)
	}
	for _, p := range s.activeProbeSet(rng) {
		walk(p)
	}
	out := make([]asn.ASN, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ActiveTraceroutes issues data-plane measurements toward a PEERING
// prefix from the active probe set (used to report which ASes the
// traceroute channel covers).
func (s *Scenario) ActiveTraceroutes(rng *rand.Rand, prefix asn.Prefix) []traceroute.Trace {
	tracer := traceroute.New(s.Topo, s.RIB, s.Cfg.Traceroute)
	var out []traceroute.Trace
	dst := prefix.Nth(1200)
	for _, a := range s.activeProbeSet(rng) {
		x := s.Topo.AS(a)
		if len(x.Cities) == 0 {
			continue
		}
		out = append(out, tracer.Trace(a, x.Cities[0], dst))
	}
	return out
}
