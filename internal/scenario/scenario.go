// Package scenario wires the whole reproduction together: it generates
// the ground-truth Internet, converges routing for the current and
// historical epochs, collects monitor feeds, runs relationship/sibling
// inference, deploys the Atlas platform, executes the traceroute
// campaign, and assembles the classify.Context every experiment uses.
//
// Building a full-scale scenario is expensive (two full RIB
// computations); experiments share one Scenario instance.
//
// # Concurrency
//
// Build runs its independent units of work — per-prefix convergence,
// per-probe traceroute generation, per-snapshot inference — through
// internal/parallel, bounded by Config.RoutingWorkers; the active
// campaigns (RunMagnetCampaign per mux, RunAlternatesCampaign per
// target) do the same. Results are merged in a stable order, so a build
// is byte-identical for any worker count. Every stage that consumes the
// build's master rand.Rand does so serially, BEFORE fanning out (the
// campaign derives one seed per probe up front); worker functions only
// read the sealed topology, the engine, and the immutable RIB.
//
// A built Scenario is read-only and safe for concurrent readers, with
// one exception: methods taking a *rand.Rand (Campaign,
// RunMagnetCampaign, RunAlternatesCampaign, ActiveTraceroutes) mutate
// that rand and must not share it across goroutines. Context's model
// caches are internally synchronized (see classify.Context).
package scenario

import (
	"fmt"
	"math/rand"

	"routelab/internal/asn"
	"routelab/internal/atlas"
	"routelab/internal/bgp"
	"routelab/internal/classify"
	"routelab/internal/complexrel"
	"routelab/internal/geodb"
	"routelab/internal/inference"
	"routelab/internal/ipasmap"
	"routelab/internal/lookingglass"
	"routelab/internal/obs"
	"routelab/internal/parallel"
	"routelab/internal/peering"
	"routelab/internal/relgraph"
	"routelab/internal/siblings"
	"routelab/internal/topology"
	"routelab/internal/traceroute"
	"routelab/internal/vantage"
)

// Config sizes a scenario run.
type Config struct {
	Seed     int64
	Topology topology.Config

	// RoutingWorkers bounds the worker pool behind every parallel stage
	// of the build and the active campaigns (per-prefix convergence,
	// per-probe traceroutes, per-snapshot inference, per-mux magnet
	// runs, per-target alternate discovery). <= 0 selects GOMAXPROCS;
	// 1 forces the serial reference path. The output is byte-identical
	// for any value — see internal/parallel for the contract.
	RoutingWorkers int

	// NumVantagePeers is the monitor feed count per epoch.
	NumVantagePeers int
	// HistoricEpochs+CurrentEpochs snapshots feed inference (3+2 = the
	// paper's five monthly snapshots; the boundary is where links
	// retire).
	HistoricEpochs, CurrentEpochs int

	// NumProbes is the balanced Atlas sample size (paper: 1,998).
	NumProbes int
	// TracesTarget approximates the campaign size (paper: 28,510); each
	// selected probe measures TracesTarget/NumProbes of the hostnames.
	TracesTarget int

	// ActiveProbes (RIPE) and PlanetLabNodes observe the PEERING
	// experiments' data plane (paper: 96 + ~200).
	ActiveProbes, PlanetLabNodes int
	// MaxAlternateTargets caps the §4.4 discovery campaign (0 = all
	// observed targets).
	MaxAlternateTargets int

	Traceroute traceroute.Config
	GeoDB      geodb.Config
	// ComplexCoverage is how complete the published hybrid/partial
	// dataset is.
	ComplexCoverage float64
}

// DefaultConfig is the paper-scale scenario.
func DefaultConfig() Config {
	return Config{
		Seed:            2015,
		Topology:        topology.DefaultConfig(),
		NumVantagePeers: 26,
		HistoricEpochs:  3,
		CurrentEpochs:   2,
		NumProbes:       1998,
		TracesTarget:    28510,
		ActiveProbes:    96,
		PlanetLabNodes:  200,
		Traceroute:      traceroute.DefaultConfig(),
		GeoDB:           geodb.DefaultConfig(),
		ComplexCoverage: 0.9,
	}
}

// TestConfig is a fast small-scale scenario for tests and examples.
func TestConfig() Config {
	c := DefaultConfig()
	c.Topology = topology.TestConfig()
	c.NumVantagePeers = 25
	c.NumProbes = 240
	c.TracesTarget = 2400
	c.ActiveProbes = 24
	c.PlanetLabNodes = 30
	c.MaxAlternateTargets = 60
	return c
}

// Scenario is a fully-built reproduction environment.
type Scenario struct {
	Cfg    Config
	Topo   *topology.Topology
	Engine *bgp.Engine
	// RIB is the CURRENT full routing state.
	RIB *bgp.RIB

	Snapshots []*vantage.Snapshot
	Inferred  *relgraph.Graph
	Mapper    *ipasmap.Mapper
	GeoDB     *geodb.DB
	Siblings  *siblings.Groups
	Complex   *complexrel.Dataset
	Platform  *atlas.Platform
	// Probes is the balanced Atlas selection of the campaign.
	Probes []atlas.Probe

	// LookingGlasses are the operator route servers used for the §4.3
	// validation.
	LookingGlasses *lookingglass.Directory

	Context      *classify.Context
	Measurements []classify.Measurement
	// TracesIssued counts all traceroutes, including unusable ones.
	TracesIssued int

	Testbed *peering.Testbed
}

// Logf receives progress lines during Build; nil silences them.
type Logf func(format string, args ...any)

// Build assembles the scenario. Every phase runs under an obs stage
// timer ("scenario/..."), and the build records its headline counts
// (ASes, links, snapshots, traces, decisions) as obs counters, so a
// -metrics-json report explains where a build's wall clock went.
func Build(cfg Config, logf Logf) (*Scenario, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	defer obs.StartStage("scenario/build")()
	obs.Inc("scenario.builds")
	s := &Scenario{Cfg: cfg}
	rng := rand.New(rand.NewSource(cfg.Seed))

	logf("generating topology (seed %d)", cfg.Seed)
	stop := obs.StartStage("scenario/topology")
	s.Topo = topology.Generate(cfg.Seed, cfg.Topology)
	s.Engine = bgp.New(s.Topo, cfg.Seed)
	stop()
	logf("  %d ASes, %d links, %d prefixes",
		s.Topo.NumASes(), s.Topo.NumLinks(), len(s.Topo.OriginatedPrefixes()))
	obs.Add("scenario.topology.ases", int64(s.Topo.NumASes()))
	obs.Add("scenario.topology.links", int64(s.Topo.NumLinks()))
	obs.Add("scenario.topology.prefixes", int64(len(s.Topo.OriginatedPrefixes())))

	workers := parallel.Workers(cfg.RoutingWorkers)
	logf("converging historical epoch routing (%d workers)", workers)
	stop = obs.StartStage("scenario/converge-historical")
	topoHist := s.Topo.Restored()
	ribHist := bgp.New(topoHist, cfg.Seed).ComputeFullRIB(cfg.RoutingWorkers)
	stop()
	logf("converging current epoch routing (%d workers)", workers)
	stop = obs.StartStage("scenario/converge-current")
	s.RIB = s.Engine.ComputeFullRIB(cfg.RoutingWorkers)
	stop()

	s.Siblings = siblings.Infer(s.Topo.Registry, s.Topo.DNS)

	logf("collecting %d monitor snapshots", cfg.HistoricEpochs+cfg.CurrentEpochs)
	stop = obs.StartStage("scenario/snapshots")
	infCfg := inference.DefaultConfig()
	infCfg.SameOrg = s.Siblings.SameOrg
	// Collection consumes the shared rng, so it stays serial; the
	// per-snapshot inference is independent and fans out below.
	for epoch := 0; epoch < cfg.HistoricEpochs+cfg.CurrentEpochs; epoch++ {
		src := ribHist
		topoFor := topoHist
		if epoch >= cfg.HistoricEpochs {
			src = s.RIB
			topoFor = s.Topo
		}
		peers := vantage.SelectPeers(topoFor, rng, cfg.NumVantagePeers)
		snap := vantage.Collect(src, peers, epoch)
		s.Snapshots = append(s.Snapshots, snap)
	}
	stop()
	obs.Add("scenario.snapshots", int64(len(s.Snapshots)))
	graphs := parallel.MapStage("scenario/inference", s.Snapshots, cfg.RoutingWorkers,
		func(_ int, snap *vantage.Snapshot) *relgraph.Graph {
			return inference.InferSnapshot(snap, infCfg)
		})
	s.Inferred = inference.Aggregate(graphs)
	logf("  inferred graph: %d edges", s.Inferred.NumEdges())
	obs.Add("scenario.inference.edges", int64(s.Inferred.NumEdges()))

	latest := s.Snapshots[len(s.Snapshots)-1]
	s.Mapper = ipasmap.FromSnapshot(latest)
	s.GeoDB = geodb.New(s.Topo, cfg.GeoDB)
	s.Complex = complexrel.FromGroundTruth(s.Topo, rng, cfg.ComplexCoverage)

	// §4.3 evidence from the CURRENT epochs only.
	originEv := make(map[asn.Prefix]map[asn.ASN]bool)
	edgeEver := make(map[topology.LinkKey]bool)
	for _, snap := range s.Snapshots[cfg.HistoricEpochs:] {
		for p, ns := range snap.OriginNeighbors() {
			m := originEv[p]
			if m == nil {
				m = make(map[asn.ASN]bool)
				originEv[p] = m
			}
			origin := s.Topo.OriginOf(p)
			for n := range ns {
				m[n] = true
				if !origin.IsZero() {
					edgeEver[topology.MakeLinkKey(origin, n)] = true
				}
			}
		}
	}

	cables := make(map[asn.ASN]bool)
	for _, a := range s.Topo.ASesOfClass(topology.CableOp) {
		cables[a] = true
	}
	s.Context = &classify.Context{
		Graph:            s.Inferred,
		Siblings:         s.Siblings,
		Complex:          s.Complex,
		OriginEvidence:   originEv,
		EdgeEverAtOrigin: edgeEver,
		Registry:         s.Topo.Registry,
		World:            s.Topo.World,
		CableASes:        cables,
	}

	logf("deploying Atlas platform")
	stop = obs.StartStage("scenario/atlas")
	s.Platform = atlas.NewPlatform(s.Topo, cfg.Seed)
	s.Probes = s.Platform.SelectBalanced(rng, cfg.NumProbes)
	stop()
	logf("  population %d probes, selected %d", s.Platform.NumProbes(), len(s.Probes))
	obs.Add("scenario.probes.selected", int64(len(s.Probes)))

	logf("running traceroute campaign (target %d traces)", cfg.TracesTarget)
	if err := s.runCampaign(rng); err != nil {
		return nil, err
	}
	decisions := 0
	for i := range s.Measurements {
		decisions += len(s.Measurements[i].Decisions)
	}
	logf("  %d traces issued, %d usable, %d decisions",
		s.TracesIssued, len(s.Measurements), decisions)
	obs.Add("scenario.traces.issued", int64(s.TracesIssued))
	obs.Add("scenario.traces.usable", int64(len(s.Measurements)))
	obs.Add("scenario.decisions", int64(decisions))

	// Roughly one in five transit operators runs a public route server
	// (the paper found 28 of 149 candidate neighbors).
	stop = obs.StartStage("scenario/lookingglass")
	s.LookingGlasses = lookingglass.Deploy(s.Topo, s.RIB, rng, 0.2)
	stop()

	stop = obs.StartStage("scenario/testbed")
	tb, err := peering.NewTestbed(s.Engine)
	stop()
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	s.Testbed = tb
	return s, nil
}

// runCampaign resolves and traces hostnames from every selected probe.
func (s *Scenario) runCampaign(rng *rand.Rand) error {
	ms, issued, err := s.Campaign(s.Probes, s.Cfg.TracesTarget, rng)
	if err != nil {
		return err
	}
	s.Measurements = ms
	s.TracesIssued = issued
	return nil
}

// Campaign runs a traceroute campaign from an arbitrary probe set (the
// ablation experiments re-run it with alternative probe selections) and
// returns the usable measurements plus the raw trace count.
//
// Probes measure independently, so the campaign fans out one probe per
// worker. Determinism survives the fan-out because the shared rng is
// consumed serially, up front: one derived seed per probe, each worker
// owning its own rand.Rand. Trace IDs are renumbered into one global
// sequence at the merge barrier, in probe order.
func (s *Scenario) Campaign(probes []atlas.Probe, target int, rng *rand.Rand) ([]classify.Measurement, int, error) {
	hostnames := s.Topo.DNS.Hostnames()
	if len(hostnames) == 0 {
		return nil, 0, fmt.Errorf("scenario: topology has no content hostnames")
	}
	if len(probes) == 0 {
		return nil, 0, fmt.Errorf("scenario: empty probe set")
	}
	perProbe := target / len(probes)
	if perProbe < 1 {
		perProbe = 1
	}
	if perProbe > len(hostnames) {
		perProbe = len(hostnames)
	}
	tracer := traceroute.New(s.Topo, s.RIB, s.Cfg.Traceroute)
	seeds := make([]int64, len(probes))
	for i := range seeds {
		seeds[i] = rng.Int63()
	}
	type probeRun struct {
		ms []classify.Measurement
		// issued counts this probe's resolved traces; measurements carry
		// their probe-local issue number in TraceID until the merge.
		issued int
	}
	runs := parallel.MapStage("scenario/campaign", probes, s.Cfg.RoutingWorkers, func(i int, probe atlas.Probe) probeRun {
		prng := rand.New(rand.NewSource(seeds[i]))
		upstreams := s.upstreamsOf(probe.AS)
		probeCont := s.Topo.World.ContinentOf(probe.City)
		var run probeRun
		for _, hi := range prng.Perm(len(hostnames))[:perProbe] {
			h := hostnames[hi]
			ans, err := s.Topo.DNS.Resolve(h.Name, probe.AS, probeCont, upstreams, prng)
			if err != nil {
				continue
			}
			run.issued++
			tr := tracer.Trace(probe.AS, probe.City, ans.Addr)
			m, ok := classify.Extract(run.issued, tr, s.Mapper, s.GeoDB)
			if !ok {
				continue
			}
			run.ms = append(run.ms, m)
		}
		return run
	})
	var out []classify.Measurement
	issued := 0
	for _, run := range runs {
		for _, m := range run.ms {
			id := issued + m.TraceID
			m.TraceID = id
			for j := range m.Decisions {
				m.Decisions[j].TraceID = id
			}
			out = append(out, m)
		}
		issued += run.issued
	}
	return out, issued, nil
}

// upstreamsOf lists a probe AS's providers and providers-of-providers
// (the DNS mapper prefers off-net caches hosted nearby, and CDN mapping
// systems look beyond the immediate upstream).
func (s *Scenario) upstreamsOf(a asn.ASN) []asn.ASN {
	var out []asn.ASN
	seen := map[asn.ASN]bool{a: true}
	for _, n := range s.Topo.Neighbors(a) {
		if n.Role == topology.RelProvider && !seen[n.ASN] {
			seen[n.ASN] = true
			out = append(out, n.ASN)
		}
	}
	for _, p := range append([]asn.ASN(nil), out...) {
		for _, n := range s.Topo.Neighbors(p) {
			if n.Role == topology.RelProvider && !seen[n.ASN] {
				seen[n.ASN] = true
				out = append(out, n.ASN)
			}
		}
	}
	return out
}

// Decisions flattens every measurement's decisions.
func (s *Scenario) Decisions() []classify.Decision {
	var out []classify.Decision
	for i := range s.Measurements {
		out = append(out, s.Measurements[i].Decisions...)
	}
	return out
}

// DestinationASes counts the distinct destination ASes of the campaign
// (the paper's "218 destination ASes" effect).
func (s *Scenario) DestinationASes() int {
	seen := map[asn.ASN]bool{}
	for i := range s.Measurements {
		seen[s.Measurements[i].DstAS] = true
	}
	return len(seen)
}
