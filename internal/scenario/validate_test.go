package scenario

import (
	"errors"
	"strings"
	"testing"
)

func TestValidateDefaults(t *testing.T) {
	for _, c := range []Config{DefaultConfig(), TestConfig()} {
		if err := c.Validate(); err != nil {
			t.Errorf("stock config rejected: %v", err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		field  string
		mutate func(*Config)
	}{
		{"RoutingWorkers", func(c *Config) { c.RoutingWorkers = -1 }},
		{"NumVantagePeers", func(c *Config) { c.NumVantagePeers = 0 }},
		{"HistoricEpochs", func(c *Config) { c.HistoricEpochs = -2 }},
		{"CurrentEpochs", func(c *Config) { c.CurrentEpochs = 0 }},
		{"NumProbes", func(c *Config) { c.NumProbes = 0 }},
		{"TracesTarget", func(c *Config) { c.TracesTarget = -5 }},
		{"ActiveProbes", func(c *Config) { c.ActiveProbes = -1 }},
		{"PlanetLabNodes", func(c *Config) { c.PlanetLabNodes = -1 }},
		{"MaxAlternateTargets", func(c *Config) { c.MaxAlternateTargets = -1 }},
		{"Topology.Scale", func(c *Config) { c.Topology.Scale = -0.1 }},
		{"ComplexCoverage", func(c *Config) { c.ComplexCoverage = 1.5 }},
		{"Topology.NumTier1", func(c *Config) { c.Topology.NumTier1 = -1 }},
		{"Topology.NumStub", func(c *Config) { c.Topology.NumStub = -7 }},
		{"Topology.NumHostnames", func(c *Config) { c.Topology.NumHostnames = 0 }},
		{"Topology.NumContentMajors", func(c *Config) { c.Topology.NumContentMajors = 0 }},
		{"Topology.HybridLinkRate", func(c *Config) { c.Topology.HybridLinkRate = 1.5 }},
		{"Topology.DomesticBiasRate", func(c *Config) { c.Topology.DomesticBiasRate = -0.2 }},
		{"Traceroute.NoReplyRate", func(c *Config) { c.Traceroute.NoReplyRate = 1.01 }},
		{"Traceroute.MaxHops", func(c *Config) { c.Traceroute.MaxHops = -1 }},
		{"GeoDB.MissRate", func(c *Config) { c.GeoDB.MissRate = 2 }},
		{"GeoDB.WrongCityRate", func(c *Config) { c.GeoDB.WrongCityRate = -0.5 }},
	}
	for _, tc := range cases {
		c := TestConfig()
		tc.mutate(&c)
		err := c.Validate()
		if err == nil {
			t.Errorf("%s: invalid config accepted", tc.field)
			continue
		}
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Errorf("%s: error is not a *ConfigError: %v", tc.field, err)
			continue
		}
		if ce.Field != tc.field {
			t.Errorf("%s: ConfigError.Field = %q", tc.field, ce.Field)
		}
		if !strings.Contains(err.Error(), "Config."+tc.field) {
			t.Errorf("%s: message does not name the field: %v", tc.field, err)
		}
	}
}

func TestValidateJoinsMultiple(t *testing.T) {
	c := TestConfig()
	c.NumProbes = 0
	c.TracesTarget = 0
	err := c.Validate()
	if err == nil {
		t.Fatal("invalid config accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "NumProbes") || !strings.Contains(msg, "TracesTarget") {
		t.Errorf("joined error missing a field: %v", msg)
	}
}

func TestBuildRejectsInvalidConfig(t *testing.T) {
	c := TestConfig()
	c.NumProbes = -3
	if _, err := Build(c, nil); err == nil {
		t.Fatal("Build accepted an invalid config")
	}
}
