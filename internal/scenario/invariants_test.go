package scenario

import (
	"testing"

	"routelab/internal/classify"
	"routelab/internal/geo"
	"routelab/internal/topology"
)

// System-level invariants over the fully built scenario: properties that
// must hold regardless of seeds or calibration constants.

func TestInvariantDecisionsAreOnMeasuredPaths(t *testing.T) {
	s := getScenario(t)
	for i := range s.Measurements {
		m := &s.Measurements[i]
		if len(m.Decisions) != len(m.ASPath)-1 {
			t.Fatalf("measurement %d: %d decisions for a %d-AS path",
				m.TraceID, len(m.Decisions), len(m.ASPath))
		}
		for j, d := range m.Decisions {
			if d.At != m.ASPath[j] || d.Via != m.ASPath[j+1] {
				t.Fatalf("measurement %d decision %d misaligned", m.TraceID, j)
			}
			if d.RestLen != len(m.ASPath)-1-j {
				t.Fatalf("measurement %d decision %d RestLen %d", m.TraceID, j, d.RestLen)
			}
			if d.DstAS != m.DstAS || d.Prefix != m.Prefix {
				t.Fatalf("measurement %d decision %d destination mismatch", m.TraceID, j)
			}
		}
	}
}

func TestInvariantPrefixCoversDestination(t *testing.T) {
	s := getScenario(t)
	for i := range s.Measurements {
		m := &s.Measurements[i]
		// The matched prefix's origin (per the mapper's feed view) is
		// the measurement's destination AS.
		if got := s.Mapper.ASOf(m.Prefix.Nth(1)); got != m.DstAS {
			t.Fatalf("measurement %d: prefix origin %v != DstAS %v", m.TraceID, got, m.DstAS)
		}
	}
}

// Classification must be invariant to decision order and pure (no
// hidden state mutations besides caches).
func TestInvariantClassificationPure(t *testing.T) {
	s := getScenario(t)
	ds := s.Decisions()
	if len(ds) < 10 {
		t.Skip("too few decisions")
	}
	first := make([]classify.Category, 10)
	for i := 0; i < 10; i++ {
		first[i] = s.Context.Classify(ds[i], classify.All1)
	}
	// Classify a bunch of others, then re-check.
	for i := len(ds) - 1; i > len(ds)-200 && i > 0; i-- {
		s.Context.Classify(ds[i], classify.Simple)
	}
	for i := 0; i < 10; i++ {
		if got := s.Context.Classify(ds[i], classify.All1); got != first[i] {
			t.Fatalf("decision %d reclassified from %v to %v", i, first[i], got)
		}
	}
}

// The inferred graph must never contain an adjacency that never existed
// (phantoms can only come from IP→AS conversion, which feeds
// measurement, not inference).
func TestInvariantInferredEdgesExistOrExisted(t *testing.T) {
	s := getScenario(t)
	phantom := 0
	for _, e := range s.Inferred.Edges() {
		if s.Topo.Link(e.A, e.B) != nil {
			continue
		}
		retired := false
		for _, l := range s.Topo.RetiredLinks {
			if l.Lo == topology.MakeLinkKey(e.A, e.B).Lo && l.Hi == topology.MakeLinkKey(e.A, e.B).Hi {
				retired = true
			}
		}
		if !retired {
			phantom++
		}
	}
	if phantom > 0 {
		t.Errorf("%d inferred edges never existed", phantom)
	}
}

// Geographic annotations must be internally consistent: a single-country
// measurement is necessarily single-continent.
func TestInvariantGeographyConsistent(t *testing.T) {
	s := getScenario(t)
	for i := range s.Measurements {
		m := &s.Measurements[i]
		if _, single := m.SingleCountry(s.Topo.World); !single {
			continue
		}
		if _, confined := m.Continental(s.Topo.World); !confined {
			t.Fatalf("measurement %d: single-country but multi-continent", m.TraceID)
		}
	}
}

// Probes must be placed where their AS has presence, and the balanced
// selection must stay within the population.
func TestInvariantProbePlacement(t *testing.T) {
	s := getScenario(t)
	pop := map[int]bool{}
	for _, p := range s.Platform.Probes() {
		pop[p.ID] = true
	}
	for _, p := range s.Probes {
		if !pop[p.ID] {
			t.Fatalf("selected probe %d not in the population", p.ID)
		}
		if !s.Topo.AS(p.AS).HasCity(p.City) {
			t.Fatalf("probe %d city %d not a PoP of %v", p.ID, p.City, p.AS)
		}
		if s.Topo.World.ContinentOf(p.City) == geo.ContinentNone {
			t.Fatalf("probe %d has no continent", p.ID)
		}
	}
}

// Every looking-glass answer must be reachable ground truth: the
// directory is backed by the same RIB that forwards packets.
func TestInvariantLookingGlassConsistency(t *testing.T) {
	s := getScenario(t)
	checked := 0
	for _, a := range s.Topo.ASesOfClass(topology.LargeISP) {
		if !s.LookingGlasses.Has(a) || checked >= 10 {
			continue
		}
		for i := range s.Measurements {
			m := &s.Measurements[i]
			e, err := s.LookingGlasses.Query(a, m.Prefix.Nth(1))
			if err != nil {
				break
			}
			rt, ok := s.RIB.Lookup(a, m.Prefix.Nth(1))
			if !ok || rt.NextHop != e.NextHop {
				t.Fatalf("LG answer for %v diverges from the RIB", a)
			}
			checked++
			break
		}
	}
	if checked == 0 {
		t.Skip("no queryable (AS, prefix) pairs at this seed")
	}
}
