package scenario

import (
	"math/rand"
	"testing"

	"routelab/internal/classify"
)

// Failure injection: the pipeline must degrade gracefully — fewer or
// unclassifiable measurements, never crashes or corrupt state — when the
// measurement infrastructure misbehaves.

func smallCfg() Config {
	cfg := TestConfig()
	cfg.NumProbes = 60
	cfg.TracesTarget = 400
	cfg.MaxAlternateTargets = 10
	return cfg
}

func TestFailureBlindGeolocation(t *testing.T) {
	cfg := smallCfg()
	cfg.GeoDB.MissRate = 1.0 // every lookup fails
	s, err := Build(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Measurements) == 0 {
		t.Fatal("blind geolocation should not kill the campaign")
	}
	gb := s.Context.GeoClassify(s.Measurements, classify.Simple)
	total := 0
	for _, n := range gb.Continental {
		total += n
	}
	if total != 0 {
		t.Errorf("continental decisions %d with a blind geolocation DB", total)
	}
	// Domestic analysis finds nothing but must not panic.
	rows := s.Context.DomesticAnalysis(s.Measurements, classify.Simple)
	for _, r := range rows {
		if r.NonBestShort != 0 {
			t.Errorf("domestic rows nonzero without geolocation: %+v", r)
		}
	}
}

func TestFailureDeafTraceroutes(t *testing.T) {
	cfg := smallCfg()
	cfg.Traceroute.NoReplyRate = 0.9 // almost every router silent
	s, err := Build(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Conversions mostly fail or shrink; whatever survives must still
	// be structurally valid.
	for i := range s.Measurements {
		m := &s.Measurements[i]
		if len(m.ASPath) < 2 {
			t.Fatalf("degenerate measurement survived extraction: %+v", m)
		}
	}
	t.Logf("deaf traceroutes: %d/%d usable", len(s.Measurements), s.TracesIssued)
}

func TestFailureHeavyPoisonFiltering(t *testing.T) {
	cfg := smallCfg()
	cfg.Topology.ASSetFilterRate = 0.9 // almost everyone drops AS_SETs
	s, err := Build(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	runs := s.RunAlternatesCampaign(rand.New(rand.NewSource(4)))
	// Discovery should terminate quickly (poisoned announcements barely
	// propagate) but must not hang or panic.
	for _, r := range runs {
		if len(r.Steps) > 8 {
			t.Errorf("target %v walked %d steps despite heavy filtering", r.Target, len(r.Steps))
		}
	}
	sum := s.Context.SummarizeAlternates(runs)
	if sum.Targets == 0 {
		t.Skip("no targets at this scale")
	}
}

func TestFailureNoVantagePoints(t *testing.T) {
	cfg := smallCfg()
	cfg.NumVantagePeers = 1 // a single monitor: inference starves
	s, err := Build(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Inferred.NumEdges() == 0 {
		t.Fatal("even one monitor sees some edges")
	}
	// Classification still runs; most decisions land in NonBest buckets
	// because the model graph is nearly empty. No panics is the test.
	bd := s.Context.Breakdown(s.Decisions(), classify.All1)
	total := 0
	for _, n := range bd {
		total += n
	}
	if total == 0 {
		t.Error("no decisions classified")
	}
}
