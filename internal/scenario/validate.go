package scenario

import (
	"errors"
	"fmt"
)

// A ConfigError reports one invalid Config field, named by its dotted
// field path from the Config root (e.g. "Topology.HybridLinkRate"), so
// tooling that compiles configs from documents — cmd/scengen and the
// -spec flags of both binaries — can surface which field to fix
// rather than a bare value. Validate returns them (possibly several,
// joined with errors.Join); match with errors.As.
type ConfigError struct {
	Field  string // dotted path from Config, e.g. "Topology.Scale"
	Value  any    // the rejected value
	Reason string // why it was rejected
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("scenario: invalid Config.%s = %v: %s", e.Field, e.Value, e.Reason)
}

// Validate checks the configuration for values no scenario can be
// built from, covering the nested Topology, Traceroute, and GeoDB
// configs as well as the campaign sizing. It returns nil for every
// config Build can handle, and a ConfigError (or several, via
// errors.Join) otherwise. Both binaries call it before the expensive
// Build, spec.Compile calls it on every compiled document, and Build
// calls it again as a backstop.
func (c *Config) Validate() error {
	var errs []error
	bad := func(field string, value any, reason string) {
		errs = append(errs, &ConfigError{Field: field, Value: value, Reason: reason})
	}
	if c.RoutingWorkers < 0 {
		bad("RoutingWorkers", c.RoutingWorkers, "must be >= 0 (0 selects GOMAXPROCS)")
	}
	if c.NumVantagePeers <= 0 {
		bad("NumVantagePeers", c.NumVantagePeers, "need at least one monitor feed per epoch")
	}
	if c.HistoricEpochs < 0 {
		bad("HistoricEpochs", c.HistoricEpochs, "must be >= 0")
	}
	if c.CurrentEpochs < 1 {
		bad("CurrentEpochs", c.CurrentEpochs, "need at least one current epoch (the live RIB)")
	}
	if c.NumProbes <= 0 {
		bad("NumProbes", c.NumProbes, "the campaign needs at least one probe")
	}
	if c.TracesTarget <= 0 {
		bad("TracesTarget", c.TracesTarget, "the campaign needs a positive traceroute budget")
	}
	if c.ActiveProbes < 0 {
		bad("ActiveProbes", c.ActiveProbes, "must be >= 0")
	}
	if c.PlanetLabNodes < 0 {
		bad("PlanetLabNodes", c.PlanetLabNodes, "must be >= 0")
	}
	if c.MaxAlternateTargets < 0 {
		bad("MaxAlternateTargets", c.MaxAlternateTargets, "must be >= 0 (0 = all observed targets)")
	}
	if c.ComplexCoverage < 0 || c.ComplexCoverage > 1 {
		bad("ComplexCoverage", c.ComplexCoverage, "is a fraction in [0, 1]")
	}

	// Topology: the generated Internet's class counts and phenomenon
	// rates. Counts of zero are legal (the generator applies floors);
	// negatives never are.
	if c.Topology.Scale < 0 {
		bad("Topology.Scale", c.Topology.Scale, "must be >= 0 (0 = default scale 1.0)")
	}
	for _, f := range []struct {
		field string
		value int
	}{
		{"Topology.NumTier1", c.Topology.NumTier1},
		{"Topology.NumLargeISP", c.Topology.NumLargeISP},
		{"Topology.NumSmallISP", c.Topology.NumSmallISP},
		{"Topology.NumStub", c.Topology.NumStub},
		{"Topology.NumContent", c.Topology.NumContent},
		{"Topology.NumCableOps", c.Topology.NumCableOps},
		{"Topology.NumContentMajors", c.Topology.NumContentMajors},
		{"Topology.NumHostnames", c.Topology.NumHostnames},
		{"Topology.NumCDNCaches", c.Topology.NumCDNCaches},
		{"Topology.SiblingGroups", c.Topology.SiblingGroups},
		{"Topology.RetiredLinkCount", c.Topology.RetiredLinkCount},
	} {
		if f.value < 0 {
			bad(f.field, f.value, "must be >= 0")
		}
	}
	if c.Topology.NumHostnames < 1 {
		bad("Topology.NumHostnames", c.Topology.NumHostnames,
			"the campaign needs at least one content hostname to measure")
	}
	if c.Topology.NumContentMajors < 1 {
		bad("Topology.NumContentMajors", c.Topology.NumContentMajors,
			"need at least one major content provider to host the measured hostnames")
	}
	for _, f := range []struct {
		field string
		value float64
	}{
		{"Topology.SiblingFreemailRate", c.Topology.SiblingFreemailRate},
		{"Topology.HybridLinkRate", c.Topology.HybridLinkRate},
		{"Topology.PartialTransitRate", c.Topology.PartialTransitRate},
		{"Topology.SelectiveExportRate", c.Topology.SelectiveExportRate},
		{"Topology.ContentSelectiveRate", c.Topology.ContentSelectiveRate},
		{"Topology.CacheSelectiveRate", c.Topology.CacheSelectiveRate},
		{"Topology.DomesticBiasRate", c.Topology.DomesticBiasRate},
		{"Topology.ContentPeerTERate", c.Topology.ContentPeerTERate},
		{"Topology.ASSetFilterRate", c.Topology.ASSetFilterRate},
		{"Topology.NoLoopPreventionRate", c.Topology.NoLoopPreventionRate},
	} {
		if f.value < 0 || f.value > 1 {
			bad(f.field, f.value, "is a probability in [0, 1]")
		}
	}

	// Traceroute: data-plane artifact rates. MaxHops of zero selects
	// the full DefaultConfig (see traceroute.New), so it stays legal.
	for _, f := range []struct {
		field string
		value float64
	}{
		{"Traceroute.NoReplyRate", c.Traceroute.NoReplyRate},
		{"Traceroute.ThirdPartyRate", c.Traceroute.ThirdPartyRate},
		{"Traceroute.IXPRate", c.Traceroute.IXPRate},
	} {
		if f.value < 0 || f.value > 1 {
			bad(f.field, f.value, "is a probability in [0, 1]")
		}
	}
	if c.Traceroute.MaxHops < 0 {
		bad("Traceroute.MaxHops", c.Traceroute.MaxHops, "must be >= 0 (0 selects the default config)")
	}

	// GeoDB: the geolocation error model.
	for _, f := range []struct {
		field string
		value float64
	}{
		{"GeoDB.MissRate", c.GeoDB.MissRate},
		{"GeoDB.WrongCityRate", c.GeoDB.WrongCityRate},
	} {
		if f.value < 0 || f.value > 1 {
			bad(f.field, f.value, "is a probability in [0, 1]")
		}
	}
	return errors.Join(errs...)
}
