package scenario

import (
	"errors"
	"fmt"
)

// A ConfigError reports one invalid Config field. Validate returns
// them (possibly several, joined with errors.Join), so callers can
// match with errors.As and print the offending field.
type ConfigError struct {
	Field  string // the Config field, e.g. "NumProbes"
	Value  any    // the rejected value
	Reason string // why it was rejected
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("scenario: invalid Config.%s = %v: %s", e.Field, e.Value, e.Reason)
}

// Validate checks the configuration for values no scenario can be
// built from. It returns nil for every config Build can handle, and a
// ConfigError (or several, via errors.Join) otherwise. Both binaries
// call it before the expensive Build, and Build calls it again as a
// backstop.
func (c *Config) Validate() error {
	var errs []error
	bad := func(field string, value any, reason string) {
		errs = append(errs, &ConfigError{Field: field, Value: value, Reason: reason})
	}
	if c.RoutingWorkers < 0 {
		bad("RoutingWorkers", c.RoutingWorkers, "must be >= 0 (0 selects GOMAXPROCS)")
	}
	if c.NumVantagePeers <= 0 {
		bad("NumVantagePeers", c.NumVantagePeers, "need at least one monitor feed per epoch")
	}
	if c.HistoricEpochs < 0 {
		bad("HistoricEpochs", c.HistoricEpochs, "must be >= 0")
	}
	if c.CurrentEpochs < 1 {
		bad("CurrentEpochs", c.CurrentEpochs, "need at least one current epoch (the live RIB)")
	}
	if c.NumProbes <= 0 {
		bad("NumProbes", c.NumProbes, "the campaign needs at least one probe")
	}
	if c.TracesTarget <= 0 {
		bad("TracesTarget", c.TracesTarget, "the campaign needs a positive traceroute budget")
	}
	if c.ActiveProbes < 0 {
		bad("ActiveProbes", c.ActiveProbes, "must be >= 0")
	}
	if c.PlanetLabNodes < 0 {
		bad("PlanetLabNodes", c.PlanetLabNodes, "must be >= 0")
	}
	if c.MaxAlternateTargets < 0 {
		bad("MaxAlternateTargets", c.MaxAlternateTargets, "must be >= 0 (0 = all observed targets)")
	}
	if c.Topology.Scale < 0 {
		bad("Topology.Scale", c.Topology.Scale, "must be >= 0 (0 = default scale 1.0)")
	}
	if c.ComplexCoverage < 0 || c.ComplexCoverage > 1 {
		bad("ComplexCoverage", c.ComplexCoverage, "is a fraction in [0, 1]")
	}
	return errors.Join(errs...)
}
