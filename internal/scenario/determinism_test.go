// External test package: the byte-identity half of the test renders via
// internal/experiments, which itself imports scenario.
package scenario_test

import (
	"bytes"
	"reflect"
	"testing"

	"routelab/internal/experiments"
	"routelab/internal/scenario"
)

// TestBuildDeterministicAcrossWorkerCounts is the concurrency model's
// load-bearing guarantee (DESIGN.md "Concurrency model"): the same
// configuration built with the serial reference path (RoutingWorkers=1)
// and with a wide worker pool must produce identical results — the same
// routing decisions, the same RIB, and byte-identical rendered output.
func TestBuildDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the scenario twice")
	}
	build := func(workers int) *scenario.Scenario {
		cfg := scenario.TestConfig()
		cfg.RoutingWorkers = workers
		s, err := scenario.Build(cfg, nil)
		if err != nil {
			t.Fatalf("Build(workers=%d): %v", workers, err)
		}
		return s
	}
	serial := build(1)
	wide := build(8)

	if got, want := len(wide.Measurements), len(serial.Measurements); got != want {
		t.Fatalf("measurement count: workers=8 got %d, workers=1 got %d", got, want)
	}
	if !reflect.DeepEqual(serial.Decisions(), wide.Decisions()) {
		t.Error("decisions differ between workers=1 and workers=8")
	}

	sp, wp := serial.RIB.Prefixes(), wide.RIB.Prefixes()
	if !reflect.DeepEqual(sp, wp) {
		t.Fatalf("RIB prefix sets differ: %d vs %d prefixes", len(sp), len(wp))
	}
	for _, p := range sp {
		if !reflect.DeepEqual(serial.RIB.RoutesFor(p), wide.RIB.RoutesFor(p)) {
			t.Errorf("RIB routes for %v differ between worker counts", p)
		}
	}

	// The end-to-end guarantee: rendered experiment output is
	// byte-identical (Figure 1 itself classifies in parallel, so this
	// also exercises the classify cache under concurrency).
	for _, render := range []struct {
		name string
		run  func(*bytes.Buffer, *scenario.Scenario)
	}{
		{"table1", func(b *bytes.Buffer, s *scenario.Scenario) { experiments.Table1(b, s) }},
		{"figure1", func(b *bytes.Buffer, s *scenario.Scenario) { experiments.Figure1(b, s) }},
	} {
		var a, b bytes.Buffer
		render.run(&a, serial)
		render.run(&b, wide)
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("%s output differs between workers=1 and workers=8", render.name)
		}
	}
}
