package scenario

import (
	"math/rand"
	"testing"

	"routelab/internal/classify"
)

// buildOnce caches the (comparatively expensive) test scenario.
var testScenario *Scenario

func getScenario(t *testing.T) *Scenario {
	t.Helper()
	if testScenario == nil {
		s, err := Build(TestConfig(), t.Logf)
		if err != nil {
			t.Fatal(err)
		}
		testScenario = s
	}
	return testScenario
}

func TestBuildProducesUsableCampaign(t *testing.T) {
	s := getScenario(t)
	if len(s.Measurements) < len(s.Probes)/2 {
		t.Fatalf("only %d usable measurements from %d probes", len(s.Measurements), len(s.Probes))
	}
	if s.DestinationASes() < 5 {
		t.Errorf("only %d destination ASes — off-net caches not spreading targets", s.DestinationASes())
	}
	if s.Inferred.NumEdges() == 0 {
		t.Fatal("empty inferred graph")
	}
	if len(s.Snapshots) != s.Cfg.HistoricEpochs+s.Cfg.CurrentEpochs {
		t.Fatalf("%d snapshots", len(s.Snapshots))
	}
}

func TestSimpleBreakdownShape(t *testing.T) {
	s := getScenario(t)
	ds := s.Decisions()
	if len(ds) < 500 {
		t.Fatalf("only %d decisions", len(ds))
	}
	bd := s.Context.Breakdown(ds, classify.Simple)
	total := 0
	for _, n := range bd {
		total += n
	}
	bestShort := float64(bd[classify.BestShort]) / float64(total)
	t.Logf("Simple breakdown: %v (Best/Short %.1f%%)", bd, 100*bestShort)
	// Paper band: 64.7% Best/Short, 14-35%% unexplained. Accept a loose
	// band here; the full-scale calibration test pins it tighter.
	if bestShort < 0.45 || bestShort > 0.92 {
		t.Errorf("Best/Short fraction %.2f wildly out of band", bestShort)
	}
}

func TestRefinementsOnlyImprove(t *testing.T) {
	s := getScenario(t)
	ds := s.Decisions()
	base := s.Context.Breakdown(ds, classify.Simple)[classify.BestShort]
	for _, ref := range []classify.Refinement{classify.Sibs, classify.All1} {
		got := s.Context.Breakdown(ds, ref)[classify.BestShort]
		if got < base {
			t.Errorf("%s Best/Short %d < Simple %d — refinement made things worse", ref, got, base)
		}
	}
	all1 := s.Context.Breakdown(ds, classify.All1)[classify.BestShort]
	all2 := s.Context.Breakdown(ds, classify.All2)[classify.BestShort]
	if all2 > all1 {
		t.Errorf("All-2 (%d) explained more than All-1 (%d); criteria 2 is the conservative one", all2, all1)
	}
}

func TestMagnetCampaignProducesDecisions(t *testing.T) {
	s := getScenario(t)
	mc := s.RunMagnetCampaign(rand.New(rand.NewSource(9)))
	if len(mc.Runs) != len(s.Testbed.Muxes) {
		t.Fatalf("%d runs", len(mc.Runs))
	}
	if len(mc.FeedDecisions) == 0 || len(mc.TraceDecisions) == 0 {
		t.Fatalf("empty decision sets: feed=%d trace=%d", len(mc.FeedDecisions), len(mc.TraceDecisions))
	}
	bd := s.Context.MagnetBreakdown(mc.FeedDecisions)
	total := 0
	for _, n := range bd {
		total += n
	}
	if total == 0 {
		t.Fatal("no classifiable feed decisions")
	}
	t.Logf("feed magnet breakdown: %v", bd)
}

func TestAlternatesCampaign(t *testing.T) {
	s := getScenario(t)
	runs := s.RunAlternatesCampaign(rand.New(rand.NewSource(10)))
	if len(runs) == 0 {
		t.Fatal("no targets")
	}
	sum := s.Context.SummarizeAlternates(runs)
	if sum.Targets == 0 || sum.Announcements == 0 {
		t.Fatalf("summary: %+v", sum)
	}
	t.Logf("alternates: %d targets, verdicts %v, %d announcements, links %d/%d missing (%d poison-only)",
		sum.Targets, sum.Verdicts, sum.Announcements,
		sum.LinksMissing, sum.LinksObserved, sum.LinksOnlyPoisoned)
	if sum.Verdicts[classify.AltBestShort] == 0 {
		t.Error("nobody followed Best&Shortest — implausible")
	}
}

func TestBuildDeterministic(t *testing.T) {
	cfg := TestConfig()
	cfg.TracesTarget = 300
	cfg.NumProbes = 60
	a, err := Build(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Measurements) != len(b.Measurements) || a.TracesIssued != b.TracesIssued {
		t.Fatalf("same config produced different campaigns: %d/%d vs %d/%d",
			len(a.Measurements), a.TracesIssued, len(b.Measurements), b.TracesIssued)
	}
	if a.Inferred.NumEdges() != b.Inferred.NumEdges() {
		t.Error("inferred graphs differ across identical builds")
	}
}
