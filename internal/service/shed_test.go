package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"

	"routelab/internal/obs"
)

// waitUntil polls cond until it holds or the deadline passes — the
// saturation tests use it to wait for a caller to be parked in a gate
// queue before declaring the fleet saturated.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// getShedErr fetches url and returns the status, body, and Retry-After
// header — the triple every shed assertion needs. No test handle, so it
// is safe from the non-test goroutines the saturation tests spawn
// (t.Fatal outside the test goroutine is undefined; vet's
// testinggoroutine check enforces it).
func getShedErr(url string) (status int, body, retryAfter string, err error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, "", "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, "", "", err
	}
	return resp.StatusCode, string(raw), resp.Header.Get("Retry-After"), nil
}

// getShed is getShedErr for the test goroutine proper.
func getShed(t *testing.T, url string) (int, string, string) {
	t.Helper()
	status, body, ra, err := getShedErr(url)
	if err != nil {
		t.Fatal(err)
	}
	return status, body, ra
}

// getErr fetches url without a test handle (status 0 on transport
// error) — the goroutine-safe counterpart of get.
func getErr(url string) (int, string, error) {
	status, body, _, err := getShedErr(url)
	return status, body, err
}

// getQuiet fetches url from a non-test goroutine discarding the
// response: such requests exist to occupy a slot, and are either
// checked elsewhere or not at all.
func getQuiet(url string) {
	resp, err := http.Get(url)
	if err != nil {
		return
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// checkShedResponse asserts the full shed contract on one response:
// 429, a positive integral Retry-After, and a valid error envelope
// carrying the overloaded code.
func checkShedResponse(t *testing.T, status int, body, retryAfter string) {
	t.Helper()
	if status != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429\n%s", status, body)
	}
	secs, err := strconv.Atoi(retryAfter)
	if err != nil || secs < 1 {
		t.Errorf("Retry-After %q, want a positive integer", retryAfter)
	}
	env := checkEnvelope(t, body)
	if env.Kind != "error" {
		t.Fatalf("kind %q, want error", env.Kind)
	}
	var ed ErrorData
	if err := json.Unmarshal(env.Data, &ed); err != nil {
		t.Fatalf("error data: %v", err)
	}
	if ed.Code != CodeOverloaded {
		t.Errorf("code %q, want %q", ed.Code, CodeOverloaded)
	}
}

// TestRequestSheddingExactCounters saturates a single tenant's
// admission gate — one compute slot held, one caller queued at the
// queue budget — and checks that every further distinct-key request
// sheds with the full 429 contract, that service.shed.requests matches
// the client-observed 429s EXACTLY, and that every successful response
// during and after the overload is byte-identical to an unsaturated
// control server over the same sealed scenario.
func TestRequestSheddingExactCounters(t *testing.T) {
	obs.Reset()
	srv, ts := newTestServer(t, Config{MaxConcurrent: 1, MaxQueuedRequests: 1})
	_, control := newTestServer(t, Config{})

	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	srv.computeHook = func() {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-release
	}
	url := func(base string, seed int) string {
		return fmt.Sprintf("%s/v1/experiments/figure1?seed=%d", base, seed)
	}

	// A occupies the only compute slot (parked in the hook).
	type result struct {
		status int
		body   string
	}
	resA := make(chan result, 1)
	go func() {
		s, b, err := getErr(url(ts.URL, 1))
		if err != nil {
			t.Error(err)
		}
		resA <- result{s, b}
	}()
	<-entered

	// B fills the queue budget (parked in gate.Enter).
	resB := make(chan result, 1)
	go func() {
		s, b, err := getErr(url(ts.URL, 2))
		if err != nil {
			t.Error(err)
		}
		resB <- result{s, b}
	}()
	waitUntil(t, "B to queue on the admission gate", func() bool { return srv.gate.Waiting() == 1 })

	// Saturated: every new key must shed, and each 429 is one counter
	// increment — the reconciliation the load harness gates on.
	const overload = 5
	for i := 0; i < overload; i++ {
		status, body, retryAfter := getShed(t, url(ts.URL, 10+i))
		checkShedResponse(t, status, body, retryAfter)
	}
	if n := obs.Snap().Counters["service.shed.requests"]; n != overload {
		t.Errorf("service.shed.requests = %d, want %d (exactly the client-observed 429s)", n, overload)
	}

	close(release)
	a, b := <-resA, <-resB
	if a.status != http.StatusOK || b.status != http.StatusOK {
		t.Fatalf("held requests: status %d/%d, want 200/200", a.status, b.status)
	}

	// Byte-identity under shedding: the responses that did succeed —
	// and the previously-shed keys once capacity returns — match the
	// control server byte for byte.
	if _, want := get(t, url(control.URL, 1)); want != a.body {
		t.Error("seed 1 body diverged from control under saturation")
	}
	if _, want := get(t, url(control.URL, 2)); want != b.body {
		t.Error("seed 2 body diverged from control under saturation")
	}
	for i := 0; i < overload; i++ {
		status, got := get(t, url(ts.URL, 10+i))
		if status != http.StatusOK {
			t.Fatalf("post-overload seed %d: status %d", 10+i, status)
		}
		if _, want := get(t, url(control.URL, 10+i)); want != got {
			t.Errorf("post-overload seed %d body diverged from control", 10+i)
		}
	}
	if n := obs.Snap().Counters["service.shed.requests"]; n != overload {
		t.Errorf("service.shed.requests = %d after recovery, want still %d", n, overload)
	}
}

// TestRequestSheddingCoalescedWaiters pins the counter semantics under
// singleflight: requests for the SAME key as a queued computation
// coalesce onto it and succeed together — they must NOT shed, and must
// not inflate the counter.
func TestRequestSheddingCoalescedWaiters(t *testing.T) {
	obs.Reset()
	srv, ts := newTestServer(t, Config{MaxConcurrent: 1, MaxQueuedRequests: 1})
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	srv.computeHook = func() {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-release
	}

	go getQuiet(ts.URL + "/v1/experiments/figure1?seed=1")
	<-entered
	queuedURL := ts.URL + "/v1/experiments/figure1?seed=2"
	go getQuiet(queuedURL)
	waitUntil(t, "leader to queue", func() bool { return srv.gate.Waiting() == 1 })

	// Coalesce several more clients onto the queued key, then release.
	const followers = 4
	var wg sync.WaitGroup
	statuses := make([]int, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var err error
			if statuses[i], _, err = getErr(queuedURL); err != nil {
				t.Error(err)
			}
		}(i)
	}
	// Let the followers park on the in-flight call. Parking isn't
	// observable without instrumenting the cache, so this is a grace
	// period, not a synchronization point — a late follower is served
	// from cache and must not shed either way.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	for i, s := range statuses {
		if s != http.StatusOK {
			t.Errorf("coalesced client %d: status %d, want 200", i, s)
		}
	}
	if n := obs.Snap().Counters["service.shed.requests"]; n != 0 {
		t.Errorf("service.shed.requests = %d, want 0 (coalesced waiters are not sheds)", n)
	}
}

// TestBuildSheddingExactCounters saturates the store's build gate — one
// build held via the buildHook seam, one cold-scenario leader queued at
// the queue budget — and checks that further cold scenarios shed 429
// (including waiters coalesced onto a shed build leader), that
// service.shed.builds reconciles exactly with client-observed 429s,
// that shed scenarios report "pending" (a shed never starts a build),
// and that they build cleanly once capacity returns.
func TestBuildSheddingExactCounters(t *testing.T) {
	obs.Reset()
	st, ts := newTestFleet(t, StoreConfig{MaxBuilds: 1, MaxQueuedBuilds: 1},
		testExpansion("alpha", 1), testExpansion("beta", 2),
		testExpansion("gamma", 3), testExpansion("delta", 4))

	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	st.buildHook = func(id string) {
		if id != "alpha" {
			return
		}
		select {
		case entered <- struct{}{}:
		default:
		}
		<-release
	}
	turl := func(id string) string { return ts.URL + "/v1/scenarios/" + id + "/healthz" }

	// Alpha's build holds the only build slot.
	statusA := make(chan int, 1)
	go func() {
		s, _, err := getErr(turl("alpha"))
		if err != nil {
			t.Error(err)
		}
		statusA <- s
	}()
	<-entered

	// Beta's build leader fills the build-gate queue.
	statusB := make(chan int, 1)
	go func() {
		s, _, err := getErr(turl("beta"))
		if err != nil {
			t.Error(err)
		}
		statusB <- s
	}()
	waitUntil(t, "beta to queue on the build gate", func() bool { return st.buildGate.Waiting() == 1 })

	// Two concurrent gamma clients: whichever leads the build sheds, and
	// the other either coalesces onto that shed (inheriting the
	// OverloadError) or leads its own and sheds too — both must observe
	// the full 429 contract either way. Delta sheds serially.
	var wg sync.WaitGroup
	gamma := make([]struct {
		status   int
		body, ra string
	}, 2)
	for i := range gamma {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var err error
			if gamma[i].status, gamma[i].body, gamma[i].ra, err = getShedErr(turl("gamma")); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	for i := range gamma {
		checkShedResponse(t, gamma[i].status, gamma[i].body, gamma[i].ra)
	}
	status, body, ra := getShed(t, turl("delta"))
	checkShedResponse(t, status, body, ra)

	if n := obs.Snap().Counters["service.shed.builds"]; n != 3 {
		t.Errorf("service.shed.builds = %d, want 3 (exactly the client-observed 429s)", n)
	}

	// A shed never starts a build: gamma still reports pending.
	d, err := st.BuildProgress("gamma")
	if err != nil {
		t.Fatal(err)
	}
	if d.State != BuildPending {
		t.Errorf("shed scenario state %q, want pending", d.State)
	}

	close(release)
	if s := <-statusA; s != http.StatusOK {
		t.Errorf("alpha: status %d, want 200", s)
	}
	if s := <-statusB; s != http.StatusOK {
		t.Errorf("beta (queued through the overload): status %d, want 200", s)
	}
	// Capacity is back: the shed scenarios build and serve.
	if s, b := get(t, turl("gamma")); s != http.StatusOK {
		t.Errorf("gamma after recovery: status %d\n%s", s, b)
	}
	if n := obs.Snap().Counters["service.shed.builds"]; n != 3 {
		t.Errorf("service.shed.builds = %d after recovery, want still 3", n)
	}
}
