package service

import (
	"bytes"
	"net/http/httptest"
	"testing"

	"routelab/internal/spec"
)

// FuzzAdmitSpec drives the fleet admission decode path — the body
// sniffer (specFormat), the spec parser, and the expansion — with
// arbitrary bodies, Content-Types, and ?format= values. The checked-in
// corpus under testdata/fuzz/FuzzAdmitSpec seeds it with the real
// scenario-corpus specs plus format-dispatch edge cases (regenerate
// with cmd/corpusgen). Properties:
//
//   - the pipeline never panics; malformed input returns an error at
//     some stage, exactly as POST /v1/scenarios would 400 it;
//   - format dispatch is total: whenever specFormat accepts, it names
//     a parser spec.Parse knows;
//   - an accepted expansion is admissible if and only if it carries a
//     name — Register on a fresh store must agree with the handler's
//     contract, never letting an anonymous or half-parsed spec into
//     the fleet.
func FuzzAdmitSpec(f *testing.F) {
	f.Add([]byte("spec: routelab-spec/v1\nname: x\nprofile: test\n"), "", "")
	f.Add([]byte(`{"spec": "routelab-spec/v1", "name": "x", "profile": "test"}`), "application/json", "")
	f.Add([]byte("{}"), "", "yaml")
	f.Add([]byte("---"), "text/plain", "")
	f.Fuzz(func(t *testing.T, body []byte, contentType, formatQ string) {
		if len(body) > maxSpecBytes {
			// The handler 413s larger bodies before decoding; mirror the
			// cap so the fuzzer spends its budget on reachable inputs.
			return
		}
		r := httptest.NewRequest("POST", "/v1/scenarios", bytes.NewReader(body))
		if contentType != "" {
			r.Header.Set("Content-Type", contentType)
		}
		if formatQ != "" {
			q := r.URL.Query()
			q.Set("format", formatQ)
			r.URL.RawQuery = q.Encode()
		}
		format, err := specFormat(r, body)
		if err != nil {
			return
		}
		if format != "yaml" && format != "json" {
			t.Fatalf("specFormat accepted %q, not a known parser", format)
		}
		sp, err := spec.Parse("fuzz request", body, format, nil)
		if err != nil {
			return
		}
		exp, err := sp.Expansion()
		if err != nil {
			return
		}
		st := NewStore(StoreConfig{})
		regErr := st.Register(exp, "fuzz")
		if (regErr == nil) != (exp.Name != "") {
			t.Fatalf("admissibility disagrees with name %q: register err %v", exp.Name, regErr)
		}
	})
}
