package service

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestPercentile(t *testing.T) {
	sorted := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	cases := []struct {
		q    float64
		want int64
	}{
		{0.50, 50},
		{0.90, 90},
		{0.99, 100},
		{1.00, 100},
		{0.01, 10},
	}
	for _, tc := range cases {
		if got := percentile(sorted, tc.q); got != tc.want {
			t.Errorf("percentile(q=%g) = %d, want %d", tc.q, got, tc.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("percentile(empty) = %d, want 0", got)
	}
	if got := percentile([]int64{7}, 0.99); got != 7 {
		t.Errorf("percentile(single) = %d, want 7", got)
	}
}

// loadSamples fabricates a small mixed run: two scenarios, two endpoint
// families, one failure, a hit/miss mix.
func loadSamples() []LoadSample {
	return []LoadSample{
		{Scenario: "alpha", Endpoint: "classify", LatencyNS: 100, Status: 200, Cache: "miss"},
		{Scenario: "alpha", Endpoint: "classify", LatencyNS: 50, Status: 200, Cache: "hit"},
		{Scenario: "beta", Endpoint: "classify", LatencyNS: 200, Status: 200, Cache: "miss"},
		{Scenario: "beta", Endpoint: "healthz", LatencyNS: 10, Status: 200},
		{Scenario: "alpha", Endpoint: "healthz", LatencyNS: 1000, Status: 500, Failed: true},
	}
}

func TestBuildLoadReport(t *testing.T) {
	rep := BuildLoadReport("routeload -test", "http://x", []string{"beta", "alpha"}, 4, 2e9, loadSamples())
	if err := rep.Validate(); err != nil {
		t.Fatalf("built report invalid: %v", err)
	}
	if rep.Requests != 5 || rep.Errors != 1 {
		t.Errorf("requests/errors = %d/%d, want 5/1", rep.Requests, rep.Errors)
	}
	if rep.ErrorRate != 0.2 {
		t.Errorf("error rate %g, want 0.2", rep.ErrorRate)
	}
	if rep.CacheHits != 1 || rep.CacheMisses != 2 {
		t.Errorf("cache hits/misses = %d/%d, want 1/2", rep.CacheHits, rep.CacheMisses)
	}
	if rep.Throughput != 2.5 {
		t.Errorf("throughput %g req/s, want 2.5", rep.Throughput)
	}
	if rep.Latency.MaxNS != 1000 {
		t.Errorf("max latency %d, want 1000", rep.Latency.MaxNS)
	}
	// Scenario list is sorted regardless of input order, and the
	// breakdowns are published in sorted key order (maporder).
	if rep.Scenarios[0] != "alpha" || rep.Scenarios[1] != "beta" {
		t.Errorf("scenarios not sorted: %v", rep.Scenarios)
	}
	if len(rep.Endpoints) != 2 || rep.Endpoints[0].Endpoint != "classify" || rep.Endpoints[1].Endpoint != "healthz" {
		t.Fatalf("endpoint breakdown wrong: %+v", rep.Endpoints)
	}
	if rep.Endpoints[0].Requests != 3 || rep.Endpoints[1].Errors != 1 {
		t.Errorf("endpoint counts wrong: %+v", rep.Endpoints)
	}
	if len(rep.PerScenario) != 2 || rep.PerScenario[0].Scenario != "alpha" || rep.PerScenario[0].Requests != 3 {
		t.Errorf("per-scenario breakdown wrong: %+v", rep.PerScenario)
	}
}

func TestLoadReportValidateRejects(t *testing.T) {
	good := func() LoadReport {
		return BuildLoadReport("c", "t", []string{"a"}, 1, 1e9, loadSamples())
	}
	cases := []struct {
		name   string
		break_ func(*LoadReport)
	}{
		{"schema", func(r *LoadReport) { r.Schema = "routelab-load/v0" }},
		{"clients", func(r *LoadReport) { r.Clients = 0 }},
		{"requests", func(r *LoadReport) { r.Requests = 0 }},
		{"errors", func(r *LoadReport) { r.Errors = r.Requests + 1 }},
		{"error rate", func(r *LoadReport) { r.ErrorRate = 1.5 }},
		{"cache rate", func(r *LoadReport) { r.CacheHitRate = -0.1 }},
		{"cache counts", func(r *LoadReport) { r.CacheHits = r.Requests + 1 }},
		{"wall", func(r *LoadReport) { r.WallNS = 0 }},
		{"throughput", func(r *LoadReport) { r.Throughput = 0 }},
		{"percentile order", func(r *LoadReport) { r.Latency.P50NS = r.Latency.MaxNS + 1 }},
		{"no endpoints", func(r *LoadReport) { r.Endpoints = nil }},
		{"endpoint name", func(r *LoadReport) { r.Endpoints[0].Endpoint = "" }},
		{"request sum", func(r *LoadReport) { r.Endpoints[0].Requests++ }},
		{"error sum", func(r *LoadReport) { r.Endpoints[0].Errors++ }},
	}
	for _, tc := range cases {
		rep := good()
		tc.break_(&rep)
		if err := rep.Validate(); err == nil {
			t.Errorf("%s: broken report accepted", tc.name)
		}
	}
}

func TestLoadReportRoundTrip(t *testing.T) {
	rep := BuildLoadReport("routeload -test", "http://x", []string{"alpha"}, 2, 3e9, loadSamples())
	path := filepath.Join(t.TempDir(), "LOAD_routelab.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != LoadSchema || back.Requests != rep.Requests || back.Throughput != rep.Throughput {
		t.Errorf("round trip mismatch: %+v vs %+v", back, rep)
	}

	// An invalid report must not be writable, and a truncated file must
	// not be readable.
	bad := rep
	bad.Schema = "nope"
	if err := bad.WriteFile(path); err == nil {
		t.Error("invalid report written")
	}
	if _, err := ReadLoadReport(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file read")
	}
}

func TestLoadReportValidateMessage(t *testing.T) {
	rep := BuildLoadReport("c", "t", nil, 1, 1e9, loadSamples())
	rep.Schema = "bogus"
	err := rep.Validate()
	if err == nil || !strings.Contains(err.Error(), LoadSchema) {
		t.Errorf("schema error %v should name the expected schema", err)
	}
}
