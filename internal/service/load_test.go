package service

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestPercentile(t *testing.T) {
	sorted := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	cases := []struct {
		q    float64
		want int64
	}{
		{0.50, 50},
		{0.90, 90},
		{0.99, 100},
		{1.00, 100},
		{0.01, 10},
	}
	for _, tc := range cases {
		if got := percentile(sorted, tc.q); got != tc.want {
			t.Errorf("percentile(q=%g) = %d, want %d", tc.q, got, tc.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("percentile(empty) = %d, want 0", got)
	}
	if got := percentile([]int64{7}, 0.99); got != 7 {
		t.Errorf("percentile(single) = %d, want 7", got)
	}
}

// loadSamples fabricates a small mixed run: two scenarios, two endpoint
// families, one failure, one clean shed, a hit/miss mix, and start
// offsets spanning two one-second buckets.
func loadSamples() []LoadSample {
	return []LoadSample{
		{Scenario: "alpha", Endpoint: "classify", StartNS: 0, LatencyNS: 100, Status: 200, Cache: "miss"},
		{Scenario: "alpha", Endpoint: "classify", StartNS: 2e8, LatencyNS: 50, Status: 200, Cache: "hit"},
		{Scenario: "beta", Endpoint: "classify", StartNS: 1.1e9, LatencyNS: 200, Status: 200, Cache: "miss"},
		{Scenario: "beta", Endpoint: "healthz", StartNS: 1.2e9, LatencyNS: 10, Status: 200},
		{Scenario: "alpha", Endpoint: "healthz", StartNS: 1.5e9, LatencyNS: 1000, Status: 500, Failed: true},
		{Scenario: "beta", Endpoint: "whatif", StartNS: 1.6e9, LatencyNS: 20, Status: 429},
	}
}

func TestBuildLoadReport(t *testing.T) {
	rep := BuildLoadReport("routeload -test", "http://x", []string{"beta", "alpha"}, 4, 2e9, 0, loadSamples())
	if err := rep.Validate(); err != nil {
		t.Fatalf("built report invalid: %v", err)
	}
	if rep.Requests != 6 || rep.Errors != 1 || rep.Sheds != 1 {
		t.Errorf("requests/errors/sheds = %d/%d/%d, want 6/1/1", rep.Requests, rep.Errors, rep.Sheds)
	}
	if rep.ErrorRate != 1.0/6 || rep.ShedRate != 1.0/6 {
		t.Errorf("error/shed rate %g/%g, want 1/6 each", rep.ErrorRate, rep.ShedRate)
	}
	if rep.CacheHits != 1 || rep.CacheMisses != 2 {
		t.Errorf("cache hits/misses = %d/%d, want 1/2", rep.CacheHits, rep.CacheMisses)
	}
	if rep.Throughput != 3 {
		t.Errorf("throughput %g req/s, want 3", rep.Throughput)
	}
	if rep.Latency.MaxNS != 1000 {
		t.Errorf("max latency %d, want 1000", rep.Latency.MaxNS)
	}
	if rep.BucketNS != 0 || rep.Buckets != nil {
		t.Errorf("bucketNS=0 run grew buckets: %d/%+v", rep.BucketNS, rep.Buckets)
	}
	// Scenario list is sorted regardless of input order, and the
	// breakdowns are published in sorted key order (maporder).
	if rep.Scenarios[0] != "alpha" || rep.Scenarios[1] != "beta" {
		t.Errorf("scenarios not sorted: %v", rep.Scenarios)
	}
	if len(rep.Endpoints) != 3 || rep.Endpoints[0].Endpoint != "classify" || rep.Endpoints[1].Endpoint != "healthz" || rep.Endpoints[2].Endpoint != "whatif" {
		t.Fatalf("endpoint breakdown wrong: %+v", rep.Endpoints)
	}
	if rep.Endpoints[0].Requests != 3 || rep.Endpoints[1].Errors != 1 || rep.Endpoints[2].Sheds != 1 {
		t.Errorf("endpoint counts wrong: %+v", rep.Endpoints)
	}
	if len(rep.PerScenario) != 2 || rep.PerScenario[0].Scenario != "alpha" || rep.PerScenario[0].Requests != 3 {
		t.Errorf("per-scenario breakdown wrong: %+v", rep.PerScenario)
	}
	if rep.PerScenario[1].Sheds != 1 {
		t.Errorf("beta sheds = %d, want 1", rep.PerScenario[1].Sheds)
	}
}

func TestBuildLoadReportBuckets(t *testing.T) {
	rep := BuildLoadReport("routeload -test", "http://x", []string{"alpha", "beta"}, 4, 2e9, 1e9, loadSamples())
	if err := rep.Validate(); err != nil {
		t.Fatalf("bucketed report invalid: %v", err)
	}
	if rep.BucketNS != 1e9 || len(rep.Buckets) != 2 {
		t.Fatalf("bucket shape wrong: bucketNS %d, %d buckets", rep.BucketNS, len(rep.Buckets))
	}
	b0, b1 := rep.Buckets[0], rep.Buckets[1]
	if b0.StartNS != 0 || b0.EndNS != 1e9 || b1.StartNS != 1e9 || b1.EndNS != 2e9 {
		t.Errorf("bucket spans wrong: %+v %+v", b0, b1)
	}
	if b0.Requests != 2 || b0.Errors != 0 || b0.Sheds != 0 {
		t.Errorf("bucket 0 counts = %d/%d/%d, want 2/0/0", b0.Requests, b0.Errors, b0.Sheds)
	}
	if b1.Requests != 4 || b1.Errors != 1 || b1.Sheds != 1 {
		t.Errorf("bucket 1 counts = %d/%d/%d, want 4/1/1", b1.Requests, b1.Errors, b1.Sheds)
	}
	if b0.Latency.MaxNS != 100 || b1.Latency.MaxNS != 1000 {
		t.Errorf("bucket latency wrong: %+v %+v", b0.Latency, b1.Latency)
	}
	// An empty middle bucket is still emitted: the tiling is contiguous.
	sparse := []LoadSample{
		{Endpoint: "healthz", StartNS: 0, LatencyNS: 1, Status: 200},
		{Endpoint: "healthz", StartNS: 2.5e9, LatencyNS: 1, Status: 200},
	}
	rep = BuildLoadReport("c", "t", nil, 1, 3e9, 1e9, sparse)
	if err := rep.Validate(); err != nil {
		t.Fatalf("sparse report invalid: %v", err)
	}
	if len(rep.Buckets) != 3 || rep.Buckets[1].Requests != 0 {
		t.Fatalf("sparse tiling wrong: %+v", rep.Buckets)
	}
}

// TestLoadSampleShed pins the clean-shed definition: 429 and not
// Failed. A malformed 429 (Failed set by the harness) is an error.
func TestLoadSampleShed(t *testing.T) {
	if !(LoadSample{Status: 429}).Shed() {
		t.Error("clean 429 not a shed")
	}
	if (LoadSample{Status: 429, Failed: true}).Shed() {
		t.Error("failed 429 counted as shed")
	}
	if (LoadSample{Status: 200}).Shed() {
		t.Error("200 counted as shed")
	}
}

func TestLoadReportValidateRejects(t *testing.T) {
	good := func() LoadReport {
		return BuildLoadReport("c", "t", []string{"a"}, 1, 2e9, 1e9, loadSamples())
	}
	cases := []struct {
		name   string
		break_ func(*LoadReport)
	}{
		{"schema", func(r *LoadReport) { r.Schema = "routelab-load/v0" }},
		{"clients", func(r *LoadReport) { r.Clients = 0 }},
		{"requests", func(r *LoadReport) { r.Requests = 0 }},
		{"errors", func(r *LoadReport) { r.Errors = r.Requests + 1 }},
		{"error rate", func(r *LoadReport) { r.ErrorRate = 1.5 }},
		{"cache rate", func(r *LoadReport) { r.CacheHitRate = -0.1 }},
		{"cache counts", func(r *LoadReport) { r.CacheHits = r.Requests + 1 }},
		{"wall", func(r *LoadReport) { r.WallNS = 0 }},
		{"throughput", func(r *LoadReport) { r.Throughput = 0 }},
		{"percentile order", func(r *LoadReport) { r.Latency.P50NS = r.Latency.MaxNS + 1 }},
		{"no endpoints", func(r *LoadReport) { r.Endpoints = nil }},
		{"endpoint name", func(r *LoadReport) { r.Endpoints[0].Endpoint = "" }},
		{"request sum", func(r *LoadReport) { r.Endpoints[0].Requests++ }},
		{"error sum", func(r *LoadReport) { r.Endpoints[0].Errors++ }},
		{"sheds over requests", func(r *LoadReport) { r.Sheds = r.Requests + 1 }},
		{"sheds plus errors", func(r *LoadReport) { r.Sheds = r.Requests - r.Errors + 1 }},
		{"shed rate", func(r *LoadReport) { r.ShedRate = -0.1 }},
		{"shed sum", func(r *LoadReport) { r.Endpoints[0].Sheds++ }},
		{"buckets without width", func(r *LoadReport) { r.BucketNS = 0 }},
		{"width without buckets", func(r *LoadReport) { r.Buckets = nil }},
		{"bucket span", func(r *LoadReport) { r.Buckets[1].StartNS++ }},
		{"bucket request sum", func(r *LoadReport) { r.Buckets[0].Requests++ }},
		{"bucket error sum", func(r *LoadReport) { r.Buckets[0].Errors = r.Buckets[0].Requests + 1 }},
		{"bucket shed sum", func(r *LoadReport) { r.Buckets[0].Sheds++ }},
		{"bucket latency order", func(r *LoadReport) { r.Buckets[1].Latency.P50NS = r.Buckets[1].Latency.MaxNS + 1 }},
	}
	for _, tc := range cases {
		rep := good()
		tc.break_(&rep)
		if err := rep.Validate(); err == nil {
			t.Errorf("%s: broken report accepted", tc.name)
		}
	}
}

func TestLoadReportRoundTrip(t *testing.T) {
	rep := BuildLoadReport("routeload -test", "http://x", []string{"alpha"}, 2, 3e9, 1e9, loadSamples())
	path := filepath.Join(t.TempDir(), "LOAD_routelab.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != LoadSchema || back.Requests != rep.Requests || back.Throughput != rep.Throughput {
		t.Errorf("round trip mismatch: %+v vs %+v", back, rep)
	}

	// An invalid report must not be writable, and a truncated file must
	// not be readable.
	bad := rep
	bad.Schema = "nope"
	if err := bad.WriteFile(path); err == nil {
		t.Error("invalid report written")
	}
	if _, err := ReadLoadReport(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file read")
	}
}

func TestLoadReportValidateMessage(t *testing.T) {
	rep := BuildLoadReport("c", "t", nil, 1, 1e9, 0, loadSamples())
	rep.Schema = "bogus"
	err := rep.Validate()
	if err == nil || !strings.Contains(err.Error(), LoadSchema) {
		t.Errorf("schema error %v should name the expected schema", err)
	}
}
