package service

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"routelab/internal/obs"
)

// Load shedding: when a gate's queue is deeper than its configured
// budget, a request is better refused now — a fast, typed 429 the
// client can retry — than queued behind work it will time out waiting
// for. Two gates shed independently:
//
//   - the per-tenant admission gate (Config.MaxQueuedRequests): a
//     tenant whose compute line is full sheds new computations;
//   - the store's build gate (StoreConfig.MaxQueuedBuilds): a fleet
//     whose cold-scenario build queue is full sheds new builds.
//
// Sheds are deliberately counted at the RESPONSE-WRITE site
// (failOverload), not where the OverloadError is raised: both the
// response cache and the store coalesce waiters onto one in-flight
// computation, so a single raised error can fan out into many client
// 429s. Counting per written 429 keeps service.shed.{requests,builds}
// exactly equal to what clients observe — the reconciliation the
// saturation suite asserts.

// OverloadError reports a shed: the named gate's queue was at or past
// its budget when the request arrived. It carries the Retry-After hint
// (whole seconds) the 429 response advertises.
type OverloadError struct {
	What       string // "request" or "build" — which gate shed
	Queue      int    // observed queue depth at shed time
	Limit      int    // the configured budget it met or exceeded
	RetryAfter int    // whole seconds; clamped to [1, maxRetryAfter]
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("overloaded: %s queue depth %d at budget %d", e.What, e.Queue, e.Limit)
}

// Retry-After bounds. A shed request can retry almost immediately (the
// admission gate turns over per request); a shed build should wait on
// the order of a build. maxRetryAfter keeps a pathological estimate
// from telling clients to go away for an hour.
const (
	requestRetryAfter = 1
	minRetryAfter     = 1
	maxRetryAfter     = 600
)

// buildRetryAfter estimates how long a shed build client should wait:
// the mean observed scenario build time (from the obs stage timer — no
// wall clock is read here, only recorded aggregates) times the line
// length ahead of it, rounded up to whole seconds and clamped. Before
// any build has completed the mean is unknown; 5s is a conservative
// small-scenario default.
func buildRetryAfter(queue int) int {
	mean := obs.Default().Timer("service/scenario-build").Mean()
	if mean <= 0 {
		return 5
	}
	est := mean * time.Duration(queue+1)
	sec := int((est + time.Second - 1) / time.Second)
	if sec < minRetryAfter {
		sec = minRetryAfter
	}
	if sec > maxRetryAfter {
		sec = maxRetryAfter
	}
	return sec
}

// failOverload writes the 429: Retry-After header, overloaded envelope
// code, and the shed counter for the gate that refused. This is the
// only site that increments service.shed.* (see the package comment on
// counting at the write site).
func failOverload(w http.ResponseWriter, e *OverloadError) {
	retry := e.RetryAfter
	if retry < minRetryAfter {
		retry = minRetryAfter
	}
	w.Header().Set("Retry-After", strconv.Itoa(retry))
	obs.Inc("service.shed." + e.What + "s")
	fail(w, http.StatusTooManyRequests, apiErr(CodeOverloaded, e.Error()))
}
