package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"routelab/internal/spec"
)

// Fleet is the multi-scenario face of the service: /v1/scenarios
// listing and admission over a Store, plus per-scenario routing that
// resolves {id} to a tenant Server (building the sealed scenario on
// demand) and delegates to the same endpoint handlers the
// single-scenario mode serves. Every tenant keeps its own admission
// gate and a scenario-id-keyed partition of the shared response cache,
// so tenants bound their compute independently and can never
// cross-serve cached bodies.
type Fleet struct {
	store *Store
	mux   *http.ServeMux
}

// NewFleet assembles the fleet handler over a store.
func NewFleet(store *Store) *Fleet {
	f := &Fleet{store: store, mux: http.NewServeMux()}
	instrument(f.mux, "GET /v1/healthz", "healthz", f.serveHealthz)
	instrument(f.mux, "GET /v1/metrics", "metrics", serveMetrics)
	instrument(f.mux, "GET /v1/scenarios", "scenarios", f.serveScenarios)
	instrument(f.mux, "POST /v1/scenarios", "admit", f.serveAdmit)
	instrument(f.mux, "GET /v1/scenarios/{id}", "scenario", f.serveScenario)
	// Build progress deliberately bypasses the tenant resolver: asking
	// how a build is going must answer instantly, never trigger the
	// build or queue behind it.
	instrument(f.mux, "GET /v1/scenarios/{id}/build", "build", f.serveBuildProgress)
	// Every per-scenario endpoint comes from the shared route table the
	// single-scenario Server mounts at /v1 — one registration, two modes.
	for _, rt := range scenarioRoutes {
		instrument(f.mux, rt.method+" /v1/scenarios/{id}"+rt.path, rt.name, f.tenant(rt.h))
	}
	f.mux.HandleFunc("/", serveNotFound)
	return f
}

// Handler returns the fleet's http.Handler (the /v1 API).
func (f *Fleet) Handler() http.Handler { return f.mux }

// Store returns the underlying scenario store.
func (f *Fleet) Store() *Store { return f.store }

// tenant adapts a per-scenario endpoint handler: resolve {id} through
// the store — an LRU hit, a coalesced wait, or a fresh build — then
// delegate. The request context bounds the resolution wait.
func (f *Fleet) tenant(h func(*Server, http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		srv, err := f.store.Get(r.Context(), r.PathValue("id"))
		if err != nil {
			failStore(w, err)
			return
		}
		h(srv, w, r)
	}
}

// failStore maps a store resolution failure to a status: a shed build
// is 429 with Retry-After, unknown id is 404, a context death while
// waiting on a build is 504, a failed build 500.
func failStore(w http.ResponseWriter, err error) {
	var oe *OverloadError
	if errors.As(err, &oe) {
		failOverload(w, oe)
		return
	}
	switch {
	case errors.Is(err, ErrUnknownScenario):
		fail(w, http.StatusNotFound, apiErr(CodeNotFound, err.Error()))
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		fail(w, http.StatusGatewayTimeout, apiErr(CodeTimeout, "scenario build wait: "+err.Error()))
	default:
		fail(w, http.StatusInternalServerError, apiErr(CodeInternal, err.Error()))
	}
}

func (f *Fleet) serveHealthz(w http.ResponseWriter, _ *http.Request) {
	infos := f.store.Infos()
	data := FleetHealthData{Status: "ok", Scenarios: len(infos), IDs: make([]string, 0, len(infos))}
	for _, in := range infos {
		if in.Built {
			data.Built++
		}
		data.IDs = append(data.IDs, in.ID)
	}
	body, err := marshalEnvelope("health", data)
	if err != nil {
		fail(w, http.StatusInternalServerError, apiErr(CodeInternal, err.Error()))
		return
	}
	writeBody(w, body)
}

func (f *Fleet) serveScenarios(w http.ResponseWriter, _ *http.Request) {
	infos := f.store.Infos()
	data := ScenariosData{Count: len(infos), Scenarios: infos}
	for _, in := range infos {
		if in.Built {
			data.Built++
		}
	}
	body, err := marshalEnvelope("scenarios", data)
	if err != nil {
		fail(w, http.StatusInternalServerError, apiErr(CodeInternal, err.Error()))
		return
	}
	writeBody(w, body)
}

// serveBuildProgress is GET /v1/scenarios/{id}/build: a phase/percent
// snapshot of the scenario's build. Like /v1/metrics it reports
// history, so it is never cached and is exempt from the byte-identity
// contract.
func (f *Fleet) serveBuildProgress(w http.ResponseWriter, r *http.Request) {
	d, err := f.store.BuildProgress(r.PathValue("id"))
	if err != nil {
		failStore(w, err)
		return
	}
	body, err := marshalEnvelope("build", d)
	if err != nil {
		fail(w, http.StatusInternalServerError, apiErr(CodeInternal, err.Error()))
		return
	}
	writeBody(w, body)
}

func (f *Fleet) serveScenario(w http.ResponseWriter, r *http.Request) {
	info, err := f.store.Info(r.PathValue("id"))
	if err != nil {
		failStore(w, err)
		return
	}
	body, err := marshalEnvelope("scenario", ScenarioData{Scenario: info})
	if err != nil {
		fail(w, http.StatusInternalServerError, apiErr(CodeInternal, err.Error()))
		return
	}
	writeBody(w, body)
}

// maxSpecBytes bounds an admitted spec document; corpus specs are a
// few hundred bytes, so 1 MiB is generous without letting a client
// hold the handler on an unbounded body.
const maxSpecBytes = 1 << 20

// serveAdmit is the POST /v1/scenarios admission path: the body is a
// routelab-spec/v1 document (YAML or JSON; no base: chains — those
// need file resolution), compiled and validated before registration.
// Like -scenario-dir registration, admission is cheap; the sealed
// scenario is built on the first per-scenario request.
func (f *Fleet) serveAdmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		fail(w, http.StatusBadRequest, apiErr(CodeBadBody, "read spec body: "+err.Error()))
		return
	}
	if len(body) > maxSpecBytes {
		fail(w, http.StatusRequestEntityTooLarge, apiErr(CodeTooLarge, "spec document exceeds 1 MiB"))
		return
	}
	format, err := specFormat(r, body)
	if err != nil {
		fail(w, http.StatusBadRequest, apiErr(CodeBadParam, err.Error()))
		return
	}
	sp, err := spec.Parse("request body", body, format, nil)
	if err != nil {
		fail(w, http.StatusBadRequest, apiErr(CodeBadBody, "invalid spec: "+err.Error()))
		return
	}
	exp, err := sp.Expansion()
	if err != nil {
		fail(w, http.StatusBadRequest, apiErr(CodeBadBody, "invalid spec: "+err.Error()))
		return
	}
	if err := f.store.Register(exp, "api"); err != nil {
		fail(w, http.StatusConflict, apiErr(CodeConflict, err.Error()))
		return
	}
	info, err := f.store.Info(exp.Name)
	if err != nil {
		fail(w, http.StatusInternalServerError, apiErr(CodeInternal, err.Error()))
		return
	}
	resp, err := marshalEnvelope("scenario", ScenarioData{Scenario: info})
	if err != nil {
		fail(w, http.StatusInternalServerError, apiErr(CodeInternal, err.Error()))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	write(w, resp)
}

// specFormat picks the admission document's parser: an explicit
// ?format= wins, then the Content-Type, then a sniff (a JSON document
// starts with '{'; everything else is YAML, which spec.Parse rejects
// with a file:line error if it is neither).
func specFormat(r *http.Request, body []byte) (string, error) {
	switch q := r.URL.Query().Get("format"); q {
	case "json", "yaml":
		return q, nil
	case "":
	default:
		return "", fmt.Errorf("unknown format %q (have yaml, json)", q)
	}
	if strings.Contains(r.Header.Get("Content-Type"), "json") {
		return "json", nil
	}
	if b := bytes.TrimLeft(body, " \t\r\n"); len(b) > 0 && b[0] == '{' {
		return "json", nil
	}
	return "yaml", nil
}
