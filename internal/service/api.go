// Package service is the query layer over one warm scenario: an
// http.Handler serving classification, alternate-route, experiment,
// and topology lookups as versioned JSON. cmd/routelabd wraps it in a
// long-running server.
//
// # Determinism contract, extended to serve time
//
// Every data endpoint is a pure function of (sealed scenario, request
// parameters): responses are byte-identical across requests, across
// worker counts, and across any mix of concurrent clients. The
// response cache stores fully-marshaled bodies, so a cache hit is
// trivially identical to the miss that produced it; a cache miss
// recomputes a deterministic value and marshals it with encoding/json
// (struct fields in declaration order, map keys sorted). /v1/metrics
// is the one exception — it reports the obs side channel, which
// depends on history — and is therefore never cached.
//
// # Concurrency
//
// Request admission is bounded by a parallel.Gate; duplicate in-flight
// requests for the same cache key are coalesced (one computation, many
// waiters). Computations only read the sealed Scenario and the
// synchronized classify.Context caches; nothing mutates shared state,
// so any interleaving yields the same bytes.
package service

import (
	"encoding/json"
	"fmt"
	"io"

	"routelab/internal/obs"
	"routelab/internal/whatif"
)

// Schema identifies the response envelope shape; bump the suffix on
// breaking changes so consumers fail loudly instead of misparsing.
const Schema = "routelab-api/v1"

// Kinds lists the envelope kinds the API emits.
var Kinds = []string{"health", "metrics", "classify", "alternates", "experiment", "as", "whatif", "scenarios", "scenario", "build", "error"}

// Envelope is the versioned wrapper around every response body.
type Envelope struct {
	Schema string          `json:"schema"`
	Kind   string          `json:"kind"`
	Data   json.RawMessage `json:"data"`
}

// Validate checks the envelope the same way obs.BenchReport.Validate
// checks bench reports: schema must match exactly, the kind must be
// one this API emits, and the data must be a non-empty JSON value.
func (e Envelope) Validate() error {
	if e.Schema != Schema {
		return fmt.Errorf("schema %q, want %q", e.Schema, Schema)
	}
	known := false
	for _, k := range Kinds {
		if e.Kind == k {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("unknown kind %q (have %v)", e.Kind, Kinds)
	}
	if len(e.Data) == 0 {
		return fmt.Errorf("kind %q: empty data", e.Kind)
	}
	if !json.Valid(e.Data) {
		return fmt.Errorf("kind %q: data is not valid JSON", e.Kind)
	}
	return nil
}

// ReadEnvelope decodes and validates one envelope from r.
func ReadEnvelope(r io.Reader) (Envelope, error) {
	var e Envelope
	if err := json.NewDecoder(r).Decode(&e); err != nil {
		return e, err
	}
	return e, e.Validate()
}

// HealthData is the /v1/healthz payload: a static description of the
// scenario the server is holding (static so the endpoint stays
// deterministic — liveness is the 200 itself).
type HealthData struct {
	Status      string   `json:"status"`
	Seed        int64    `json:"seed"`
	Scale       float64  `json:"scale"`
	ASes        int      `json:"ases"`
	Links       int      `json:"links"`
	Probes      int      `json:"probes"`
	Traces      int      `json:"traces"`
	Experiments []string `json:"experiments"`
}

// ClassifyDecision is one routing decision judged under each requested
// refinement (refinement name -> category).
type ClassifyDecision struct {
	At         string            `json:"at"`
	Via        string            `json:"via"`
	Prefix     string            `json:"prefix"`
	DstAS      string            `json:"dst_as"`
	RestLen    int               `json:"rest_len"`
	Categories map[string]string `json:"categories"`
}

// ClassifyData is the /v1/classify payload: every decision of one
// measured traceroute.
type ClassifyData struct {
	Trace     int                `json:"trace"`
	SrcAS     string             `json:"src_as"`
	DstAS     string             `json:"dst_as"`
	Prefix    string             `json:"prefix"`
	ASPath    []string           `json:"as_path"`
	Decisions []ClassifyDecision `json:"decisions"`
}

// AlternateStepData is one route of a discovered preference order.
type AlternateStepData struct {
	NextHop  string   `json:"next_hop"`
	Path     string   `json:"path"`
	Poisoned []string `json:"poisoned,omitempty"`
	Inferred string   `json:"inferred"`
}

// AlternatesData is the /v1/alternates payload: the §3.2 discovery run
// against one target, judged under the §3.3 properties.
type AlternatesData struct {
	Target        string              `json:"target"`
	Prefix        string              `json:"prefix"`
	Announcements int                 `json:"announcements"`
	Exhausted     bool                `json:"exhausted"`
	Verdict       string              `json:"verdict"`
	Steps         []AlternateStepData `json:"steps"`
}

// ASData is the /v1/as/{asn} payload: the measurement-plane view of
// one AS (inferred neighbors), plus its ground-truth class for lab
// convenience.
type ASData struct {
	ASN               string         `json:"asn"`
	Class             string         `json:"class"`
	Country           string         `json:"country"`
	Names             []string       `json:"names,omitempty"`
	Prefixes          []string       `json:"prefixes,omitempty"`
	InferredDegree    int            `json:"inferred_degree"`
	InferredNeighbors map[string]int `json:"inferred_neighbors"`
}

// ExperimentData is the /v1/experiments/{name} payload. Result is the
// experiment's structured outcome (see internal/experiments).
type ExperimentData struct {
	Name   string `json:"name"`
	Seed   int64  `json:"seed"`
	Result any    `json:"result"`
}

// MetricsData is the /v1/metrics payload.
type MetricsData struct {
	Metrics obs.Snapshot `json:"metrics"`
}

// ScenarioInfo describes one registered scenario of the fleet: its
// spec identity plus whether a sealed build is currently resident in
// the store's LRU.
type ScenarioInfo struct {
	ID          string   `json:"id"`
	Description string   `json:"description,omitempty"`
	Profile     string   `json:"profile"`
	Overlays    []string `json:"overlays,omitempty"`
	// Origin is where the spec came from: the file path for -scenario-dir
	// registrations, "api" for POST /v1/scenarios admissions.
	Origin string  `json:"origin"`
	Seed   int64   `json:"seed"`
	Scale  float64 `json:"scale"`
	Built  bool    `json:"built"`
	// SizeBytes is the resident-cost estimate of the sealed build (the
	// store's byte-budget charge); 0 unless Built.
	SizeBytes int64 `json:"size_bytes,omitempty"`
}

// ScenariosData is the GET /v1/scenarios payload: every registered
// scenario, sorted by id.
type ScenariosData struct {
	Count     int            `json:"count"`
	Built     int            `json:"built"`
	Scenarios []ScenarioInfo `json:"scenarios"`
}

// ScenarioData is the per-scenario payload: GET /v1/scenarios/{id} and
// the POST /v1/scenarios admission response.
type ScenarioData struct {
	Scenario ScenarioInfo `json:"scenario"`
}

// FleetHealthData is the fleet-mode /v1/healthz payload: the store
// summary instead of one scenario's shape (liveness is the 200 itself).
type FleetHealthData struct {
	Status    string   `json:"status"`
	Scenarios int      `json:"scenarios"`
	Built     int      `json:"built"`
	IDs       []string `json:"ids"`
}

// WhatIfSchema identifies the POST /v1/whatif request document shape;
// bump the suffix on breaking changes (same contract as Schema).
const WhatIfSchema = "routelab-whatif/v1"

// MaxWhatIfDeltas bounds one batched what-if request: each entry costs
// a fork plus a reconvergence, so the cap keeps a single request from
// monopolizing the admission gate.
const MaxWhatIfDeltas = 32

// WhatIfRequest is the POST /v1/whatif request document: one delta or a
// batch. Exactly one of Delta and Deltas must be set; every batch entry
// is evaluated on its own fork of the same frozen anycast base, so the
// entries are independent counterfactuals, not a cumulative script.
type WhatIfRequest struct {
	Schema string `json:"schema"`
	// Prefix selects the testbed prefix to evaluate against; empty
	// selects the scenario's first.
	Prefix string         `json:"prefix,omitempty"`
	Delta  *whatif.Delta  `json:"delta,omitempty"`
	Deltas []whatif.Delta `json:"deltas,omitempty"`
}

// Validate checks the document's wire shape: the schema tag, the
// delta-XOR-deltas contract, the batch cap, and that every delta names
// a known kind. Topology-dependent validation (AS existence, adjacency)
// happens at whatif.Compile time inside the server; this is the part
// cmd/apicheck can verify offline.
func (req WhatIfRequest) Validate() error {
	if req.Schema != WhatIfSchema {
		return fmt.Errorf("schema %q, want %q", req.Schema, WhatIfSchema)
	}
	switch {
	case req.Delta != nil && len(req.Deltas) > 0:
		return fmt.Errorf("delta and deltas are mutually exclusive")
	case req.Delta == nil && len(req.Deltas) == 0:
		return fmt.Errorf("missing delta (or deltas)")
	case len(req.Deltas) > MaxWhatIfDeltas:
		return fmt.Errorf("%d deltas exceed the batch cap of %d", len(req.Deltas), MaxWhatIfDeltas)
	}
	for i, d := range req.All() {
		known := false
		for _, k := range whatif.Kinds {
			if d.Kind == k {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("delta %d: unknown kind %q (have %v)", i, d.Kind, whatif.Kinds)
		}
	}
	return nil
}

// All returns the requested deltas with the single form normalized to a
// one-entry batch.
func (req WhatIfRequest) All() []whatif.Delta {
	if req.Delta != nil {
		return []whatif.Delta{*req.Delta}
	}
	return req.Deltas
}

// WhatIfData is the whatif envelope payload: one structured diff per
// requested delta, in request order.
type WhatIfData struct {
	Prefix  string        `json:"prefix"`
	Origin  string        `json:"origin"`
	Deltas  int           `json:"deltas"`
	Results []whatif.Diff `json:"results"`
}

// Validate checks a whatif payload's internal consistency — what
// cmd/apicheck verifies about served bodies beyond the envelope.
func (d WhatIfData) Validate() error {
	if d.Prefix == "" || d.Origin == "" {
		return fmt.Errorf("missing prefix/origin (%q/%q)", d.Prefix, d.Origin)
	}
	if d.Deltas != len(d.Results) {
		return fmt.Errorf("deltas %d != results %d", d.Deltas, len(d.Results))
	}
	for i, r := range d.Results {
		if r.Delta == "" || r.Kind == "" {
			return fmt.Errorf("result %d: missing delta/kind", i)
		}
		if r.Affected != len(r.Changes) || r.Affected != r.Gained+r.Lost+r.Moved {
			return fmt.Errorf("result %d (%s): affected %d, changes %d, gained+lost+moved %d",
				i, r.Delta, r.Affected, len(r.Changes), r.Gained+r.Lost+r.Moved)
		}
	}
	return nil
}

// ErrorData is the error-envelope payload. Code is the stable
// machine-readable error class (see the Code* constants); Error the
// human-readable detail.
type ErrorData struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}
