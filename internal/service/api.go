// Package service is the query layer over one warm scenario: an
// http.Handler serving classification, alternate-route, experiment,
// and topology lookups as versioned JSON. cmd/routelabd wraps it in a
// long-running server.
//
// # Determinism contract, extended to serve time
//
// Every data endpoint is a pure function of (sealed scenario, request
// parameters): responses are byte-identical across requests, across
// worker counts, and across any mix of concurrent clients. The
// response cache stores fully-marshaled bodies, so a cache hit is
// trivially identical to the miss that produced it; a cache miss
// recomputes a deterministic value and marshals it with encoding/json
// (struct fields in declaration order, map keys sorted). /v1/metrics
// is the one exception — it reports the obs side channel, which
// depends on history — and is therefore never cached.
//
// # Concurrency
//
// Request admission is bounded by a parallel.Gate; duplicate in-flight
// requests for the same cache key are coalesced (one computation, many
// waiters). Computations only read the sealed Scenario and the
// synchronized classify.Context caches; nothing mutates shared state,
// so any interleaving yields the same bytes.
package service

import (
	"encoding/json"
	"fmt"
	"io"

	"routelab/internal/obs"
)

// Schema identifies the response envelope shape; bump the suffix on
// breaking changes so consumers fail loudly instead of misparsing.
const Schema = "routelab-api/v1"

// Kinds lists the envelope kinds the API emits.
var Kinds = []string{"health", "metrics", "classify", "alternates", "experiment", "as", "scenarios", "scenario", "error"}

// Envelope is the versioned wrapper around every response body.
type Envelope struct {
	Schema string          `json:"schema"`
	Kind   string          `json:"kind"`
	Data   json.RawMessage `json:"data"`
}

// Validate checks the envelope the same way obs.BenchReport.Validate
// checks bench reports: schema must match exactly, the kind must be
// one this API emits, and the data must be a non-empty JSON value.
func (e Envelope) Validate() error {
	if e.Schema != Schema {
		return fmt.Errorf("schema %q, want %q", e.Schema, Schema)
	}
	known := false
	for _, k := range Kinds {
		if e.Kind == k {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("unknown kind %q (have %v)", e.Kind, Kinds)
	}
	if len(e.Data) == 0 {
		return fmt.Errorf("kind %q: empty data", e.Kind)
	}
	if !json.Valid(e.Data) {
		return fmt.Errorf("kind %q: data is not valid JSON", e.Kind)
	}
	return nil
}

// ReadEnvelope decodes and validates one envelope from r.
func ReadEnvelope(r io.Reader) (Envelope, error) {
	var e Envelope
	if err := json.NewDecoder(r).Decode(&e); err != nil {
		return e, err
	}
	return e, e.Validate()
}

// HealthData is the /v1/healthz payload: a static description of the
// scenario the server is holding (static so the endpoint stays
// deterministic — liveness is the 200 itself).
type HealthData struct {
	Status      string   `json:"status"`
	Seed        int64    `json:"seed"`
	Scale       float64  `json:"scale"`
	ASes        int      `json:"ases"`
	Links       int      `json:"links"`
	Probes      int      `json:"probes"`
	Traces      int      `json:"traces"`
	Experiments []string `json:"experiments"`
}

// ClassifyDecision is one routing decision judged under each requested
// refinement (refinement name -> category).
type ClassifyDecision struct {
	At         string            `json:"at"`
	Via        string            `json:"via"`
	Prefix     string            `json:"prefix"`
	DstAS      string            `json:"dst_as"`
	RestLen    int               `json:"rest_len"`
	Categories map[string]string `json:"categories"`
}

// ClassifyData is the /v1/classify payload: every decision of one
// measured traceroute.
type ClassifyData struct {
	Trace     int                `json:"trace"`
	SrcAS     string             `json:"src_as"`
	DstAS     string             `json:"dst_as"`
	Prefix    string             `json:"prefix"`
	ASPath    []string           `json:"as_path"`
	Decisions []ClassifyDecision `json:"decisions"`
}

// AlternateStepData is one route of a discovered preference order.
type AlternateStepData struct {
	NextHop  string   `json:"next_hop"`
	Path     string   `json:"path"`
	Poisoned []string `json:"poisoned,omitempty"`
	Inferred string   `json:"inferred"`
}

// AlternatesData is the /v1/alternates payload: the §3.2 discovery run
// against one target, judged under the §3.3 properties.
type AlternatesData struct {
	Target        string              `json:"target"`
	Prefix        string              `json:"prefix"`
	Announcements int                 `json:"announcements"`
	Exhausted     bool                `json:"exhausted"`
	Verdict       string              `json:"verdict"`
	Steps         []AlternateStepData `json:"steps"`
}

// ASData is the /v1/as/{asn} payload: the measurement-plane view of
// one AS (inferred neighbors), plus its ground-truth class for lab
// convenience.
type ASData struct {
	ASN               string         `json:"asn"`
	Class             string         `json:"class"`
	Country           string         `json:"country"`
	Names             []string       `json:"names,omitempty"`
	Prefixes          []string       `json:"prefixes,omitempty"`
	InferredDegree    int            `json:"inferred_degree"`
	InferredNeighbors map[string]int `json:"inferred_neighbors"`
}

// ExperimentData is the /v1/experiments/{name} payload. Result is the
// experiment's structured outcome (see internal/experiments).
type ExperimentData struct {
	Name   string `json:"name"`
	Seed   int64  `json:"seed"`
	Result any    `json:"result"`
}

// MetricsData is the /v1/metrics payload.
type MetricsData struct {
	Metrics obs.Snapshot `json:"metrics"`
}

// ScenarioInfo describes one registered scenario of the fleet: its
// spec identity plus whether a sealed build is currently resident in
// the store's LRU.
type ScenarioInfo struct {
	ID          string   `json:"id"`
	Description string   `json:"description,omitempty"`
	Profile     string   `json:"profile"`
	Overlays    []string `json:"overlays,omitempty"`
	// Origin is where the spec came from: the file path for -scenario-dir
	// registrations, "api" for POST /v1/scenarios admissions.
	Origin string  `json:"origin"`
	Seed   int64   `json:"seed"`
	Scale  float64 `json:"scale"`
	Built  bool    `json:"built"`
}

// ScenariosData is the GET /v1/scenarios payload: every registered
// scenario, sorted by id.
type ScenariosData struct {
	Count     int            `json:"count"`
	Built     int            `json:"built"`
	Scenarios []ScenarioInfo `json:"scenarios"`
}

// ScenarioData is the per-scenario payload: GET /v1/scenarios/{id} and
// the POST /v1/scenarios admission response.
type ScenarioData struct {
	Scenario ScenarioInfo `json:"scenario"`
}

// FleetHealthData is the fleet-mode /v1/healthz payload: the store
// summary instead of one scenario's shape (liveness is the 200 itself).
type FleetHealthData struct {
	Status    string   `json:"status"`
	Scenarios int      `json:"scenarios"`
	Built     int      `json:"built"`
	IDs       []string `json:"ids"`
}

// ErrorData is the error-envelope payload.
type ErrorData struct {
	Error string `json:"error"`
}
