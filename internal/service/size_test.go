package service

import (
	"testing"
)

// TestSizeOfSynthetic pins the accounting model on small graphs where
// the expected byte count can be derived by hand.
func TestSizeOfSynthetic(t *testing.T) {
	if got := sizeOf(nil); got != 0 {
		t.Errorf("sizeOf(nil) = %d, want 0", got)
	}
	// A string counts its bytes (plus the 16-byte header the top-level
	// Type().Size() contributes).
	if got := sizeOf("abcd"); got != 16+4 {
		t.Errorf("sizeOf(string) = %d, want 20", got)
	}
	// A slice counts cap × elem, not len × elem.
	s := make([]int64, 2, 8)
	if got := sizeOf(s); got != 24+8*8 {
		t.Errorf("sizeOf(slice) = %d, want %d", got, 24+8*8)
	}
	// A buffered channel counts cap × elem even though the buffered
	// values are invisible to reflect.
	ch := make(chan int64, 5)
	if got := sizeOf(ch); got != 8+5*8 {
		t.Errorf("sizeOf(chan) = %d, want %d", got, 8+5*8)
	}
	// Maps estimate len × (key + elem + overhead) and walk the entries.
	m := map[int32]int32{1: 1, 2: 2}
	if got := sizeOf(m); got != 8+2*(4+4+mapEntryOverhead) {
		t.Errorf("sizeOf(map) = %d, want %d", got, 8+2*(4+4+mapEntryOverhead))
	}
}

// TestSizeOfSharedPointersCountedOnce is the dedup contract: the
// topology/RIB graph shares nodes heavily, and each shared object must
// be charged once, not once per reference.
func TestSizeOfSharedPointersCountedOnce(t *testing.T) {
	type node struct{ payload [128]byte }
	n := &node{}
	type pair struct{ a, b *node }
	shared := sizeOf(pair{a: n, b: n})
	distinct := sizeOf(pair{a: &node{}, b: &node{}})
	if shared >= distinct {
		t.Errorf("shared graph %d bytes >= distinct graph %d bytes; pointer dedup broken", shared, distinct)
	}
	if want := distinct - 128; shared != want {
		t.Errorf("shared graph %d bytes, want %d (one node charged once)", shared, want)
	}
}

// TestSizeOfDeterministic: map iteration order varies per walk, but the
// total must not — the store's byte ledger depends on the same graph
// always weighing the same.
func TestSizeOfDeterministic(t *testing.T) {
	s := testScenario(t)
	first := sizeOf(s)
	if first <= 0 {
		t.Fatalf("sizeOf(scenario) = %d, want > 0", first)
	}
	for i := 0; i < 5; i++ {
		if got := sizeOf(s); got != first {
			t.Fatalf("walk %d: sizeOf = %d, want %d (nondeterministic accounting)", i, got, first)
		}
	}
}

// TestAccountSizeCoversTenant: the tenant walk must weigh at least the
// sealed scenario it wraps (it adds indexes, the health body, and the
// fork pools on top), be stable across re-walks, and be what SizeBytes
// reports.
func TestAccountSizeCoversTenant(t *testing.T) {
	srv := New(testScenario(t), Config{})
	defer srv.Close()
	if srv.SizeBytes() != srv.size {
		t.Error("SizeBytes does not report the build-time measurement")
	}
	if srv.SizeBytes() <= 0 {
		t.Fatalf("SizeBytes = %d, want > 0", srv.SizeBytes())
	}
	if bare := sizeOf(srv.s); srv.SizeBytes() < bare {
		t.Errorf("tenant %d bytes < bare scenario %d bytes", srv.SizeBytes(), bare)
	}
	if again := srv.accountSize(); again != srv.size {
		t.Errorf("re-walk %d != build-time %d (accounting not deterministic)", again, srv.size)
	}
}
