package service

import (
	"routelab/internal/bgp"
	"routelab/internal/obs"
)

// forkPool keeps warm Computation.Fork copies of one frozen anycast
// base so the alternates/what-if-shaped endpoints consume a pre-taken
// fork instead of paying the O(#ASes) fork setup on the request path.
// Forks are single-use — the discovery loop's poisoning rounds mutate
// them — so a consumed fork is replaced asynchronously rather than
// returned. A drained pool falls back to forking inline, which is
// always correct (every fork of a frozen parent is equivalent), just
// slower; the service.forkpool.{hits,misses} counters expose the ratio.
type forkPool struct {
	base *bgp.Computation // frozen; Fork is safe from any goroutine
	ch   chan *bgp.Computation
}

// defaultForkPool is the per-prefix pool depth when Config.ForkPool is
// unset: enough to ride out a small burst without holding many adj-in
// overlays alive per prefix.
const defaultForkPool = 2

func newForkPool(base *bgp.Computation, size int) *forkPool {
	if size <= 0 {
		size = defaultForkPool
	}
	p := &forkPool{base: base, ch: make(chan *bgp.Computation, size)}
	for i := 0; i < size; i++ {
		p.ch <- base.Fork()
	}
	return p
}

// get returns a fresh, unshared fork of the pool's base and schedules a
// replacement for the warm copy it consumed.
func (p *forkPool) get() *bgp.Computation {
	select {
	case c := <-p.ch:
		obs.Inc("service.forkpool.hits")
		go p.refill()
		return c
	default:
		obs.Inc("service.forkpool.misses")
		return p.base.Fork()
	}
}

// refill restocks one warm fork, dropping it if the pool filled back up
// in the meantime (another refill won the race).
func (p *forkPool) refill() {
	select {
	case p.ch <- p.base.Fork():
	default:
	}
}
