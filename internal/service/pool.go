package service

import (
	"sync"

	"routelab/internal/bgp"
	"routelab/internal/obs"
)

// forkPool keeps warm Computation.Fork copies of one frozen anycast
// base so the alternates/what-if-shaped endpoints consume a pre-taken
// fork instead of paying the O(#ASes) fork setup on the request path.
// Forks are single-use — the discovery loop's poisoning rounds mutate
// them — so a consumed fork is replaced asynchronously rather than
// returned. A drained pool falls back to forking inline, which is
// always correct (every fork of a frozen parent is equivalent), just
// slower; the service.forkpool.{hits,misses} counters expose the ratio.
//
// Refill goroutines are joined: every spawn registers with wg under mu,
// and drain flips stopped before waiting, so no refill outlives a
// tenant's eviction or the server's shutdown (the goroleak contract).
type forkPool struct {
	base *bgp.Computation // frozen; Fork is safe from any goroutine
	ch   chan *bgp.Computation

	mu      sync.Mutex
	stopped bool
	wg      sync.WaitGroup
}

// defaultForkPool is the per-prefix pool depth when Config.ForkPool is
// unset: enough to ride out a small burst without holding many adj-in
// overlays alive per prefix.
const defaultForkPool = 2

func newForkPool(base *bgp.Computation, size int) *forkPool {
	if size <= 0 {
		size = defaultForkPool
	}
	p := &forkPool{base: base, ch: make(chan *bgp.Computation, size)}
	for i := 0; i < size; i++ {
		p.ch <- base.Fork()
	}
	return p
}

// get returns a fresh, unshared fork of the pool's base and schedules a
// replacement for the warm copy it consumed.
func (p *forkPool) get() *bgp.Computation {
	select {
	case c := <-p.ch:
		obs.Inc("service.forkpool.hits")
		p.spawnRefill()
		return c
	default:
		obs.Inc("service.forkpool.misses")
		return p.base.Fork()
	}
}

// spawnRefill starts one tracked refill goroutine. The wg.Add happens
// under mu and before any drain observes stopped, so drain's Wait is
// never concurrent with an Add from zero — a drained pool simply stops
// restocking and serves get() by forking inline.
func (p *forkPool) spawnRefill() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stopped {
		return
	}
	p.wg.Add(1)
	go p.refill()
}

// refill restocks one warm fork, dropping it if the pool filled back up
// in the meantime (another refill won the race). Bounded work plus the
// WaitGroup join keeps it inside the goroleak shutdown contract.
func (p *forkPool) refill() {
	defer p.wg.Done()
	select {
	case p.ch <- p.base.Fork():
	default:
	}
}

// drain stops the refill machinery and joins every outstanding refill
// goroutine. The pool stays usable — get() forks inline afterwards —
// so drain is safe to call with requests in flight, and idempotent.
func (p *forkPool) drain() {
	p.mu.Lock()
	p.stopped = true
	p.mu.Unlock()
	p.wg.Wait()
}
