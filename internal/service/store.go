package service

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"routelab/internal/obs"
	"routelab/internal/parallel"
	"routelab/internal/scenario"
	"routelab/internal/spec"
)

// ErrUnknownScenario reports a fleet request for an id no spec was
// registered under; the Fleet maps it to 404.
var ErrUnknownScenario = errors.New("unknown scenario id")

// StoreConfig sizes the scenario store.
type StoreConfig struct {
	// MaxScenarios bounds how many sealed (built) scenarios stay
	// resident at once; the least-recently-served is evicted past the
	// cap and rebuilt on demand. <= 0 selects the default (4).
	MaxScenarios int
	// MaxBuilds bounds concurrent scenario builds. Builds are the
	// expensive multi-core phase, so the default (1) serializes them;
	// requests for distinct cold scenarios queue.
	MaxBuilds int
	// CacheSize bounds the fleet-wide response cache (entries) shared by
	// every tenant; <= 0 selects the default (256). Keys are namespaced
	// by scenario id, and a tenant's partition is purged on eviction.
	CacheSize int
	// Tenant configures each per-scenario Server (admission gate,
	// request deadline, fork pools). Tenant.CacheSize is ignored — the
	// shared cache above is used instead.
	Tenant Config
	// Logf receives scenario build progress; nil silences it.
	Logf scenario.Logf
}

// Store is the multi-tenant scenario registry behind the Fleet: specs
// are registered up front (cheap — compile and validate only), sealed
// scenarios are built on first use, kept in an LRU, and rebuilt
// deterministically after eviction. Concurrent requests for the same
// cold id coalesce into a single build (obs: service.scenario.builds
// counts real builds, .hits serves from the LRU, .evictions drops).
type Store struct {
	cfg       StoreConfig
	buildGate *parallel.Gate
	cache     *cache // shared across tenants, keys namespaced by id

	mu       sync.Mutex
	sources  map[string]*source
	order    *list.List               // built ids, front = most recently served
	builtIdx map[string]*list.Element // id -> element; value *builtEntry
	building map[string]*buildCall
}

// source is one registered spec: identity plus the compiled, validated
// Config it builds from.
type source struct {
	info ScenarioInfo // Built is filled in at read time
	cfg  scenario.Config
}

type builtEntry struct {
	id     string
	tenant *Server
}

type buildCall struct {
	done   chan struct{}
	tenant *Server
	err    error
}

// NewStore assembles an empty store; register scenarios with Register
// or RegisterDir.
func NewStore(cfg StoreConfig) *Store {
	if cfg.MaxScenarios <= 0 {
		cfg.MaxScenarios = 4
	}
	if cfg.MaxBuilds <= 0 {
		cfg.MaxBuilds = 1
	}
	return &Store{
		cfg:       cfg,
		buildGate: parallel.NewGate(cfg.MaxBuilds),
		cache:     newCache(cfg.CacheSize),
		sources:   make(map[string]*source),
		order:     list.New(),
		builtIdx:  make(map[string]*list.Element),
		building:  make(map[string]*buildCall),
	}
}

// Register admits one compiled spec expansion under its spec name.
// Registration is cheap — the sealed scenario is built on first use.
// A duplicate id is an error: two different worlds under one id would
// make /v1/scenarios/{id} responses depend on registration order.
func (st *Store) Register(exp *spec.Expansion, origin string) error {
	if exp.Name == "" {
		return fmt.Errorf("service: scenario spec has no name")
	}
	src := &source{
		info: ScenarioInfo{
			ID:          exp.Name,
			Description: exp.Description,
			Profile:     exp.Profile,
			Overlays:    exp.Overlays,
			Origin:      origin,
			Seed:        exp.Config.Seed,
			Scale:       exp.Config.Topology.Scale,
		},
		cfg: exp.Config,
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.sources[exp.Name]; ok {
		return fmt.Errorf("service: scenario %q already registered", exp.Name)
	}
	st.sources[exp.Name] = src
	return nil
}

// RegisterDir registers every spec document (*.yaml, *.yml, *.json) at
// the top level of dir — the -scenario-dir boot path. Subdirectories
// (e.g. a goldens directory next to a corpus) are ignored. Returns how
// many scenarios were registered.
func (st *Store) RegisterDir(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		switch strings.ToLower(filepath.Ext(e.Name())) {
		case ".yaml", ".yml", ".json":
		default:
			continue
		}
		path := filepath.Join(dir, e.Name())
		exp, err := spec.Expand(path, nil)
		if err != nil {
			return n, fmt.Errorf("service: %s: %w", path, err)
		}
		if err := st.Register(exp, filepath.ToSlash(path)); err != nil {
			return n, err
		}
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("service: no scenario specs found in %s", dir)
	}
	return n, nil
}

// IDs returns every registered scenario id, sorted.
func (st *Store) IDs() []string {
	st.mu.Lock()
	defer st.mu.Unlock()
	ids := make([]string, 0, len(st.sources))
	for id := range st.sources {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Infos returns every registered scenario's info, sorted by id, with
// the Built flag reflecting LRU residency at call time.
func (st *Store) Infos() []ScenarioInfo {
	st.mu.Lock()
	defer st.mu.Unlock()
	infos := make([]ScenarioInfo, 0, len(st.sources))
	for id, src := range st.sources {
		info := src.info
		_, info.Built = st.builtIdx[id]
		infos = append(infos, info)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	return infos
}

// Info returns one scenario's info.
func (st *Store) Info(id string) (ScenarioInfo, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	src, ok := st.sources[id]
	if !ok {
		return ScenarioInfo{}, fmt.Errorf("%w: %q", ErrUnknownScenario, id)
	}
	info := src.info
	_, info.Built = st.builtIdx[id]
	return info, nil
}

// BuiltLen reports how many sealed scenarios are resident.
func (st *Store) BuiltLen() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.order.Len()
}

// Close drains every resident tenant's background machinery (fork-pool
// refill goroutines); call it after the HTTP server has drained so a
// fleet shutdown leaves no goroutine behind. Tenants stay usable —
// Close only stops their pools from restocking.
func (st *Store) Close() {
	st.mu.Lock()
	defer st.mu.Unlock()
	for el := st.order.Front(); el != nil; el = el.Next() {
		el.Value.(*builtEntry).tenant.Close()
	}
}

// Get returns the tenant serving id, building the sealed scenario on
// demand. Concurrent calls for the same cold id share one build
// (singleflight); calls for a resident id are LRU hits. The ctx bounds
// this caller's wait — in the build-gate queue or on another caller's
// build — not the build itself, which always runs to completion so the
// result is kept for the next request.
func (st *Store) Get(ctx context.Context, id string) (*Server, error) {
	for {
		st.mu.Lock()
		src, ok := st.sources[id]
		if !ok {
			st.mu.Unlock()
			return nil, fmt.Errorf("%w: %q", ErrUnknownScenario, id)
		}
		if el, ok := st.builtIdx[id]; ok {
			st.order.MoveToFront(el)
			tenant := el.Value.(*builtEntry).tenant
			st.mu.Unlock()
			obs.Inc("service.scenario.hits")
			return tenant, nil
		}
		if bc, ok := st.building[id]; ok {
			st.mu.Unlock()
			select {
			case <-bc.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if bc.err == nil {
				return bc.tenant, nil
			}
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			// The build died on ITS caller's context; ours is live, so
			// retry — the same recovery the response cache uses.
			if bc.err != context.Canceled && bc.err != context.DeadlineExceeded {
				return nil, bc.err
			}
			continue
		}
		bc := &buildCall{done: make(chan struct{})}
		st.building[id] = bc
		st.mu.Unlock()

		bc.tenant, bc.err = st.build(ctx, id, src)
		st.mu.Lock()
		delete(st.building, id)
		if bc.err == nil {
			st.insert(id, bc.tenant)
		}
		st.mu.Unlock()
		close(bc.done)
		return bc.tenant, bc.err
	}
}

// build seals one scenario and wraps it in a tenant. The build gate
// bounds how many run at once; the requester's ctx only governs its
// place in the queue (scenario.Build is not cancelable, and a finished
// build is always worth keeping).
func (st *Store) build(ctx context.Context, id string, src *source) (*Server, error) {
	if err := st.buildGate.Enter(ctx); err != nil {
		return nil, err
	}
	defer st.buildGate.Leave()
	defer obs.StartStage("service/scenario-build")()
	obs.Inc("service.scenario.builds")
	s, err := scenario.Build(src.cfg, st.cfg.Logf)
	if err != nil {
		return nil, fmt.Errorf("service: build scenario %q: %w", id, err)
	}
	return newTenant(id, s, st.cfg.Tenant, st.cache), nil
}

// insert records a freshly-built tenant and evicts past the cap.
// Caller holds st.mu.
func (st *Store) insert(id string, tenant *Server) {
	st.builtIdx[id] = st.order.PushFront(&builtEntry{id: id, tenant: tenant})
	for st.order.Len() > st.cfg.MaxScenarios {
		el := st.order.Back()
		st.order.Remove(el)
		evicted := el.Value.(*builtEntry)
		delete(st.builtIdx, evicted.id)
		// Purge the evicted tenant's cache partition: responses are
		// deterministic, so dropping them only costs recomputation, and
		// keeping them would hold the evicted world's bodies in memory.
		st.cache.removePrefix(evicted.id + "|")
		// Join the evicted tenant's fork-pool refills so no goroutine
		// keeps the evicted world's forks alive. Refills are bounded (one
		// Fork plus a non-blocking send) and never take st.mu, so waiting
		// under the lock is cheap and deadlock-free.
		evicted.tenant.Close()
		obs.Inc("service.scenario.evictions")
	}
	obs.SetGauge("service.scenario.built", float64(st.order.Len()))
}
