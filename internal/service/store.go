package service

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"routelab/internal/obs"
	"routelab/internal/parallel"
	"routelab/internal/scenario"
	"routelab/internal/spec"
)

// ErrUnknownScenario reports a fleet request for an id no spec was
// registered under; the Fleet maps it to 404.
var ErrUnknownScenario = errors.New("unknown scenario id")

// StoreConfig sizes the scenario store.
type StoreConfig struct {
	// MaxScenarios bounds how many sealed (built) scenarios stay
	// resident at once; the least-recently-served is evicted past the
	// cap and rebuilt on demand. <= 0 selects the default (4). Ignored
	// when MaxScenarioBytes is set.
	MaxScenarios int
	// MaxScenarioBytes, when > 0, switches eviction from count to
	// memory accounting: each tenant's build-time SizeBytes estimate is
	// charged against this budget, and the least-recently-served
	// tenants are evicted while the total exceeds it. The most recent
	// tenant is never evicted, so one over-budget world serves rather
	// than thrashes.
	MaxScenarioBytes int64
	// MaxBuilds bounds concurrent scenario builds. Builds are the
	// expensive multi-core phase, so the default (1) serializes them;
	// requests for distinct cold scenarios queue.
	MaxBuilds int
	// MaxQueuedBuilds bounds the build gate's queue: a cold-scenario
	// request arriving while MaxQueuedBuilds builds are already waiting
	// for a build slot is shed with 429/Retry-After instead of joining
	// the line. 0 disables shedding (builds queue until the requester's
	// deadline).
	MaxQueuedBuilds int
	// CacheSize bounds the fleet-wide response cache (entries) shared by
	// every tenant; <= 0 selects the default (256). Keys are namespaced
	// by scenario id, and a tenant's partition is purged on eviction.
	CacheSize int
	// Tenant configures each per-scenario Server (admission gate,
	// request deadline, fork pools). Tenant.CacheSize is ignored — the
	// shared cache above is used instead.
	Tenant Config
	// Logf receives scenario build progress; nil silences it.
	Logf scenario.Logf
}

// Store is the multi-tenant scenario registry behind the Fleet: specs
// are registered up front (cheap — compile and validate only), sealed
// scenarios are built on first use, kept in an LRU, and rebuilt
// deterministically after eviction. Concurrent requests for the same
// cold id coalesce into a single build (obs: service.scenario.builds
// counts real builds, .hits serves from the LRU, .evictions drops).
type Store struct {
	cfg       StoreConfig
	buildGate *parallel.Gate
	cache     *cache // shared across tenants, keys namespaced by id

	mu            sync.Mutex
	sources       map[string]*source
	order         *list.List               // built ids, front = most recently served
	builtIdx      map[string]*list.Element // id -> element; value *builtEntry
	building      map[string]*buildCall
	progress      map[string]*buildProgress // live/failed build trackers by id
	residentBytes int64                     // sum of resident builtEntry.bytes

	// buildHook, when set (tests only), runs inside build while the
	// build gate is held — a seam the saturation suite uses to hold the
	// gate deterministically.
	buildHook func(id string)
}

// source is one registered spec: identity plus the compiled, validated
// Config it builds from.
type source struct {
	info ScenarioInfo // Built is filled in at read time
	cfg  scenario.Config
}

type builtEntry struct {
	id     string
	tenant *Server
	bytes  int64 // the tenant's SizeBytes estimate, charged to the byte budget
}

type buildCall struct {
	done   chan struct{}
	tenant *Server
	err    error
}

// NewStore assembles an empty store; register scenarios with Register
// or RegisterDir.
func NewStore(cfg StoreConfig) *Store {
	if cfg.MaxScenarios <= 0 {
		cfg.MaxScenarios = 4
	}
	if cfg.MaxBuilds <= 0 {
		cfg.MaxBuilds = 1
	}
	return &Store{
		cfg:       cfg,
		buildGate: parallel.NewGate(cfg.MaxBuilds),
		cache:     newCache(cfg.CacheSize),
		sources:   make(map[string]*source),
		order:     list.New(),
		builtIdx:  make(map[string]*list.Element),
		building:  make(map[string]*buildCall),
		progress:  make(map[string]*buildProgress),
	}
}

// Register admits one compiled spec expansion under its spec name.
// Registration is cheap — the sealed scenario is built on first use.
// A duplicate id is an error: two different worlds under one id would
// make /v1/scenarios/{id} responses depend on registration order.
func (st *Store) Register(exp *spec.Expansion, origin string) error {
	if exp.Name == "" {
		return fmt.Errorf("service: scenario spec has no name")
	}
	src := &source{
		info: ScenarioInfo{
			ID:          exp.Name,
			Description: exp.Description,
			Profile:     exp.Profile,
			Overlays:    exp.Overlays,
			Origin:      origin,
			Seed:        exp.Config.Seed,
			Scale:       exp.Config.Topology.Scale,
		},
		cfg: exp.Config,
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.sources[exp.Name]; ok {
		return fmt.Errorf("service: scenario %q already registered", exp.Name)
	}
	st.sources[exp.Name] = src
	return nil
}

// RegisterDir registers every spec document (*.yaml, *.yml, *.json) at
// the top level of dir — the -scenario-dir boot path. Subdirectories
// (e.g. a goldens directory next to a corpus) are ignored. Returns how
// many scenarios were registered.
func (st *Store) RegisterDir(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		switch strings.ToLower(filepath.Ext(e.Name())) {
		case ".yaml", ".yml", ".json":
		default:
			continue
		}
		path := filepath.Join(dir, e.Name())
		exp, err := spec.Expand(path, nil)
		if err != nil {
			return n, fmt.Errorf("service: %s: %w", path, err)
		}
		if err := st.Register(exp, filepath.ToSlash(path)); err != nil {
			return n, err
		}
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("service: no scenario specs found in %s", dir)
	}
	return n, nil
}

// IDs returns every registered scenario id, sorted.
func (st *Store) IDs() []string {
	st.mu.Lock()
	defer st.mu.Unlock()
	ids := make([]string, 0, len(st.sources))
	for id := range st.sources {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Infos returns every registered scenario's info, sorted by id, with
// the Built flag reflecting LRU residency at call time.
func (st *Store) Infos() []ScenarioInfo {
	st.mu.Lock()
	defer st.mu.Unlock()
	infos := make([]ScenarioInfo, 0, len(st.sources))
	for id, src := range st.sources {
		info := src.info
		if el, ok := st.builtIdx[id]; ok {
			info.Built = true
			info.SizeBytes = el.Value.(*builtEntry).bytes
		}
		infos = append(infos, info)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	return infos
}

// Info returns one scenario's info.
func (st *Store) Info(id string) (ScenarioInfo, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	src, ok := st.sources[id]
	if !ok {
		return ScenarioInfo{}, fmt.Errorf("%w: %q", ErrUnknownScenario, id)
	}
	info := src.info
	if el, ok := st.builtIdx[id]; ok {
		info.Built = true
		info.SizeBytes = el.Value.(*builtEntry).bytes
	}
	return info, nil
}

// BuiltLen reports how many sealed scenarios are resident.
func (st *Store) BuiltLen() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.order.Len()
}

// Close drains every resident tenant's background machinery (fork-pool
// refill goroutines); call it after the HTTP server has drained so a
// fleet shutdown leaves no goroutine behind. Tenants stay usable —
// Close only stops their pools from restocking.
func (st *Store) Close() {
	st.mu.Lock()
	defer st.mu.Unlock()
	for el := st.order.Front(); el != nil; el = el.Next() {
		el.Value.(*builtEntry).tenant.Close()
	}
}

// Get returns the tenant serving id, building the sealed scenario on
// demand. Concurrent calls for the same cold id share one build
// (singleflight); calls for a resident id are LRU hits. The ctx bounds
// this caller's wait — in the build-gate queue or on another caller's
// build — not the build itself, which always runs to completion so the
// result is kept for the next request.
func (st *Store) Get(ctx context.Context, id string) (*Server, error) {
	for {
		st.mu.Lock()
		src, ok := st.sources[id]
		if !ok {
			st.mu.Unlock()
			return nil, fmt.Errorf("%w: %q", ErrUnknownScenario, id)
		}
		if el, ok := st.builtIdx[id]; ok {
			st.order.MoveToFront(el)
			tenant := el.Value.(*builtEntry).tenant
			st.mu.Unlock()
			obs.Inc("service.scenario.hits")
			return tenant, nil
		}
		if bc, ok := st.building[id]; ok {
			st.mu.Unlock()
			select {
			case <-bc.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if bc.err == nil {
				return bc.tenant, nil
			}
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			// The build died on ITS caller's context; ours is live, so
			// retry — the same recovery the response cache uses.
			if bc.err != context.Canceled && bc.err != context.DeadlineExceeded {
				return nil, bc.err
			}
			continue
		}
		bc := &buildCall{done: make(chan struct{})}
		st.building[id] = bc
		st.mu.Unlock()

		bc.tenant, bc.err = st.build(ctx, id, src)
		st.mu.Lock()
		delete(st.building, id)
		if bc.err == nil {
			st.insert(id, bc.tenant)
		}
		st.mu.Unlock()
		close(bc.done)
		return bc.tenant, bc.err
	}
}

// build seals one scenario and wraps it in a tenant. The build gate
// bounds how many run at once; the requester's ctx only governs its
// place in the queue (scenario.Build is not cancelable, and a finished
// build is always worth keeping). When the gate's queue is already at
// MaxQueuedBuilds the build is shed instead of queued — the
// OverloadError propagates to every waiter coalesced on this id, and
// each writes (and counts) its own 429.
func (st *Store) build(ctx context.Context, id string, src *source) (*Server, error) {
	if max := st.cfg.MaxQueuedBuilds; max > 0 {
		if q := st.buildGate.Waiting(); q >= max {
			return nil, &OverloadError{What: "build", Queue: q, Limit: max, RetryAfter: buildRetryAfter(q)}
		}
	}
	if err := st.buildGate.Enter(ctx); err != nil {
		return nil, err
	}
	defer st.buildGate.Leave()
	if st.buildHook != nil {
		st.buildHook(id)
	}

	// Track this build for GET /v1/scenarios/{id}/build: the obs stage
	// events the pipeline already emits advance the per-id tracker.
	bp := newBuildProgress()
	st.mu.Lock()
	st.progress[id] = bp
	st.mu.Unlock()
	cancelStage := obs.OnStage(bp.event)
	defer cancelStage()

	defer obs.StartStage("service/scenario-build")()
	obs.Inc("service.scenario.builds")
	s, err := scenario.Build(src.cfg, st.cfg.Logf)
	if err != nil {
		bp.mu.Lock()
		bp.state = BuildFailed
		bp.lastErr = err.Error()
		bp.mu.Unlock()
		return nil, fmt.Errorf("service: build scenario %q: %w", id, err)
	}
	tenant := newTenant(id, s, st.cfg.Tenant, st.cache)
	// Built (insert will drop the tracker; this covers the window
	// between returning and the caller's insert under st.mu).
	bp.mu.Lock()
	bp.state = BuildBuilt
	bp.mu.Unlock()
	return tenant, nil
}

// BuildProgress reports the build state of one registered scenario
// without touching the store's Get path — polling progress must never
// trigger or wait on a build. Residency wins (built), then a live or
// failed tracker, then pending.
func (st *Store) BuildProgress(id string) (BuildProgressData, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.sources[id]; !ok {
		return BuildProgressData{}, fmt.Errorf("%w: %q", ErrUnknownScenario, id)
	}
	if _, ok := st.builtIdx[id]; ok {
		return BuildProgressData{
			ID:         id,
			State:      BuildBuilt,
			Percent:    100,
			PhasesDone: len(buildPhases),
			Phases:     len(buildPhases),
		}, nil
	}
	if bp, ok := st.progress[id]; ok {
		return bp.snapshot(id), nil
	}
	return BuildProgressData{ID: id, State: BuildPending, Phases: len(buildPhases)}, nil
}

// ResidentBytes reports the store's current byte-budget charge: the
// sum of every resident tenant's SizeBytes estimate.
func (st *Store) ResidentBytes() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.residentBytes
}

// insert records a freshly-built tenant and evicts past the budget:
// resident bytes when MaxScenarioBytes is set (the memory-accounted
// policy), resident count otherwise. Caller holds st.mu.
func (st *Store) insert(id string, tenant *Server) {
	delete(st.progress, id) // residency now answers BuildProgress
	e := &builtEntry{id: id, tenant: tenant, bytes: tenant.SizeBytes()}
	st.builtIdx[id] = st.order.PushFront(e)
	st.residentBytes += e.bytes
	if st.cfg.MaxScenarioBytes > 0 {
		// Never evict the sole resident: one over-budget world should
		// serve (and report its true cost) rather than thrash forever.
		for st.residentBytes > st.cfg.MaxScenarioBytes && st.order.Len() > 1 {
			st.evictOldest()
		}
	} else {
		for st.order.Len() > st.cfg.MaxScenarios {
			st.evictOldest()
		}
	}
	obs.SetGauge("service.scenario.built", float64(st.order.Len()))
	obs.SetGauge("service.scenario.resident_bytes", float64(st.residentBytes))
}

// evictOldest drops the least-recently-served tenant. Caller holds
// st.mu.
func (st *Store) evictOldest() {
	el := st.order.Back()
	st.order.Remove(el)
	evicted := el.Value.(*builtEntry)
	delete(st.builtIdx, evicted.id)
	st.residentBytes -= evicted.bytes
	// Purge the evicted tenant's cache partition: responses are
	// deterministic, so dropping them only costs recomputation, and
	// keeping them would hold the evicted world's bodies in memory.
	st.cache.removePrefix(evicted.id + "|")
	// Join the evicted tenant's fork-pool refills so no goroutine
	// keeps the evicted world's forks alive. Refills are bounded (one
	// Fork plus a non-blocking send) and never take st.mu, so waiting
	// under the lock is cheap and deadlock-free.
	evicted.tenant.Close()
	obs.Inc("service.scenario.evictions")
}
