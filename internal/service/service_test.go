package service

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"routelab/internal/obs"
	"routelab/internal/scenario"
)

var (
	sharedOnce sync.Once
	shared     *scenario.Scenario
	sharedErr  error
)

func testScenario(t *testing.T) *scenario.Scenario {
	t.Helper()
	sharedOnce.Do(func() {
		shared, sharedErr = scenario.Build(scenario.TestConfig(), nil)
	})
	if sharedErr != nil {
		t.Fatal(sharedErr)
	}
	return shared
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(testScenario(t), cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// checkEnvelope validates a response the way cmd/apicheck does and
// returns the envelope kind.
func checkEnvelope(t *testing.T, body string) Envelope {
	t.Helper()
	e, err := ReadEnvelope(strings.NewReader(body))
	if err != nil {
		t.Fatalf("invalid envelope: %v\nbody: %s", err, body)
	}
	return e
}

// testURLs builds one representative URL per endpoint family against
// the shared test scenario.
func testURLs(s *scenario.Scenario, base string) []string {
	trace := s.Measurements[0].TraceID
	trace2 := s.Measurements[len(s.Measurements)-1].TraceID
	target := s.Measurements[0].DstAS
	as1 := s.Topo.ASNs()[0]
	as2 := s.Topo.ASNs()[1]
	return []string{
		base + "/v1/healthz",
		base + fmt.Sprintf("/v1/classify?trace=%d", trace),
		base + fmt.Sprintf("/v1/classify?trace=%d&refinement=simple", trace),
		base + fmt.Sprintf("/v1/classify?trace=%d", trace2),
		base + fmt.Sprintf("/v1/alternates?target=%s", target),
		base + "/v1/experiments/table1",
		base + "/v1/experiments/figure1?seed=11",
		base + "/v1/experiments/prediction",
		base + fmt.Sprintf("/v1/as/%s", as1),
		base + fmt.Sprintf("/v1/as/%s", as2),
	}
}

func TestEndpoints(t *testing.T) {
	s := testScenario(t)
	_, ts := newTestServer(t, Config{})
	wantKinds := []string{"health", "classify", "classify", "classify",
		"alternates", "experiment", "experiment", "experiment", "as", "as"}
	for i, url := range testURLs(s, ts.URL) {
		status, body := get(t, url)
		if status != http.StatusOK {
			t.Errorf("%s: status %d\n%s", url, status, body)
			continue
		}
		if e := checkEnvelope(t, body); e.Kind != wantKinds[i] {
			t.Errorf("%s: kind %q, want %q", url, e.Kind, wantKinds[i])
		}
	}

	// /v1/metrics is served after traffic so the per-endpoint counters
	// exist; it must report them.
	status, body := get(t, ts.URL+"/v1/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics: status %d", status)
	}
	if e := checkEnvelope(t, body); e.Kind != "metrics" {
		t.Errorf("metrics kind %q", e.Kind)
	}
	for _, want := range []string{"service.requests.healthz", "service.requests.classify", "service/experiments"} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Text rendering of an experiment matches the registry rendering.
	status, body = get(t, ts.URL+"/v1/experiments/table1?format=text")
	if status != http.StatusOK || !strings.Contains(body, "Table 1") {
		t.Errorf("text format: status %d body %q...", status, body[:min(60, len(body))])
	}
}

func TestErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		url  string
		want int
	}{
		{"/v1/nope", http.StatusNotFound},
		{"/nope", http.StatusNotFound},
		{"/v1/experiments/bogus", http.StatusNotFound},
		{"/v1/classify", http.StatusBadRequest},
		{"/v1/classify?trace=zzz", http.StatusBadRequest},
		{"/v1/classify?trace=99999999", http.StatusNotFound},
		{"/v1/classify?trace=0&refinement=bogus", http.StatusBadRequest},
		{"/v1/alternates", http.StatusBadRequest},
		{"/v1/alternates?target=zzz", http.StatusBadRequest},
		{"/v1/alternates?target=64999", http.StatusNotFound},
		{"/v1/as/notanumber", http.StatusBadRequest},
		{"/v1/as/64999", http.StatusNotFound},
		{"/v1/experiments/table1?seed=zzz", http.StatusBadRequest},
		{"/v1/experiments/table1?format=yaml", http.StatusBadRequest},
	}
	for _, tc := range cases {
		status, body := get(t, ts.URL+tc.url)
		if status != tc.want {
			t.Errorf("%s: status %d, want %d", tc.url, status, tc.want)
			continue
		}
		if e := checkEnvelope(t, body); e.Kind != "error" {
			t.Errorf("%s: kind %q, want error", tc.url, e.Kind)
		}
	}
}

func TestRequestTimeout(t *testing.T) {
	// A deadline this tight expires before the computation is admitted,
	// so the experiment endpoint must answer 504 deterministically.
	_, ts := newTestServer(t, Config{RequestTimeout: time.Nanosecond})
	status, body := get(t, ts.URL+"/v1/experiments/table1")
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504\n%s", status, body)
	}
	if e := checkEnvelope(t, body); e.Kind != "error" {
		t.Errorf("kind %q, want error", e.Kind)
	}
	// Cheap parameter errors still win over the deadline.
	if status, _ := get(t, ts.URL+"/v1/experiments/bogus"); status != http.StatusNotFound {
		t.Errorf("unknown experiment under timeout: status %d, want 404", status)
	}
}

// TestConcurrentMatchesSerial is the serve-time determinism contract:
// >= 64 concurrent mixed queries (with a deliberately tiny gate and
// cache to force queueing and eviction) must produce responses
// byte-identical to a serial baseline.
func TestConcurrentMatchesSerial(t *testing.T) {
	s := testScenario(t)
	_, ts := newTestServer(t, Config{MaxConcurrent: 2, CacheSize: 3})
	urls := testURLs(s, ts.URL)

	baseline := make(map[string]string, len(urls))
	for _, u := range urls {
		status, body := get(t, u)
		if status != http.StatusOK {
			t.Fatalf("baseline %s: status %d", u, status)
		}
		baseline[u] = body
	}

	const clients = 72
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		u := urls[i%len(urls)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(u)
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("%s: status %d", u, resp.StatusCode)
				return
			}
			if string(body) != baseline[u] {
				errs <- fmt.Errorf("%s: concurrent response differs from serial baseline", u)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestShutdownDrains exercises the graceful-drain path: a request in
// flight when Shutdown is called must complete with its full response.
func TestShutdownDrains(t *testing.T) {
	s := testScenario(t)
	srv := New(s, Config{})
	httpSrv := httptest.NewServer(srv.Handler())
	// Take over the lifecycle from httptest: issue a fresh (uncached,
	// non-trivial) request, then shut down while it runs.
	url := httpSrv.URL + fmt.Sprintf("/v1/alternates?target=%s", s.Measurements[1].DstAS)
	type result struct {
		status int
		body   string
		err    error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Get(url)
		if err != nil {
			done <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		done <- result{status: resp.StatusCode, body: string(b), err: err}
	}()
	time.Sleep(10 * time.Millisecond) // let the request reach the handler
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Config.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown did not drain: %v", err)
	}
	r := <-done
	if r.err != nil {
		t.Fatalf("in-flight request failed: %v", r.err)
	}
	if r.status != http.StatusOK {
		t.Fatalf("in-flight request: status %d\n%s", r.status, r.body)
	}
	checkEnvelope(t, r.body)
}

func TestCacheCoalescesAndCounts(t *testing.T) {
	s := testScenario(t)
	obs.Reset()
	srv, ts := newTestServer(t, Config{})
	url := ts.URL + fmt.Sprintf("/v1/classify?trace=%d", s.Measurements[2].TraceID)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(url)
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	if srv.cache.len() != 1 {
		t.Errorf("cache holds %d entries, want 1", srv.cache.len())
	}
	snap := obs.Snap()
	if n := snap.Counters["service.requests.classify"]; n != 8 {
		t.Errorf("service.requests.classify = %d, want 8", n)
	}
	found := false
	for _, st := range snap.Stages {
		if st.Name == "service/classify" && st.Count == 8 {
			found = true
		}
	}
	if !found {
		t.Error("missing service/classify latency timer with 8 observations")
	}
}

func TestEnvelopeValidate(t *testing.T) {
	good := Envelope{Schema: Schema, Kind: "health", Data: []byte(`{"status":"ok"}`)}
	if err := good.Validate(); err != nil {
		t.Errorf("valid envelope rejected: %v", err)
	}
	bad := []Envelope{
		{Schema: "routelab-api/v0", Kind: "health", Data: []byte(`{}`)},
		{Schema: Schema, Kind: "bogus", Data: []byte(`{}`)},
		{Schema: Schema, Kind: "health"},
		{Schema: Schema, Kind: "health", Data: []byte(`{`)},
	}
	for i, e := range bad {
		if e.Validate() == nil {
			t.Errorf("bad envelope %d accepted", i)
		}
	}
}
