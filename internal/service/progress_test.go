package service

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"routelab/internal/obs"
)

// TestBuildProgressTrackerMonotone folds a stage-event stream — with
// repeats and out-of-order arrivals, as MapStage inside phases and
// concurrent builds produce — and checks progress never moves backwards.
func TestBuildProgressTrackerMonotone(t *testing.T) {
	bp := newBuildProgress()
	d := bp.snapshot("x")
	if d.State != BuildBuilding || d.Percent != 0 || d.PhasesDone != 0 {
		t.Fatalf("fresh tracker: %+v", d)
	}

	lastPct := d.Percent
	events := []struct {
		name  string
		begin bool
	}{
		{"scenario/topology", true},
		{"scenario/topology", false},
		{"scenario/converge-historical", true},
		{"not-a-build-stage", true}, // unknown: ignored
		{"magnet", false},           // lazy stage: not in the pipeline, ignored
		{"scenario/converge-historical", false},
		{"scenario/converge-current", true},
		{"scenario/topology", true}, // out of order (another build): no regress
		{"scenario/converge-current", false},
	}
	for _, ev := range events {
		bp.event(ev.name, ev.begin)
		d := bp.snapshot("x")
		if d.Percent < lastPct {
			t.Fatalf("after %v: percent regressed %v -> %v", ev, lastPct, d.Percent)
		}
		lastPct = d.Percent
		if err := d.Validate(); err != nil {
			t.Fatalf("after %v: invalid snapshot: %v", ev, err)
		}
	}
	d = bp.snapshot("x")
	if d.PhasesDone != 3 || d.Phase != "scenario/converge-current" {
		t.Errorf("final snapshot: done %d phase %q, want 3 / scenario/converge-current", d.PhasesDone, d.Phase)
	}
	if d.Percent <= 0 || d.Percent >= 100 {
		t.Errorf("mid-build percent %v, want in (0, 100)", d.Percent)
	}
}

// TestPercentDoneCap: a build with every phase complete but not yet
// inserted must report at most 99 — 100 is reserved for the built
// state, which Validate enforces.
func TestPercentDoneCap(t *testing.T) {
	if pct := percentDone(len(buildPhases), len(buildPhases)-1); pct > 99 {
		t.Errorf("all-phases-done percent %v, want <= 99", pct)
	}
	if pct := percentDone(0, -1); pct != 0 {
		t.Errorf("nothing-started percent %v, want 0", pct)
	}
}

func TestBuildProgressValidateRejects(t *testing.T) {
	good := BuildProgressData{ID: "x", State: BuildBuilding, Phase: "scenario/topology",
		Percent: 12, PhasesDone: 1, Phases: 9}
	if err := good.Validate(); err != nil {
		t.Fatalf("good payload rejected: %v", err)
	}
	cases := []struct {
		name   string
		break_ func(*BuildProgressData)
	}{
		{"missing id", func(d *BuildProgressData) { d.ID = "" }},
		{"unknown state", func(d *BuildProgressData) { d.State = "cooking" }},
		{"percent range", func(d *BuildProgressData) { d.Percent = 101 }},
		{"100 without built", func(d *BuildProgressData) { d.Percent = 100 }},
		{"built without 100", func(d *BuildProgressData) { d.State = BuildBuilt }},
		{"phases_done range", func(d *BuildProgressData) { d.PhasesDone = 10 }},
		{"foreign phase", func(d *BuildProgressData) { d.Phase = "service/scenario-build" }},
		{"failed without error", func(d *BuildProgressData) { d.State = BuildFailed; d.Percent = 0 }},
	}
	for _, tc := range cases {
		d := good
		tc.break_(&d)
		if err := d.Validate(); err == nil {
			t.Errorf("%s: broken payload accepted", tc.name)
		}
	}
}

// decodeBuild unmarshals and validates a kind "build" response body.
func decodeBuild(t *testing.T, body string) BuildProgressData {
	t.Helper()
	env := checkEnvelope(t, body)
	if env.Kind != "build" {
		t.Fatalf("kind %q, want build", env.Kind)
	}
	var d BuildProgressData
	if err := json.Unmarshal(env.Data, &d); err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("build payload invalid: %v", err)
	}
	return d
}

// TestFleetBuildProgressEndpoint walks one scenario through its
// lifecycle on the wire: pending before any request, building (with a
// live phase and partial percent) while the pipeline is stalled
// mid-stage, built/100 after — and the endpoint answers instantly
// throughout instead of joining the build.
func TestFleetBuildProgressEndpoint(t *testing.T) {
	obs.Reset()
	_, ts := newTestFleet(t, StoreConfig{}, testExpansion("alpha", 1))
	buildURL := ts.URL + "/v1/scenarios/alpha/build"

	status, body := get(t, buildURL)
	if status != http.StatusOK {
		t.Fatalf("pending poll: status %d\n%s", status, body)
	}
	if d := decodeBuild(t, body); d.State != BuildPending || d.Percent != 0 {
		t.Fatalf("before any request: %+v, want pending/0", d)
	}

	// Stall the build pipeline mid-stage: a test listener registered
	// before the store's tracker blocks the builder inside the
	// snapshots phase, with earlier phases already delivered.
	stall := make(chan struct{})
	release := make(chan struct{})
	var once bool
	cancel := obs.OnStage(func(name string, begin bool) {
		if name == "scenario/snapshots" && begin && !once {
			once = true
			close(stall)
			<-release
		}
	})
	defer cancel()

	done := make(chan int, 1)
	go func() {
		s, _, err := getErr(ts.URL + "/v1/scenarios/alpha/healthz")
		if err != nil {
			t.Error(err)
		}
		done <- s
	}()
	<-stall

	status, body = get(t, buildURL)
	if status != http.StatusOK {
		t.Fatalf("mid-build poll blocked or failed: status %d", status)
	}
	d := decodeBuild(t, body)
	if d.State != BuildBuilding {
		t.Errorf("mid-build state %q, want building", d.State)
	}
	if d.Percent <= 0 || d.Percent >= 100 {
		t.Errorf("mid-build percent %v, want in (0, 100)", d.Percent)
	}
	if !strings.HasPrefix(d.Phase, "scenario/") || d.PhasesDone < 1 {
		t.Errorf("mid-build phase %q done %d, want converge phases recorded", d.Phase, d.PhasesDone)
	}

	close(release)
	if s := <-done; s != http.StatusOK {
		t.Fatalf("build request: status %d", s)
	}
	status, body = get(t, buildURL)
	if status != http.StatusOK {
		t.Fatal("built poll failed")
	}
	if d := decodeBuild(t, body); d.State != BuildBuilt || d.Percent != 100 || d.PhasesDone != d.Phases {
		t.Errorf("after build: %+v, want built/100", d)
	}

	// Unknown ids 404 through the same typed-envelope path.
	status, body = get(t, ts.URL+"/v1/scenarios/nope/build")
	if status != http.StatusNotFound {
		t.Errorf("unknown id: status %d, want 404\n%s", status, body)
	}
}

// TestSingleScenarioBuildEndpoint: in single-scenario mode the world is
// built before serving, so GET /v1/build is statically built/100.
func TestSingleScenarioBuildEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := get(t, ts.URL+"/v1/build")
	if status != http.StatusOK {
		t.Fatalf("status %d\n%s", status, body)
	}
	if d := decodeBuild(t, body); d.State != BuildBuilt || d.Percent != 100 {
		t.Errorf("single mode: %+v, want built/100", d)
	}
}
