package service

import (
	"fmt"
	"net/http"
	"strings"
	"sync"

	"routelab/internal/obs"
)

// Build-progress streaming: a cold scenario's first request used to be
// the only way to learn a build was running — and it blocked for the
// whole build. GET /v1/scenarios/{id}/build answers instantly with a
// phase/percent snapshot instead, fed by the obs stage events the build
// pipeline already emits, so clients poll cheaply and decide for
// themselves when to issue the real request.
//
// Like /v1/metrics, the endpoint reports history: it is NOT
// deterministic and is never cached. Resolution deliberately bypasses
// the store's Get — asking "how is the build going?" must not trigger
// the build.

// Build states reported by BuildProgressData.State.
const (
	BuildPending  = "pending"  // registered; no build running or resident
	BuildBuilding = "building" // a build is in flight
	BuildBuilt    = "built"    // a sealed scenario is resident
	BuildFailed   = "failed"   // the last build attempt errored
)

// buildPhases is the scenario build pipeline in execution order — the
// stage names internal/scenario starts (and ForEachStage/MapStage
// publish) while Build runs. The tracker walks this list as stage
// events arrive; an unknown or lazily-run stage (magnet, alternates)
// never appears here and is ignored.
var buildPhases = []string{
	"scenario/topology",
	"scenario/converge-historical",
	"scenario/converge-current",
	"scenario/snapshots",
	"scenario/inference",
	"scenario/atlas",
	"scenario/campaign",
	"scenario/lookingglass",
	"scenario/testbed",
}

// buildPhaseIdx maps a stage name to its position in buildPhases.
var buildPhaseIdx = func() map[string]int {
	m := make(map[string]int, len(buildPhases))
	for i, name := range buildPhases {
		m[name] = i
	}
	return m
}()

// defaultPhaseWeights approximates each phase's share of a build before
// any timer data exists (first build of a process). Once the obs stage
// timers have observed real builds, phaseWeights uses their means
// instead — percent estimates sharpen as the fleet runs.
var defaultPhaseWeights = map[string]float64{
	"scenario/topology":             5,
	"scenario/converge-historical":  25,
	"scenario/converge-current":     20,
	"scenario/snapshots":            10,
	"scenario/inference":            10,
	"scenario/atlas":                5,
	"scenario/campaign":             20,
	"scenario/lookingglass":         2,
	"scenario/testbed":              3,
}

// phaseWeights returns the relative cost of every build phase: the obs
// timer's mean when that phase has been observed at least once, the
// static default otherwise. Reads recorded aggregates only — no wall
// clock (walltime).
func phaseWeights() []float64 {
	reg := obs.Default()
	w := make([]float64, len(buildPhases))
	for i, name := range buildPhases {
		if mean := reg.Timer(name).Mean(); mean > 0 {
			w[i] = float64(mean)
		} else {
			w[i] = defaultPhaseWeights[name]
		}
	}
	return w
}

// percentDone folds completed phases (and half of the one in flight)
// over the phase weights into [0, 100).
func percentDone(done, inFlight int) float64 {
	w := phaseWeights()
	var total, covered float64
	for i, wi := range w {
		total += wi
		if i < done {
			covered += wi
		} else if i == inFlight && inFlight >= done {
			covered += wi / 2
		}
	}
	if total <= 0 {
		return 0
	}
	pct := 100 * covered / total
	if pct > 99 {
		pct = 99 // 100 is reserved for BuildBuilt
	}
	return pct
}

// buildProgress is the live tracker for one scenario's build attempt.
// Stage events are process-global, so with MaxBuilds > 1 a concurrent
// build's phases can advance another tracker — progress is a monotone
// estimate, not an exact cursor. (The default MaxBuilds of 1 makes it
// exact.)
type buildProgress struct {
	mu       sync.Mutex
	state    string
	phase    int // index of the deepest phase seen to begin, -1 before any
	done     int // count of phases whose end event has been seen
	lastErr  string
}

func newBuildProgress() *buildProgress {
	return &buildProgress{state: BuildBuilding, phase: -1}
}

// event folds one obs stage event into the tracker. Monotone: phases
// only advance, so out-of-order or repeated events (MapStage inside a
// phase, a concurrent build's stages) never move progress backwards.
func (bp *buildProgress) event(name string, begin bool) {
	idx, ok := buildPhaseIdx[name]
	if !ok {
		return
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if begin {
		if idx > bp.phase {
			bp.phase = idx
		}
		return
	}
	if idx+1 > bp.done {
		bp.done = idx + 1
	}
}

// snapshot renders the tracker into the API payload shape.
func (bp *buildProgress) snapshot(id string) BuildProgressData {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	d := BuildProgressData{
		ID:         id,
		State:      bp.state,
		PhasesDone: bp.done,
		Phases:     len(buildPhases),
		Error:      bp.lastErr,
	}
	if bp.phase >= 0 {
		d.Phase = buildPhases[bp.phase]
	}
	switch bp.state {
	case BuildBuilding:
		d.Percent = percentDone(bp.done, bp.phase)
	case BuildBuilt:
		d.Percent = 100
		d.PhasesDone = len(buildPhases)
	}
	return d
}

// BuildProgressData is the kind "build" payload: GET
// /v1/scenarios/{id}/build in fleet mode, GET /v1/build in
// single-scenario mode (where the scenario is built before serving, so
// the answer is statically "built").
type BuildProgressData struct {
	ID    string `json:"id"`
	State string `json:"state"` // pending | building | built | failed
	// Phase is the deepest pipeline stage observed to start; empty
	// until the first stage begins (and for pending/failed snapshots).
	Phase string `json:"phase,omitempty"`
	// Percent estimates build completion in [0,100]: phase weights come
	// from observed stage-timer means (static defaults before the first
	// build). Exactly 100 if and only if state is "built".
	Percent    float64 `json:"percent"`
	PhasesDone int     `json:"phases_done"`
	Phases     int     `json:"phases"`
	Error      string  `json:"error,omitempty"`
}

// Validate checks a build payload's internal consistency — what
// cmd/apicheck verifies about served bodies beyond the envelope.
func (d BuildProgressData) Validate() error {
	if d.ID == "" {
		return fmt.Errorf("missing id")
	}
	switch d.State {
	case BuildPending, BuildBuilding, BuildBuilt, BuildFailed:
	default:
		return fmt.Errorf("unknown state %q", d.State)
	}
	if d.Percent < 0 || d.Percent > 100 {
		return fmt.Errorf("percent %v out of [0,100]", d.Percent)
	}
	if (d.Percent == 100) != (d.State == BuildBuilt) {
		return fmt.Errorf("percent %v inconsistent with state %q", d.Percent, d.State)
	}
	if d.PhasesDone < 0 || d.PhasesDone > d.Phases {
		return fmt.Errorf("phases_done %d out of [0,%d]", d.PhasesDone, d.Phases)
	}
	if d.Phase != "" && !strings.HasPrefix(d.Phase, "scenario/") {
		return fmt.Errorf("phase %q is not a scenario build stage", d.Phase)
	}
	if d.State == BuildFailed && d.Error == "" {
		return fmt.Errorf("failed state without error detail")
	}
	return nil
}

// serveBuildStatic is the single-scenario GET /v1/build: the scenario
// was built before the server started, so the snapshot is static.
func (srv *Server) serveBuildStatic(w http.ResponseWriter, _ *http.Request) {
	body, err := marshalEnvelope("build", BuildProgressData{
		ID:         srv.id,
		State:      BuildBuilt,
		Percent:    100,
		PhasesDone: len(buildPhases),
		Phases:     len(buildPhases),
	})
	if err != nil {
		fail(w, http.StatusInternalServerError, apiErr(CodeInternal, err.Error()))
		return
	}
	writeBody(w, body)
}
