package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"slices"
	"strings"
	"testing"

	"routelab/internal/obs"
	"routelab/internal/whatif"
)

// postWhatIf posts one routelab-whatif/v1 document and returns status,
// body, and the response-cache header.
func postWhatIf(t *testing.T, url, doc string) (int, string, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header.Get(CacheHeader)
}

// decodeWhatIf unwraps a whatif envelope.
func decodeWhatIf(t *testing.T, body string) WhatIfData {
	t.Helper()
	e := checkEnvelope(t, body)
	if e.Kind != "whatif" {
		t.Fatalf("kind %q, want whatif\n%s", e.Kind, body)
	}
	var data WhatIfData
	if err := json.Unmarshal(e.Data, &data); err != nil {
		t.Fatalf("decode whatif data: %v", err)
	}
	return data
}

func TestWhatIfSingleDelta(t *testing.T) {
	s := testScenario(t)
	_, ts := newTestServer(t, Config{})
	url := ts.URL + "/v1/whatif"

	doc := `{"schema":"routelab-whatif/v1","delta":{"kind":"withdraw"}}`
	status, body, hdr := postWhatIf(t, url, doc)
	if status != http.StatusOK {
		t.Fatalf("status %d\n%s", status, body)
	}
	if hdr != "miss" {
		t.Errorf("first request: cache %q, want miss", hdr)
	}
	data := decodeWhatIf(t, body)
	if data.Deltas != 1 || len(data.Results) != 1 {
		t.Fatalf("deltas=%d results=%d, want 1/1", data.Deltas, len(data.Results))
	}
	r := data.Results[0]
	if r.Kind != "withdraw" || r.Delta != "withdraw()" {
		t.Errorf("result kind/delta = %q/%q", r.Kind, r.Delta)
	}
	if !r.Converged || r.Lost == 0 || r.Gained != 0 {
		t.Errorf("withdraw diff shape: %+v", r)
	}
	if data.Origin != s.Testbed.Origin.String() || data.Prefix != s.Testbed.Prefixes[0].String() {
		t.Errorf("origin/prefix = %q/%q", data.Origin, data.Prefix)
	}

	// Byte-identical cache hit on repeat.
	status2, body2, hdr2 := postWhatIf(t, url, doc)
	if status2 != http.StatusOK || hdr2 != "hit" {
		t.Fatalf("repeat: status %d, cache %q, want 200/hit", status2, hdr2)
	}
	if body2 != body {
		t.Error("cached body differs from computed body")
	}
}

// TestWhatIfBatchForksBase pins the batch contract: N deltas cost
// exactly N forks of one shared frozen base (bgp.fork.calls), and a
// cache hit costs none.
func TestWhatIfBatchForksBase(t *testing.T) {
	s := testScenario(t)
	_, ts := newTestServer(t, Config{})
	mux := s.Testbed.Muxes[0]
	doc := fmt.Sprintf(`{"schema":"routelab-whatif/v1","deltas":[
		{"kind":"withdraw"},
		{"kind":"prepend","prepend":2},
		{"kind":"poison","poisoned":[%q]}
	]}`, mux)

	before := obs.Snap().Counters["bgp.fork.calls"]
	status, body, hdr := postWhatIf(t, ts.URL+"/v1/whatif", doc)
	if status != http.StatusOK || hdr != "miss" {
		t.Fatalf("status %d, cache %q\n%s", status, hdr, body)
	}
	if got := obs.Snap().Counters["bgp.fork.calls"] - before; got != 3 {
		t.Errorf("batch of 3 took %d forks, want 3 (one per delta off one frozen base)", got)
	}
	data := decodeWhatIf(t, body)
	if data.Deltas != 3 || len(data.Results) != 3 {
		t.Fatalf("deltas=%d results=%d, want 3/3", data.Deltas, len(data.Results))
	}

	// The cached repeat must not fork at all.
	before = obs.Snap().Counters["bgp.fork.calls"]
	if _, _, hdr := postWhatIf(t, ts.URL+"/v1/whatif", doc); hdr != "hit" {
		t.Fatalf("repeat: cache %q, want hit", hdr)
	}
	if got := obs.Snap().Counters["bgp.fork.calls"] - before; got != 0 {
		t.Errorf("cache hit took %d forks, want 0", got)
	}
}

// TestWhatIfCanonicalCacheKey: two wire-different but semantically
// equal requests share one cache entry.
func TestWhatIfCanonicalCacheKey(t *testing.T) {
	s := testScenario(t)
	_, ts := newTestServer(t, Config{})
	m0, m1 := s.Testbed.Muxes[0], s.Testbed.Muxes[1%len(s.Testbed.Muxes)]

	doc1 := fmt.Sprintf(`{"schema":"routelab-whatif/v1","delta":{"kind":"poison","poisoned":[%q,%q]}}`, m1, m0)
	doc2 := fmt.Sprintf(`{"schema":"routelab-whatif/v1","delta":{"kind":"poison","poisoned":[%q,%q,%q]}}`, m0, m1, m0)
	status, body1, hdr := postWhatIf(t, ts.URL+"/v1/whatif", doc1)
	if status != http.StatusOK || hdr != "miss" {
		t.Fatalf("first: status %d, cache %q", status, hdr)
	}
	status, body2, hdr := postWhatIf(t, ts.URL+"/v1/whatif", doc2)
	if status != http.StatusOK {
		t.Fatalf("second: status %d", status)
	}
	if hdr != "hit" {
		t.Errorf("reordered+duplicated poison set: cache %q, want hit (canonical key)", hdr)
	}
	if body1 != body2 {
		t.Error("canonically equal requests returned different bodies")
	}
}

func TestWhatIfErrors(t *testing.T) {
	s := testScenario(t)
	_, ts := newTestServer(t, Config{})
	origin := s.Testbed.Origin

	// A syntactically valid prefix outside the testbed set.
	foreign := "203.0.113.0/24"
	for _, p := range s.Testbed.Prefixes {
		if p.String() == foreign {
			foreign = "198.18.0.0/24"
		}
	}
	big := make([]string, MaxWhatIfDeltas+1)
	for i := range big {
		big[i] = `{"kind":"withdraw"}`
	}

	cases := []struct {
		name     string
		doc      string
		want     int
		wantCode string
	}{
		{"bad schema", `{"schema":"routelab-whatif/v2","delta":{"kind":"withdraw"}}`, http.StatusBadRequest, CodeBadBody},
		{"not json", `nope`, http.StatusBadRequest, CodeBadBody},
		{"no delta", `{"schema":"routelab-whatif/v1"}`, http.StatusBadRequest, CodeBadBody},
		{"both forms", `{"schema":"routelab-whatif/v1","delta":{"kind":"withdraw"},"deltas":[{"kind":"withdraw"}]}`, http.StatusBadRequest, CodeBadBody},
		{"batch cap", `{"schema":"routelab-whatif/v1","deltas":[` + strings.Join(big, ",") + `]}`, http.StatusBadRequest, CodeBadBody},
		{"unknown kind", `{"schema":"routelab-whatif/v1","delta":{"kind":"teleport"}}`, http.StatusBadRequest, CodeBadBody},
		{"bad delta", fmt.Sprintf(`{"schema":"routelab-whatif/v1","delta":{"kind":"poison","poisoned":[%q]}}`, origin), http.StatusBadRequest, CodeBadParam},
		{"bad prefix", `{"schema":"routelab-whatif/v1","prefix":"zzz","delta":{"kind":"withdraw"}}`, http.StatusBadRequest, CodeBadParam},
		{"foreign prefix", fmt.Sprintf(`{"schema":"routelab-whatif/v1","prefix":%q,"delta":{"kind":"withdraw"}}`, foreign), http.StatusNotFound, CodeNotFound},
	}
	for _, tc := range cases {
		status, body, _ := postWhatIf(t, ts.URL+"/v1/whatif", tc.doc)
		if status != tc.want {
			t.Errorf("%s: status %d, want %d\n%s", tc.name, status, tc.want, body)
			continue
		}
		e := checkEnvelope(t, body)
		if e.Kind != "error" {
			t.Errorf("%s: kind %q, want error", tc.name, e.Kind)
			continue
		}
		var ed ErrorData
		if err := json.Unmarshal(e.Data, &ed); err != nil {
			t.Errorf("%s: decode error data: %v", tc.name, err)
			continue
		}
		if ed.Code != tc.wantCode {
			t.Errorf("%s: code %q, want %q (error: %s)", tc.name, ed.Code, tc.wantCode, ed.Error)
		}
	}

	// GET on the POST-only route is a 404 from the fallback mux.
	if status, _ := get(t, ts.URL+"/v1/whatif"); status != http.StatusNotFound {
		t.Errorf("GET /v1/whatif: status %d, want 404", status)
	}
}

// TestWhatIfFleet drives the same endpoint through the fleet route
// table: /v1/scenarios/{id}/whatif resolves the tenant and answers
// identically to the tenant's own handler.
func TestWhatIfFleet(t *testing.T) {
	st, ts := newTestFleet(t, StoreConfig{}, testExpansion("alpha", 1))
	doc := `{"schema":"routelab-whatif/v1","delta":{"kind":"withdraw"}}`
	status, body, hdr := postWhatIf(t, ts.URL+"/v1/scenarios/alpha/whatif", doc)
	if status != http.StatusOK {
		t.Fatalf("status %d\n%s", status, body)
	}
	if hdr != "miss" {
		t.Errorf("cache %q, want miss", hdr)
	}
	data := decodeWhatIf(t, body)
	if data.Deltas != 1 || len(data.Results) != 1 || data.Results[0].Kind != "withdraw" {
		t.Fatalf("fleet whatif payload: %+v", data)
	}
	if _, _, hdr := postWhatIf(t, ts.URL+"/v1/scenarios/alpha/whatif", doc); hdr != "hit" {
		t.Errorf("repeat: cache %q, want hit", hdr)
	}
	if status, _, _ := postWhatIf(t, ts.URL+"/v1/scenarios/nope/whatif", doc); status != http.StatusNotFound {
		t.Errorf("unknown scenario: status %d, want 404", status)
	}
	// The fleet answer equals the tenant's own handler answer: same
	// world, same canonical key, byte-identical body.
	srv, err := st.Get(context.Background(), "alpha")
	if err != nil {
		t.Fatal(err)
	}
	direct := httptest.NewServer(srv.Handler())
	defer direct.Close()
	if _, dbody, _ := postWhatIf(t, direct.URL+"/v1/whatif", doc); dbody != body {
		t.Error("fleet whatif body differs from the tenant's direct answer")
	}
}

// TestCacheHeaderOnCacheableEndpoints sweeps every cacheable endpoint
// in both modes: the first request must answer "miss", the repeat
// "hit", and non-cacheable endpoints must not emit the header at all.
func TestCacheHeaderOnCacheableEndpoints(t *testing.T) {
	s := testScenario(t)
	_, ts := newTestServer(t, Config{})
	cacheable := []string{
		ts.URL + fmt.Sprintf("/v1/classify?trace=%d", s.Measurements[0].TraceID),
		ts.URL + fmt.Sprintf("/v1/alternates?target=%s", s.Measurements[0].DstAS),
		ts.URL + "/v1/experiments/table1",
		ts.URL + fmt.Sprintf("/v1/as/%s", s.Topo.ASNs()[0]),
	}
	for _, u := range cacheable {
		if status, body, hdr := getHeader(t, u); status != http.StatusOK || hdr != "miss" {
			t.Errorf("%s: status %d, cache %q, want 200/miss\n%s", u, status, hdr, body)
		}
		if _, _, hdr := getHeader(t, u); hdr != "hit" {
			t.Errorf("%s repeat: cache %q, want hit", u, hdr)
		}
	}
	doc := `{"schema":"routelab-whatif/v1","delta":{"kind":"prepend","prepend":1}}`
	if status, _, hdr := postWhatIf(t, ts.URL+"/v1/whatif", doc); status != http.StatusOK || hdr != "miss" {
		t.Errorf("whatif: status %d, cache %q, want 200/miss", status, hdr)
	}
	if _, _, hdr := postWhatIf(t, ts.URL+"/v1/whatif", doc); hdr != "hit" {
		t.Errorf("whatif repeat: cache %q, want hit", hdr)
	}
	// Non-cacheable endpoints carry no cache header.
	for _, u := range []string{ts.URL + "/v1/healthz", ts.URL + "/v1/metrics"} {
		if _, _, hdr := getHeader(t, u); hdr != "" {
			t.Errorf("%s: unexpected cache header %q", u, hdr)
		}
	}

	// Fleet mode: the same families behind the tenant resolver.
	st, fts := newTestFleet(t, StoreConfig{}, testExpansion("gamma", 3))
	urls, err := tenantURLs(st, fts.URL, "gamma")
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range urls[1:] { // skip healthz (not cacheable)
		if status, body, hdr := getHeader(t, u); status != http.StatusOK || hdr != "miss" {
			t.Errorf("%s: status %d, cache %q, want 200/miss\n%s", u, status, hdr, body)
		}
		if _, _, hdr := getHeader(t, u); hdr != "hit" {
			t.Errorf("%s repeat: cache %q, want hit", u, hdr)
		}
	}
}

// TestWhatIfKindsListed pins the wire contract: the whatif kind is part
// of the envelope vocabulary and every delta kind the engine supports
// is reachable over the API.
func TestWhatIfKindsListed(t *testing.T) {
	if !slices.Contains(Kinds, "whatif") {
		t.Error(`Kinds must include "whatif"`)
	}
	s := testScenario(t)
	_, ts := newTestServer(t, Config{})
	origin, mux := s.Testbed.Origin, s.Testbed.Muxes[0]
	docs := map[whatif.Kind]string{
		whatif.LinkFailure: fmt.Sprintf(`{"kind":"link_failure","a":%q,"b":%q}`, origin, mux),
		whatif.Poison:      fmt.Sprintf(`{"kind":"poison","poisoned":[%q]}`, mux),
		whatif.Prepend:     `{"kind":"prepend","prepend":3}`,
		whatif.LocalPref:   fmt.Sprintf(`{"kind":"local_pref","at":%q,"from":%q,"pref":40}`, mux, origin),
		whatif.Withdraw:    `{"kind":"withdraw"}`,
	}
	for kind, delta := range docs {
		doc := fmt.Sprintf(`{"schema":"routelab-whatif/v1","delta":%s}`, delta)
		status, body, _ := postWhatIf(t, ts.URL+"/v1/whatif", doc)
		if status != http.StatusOK {
			t.Errorf("%s: status %d\n%s", kind, status, body)
			continue
		}
		if data := decodeWhatIf(t, body); data.Results[0].Kind != string(kind) {
			t.Errorf("%s: result kind %q", kind, data.Results[0].Kind)
		}
	}
}
