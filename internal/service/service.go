package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"slices"
	"sort"
	"strconv"
	"strings"
	"time"

	"routelab/internal/asn"
	"routelab/internal/classify"
	"routelab/internal/experiments"
	"routelab/internal/obs"
	"routelab/internal/parallel"
	"routelab/internal/scenario"
	"routelab/internal/whatif"
)

// Config sizes the service layer.
type Config struct {
	// MaxConcurrent bounds how many requests compute at once (the
	// admission gate); <= 0 selects GOMAXPROCS, mirroring
	// scenario.Config.RoutingWorkers.
	MaxConcurrent int
	// RequestTimeout caps each request's computation; expiry returns
	// 504. 0 disables the server-side deadline.
	RequestTimeout time.Duration
	// CacheSize bounds the LRU response cache (entries); <= 0 selects
	// the default (256).
	CacheSize int
	// ForkPool sizes the warm fork pool kept per testbed prefix for the
	// alternates/what-if-shaped endpoints: pre-taken Computation.Fork
	// copies a request consumes instead of forking on the hot path.
	// <= 0 selects the default (2).
	ForkPool int
	// MaxQueuedRequests bounds the admission gate's queue: a request
	// arriving while MaxQueuedRequests callers are already waiting for a
	// compute slot is shed with 429/Retry-After instead of joining the
	// line. 0 disables shedding (requests queue until their deadline).
	MaxQueuedRequests int
}

// Server answers queries over one sealed Scenario. Create with New;
// serve via Handler. The zero value is not usable.
//
// A Server is also one tenant of the multi-scenario Fleet: the store
// builds one per sealed scenario, hands every tenant a partition of
// the shared response cache (keys carry the scenario id, so two
// scenarios can never cross-serve cached bodies), and routes
// /v1/scenarios/{id}/... requests to the tenant's handlers.
type Server struct {
	id       string // scenario id; prefixes every cache key
	s        *scenario.Scenario
	cfg      Config
	gate     *parallel.Gate
	cache    *cache
	mux      *http.ServeMux
	pools    map[asn.Prefix]*forkPool
	traceIdx map[int]int // Measurement.TraceID -> index into s.Measurements
	health   []byte      // static healthz body
	size     int64       // resident-byte estimate from the build-time accounting walk

	// computeHook, when set (tests only), runs inside compute after the
	// admission gate is entered and before the body function — a seam
	// the saturation suite uses to hold compute slots deterministically.
	computeHook func()
}

// New assembles a single-scenario Server (the legacy routelabd mode and
// the shape every test drives): its own cache, scenario id "default".
func New(s *scenario.Scenario, cfg Config) *Server {
	return newTenant("default", s, cfg, nil)
}

// newTenant assembles one scenario tenant. shared, when non-nil, is the
// fleet-wide response cache this tenant partitions by key prefix; nil
// gives the tenant a private cache (single-scenario mode).
func newTenant(id string, s *scenario.Scenario, cfg Config, shared *cache) *Server {
	c := shared
	if c == nil {
		c = newCache(cfg.CacheSize)
	}
	srv := &Server{
		id:       id,
		s:        s,
		cfg:      cfg,
		gate:     parallel.NewGate(cfg.MaxConcurrent),
		cache:    c,
		mux:      http.NewServeMux(),
		pools:    make(map[asn.Prefix]*forkPool, len(s.Testbed.Prefixes)),
		traceIdx: make(map[int]int, len(s.Measurements)),
	}
	// Warm the per-prefix anycast bases now (one convergence each, the
	// cost the first alternates request would otherwise pay) and stock a
	// pool of pre-taken forks over each.
	for _, p := range s.Testbed.Prefixes {
		srv.pools[p] = newForkPool(s.Testbed.AnycastBase(p), cfg.ForkPool)
	}
	for i := range s.Measurements {
		srv.traceIdx[s.Measurements[i].TraceID] = i
	}
	health, err := marshalEnvelope("health", HealthData{
		Status:      "ok",
		Seed:        s.Cfg.Seed,
		Scale:       s.Cfg.Topology.Scale,
		ASes:        s.Topo.NumASes(),
		Links:       s.Topo.NumLinks(),
		Probes:      len(s.Probes),
		Traces:      len(s.Measurements),
		Experiments: experiments.Names(),
	})
	if err != nil {
		// The health payload is static and every field is a plain
		// marshalable type; a failure here is a programming error, and a
		// server that cannot produce its own health body must not start.
		panic("service: marshal health envelope: " + err.Error())
	}
	srv.health = health
	// The accounting walk runs last: pools are stocked and the health
	// body exists, so the estimate covers the tenant's full footprint.
	srv.size = srv.accountSize()

	for _, rt := range scenarioRoutes {
		srv.handle(rt.method+" /v1"+rt.path, rt.name, srv.bind(rt.h))
	}
	srv.handle("GET /v1/metrics", "metrics", serveMetrics)
	// Deliberately not in scenarioRoutes: in fleet mode the build route
	// must bypass the tenant resolver (see Fleet.serveBuildProgress);
	// here the scenario is pre-built, so the snapshot is static.
	srv.handle("GET /v1/build", "build", srv.serveBuildStatic)
	srv.mux.HandleFunc("/", serveNotFound)
	return srv
}

// scenarioRoute is one per-scenario endpoint of the shared route table.
type scenarioRoute struct {
	method string
	path   string // under the scenario root
	name   string // obs instrumentation name (service.requests.<name>)
	h      func(*Server, http.ResponseWriter, *http.Request)
}

// scenarioRoutes is the single route table for every per-scenario
// endpoint: the single-scenario Server mounts it at /v1{path}, the
// Fleet at /v1/scenarios/{id}{path} behind its tenant resolver. Adding
// a row here is the whole registration — the two modes cannot drift.
// (/v1/metrics is deliberately absent: the obs registry is
// process-global, so the fleet serves it once, not per scenario.)
var scenarioRoutes = []scenarioRoute{
	{http.MethodGet, "/healthz", "healthz", (*Server).serveHealthz},
	{http.MethodGet, "/classify", "classify", (*Server).serveClassify},
	{http.MethodGet, "/alternates", "alternates", (*Server).serveAlternates},
	{http.MethodGet, "/experiments/{name}", "experiments", (*Server).serveExperiment},
	{http.MethodGet, "/as/{asn}", "as", (*Server).serveAS},
	{http.MethodPost, "/whatif", "whatif", (*Server).serveWhatIf},
}

// bind closes a route-table handler over this tenant.
func (srv *Server) bind(h func(*Server, http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) { h(srv, w, r) }
}

// Handler returns the service's http.Handler (the /v1 API).
func (srv *Server) Handler() http.Handler { return srv.mux }

// Close releases the server's background machinery: every per-prefix
// fork pool is drained and its refill goroutines joined, so nothing
// outlives the tenant. In-flight requests keep working — a drained
// pool forks inline — which makes Close safe both after an HTTP drain
// (cmd/routelabd shutdown) and on store eviction while the fleet keeps
// serving.
func (srv *Server) Close() {
	for _, p := range srv.pools {
		p.drain()
	}
}

// instrument registers an endpoint on mux under its obs
// instrumentation: service.requests.<name> / service.errors.<name>
// counters and a service/<name> latency timer. Shared by the
// single-scenario Server and the Fleet (endpoint families keep the
// same counter names in both modes).
func instrument(mux *http.ServeMux, pattern, name string, h http.HandlerFunc) {
	mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		defer obs.StartStage("service/" + name)()
		obs.Inc("service.requests." + name)
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		if sw.status >= 400 {
			obs.Inc("service.errors." + name)
		}
	})
}

func (srv *Server) handle(pattern, name string, h http.HandlerFunc) {
	instrument(srv.mux, pattern, name, h)
}

func serveNotFound(w http.ResponseWriter, r *http.Request) {
	fail(w, http.StatusNotFound, apiErr(CodeNotFound, fmt.Sprintf("no such route: %s %s", r.Method, r.URL.Path)))
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// reqCtx applies the server-side deadline to a request context.
func (srv *Server) reqCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if srv.cfg.RequestTimeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), srv.cfg.RequestTimeout)
}

// CacheHeader is the response header reporting whether a computed body
// came from the response cache ("hit") or was computed for this
// request ("miss"). cmd/routeload reads it to measure fleet cache-hit
// rates; bodies are byte-identical either way.
const CacheHeader = "X-Routelab-Cache"

// compute produces (and caches) a response body: admission through the
// gate, duplicate suppression and LRU through the cache. The cache key
// is namespaced by the scenario id — the fleet shares one cache across
// tenants, and an id-free key would let two scenarios cross-serve each
// other's bodies for the same endpoint+params (the PR 3 single-tenant
// key shape; see TestNoCrossScenarioCacheServe).
func (srv *Server) compute(ctx context.Context, key string, fn func(ctx context.Context) ([]byte, error)) ([]byte, bool, error) {
	body, hit, err := srv.cache.do(ctx, srv.id+"|"+key, func() ([]byte, error) {
		// Shed before queueing: a gate line already at budget means this
		// computation would sit behind work it may not outlive. Coalesced
		// waiters on this key inherit the OverloadError and 429 too (each
		// counted at its own write site).
		if max := srv.cfg.MaxQueuedRequests; max > 0 {
			if q := srv.gate.Waiting(); q >= max {
				return nil, &OverloadError{What: "request", Queue: q, Limit: max, RetryAfter: requestRetryAfter}
			}
		}
		if err := srv.gate.Enter(ctx); err != nil {
			return nil, err
		}
		defer srv.gate.Leave()
		if srv.computeHook != nil {
			srv.computeHook()
		}
		return fn(ctx)
	})
	obs.SetGauge("service.cache.entries", float64(srv.cache.len()))
	if hit {
		obs.Inc("service.cache.hits")
	}
	return body, hit, err
}

// cacheStatus renders the compute hit flag for CacheHeader.
func cacheStatus(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

func marshalEnvelope(kind string, data any) ([]byte, error) {
	raw, err := json.Marshal(data)
	if err != nil {
		return nil, err
	}
	body, err := json.Marshal(Envelope{Schema: Schema, Kind: kind, Data: raw})
	if err != nil {
		return nil, err
	}
	return append(body, '\n'), nil
}

// write sends a fully-assembled body. A failed or short write means the
// client disconnected mid-response; the server cannot repair that, so
// the error is counted rather than propagated.
func write(w http.ResponseWriter, body []byte) {
	if _, err := w.Write(body); err != nil {
		obs.Inc("service.write_errors")
	}
}

func writeBody(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	write(w, body)
}

// APIError is a typed handler error: a stable machine-readable code
// (one of the Code* constants, carried in the envelope so clients can
// branch without parsing messages) plus the human-readable detail.
type APIError struct {
	Code    string
	Message string
}

// Error codes every handler reports through fail. The vocabulary is
// deliberately small — a code names a client-actionable class, not an
// individual failure site.
const (
	// CodeBadParam: a malformed or missing query/path parameter.
	CodeBadParam = "bad_param"
	// CodeBadBody: an unreadable or invalid request document.
	CodeBadBody = "bad_body"
	// CodeNotFound: the named resource does not exist.
	CodeNotFound = "not_found"
	// CodeConflict: the request collides with existing state.
	CodeConflict = "conflict"
	// CodeTooLarge: the request document exceeds its size cap.
	CodeTooLarge = "too_large"
	// CodeTimeout: the request ran out of time (gate queue or compute).
	CodeTimeout = "timeout"
	// CodeOverloaded: the server shed the request because a gate queue
	// was at budget; retry after the Retry-After header's delay.
	CodeOverloaded = "overloaded"
	// CodeInternal: a server-side failure the client cannot repair.
	CodeInternal = "internal"
)

func apiErr(code, msg string) APIError { return APIError{Code: code, Message: msg} }

// fail sends one typed error envelope — the single exit for every
// non-2xx response in both service modes.
func fail(w http.ResponseWriter, status int, e APIError) {
	body, err := marshalEnvelope("error", ErrorData{Error: e.Message, Code: e.Code})
	if err != nil {
		http.Error(w, e.Message, status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	write(w, body)
}

// failCompute maps a computation failure to a status: a shed is 429
// with Retry-After, deadline or cancellation (the request ran out of
// time in the gate queue or mid-computation) is 504, anything else 500.
func failCompute(w http.ResponseWriter, err error) {
	var oe *OverloadError
	if errors.As(err, &oe) {
		failOverload(w, oe)
		return
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		fail(w, http.StatusGatewayTimeout, apiErr(CodeTimeout, "request deadline exceeded: "+err.Error()))
		return
	}
	fail(w, http.StatusInternalServerError, apiErr(CodeInternal, err.Error()))
}

// --- endpoints --------------------------------------------------------

func (srv *Server) serveHealthz(w http.ResponseWriter, _ *http.Request) {
	writeBody(w, srv.health)
}

// serveMetrics reports the obs snapshot. It is the one endpoint that
// is NOT deterministic (metrics are history) and is never cached. The
// registry is process-global, so the Fleet serves the same handler.
func serveMetrics(w http.ResponseWriter, _ *http.Request) {
	body, err := marshalEnvelope("metrics", MetricsData{Metrics: obs.Snap()})
	if err != nil {
		fail(w, http.StatusInternalServerError, apiErr(CodeInternal, err.Error()))
		return
	}
	writeBody(w, body)
}

func (srv *Server) serveClassify(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := srv.reqCtx(r)
	defer cancel()
	traceStr := r.URL.Query().Get("trace")
	if traceStr == "" {
		fail(w, http.StatusBadRequest, apiErr(CodeBadParam, "missing required parameter: trace"))
		return
	}
	trace, err := strconv.Atoi(traceStr)
	if err != nil {
		fail(w, http.StatusBadRequest, apiErr(CodeBadParam, "bad trace id: "+err.Error()))
		return
	}
	refs := classify.Refinements
	if rq := r.URL.Query().Get("refinement"); rq != "" {
		ref, ok := refinementByName(rq)
		if !ok {
			fail(w, http.StatusBadRequest, apiErr(CodeBadParam, fmt.Sprintf("unknown refinement %q (have %v)", rq, refinementNames())))
			return
		}
		refs = []classify.Refinement{ref}
	}
	idx, ok := srv.traceIdx[trace]
	if !ok {
		fail(w, http.StatusNotFound, apiErr(CodeNotFound, fmt.Sprintf("no measurement with trace id %d", trace)))
		return
	}
	refKey := "all"
	if len(refs) == 1 {
		refKey = refs[0].String()
	}
	key := fmt.Sprintf("classify|%d|%s", trace, refKey)
	body, hit, err := srv.compute(ctx, key, func(ctx context.Context) ([]byte, error) {
		return srv.classifyBody(ctx, idx, refs)
	})
	if err != nil {
		failCompute(w, err)
		return
	}
	w.Header().Set(CacheHeader, cacheStatus(hit))
	writeBody(w, body)
}

func (srv *Server) classifyBody(ctx context.Context, idx int, refs []classify.Refinement) ([]byte, error) {
	m := &srv.s.Measurements[idx]
	data := ClassifyData{
		Trace:  m.TraceID,
		SrcAS:  m.SrcAS.String(),
		DstAS:  m.DstAS.String(),
		Prefix: m.Prefix.String(),
	}
	for _, a := range m.ASPath {
		data.ASPath = append(data.ASPath, a.String())
	}
	for _, d := range m.Decisions {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cd := ClassifyDecision{
			At:         d.At.String(),
			Via:        d.Via.String(),
			Prefix:     d.Prefix.String(),
			DstAS:      d.DstAS.String(),
			RestLen:    d.RestLen,
			Categories: make(map[string]string, len(refs)),
		}
		for _, ref := range refs {
			cd.Categories[ref.String()] = srv.s.Context.Classify(d, ref).String()
		}
		data.Decisions = append(data.Decisions, cd)
	}
	return marshalEnvelope("classify", data)
}

func (srv *Server) serveAlternates(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := srv.reqCtx(r)
	defer cancel()
	targetStr := r.URL.Query().Get("target")
	if targetStr == "" {
		fail(w, http.StatusBadRequest, apiErr(CodeBadParam, "missing required parameter: target"))
		return
	}
	target, err := asn.ParseASN(targetStr)
	if err != nil {
		fail(w, http.StatusBadRequest, apiErr(CodeBadParam, "bad target: "+err.Error()))
		return
	}
	if srv.s.Topo.AS(target) == nil {
		fail(w, http.StatusNotFound, apiErr(CodeNotFound, fmt.Sprintf("no such AS: %s", target)))
		return
	}
	key := "alternates|" + target.String()
	body, hit, err := srv.compute(ctx, key, func(ctx context.Context) ([]byte, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return srv.alternatesBody(target)
	})
	if err != nil {
		failCompute(w, err)
		return
	}
	w.Header().Set(CacheHeader, cacheStatus(hit))
	writeBody(w, body)
}

func (srv *Server) alternatesBody(target asn.ASN) ([]byte, error) {
	prefix := srv.s.Testbed.Prefixes[0]
	// Discovery consumes no randomness; the run is a pure function of
	// (engine, prefix, target). The poisoning rounds mutate a fork of
	// the frozen anycast base, taken from the warm pool so the Fork cost
	// stays off the request path.
	res := srv.s.Testbed.DiscoverAlternatesOn(srv.pools[prefix].get(), target)
	data := AlternatesData{
		Target:        res.Target.String(),
		Prefix:        res.Prefix.String(),
		Announcements: res.Announcements,
		Exhausted:     res.Exhausted,
		Verdict:       srv.s.Context.ClassifyAlternates(res).String(),
	}
	for _, st := range res.Steps {
		sd := AlternateStepData{
			NextHop:  st.Route.NextHop.String(),
			Path:     st.Route.Path.String(),
			Inferred: srv.s.Context.Graph.Rel(res.Target, st.Route.NextHop).String(),
		}
		for _, p := range st.PoisonedSoFar {
			sd.Poisoned = append(sd.Poisoned, p.String())
		}
		data.Steps = append(data.Steps, sd)
	}
	return marshalEnvelope("alternates", data)
}

func (srv *Server) serveExperiment(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := srv.reqCtx(r)
	defer cancel()
	name := r.PathValue("name")
	exp, ok := experiments.Get(name)
	if !ok {
		fail(w, http.StatusNotFound, apiErr(CodeNotFound, fmt.Sprintf("unknown experiment %q (have %v)", name, experiments.Names())))
		return
	}
	seed := srv.s.Cfg.Seed
	if sq := r.URL.Query().Get("seed"); sq != "" {
		v, err := strconv.ParseInt(sq, 10, 64)
		if err != nil {
			fail(w, http.StatusBadRequest, apiErr(CodeBadParam, "bad seed: "+err.Error()))
			return
		}
		seed = v
	}
	format := r.URL.Query().Get("format")
	if format != "" && format != "json" && format != "text" {
		fail(w, http.StatusBadRequest, apiErr(CodeBadParam, fmt.Sprintf("unknown format %q (have json, text)", format)))
		return
	}
	key := fmt.Sprintf("experiment|%s|%d|%s", name, seed, format)
	body, hit, err := srv.compute(ctx, key, func(ctx context.Context) ([]byte, error) {
		res, err := exp.Run(ctx, &experiments.Env{S: srv.s, Seed: seed})
		if err != nil {
			return nil, err
		}
		if format == "text" {
			return []byte(experiments.Render(res)), nil
		}
		return marshalEnvelope("experiment", ExperimentData{Name: name, Seed: seed, Result: res})
	})
	if err != nil {
		failCompute(w, err)
		return
	}
	w.Header().Set(CacheHeader, cacheStatus(hit))
	if format == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		write(w, body)
		return
	}
	writeBody(w, body)
}

func (srv *Server) serveAS(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := srv.reqCtx(r)
	defer cancel()
	a, err := asn.ParseASN(r.PathValue("asn"))
	if err != nil {
		fail(w, http.StatusBadRequest, apiErr(CodeBadParam, "bad asn: "+err.Error()))
		return
	}
	x := srv.s.Topo.AS(a)
	if x == nil {
		fail(w, http.StatusNotFound, apiErr(CodeNotFound, fmt.Sprintf("no such AS: %s", a)))
		return
	}
	key := "as|" + a.String()
	body, hit, err := srv.compute(ctx, key, func(ctx context.Context) ([]byte, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return srv.asBody(x.ASN)
	})
	if err != nil {
		failCompute(w, err)
		return
	}
	w.Header().Set(CacheHeader, cacheStatus(hit))
	writeBody(w, body)
}

func (srv *Server) asBody(a asn.ASN) ([]byte, error) {
	x := srv.s.Topo.AS(a)
	data := ASData{
		ASN:               a.String(),
		Class:             x.Class.String(),
		Country:           string(x.HomeCountry),
		InferredNeighbors: map[string]int{},
	}
	// Collect into a local and sort before publishing into the Result
	// (maporder: Names is a map, iteration order is randomized).
	var names []string
	for name, n := range srv.s.Topo.Names {
		if n == a {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	data.Names = names
	for _, p := range x.Prefixes {
		data.Prefixes = append(data.Prefixes, p.String())
	}
	neigh := srv.s.Context.Graph.Neighbors(a)
	data.InferredDegree = len(neigh)
	for _, n := range neigh {
		data.InferredNeighbors[srv.s.Context.Graph.Rel(a, n).String()]++
	}
	return marshalEnvelope("as", data)
}

// maxWhatIfBytes bounds a what-if request document; even a full batch
// of deltas is a few KiB.
const maxWhatIfBytes = 1 << 20

// serveWhatIf is the POST /v1/whatif endpoint: a routelab-whatif/v1
// document carrying one delta (or a batch) to evaluate against the
// frozen converged anycast base. Each batch entry forks that same base
// — the entries are independent counterfactuals — and the response is
// one structured diff per entry. Bodies are cached under the batch's
// canonical delta key, so semantically equal requests (reordered link
// endpoints, shuffled poison sets) share one computation.
func (srv *Server) serveWhatIf(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := srv.reqCtx(r)
	defer cancel()
	raw, err := io.ReadAll(io.LimitReader(r.Body, maxWhatIfBytes+1))
	if err != nil {
		fail(w, http.StatusBadRequest, apiErr(CodeBadBody, "read request body: "+err.Error()))
		return
	}
	if len(raw) > maxWhatIfBytes {
		fail(w, http.StatusRequestEntityTooLarge, apiErr(CodeTooLarge, "what-if document exceeds 1 MiB"))
		return
	}
	var req WhatIfRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		fail(w, http.StatusBadRequest, apiErr(CodeBadBody, "invalid what-if document: "+err.Error()))
		return
	}
	if err := req.Validate(); err != nil {
		fail(w, http.StatusBadRequest, apiErr(CodeBadBody, err.Error()))
		return
	}
	ds := req.All()
	prefix := srv.s.Testbed.Prefixes[0]
	if req.Prefix != "" {
		p, err := asn.ParsePrefix(req.Prefix)
		if err != nil {
			fail(w, http.StatusBadRequest, apiErr(CodeBadParam, "bad prefix: "+err.Error()))
			return
		}
		if !slices.Contains(srv.s.Testbed.Prefixes, p) {
			fail(w, http.StatusNotFound, apiErr(CodeNotFound, fmt.Sprintf("prefix %s is not a testbed prefix (have %v)", p, srv.s.Testbed.Prefixes)))
			return
		}
		prefix = p
	}
	cds, err := whatif.CompileAll(ds, srv.s.Topo, srv.s.Testbed.Origin)
	if err != nil {
		fail(w, http.StatusBadRequest, apiErr(CodeBadParam, err.Error()))
		return
	}
	key := "whatif|" + prefix.String() + "|" + whatif.CanonicalKey(cds)
	body, hit, err := srv.compute(ctx, key, func(ctx context.Context) ([]byte, error) {
		return srv.whatifBody(ctx, prefix, cds)
	})
	if err != nil {
		failCompute(w, err)
		return
	}
	w.Header().Set(CacheHeader, cacheStatus(hit))
	writeBody(w, body)
}

func (srv *Server) whatifBody(ctx context.Context, prefix asn.Prefix, cds []*whatif.Compiled) ([]byte, error) {
	// Every entry forks the frozen base directly rather than draining the
	// warm pool: the pool amortizes single-fork endpoints, while a batch
	// would empty it and fall back to forking anyway. Direct forks keep
	// the cost exactly one bgp.fork.calls per entry (tests assert this).
	base := srv.s.Testbed.AnycastBase(prefix)
	data := WhatIfData{
		Prefix: prefix.String(),
		Origin: srv.s.Testbed.Origin.String(),
		Deltas: len(cds),
	}
	for _, cd := range cds {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		d, err := whatif.Eval(base, cd)
		if err != nil {
			return nil, err
		}
		data.Results = append(data.Results, d)
	}
	return marshalEnvelope("whatif", data)
}

// --- refinement names -------------------------------------------------

func refinementByName(name string) (classify.Refinement, bool) {
	for _, r := range classify.Refinements {
		if strings.EqualFold(r.String(), name) {
			return r, true
		}
	}
	return 0, false
}

func refinementNames() []string {
	out := make([]string, 0, len(classify.Refinements))
	for _, r := range classify.Refinements {
		out = append(out, r.String())
	}
	return out
}
