package service

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"routelab/internal/obs"
	"routelab/internal/scenario"
	"routelab/internal/spec"
)

// testExpansion fabricates a registered-spec expansion around the fast
// test config, varying only the seed so distinct ids are distinct
// worlds (their response bodies differ).
func testExpansion(name string, seed int64) *spec.Expansion {
	cfg := scenario.TestConfig()
	cfg.Seed = seed
	return &spec.Expansion{
		SpecVersion: spec.Version,
		Name:        name,
		Description: "fleet test world",
		Profile:     "test",
		Config:      cfg,
	}
}

// newTestFleet registers the given expansions in a fresh store and
// serves the fleet handler.
func newTestFleet(t *testing.T, cfg StoreConfig, exps ...*spec.Expansion) (*Store, *httptest.Server) {
	t.Helper()
	st := NewStore(cfg)
	for _, exp := range exps {
		if err := st.Register(exp, "test"); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(NewFleet(st).Handler())
	t.Cleanup(ts.Close)
	return st, ts
}

// getHeader is get plus the response-cache header.
func getHeader(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header.Get(CacheHeader)
}

// tenantURLs builds one URL per per-scenario endpoint family, using the
// built tenant's scenario for live trace/AS parameters.
func tenantURLs(st *Store, base, id string) ([]string, error) {
	srv, err := st.Get(context.Background(), id)
	if err != nil {
		return nil, err
	}
	s := srv.s
	prefix := base + "/v1/scenarios/" + id
	return []string{
		prefix + "/healthz",
		prefix + fmt.Sprintf("/classify?trace=%d", s.Measurements[0].TraceID),
		prefix + fmt.Sprintf("/alternates?target=%s", s.Measurements[0].DstAS),
		prefix + "/experiments/table1",
		prefix + fmt.Sprintf("/as/%s", s.Topo.ASNs()[0]),
	}, nil
}

func TestFleetEndpoints(t *testing.T) {
	st, ts := newTestFleet(t, StoreConfig{},
		testExpansion("alpha", 1), testExpansion("beta", 2))

	// Before any build: listing shows both scenarios, none built.
	status, body := get(t, ts.URL+"/v1/scenarios")
	if status != http.StatusOK {
		t.Fatalf("scenarios: status %d\n%s", status, body)
	}
	env := checkEnvelope(t, body)
	if env.Kind != "scenarios" {
		t.Fatalf("kind %q, want scenarios", env.Kind)
	}
	if !strings.Contains(body, `"alpha"`) || !strings.Contains(body, `"beta"`) {
		t.Errorf("listing missing ids:\n%s", body)
	}
	if !strings.Contains(body, `"count":2`) || !strings.Contains(body, `"built":0`) {
		t.Errorf("listing counts wrong:\n%s", body)
	}

	status, body = get(t, ts.URL+"/v1/scenarios/alpha")
	if status != http.StatusOK {
		t.Fatalf("scenario info: status %d\n%s", status, body)
	}
	if env := checkEnvelope(t, body); env.Kind != "scenario" {
		t.Errorf("kind %q, want scenario", env.Kind)
	}

	// Drive every endpoint family on both tenants.
	wantKinds := []string{"health", "classify", "alternates", "experiment", "as"}
	for _, id := range []string{"alpha", "beta"} {
		urls, err := tenantURLs(st, ts.URL, id)
		if err != nil {
			t.Fatal(err)
		}
		for i, u := range urls {
			status, body := get(t, u)
			if status != http.StatusOK {
				t.Errorf("%s: status %d\n%s", u, status, body)
				continue
			}
			if env := checkEnvelope(t, body); env.Kind != wantKinds[i] {
				t.Errorf("%s: kind %q, want %q", u, env.Kind, wantKinds[i])
			}
		}
	}

	// After traffic: both built, fleet healthz agrees, metrics exist.
	status, body = get(t, ts.URL+"/v1/healthz")
	if status != http.StatusOK {
		t.Fatalf("healthz: status %d", status)
	}
	if !strings.Contains(body, `"scenarios":2`) || !strings.Contains(body, `"built":2`) {
		t.Errorf("fleet healthz counts wrong:\n%s", body)
	}
	status, body = get(t, ts.URL+"/v1/metrics")
	if status != http.StatusOK || !strings.Contains(body, "service.scenario.builds") {
		t.Errorf("metrics: status %d, missing scenario counters", status)
	}
}

func TestFleetUnknownScenario(t *testing.T) {
	_, ts := newTestFleet(t, StoreConfig{}, testExpansion("alpha", 1))
	for _, path := range []string{
		"/v1/scenarios/nope",
		"/v1/scenarios/nope/healthz",
		"/v1/scenarios/nope/classify?trace=0",
		"/v1/scenarios/nope/experiments/table1",
		"/v1/scenarios/nope/as/1",
	} {
		status, body := get(t, ts.URL+path)
		if status != http.StatusNotFound {
			t.Errorf("%s: status %d, want 404", path, status)
			continue
		}
		if env := checkEnvelope(t, body); env.Kind != "error" {
			t.Errorf("%s: kind %q, want error", path, env.Kind)
		}
	}
}

func TestFleetAdmission(t *testing.T) {
	_, ts := newTestFleet(t, StoreConfig{}, testExpansion("alpha", 1))
	post := func(body, contentType, query string) (int, string) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/scenarios"+query, contentType, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(b)
	}

	yamlSpec := "spec: routelab-spec/v1\nname: admitted\nprofile: tiny\n"
	status, body := post(yamlSpec, "application/yaml", "")
	if status != http.StatusCreated {
		t.Fatalf("admission: status %d\n%s", status, body)
	}
	if env := checkEnvelope(t, body); env.Kind != "scenario" {
		t.Errorf("admission kind %q, want scenario", env.Kind)
	}
	if status, body = get(t, ts.URL+"/v1/scenarios/admitted/healthz"); status != http.StatusOK {
		t.Fatalf("admitted scenario healthz: status %d\n%s", status, body)
	}

	// Duplicate id conflicts; different worlds under one id would make
	// responses depend on admission order.
	if status, _ = post(yamlSpec, "application/yaml", ""); status != http.StatusConflict {
		t.Errorf("duplicate admission: status %d, want 409", status)
	}
	// JSON document via Content-Type and via sniffing.
	jsonSpec := `{"spec": "routelab-spec/v1", "name": "admitted-json", "profile": "tiny"}`
	if status, body = post(jsonSpec, "application/json", ""); status != http.StatusCreated {
		t.Errorf("JSON admission: status %d\n%s", status, body)
	}
	jsonSpec2 := `{"spec": "routelab-spec/v1", "name": "admitted-sniffed", "profile": "tiny"}`
	if status, body = post(jsonSpec2, "", ""); status != http.StatusCreated {
		t.Errorf("sniffed JSON admission: status %d\n%s", status, body)
	}
	// Rejections: malformed document, bad profile, explicit bad format,
	// base chains (need file resolution).
	for _, tc := range []struct{ body, ct, query string }{
		{"spec: routelab-spec/v1\nname: [broken\n", "", ""},
		{"spec: routelab-spec/v1\nname: x\nprofile: bogus\n", "", ""},
		{yamlSpec, "", "?format=toml"},
		{"spec: routelab-spec/v1\nname: x\nprofile: tiny\nbase: other.yaml\n", "", ""},
	} {
		status, body := post(tc.body, tc.ct, tc.query)
		if status != http.StatusBadRequest {
			t.Errorf("bad admission %q: status %d, want 400\n%s", tc.body, status, body)
		}
	}
}

// TestStoreSingleflightBuilds proves build coalescing: many concurrent
// requests for the same cold scenario trigger exactly one build.
func TestStoreSingleflightBuilds(t *testing.T) {
	obs.Reset()
	st, ts := newTestFleet(t, StoreConfig{}, testExpansion("alpha", 1))
	const clients = 12
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, _, _ := getHeader(t, ts.URL+"/v1/scenarios/alpha/experiments/table1")
			if status != http.StatusOK {
				t.Errorf("status %d", status)
			}
		}()
	}
	wg.Wait()
	if n := obs.Snap().Counters["service.scenario.builds"]; n != 1 {
		t.Errorf("service.scenario.builds = %d, want 1 (singleflight)", n)
	}
	if st.BuiltLen() != 1 {
		t.Errorf("BuiltLen = %d, want 1", st.BuiltLen())
	}
}

// TestStoreLRUEviction drives a MaxScenarios=1 store across two ids and
// checks evictions, rebuilds, and that a rebuilt scenario's responses
// are byte-identical — including a genuine recompute (cache partition
// purged on eviction, so the rebuilt world's first answer is a miss).
func TestStoreLRUEviction(t *testing.T) {
	obs.Reset()
	st, ts := newTestFleet(t, StoreConfig{MaxScenarios: 1},
		testExpansion("alpha", 1), testExpansion("beta", 2))
	urlA := ts.URL + "/v1/scenarios/alpha/experiments/table1"
	urlB := ts.URL + "/v1/scenarios/beta/experiments/table1"

	status, bodyA, hdr := getHeader(t, urlA)
	if status != http.StatusOK || hdr != "miss" {
		t.Fatalf("first alpha: status %d, cache %q", status, hdr)
	}
	if _, _, hdr = getHeader(t, urlA); hdr != "hit" {
		t.Errorf("second alpha: cache %q, want hit", hdr)
	}

	// Touching beta builds it and evicts alpha (cap 1).
	if status, _, _ = getHeader(t, urlB); status != http.StatusOK {
		t.Fatalf("beta: status %d", status)
	}
	if st.BuiltLen() != 1 {
		t.Errorf("BuiltLen = %d, want 1 after eviction", st.BuiltLen())
	}
	snap := obs.Snap()
	if n := snap.Counters["service.scenario.evictions"]; n != 1 {
		t.Errorf("evictions = %d, want 1", n)
	}

	// Alpha rebuilds on demand; the response must be byte-identical to
	// the pre-eviction one, and "miss" proves it was recomputed from the
	// rebuilt world, not served from a stale cache entry.
	status, rebuilt, hdr := getHeader(t, urlA)
	if status != http.StatusOK {
		t.Fatalf("rebuilt alpha: status %d", status)
	}
	if hdr != "miss" {
		t.Errorf("rebuilt alpha: cache %q, want miss (partition purged on eviction)", hdr)
	}
	if rebuilt != bodyA {
		t.Error("rebuilt alpha response differs from pre-eviction response")
	}
	if n := obs.Snap().Counters["service.scenario.builds"]; n != 3 {
		t.Errorf("builds = %d, want 3 (alpha, beta, alpha again)", n)
	}
}

// TestStoreLRUEvictionConcurrent churns a cap-1 store from many
// goroutines under -race: builds coalesce per id, eviction bookkeeping
// stays consistent, and every response is valid.
func TestStoreLRUEvictionConcurrent(t *testing.T) {
	obs.Reset()
	st, ts := newTestFleet(t, StoreConfig{MaxScenarios: 1},
		testExpansion("alpha", 1), testExpansion("beta", 2))
	const rounds = 6
	var wg sync.WaitGroup
	for i := 0; i < rounds; i++ {
		for _, id := range []string{"alpha", "beta"} {
			wg.Add(1)
			go func(id string) {
				defer wg.Done()
				status, body, _ := getHeader(t, ts.URL+"/v1/scenarios/"+id+"/healthz")
				if status != http.StatusOK {
					t.Errorf("%s: status %d\n%s", id, status, body)
				}
			}(id)
		}
	}
	wg.Wait()
	if n := st.BuiltLen(); n != 1 {
		t.Errorf("BuiltLen = %d, want 1", n)
	}
	snap := obs.Snap()
	builds := snap.Counters["service.scenario.builds"]
	evictions := snap.Counters["service.scenario.evictions"]
	if builds < 2 || builds > 2*rounds {
		t.Errorf("builds = %d, want within [2, %d]", builds, 2*rounds)
	}
	if evictions != builds-1 {
		t.Errorf("evictions = %d, want builds-1 = %d", evictions, builds-1)
	}
}

// TestNoCrossScenarioCacheServe is the regression test for the PR 3
// cache-key shape: keys there were endpoint+params only, which in a
// fleet would let two scenarios serve each other's cached bodies for
// the same URL suffix. With id-namespaced keys, the second scenario's
// identical-params request must be a cache miss with its own body.
func TestNoCrossScenarioCacheServe(t *testing.T) {
	_, ts := newTestFleet(t, StoreConfig{},
		testExpansion("alpha", 1), testExpansion("beta", 2))

	statusA, bodyA, hdrA := getHeader(t, ts.URL+"/v1/scenarios/alpha/experiments/table1")
	if statusA != http.StatusOK || hdrA != "miss" {
		t.Fatalf("alpha: status %d, cache %q", statusA, hdrA)
	}
	if _, _, hdr := getHeader(t, ts.URL+"/v1/scenarios/alpha/experiments/table1"); hdr != "hit" {
		t.Fatalf("alpha repeat: cache %q, want hit", hdr)
	}
	// Same endpoint + params, different scenario: must compute fresh.
	statusB, bodyB, hdrB := getHeader(t, ts.URL+"/v1/scenarios/beta/experiments/table1")
	if statusB != http.StatusOK {
		t.Fatalf("beta: status %d", statusB)
	}
	if hdrB != "miss" {
		t.Errorf("beta after alpha hit: cache %q, want miss (cross-scenario serve)", hdrB)
	}
	if bodyA == bodyB {
		t.Error("alpha and beta (different seeds) returned identical bodies")
	}
}

// TestFleetConcurrentScenariosMatchSerial is the fleet determinism
// contract from the issue: >= 2 scenarios served side by side, with a
// mixed concurrent client load, must answer byte-identically to a
// serial baseline per scenario.
func TestFleetConcurrentScenariosMatchSerial(t *testing.T) {
	st, ts := newTestFleet(t, StoreConfig{Tenant: Config{MaxConcurrent: 2}},
		testExpansion("alpha", 1), testExpansion("beta", 2))
	var urls []string
	for _, id := range []string{"alpha", "beta"} {
		us, err := tenantURLs(st, ts.URL, id)
		if err != nil {
			t.Fatal(err)
		}
		urls = append(urls, us...)
	}
	baseline := make(map[string]string, len(urls))
	for _, u := range urls {
		status, body := get(t, u)
		if status != http.StatusOK {
			t.Fatalf("baseline %s: status %d", u, status)
		}
		baseline[u] = body
	}

	const clients = 64
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		u := urls[i%len(urls)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(u)
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("%s: status %d", u, resp.StatusCode)
				return
			}
			if !bytes.Equal(body, []byte(baseline[u])) {
				errs <- fmt.Errorf("%s: concurrent response differs from serial baseline", u)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestStoreRegisterValidation(t *testing.T) {
	st := NewStore(StoreConfig{})
	if err := st.Register(&spec.Expansion{Name: ""}, "test"); err == nil {
		t.Error("nameless expansion registered")
	}
	if err := st.Register(testExpansion("dup", 1), "test"); err != nil {
		t.Fatal(err)
	}
	if err := st.Register(testExpansion("dup", 2), "test"); err == nil {
		t.Error("duplicate id registered")
	}
	if _, err := st.Get(context.Background(), "missing"); err == nil {
		t.Error("Get of unregistered id succeeded")
	}
	if _, err := st.RegisterDir(t.TempDir()); err == nil {
		t.Error("RegisterDir of empty dir succeeded")
	}
}
