package service

import (
	"sync"
	"testing"
)

// TestForkPoolDrainJoinsRefills hammers every pool's get() from many
// goroutines while drain runs concurrently, then again after: under
// -race this exercises the spawn/drain interplay (wg.Add under the pool
// mutex vs drain's Wait), and it checks the post-drain contract — get()
// keeps working by forking inline, drain is idempotent, and no refill
// goroutine outlives the join.
func TestForkPoolDrainJoinsRefills(t *testing.T) {
	srv := New(testScenario(t), Config{ForkPool: 2})
	if len(srv.pools) == 0 {
		t.Fatal("test scenario has no testbed prefixes / fork pools")
	}

	var wg sync.WaitGroup
	for _, p := range srv.pools {
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(p *forkPool) {
				defer wg.Done()
				for j := 0; j < 4; j++ {
					if c := p.get(); c == nil {
						t.Error("get returned nil fork")
					}
				}
			}(p)
		}
	}
	srv.Close() // races the getters above by design
	wg.Wait()

	// After the drain every pool must still serve (inline fork path) and
	// must not restock: a second Close has nothing left to join.
	for _, p := range srv.pools {
		if c := p.get(); c == nil {
			t.Error("get returned nil fork after drain")
		}
		p.mu.Lock()
		stopped := p.stopped
		p.mu.Unlock()
		if !stopped {
			t.Error("pool not marked stopped after Close")
		}
	}
	srv.Close()
}
