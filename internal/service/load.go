package service

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
)

// LoadSchema identifies the load-harness emission (cmd/routeload
// writes it, cmd/loadcheck validates and gates on it) the way
// routelab-bench/v1 identifies bench emissions.
const LoadSchema = "routelab-load/v1"

// LoadSample is one request's outcome as the harness observed it.
type LoadSample struct {
	Scenario  string // scenario id ("" for fleet-level endpoints)
	Endpoint  string // endpoint family: healthz, classify, ...
	LatencyNS int64
	Status    int    // HTTP status (0 when the request itself failed)
	Cache     string // CacheHeader value: "hit", "miss", or ""
	Failed    bool   // transport error, bad status, or invalid envelope
}

// LoadLatency is a latency distribution in nanoseconds.
type LoadLatency struct {
	P50NS int64 `json:"p50_ns"`
	P90NS int64 `json:"p90_ns"`
	P99NS int64 `json:"p99_ns"`
	MaxNS int64 `json:"max_ns"`
}

// LoadEndpoint is one endpoint family's slice of the run.
type LoadEndpoint struct {
	Endpoint string      `json:"endpoint"`
	Requests int64       `json:"requests"`
	Errors   int64       `json:"errors"`
	Latency  LoadLatency `json:"latency"`
}

// LoadScenario is one scenario's slice of the run.
type LoadScenario struct {
	Scenario string `json:"scenario"`
	Requests int64  `json:"requests"`
	Errors   int64  `json:"errors"`
}

// LoadReport is the routelab-load/v1 emission: the whole run's
// throughput, latency distribution, error and cache-hit rates, plus
// per-endpoint and per-scenario breakdowns.
type LoadReport struct {
	Schema     string `json:"schema"`
	Command    string `json:"command"`
	Target     string `json:"target"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	Clients      int         `json:"clients"`
	Scenarios    []string    `json:"scenarios"`
	WallNS       int64       `json:"wall_ns"`
	Requests     int64       `json:"requests"`
	Errors       int64       `json:"errors"`
	ErrorRate    float64     `json:"error_rate"`
	Throughput   float64     `json:"throughput_rps"`
	Latency      LoadLatency `json:"latency"`
	CacheHits    int64       `json:"cache_hits"`
	CacheMisses  int64       `json:"cache_misses"`
	CacheHitRate float64     `json:"cache_hit_rate"`

	Endpoints   []LoadEndpoint `json:"endpoints"`
	PerScenario []LoadScenario `json:"per_scenario"`
}

// percentile returns the q-quantile (0 < q <= 1) of sorted latencies
// by the nearest-rank method; 0 for an empty slice.
func percentile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// latencyOf summarizes a latency sample set.
func latencyOf(ns []int64) LoadLatency {
	if len(ns) == 0 {
		return LoadLatency{}
	}
	sorted := append([]int64(nil), ns...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return LoadLatency{
		P50NS: percentile(sorted, 0.50),
		P90NS: percentile(sorted, 0.90),
		P99NS: percentile(sorted, 0.99),
		MaxNS: sorted[len(sorted)-1],
	}
}

// BuildLoadReport aggregates a run's samples into the versioned
// emission. It is a pure function of its inputs (the harness measures
// wall time and passes it in), so the same samples always aggregate to
// the same report.
func BuildLoadReport(command, target string, scenarios []string, clients int, wallNS int64, samples []LoadSample) LoadReport {
	rep := LoadReport{
		Schema:     LoadSchema,
		Command:    command,
		Target:     target,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Clients:    clients,
		Scenarios:  append([]string(nil), scenarios...),
		WallNS:     wallNS,
	}
	sort.Strings(rep.Scenarios)

	all := make([]int64, 0, len(samples))
	byEndpoint := make(map[string][]LoadSample)
	byScenario := make(map[string][]LoadSample)
	for _, s := range samples {
		rep.Requests++
		if s.Failed {
			rep.Errors++
		}
		switch s.Cache {
		case "hit":
			rep.CacheHits++
		case "miss":
			rep.CacheMisses++
		}
		all = append(all, s.LatencyNS)
		byEndpoint[s.Endpoint] = append(byEndpoint[s.Endpoint], s)
		if s.Scenario != "" {
			byScenario[s.Scenario] = append(byScenario[s.Scenario], s)
		}
	}
	rep.Latency = latencyOf(all)
	if rep.Requests > 0 {
		rep.ErrorRate = float64(rep.Errors) / float64(rep.Requests)
	}
	if counted := rep.CacheHits + rep.CacheMisses; counted > 0 {
		rep.CacheHitRate = float64(rep.CacheHits) / float64(counted)
	}
	if wallNS > 0 {
		rep.Throughput = float64(rep.Requests) / (float64(wallNS) / 1e9)
	}

	// Collect map keys into locals and sort before publishing
	// (maporder: iteration order is randomized).
	endpoints := make([]string, 0, len(byEndpoint))
	for name := range byEndpoint {
		endpoints = append(endpoints, name)
	}
	sort.Strings(endpoints)
	for _, name := range endpoints {
		ss := byEndpoint[name]
		ep := LoadEndpoint{Endpoint: name}
		ns := make([]int64, 0, len(ss))
		for _, s := range ss {
			ep.Requests++
			if s.Failed {
				ep.Errors++
			}
			ns = append(ns, s.LatencyNS)
		}
		ep.Latency = latencyOf(ns)
		rep.Endpoints = append(rep.Endpoints, ep)
	}
	scenarioIDs := make([]string, 0, len(byScenario))
	for id := range byScenario {
		scenarioIDs = append(scenarioIDs, id)
	}
	sort.Strings(scenarioIDs)
	for _, id := range scenarioIDs {
		sc := LoadScenario{Scenario: id}
		for _, s := range byScenario[id] {
			sc.Requests++
			if s.Failed {
				sc.Errors++
			}
		}
		rep.PerScenario = append(rep.PerScenario, sc)
	}
	return rep
}

// Validate checks the emission the way obs.BenchReport.Validate checks
// bench reports: schema tag, shape invariants (counts reconcile across
// breakdowns, rates in range, percentiles ordered), so a truncated or
// hand-edited file fails loudly in CI.
func (r LoadReport) Validate() error {
	if r.Schema != LoadSchema {
		return fmt.Errorf("schema %q, want %q", r.Schema, LoadSchema)
	}
	if r.Clients < 1 {
		return fmt.Errorf("clients %d, want >= 1", r.Clients)
	}
	if r.Requests < 1 {
		return fmt.Errorf("requests %d, want >= 1", r.Requests)
	}
	if r.Errors < 0 || r.Errors > r.Requests {
		return fmt.Errorf("errors %d outside [0, %d]", r.Errors, r.Requests)
	}
	if r.ErrorRate < 0 || r.ErrorRate > 1 {
		return fmt.Errorf("error_rate %g outside [0, 1]", r.ErrorRate)
	}
	if r.CacheHitRate < 0 || r.CacheHitRate > 1 {
		return fmt.Errorf("cache_hit_rate %g outside [0, 1]", r.CacheHitRate)
	}
	if r.CacheHits+r.CacheMisses > r.Requests {
		return fmt.Errorf("cache hits+misses %d exceed requests %d", r.CacheHits+r.CacheMisses, r.Requests)
	}
	if r.WallNS <= 0 {
		return fmt.Errorf("wall_ns %d, want > 0", r.WallNS)
	}
	if r.Throughput <= 0 {
		return fmt.Errorf("throughput_rps %g, want > 0", r.Throughput)
	}
	if err := r.Latency.validate("latency"); err != nil {
		return err
	}
	if len(r.Endpoints) == 0 {
		return fmt.Errorf("no endpoint breakdown")
	}
	var reqSum, errSum int64
	for _, ep := range r.Endpoints {
		if ep.Endpoint == "" {
			return fmt.Errorf("endpoint with empty name")
		}
		if err := ep.Latency.validate("endpoint " + ep.Endpoint); err != nil {
			return err
		}
		reqSum += ep.Requests
		errSum += ep.Errors
	}
	if reqSum != r.Requests {
		return fmt.Errorf("endpoint requests sum %d != total %d", reqSum, r.Requests)
	}
	if errSum != r.Errors {
		return fmt.Errorf("endpoint errors sum %d != total %d", errSum, r.Errors)
	}
	return nil
}

func (l LoadLatency) validate(name string) error {
	if l.P50NS < 0 || l.P50NS > l.P90NS || l.P90NS > l.P99NS || l.P99NS > l.MaxNS {
		return fmt.Errorf("%s: percentiles not ordered: p50 %d, p90 %d, p99 %d, max %d",
			name, l.P50NS, l.P90NS, l.P99NS, l.MaxNS)
	}
	return nil
}

// WriteFile validates the report and writes it as indented JSON.
func (r LoadReport) WriteFile(path string) error {
	if err := r.Validate(); err != nil {
		return fmt.Errorf("load report invalid: %w", err)
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadLoadReport reads and validates a routelab-load/v1 emission.
func ReadLoadReport(path string) (LoadReport, error) {
	var r LoadReport
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}
