package service

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
)

// LoadSchema identifies the load-harness emission (cmd/routeload
// writes it, cmd/loadcheck validates and gates on it) the way
// routelab-bench/v1 identifies bench emissions.
const LoadSchema = "routelab-load/v1"

// LoadSample is one request's outcome as the harness observed it.
type LoadSample struct {
	Scenario  string // scenario id ("" for fleet-level endpoints)
	Endpoint  string // endpoint family: healthz, classify, ...
	StartNS   int64  // request start, as an offset from the run's start
	LatencyNS int64
	Status    int    // HTTP status (0 when the request itself failed)
	Cache     string // CacheHeader value: "hit", "miss", or ""
	Failed    bool   // transport error, bad status, or invalid envelope
}

// Shed reports whether the sample is a clean shed: the server refused
// with 429 and the harness verified the refusal's shape (overloaded
// envelope + Retry-After), so Failed stayed false. A malformed 429 is
// an error, not a shed.
func (s LoadSample) Shed() bool { return s.Status == 429 && !s.Failed }

// LoadLatency is a latency distribution in nanoseconds.
type LoadLatency struct {
	P50NS int64 `json:"p50_ns"`
	P90NS int64 `json:"p90_ns"`
	P99NS int64 `json:"p99_ns"`
	MaxNS int64 `json:"max_ns"`
}

// LoadEndpoint is one endpoint family's slice of the run.
type LoadEndpoint struct {
	Endpoint string      `json:"endpoint"`
	Requests int64       `json:"requests"`
	Errors   int64       `json:"errors"`
	Sheds    int64       `json:"sheds,omitempty"`
	Latency  LoadLatency `json:"latency"`
}

// LoadScenario is one scenario's slice of the run.
type LoadScenario struct {
	Scenario string `json:"scenario"`
	Requests int64  `json:"requests"`
	Errors   int64  `json:"errors"`
	Sheds    int64  `json:"sheds,omitempty"`
}

// LoadBucket is one time slice of the run: every sample whose start
// fell in [StartNS, EndNS) relative to the run's start, with its own
// latency distribution. Buckets turn the end-of-run percentiles into a
// histogram over time, which is what exposes warm-up cliffs, build
// stalls, and shed storms that a whole-run p99 averages away.
type LoadBucket struct {
	StartNS  int64       `json:"start_ns"`
	EndNS    int64       `json:"end_ns"`
	Requests int64       `json:"requests"`
	Errors   int64       `json:"errors"`
	Sheds    int64       `json:"sheds"`
	Latency  LoadLatency `json:"latency"`
}

// LoadReport is the routelab-load/v1 emission: the whole run's
// throughput, latency distribution, error and cache-hit rates, plus
// per-endpoint and per-scenario breakdowns.
type LoadReport struct {
	Schema     string `json:"schema"`
	Command    string `json:"command"`
	Target     string `json:"target"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	Clients      int         `json:"clients"`
	Scenarios    []string    `json:"scenarios"`
	WallNS       int64       `json:"wall_ns"`
	Requests     int64       `json:"requests"`
	Errors       int64       `json:"errors"`
	ErrorRate    float64     `json:"error_rate"`
	Sheds        int64       `json:"sheds"`
	ShedRate     float64     `json:"shed_rate"`
	Throughput   float64     `json:"throughput_rps"`
	Latency      LoadLatency `json:"latency"`
	CacheHits    int64       `json:"cache_hits"`
	CacheMisses  int64       `json:"cache_misses"`
	CacheHitRate float64     `json:"cache_hit_rate"`

	// BucketNS is the time-bucket width; Buckets tile [0, WallNS)
	// contiguously from the run's start (empty slices included, so
	// bucket i always covers [i*BucketNS, (i+1)*BucketNS)). Both are
	// omitted when the harness ran without bucketing.
	BucketNS int64        `json:"bucket_ns,omitempty"`
	Buckets  []LoadBucket `json:"buckets,omitempty"`

	Endpoints   []LoadEndpoint `json:"endpoints"`
	PerScenario []LoadScenario `json:"per_scenario"`
}

// percentile returns the q-quantile (0 < q <= 1) of sorted latencies
// by the nearest-rank method; 0 for an empty slice.
func percentile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// latencyOf summarizes a latency sample set.
func latencyOf(ns []int64) LoadLatency {
	if len(ns) == 0 {
		return LoadLatency{}
	}
	sorted := append([]int64(nil), ns...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return LoadLatency{
		P50NS: percentile(sorted, 0.50),
		P90NS: percentile(sorted, 0.90),
		P99NS: percentile(sorted, 0.99),
		MaxNS: sorted[len(sorted)-1],
	}
}

// BuildLoadReport aggregates a run's samples into the versioned
// emission. It is a pure function of its inputs (the harness measures
// wall time and passes it in), so the same samples always aggregate to
// the same report. bucketNS > 0 additionally tiles the run into
// contiguous time buckets by each sample's StartNS; <= 0 omits
// buckets (the pre-histogram report shape).
func BuildLoadReport(command, target string, scenarios []string, clients int, wallNS, bucketNS int64, samples []LoadSample) LoadReport {
	rep := LoadReport{
		Schema:     LoadSchema,
		Command:    command,
		Target:     target,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Clients:    clients,
		Scenarios:  append([]string(nil), scenarios...),
		WallNS:     wallNS,
	}
	sort.Strings(rep.Scenarios)

	all := make([]int64, 0, len(samples))
	byEndpoint := make(map[string][]LoadSample)
	byScenario := make(map[string][]LoadSample)
	for _, s := range samples {
		rep.Requests++
		if s.Failed {
			rep.Errors++
		}
		if s.Shed() {
			rep.Sheds++
		}
		switch s.Cache {
		case "hit":
			rep.CacheHits++
		case "miss":
			rep.CacheMisses++
		}
		all = append(all, s.LatencyNS)
		byEndpoint[s.Endpoint] = append(byEndpoint[s.Endpoint], s)
		if s.Scenario != "" {
			byScenario[s.Scenario] = append(byScenario[s.Scenario], s)
		}
	}
	rep.Latency = latencyOf(all)
	if rep.Requests > 0 {
		rep.ErrorRate = float64(rep.Errors) / float64(rep.Requests)
		rep.ShedRate = float64(rep.Sheds) / float64(rep.Requests)
	}
	if counted := rep.CacheHits + rep.CacheMisses; counted > 0 {
		rep.CacheHitRate = float64(rep.CacheHits) / float64(counted)
	}
	if wallNS > 0 {
		rep.Throughput = float64(rep.Requests) / (float64(wallNS) / 1e9)
	}

	// Collect map keys into locals and sort before publishing
	// (maporder: iteration order is randomized).
	endpoints := make([]string, 0, len(byEndpoint))
	for name := range byEndpoint {
		endpoints = append(endpoints, name)
	}
	sort.Strings(endpoints)
	for _, name := range endpoints {
		ss := byEndpoint[name]
		ep := LoadEndpoint{Endpoint: name}
		ns := make([]int64, 0, len(ss))
		for _, s := range ss {
			ep.Requests++
			if s.Failed {
				ep.Errors++
			}
			if s.Shed() {
				ep.Sheds++
			}
			ns = append(ns, s.LatencyNS)
		}
		ep.Latency = latencyOf(ns)
		rep.Endpoints = append(rep.Endpoints, ep)
	}
	scenarioIDs := make([]string, 0, len(byScenario))
	for id := range byScenario {
		scenarioIDs = append(scenarioIDs, id)
	}
	sort.Strings(scenarioIDs)
	for _, id := range scenarioIDs {
		sc := LoadScenario{Scenario: id}
		for _, s := range byScenario[id] {
			sc.Requests++
			if s.Failed {
				sc.Errors++
			}
			if s.Shed() {
				sc.Sheds++
			}
		}
		rep.PerScenario = append(rep.PerScenario, sc)
	}
	if bucketNS > 0 {
		rep.BucketNS = bucketNS
		rep.Buckets = bucketize(samples, bucketNS)
	}
	return rep
}

// bucketize tiles the samples into contiguous bucketNS-wide time
// slices by StartNS. Every bucket from 0 through the last occupied one
// is emitted (empty included) so consumers can index by time without
// gap handling; a negative StartNS clamps into the first bucket.
func bucketize(samples []LoadSample, bucketNS int64) []LoadBucket {
	if len(samples) == 0 {
		return nil
	}
	byBucket := make(map[int][]LoadSample)
	last := 0
	for _, s := range samples {
		i := 0
		if s.StartNS > 0 {
			i = int(s.StartNS / bucketNS)
		}
		if i > last {
			last = i
		}
		byBucket[i] = append(byBucket[i], s)
	}
	out := make([]LoadBucket, last+1)
	for i := range out {
		b := LoadBucket{StartNS: int64(i) * bucketNS, EndNS: int64(i+1) * bucketNS}
		ns := make([]int64, 0, len(byBucket[i]))
		for _, s := range byBucket[i] {
			b.Requests++
			if s.Failed {
				b.Errors++
			}
			if s.Shed() {
				b.Sheds++
			}
			ns = append(ns, s.LatencyNS)
		}
		b.Latency = latencyOf(ns)
		out[i] = b
	}
	return out
}

// Validate checks the emission the way obs.BenchReport.Validate checks
// bench reports: schema tag, shape invariants (counts reconcile across
// breakdowns, rates in range, percentiles ordered), so a truncated or
// hand-edited file fails loudly in CI.
func (r LoadReport) Validate() error {
	if r.Schema != LoadSchema {
		return fmt.Errorf("schema %q, want %q", r.Schema, LoadSchema)
	}
	if r.Clients < 1 {
		return fmt.Errorf("clients %d, want >= 1", r.Clients)
	}
	if r.Requests < 1 {
		return fmt.Errorf("requests %d, want >= 1", r.Requests)
	}
	if r.Errors < 0 || r.Errors > r.Requests {
		return fmt.Errorf("errors %d outside [0, %d]", r.Errors, r.Requests)
	}
	if r.ErrorRate < 0 || r.ErrorRate > 1 {
		return fmt.Errorf("error_rate %g outside [0, 1]", r.ErrorRate)
	}
	// Sheds and errors are disjoint by construction: a clean shed is a
	// verified 429 (not Failed), a malformed one counts as an error.
	if r.Sheds < 0 || r.Sheds+r.Errors > r.Requests {
		return fmt.Errorf("sheds %d + errors %d exceed requests %d", r.Sheds, r.Errors, r.Requests)
	}
	if r.ShedRate < 0 || r.ShedRate > 1 {
		return fmt.Errorf("shed_rate %g outside [0, 1]", r.ShedRate)
	}
	if r.CacheHitRate < 0 || r.CacheHitRate > 1 {
		return fmt.Errorf("cache_hit_rate %g outside [0, 1]", r.CacheHitRate)
	}
	if r.CacheHits+r.CacheMisses > r.Requests {
		return fmt.Errorf("cache hits+misses %d exceed requests %d", r.CacheHits+r.CacheMisses, r.Requests)
	}
	if r.WallNS <= 0 {
		return fmt.Errorf("wall_ns %d, want > 0", r.WallNS)
	}
	if r.Throughput <= 0 {
		return fmt.Errorf("throughput_rps %g, want > 0", r.Throughput)
	}
	if err := r.Latency.validate("latency"); err != nil {
		return err
	}
	if len(r.Endpoints) == 0 {
		return fmt.Errorf("no endpoint breakdown")
	}
	var reqSum, errSum, shedSum int64
	for _, ep := range r.Endpoints {
		if ep.Endpoint == "" {
			return fmt.Errorf("endpoint with empty name")
		}
		if err := ep.Latency.validate("endpoint " + ep.Endpoint); err != nil {
			return err
		}
		reqSum += ep.Requests
		errSum += ep.Errors
		shedSum += ep.Sheds
	}
	if reqSum != r.Requests {
		return fmt.Errorf("endpoint requests sum %d != total %d", reqSum, r.Requests)
	}
	if errSum != r.Errors {
		return fmt.Errorf("endpoint errors sum %d != total %d", errSum, r.Errors)
	}
	if shedSum != r.Sheds {
		return fmt.Errorf("endpoint sheds sum %d != total %d", shedSum, r.Sheds)
	}
	return r.validateBuckets()
}

// validateBuckets checks the time-bucket histogram: contiguous tiling
// from 0 at BucketNS width, per-bucket counts in range, and bucket
// sums reconciling exactly with the run totals (every sample lands in
// exactly one bucket).
func (r LoadReport) validateBuckets() error {
	if len(r.Buckets) == 0 {
		if r.BucketNS != 0 {
			return fmt.Errorf("bucket_ns %d with no buckets", r.BucketNS)
		}
		return nil
	}
	if r.BucketNS <= 0 {
		return fmt.Errorf("buckets present but bucket_ns %d", r.BucketNS)
	}
	var reqSum, errSum, shedSum int64
	for i, b := range r.Buckets {
		wantStart := int64(i) * r.BucketNS
		if b.StartNS != wantStart || b.EndNS != wantStart+r.BucketNS {
			return fmt.Errorf("bucket %d spans [%d, %d), want [%d, %d)",
				i, b.StartNS, b.EndNS, wantStart, wantStart+r.BucketNS)
		}
		if b.Requests < 0 || b.Errors < 0 || b.Sheds < 0 || b.Errors+b.Sheds > b.Requests {
			return fmt.Errorf("bucket %d: errors %d + sheds %d exceed requests %d",
				i, b.Errors, b.Sheds, b.Requests)
		}
		if err := b.Latency.validate(fmt.Sprintf("bucket %d", i)); err != nil {
			return err
		}
		reqSum += b.Requests
		errSum += b.Errors
		shedSum += b.Sheds
	}
	if reqSum != r.Requests || errSum != r.Errors || shedSum != r.Sheds {
		return fmt.Errorf("bucket sums (req %d, err %d, shed %d) != totals (req %d, err %d, shed %d)",
			reqSum, errSum, shedSum, r.Requests, r.Errors, r.Sheds)
	}
	return nil
}

func (l LoadLatency) validate(name string) error {
	if l.P50NS < 0 || l.P50NS > l.P90NS || l.P90NS > l.P99NS || l.P99NS > l.MaxNS {
		return fmt.Errorf("%s: percentiles not ordered: p50 %d, p90 %d, p99 %d, max %d",
			name, l.P50NS, l.P90NS, l.P99NS, l.MaxNS)
	}
	return nil
}

// WriteFile validates the report and writes it as indented JSON.
func (r LoadReport) WriteFile(path string) error {
	if err := r.Validate(); err != nil {
		return fmt.Errorf("load report invalid: %w", err)
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadLoadReport reads and validates a routelab-load/v1 emission.
func ReadLoadReport(path string) (LoadReport, error) {
	var r LoadReport
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}
