package service

import (
	"container/list"
	"context"
	"sync"
)

// cache is an LRU over fully-marshaled response bodies with in-flight
// coalescing: concurrent requests for the same key share one
// computation, so a burst of identical queries costs one experiment
// run and every client gets the very same bytes.
type cache struct {
	mu       sync.Mutex
	cap      int
	order    *list.List               // front = most recent
	entries  map[string]*list.Element // value: *entry
	inflight map[string]*call
}

type entry struct {
	key  string
	body []byte
}

type call struct {
	done chan struct{}
	body []byte
	err  error
}

func newCache(capacity int) *cache {
	if capacity <= 0 {
		capacity = 256
	}
	return &cache{
		cap:      capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*call),
	}
}

// do returns the cached body for key, joining an in-flight computation
// or running fn to produce it. The returned hit flag reports whether
// the body was served from the LRU (a computation that ran — or was
// joined in flight — counts as a miss). Only successful results are
// cached. Waiters honor their own ctx; when the computing caller's ctx
// kills the computation, surviving waiters retry rather than inherit
// the stranger's deadline.
func (c *cache) do(ctx context.Context, key string, fn func() ([]byte, error)) (body []byte, hit bool, err error) {
	for {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			c.order.MoveToFront(el)
			body := el.Value.(*entry).body
			c.mu.Unlock()
			return body, true, nil
		}
		if cl, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			select {
			case <-cl.done:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			if cl.err == nil {
				return cl.body, false, nil
			}
			if ctx.Err() != nil {
				return nil, false, ctx.Err()
			}
			// The computation died on ITS caller's context (or a real
			// error); our context is still live, so try again — either a
			// fresh inflight exists or we become the computer.
			if cl.err != context.Canceled && cl.err != context.DeadlineExceeded {
				return nil, false, cl.err
			}
			continue
		}
		cl := &call{done: make(chan struct{})}
		c.inflight[key] = cl
		c.mu.Unlock()

		cl.body, cl.err = fn()
		c.mu.Lock()
		delete(c.inflight, key)
		if cl.err == nil {
			c.insert(key, cl.body)
		}
		c.mu.Unlock()
		close(cl.done)
		return cl.body, false, cl.err
	}
}

// insert adds key under the LRU policy. Caller holds c.mu.
func (c *cache) insert(key string, body []byte) {
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*entry).body = body
		return
	}
	c.entries[key] = c.order.PushFront(&entry{key: key, body: body})
	for c.order.Len() > c.cap {
		el := c.order.Back()
		c.order.Remove(el)
		delete(c.entries, el.Value.(*entry).key)
	}
}

// len reports the number of cached bodies (for tests and metrics).
func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// removePrefix drops every cached body whose key starts with prefix —
// the partition purge the scenario store runs when it evicts a sealed
// scenario, so an evicted tenant's memory is actually released and a
// rebuild serves freshly-computed (byte-identical) bodies. In-flight
// computations are left alone; they complete and re-insert, which is
// harmless because responses are deterministic per key.
func (c *cache) removePrefix(prefix string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	removed := 0
	for el := c.order.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*entry)
		if len(e.key) >= len(prefix) && e.key[:len(prefix)] == prefix {
			c.order.Remove(el)
			delete(c.entries, e.key)
			removed++
		}
		el = next
	}
	return removed
}
