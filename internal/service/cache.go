package service

import (
	"container/list"
	"context"
	"sync"
)

// cache is an LRU over fully-marshaled response bodies with in-flight
// coalescing: concurrent requests for the same key share one
// computation, so a burst of identical queries costs one experiment
// run and every client gets the very same bytes.
type cache struct {
	mu       sync.Mutex
	cap      int
	order    *list.List               // front = most recent
	entries  map[string]*list.Element // value: *entry
	inflight map[string]*call
}

type entry struct {
	key  string
	body []byte
}

type call struct {
	done chan struct{}
	body []byte
	err  error
}

func newCache(capacity int) *cache {
	if capacity <= 0 {
		capacity = 256
	}
	return &cache{
		cap:      capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*call),
	}
}

// do returns the cached body for key, joining an in-flight computation
// or running fn to produce it. Only successful results are cached.
// Waiters honor their own ctx; when the computing caller's ctx kills
// the computation, surviving waiters retry rather than inherit the
// stranger's deadline.
func (c *cache) do(ctx context.Context, key string, fn func() ([]byte, error)) ([]byte, error) {
	for {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			c.order.MoveToFront(el)
			body := el.Value.(*entry).body
			c.mu.Unlock()
			return body, nil
		}
		if cl, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			select {
			case <-cl.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if cl.err == nil {
				return cl.body, nil
			}
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			// The computation died on ITS caller's context (or a real
			// error); our context is still live, so try again — either a
			// fresh inflight exists or we become the computer.
			if cl.err != context.Canceled && cl.err != context.DeadlineExceeded {
				return nil, cl.err
			}
			continue
		}
		cl := &call{done: make(chan struct{})}
		c.inflight[key] = cl
		c.mu.Unlock()

		cl.body, cl.err = fn()
		c.mu.Lock()
		delete(c.inflight, key)
		if cl.err == nil {
			c.insert(key, cl.body)
		}
		c.mu.Unlock()
		close(cl.done)
		return cl.body, cl.err
	}
}

// insert adds key under the LRU policy. Caller holds c.mu.
func (c *cache) insert(key string, body []byte) {
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*entry).body = body
		return
	}
	c.entries[key] = c.order.PushFront(&entry{key: key, body: body})
	for c.order.Len() > c.cap {
		el := c.order.Back()
		c.order.Remove(el)
		delete(c.entries, el.Value.(*entry).key)
	}
}

// len reports the number of cached bodies (for tests and metrics).
func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
