package service

import (
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"routelab/internal/obs"
)

// measureTenantBytes builds one test world in a throwaway store and
// returns its accounted size — the unit the byte-budget tests size
// their budgets in, so they hold whatever the walk actually reports
// rather than a hardcoded guess.
func measureTenantBytes(t *testing.T) int64 {
	t.Helper()
	st, ts := newTestFleet(t, StoreConfig{}, testExpansion("probe", 1))
	if status, body := get(t, ts.URL+"/v1/scenarios/probe/healthz"); status != http.StatusOK {
		t.Fatalf("probe build: status %d\n%s", status, body)
	}
	info, err := st.Info("probe")
	if err != nil {
		t.Fatal(err)
	}
	if info.SizeBytes <= 0 {
		t.Fatalf("built tenant SizeBytes = %d, want > 0", info.SizeBytes)
	}
	return info.SizeBytes
}

// TestStoreByteBudgetEviction sizes a budget to hold one world but not
// two, then admits two: the second admit must evict the first by
// accounted bytes (not count), purge its cache partition, drain its
// fork pools, and leave resident bytes within budget — while the
// evicted world still rebuilds to byte-identical responses.
func TestStoreByteBudgetEviction(t *testing.T) {
	obs.Reset()
	size := measureTenantBytes(t)
	budget := size + size/2
	st, ts := newTestFleet(t, StoreConfig{MaxScenarioBytes: budget},
		testExpansion("alpha", 1), testExpansion("beta", 2))
	urlA := ts.URL + "/v1/scenarios/alpha/experiments/table1"
	urlB := ts.URL + "/v1/scenarios/beta/experiments/table1"

	status, bodyA, hdr := getHeader(t, urlA)
	if status != http.StatusOK || hdr != "miss" {
		t.Fatalf("first alpha: status %d, cache %q", status, hdr)
	}
	if got := st.ResidentBytes(); got <= 0 || got > budget {
		t.Errorf("resident bytes %d after one admit, want in (0, %d]", got, budget)
	}
	// Grab the tenant before eviction so the pool-drain check below has
	// the evicted instance, not a rebuild.
	tenantA, err := st.Get(context.Background(), "alpha")
	if err != nil {
		t.Fatal(err)
	}

	// Beta doesn't fit alongside alpha: the admit must evict by bytes.
	if status, _, _ := getHeader(t, urlB); status != http.StatusOK {
		t.Fatalf("beta: status %d", status)
	}
	if n := st.BuiltLen(); n != 1 {
		t.Errorf("BuiltLen = %d, want 1 (byte budget fits one world)", n)
	}
	if got := st.ResidentBytes(); got > budget {
		t.Errorf("resident bytes %d exceed budget %d after admit", got, budget)
	}
	if n := obs.Snap().Counters["service.scenario.evictions"]; n != 1 {
		t.Errorf("evictions = %d, want 1", n)
	}

	// The evicted tenant's fork pools are drained (stopped, no refill
	// goroutines) but still serve inline — the TestForkPoolDrainJoinsRefills
	// contract, now triggered by byte-budget eviction.
	if len(tenantA.pools) == 0 {
		t.Fatal("test scenario has no fork pools")
	}
	for _, p := range tenantA.pools {
		p.mu.Lock()
		stopped := p.stopped
		p.mu.Unlock()
		if !stopped {
			t.Error("evicted tenant's fork pool not drained")
		}
		if c := p.get(); c == nil {
			t.Error("drained pool stopped serving inline forks")
		}
	}

	// No stale bytes: alpha's rebuild recomputes (miss — its cache
	// partition was purged) and the bytes match the pre-eviction body.
	status, rebuilt, hdr := getHeader(t, urlA)
	if status != http.StatusOK {
		t.Fatalf("rebuilt alpha: status %d", status)
	}
	if hdr != "miss" {
		t.Errorf("rebuilt alpha: cache %q, want miss (partition purged)", hdr)
	}
	if rebuilt != bodyA {
		t.Error("rebuilt alpha response differs from pre-eviction response")
	}
}

// TestStoreByteBudgetSoleResident pins the anti-thrash rule: a world
// bigger than the whole budget still becomes (and stays) resident when
// it is the only one — the store serves over budget rather than
// rebuilding the same scenario on every request.
func TestStoreByteBudgetSoleResident(t *testing.T) {
	st, ts := newTestFleet(t, StoreConfig{MaxScenarioBytes: 1},
		testExpansion("alpha", 1), testExpansion("beta", 2))
	urlA := ts.URL + "/v1/scenarios/alpha/experiments/table1"

	if status, _, _ := getHeader(t, urlA); status != http.StatusOK {
		t.Fatal("alpha build failed")
	}
	if n := st.BuiltLen(); n != 1 {
		t.Fatalf("BuiltLen = %d, want 1 (sole resident survives over budget)", n)
	}
	if got := st.ResidentBytes(); got <= 1 {
		t.Errorf("resident bytes %d, want the true (over-budget) cost", got)
	}
	if _, _, hdr := getHeader(t, urlA); hdr != "hit" {
		t.Errorf("repeat alpha: cache %q, want hit (still resident, not thrashing)", hdr)
	}
	// A second world displaces the first; exactly one stays resident.
	if status, _, _ := getHeader(t, ts.URL+"/v1/scenarios/beta/healthz"); status != http.StatusOK {
		t.Fatal("beta build failed")
	}
	if n := st.BuiltLen(); n != 1 {
		t.Errorf("BuiltLen = %d, want 1 after displacement", n)
	}
}

// TestStoreEvictionDifferential replays one randomized admit/query
// history against a count-budget store and a byte-budget store sized
// to the same capacity (two worlds), checking after every step that
// each store honors its own budget invariant, that the byte store's
// ResidentBytes ledger reconciles exactly with the sum of its built
// tenants' SizeBytes, and that both stores serve byte-identical bodies
// for every id across evictions and rebuilds.
func TestStoreEvictionDifferential(t *testing.T) {
	obs.Reset()
	size := measureTenantBytes(t)
	newFleet := func(cfg StoreConfig) (*Store, *httptest.Server) {
		return newTestFleet(t, cfg,
			testExpansion("a", 11), testExpansion("b", 12), testExpansion("c", 13))
	}
	countSt, countTS := newFleet(StoreConfig{MaxScenarios: 2})
	// Half a world of slack absorbs per-seed size variation while still
	// holding exactly two.
	budget := 2*size + size/2
	byteSt, byteTS := newFleet(StoreConfig{MaxScenarioBytes: budget})

	ids := []string{"a", "b", "c"}
	rng := rand.New(rand.NewSource(42))
	bodies := make(map[string]string) // id -> canonical table1 body
	// 8 steps over 3 ids against capacity 2 churns several evictions and
	// rebuilds per store while keeping the -race run affordable.
	for step := 0; step < 8; step++ {
		id := ids[rng.Intn(len(ids))]
		path := "/v1/scenarios/" + id + "/experiments/table1"

		countStatus, countBody, _ := getHeader(t, countTS.URL+path)
		byteStatus, byteBody, _ := getHeader(t, byteTS.URL+path)
		if countStatus != http.StatusOK || byteStatus != http.StatusOK {
			t.Fatalf("step %d id %s: status %d/%d", step, id, countStatus, byteStatus)
		}
		if countBody != byteBody {
			t.Fatalf("step %d id %s: count and byte stores disagree on bytes", step, id)
		}
		if want, ok := bodies[id]; ok && want != countBody {
			t.Fatalf("step %d id %s: body changed across evictions/rebuilds", step, id)
		}
		bodies[id] = countBody

		if n := countSt.BuiltLen(); n > 2 {
			t.Fatalf("step %d: count store resident %d > cap 2", step, n)
		}
		if got := byteSt.ResidentBytes(); got > budget && byteSt.BuiltLen() > 1 {
			t.Fatalf("step %d: byte store %d bytes over budget %d with %d residents",
				step, got, budget, byteSt.BuiltLen())
		}
		// Ledger reconciliation: the counter must equal the sum of what
		// the store reports per built scenario — no leaked or stale bytes
		// after any eviction.
		var sum int64
		for _, info := range byteSt.Infos() {
			if info.Built {
				sum += info.SizeBytes
			}
		}
		if got := byteSt.ResidentBytes(); got != sum {
			t.Fatalf("step %d: ResidentBytes %d != sum of built SizeBytes %d", step, got, sum)
		}
	}
}
