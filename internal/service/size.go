package service

import "reflect"

// Memory accounting: the store's byte-budget eviction needs each sealed
// tenant's resident cost, measured once at build time (a sealed
// scenario never grows, so the number stays true for the tenant's whole
// residency). sizeOf walks the object graph with reflect — no unsafe —
// and sums an estimate:
//
//   - every heap object reached through pointers, slices, maps, and
//     interfaces is counted once (a visited set keyed by data pointer
//     handles the heavy sharing in the topology/RIB graph);
//   - string bytes are counted per reference: reflect cannot take a
//     string's data pointer without unsafe, so interned AS-path strings
//     are over-counted. That errs toward evicting sooner, the safe
//     direction for a memory budget;
//   - map storage is estimated as len × (key+elem size + per-entry
//     overhead) — Go's map internals are not reachable by reflection;
//   - channel buffers count cap × elem size, but buffered VALUES are
//     invisible to reflect, which is why tenantSizeBytes measures fork
//     pools with a sample fork instead of walking the channel.
//
// The estimate is deterministic for a sealed scenario: the walk's
// iteration order varies, but sums are commutative and sharing is
// deduplicated by identity, so every walk of the same graph yields the
// same total.

// mapEntryOverhead approximates Go's per-entry bucket cost (tophash,
// partial bucket occupancy, overflow pointers).
const mapEntryOverhead = 16

type sizeWalker struct {
	seen map[uintptr]bool
}

// sizeOf estimates the resident bytes of v's full object graph.
func sizeOf(v any) int64 {
	if v == nil {
		return 0
	}
	w := &sizeWalker{seen: make(map[uintptr]bool)}
	rv := reflect.ValueOf(v)
	return int64(rv.Type().Size()) + w.referenced(rv)
}

// referenced returns the heap bytes reachable FROM v, excluding v's own
// inline representation (the container already counted that).
func (w *sizeWalker) referenced(v reflect.Value) int64 {
	switch v.Kind() {
	case reflect.Pointer:
		if v.IsNil() || w.seen[v.Pointer()] {
			return 0
		}
		w.seen[v.Pointer()] = true
		e := v.Elem()
		return int64(e.Type().Size()) + w.referenced(e)
	case reflect.Interface:
		if v.IsNil() {
			return 0
		}
		e := v.Elem()
		return int64(e.Type().Size()) + w.referenced(e)
	case reflect.Slice:
		if v.IsNil() || w.seen[v.Pointer()] {
			return 0
		}
		w.seen[v.Pointer()] = true
		n := int64(v.Cap()) * int64(v.Type().Elem().Size())
		for i := 0; i < v.Len(); i++ {
			n += w.referenced(v.Index(i))
		}
		return n
	case reflect.Array:
		var n int64
		for i := 0; i < v.Len(); i++ {
			n += w.referenced(v.Index(i))
		}
		return n
	case reflect.String:
		return int64(v.Len())
	case reflect.Map:
		if v.IsNil() || w.seen[v.Pointer()] {
			return 0
		}
		w.seen[v.Pointer()] = true
		t := v.Type()
		n := int64(v.Len()) * (int64(t.Key().Size()) + int64(t.Elem().Size()) + mapEntryOverhead)
		iter := v.MapRange()
		for iter.Next() {
			// Iteration order is random, but addition commutes and the
			// visited set dedupes by identity, so the sum is stable.
			n += w.referenced(iter.Key())
			n += w.referenced(iter.Value())
		}
		return n
	case reflect.Struct:
		var n int64
		for i := 0; i < v.NumField(); i++ {
			n += w.referenced(v.Field(i))
		}
		return n
	case reflect.Chan:
		if v.IsNil() || w.seen[v.Pointer()] {
			return 0
		}
		w.seen[v.Pointer()] = true
		return int64(v.Cap()) * int64(v.Type().Elem().Size())
	default:
		// Scalars, funcs, unsafe pointers: inline or unknowable.
		return 0
	}
}

// accountSize runs the build-time accounting walk for one tenant: the
// sealed scenario graph (topology, RIB snapshots, measurements, and
// the warm per-prefix anycast bases the pools were stocked from —
// AnycastBase caches them on the scenario's testbed, so the scenario
// walk reaches them), plus the static per-tenant state and the fork
// pools. Pooled forks sit in channel buffers reflect cannot see into,
// so their cost is measured from one sample fork — its incremental
// copy-on-write overlay over the already-visited base — times the
// stocked depth. Call after the pools are stocked (newTenant does).
func (srv *Server) accountSize() int64 {
	w := &sizeWalker{seen: make(map[uintptr]bool)}
	rs := reflect.ValueOf(srv.s)
	n := int64(rs.Type().Size()) + w.referenced(rs)
	n += w.referenced(reflect.ValueOf(srv.traceIdx))
	n += w.referenced(reflect.ValueOf(srv.health))
	for prefix, p := range srv.pools {
		sample := srv.s.Testbed.AnycastBase(prefix).Fork()
		perFork := w.referenced(reflect.ValueOf(sample))
		n += perFork * int64(cap(p.ch))
	}
	return n
}

// SizeBytes reports the tenant's resident-byte estimate, measured once
// at build time (sealed scenarios do not grow). The store's byte
// budget sums these across residents to drive eviction.
func (srv *Server) SizeBytes() int64 { return srv.size }
