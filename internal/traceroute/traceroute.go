// Package traceroute simulates the data plane: it forwards a probe
// packet hop by hop along the converged ground-truth routes and
// synthesizes the router-level IP path a traceroute would report —
// including the artifacts that make real IP→AS conversion hard
// (unresponsive hops, third-party addresses, IXP fabric addresses).
package traceroute

import (
	"routelab/internal/asn"
	"routelab/internal/bgp"
	"routelab/internal/geo"
	"routelab/internal/topology"
)

// Hop is one reported traceroute hop. A zero IP is an unresponsive hop
// ("* * *"). TrueAS and TrueCity are ground-truth annotations for
// debugging and oracle tests; the measurement pipeline must not read
// them.
type Hop struct {
	IP       asn.Addr
	TrueAS   asn.ASN
	TrueCity geo.CityID
}

// Trace is one completed measurement.
type Trace struct {
	SrcAS   asn.ASN
	SrcCity geo.CityID
	Dst     asn.Addr
	Hops    []Hop
	// Reached reports whether the probe reached the destination AS.
	Reached bool
	// TrueASPath is the ground-truth AS-level path, source first. Oracle
	// data; the pipeline derives its own AS path via ipasmap.
	TrueASPath []asn.ASN
}

// Config sets the artifact rates.
type Config struct {
	// NoReplyRate is the probability a router does not answer.
	NoReplyRate float64
	// ThirdPartyRate is the probability a border router replies with an
	// address from the PREVIOUS AS's space (the classic traceroute
	// artifact that inflates AS paths).
	ThirdPartyRate float64
	// IXPRate is the probability an inter-AS hop crosses a public
	// exchange fabric and reports the IXP's (unannounced) address.
	IXPRate float64
	// MaxHops bounds the walk.
	MaxHops int
	// Seed drives the deterministic artifact placement.
	Seed int64
}

// DefaultConfig mirrors artifact rates reported in traceroute
// measurement literature.
func DefaultConfig() Config {
	return Config{
		NoReplyRate:    0.04,
		ThirdPartyRate: 0.025,
		IXPRate:        0.04,
		MaxHops:        30,
		Seed:           1,
	}
}

// Tracer issues traceroutes over a converged RIB.
type Tracer struct {
	topo *topology.Topology
	rib  *bgp.RIB
	cfg  Config
}

// New returns a tracer.
func New(topo *topology.Topology, rib *bgp.RIB, cfg Config) *Tracer {
	if cfg.MaxHops == 0 {
		cfg = DefaultConfig()
	}
	return &Tracer{topo: topo, rib: rib, cfg: cfg}
}

// Trace walks the data plane from a probe in srcAS/srcCity toward dst.
func (tr *Tracer) Trace(srcAS asn.ASN, srcCity geo.CityID, dst asn.Addr) Trace {
	t := Trace{SrcAS: srcAS, SrcCity: srcCity, Dst: dst}
	dstAS := tr.topo.ASByAddr(dst)
	cur := srcAS
	var prev asn.ASN
	entryCity := srcCity
	t.TrueASPath = append(t.TrueASPath, cur)
	for hops := 0; hops < tr.cfg.MaxHops; hops++ {
		if cur == dstAS {
			// Destination replies with its real address.
			t.Hops = append(t.Hops, Hop{IP: dst, TrueAS: cur, TrueCity: entryCity})
			t.Reached = true
			return t
		}
		rt, ok := tr.rib.Lookup(cur, dst)
		if !ok || rt.IsOrigin() {
			// No route (or we are at an origin that is not the
			// destination AS — an off-net cache address mismatch).
			t.Reached = ok && rt.IsOrigin()
			if t.Reached {
				t.Hops = append(t.Hops, Hop{IP: dst, TrueAS: cur, TrueCity: entryCity})
			}
			return t
		}
		next := rt.NextHop
		egress := rt.EgressCity
		// Ingress router of cur (where the packet entered this AS). With
		// some probability the border router replies with its interface
		// address on the PREVIOUS AS's side — the third-party artifact.
		ingress := tr.routerHop(cur, entryCity, dst, 0)
		if !prev.IsZero() && ingress.IP != 0 &&
			tr.roll(dst, prev, cur, 7) < tr.cfg.ThirdPartyRate {
			if tp := tr.topo.RouterIP(prev, entryCity, 2); tp != 0 {
				ingress.IP = tp
			}
		}
		t.Hops = append(t.Hops, ingress)
		// Egress router if the packet crosses the AS to another city.
		if egress != entryCity {
			t.Hops = append(t.Hops, tr.routerHop(cur, egress, dst, 1))
		}
		// Possibly an IXP fabric hop at the interconnection.
		if tr.roll(dst, cur, next, 1) < tr.cfg.IXPRate {
			t.Hops = append(t.Hops, Hop{
				IP:       topology.IXPPrefix(egress).Nth(uint32(uint64(cur) % 200)),
				TrueAS:   next, // the fabric address fronts the next AS's router
				TrueCity: egress,
			})
		}
		t.TrueASPath = append(t.TrueASPath, next)
		prev = cur
		cur = next
		entryCity = egress
	}
	return t
}

// routerHop synthesizes the reply of one router of AS a in a city,
// applying the no-reply and third-party artifacts.
func (tr *Tracer) routerHop(a asn.ASN, city geo.CityID, dst asn.Addr, k int) Hop {
	if tr.roll(dst, a, asn.ASN(city), 100+k) < tr.cfg.NoReplyRate {
		return Hop{TrueAS: a, TrueCity: city}
	}
	ip := tr.topo.RouterIP(a, city, k)
	if ip == 0 {
		// AS has no PoP slot here (footprint was extended after address
		// planning); fall back to its first city.
		if x := tr.topo.AS(a); x != nil && len(x.Cities) > 0 {
			ip = tr.topo.RouterIP(a, x.Cities[0], k)
		}
	}
	return Hop{IP: ip, TrueAS: a, TrueCity: city}
}

// roll is the deterministic per-(trace, site) randomness behind the
// artifact placement.
func (tr *Tracer) roll(dst asn.Addr, a, b asn.ASN, salt int) float64 {
	h := uint64(tr.cfg.Seed) ^ 0x9e3779b97f4a7c15
	for _, v := range []uint64{uint64(dst), uint64(a), uint64(b), uint64(salt)} {
		h ^= v + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
		h = (h ^ (h >> 27)) * 0x94d049bb133111eb
		h ^= h >> 31
	}
	return float64(h%100000) / 100000
}
