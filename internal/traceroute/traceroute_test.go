package traceroute

import (
	"testing"

	"routelab/internal/asn"
	"routelab/internal/bgp"
	"routelab/internal/topology"
)

// fixture computes a small RIB over a generated topology.
type fixture struct {
	topo *topology.Topology
	rib  *bgp.RIB
	dst  asn.Addr
	dstA asn.ASN
}

func newFixture(t *testing.T, seed int64) *fixture {
	t.Helper()
	topo := topology.Generate(seed, topology.TestConfig())
	e := bgp.New(topo, seed)
	cdn := topo.Names["cdn-major"]
	prefixes := topo.AS(cdn).Prefixes
	rib := e.ComputeRIB(prefixes, 0)
	return &fixture{topo: topo, rib: rib, dst: prefixes[0].Nth(50), dstA: cdn}
}

func TestTraceReachesDestination(t *testing.T) {
	f := newFixture(t, 31)
	reached := 0
	for _, src := range f.topo.ASesOfClass(topology.Stub)[:20] {
		x := f.topo.AS(src)
		tr := New(f.topo, f.rib, DefaultConfig())
		res := tr.Trace(src, x.Cities[0], f.dst)
		if !res.Reached {
			continue
		}
		reached++
		if res.TrueASPath[0] != src {
			t.Fatalf("path must start at source: %v", res.TrueASPath)
		}
		if last := res.TrueASPath[len(res.TrueASPath)-1]; last != f.dstA {
			t.Fatalf("path must end at destination AS %v: %v", f.dstA, res.TrueASPath)
		}
		if res.Hops[len(res.Hops)-1].IP != f.dst {
			t.Fatal("final hop must be the destination address")
		}
		// The true AS path must be consistent with ground-truth links.
		for i := 0; i+1 < len(res.TrueASPath); i++ {
			if f.topo.Link(res.TrueASPath[i], res.TrueASPath[i+1]) == nil {
				t.Fatalf("true AS path uses nonexistent link %v-%v",
					res.TrueASPath[i], res.TrueASPath[i+1])
			}
		}
	}
	if reached < 15 {
		t.Fatalf("only %d/20 stubs reached the CDN prefix", reached)
	}
}

func TestTraceDeterministic(t *testing.T) {
	f := newFixture(t, 32)
	src := f.topo.ASesOfClass(topology.Stub)[0]
	city := f.topo.AS(src).Cities[0]
	tr := New(f.topo, f.rib, DefaultConfig())
	a := tr.Trace(src, city, f.dst)
	b := tr.Trace(src, city, f.dst)
	if len(a.Hops) != len(b.Hops) {
		t.Fatal("identical traces differ in hop count")
	}
	for i := range a.Hops {
		if a.Hops[i] != b.Hops[i] {
			t.Fatalf("hop %d differs", i)
		}
	}
}

func TestArtifactsAppearAtConfiguredRates(t *testing.T) {
	f := newFixture(t, 33)
	cfg := DefaultConfig()
	cfg.NoReplyRate = 0.5 // crank up to make the test statistical
	tr := New(f.topo, f.rib, cfg)
	hops, silent := 0, 0
	for _, src := range f.topo.ASesOfClass(topology.Stub)[:30] {
		res := tr.Trace(src, f.topo.AS(src).Cities[0], f.dst)
		for _, h := range res.Hops {
			hops++
			if h.IP == 0 {
				silent++
			}
		}
	}
	if hops == 0 {
		t.Fatal("no hops at all")
	}
	frac := float64(silent) / float64(hops)
	if frac < 0.2 || frac > 0.7 {
		t.Errorf("no-reply fraction %.2f wildly off the configured 0.5", frac)
	}
}

func TestNoArtifactsWhenRatesZero(t *testing.T) {
	f := newFixture(t, 34)
	cfg := Config{MaxHops: 30, Seed: 1} // all artifact rates zero
	tr := New(f.topo, f.rib, cfg)
	for _, src := range f.topo.ASesOfClass(topology.Stub)[:10] {
		res := tr.Trace(src, f.topo.AS(src).Cities[0], f.dst)
		for i, h := range res.Hops {
			if h.IP == 0 {
				t.Fatalf("silent hop %d with zero NoReplyRate", i)
			}
			if topology.IsIXPAddr(h.IP) {
				t.Fatalf("IXP hop with zero IXPRate")
			}
		}
	}
}

func TestTraceUnroutedDestination(t *testing.T) {
	f := newFixture(t, 35)
	src := f.topo.ASesOfClass(topology.Stub)[0]
	// An address nobody announces and nobody routes.
	bogus := asn.AddrFrom4(9, 9, 9, 9)
	tr := New(f.topo, f.rib, DefaultConfig())
	res := tr.Trace(src, f.topo.AS(src).Cities[0], bogus)
	if res.Reached {
		t.Error("unrouted destination reported as reached")
	}
}

func TestHopCitiesFollowLinkGeography(t *testing.T) {
	f := newFixture(t, 36)
	tr := New(f.topo, f.rib, Config{MaxHops: 30, Seed: 1})
	src := f.topo.ASesOfClass(topology.Stub)[3]
	res := tr.Trace(src, f.topo.AS(src).Cities[0], f.dst)
	for _, h := range res.Hops {
		if h.TrueCity == 0 {
			t.Fatalf("hop without ground-truth city: %+v", h)
		}
		if h.IP == 0 || h.IP == f.dst {
			continue
		}
		owner, city, ok := f.topo.LocateRouter(h.IP)
		if !ok {
			continue // third-party or fallback address
		}
		if owner != h.TrueAS && h.TrueAS != 0 {
			// Third-party artifact: address owned by a different AS —
			// allowed, but the owner must be a ground-truth neighbor.
			if f.topo.Link(owner, h.TrueAS) == nil {
				t.Fatalf("hop address owner %v unrelated to true AS %v", owner, h.TrueAS)
			}
		}
		_ = city
	}
}
