// Package obs is routelab's observability layer: named counters,
// gauges, and per-stage timers behind a Registry with a deterministic
// snapshot API. It is dependency-free (standard library only) and built
// for instrumentation from inside parallel stages, so every update path
// is safe for concurrent use.
//
// # Model
//
//   - A Counter is a monotone int64 (events, items, routes). Hot paths
//     keep a *Counter handle (one registry lookup, then atomic adds).
//   - A Gauge is a last-write-wins float64 (items/sec, utilization,
//     worker counts).
//   - A Timer aggregates wall-clock durations of a named stage: count,
//     total, min, max. Stages are coarse (a convergence, a campaign, a
//     figure), so a mutex per observation is fine.
//
// # Determinism
//
// Metrics are a side channel: instrumented code must produce
// byte-identical experiment output whether or not anything reads the
// registry (see internal/parallel's contract). Snapshot itself is
// deterministic in shape — stages sorted by name, counters/gauges as
// maps (encoding/json renders map keys sorted) — though the recorded
// durations naturally vary run to run.
//
// # Resetting
//
// Reset zeroes every metric IN PLACE instead of dropping it, so handles
// cached in package variables (internal/bgp does this) stay attached
// and registered names survive into the next snapshot with zero values.
package obs

import (
	"expvar"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotone event count. The zero value is ready to use.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-write-wins float64 measurement. The zero value is
// ready to use.
type Gauge struct{ bits atomic.Uint64 }

// Set records the gauge's current value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last value Set.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Timer aggregates wall-clock durations of one named stage.
type Timer struct {
	mu       sync.Mutex
	count    int64
	total    time.Duration
	min, max time.Duration
}

// Observe folds one stage execution into the aggregate.
func (t *Timer) Observe(d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.count++
	t.total += d
	if t.count == 1 || d < t.min {
		t.min = d
	}
	if d > t.max {
		t.max = d
	}
}

// Mean returns the mean observed duration, or 0 before any Observe.
// It reads recorded aggregates only — callers that must not touch the
// wall clock (the service layer's Retry-After estimate) use it to
// reason about stage cost without a clock read.
func (t *Timer) Mean() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.count == 0 {
		return 0
	}
	return t.total / time.Duration(t.count)
}

// Start begins timing a stage execution; the returned func stops the
// clock and records the elapsed wall time:
//
//	defer timer.Start()()
func (t *Timer) Start() func() {
	t0 := time.Now()
	return func() { t.Observe(time.Since(t0)) }
}

// Registry holds a namespace of metrics. The zero value is not usable;
// call NewRegistry (or use Default).
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer

	lmu       sync.Mutex
	listeners map[int]func(name string, begin bool)
	nextLis   int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		timers:   make(map[string]*Timer),
	}
}

// OnStage registers fn to be called at the begin (begin=true) and end
// (begin=false) of every stage started through StartStage on this
// registry. The returned cancel func unregisters it; after cancel
// returns fn will not be called again. Listeners run synchronously on
// the instrumented goroutine, so fn must be fast and must not call back
// into StartStage.
//
// Listeners exist so coarse build pipelines can be observed live — the
// service layer's build-progress endpoint subscribes here to learn
// which scenario phase is running without polling snapshots.
func (r *Registry) OnStage(fn func(name string, begin bool)) (cancel func()) {
	r.lmu.Lock()
	defer r.lmu.Unlock()
	if r.listeners == nil {
		r.listeners = make(map[int]func(string, bool))
	}
	id := r.nextLis
	r.nextLis++
	r.listeners[id] = fn
	return func() {
		r.lmu.Lock()
		defer r.lmu.Unlock()
		delete(r.listeners, id)
	}
}

func (r *Registry) notifyStage(name string, begin bool) {
	r.lmu.Lock()
	if len(r.listeners) == 0 {
		r.lmu.Unlock()
		return
	}
	// Deterministic dispatch order (maporder): ids ascend.
	ids := make([]int, 0, len(r.listeners))
	for id := range r.listeners {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	fns := make([]func(string, bool), 0, len(ids))
	for _, id := range ids {
		fns = append(fns, r.listeners[id])
	}
	r.lmu.Unlock()
	for _, fn := range fns {
		fn(name, begin)
	}
}

// StartStage starts timing a named stage on this registry and notifies
// stage listeners of the begin; the returned func records the elapsed
// wall time and notifies the end:
//
//	defer reg.StartStage("scenario/topology")()
func (r *Registry) StartStage(name string) func() {
	r.notifyStage(name, true)
	stop := r.Timer(name).Start()
	return func() {
		stop()
		r.notifyStage(name, false)
	}
}

// Counter returns the named counter, creating it at zero on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it at zero on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns the named stage timer, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	r.mu.RLock()
	t := r.timers[name]
	r.mu.RUnlock()
	if t != nil {
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t = r.timers[name]; t == nil {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// Reset zeroes every registered metric in place, preserving handles and
// registered names (see the package comment).
func (r *Registry) Reset() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.bits.Store(0)
	}
	for _, t := range r.timers {
		t.mu.Lock()
		t.count, t.total, t.min, t.max = 0, 0, 0, 0
		t.mu.Unlock()
	}
}

// StageStat is one timer's aggregate in a Snapshot. Durations are
// nanoseconds of wall clock.
type StageStat struct {
	Name    string `json:"name"`
	Count   int64  `json:"count"`
	TotalNS int64  `json:"total_ns"`
	MinNS   int64  `json:"min_ns"`
	MaxNS   int64  `json:"max_ns"`
	MeanNS  int64  `json:"mean_ns"`
}

// Snapshot is a point-in-time copy of a registry: counters and gauges
// by name, stage timers sorted by name. It marshals deterministically
// (encoding/json renders map keys in sorted order).
type Snapshot struct {
	Counters map[string]int64   `json:"counters"`
	Gauges   map[string]float64 `json:"gauges"`
	Stages   []StageStat        `json:"stages"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters: make(map[string]int64, len(r.counters)),
		Gauges:   make(map[string]float64, len(r.gauges)),
		Stages:   make([]StageStat, 0, len(r.timers)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	// Stage order is part of the snapshot contract: walk sorted timer
	// names instead of map order (maporder).
	names := make([]string, 0, len(r.timers))
	for name := range r.timers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := r.timers[name]
		t.mu.Lock()
		st := StageStat{
			Name:    name,
			Count:   t.count,
			TotalNS: int64(t.total),
			MinNS:   int64(t.min),
			MaxNS:   int64(t.max),
		}
		if t.count > 0 {
			st.MeanNS = int64(t.total) / t.count
		}
		t.mu.Unlock()
		s.Stages = append(s.Stages, st)
	}
	return s
}

// PublishExpvar exposes the registry as one expvar variable (a JSON
// snapshot under the given name, served at /debug/vars). expvar panics
// on duplicate names, so call this at most once per name per process —
// cmd/routelab does it only when -debug-addr is set.
func (r *Registry) PublishExpvar(name string) {
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// --- default registry -------------------------------------------------

var defaultRegistry = NewRegistry()

// Default is the process-wide registry every instrumented package
// records into; cmd/routelab snapshots it for -metrics-json.
func Default() *Registry { return defaultRegistry }

// Add bumps a counter in the default registry.
func Add(name string, delta int64) { defaultRegistry.Counter(name).Add(delta) }

// Inc bumps a counter in the default registry by one.
func Inc(name string) { defaultRegistry.Counter(name).Inc() }

// SetGauge sets a gauge in the default registry.
func SetGauge(name string, v float64) { defaultRegistry.Gauge(name).Set(v) }

// Observe records one duration on a stage timer in the default registry.
func Observe(name string, d time.Duration) { defaultRegistry.Timer(name).Observe(d) }

// StartStage starts timing a named stage on the default registry,
// notifying any registered stage listeners:
//
//	defer obs.StartStage("scenario/topology")()
func StartStage(name string) func() { return defaultRegistry.StartStage(name) }

// OnStage registers a stage listener on the default registry (see
// Registry.OnStage).
func OnStage(fn func(name string, begin bool)) (cancel func()) {
	return defaultRegistry.OnStage(fn)
}

// Snap snapshots the default registry.
func Snap() Snapshot { return defaultRegistry.Snapshot() }

// Reset zeroes the default registry in place (tests and the bench
// harness use this to scope counters to one run).
func Reset() { defaultRegistry.Reset() }
