package obs

import (
	"encoding/json"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestConcurrentUpdates hammers one counter, one gauge, and one timer
// from many goroutines; under -race this doubles as the data-race gate
// for every update path.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Counter("hits").Inc()
				r.Gauge("load").Set(float64(g))
				r.Timer("stage").Observe(time.Duration(i%7+1) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()

	snap := r.Snapshot()
	if got, want := snap.Counters["hits"], int64(goroutines*perG); got != want {
		t.Errorf("hits = %d, want %d", got, want)
	}
	if len(snap.Stages) != 1 {
		t.Fatalf("stages = %v, want one", snap.Stages)
	}
	st := snap.Stages[0]
	if st.Count != goroutines*perG {
		t.Errorf("stage count = %d, want %d", st.Count, goroutines*perG)
	}
	if st.MinNS <= 0 || st.MaxNS < st.MinNS || st.TotalNS < st.MaxNS {
		t.Errorf("implausible stage aggregate: %+v", st)
	}
	if st.MeanNS <= 0 || st.MeanNS > st.MaxNS || st.MeanNS < st.MinNS {
		t.Errorf("mean %d outside [min %d, max %d]", st.MeanNS, st.MinNS, st.MaxNS)
	}
}

// TestConcurrentLookup races get-or-create on the same names; every
// goroutine must get the same handle.
func TestConcurrentLookup(t *testing.T) {
	r := NewRegistry()
	const goroutines = 32
	handles := make([]*Counter, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			handles[g] = r.Counter("shared")
			handles[g].Inc()
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if handles[g] != handles[0] {
			t.Fatalf("goroutine %d got a different handle", g)
		}
	}
	if got := r.Counter("shared").Value(); got != goroutines {
		t.Errorf("shared = %d, want %d", got, goroutines)
	}
}

// TestSnapshotDeterminism takes two snapshots of a quiescent registry
// and requires them — and their JSON renderings — to be identical.
func TestSnapshotDeterminism(t *testing.T) {
	r := NewRegistry()
	// Register in an order unlike the sorted output.
	r.Counter("z.last").Add(3)
	r.Counter("a.first").Add(1)
	r.Gauge("m.middle").Set(0.25)
	r.Timer("stage/b").Observe(2 * time.Millisecond)
	r.Timer("stage/a").Observe(time.Millisecond)
	r.Timer("stage/a").Observe(3 * time.Millisecond)

	s1, s2 := r.Snapshot(), r.Snapshot()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("snapshots differ:\n%+v\n%+v", s1, s2)
	}
	j1, err := json.Marshal(s1)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(s2)
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Fatalf("JSON renderings differ:\n%s\n%s", j1, j2)
	}
	if s1.Stages[0].Name != "stage/a" || s1.Stages[1].Name != "stage/b" {
		t.Errorf("stages not sorted by name: %+v", s1.Stages)
	}
	if got := s1.Stages[0]; got.Count != 2 || got.MinNS != int64(time.Millisecond) ||
		got.MaxNS != int64(3*time.Millisecond) || got.TotalNS != int64(4*time.Millisecond) {
		t.Errorf("stage/a aggregate wrong: %+v", got)
	}
}

// TestResetPreservesHandles verifies Reset zeroes metrics without
// detaching previously obtained handles or forgetting names.
func TestResetPreservesHandles(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events")
	c.Add(41)
	r.Timer("stage").Observe(time.Second)
	r.Gauge("g").Set(9)
	r.Reset()

	snap := r.Snapshot()
	if snap.Counters["events"] != 0 || snap.Gauges["g"] != 0 {
		t.Errorf("reset left values: %+v", snap)
	}
	if len(snap.Stages) != 1 || snap.Stages[0].Count != 0 {
		t.Errorf("reset dropped or kept timer state: %+v", snap.Stages)
	}
	c.Inc()
	if got := r.Counter("events").Value(); got != 1 {
		t.Errorf("handle detached by Reset: events = %d, want 1", got)
	}
}

// TestTimerStart checks the Start/stop convenience wrapper records one
// plausible observation.
func TestTimerStart(t *testing.T) {
	r := NewRegistry()
	stop := r.Timer("stage").Start()
	time.Sleep(time.Millisecond)
	stop()
	st := r.Snapshot().Stages[0]
	if st.Count != 1 || st.TotalNS < int64(time.Millisecond) {
		t.Errorf("start/stop recorded %+v, want count 1 and >= 1ms", st)
	}
}

// TestReportRoundTrip asserts a -metrics-json Report survives
// encoding/json both ways, byte- and value-exact.
func TestReportRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("bgp.converge.calls").Add(12)
	r.Counter("scenario.decisions").Add(3400)
	r.Gauge("scenario/campaign.items_per_sec").Set(512.5)
	r.Timer("scenario/topology").Observe(7 * time.Millisecond)

	rep := NewReport()
	rep.Command = "routelab -scale 0.1 table1"
	rep.Experiment = "table1"
	rep.Seed = 2015
	rep.Scale = 0.1
	rep.Workers = 4
	rep.WallNS = int64(3 * time.Second)
	rep.Metrics = r.Snapshot()

	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, back) {
		t.Fatalf("round trip changed the report:\n%+v\n%+v", rep, back)
	}
	data2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatalf("re-marshal differs:\n%s\n%s", data, data2)
	}
}

// TestReportWriteFile exercises the file path quickstart CI depends on.
func TestReportWriteFile(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	rep := NewReport()
	rep.Metrics = r.Snapshot()
	path := t.TempDir() + "/metrics.json"
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	var back Report
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != ReportSchema {
		t.Errorf("schema = %q, want %q", back.Schema, ReportSchema)
	}
}

// TestBenchReportValidate covers the malformed emissions the CI
// bench-smoke job must reject.
func TestBenchReportValidate(t *testing.T) {
	ok := NewBenchReport()
	ok.Benchmarks = []BenchResult{
		{Name: "BenchmarkA", N: 1, NsPerOp: 100, AllocsPerOp: 2, BytesPerOp: 64},
		{Name: "BenchmarkB", N: 3, NsPerOp: 5},
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*BenchReport)
	}{
		{"wrong schema", func(r *BenchReport) { r.Schema = "nope/v0" }},
		{"no go version", func(r *BenchReport) { r.GoVersion = "" }},
		{"empty", func(r *BenchReport) { r.Benchmarks = nil }},
		{"unnamed", func(r *BenchReport) { r.Benchmarks[0].Name = "" }},
		{"duplicate", func(r *BenchReport) { r.Benchmarks[1].Name = r.Benchmarks[0].Name }},
		{"zero n", func(r *BenchReport) { r.Benchmarks[0].N = 0 }},
		{"zero ns", func(r *BenchReport) { r.Benchmarks[0].NsPerOp = 0 }},
		{"negative allocs", func(r *BenchReport) { r.Benchmarks[0].AllocsPerOp = -1 }},
		{"unsorted", func(r *BenchReport) {
			r.Benchmarks[0], r.Benchmarks[1] = r.Benchmarks[1], r.Benchmarks[0]
		}},
	}
	for _, tc := range cases {
		bad := NewBenchReport()
		bad.Benchmarks = append([]BenchResult(nil), ok.Benchmarks...)
		tc.mutate(&bad)
		if err := bad.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a malformed report", tc.name)
		}
	}
}

// TestBenchReportFileRoundTrip writes, re-reads, and re-validates an
// emission — the exact path cmd/benchcheck takes in CI.
func TestBenchReportFileRoundTrip(t *testing.T) {
	rep := NewBenchReport()
	rep.Benchmarks = []BenchResult{{Name: "BenchmarkX", N: 2, NsPerOp: 1234.5, AllocsPerOp: 7, BytesPerOp: 4096}}
	reg := NewRegistry()
	reg.Counter("bgp.converge.calls").Add(99)
	rep.Metrics = reg.Snapshot()

	path := t.TempDir() + "/BENCH_routelab.json"
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBenchReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, back) {
		t.Fatalf("round trip changed the report:\n%+v\n%+v", rep, back)
	}
}

// TestDefaultHelpers sanity-checks the package-level convenience API
// against the default registry.
func TestDefaultHelpers(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Add("test.counter", 2)
	Inc("test.counter")
	SetGauge("test.gauge", 1.5)
	Observe("test.stage", time.Millisecond)
	done := StartStage("test.stage")
	done()
	snap := Snap()
	if snap.Counters["test.counter"] != 3 {
		t.Errorf("counter = %d, want 3", snap.Counters["test.counter"])
	}
	if snap.Gauges["test.gauge"] != 1.5 {
		t.Errorf("gauge = %v, want 1.5", snap.Gauges["test.gauge"])
	}
	found := false
	for _, st := range snap.Stages {
		if st.Name == "test.stage" && st.Count == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("stage not aggregated: %+v", snap.Stages)
	}
}

// TestOnStageListeners checks the stage-event subscription contract:
// begin/end pairs in order, multiple listeners, and that cancel stops
// delivery immediately.
func TestOnStageListeners(t *testing.T) {
	r := NewRegistry()
	type ev struct {
		name  string
		begin bool
	}
	var got []ev
	cancel := r.OnStage(func(name string, begin bool) {
		got = append(got, ev{name, begin})
	})

	stop := r.StartStage("phase/a")
	stop()
	r.StartStage("phase/b")()

	want := []ev{{"phase/a", true}, {"phase/a", false}, {"phase/b", true}, {"phase/b", false}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("events = %+v, want %+v", got, want)
	}

	cancel()
	r.StartStage("phase/c")()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("listener fired after cancel: %+v", got)
	}

	// The timer still aggregates even with no listeners attached.
	snap := r.Snapshot()
	names := map[string]int64{}
	for _, st := range snap.Stages {
		names[st.Name] = st.Count
	}
	for _, n := range []string{"phase/a", "phase/b", "phase/c"} {
		if names[n] != 1 {
			t.Errorf("stage %q count = %d, want 1", n, names[n])
		}
	}
}

// TestOnStageConcurrent subscribes and unsubscribes while stages run on
// other goroutines — a -race check that the listener table is safe.
func TestOnStageConcurrent(t *testing.T) {
	r := NewRegistry()
	var fired atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				r.StartStage("phase/hot")()
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				cancel := r.OnStage(func(string, bool) { fired.Add(1) })
				cancel()
			}
		}()
	}
	wg.Wait()
}
