// Report types: the structured JSON documents routelab emits so the
// perf trajectory is machine-readable — a run Report (-metrics-json)
// and a BenchReport (BENCH_routelab.json, written by the benchmark
// harness and validated by cmd/benchcheck and the CI bench-smoke job).
package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
)

// Schema identifiers; bump the suffix on breaking shape changes so
// downstream consumers can dispatch on it.
const (
	ReportSchema = "routelab-metrics/v1"
	BenchSchema  = "routelab-bench/v1"
)

// Report is the structured run report behind routelab's -metrics-json:
// what ran, on what runtime, how long, and the full metrics snapshot
// (per-stage wall-clock timings plus every counter and gauge).
type Report struct {
	Schema     string  `json:"schema"`
	Command    string  `json:"command,omitempty"`
	Experiment string  `json:"experiment,omitempty"`
	Seed       int64   `json:"seed"`
	Scale      float64 `json:"scale"`
	Workers    int     `json:"workers"`

	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	// WallNS is the end-to-end wall clock of the run in nanoseconds.
	WallNS int64 `json:"wall_ns"`

	Metrics Snapshot `json:"metrics"`
}

// NewReport returns a Report with the schema and runtime fields filled
// in; the caller sets the run-shape fields and the metrics snapshot.
func NewReport() Report {
	return Report{
		Schema:     ReportSchema,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// WriteFile writes the report as indented JSON.
func (r Report) WriteFile(path string) error {
	return writeJSON(path, r)
}

// BenchResult is one benchmark's outcome in a BenchReport.
type BenchResult struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// BenchReport is the machine-readable benchmark emission
// (BENCH_routelab.json): per-benchmark ns/op and allocs/op plus the obs
// counters the benchmarked code recorded.
type BenchReport struct {
	Schema     string `json:"schema"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	Benchmarks []BenchResult `json:"benchmarks"`
	Metrics    Snapshot      `json:"metrics"`
}

// NewBenchReport returns a BenchReport with the schema and runtime
// fields filled in.
func NewBenchReport() BenchReport {
	return BenchReport{
		Schema:     BenchSchema,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// Validate checks the report is a well-formed emission: right schema,
// at least one benchmark, and every benchmark named, run, and timed.
// cmd/benchcheck (and through it the CI bench-smoke job) fails on the
// first violation.
func (r BenchReport) Validate() error {
	if r.Schema != BenchSchema {
		return fmt.Errorf("schema %q, want %q", r.Schema, BenchSchema)
	}
	if r.GoVersion == "" {
		return fmt.Errorf("missing go_version")
	}
	if len(r.Benchmarks) == 0 {
		return fmt.Errorf("no benchmarks recorded")
	}
	seen := make(map[string]bool, len(r.Benchmarks))
	for i, b := range r.Benchmarks {
		switch {
		case b.Name == "":
			return fmt.Errorf("benchmark %d: empty name", i)
		case seen[b.Name]:
			return fmt.Errorf("benchmark %q: duplicate entry", b.Name)
		case b.N <= 0:
			return fmt.Errorf("benchmark %q: n = %d, want > 0", b.Name, b.N)
		case b.NsPerOp <= 0:
			return fmt.Errorf("benchmark %q: ns_per_op = %g, want > 0", b.Name, b.NsPerOp)
		case b.AllocsPerOp < 0 || b.BytesPerOp < 0:
			return fmt.Errorf("benchmark %q: negative alloc stats", b.Name)
		}
		seen[b.Name] = true
	}
	if !sort.SliceIsSorted(r.Benchmarks, func(i, j int) bool {
		return r.Benchmarks[i].Name < r.Benchmarks[j].Name
	}) {
		return fmt.Errorf("benchmarks not sorted by name")
	}
	return nil
}

// WriteFile validates the report and writes it as indented JSON.
func (r BenchReport) WriteFile(path string) error {
	if err := r.Validate(); err != nil {
		return fmt.Errorf("obs: invalid bench report: %w", err)
	}
	return writeJSON(path, r)
}

// ReadBenchReport reads and validates an emission.
func ReadBenchReport(path string) (BenchReport, error) {
	var r BenchReport
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("obs: %s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return r, fmt.Errorf("obs: %s: %w", path, err)
	}
	return r, nil
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal %s: %w", path, err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
