package lookingglass

import (
	"math/rand"
	"testing"

	"routelab/internal/asn"
	"routelab/internal/bgp"
	"routelab/internal/topology"
)

func fixture(t *testing.T) (*topology.Topology, *bgp.RIB, *Directory) {
	t.Helper()
	topo := topology.Generate(93, topology.TestConfig())
	e := bgp.New(topo, 93)
	cdn := topo.Names["cdn-major"]
	rib := e.ComputeRIB(topo.AS(cdn).Prefixes, 0)
	d := Deploy(topo, rib, rand.New(rand.NewSource(93)), 0.5)
	return topo, rib, d
}

func TestDeployCoverage(t *testing.T) {
	topo, _, d := fixture(t)
	if d.NumServers() == 0 {
		t.Fatal("no servers deployed")
	}
	// No stub or content AS runs one.
	for _, a := range topo.ASesOfClass(topology.Stub) {
		if d.Has(a) {
			t.Fatalf("stub %v runs a looking glass", a)
		}
	}
	full := Deploy(topo, nil, rand.New(rand.NewSource(1)), 1.0)
	transit := len(topo.ASesOfClass(topology.Tier1)) + len(topo.ASesOfClass(topology.LargeISP)) +
		len(topo.ASesOfClass(topology.SmallISP)) + len(topo.ASesOfClass(topology.Research))
	if full.NumServers() != transit {
		t.Errorf("full coverage = %d, want %d", full.NumServers(), transit)
	}
}

func TestQueryAgreesWithRIB(t *testing.T) {
	topo, rib, d := fixture(t)
	cdn := topo.Names["cdn-major"]
	p := topo.AS(cdn).Prefixes[0]
	addr := p.Nth(1200)
	checked := 0
	for _, a := range topo.ASesOfClass(topology.LargeISP) {
		if !d.Has(a) {
			continue
		}
		e, err := d.Query(a, addr)
		if err != nil {
			continue
		}
		checked++
		rt, ok := rib.Lookup(a, addr)
		if !ok {
			t.Fatalf("%v answered a query without a route", a)
		}
		if e.NextHop != rt.NextHop || e.Path[0] != a {
			t.Fatalf("%v: answer %+v disagrees with RIB %v", a, e, rt)
		}
	}
	if checked == 0 {
		t.Fatal("no queries checked")
	}
}

func TestQueryErrors(t *testing.T) {
	topo, _, d := fixture(t)
	stub := topo.ASesOfClass(topology.Stub)[0]
	if _, err := d.Query(stub, asn.AddrFrom4(10, 0, 0, 1)); err == nil {
		t.Error("query to a server-less AS succeeded")
	}
	// An address outside the computed RIB.
	var lg asn.ASN
	for _, a := range topo.ASesOfClass(topology.LargeISP) {
		if d.Has(a) {
			lg = a
			break
		}
	}
	if lg.IsZero() {
		t.Skip("no large ISP got a server at this seed")
	}
	if _, err := d.Query(lg, asn.AddrFrom4(9, 9, 9, 9)); err == nil {
		t.Error("query for an unrouted address succeeded")
	}
}

func TestHasRouteAndRouteVia(t *testing.T) {
	topo, rib, d := fixture(t)
	cdn := topo.Names["cdn-major"]
	p := topo.AS(cdn).Prefixes[0]
	for _, a := range topo.ASesOfClass(topology.LargeISP) {
		if !d.Has(a) {
			continue
		}
		has, err := d.HasRoute(a, p)
		if err != nil {
			t.Fatal(err)
		}
		rt, ok := rib.Lookup(a, p.Nth(1))
		if has != ok {
			t.Fatalf("%v HasRoute=%v but RIB ok=%v", a, has, ok)
		}
		if !ok {
			continue
		}
		via, err := d.RouteVia(a, p, rt.NextHop)
		if err != nil || !via {
			t.Fatalf("%v RouteVia(own next hop) = %v, %v", a, via, err)
		}
		other, err := d.RouteVia(a, p, asn.ASN(999999))
		if err != nil || other {
			t.Fatalf("%v RouteVia(bogus) = %v, %v", a, other, err)
		}
		return
	}
	t.Skip("no large ISP got a server at this seed")
}
