// Package lookingglass emulates the operator-run route servers the
// paper uses to validate prefix-specific-policy inferences (§4.3): a
// subset of ASes expose a "show ip bgp <prefix>" interface answering
// from their converged tables.
//
// Coverage is partial by construction — the paper found servers in only
// 28 of 149 neighboring ASes — and the answering AS reveals only its
// OWN best route, never its neighbors'.
package lookingglass

import (
	"fmt"
	"math/rand"
	"sort"

	"routelab/internal/asn"
	"routelab/internal/bgp"
	"routelab/internal/topology"
)

// Directory is the set of reachable looking-glass servers.
type Directory struct {
	rib   *bgp.RIB
	hosts map[asn.ASN]bool
}

// Deploy stands up looking-glass servers at a fraction of transit ASes
// (stubs rarely run them). The same converged RIB that drives the data
// plane answers queries.
func Deploy(topo *topology.Topology, rib *bgp.RIB, rng *rand.Rand, coverage float64) *Directory {
	d := &Directory{rib: rib, hosts: make(map[asn.ASN]bool)}
	var cands []asn.ASN
	for _, cls := range []topology.Class{topology.Tier1, topology.LargeISP, topology.SmallISP, topology.Research} {
		cands = append(cands, topo.ASesOfClass(cls)...)
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	for _, a := range cands {
		if rng.Float64() < coverage {
			d.hosts[a] = true
		}
	}
	return d
}

// Has reports whether an AS runs a reachable looking glass.
func (d *Directory) Has(a asn.ASN) bool { return d.hosts[a] }

// NumServers returns the directory size.
func (d *Directory) NumServers() int { return len(d.hosts) }

// Entry is one "show ip bgp" answer.
type Entry struct {
	Prefix  asn.Prefix
	Path    []asn.ASN // the answering AS first, origin last
	NextHop asn.ASN
}

// Query asks the AS's route server for its best route covering addr.
// It fails when the AS runs no server or holds no route.
func (d *Directory) Query(a asn.ASN, addr asn.Addr) (Entry, error) {
	if !d.hosts[a] {
		return Entry{}, fmt.Errorf("lookingglass: %s runs no public route server", a)
	}
	rt, ok := d.rib.Lookup(a, addr)
	if !ok {
		return Entry{}, fmt.Errorf("lookingglass: %s has no route covering %s", a, addr)
	}
	return Entry{
		Prefix:  rt.Prefix,
		Path:    rt.ASPathFrom(a),
		NextHop: rt.NextHop,
	}, nil
}

// HasRoute reports whether the AS's table covers the prefix — the §4.3
// validation question ("did neighbor N really not receive prefix P from
// origin O?"). The error distinguishes "no server" from "no route".
func (d *Directory) HasRoute(a asn.ASN, p asn.Prefix) (bool, error) {
	if !d.hosts[a] {
		return false, fmt.Errorf("lookingglass: %s runs no public route server", a)
	}
	_, ok := d.rib.Lookup(a, p.Nth(1))
	return ok, nil
}

// RouteVia reports whether the AS's best route for the prefix goes
// DIRECTLY through the given next hop.
func (d *Directory) RouteVia(a asn.ASN, p asn.Prefix, nextHop asn.ASN) (bool, error) {
	e, err := d.Query(a, p.Nth(1))
	if err != nil {
		return false, err
	}
	return e.NextHop == nextHop, nil
}
