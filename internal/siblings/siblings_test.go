package siblings

import (
	"testing"

	"routelab/internal/asn"
	"routelab/internal/dnsdb"
	"routelab/internal/registry"
	"routelab/internal/topology"
)

func TestInferGroupsByZone(t *testing.T) {
	reg := registry.New()
	dns := dnsdb.New()
	add := func(a asn.ASN, email string) {
		if err := reg.AddAS(registry.ASRecord{ASN: a, Country: "AA", Registry: registry.ARIN, Email: email}); err != nil {
			t.Fatal(err)
		}
	}
	add(1, "noc@dish.example")
	add(2, "noc@dishaccess.example")
	add(3, "noc@unrelated.example")
	dns.AddSOA(dnsdb.SOARecord{Domain: "dish.example", Zone: "dishnetwork.example"})
	dns.AddSOA(dnsdb.SOARecord{Domain: "dishaccess.example", Zone: "dishnetwork.example"})

	g := Infer(reg, dns)
	if g.NumGroups() != 1 {
		t.Fatalf("NumGroups = %d, want 1", g.NumGroups())
	}
	if !g.SameOrg(1, 2) {
		t.Error("1 and 2 share a zone and must be siblings")
	}
	if g.SameOrg(1, 3) || g.SameOrg(3, 1) {
		t.Error("3 is unrelated")
	}
	if members := g.GroupOf(1); len(members) != 2 {
		t.Errorf("GroupOf(1) = %v", members)
	}
	if g.GroupOf(3) != nil {
		t.Error("ungrouped AS must return nil group")
	}
}

func TestFreemailExcluded(t *testing.T) {
	reg := registry.New()
	dns := dnsdb.New()
	for i, email := range []string{"a@hotmail.example", "b@hotmail.example", "c@ripe.example", "d@ripe.example"} {
		if err := reg.AddAS(registry.ASRecord{ASN: asn.ASN(i + 1), Country: "AA", Registry: registry.ARIN, Email: email}); err != nil {
			t.Fatal(err)
		}
	}
	g := Infer(reg, dns)
	if g.NumGroups() != 0 {
		t.Fatalf("freemail/RIR-hosted contacts must not form groups, got %d", g.NumGroups())
	}
	if g.SameOrg(1, 2) {
		t.Error("hotmail-hosted ASes grouped")
	}
}

func TestSameDomainWithoutSOAGroups(t *testing.T) {
	reg := registry.New()
	dns := dnsdb.New()
	for i := 1; i <= 3; i++ {
		if err := reg.AddAS(registry.ASRecord{ASN: asn.ASN(i), Country: "AA", Registry: registry.ARIN, Email: "noc@megacorp.example"}); err != nil {
			t.Fatal(err)
		}
	}
	g := Infer(reg, dns)
	if !g.SameOrg(1, 2) || !g.SameOrg(2, 3) {
		t.Error("identical contact domains must group even without SOA records")
	}
}

// On a generated topology, inferred sibling groups must be a SUBSET of
// ground-truth organizations (no false merges), and freemail-hidden
// groups must be missing (imperfect recall — the paper's situation).
func TestInferOnGeneratedTopology(t *testing.T) {
	topo := topology.Generate(17, topology.TestConfig())
	g := Infer(topo.Registry, topo.DNS)
	truth := topo.Orgs()
	orgOf := map[asn.ASN]string{}
	for org, members := range truth {
		for _, m := range members {
			orgOf[m] = string(org)
		}
	}
	// Precision: every inferred pair must share a ground-truth org.
	for _, a := range topo.ASNs() {
		for _, b := range g.GroupOf(a) {
			if b == a {
				continue
			}
			if orgOf[a] != orgOf[b] {
				t.Fatalf("false sibling merge: %s (%s) with %s (%s)", a, orgOf[a], b, orgOf[b])
			}
		}
	}
	// Recall: at least one ground-truth multi-AS org inferred, and if a
	// freemail group exists it must be missed.
	truthMulti, inferredCovered := 0, 0
	for _, members := range truth {
		if len(members) < 2 {
			continue
		}
		truthMulti++
		if g.SameOrg(members[0], members[1]) {
			inferredCovered++
		}
	}
	if truthMulti == 0 {
		t.Skip("no multi-AS orgs generated")
	}
	if inferredCovered == 0 {
		t.Error("inference recovered no sibling groups at all")
	}
	t.Logf("sibling recall: %d/%d ground-truth orgs recovered", inferredCovered, truthMulti)
}
