// Package siblings groups ASes into organizations the way §4.2 (after
// Cai et al.) does: by the e-mail domains in whois records — the field
// with the best precision/recall — tied together through DNS SOA
// records, with contacts at shared mail providers and RIR-hosted
// addresses excluded.
//
// The result intentionally differs from ground truth: organizations
// whose whois contacts sit at freemail hosts are invisible here, so a
// residue of sibling-caused "violations" survives even after the Sibs
// refinement — as in the paper.
package siblings

import (
	"sort"

	"routelab/internal/asn"
	"routelab/internal/dnsdb"
	"routelab/internal/registry"
)

// Groups is the inferred AS-to-organization mapping.
type Groups struct {
	groupOf map[asn.ASN]int
	members [][]asn.ASN
}

// Infer builds sibling groups from whois + SOA evidence.
func Infer(reg *registry.Registry, dns *dnsdb.DB) *Groups {
	byZone := make(map[string][]asn.ASN)
	for _, a := range reg.ASNs() {
		rec, ok := reg.Whois(a)
		if !ok {
			continue
		}
		domain := rec.EmailDomain()
		if domain == "" || registry.FreemailDomains[domain] {
			continue
		}
		zone := dns.Zone(domain)
		byZone[zone] = append(byZone[zone], a)
	}
	zones := make([]string, 0, len(byZone))
	for z, ms := range byZone {
		if len(ms) >= 2 {
			zones = append(zones, z)
		}
	}
	sort.Strings(zones)
	g := &Groups{groupOf: make(map[asn.ASN]int)}
	for _, z := range zones {
		ms := byZone[z]
		sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
		id := len(g.members)
		g.members = append(g.members, ms)
		for _, m := range ms {
			g.groupOf[m] = id + 1 // 0 means ungrouped
		}
	}
	return g
}

// SameOrg reports whether two ASes were inferred to share an
// organization.
func (g *Groups) SameOrg(a, b asn.ASN) bool {
	ga := g.groupOf[a]
	return ga != 0 && ga == g.groupOf[b]
}

// GroupOf returns the members of a's group (nil when ungrouped). The
// slice is shared; callers must not modify it.
func (g *Groups) GroupOf(a asn.ASN) []asn.ASN {
	id := g.groupOf[a]
	if id == 0 {
		return nil
	}
	return g.members[id-1]
}

// NumGroups returns the number of multi-AS organizations found.
func (g *Groups) NumGroups() int { return len(g.members) }
