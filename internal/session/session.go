// Package session implements a minimal BGP speaker over TCP: the OPEN/
// KEEPALIVE handshake, message framing, and update exchange. It is the
// transport the collector emulation uses so that routelab's "BGP feeds"
// actually cross a socket in RFC 4271 format.
//
// The state machine is deliberately small (Idle → OpenSent → OpenConfirm
// → Established); there are no timers beyond the hold-time handshake
// value because the simulator drives sessions synchronously.
package session

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"routelab/internal/asn"
	"routelab/internal/wire"
)

// Speaker is one side of an established BGP session.
type Speaker struct {
	conn     net.Conn
	r        *bufio.Reader
	LocalAS  asn.ASN
	RemoteAS asn.ASN
	// sendMu serializes encode+write: Run's keepalive goroutine sends
	// concurrently with the owner's UPDATEs/NOTIFICATIONs, and BGP
	// messages must not interleave on the wire.
	sendMu sync.Mutex
	buf    []byte
}

// Config identifies the local end.
type Config struct {
	AS       asn.ASN
	BGPID    uint32
	HoldTime uint16
	// Timeout bounds the handshake and every read.
	Timeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.HoldTime == 0 {
		c.HoldTime = 90
	}
	if c.Timeout == 0 {
		c.Timeout = 5 * time.Second
	}
	return c
}

// Establish performs the OPEN/KEEPALIVE handshake over an existing
// connection (either side may initiate; BGP's handshake is symmetric).
func Establish(conn net.Conn, cfg Config) (*Speaker, error) {
	cfg = cfg.withDefaults()
	s := &Speaker{conn: conn, r: bufio.NewReader(conn), LocalAS: cfg.AS}
	deadline := time.Now().Add(cfg.Timeout)
	if err := conn.SetDeadline(deadline); err != nil {
		return nil, fmt.Errorf("session: set deadline: %w", err)
	}
	open := wire.Open{Version: 4, AS: cfg.AS, HoldTime: cfg.HoldTime, BGPID: cfg.BGPID}
	if err := s.send(open); err != nil {
		return nil, fmt.Errorf("session: send OPEN: %w", err)
	}
	msg, err := s.Recv()
	if err != nil {
		return nil, fmt.Errorf("session: await OPEN: %w", err)
	}
	remote, ok := msg.(wire.Open)
	if !ok {
		return nil, fmt.Errorf("session: expected OPEN, got %s", msg.Type())
	}
	if remote.Version != 4 {
		s.Notify(2, 1, nil) // OPEN error / unsupported version
		return nil, fmt.Errorf("session: unsupported version %d", remote.Version)
	}
	s.RemoteAS = remote.AS
	if err := s.send(wire.Keepalive{}); err != nil {
		return nil, fmt.Errorf("session: send KEEPALIVE: %w", err)
	}
	msg, err = s.Recv()
	if err != nil {
		return nil, fmt.Errorf("session: await KEEPALIVE: %w", err)
	}
	if _, ok := msg.(wire.Keepalive); !ok {
		return nil, fmt.Errorf("session: expected KEEPALIVE, got %s", msg.Type())
	}
	// Established. Clear the handshake deadline; callers manage their own.
	if err := conn.SetDeadline(time.Time{}); err != nil {
		return nil, fmt.Errorf("session: clear deadline: %w", err)
	}
	return s, nil
}

// send encodes and writes one message.
func (s *Speaker) send(m wire.Message) error {
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	s.buf = m.Encode(s.buf[:0])
	_, err := s.conn.Write(s.buf)
	return err
}

// SendUpdate transmits one UPDATE.
func (s *Speaker) SendUpdate(u wire.Update) error {
	if err := s.send(u); err != nil {
		return fmt.Errorf("session: send UPDATE: %w", err)
	}
	return nil
}

// Notify sends a NOTIFICATION (best effort) — the sender must close the
// session afterward, per RFC 4271 §6.
func (s *Speaker) Notify(code, subcode uint8, data []byte) {
	_ = s.send(wire.Notification{Code: code, Subcode: subcode, Data: data})
}

// Recv reads and decodes the next message.
func (s *Speaker) Recv() (wire.Message, error) {
	var hdr [wire.HeaderLen]byte
	if _, err := io.ReadFull(s.r, hdr[:]); err != nil {
		return nil, err
	}
	_, total, err := wire.DecodeHeader(hdr[:])
	if err != nil {
		return nil, err
	}
	full := make([]byte, total)
	copy(full, hdr[:])
	if _, err := io.ReadFull(s.r, full[wire.HeaderLen:]); err != nil {
		return nil, err
	}
	return wire.Decode(full)
}

// Close terminates the session with a Cease notification.
func (s *Speaker) Close() error {
	s.Notify(6, 0, nil) // Cease
	return s.conn.Close()
}

// Run pumps an established session: KEEPALIVEs go out at a third of the
// hold time (RFC 4271 §4.4's recommendation), the hold timer tears the
// session down if the peer goes silent, and every received UPDATE is
// handed to onUpdate. Run returns when the peer sends NOTIFICATION,
// closes, or the hold timer expires.
func (s *Speaker) Run(holdTime time.Duration, onUpdate func(wire.Update)) error {
	if holdTime <= 0 {
		holdTime = 90 * time.Second
	}
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		t := time.NewTicker(holdTime / 3)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if err := s.send(wire.Keepalive{}); err != nil {
					return
				}
			}
		}
	}()
	for {
		if err := s.conn.SetReadDeadline(time.Now().Add(holdTime)); err != nil {
			return fmt.Errorf("session: hold timer: %w", err)
		}
		msg, err := s.Recv()
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				s.Notify(4, 0, nil) // hold timer expired
				s.conn.Close()
				return fmt.Errorf("session: hold timer expired")
			}
			return err
		}
		switch m := msg.(type) {
		case wire.Update:
			if onUpdate != nil {
				onUpdate(m)
			}
		case wire.Keepalive:
			// refreshes the hold timer implicitly
		case wire.Notification:
			s.conn.Close()
			return fmt.Errorf("session: peer sent NOTIFICATION %d/%d", m.Code, m.Subcode)
		default:
			s.Notify(1, 3, nil)
			s.conn.Close()
			return fmt.Errorf("session: unexpected %s in established state", msg.Type())
		}
	}
}
