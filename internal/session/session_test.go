package session

import (
	"math/rand"
	"net"
	"sort"
	"testing"
	"time"

	"routelab/internal/asn"
	"routelab/internal/bgp"
	"routelab/internal/topology"
	"routelab/internal/vantage"
	"routelab/internal/wire"
)

func pipePair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	dialer, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	return dialer, r.c
}

func TestHandshakeAndUpdateExchange(t *testing.T) {
	a, b := pipePair(t)
	defer a.Close()
	defer b.Close()
	type out struct {
		sp  *Speaker
		err error
	}
	ch := make(chan out, 1)
	go func() {
		sp, err := Establish(b, Config{AS: 65001, BGPID: 2})
		ch <- out{sp, err}
	}()
	spA, err := Establish(a, Config{AS: 4200000000, BGPID: 1})
	if err != nil {
		t.Fatal(err)
	}
	rB := <-ch
	if rB.err != nil {
		t.Fatal(rB.err)
	}
	spB := rB.sp
	if spA.RemoteAS != 65001 || spB.RemoteAS != 4200000000 {
		t.Fatalf("remote ASes: %v / %v", spA.RemoteAS, spB.RemoteAS)
	}
	// Exchange an update.
	u := wire.Update{
		Origin:  wire.OriginIGP,
		ASPath:  asn.PathFromASNs(4200000000, 65000),
		NextHop: asn.AddrFrom4(10, 0, 0, 1),
		NLRI:    []asn.Prefix{asn.NewPrefix(asn.AddrFrom4(198, 51, 100, 0), 24)},
	}
	if err := spA.SendUpdate(u); err != nil {
		t.Fatal(err)
	}
	msg, err := spB.Recv()
	if err != nil {
		t.Fatal(err)
	}
	got, ok := msg.(wire.Update)
	if !ok || !got.ASPath.Equal(u.ASPath) {
		t.Fatalf("got %+v", msg)
	}
}

func TestHandshakeTimeout(t *testing.T) {
	a, b := pipePair(t)
	defer a.Close()
	defer b.Close()
	// The other side never answers: Establish must time out quickly.
	_, err := Establish(a, Config{AS: 1, BGPID: 1, Timeout: 200 * time.Millisecond})
	if err == nil {
		t.Fatal("handshake against a silent peer succeeded")
	}
}

func TestHandshakeRejectsNonOpen(t *testing.T) {
	a, b := pipePair(t)
	defer a.Close()
	defer b.Close()
	go func() {
		buf := wire.Keepalive{}.Encode(nil)
		b.Write(buf)
	}()
	if _, err := Establish(a, Config{AS: 1, BGPID: 1, Timeout: time.Second}); err == nil {
		t.Fatal("handshake accepted a KEEPALIVE as OPEN")
	}
}

// End-to-end: feed a collector over real TCP sessions and verify the
// snapshot matches vantage.Collect computed in-process.
func TestCollectorMatchesInProcessCollect(t *testing.T) {
	topo := topology.Generate(81, topology.TestConfig())
	e := bgp.New(topo, 81)
	// A couple of content prefixes keep the test fast.
	var prefixes []asn.Prefix
	for i := 0; i < 2; i++ {
		a := topo.Names["content-"+string(rune('0'+i))]
		prefixes = append(prefixes, topo.AS(a).Prefixes...)
	}
	rib := e.ComputeRIB(prefixes, 0)
	peers := vantage.SelectPeers(topo, rand.New(rand.NewSource(81)), 8)

	col, err := NewCollector("127.0.0.1:0", Config{AS: 64999, BGPID: 99})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range peers {
		if err := ExportRoutes(col.Addr(), p, rib, Config{BGPID: uint32(p)}); err != nil {
			t.Fatalf("export %v: %v", p, err)
		}
	}
	got := col.Snapshot(0)
	want := vantage.Collect(rib, peers, 0)
	if len(got.Entries) != len(want.Entries) {
		t.Fatalf("entry counts: tcp=%d in-process=%d", len(got.Entries), len(want.Entries))
	}
	key := func(e vantage.Entry) string {
		s := e.Peer.String() + "|" + e.Prefix.String()
		for _, a := range e.Path {
			s += "|" + a.String()
		}
		return s
	}
	gk := make([]string, 0, len(got.Entries))
	wk := make([]string, 0, len(want.Entries))
	for _, e := range got.Entries {
		gk = append(gk, key(e))
	}
	for _, e := range want.Entries {
		wk = append(wk, key(e))
	}
	sort.Strings(gk)
	sort.Strings(wk)
	for i := range gk {
		if gk[i] != wk[i] {
			t.Fatalf("entry %d differs:\n tcp: %s\n mem: %s", i, gk[i], wk[i])
		}
	}
}

func TestRunKeepalivesAndUpdates(t *testing.T) {
	a, b := pipePair(t)
	defer a.Close()
	defer b.Close()
	ch := make(chan *Speaker, 1)
	go func() {
		sp, err := Establish(b, Config{AS: 2, BGPID: 2})
		if err != nil {
			ch <- nil
			return
		}
		ch <- sp
	}()
	spA, err := Establish(a, Config{AS: 1, BGPID: 1})
	if err != nil {
		t.Fatal(err)
	}
	spB := <-ch
	if spB == nil {
		t.Fatal("establish failed")
	}
	got := make(chan wire.Update, 4)
	done := make(chan error, 1)
	go func() {
		done <- spB.Run(600*time.Millisecond, func(u wire.Update) { got <- u })
	}()
	u := wire.Update{ASPath: asn.PathFromASNs(1), NextHop: 9,
		NLRI: []asn.Prefix{asn.NewPrefix(asn.AddrFrom4(10, 0, 0, 0), 8)}}
	if err := spA.SendUpdate(u); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-got:
		if !r.ASPath.Equal(u.ASPath) {
			t.Fatalf("update mangled: %v", r)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("update never delivered")
	}
	// Cease ends the run loop.
	spA.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Run returned nil after NOTIFICATION")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not stop on NOTIFICATION")
	}
}

func TestRunHoldTimerExpires(t *testing.T) {
	a, b := pipePair(t)
	defer a.Close()
	defer b.Close()
	ch := make(chan *Speaker, 1)
	go func() {
		sp, _ := Establish(b, Config{AS: 2, BGPID: 2})
		ch <- sp
	}()
	spA, err := Establish(a, Config{AS: 1, BGPID: 1})
	if err != nil {
		t.Fatal(err)
	}
	spB := <-ch
	if spB == nil {
		t.Fatal("establish failed")
	}
	// B runs with a short hold time; A never sends keepalives (no Run).
	errCh := make(chan error, 1)
	go func() { errCh <- spB.Run(300*time.Millisecond, nil) }()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("hold-timer expiry should be an error")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("hold timer never fired")
	}
	_ = spA
}
