package session

import (
	"fmt"
	"net"
	"sync"

	"routelab/internal/asn"
	"routelab/internal/bgp"
	"routelab/internal/vantage"
	"routelab/internal/wire"
)

// Collector is a RouteViews-style collector: it listens for BGP
// sessions, receives each peer's table export, and assembles a
// vantage.Snapshot. It exists so the feed pipeline crosses a real
// socket; the resulting snapshot is identical to vantage.Collect's.
type Collector struct {
	ln  net.Listener
	cfg Config

	mu      sync.Mutex
	entries []vantage.Entry
	wg      sync.WaitGroup
}

// NewCollector starts listening on addr (use "127.0.0.1:0" in tests).
func NewCollector(addr string, cfg Config) (*Collector, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("session: collector listen: %w", err)
	}
	c := &Collector{ln: ln, cfg: cfg}
	c.wg.Add(1)
	go c.acceptLoop()
	return c, nil
}

// Addr returns the listening address.
func (c *Collector) Addr() string { return c.ln.Addr().String() }

func (c *Collector) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.serve(conn)
		}()
	}
}

// serve handshakes one peer and drains its updates until Cease or EOF.
func (c *Collector) serve(conn net.Conn) {
	defer conn.Close()
	sp, err := Establish(conn, c.cfg)
	if err != nil {
		return
	}
	for {
		msg, err := sp.Recv()
		if err != nil {
			return
		}
		switch m := msg.(type) {
		case wire.Update:
			c.ingest(sp.RemoteAS, m)
		case wire.Notification:
			return
		case wire.Keepalive:
			// refresh; nothing to do
		default:
			sp.Notify(1, 3, nil) // message header error / bad type
			return
		}
	}
}

func (c *Collector) ingest(peer asn.ASN, u wire.Update) {
	if len(u.NLRI) == 0 {
		return
	}
	// The AS_PATH as received already starts with the peer (BGP speakers
	// prepend themselves on export); store it verbatim, as RouteViews
	// does.
	path := u.ASPath.Sequence()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, p := range u.NLRI {
		c.entries = append(c.entries, vantage.Entry{
			Peer:   peer,
			Prefix: p,
			Path:   append([]asn.ASN(nil), path...),
		})
	}
}

// Snapshot closes the listener, waits for in-flight sessions, and
// returns everything collected.
func (c *Collector) Snapshot(epoch int) *vantage.Snapshot {
	c.ln.Close()
	c.wg.Wait()
	c.mu.Lock()
	defer c.mu.Unlock()
	return &vantage.Snapshot{Epoch: epoch, Entries: c.entries}
}

// ExportRoutes dials a collector and announces every route of one AS's
// table over a real BGP session — the peer side of the feed.
func ExportRoutes(addr string, peer asn.ASN, rib *bgp.RIB, cfg Config) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("session: export dial: %w", err)
	}
	cfg.AS = peer
	sp, err := Establish(conn, cfg)
	if err != nil {
		conn.Close()
		return err
	}
	defer sp.Close()
	for _, p := range rib.Prefixes() {
		rt, ok := rib.Route(peer, p)
		if !ok {
			continue
		}
		// The path as exported: the peer prepends itself unless it is
		// the origin.
		path := rt.Path
		if !rt.IsOrigin() {
			path = path.Prepend(peer)
		}
		u := wire.Update{
			Origin:  wire.OriginIGP,
			ASPath:  path,
			NextHop: asn.AddrFrom4(192, 0, 2, 1),
			NLRI:    []asn.Prefix{p},
		}
		if err := sp.SendUpdate(u); err != nil {
			return fmt.Errorf("session: export %s: %w", p, err)
		}
	}
	return nil
}
