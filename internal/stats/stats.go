// Package stats holds the small numeric helpers the experiment reports
// share: percentage formatting guards, cumulative distributions, and a
// skew summary for ranked contribution plots (Figure 2).
package stats

import "sort"

// Pct returns 100*part/total, or 0 when total is 0.
func Pct(part, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(part) / float64(total)
}

// Frac returns part/total, or 0 when total is 0.
func Frac(part, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(part) / float64(total)
}

// CDF computes the cumulative fraction series of a descending-count
// ranking: out[i] = sum(counts[0..i]) / sum(counts). Counts must be
// non-negative; the input is not reordered.
func CDF(counts []int) []float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	out := make([]float64, len(counts))
	run := 0
	for i, c := range counts {
		run += c
		if total > 0 {
			out[i] = float64(run) / float64(total)
		}
	}
	return out
}

// TopShare returns the fraction of the total contributed by the k
// largest values.
func TopShare(counts []int, k int) float64 {
	cp := append([]int(nil), counts...)
	sort.Sort(sort.Reverse(sort.IntSlice(cp)))
	if k > len(cp) {
		k = len(cp)
	}
	top, total := 0, 0
	for i, c := range cp {
		if i < k {
			top += c
		}
		total += c
	}
	return Frac(top, total)
}

// Gini computes the Gini coefficient of a non-negative count vector — a
// scalar skew measure used to compare Figure 2's source vs destination
// imbalance. 0 is perfectly even, values near 1 are maximally skewed.
func Gini(counts []int) float64 {
	n := len(counts)
	if n == 0 {
		return 0
	}
	cp := append([]int(nil), counts...)
	sort.Ints(cp)
	var cum, total float64
	for _, c := range cp {
		total += float64(c)
	}
	if total == 0 {
		return 0
	}
	var lorenz float64
	for _, c := range cp {
		cum += float64(c)
		lorenz += cum
	}
	// Gini = 1 - 2 * (area under Lorenz curve).
	return 1 - (2*lorenz-total)/(float64(n)*total)
}

// Downsample picks ~n evenly-spaced points from a series (always
// including the first and last), for rendering long CDFs compactly.
func Downsample(series []float64, n int) []float64 {
	if n <= 0 || len(series) <= n {
		return append([]float64(nil), series...)
	}
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (len(series) - 1) / (n - 1)
		out = append(out, series[idx])
	}
	return out
}
