package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPctFrac(t *testing.T) {
	if Pct(1, 4) != 25 || Pct(3, 0) != 0 {
		t.Error("Pct")
	}
	if Frac(1, 4) != 0.25 || Frac(1, 0) != 0 {
		t.Error("Frac")
	}
}

func TestCDF(t *testing.T) {
	got := CDF([]int{5, 3, 2})
	want := []float64{0.5, 0.8, 1.0}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("CDF[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if len(CDF(nil)) != 0 {
		t.Error("empty CDF")
	}
	zero := CDF([]int{0, 0})
	if zero[0] != 0 || zero[1] != 0 {
		t.Error("all-zero CDF should stay zero")
	}
}

func TestTopShare(t *testing.T) {
	if got := TopShare([]int{1, 7, 2}, 1); math.Abs(got-0.7) > 1e-9 {
		t.Errorf("TopShare = %v", got)
	}
	if TopShare([]int{1, 2}, 10) != 1 {
		t.Error("k beyond len should be the whole share")
	}
	if TopShare(nil, 3) != 0 {
		t.Error("empty TopShare")
	}
}

func TestGiniBounds(t *testing.T) {
	if g := Gini([]int{5, 5, 5, 5}); math.Abs(g) > 1e-9 {
		t.Errorf("uniform Gini = %v, want 0", g)
	}
	skewed := Gini([]int{100, 0, 0, 0})
	if skewed < 0.7 {
		t.Errorf("maximally skewed Gini = %v, want near 0.75 for n=4", skewed)
	}
	if Gini(nil) != 0 || Gini([]int{0, 0}) != 0 {
		t.Error("degenerate Gini should be 0")
	}
}

// Property: CDF is monotone nondecreasing and ends at 1 for non-empty
// positive inputs; Gini stays in [0,1).
func TestProperties(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		counts := make([]int, len(raw))
		sum := 0
		for i, r := range raw {
			counts[i] = int(r)
			sum += int(r)
		}
		cdf := CDF(counts)
		for i := 1; i < len(cdf); i++ {
			if cdf[i] < cdf[i-1]-1e-12 {
				return false
			}
		}
		if sum > 0 && math.Abs(cdf[len(cdf)-1]-1) > 1e-9 {
			return false
		}
		g := Gini(counts)
		return g >= -1e-9 && g < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDownsample(t *testing.T) {
	series := make([]float64, 100)
	for i := range series {
		series[i] = float64(i)
	}
	got := Downsample(series, 5)
	if len(got) != 5 || got[0] != 0 || got[4] != 99 {
		t.Fatalf("Downsample = %v", got)
	}
	short := []float64{1, 2}
	if len(Downsample(short, 5)) != 2 {
		t.Error("short series should pass through")
	}
}
