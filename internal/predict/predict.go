// Package predict turns the Gao–Rexford model into a path predictor —
// the use case (simulation, iPlane-style path prediction) whose accuracy
// the paper's whole investigation underwrites — and scores predictions
// against measured AS paths.
//
// Prediction picks, per (source, destination), the shortest path through
// the best available relationship class with deterministic tie-breaking:
// exactly what Gao–Rexford-based simulators assume ASes do.
package predict

import (
	"routelab/internal/asn"
	"routelab/internal/gaorexford"
	"routelab/internal/relgraph"
)

// Predictor caches per-destination model computations.
type Predictor struct {
	g     *relgraph.Graph
	cache map[asn.ASN]*gaorexford.Result
}

// New returns a predictor over an (inferred) relationship graph.
func New(g *relgraph.Graph) *Predictor {
	return &Predictor{g: g, cache: make(map[asn.ASN]*gaorexford.Result)}
}

// Path predicts the AS path from src to dst (src first), or nil when the
// model offers none.
func (p *Predictor) Path(src, dst asn.ASN) []asn.ASN {
	res, ok := p.cache[dst]
	if !ok {
		res = gaorexford.Compute(p.g, dst)
		p.cache[dst] = res
	}
	return res.ShortestPath(p.g, src)
}

// Score compares one prediction against a measured path.
type Score struct {
	// Exact: the prediction matches hop for hop.
	Exact bool
	// CommonPrefix is the number of leading ASes the two paths share.
	CommonPrefix int
	// LenDelta is predicted length minus measured length (negative:
	// the model predicted a shorter path than reality took).
	LenDelta int
	// Predicted reports whether the model offered any path at all.
	Predicted bool
}

// ScorePath evaluates a prediction against a measurement.
func (p *Predictor) ScorePath(measured []asn.ASN) Score {
	if len(measured) < 2 {
		return Score{}
	}
	pred := p.Path(measured[0], measured[len(measured)-1])
	if pred == nil {
		return Score{}
	}
	s := Score{Predicted: true, LenDelta: len(pred) - len(measured)}
	n := len(pred)
	if len(measured) < n {
		n = len(measured)
	}
	for i := 0; i < n; i++ {
		if pred[i] != measured[i] {
			break
		}
		s.CommonPrefix++
	}
	s.Exact = s.CommonPrefix == len(pred) && len(pred) == len(measured)
	return s
}

// Summary aggregates scores across a measurement campaign.
type Summary struct {
	Paths, Predicted, Exact int
	// SameLength counts predictions with the right length but possibly
	// different hops (the shortest-path assumption holding in length
	// only).
	SameLength int
	// FirstHopCorrect counts predictions whose first transit hop
	// matches (the next-hop-only models of §2 care exactly about this).
	FirstHopCorrect int
}

// Evaluate scores a batch of measured AS paths.
func (p *Predictor) Evaluate(paths [][]asn.ASN) Summary {
	var sum Summary
	for _, m := range paths {
		if len(m) < 2 {
			continue
		}
		sum.Paths++
		sc := p.ScorePath(m)
		if !sc.Predicted {
			continue
		}
		sum.Predicted++
		if sc.Exact {
			sum.Exact++
		}
		if sc.LenDelta == 0 {
			sum.SameLength++
		}
		if sc.CommonPrefix >= 2 {
			sum.FirstHopCorrect++
		}
	}
	return sum
}
