package predict

import (
	"testing"

	"routelab/internal/asn"
	"routelab/internal/relgraph"
	"routelab/internal/topology"
)

// line: 1 ← 2 ← 3 (provider chains down to origin 1).
func lineGraph() *relgraph.Graph {
	g := relgraph.New()
	g.Set(2, 1, topology.RelCustomer)
	g.Set(3, 2, topology.RelCustomer)
	return g
}

func TestPathPrediction(t *testing.T) {
	p := New(lineGraph())
	got := p.Path(3, 1)
	want := []asn.ASN{3, 2, 1}
	if len(got) != len(want) {
		t.Fatalf("Path = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Path = %v, want %v", got, want)
		}
	}
	if p.Path(99, 1) != nil {
		t.Error("unknown source predicted a path")
	}
}

func TestScoreExact(t *testing.T) {
	p := New(lineGraph())
	s := p.ScorePath([]asn.ASN{3, 2, 1})
	if !s.Predicted || !s.Exact || s.CommonPrefix != 3 || s.LenDelta != 0 {
		t.Fatalf("score = %+v", s)
	}
}

func TestScoreDivergent(t *testing.T) {
	g := lineGraph()
	g.Set(3, 4, topology.RelCustomer) // alternative: 3-4-1
	g.Set(4, 1, topology.RelCustomer)
	p := New(g)
	// The model picks one of the equal-length customer paths
	// deterministically (lowest ASN: via 2). A measurement via 4
	// diverges after the first hop.
	s := p.ScorePath([]asn.ASN{3, 4, 1})
	if !s.Predicted || s.Exact {
		t.Fatalf("score = %+v", s)
	}
	if s.CommonPrefix != 1 || s.LenDelta != 0 {
		t.Fatalf("score = %+v", s)
	}
}

func TestScoreShorterPrediction(t *testing.T) {
	p := New(lineGraph())
	// Measured path with an extra (fictional) detour hop.
	s := p.ScorePath([]asn.ASN{3, 2, 2, 1})
	if s.LenDelta != -1 {
		t.Fatalf("LenDelta = %d, want -1", s.LenDelta)
	}
}

func TestEvaluate(t *testing.T) {
	p := New(lineGraph())
	sum := p.Evaluate([][]asn.ASN{
		{3, 2, 1}, // exact
		{2, 1},    // exact
		{3, 9, 1}, // diverges after first hop
		{99, 1},   // unpredictable source
		{1},       // degenerate, skipped
	})
	if sum.Paths != 4 {
		t.Errorf("Paths = %d", sum.Paths)
	}
	if sum.Predicted != 3 {
		t.Errorf("Predicted = %d", sum.Predicted)
	}
	if sum.Exact != 2 {
		t.Errorf("Exact = %d", sum.Exact)
	}
	if sum.SameLength != 3 {
		t.Errorf("SameLength = %d", sum.SameLength)
	}
	if sum.FirstHopCorrect != 2 {
		t.Errorf("FirstHopCorrect = %d", sum.FirstHopCorrect)
	}
}

// The predictor must be internally consistent on a generated topology:
// predictions exist for most measured-style pairs and caching does not
// change answers.
func TestPredictorCacheConsistency(t *testing.T) {
	topo := topology.Generate(97, topology.TestConfig())
	g := relgraph.FromTopology(topo)
	p := New(g)
	cdn := topo.Names["cdn-major"]
	stub := topo.ASesOfClass(topology.Stub)[5]
	a := p.Path(stub, cdn)
	b := p.Path(stub, cdn)
	if len(a) == 0 {
		t.Fatal("no prediction on a connected topology")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("cached prediction differs")
		}
	}
}
