package inference

import (
	"math/rand"
	"testing"

	"routelab/internal/asn"
	"routelab/internal/bgp"
	"routelab/internal/relgraph"
	"routelab/internal/topology"
	"routelab/internal/vantage"
)

func TestCleanPaths(t *testing.T) {
	in := [][]asn.ASN{
		{1, 2, 3},
		{1, 2, 2, 3}, // prepending collapses
		{1, 2, 1},    // loop dropped
		{4},          // single-AS path kept
		{},           // empty dropped
	}
	out := cleanPaths(in)
	if len(out) != 3 {
		t.Fatalf("cleanPaths kept %d, want 3: %v", len(out), out)
	}
	if len(out[1]) != 3 {
		t.Errorf("prepending not collapsed: %v", out[1])
	}
}

func TestTransitDegrees(t *testing.T) {
	paths := [][]asn.ASN{
		{1, 2, 3},
		{4, 2, 5},
		{1, 3},
	}
	deg := transitDegrees(paths)
	if deg[2] != 4 {
		t.Errorf("deg[2] = %d, want 4 (neighbors 1,3,4,5)", deg[2])
	}
	if deg[1] != 0 || deg[3] != 0 {
		t.Error("endpoints have no transit degree")
	}
}

func TestFindClique(t *testing.T) {
	deg := map[asn.ASN]int{1: 100, 2: 90, 3: 80, 4: 10, 5: 9}
	adj := map[topology.LinkKey]bool{
		topology.MakeLinkKey(1, 2): true,
		topology.MakeLinkKey(1, 3): true,
		topology.MakeLinkKey(2, 3): true,
		topology.MakeLinkKey(1, 4): true, // 4 connects only to 1
	}
	clique := findClique(deg, adj, 10)
	if !clique[1] || !clique[2] || !clique[3] {
		t.Errorf("clique should contain 1,2,3: %v", clique)
	}
	if clique[4] || clique[5] {
		t.Error("low-degree / non-mutual ASes must stay out of the clique")
	}
}

func TestAggregateLatestTwoWin(t *testing.T) {
	mk := func(role topology.Rel) *relgraph.Graph {
		g := relgraph.New()
		g.Set(1, 2, role)
		return g
	}
	graphs := []*relgraph.Graph{
		mk(topology.RelCustomer), mk(topology.RelCustomer), mk(topology.RelCustomer),
		mk(topology.RelPeer), mk(topology.RelPeer),
	}
	agg := Aggregate(graphs)
	if agg.Rel(1, 2) != topology.RelPeer {
		t.Errorf("latest-two agreement must win: got %s", agg.Rel(1, 2))
	}
}

func TestAggregateMajorityOtherwise(t *testing.T) {
	mk := func(role topology.Rel) *relgraph.Graph {
		g := relgraph.New()
		g.Set(1, 2, role)
		return g
	}
	graphs := []*relgraph.Graph{
		mk(topology.RelCustomer), mk(topology.RelCustomer), mk(topology.RelCustomer),
		mk(topology.RelCustomer), mk(topology.RelPeer),
	}
	agg := Aggregate(graphs)
	if agg.Rel(1, 2) != topology.RelCustomer {
		t.Errorf("majority must win when the last two disagree: got %s", agg.Rel(1, 2))
	}
}

func TestAggregateKeepsStaleLinks(t *testing.T) {
	old := relgraph.New()
	old.Set(1, 2, topology.RelPeer)
	old.Set(2, 3, topology.RelCustomer)
	recent := relgraph.New()
	recent.Set(2, 3, topology.RelCustomer) // link 1-2 vanished
	agg := Aggregate([]*relgraph.Graph{old, old, recent})
	if !agg.HasEdge(1, 2) {
		t.Error("aggregation must keep links from old epochs (the stale-link effect)")
	}
}

func TestAggregateEmpty(t *testing.T) {
	if g := Aggregate(nil); g.NumEdges() != 0 {
		t.Error("empty aggregate should have no edges")
	}
}

// End-to-end calibration: infer over feeds from a generated topology and
// require reasonable (not perfect!) agreement with ground truth. The
// gaps ARE the phenomenon under study, but an inference that is mostly
// wrong would make the downstream experiments meaningless.
func TestInferenceAccuracyOnGeneratedTopology(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline is slow")
	}
	topo := topology.Generate(21, topology.TestConfig())
	e := bgp.New(topo, 21)
	rib := e.ComputeFullRIB(0)
	peers := vantage.SelectPeers(topo, rand.New(rand.NewSource(21)), 40)
	if len(peers) == 0 {
		t.Fatal("no vantage peers selected")
	}
	snap := vantage.Collect(rib, peers, 0)
	if len(snap.Entries) == 0 {
		t.Fatal("empty snapshot")
	}
	inferred := InferSnapshot(snap, DefaultConfig())
	truth := relgraph.FromTopology(topo)
	acc := MeasureAccuracy(inferred, truth)
	t.Logf("accuracy: %d/%d labels correct, %d links invisible to monitors, %d phantom",
		acc.Correct, acc.Links, acc.MissingFromInferred, acc.ExtraInInferred)
	if acc.Links == 0 {
		t.Fatal("no overlapping links at all")
	}
	if frac := float64(acc.Correct) / float64(acc.Links); frac < 0.70 {
		t.Errorf("label agreement %.2f below 0.70 — inference too weak to study", frac)
	}
	// The visibility bias must exist: some ground-truth links (edge
	// peering, backups) must be invisible to the monitors.
	if acc.MissingFromInferred == 0 {
		t.Error("monitors saw every link — the visibility bias the paper needs is gone")
	}
	// Phantom links should be rare (paths do not invent adjacencies).
	if acc.ExtraInInferred > acc.Links/10 {
		t.Errorf("%d phantom links is implausibly many", acc.ExtraInInferred)
	}
}

func TestSelectPeersCoreBias(t *testing.T) {
	topo := topology.Generate(5, topology.TestConfig())
	peers := vantage.SelectPeers(topo, rand.New(rand.NewSource(5)), 30)
	if len(peers) == 0 || len(peers) > 30 {
		t.Fatalf("got %d peers", len(peers))
	}
	classes := map[topology.Class]int{}
	for _, p := range peers {
		classes[topo.AS(p).Class]++
	}
	if classes[topology.Tier1] == 0 {
		t.Error("every Tier-1 should feed the monitors")
	}
	if classes[topology.Stub] != 0 {
		t.Error("stub networks do not feed RouteViews")
	}
}
