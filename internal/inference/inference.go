// Package inference re-infers AS relationships from route-monitor feeds,
// playing the role of CAIDA's serial-1/serial-2 databases in the paper.
//
// The algorithm is a compact cousin of Luckie et al. (IMC'13): transit
// degrees, a greedy Tier-1 clique, direction votes from path peaks, and
// a vantage-point-visibility test to separate settlement-free peering
// from transit. It is deliberately run on the SAME biased inputs the
// real databases use (core-heavy monitors, best paths only), so its
// errors — stale links kept by multi-month aggregation, cable operators
// labeled as peers, invisible backup links, missing edge mesh — emerge
// naturally rather than being injected.
package inference

import (
	"sort"

	"routelab/internal/asn"
	"routelab/internal/relgraph"
	"routelab/internal/topology"
	"routelab/internal/vantage"
)

// Config tunes the inference heuristics.
type Config struct {
	// MaxCliqueSize bounds the greedy Tier-1 clique.
	MaxCliqueSize int
	// VisibilityThreshold is the fraction of vantage points that must
	// see a link for it to count as transit; links seen by fewer VPs
	// are classified as peering (peer routes do not propagate upward,
	// so genuine p2p links are visible only inside the two customer
	// cones).
	VisibilityThreshold float64
	// SameOrg, when non-nil, reports whether two ASes belong to one
	// organization (from whois-based sibling grouping). Organizations
	// exchange full tables internally, so an export to a sibling is NOT
	// evidence of a customer relationship — ignoring this produces
	// phantom transit edges.
	SameOrg func(a, b asn.ASN) bool
}

// DefaultConfig mirrors the constants the accompanying tests calibrate.
func DefaultConfig() Config {
	return Config{MaxCliqueSize: 20, VisibilityThreshold: 0.3}
}

// InferSnapshot infers a relationship graph from one monitor snapshot.
func InferSnapshot(s *vantage.Snapshot, cfg Config) *relgraph.Graph {
	if cfg.MaxCliqueSize == 0 {
		cfg = DefaultConfig()
	}
	paths := cleanPaths(s.Paths())

	deg := transitDegrees(paths)
	adj := adjacency(paths)
	clique := findClique(deg, adj, cfg.MaxCliqueSize)

	// Direction votes: locate each path's peak (highest transit degree)
	// and vote provider-ward on both slopes.
	type pair = topology.LinkKey
	downVotes := make(map[pair]int) // vote that Lo is Hi's provider
	upVotes := make(map[pair]int)   // vote that Hi is Lo's provider
	vote := func(provider, customer asn.ASN) {
		k := topology.MakeLinkKey(provider, customer)
		if k.Lo == provider {
			downVotes[k]++
		} else {
			upVotes[k]++
		}
	}
	for _, p := range paths {
		peak := 0
		for i := 1; i < len(p); i++ {
			if deg[p[i]] > deg[p[peak]] {
				peak = i
			}
		}
		for i := 0; i+1 < len(p); i++ {
			if i+1 <= peak {
				vote(p[i+1], p[i]) // uphill toward the peak
			} else {
				vote(p[i], p[i+1]) // downhill toward the origin
			}
		}
	}

	// Visibility: how many distinct vantage points see each link.
	seenBy := make(map[pair]map[asn.ASN]bool)
	totalVPs := make(map[asn.ASN]bool)
	// upExport[{A,B}] records the ASes X observed immediately above A
	// on paths "... X A B ...": A exported B-side routes to X. If some
	// X is at least as big as A, the export went to a peer or provider,
	// which only customer routes may do — so B is A's customer even if
	// few monitors see the edge (the research-network case).
	type dirEdge struct{ transit, other asn.ASN }
	upExport := make(map[dirEdge]map[asn.ASN]bool)
	for i := range s.Entries {
		e := &s.Entries[i]
		totalVPs[e.Peer] = true
		for j := 0; j+1 < len(e.Path); j++ {
			k := topology.MakeLinkKey(e.Path[j], e.Path[j+1])
			m := seenBy[k]
			if m == nil {
				m = make(map[asn.ASN]bool)
				seenBy[k] = m
			}
			m[e.Peer] = true
			if j > 0 {
				de := dirEdge{transit: e.Path[j], other: e.Path[j+1]}
				um := upExport[de]
				if um == nil {
					um = make(map[asn.ASN]bool)
					upExport[de] = um
				}
				um[e.Path[j-1]] = true
			}
		}
	}
	nVPs := len(totalVPs)
	exportedUpward := func(transit, other asn.ASN) bool {
		for x := range upExport[dirEdge{transit, other}] {
			if x == other {
				continue
			}
			if cfg.SameOrg != nil && cfg.SameOrg(x, transit) {
				continue // intra-organization export proves nothing
			}
			// Export to a clique member or to a network at least as
			// large is a peer/provider export, legal only for customer
			// routes.
			if clique[x] || deg[x] >= deg[transit] {
				return true
			}
		}
		return false
	}

	g := relgraph.New()
	for k := range adj {
		loInClique, hiInClique := clique[k.Lo], clique[k.Hi]
		visibility := 0.0
		if nVPs > 0 {
			visibility = float64(len(seenBy[k])) / float64(nVPs)
		}
		switch {
		case loInClique && hiInClique:
			g.Set(k.Lo, k.Hi, topology.RelPeer)
		case visibility < cfg.VisibilityThreshold:
			// Few monitors see the edge — usually settlement-free
			// peering, unless the export pattern proves transit.
			switch {
			case exportedUpward(k.Lo, k.Hi):
				g.Set(k.Lo, k.Hi, topology.RelCustomer) // Hi is Lo's customer
			case exportedUpward(k.Hi, k.Lo):
				g.Set(k.Lo, k.Hi, topology.RelProvider)
			default:
				g.Set(k.Lo, k.Hi, topology.RelPeer)
			}
		case downVotes[k] >= upVotes[k]:
			// Lo is Hi's provider → Hi's role from Lo is customer.
			g.Set(k.Lo, k.Hi, topology.RelCustomer)
		default:
			g.Set(k.Lo, k.Hi, topology.RelProvider)
		}
	}
	return g
}

// cleanPaths drops loops (poisoned or corrupted paths) and collapses
// prepending.
func cleanPaths(in [][]asn.ASN) [][]asn.ASN {
	var out [][]asn.ASN
	for _, p := range in {
		q := make([]asn.ASN, 0, len(p))
		seen := make(map[asn.ASN]bool, len(p))
		ok := true
		for _, a := range p {
			if len(q) > 0 && q[len(q)-1] == a {
				continue // prepending
			}
			if seen[a] {
				ok = false
				break
			}
			seen[a] = true
			q = append(q, a)
		}
		if ok && len(q) >= 1 {
			out = append(out, q)
		}
	}
	return out
}

// transitDegrees counts, per AS, the distinct neighbors it is seen
// forwarding between (appearing mid-path).
func transitDegrees(paths [][]asn.ASN) map[asn.ASN]int {
	sets := make(map[asn.ASN]map[asn.ASN]bool)
	for _, p := range paths {
		for i := 1; i+1 < len(p); i++ {
			m := sets[p[i]]
			if m == nil {
				m = make(map[asn.ASN]bool)
				sets[p[i]] = m
			}
			m[p[i-1]] = true
			m[p[i+1]] = true
		}
	}
	deg := make(map[asn.ASN]int, len(sets))
	for a, m := range sets {
		deg[a] = len(m)
	}
	return deg
}

// adjacency collects every observed link.
func adjacency(paths [][]asn.ASN) map[topology.LinkKey]bool {
	adj := make(map[topology.LinkKey]bool)
	for _, p := range paths {
		for i := 0; i+1 < len(p); i++ {
			adj[topology.MakeLinkKey(p[i], p[i+1])] = true
		}
	}
	return adj
}

// findClique greedily grows the Tier-1 clique from the highest transit
// degrees, requiring mutual adjacency.
func findClique(deg map[asn.ASN]int, adj map[topology.LinkKey]bool, maxSize int) map[asn.ASN]bool {
	type cand struct {
		a asn.ASN
		d int
	}
	cands := make([]cand, 0, len(deg))
	for a, d := range deg {
		cands = append(cands, cand{a, d})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d != cands[j].d {
			return cands[i].d > cands[j].d
		}
		return cands[i].a < cands[j].a
	})
	clique := make(map[asn.ASN]bool)
	if len(cands) == 0 {
		return clique
	}
	minDeg := cands[0].d / 4 // members must be at least a quarter of the top
	for _, c := range cands {
		if len(clique) >= maxSize || c.d < minDeg {
			break
		}
		connected := true
		for m := range clique {
			if !adj[topology.MakeLinkKey(c.a, m)] {
				connected = false
				break
			}
		}
		if connected {
			clique[c.a] = true
		}
	}
	return clique
}

// Aggregate merges per-epoch graphs the way §3.3 describes: the link set
// is the union over all epochs (which is how decommissioned links go
// stale), and when relationship labels conflict, the two most recent
// epochs win if they agree, otherwise the overall majority (recency
// breaking ties). Graphs must be ordered oldest first.
func Aggregate(graphs []*relgraph.Graph) *relgraph.Graph {
	out := relgraph.New()
	if len(graphs) == 0 {
		return out
	}
	type obs struct {
		epoch int
		role  topology.Rel
	}
	all := make(map[topology.LinkKey][]obs)
	for epoch, g := range graphs {
		for _, e := range g.Edges() {
			k := topology.MakeLinkKey(e.A, e.B)
			role := e.Role // B's (Hi's) role from A (Lo)
			if k.Lo != e.A {
				role = role.Invert()
			}
			all[k] = append(all[k], obs{epoch, role})
		}
	}
	latest := len(graphs) - 1
	for k, os := range all {
		// Latest-two agreement.
		var lastTwo []topology.Rel
		for _, o := range os {
			if o.epoch >= latest-1 {
				lastTwo = append(lastTwo, o.role)
			}
		}
		if len(lastTwo) == 2 && lastTwo[0] == lastTwo[1] {
			out.Set(k.Lo, k.Hi, lastTwo[0])
			continue
		}
		// Majority, recency-weighted by breaking ties toward later epochs.
		count := make(map[topology.Rel]int)
		lastEpoch := make(map[topology.Rel]int)
		for _, o := range os {
			count[o.role]++
			if o.epoch > lastEpoch[o.role] {
				lastEpoch[o.role] = o.epoch
			}
		}
		var bestRole topology.Rel
		bestN, bestE := -1, -1
		for _, role := range []topology.Rel{topology.RelCustomer, topology.RelProvider, topology.RelPeer, topology.RelSibling} {
			n, ok := count[role]
			if !ok {
				continue
			}
			if n > bestN || (n == bestN && lastEpoch[role] > bestE) {
				bestRole, bestN, bestE = role, n, lastEpoch[role]
			}
		}
		out.Set(k.Lo, k.Hi, bestRole)
	}
	return out
}

// Accuracy compares an inferred graph against the ground truth and
// reports per-category agreement — the sanity metric EXPERIMENTS.md
// records. Sibling ground-truth links count as correct when inferred as
// either c2p or p2p is false; they are matched only by RelSibling (which
// the inference never emits), so they always count as mislabeled —
// exactly CAIDA's situation.
type Accuracy struct {
	Links, Correct      int
	MissingFromInferred int
	ExtraInInferred     int
}

// MeasureAccuracy computes label agreement on the intersection of edges
// plus the two difference counts.
func MeasureAccuracy(inferred, truth *relgraph.Graph) Accuracy {
	var acc Accuracy
	for _, e := range truth.Edges() {
		if !inferred.HasEdge(e.A, e.B) {
			acc.MissingFromInferred++
			continue
		}
		acc.Links++
		if inferred.Rel(e.A, e.B) == e.Role {
			acc.Correct++
		}
	}
	for _, e := range inferred.Edges() {
		if !truth.HasEdge(e.A, e.B) {
			acc.ExtraInInferred++
		}
	}
	return acc
}
