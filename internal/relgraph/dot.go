package relgraph

import (
	"bufio"
	"fmt"
	"io"

	"routelab/internal/topology"
)

// WriteDOT renders the graph in Graphviz DOT form: solid directed edges
// point provider→customer, dashed undirected edges are peering, dotted
// edges siblings. Useful for eyeballing small inferred topologies
// (`dot -Tsvg`).
func (g *Graph) WriteDOT(w io.Writer, name string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n", name)
	for _, e := range g.Edges() {
		switch e.Role { // B's role from A
		case topology.RelCustomer: // A is the provider
			fmt.Fprintf(bw, "  %d -> %d;\n", uint32(e.A), uint32(e.B))
		case topology.RelProvider:
			fmt.Fprintf(bw, "  %d -> %d;\n", uint32(e.B), uint32(e.A))
		case topology.RelPeer:
			fmt.Fprintf(bw, "  %d -> %d [dir=none, style=dashed];\n", uint32(e.A), uint32(e.B))
		case topology.RelSibling:
			fmt.Fprintf(bw, "  %d -> %d [dir=none, style=dotted];\n", uint32(e.A), uint32(e.B))
		}
	}
	fmt.Fprintln(bw, "}")
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("relgraph: write dot: %w", err)
	}
	return nil
}
