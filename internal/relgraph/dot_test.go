package relgraph

import (
	"strings"
	"testing"

	"routelab/internal/topology"
)

func TestWriteDOT(t *testing.T) {
	g := New()
	g.Set(1, 2, topology.RelCustomer) // 1 provider of 2
	g.Set(1, 3, topology.RelPeer)
	g.Set(2, 4, topology.RelSibling)
	var b strings.Builder
	if err := g.WriteDOT(&b, "test"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`digraph "test"`,
		"1 -> 2;",                  // provider edge points down
		"[dir=none, style=dashed]", // peering
		"[dir=none, style=dotted]", // sibling
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "2 -> 1;") {
		t.Error("provider edge emitted in both directions")
	}
}
