// Package relgraph holds an AS-relationship graph — the data structure
// CAIDA-style inference produces and the Gao–Rexford model computation
// consumes. Unlike topology.Topology (the ground truth, with geography,
// policies, and addresses), a Graph is only "who connects to whom and in
// what business role", possibly wrong and possibly incomplete, exactly
// like the serial files the paper downloads.
package relgraph

import (
	"sort"

	"routelab/internal/asn"
	"routelab/internal/topology"
)

// Edge is one relationship assertion: B's role as seen from A.
type Edge struct {
	A, B asn.ASN
	Role topology.Rel // B's role from A's perspective
}

// Graph is a mutable relationship graph. The zero value is not usable;
// call New.
type Graph struct {
	rel map[asn.ASN]map[asn.ASN]topology.Rel
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{rel: make(map[asn.ASN]map[asn.ASN]topology.Rel)}
}

// Set records b's role from a's perspective (and the inverse for b),
// overwriting any previous assertion for the pair.
func (g *Graph) Set(a, b asn.ASN, roleOfB topology.Rel) {
	g.setOne(a, b, roleOfB)
	g.setOne(b, a, roleOfB.Invert())
}

func (g *Graph) setOne(a, b asn.ASN, r topology.Rel) {
	m := g.rel[a]
	if m == nil {
		m = make(map[asn.ASN]topology.Rel)
		g.rel[a] = m
	}
	m[b] = r
}

// Remove deletes the adjacency in both directions.
func (g *Graph) Remove(a, b asn.ASN) {
	delete(g.rel[a], b)
	delete(g.rel[b], a)
}

// Rel returns b's role from a's perspective, or RelNone when the graph
// has no such edge.
func (g *Graph) Rel(a, b asn.ASN) topology.Rel { return g.rel[a][b] }

// HasEdge reports whether the pair is adjacent in the graph.
func (g *Graph) HasEdge(a, b asn.ASN) bool { return g.rel[a][b] != topology.RelNone }

// Neighbors returns a's neighbors in ascending order.
func (g *Graph) Neighbors(a asn.ASN) []asn.ASN {
	out := make([]asn.ASN, 0, len(g.rel[a]))
	for b := range g.rel[a] {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ASNs returns every AS appearing in the graph, ascending.
func (g *Graph) ASNs() []asn.ASN {
	out := make([]asn.ASN, 0, len(g.rel))
	for a := range g.rel {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Edges returns every edge once (A < B), sorted.
func (g *Graph) Edges() []Edge {
	var out []Edge
	for a, m := range g.rel {
		for b, r := range m {
			if a < b {
				out = append(out, Edge{A: a, B: b, Role: r})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// NumEdges counts distinct adjacencies.
func (g *Graph) NumEdges() int {
	n := 0
	for a, m := range g.rel {
		for b := range m {
			if a < b {
				n++
			}
		}
	}
	return n
}

// Clone deep-copies the graph.
func (g *Graph) Clone() *Graph {
	c := New()
	for a, m := range g.rel {
		cm := make(map[asn.ASN]topology.Rel, len(m))
		for b, r := range m {
			cm[b] = r
		}
		c.rel[a] = cm
	}
	return c
}

// FromTopology builds the ground-truth relationship graph (base roles
// only — hybrid and partial-transit subtleties are invisible at this
// granularity, just as they are to CAIDA). Useful as an oracle in tests
// and for measuring inference accuracy.
func FromTopology(t *topology.Topology) *Graph {
	g := New()
	t.Links(func(l *topology.Link) {
		g.Set(l.Lo, l.Hi, l.HiRole)
	})
	return g
}
