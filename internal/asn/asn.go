// Package asn defines the primitive interdomain-routing types shared by
// every other package in routelab: AS numbers, IPv4 prefixes, and AS paths
// (including AS_SET segments, which BGP poisoning experiments depend on).
//
// The types are deliberately small value types: they are hashable, usable
// as map keys, and their zero values are meaningful (ASN 0 is "unknown",
// the zero Prefix is the default route 0.0.0.0/0, the zero Path is empty).
package asn

import (
	"fmt"
	"strconv"
	"strings"
)

// ASN is an autonomous system number. The zero value means "unknown AS"
// and is never assigned to a real AS by the topology generator.
type ASN uint32

// String renders the ASN in the canonical "AS64500" form.
func (a ASN) String() string {
	return "AS" + strconv.FormatUint(uint64(a), 10)
}

// IsZero reports whether the ASN is the unknown sentinel.
func (a ASN) IsZero() bool { return a == 0 }

// ParseASN parses "AS64500" or a bare decimal number.
func ParseASN(s string) (ASN, error) {
	t := strings.TrimPrefix(strings.TrimSpace(s), "AS")
	n, err := strconv.ParseUint(t, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("asn: parse %q: %w", s, err)
	}
	return ASN(n), nil
}

// Addr is an IPv4 address held as a big-endian uint32 so it can be used
// as a map key and compared with <.
type Addr uint32

// AddrFrom4 builds an Addr from four octets.
func AddrFrom4(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// Octets returns the four octets of the address.
func (ip Addr) Octets() (a, b, c, d byte) {
	return byte(ip >> 24), byte(ip >> 16), byte(ip >> 8), byte(ip)
}

// String renders dotted-quad notation.
func (ip Addr) String() string {
	a, b, c, d := ip.Octets()
	return fmt.Sprintf("%d.%d.%d.%d", a, b, c, d)
}

// ParseAddr parses dotted-quad IPv4 notation.
func ParseAddr(s string) (Addr, error) {
	parts := strings.Split(strings.TrimSpace(s), ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("asn: parse addr %q: want four octets", s)
	}
	var ip uint32
	for _, p := range parts {
		n, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("asn: parse addr %q: %w", s, err)
		}
		ip = ip<<8 | uint32(n)
	}
	return Addr(ip), nil
}

// Prefix is an IPv4 prefix. Bits outside the mask are always zero for
// prefixes built with NewPrefix, which keeps Prefix values canonical and
// therefore usable as map keys.
type Prefix struct {
	Addr Addr
	Len  uint8
}

// NewPrefix masks addr down to its first length bits and returns the
// canonical prefix. Lengths above 32 are clamped to 32.
func NewPrefix(addr Addr, length uint8) Prefix {
	if length > 32 {
		length = 32
	}
	return Prefix{Addr: addr & mask(length), Len: length}
}

func mask(length uint8) Addr {
	if length == 0 {
		return 0
	}
	return Addr(^uint32(0) << (32 - length))
}

// Contains reports whether ip falls inside the prefix.
func (p Prefix) Contains(ip Addr) bool {
	return ip&mask(p.Len) == p.Addr
}

// ContainsPrefix reports whether q is equal to or more specific than p.
func (p Prefix) ContainsPrefix(q Prefix) bool {
	return q.Len >= p.Len && p.Contains(q.Addr)
}

// Nth returns the nth address within the prefix, wrapping within the
// prefix size. It is how the simulator hands out router and host IPs.
func (p Prefix) Nth(n uint32) Addr {
	size := uint32(1) << (32 - p.Len)
	return p.Addr + Addr(n%size)
}

// String renders "a.b.c.d/len".
func (p Prefix) String() string {
	return fmt.Sprintf("%s/%d", p.Addr, p.Len)
}

// IsZero reports whether p is the zero (default-route) prefix.
func (p Prefix) IsZero() bool { return p == Prefix{} }

// ParsePrefix parses "a.b.c.d/len".
func ParsePrefix(s string) (Prefix, error) {
	i := strings.IndexByte(s, '/')
	if i < 0 {
		return Prefix{}, fmt.Errorf("asn: parse prefix %q: missing /len", s)
	}
	addr, err := ParseAddr(s[:i])
	if err != nil {
		return Prefix{}, err
	}
	n, err := strconv.ParseUint(s[i+1:], 10, 8)
	if err != nil || n > 32 {
		return Prefix{}, fmt.Errorf("asn: parse prefix %q: bad length", s)
	}
	return NewPrefix(addr, uint8(n)), nil
}
