package asn

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseASN(t *testing.T) {
	cases := []struct {
		in   string
		want ASN
		ok   bool
	}{
		{"AS64500", 64500, true},
		{"64500", 64500, true},
		{" AS174 ", 174, true},
		{"AS4294967295", 4294967295, true},
		{"AS4294967296", 0, false},
		{"ASX", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, err := ParseASN(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseASN(%q) err=%v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseASN(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestASNString(t *testing.T) {
	if got := ASN(3356).String(); got != "AS3356" {
		t.Errorf("String() = %q, want AS3356", got)
	}
	if !ASN(0).IsZero() || ASN(1).IsZero() {
		t.Error("IsZero misbehaves")
	}
}

func TestAddrRoundTrip(t *testing.T) {
	ip := AddrFrom4(192, 0, 2, 133)
	if ip.String() != "192.0.2.133" {
		t.Fatalf("String() = %q", ip.String())
	}
	back, err := ParseAddr(ip.String())
	if err != nil {
		t.Fatal(err)
	}
	if back != ip {
		t.Fatalf("round trip: %v != %v", back, ip)
	}
}

func TestParseAddrErrors(t *testing.T) {
	for _, s := range []string{"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d"} {
		if _, err := ParseAddr(s); err == nil {
			t.Errorf("ParseAddr(%q) succeeded, want error", s)
		}
	}
}

func TestPrefixCanonical(t *testing.T) {
	p := NewPrefix(AddrFrom4(10, 1, 2, 3), 16)
	if p.String() != "10.1.0.0/16" {
		t.Fatalf("prefix not canonicalized: %s", p)
	}
	if !p.Contains(AddrFrom4(10, 1, 255, 255)) {
		t.Error("Contains should include 10.1.255.255")
	}
	if p.Contains(AddrFrom4(10, 2, 0, 0)) {
		t.Error("Contains should exclude 10.2.0.0")
	}
}

func TestPrefixContainsPrefix(t *testing.T) {
	p8 := NewPrefix(AddrFrom4(10, 0, 0, 0), 8)
	p16 := NewPrefix(AddrFrom4(10, 9, 0, 0), 16)
	if !p8.ContainsPrefix(p16) {
		t.Error("/8 should contain its /16")
	}
	if p16.ContainsPrefix(p8) {
		t.Error("/16 must not contain its covering /8")
	}
	if !p8.ContainsPrefix(p8) {
		t.Error("prefix should contain itself")
	}
}

func TestPrefixNthWraps(t *testing.T) {
	p := NewPrefix(AddrFrom4(192, 0, 2, 0), 24)
	if got := p.Nth(5); got != AddrFrom4(192, 0, 2, 5) {
		t.Errorf("Nth(5) = %v", got)
	}
	if got := p.Nth(256 + 7); got != AddrFrom4(192, 0, 2, 7) {
		t.Errorf("Nth wrap = %v", got)
	}
}

func TestParsePrefix(t *testing.T) {
	p, err := ParsePrefix("198.51.100.7/24")
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "198.51.100.0/24" {
		t.Fatalf("got %s", p)
	}
	for _, s := range []string{"1.2.3.4", "1.2.3.4/33", "x/24"} {
		if _, err := ParsePrefix(s); err == nil {
			t.Errorf("ParsePrefix(%q) succeeded, want error", s)
		}
	}
}

func TestPrefixZeroLen(t *testing.T) {
	def := NewPrefix(0, 0)
	if !def.Contains(AddrFrom4(203, 0, 113, 1)) {
		t.Error("default route should contain everything")
	}
	if NewPrefix(AddrFrom4(1, 2, 3, 4), 0) != def {
		t.Error("any /0 should canonicalize to the default route")
	}
}

// Property: prefix canonicalization is idempotent and Contains(Addr) holds
// for the prefix's own network address.
func TestPrefixProperties(t *testing.T) {
	f := func(raw uint32, l uint8) bool {
		p := NewPrefix(Addr(raw), l%33)
		q := NewPrefix(p.Addr, p.Len)
		return p == q && p.Contains(p.Addr)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPathBasics(t *testing.T) {
	p := PathFromASNs(3356, 174, 65000)
	if p.Len() != 3 {
		t.Fatalf("Len = %d", p.Len())
	}
	if p.First() != 3356 || p.Origin() != 65000 {
		t.Fatalf("First/Origin = %v/%v", p.First(), p.Origin())
	}
	if !p.Contains(174) || p.Contains(1) {
		t.Error("Contains misbehaves")
	}
	if p.String() != "3356 174 65000" {
		t.Errorf("String = %q", p.String())
	}
}

func TestPathPrependImmutable(t *testing.T) {
	p := PathFromASNs(174, 65000)
	q := p.Prepend(3356)
	if p.Len() != 2 || q.Len() != 3 {
		t.Fatalf("lens %d %d", p.Len(), q.Len())
	}
	if q.First() != 3356 || q.Origin() != 65000 {
		t.Error("prepend wrong shape")
	}
	// Mutating q's view must not affect p.
	if p.First() != 174 {
		t.Error("receiver mutated by Prepend")
	}
}

func TestPathSetSemantics(t *testing.T) {
	p := PathFromASNs(65000) // origin announcement
	poisoned := p.PrependSet([]ASN{7018, 3356}).Prepend(65000)
	// 65000 {3356,7018} 65000 — PEERING sandwich.
	if got := poisoned.String(); got != "65000 {3356,7018} 65000" {
		t.Fatalf("String = %q", got)
	}
	if poisoned.Len() != 3 { // set counts as one hop
		t.Fatalf("Len = %d", poisoned.Len())
	}
	if !poisoned.Contains(7018) {
		t.Error("set members must trigger Contains (loop prevention)")
	}
	if !poisoned.HasSet() {
		t.Error("HasSet = false")
	}
	seq := poisoned.Sequence()
	if len(seq) != 2 || seq[0] != 65000 || seq[1] != 65000 {
		t.Errorf("Sequence = %v", seq)
	}
}

func TestPathFirstOriginEdgeCases(t *testing.T) {
	var empty Path
	if empty.First() != 0 || empty.Origin() != 0 || !empty.IsEmpty() {
		t.Error("empty path accessors")
	}
	setOnly := Path{}.PrependSet([]ASN{1, 2})
	if setOnly.First() != 0 || setOnly.Origin() != 0 {
		t.Error("set-only path must report unknown first/origin")
	}
}

func TestPathEqual(t *testing.T) {
	a := PathFromASNs(1, 2, 3)
	b := PathFromASNs(1, 2, 3)
	c := PathFromASNs(1, 2, 4)
	d := PathFromASNs(1, 2)
	if !a.Equal(b) || a.Equal(c) || a.Equal(d) {
		t.Error("Equal misbehaves on sequences")
	}
	s1 := a.PrependSet([]ASN{9, 8})
	s2 := a.PrependSet([]ASN{8, 9})
	if !s1.Equal(s2) {
		t.Error("AS_SET order must be canonicalized")
	}
}

// Property: Prepend increases Len by exactly 1 and makes the prepended AS
// the First of the new path; Contains holds for every prepended AS.
func TestPathPrependProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := PathFromASNs(ASN(rng.Intn(1 << 16)))
		for i := 0; i < int(n%20); i++ {
			a := ASN(1 + rng.Intn(1<<16))
			prev := p.Len()
			p = p.Prepend(a)
			if p.Len() != prev+1 || p.First() != a || !p.Contains(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPathKeyDistinguishesSetFromSeq(t *testing.T) {
	seq := PathFromASNs(1, 2, 3)
	set := PathFromASNs(3).PrependSet([]ASN{1, 2})
	if seq.Key() == set.Key() {
		t.Error("Key collides between sequence and set forms")
	}
}
