package asn

import (
	"sort"
	"strings"
)

// SegmentType distinguishes the two AS_PATH segment kinds routelab uses.
// (RFC 4271 defines two more confederation kinds, which never appear in
// interdomain experiments and are rejected by the wire codec.)
type SegmentType uint8

const (
	// Sequence is an ordered AS_SEQUENCE segment.
	Sequence SegmentType = 2
	// Set is an unordered AS_SET segment; the whole set counts as one hop
	// for path-length purposes. PEERING wraps poisoned ASes in one AS_SET
	// so poisoning many ASes does not balloon path length.
	Set SegmentType = 1
)

// Segment is one AS_PATH segment.
type Segment struct {
	Type SegmentType
	ASNs []ASN
}

// Path is a BGP AS path: a series of segments, leftmost AS first (the
// most recent AS to forward the announcement). A plain path from origin O
// heard via neighbor N is Sequence[N ... O].
type Path struct {
	Segments []Segment
}

// PathFromASNs builds a single-sequence path. The slice is copied.
func PathFromASNs(asns ...ASN) Path {
	if len(asns) == 0 {
		return Path{}
	}
	cp := make([]ASN, len(asns))
	copy(cp, asns)
	return Path{Segments: []Segment{{Type: Sequence, ASNs: cp}}}
}

// Prepend returns a new path with a prepended to the front, merging into
// an existing leading sequence when possible. The receiver is not
// modified; segment slices are copied as needed.
func (p Path) Prepend(a ASN) Path {
	segs := make([]Segment, 0, len(p.Segments)+1)
	if len(p.Segments) > 0 && p.Segments[0].Type == Sequence {
		head := make([]ASN, 0, len(p.Segments[0].ASNs)+1)
		head = append(head, a)
		head = append(head, p.Segments[0].ASNs...)
		segs = append(segs, Segment{Type: Sequence, ASNs: head})
		segs = append(segs, p.Segments[1:]...)
	} else {
		segs = append(segs, Segment{Type: Sequence, ASNs: []ASN{a}})
		segs = append(segs, p.Segments...)
	}
	return Path{Segments: segs}
}

// PrependSet returns a new path with an AS_SET of the given ASes at the
// front. The input slice is copied and sorted for canonical form.
func (p Path) PrependSet(asns []ASN) Path {
	cp := make([]ASN, len(asns))
	copy(cp, asns)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	segs := make([]Segment, 0, len(p.Segments)+1)
	segs = append(segs, Segment{Type: Set, ASNs: cp})
	segs = append(segs, p.Segments...)
	return Path{Segments: segs}
}

// Len returns the BGP path length: one per AS in sequence segments, one
// per whole AS_SET segment (RFC 4271 §9.1.2.2 route-selection counting).
func (p Path) Len() int {
	n := 0
	for _, s := range p.Segments {
		switch s.Type {
		case Sequence:
			n += len(s.ASNs)
		case Set:
			n++
		}
	}
	return n
}

// IsEmpty reports whether the path has no segments.
func (p Path) IsEmpty() bool { return len(p.Segments) == 0 }

// First returns the leftmost AS (the neighbor the route was heard from),
// or 0 if the path is empty or begins with an AS_SET.
func (p Path) First() ASN {
	if len(p.Segments) == 0 {
		return 0
	}
	s := p.Segments[0]
	if s.Type != Sequence || len(s.ASNs) == 0 {
		return 0
	}
	return s.ASNs[0]
}

// Origin returns the rightmost AS (the route's originator), or 0 if the
// path is empty or ends with an AS_SET.
func (p Path) Origin() ASN {
	if len(p.Segments) == 0 {
		return 0
	}
	s := p.Segments[len(p.Segments)-1]
	if s.Type != Sequence || len(s.ASNs) == 0 {
		return 0
	}
	return s.ASNs[len(s.ASNs)-1]
}

// Contains reports whether a appears anywhere in the path, including
// inside AS_SET segments. BGP loop prevention — and therefore poisoning —
// is built on this test.
func (p Path) Contains(a ASN) bool {
	for _, s := range p.Segments {
		for _, x := range s.ASNs {
			if x == a {
				return true
			}
		}
	}
	return false
}

// HasSet reports whether any segment is an AS_SET. Some ASes filter
// announcements carrying AS_SETs (draft-ietf-idr-deprecate-as-set-confed-set),
// which is one of the poisoning limitations §4.4 discusses.
func (p Path) HasSet() bool {
	for _, s := range p.Segments {
		if s.Type == Set {
			return true
		}
	}
	return false
}

// Sequence returns the concatenated ASes of all Sequence segments in
// order, skipping AS_SETs. This is the "AS-level path" a traceroute
// would traverse; poisoned ASes inside sets do not forward traffic.
func (p Path) Sequence() []ASN {
	var out []ASN
	for _, s := range p.Segments {
		if s.Type == Sequence {
			out = append(out, s.ASNs...)
		}
	}
	return out
}

// Equal reports whether two paths are identical segment by segment.
func (p Path) Equal(q Path) bool {
	if len(p.Segments) != len(q.Segments) {
		return false
	}
	for i, s := range p.Segments {
		t := q.Segments[i]
		if s.Type != t.Type || len(s.ASNs) != len(t.ASNs) {
			return false
		}
		for j, a := range s.ASNs {
			if a != t.ASNs[j] {
				return false
			}
		}
	}
	return true
}

// Key returns a compact canonical string usable as a map key.
func (p Path) Key() string { return p.String() }

// String renders the path in looking-glass style:
// "3356 174 {64500,64501} 65000".
func (p Path) String() string {
	var b strings.Builder
	for i, s := range p.Segments {
		if i > 0 {
			b.WriteByte(' ')
		}
		if s.Type == Set {
			b.WriteByte('{')
		}
		for j, a := range s.ASNs {
			if j > 0 {
				if s.Type == Set {
					b.WriteByte(',')
				} else {
					b.WriteByte(' ')
				}
			}
			b.WriteString(uitoa(a))
		}
		if s.Type == Set {
			b.WriteByte('}')
		}
	}
	return b.String()
}

func uitoa(a ASN) string {
	if a == 0 {
		return "0"
	}
	var buf [10]byte
	i := len(buf)
	for a > 0 {
		i--
		buf[i] = byte('0' + a%10)
		a /= 10
	}
	return string(buf[i:])
}
