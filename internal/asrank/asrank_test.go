package asrank

import (
	"testing"

	"routelab/internal/asn"
	"routelab/internal/relgraph"
	"routelab/internal/topology"
)

// chainGraph: t(1) ← m(2) ← s(3); p(4) peers with m.
func chainGraph() *relgraph.Graph {
	g := relgraph.New()
	g.Set(1, 2, topology.RelCustomer) // 2 is 1's customer
	g.Set(2, 3, topology.RelCustomer) // 3 is 2's customer
	g.Set(2, 4, topology.RelPeer)
	return g
}

func TestConeSizes(t *testing.T) {
	r := Compute(chainGraph())
	for a, want := range map[asn.ASN]int{1: 3, 2: 2, 3: 1, 4: 1} {
		if got := r.ConeSize(a); got != want {
			t.Errorf("ConeSize(%d) = %d, want %d", a, got, want)
		}
	}
	if r.ConeSize(99) != 0 {
		t.Error("absent AS should have cone 0")
	}
}

func TestRankOrdering(t *testing.T) {
	r := Compute(chainGraph())
	if r.Rank(1) != 1 || r.Rank(2) != 2 {
		t.Errorf("ranks: 1→%d, 2→%d", r.Rank(1), r.Rank(2))
	}
	top := r.Top(2)
	if len(top) != 2 || top[0] != 1 || top[1] != 2 {
		t.Errorf("Top(2) = %v", top)
	}
	if len(r.Top(100)) != 4 {
		t.Error("Top beyond size should clamp")
	}
	if r.Rank(99) != 0 {
		t.Error("absent AS should rank 0")
	}
}

func TestSiblingsJoinCones(t *testing.T) {
	g := chainGraph()
	g.Set(2, 5, topology.RelSibling) // 5 sibling of 2
	r := Compute(g)
	// 5's cone includes 2's cone via the sibling edge.
	if got := r.ConeSize(5); got != 3 {
		t.Errorf("sibling cone = %d, want 3 (5,2,3)", got)
	}
	// And 1's cone now includes 5 through 2.
	if got := r.ConeSize(1); got != 4 {
		t.Errorf("top cone = %d, want 4", got)
	}
}

func TestClassify(t *testing.T) {
	g := chainGraph()
	r := Compute(g)
	if got := r.Classify(g, 1, 3); got != topology.Tier1 {
		t.Errorf("1 = %v, want Tier-1 (no providers)", got)
	}
	if got := r.Classify(g, 3, 3); got != topology.Stub {
		t.Errorf("3 = %v, want Stub", got)
	}
	if got := r.Classify(g, 2, 2); got != topology.LargeISP {
		t.Errorf("2 with threshold 2 = %v, want Large ISP", got)
	}
	if got := r.Classify(g, 2, 10); got != topology.SmallISP {
		t.Errorf("2 with threshold 10 = %v, want Small ISP", got)
	}
}

// Against the generated topology: the graph-based classification should
// broadly agree with ground-truth classes for the ISP hierarchy.
func TestClassifyAgainstGroundTruth(t *testing.T) {
	topo := topology.Generate(95, topology.TestConfig())
	g := relgraph.FromTopology(topo)
	r := Compute(g)
	agree, total := 0, 0
	for _, cls := range []topology.Class{topology.Tier1, topology.Stub} {
		for _, a := range topo.ASesOfClass(cls) {
			total++
			got := r.Classify(g, a, 40)
			if got == cls {
				agree++
			}
		}
	}
	if frac := float64(agree) / float64(total); frac < 0.85 {
		t.Errorf("clear-cut class agreement %.2f < 0.85", frac)
	}
}
