// Package asrank computes customer cones and size rankings over an AS
// relationship graph — the machinery behind CAIDA's AS Rank, used here
// for the Oliveira-style AS categorization (Table 1) and as an analysis
// aid (cone sizes are how "Large ISP" is even defined).
package asrank

import (
	"sort"

	"routelab/internal/asn"
	"routelab/internal/relgraph"
	"routelab/internal/topology"
)

// Ranking holds cone sizes and orderings for one graph.
type Ranking struct {
	coneSize map[asn.ASN]int
	order    []asn.ASN // descending cone size, ties by ASN
}

// Compute derives every AS's customer cone (the set of ASes reachable by
// walking provider→customer edges, the AS itself included) and ranks by
// cone size. Sibling edges join cones in both directions, matching how
// AS Rank treats organizations.
func Compute(g *relgraph.Graph) *Ranking {
	r := &Ranking{coneSize: make(map[asn.ASN]int)}
	asns := g.ASNs()
	for _, a := range asns {
		r.coneSize[a] = len(cone(g, a))
	}
	r.order = append(r.order, asns...)
	sort.Slice(r.order, func(i, j int) bool {
		if r.coneSize[r.order[i]] != r.coneSize[r.order[j]] {
			return r.coneSize[r.order[i]] > r.coneSize[r.order[j]]
		}
		return r.order[i] < r.order[j]
	})
	return r
}

// cone walks customer and sibling edges breadth-first.
func cone(g *relgraph.Graph, a asn.ASN) map[asn.ASN]bool {
	seen := map[asn.ASN]bool{a: true}
	queue := []asn.ASN{a}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, n := range g.Neighbors(cur) {
			rel := g.Rel(cur, n)
			if rel != topology.RelCustomer && rel != topology.RelSibling {
				continue
			}
			if !seen[n] {
				seen[n] = true
				queue = append(queue, n)
			}
		}
	}
	return seen
}

// ConeSize returns the AS's customer-cone size (1 = itself only), or 0
// for ASes absent from the graph.
func (r *Ranking) ConeSize(a asn.ASN) int { return r.coneSize[a] }

// Rank returns the 1-based rank of an AS (1 = largest cone), or 0 when
// absent.
func (r *Ranking) Rank(a asn.ASN) int {
	for i, x := range r.order {
		if x == a {
			return i + 1
		}
	}
	return 0
}

// Top returns the n largest-cone ASes.
func (r *Ranking) Top(n int) []asn.ASN {
	if n > len(r.order) {
		n = len(r.order)
	}
	return r.order[:n]
}

// Classify buckets an AS by observable structure, after Oliveira et al.:
// Tier-1 networks buy no transit, large ISPs have cones of at least
// largeCone ASes, small ISPs have any customers, stubs none.
func (r *Ranking) Classify(g *relgraph.Graph, a asn.ASN, largeCone int) topology.Class {
	providers, customers := 0, 0
	for _, n := range g.Neighbors(a) {
		switch g.Rel(a, n) {
		case topology.RelProvider:
			providers++
		case topology.RelCustomer:
			customers++
		}
	}
	switch {
	case providers == 0 && customers > 0:
		return topology.Tier1
	case customers == 0:
		return topology.Stub
	case r.ConeSize(a) >= largeCone:
		return topology.LargeISP
	default:
		return topology.SmallISP
	}
}
