// Package geodb is the measurement pipeline's IP-geolocation database —
// the Alidade stand-in of §4.1/§6. It answers "which city is this IP
// in?" from the ground-truth address plan, degraded by a configurable
// error rate: a fraction of lookups return a wrong city in the same
// country (commercial geolocation's classic failure) and a further
// fraction return nothing at all.
package geodb

import (
	"routelab/internal/asn"
	"routelab/internal/geo"
	"routelab/internal/topology"
)

// DB is the geolocation service. Immutable and safe for concurrent use.
type DB struct {
	topo *topology.Topology
	// MissRate is the probability a lookup returns no answer.
	missRate float64
	// WrongCityRate is the probability a located IP is placed in a
	// different city of the same country.
	wrongCityRate float64
	seed          int64
}

// Config sets the database's error model.
type Config struct {
	MissRate      float64
	WrongCityRate float64
	Seed          int64
}

// DefaultConfig mirrors a good infrastructure-focused geolocation
// database: nearly complete for router IPs, with small errors.
func DefaultConfig() Config {
	return Config{MissRate: 0.03, WrongCityRate: 0.04, Seed: 1}
}

// New builds the database over a topology's address plan.
func New(topo *topology.Topology, cfg Config) *DB {
	return &DB{
		topo:          topo,
		missRate:      cfg.MissRate,
		wrongCityRate: cfg.WrongCityRate,
		seed:          cfg.Seed,
	}
}

// Locate returns the city of an IP, or ok=false when the database has no
// answer. Deterministic per (DB, ip).
func (d *DB) Locate(ip asn.Addr) (geo.CityID, bool) {
	truth, ok := d.truthCity(ip)
	if !ok {
		return 0, false
	}
	h := mix(uint64(d.seed), uint64(ip))
	if float64(h%10000)/10000 < d.missRate {
		return 0, false
	}
	h2 := mix(h, 0x5bd1e995)
	if float64(h2%10000)/10000 < d.wrongCityRate {
		// Misplace within the same country.
		cc := d.topo.World.CountryOf(truth)
		if c := d.topo.World.Country(cc); c != nil && len(c.Cities) > 1 {
			return c.Cities[(h2>>16)%uint64(len(c.Cities))], true
		}
	}
	return truth, true
}

// truthCity resolves ground truth: router IPs decode exactly; host IPs
// in announced prefixes land in a deterministic city of the owning AS;
// IXP fabric IPs are unlocatable (no public records).
func (d *DB) truthCity(ip asn.Addr) (geo.CityID, bool) {
	if topology.IsIXPAddr(ip) {
		return 0, false
	}
	if owner, city, ok := d.topo.LocateRouter(ip); ok {
		if city == 0 {
			return d.fallbackCity(owner, ip)
		}
		return city, true
	}
	if owner := d.topo.ASByAddr(ip); !owner.IsZero() {
		// Regional serving prefixes pin their hosts to one city.
		if city := d.topo.CityOfAddr(ip); city != 0 {
			return city, true
		}
		return d.fallbackCity(owner, ip)
	}
	return 0, false
}

func (d *DB) fallbackCity(owner asn.ASN, ip asn.Addr) (geo.CityID, bool) {
	x := d.topo.AS(owner)
	if x == nil || len(x.Cities) == 0 {
		return 0, false
	}
	return x.Cities[mix(uint64(owner), uint64(ip))%uint64(len(x.Cities))], true
}

// Continent returns the continent of an IP, or ContinentNone.
func (d *DB) Continent(ip asn.Addr) geo.Continent {
	city, ok := d.Locate(ip)
	if !ok {
		return geo.ContinentNone
	}
	return d.topo.World.ContinentOf(city)
}

func mix(a, b uint64) uint64 {
	x := a ^ (b + 0x9e3779b97f4a7c15 + (a << 6) + (a >> 2))
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
