package geodb

import (
	"testing"

	"routelab/internal/geo"
	"routelab/internal/topology"
)

var testTopo = topology.Generate(71, topology.TestConfig())

func TestLocateRouterAddresses(t *testing.T) {
	d := New(testTopo, Config{Seed: 1}) // zero error rates
	for _, a := range testTopo.ASNs()[:60] {
		x := testTopo.AS(a)
		for ci, city := range x.Cities {
			ip := testTopo.RouterIP(a, city, ci%8)
			if ip == 0 {
				continue
			}
			got, ok := d.Locate(ip)
			if !ok {
				t.Fatalf("router %v unlocatable with zero error rates", ip)
			}
			if got != city {
				t.Fatalf("router %v located in %d, want %d", ip, got, city)
			}
		}
	}
}

func TestLocateHostAddresses(t *testing.T) {
	d := New(testTopo, Config{Seed: 1})
	a := testTopo.ASNs()[0]
	x := testTopo.AS(a)
	ip := x.Prefixes[0].Nth(topology.HostOffset(7))
	city, ok := d.Locate(ip)
	if !ok {
		t.Fatal("host address unlocatable")
	}
	if !x.HasCity(city) {
		t.Errorf("host located in %d, not one of the AS's cities", city)
	}
}

func TestIXPUnlocatable(t *testing.T) {
	d := New(testTopo, Config{Seed: 1})
	if _, ok := d.Locate(topology.IXPPrefix(4).Nth(2)); ok {
		t.Error("IXP fabric addresses must be unlocatable")
	}
	if d.Continent(topology.IXPPrefix(4).Nth(2)) != geo.ContinentNone {
		t.Error("IXP continent must be unknown")
	}
}

func TestErrorRatesBite(t *testing.T) {
	exact := New(testTopo, Config{Seed: 5})
	noisy := New(testTopo, Config{MissRate: 0.2, WrongCityRate: 0.2, Seed: 5})
	misses, wrong, total := 0, 0, 0
	for _, a := range testTopo.ASNs() {
		x := testTopo.AS(a)
		if len(x.Cities) == 0 {
			continue
		}
		ip := testTopo.RouterIP(a, x.Cities[0], 0)
		if ip == 0 {
			continue
		}
		total++
		truth, _ := exact.Locate(ip)
		got, ok := noisy.Locate(ip)
		switch {
		case !ok:
			misses++
		case got != truth:
			wrong++
			// Errors stay within the same country.
			if testTopo.World.CountryOf(got) != testTopo.World.CountryOf(truth) {
				t.Fatalf("wrong-city error crossed a border: %d vs %d", got, truth)
			}
		}
	}
	if total < 100 {
		t.Fatalf("only %d samples", total)
	}
	if misses == 0 {
		t.Error("MissRate 0.2 produced no misses")
	}
	missFrac := float64(misses) / float64(total)
	if missFrac < 0.1 || missFrac > 0.35 {
		t.Errorf("miss fraction %.2f far from configured 0.2", missFrac)
	}
}

func TestLocateDeterministic(t *testing.T) {
	d := New(testTopo, DefaultConfig())
	a := testTopo.ASNs()[5]
	ip := testTopo.RouterIP(a, testTopo.AS(a).Cities[0], 0)
	c1, ok1 := d.Locate(ip)
	c2, ok2 := d.Locate(ip)
	if c1 != c2 || ok1 != ok2 {
		t.Error("Locate is not deterministic")
	}
}

func TestContinent(t *testing.T) {
	d := New(testTopo, Config{Seed: 1})
	a := testTopo.ASNs()[0]
	x := testTopo.AS(a)
	ip := testTopo.RouterIP(a, x.Cities[0], 0)
	want := testTopo.World.ContinentOf(x.Cities[0])
	if got := d.Continent(ip); got != want {
		t.Errorf("Continent = %v, want %v", got, want)
	}
}
