package dnsdb

import (
	"math/rand"
	"testing"

	"routelab/internal/asn"
	"routelab/internal/geo"
)

func pfx(s string) asn.Prefix {
	p, err := asn.ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

func TestResolveOnNet(t *testing.T) {
	d := New()
	err := d.AddHostname(Hostname{
		Name: "www.content.example", Provider: 15169, Kind: OnNet,
		Prefixes: []asn.Prefix{pfx("8.8.8.0/24")},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	ans, err := d.Resolve("www.content.example", 64500, geo.ContinentNone, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	if ans.ServeAS != 15169 {
		t.Errorf("ServeAS = %v, want provider", ans.ServeAS)
	}
	if !pfx("8.8.8.0/24").Contains(ans.Addr) {
		t.Errorf("answer %v outside serving prefix", ans.Addr)
	}
}

func TestResolveOffNetPrefersClientCache(t *testing.T) {
	d := New()
	if err := d.AddHostname(Hostname{
		Name: "cdn.example", Provider: 20940, Kind: OffNet,
		Prefixes: []asn.Prefix{pfx("23.0.0.0/24")},
	}); err != nil {
		t.Fatal(err)
	}
	d.AddCache(Cache{Provider: 20940, HostAS: 64500, Prefix: pfx("10.1.0.0/24")})
	d.AddCache(Cache{Provider: 20940, HostAS: 64501, Prefix: pfx("10.2.0.0/24")})
	rng := rand.New(rand.NewSource(2))

	// Probe inside an AS hosting a cache: answer comes from that AS.
	ans, err := d.Resolve("cdn.example", 64500, geo.ContinentNone, []asn.ASN{64501}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if ans.ServeAS != 64500 {
		t.Errorf("ServeAS = %v, want client AS cache", ans.ServeAS)
	}

	// Probe whose upstream hosts a cache: answer from the upstream.
	ans, err = d.Resolve("cdn.example", 64999, geo.ContinentNone, []asn.ASN{64501}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if ans.ServeAS != 64501 {
		t.Errorf("ServeAS = %v, want upstream cache", ans.ServeAS)
	}

	// Probe with no nearby cache: falls back to on-net.
	ans, err = d.Resolve("cdn.example", 64999, geo.ContinentNone, []asn.ASN{64998}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if ans.ServeAS != 20940 {
		t.Errorf("ServeAS = %v, want provider fallback", ans.ServeAS)
	}
}

func TestResolveNXDOMAIN(t *testing.T) {
	d := New()
	if _, err := d.Resolve("nope.example", 1, geo.ContinentNone, nil, rand.New(rand.NewSource(1))); err == nil {
		t.Error("want NXDOMAIN error")
	}
}

func TestAddHostnameValidation(t *testing.T) {
	d := New()
	if err := d.AddHostname(Hostname{Name: "", Provider: 1}); err == nil {
		t.Error("empty name accepted")
	}
	if err := d.AddHostname(Hostname{Name: "x", Provider: 0}); err == nil {
		t.Error("zero provider accepted")
	}
	if err := d.AddHostname(Hostname{Name: "x", Provider: 1, Kind: OnNet}); err == nil {
		t.Error("on-net hostname without prefixes accepted")
	}
}

func TestOffNetWithoutFallbackErrors(t *testing.T) {
	d := New()
	if err := d.AddHostname(Hostname{Name: "c.example", Provider: 7, Kind: OffNet}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Resolve("c.example", 1, geo.ContinentNone, nil, rand.New(rand.NewSource(1))); err == nil {
		t.Error("off-net with no caches and no prefixes should error")
	}
}

func TestZoneSOA(t *testing.T) {
	d := New()
	d.AddSOA(SOARecord{Domain: "dishaccess.example", Zone: "dishnetwork.example"})
	d.AddSOA(SOARecord{Domain: "dish.example", Zone: "dishnetwork.example"})
	if d.Zone("dishaccess.example") != "dishnetwork.example" {
		t.Error("explicit SOA not honored")
	}
	if d.Zone("dish.example") != d.Zone("dishaccess.example") {
		t.Error("sibling domains should share a zone")
	}
	if d.Zone("standalone.example") != "standalone.example" {
		t.Error("domains default to their own zone")
	}
}

func TestHostnamesSorted(t *testing.T) {
	d := New()
	for _, n := range []string{"b.example", "a.example"} {
		if err := d.AddHostname(Hostname{Name: n, Provider: 1, Kind: OnNet, Prefixes: []asn.Prefix{pfx("1.0.0.0/24")}}); err != nil {
			t.Fatal(err)
		}
	}
	hs := d.Hostnames()
	if len(hs) != 2 || hs[0].Name != "a.example" {
		t.Errorf("Hostnames = %v", hs)
	}
}

func TestCacheHosts(t *testing.T) {
	d := New()
	d.AddCache(Cache{Provider: 7, HostAS: 30, Prefix: pfx("10.0.0.0/24")})
	d.AddCache(Cache{Provider: 7, HostAS: 10, Prefix: pfx("10.0.1.0/24")})
	hosts := d.CacheHosts(7)
	if len(hosts) != 2 || hosts[0] != 10 || hosts[1] != 30 {
		t.Errorf("CacheHosts = %v", hosts)
	}
	if len(d.CacheHosts(8)) != 0 {
		t.Error("unknown provider should have no cache hosts")
	}
}
