// Package dnsdb models the DNS facts routelab's measurement pipeline
// depends on: content hostnames that resolve differently depending on the
// querying probe (CDN mapping), and SOA records that expose which mail
// domains share an authoritative zone (the sibling-inference signal of
// §4.2: dish.com and dishaccess.tv share the dishnetwork.com SOA).
package dnsdb

import (
	"fmt"
	"math/rand"
	"sort"

	"routelab/internal/asn"
	"routelab/internal/geo"
)

// HostingKind describes how a content hostname is served.
type HostingKind uint8

const (
	// OnNet hostnames always resolve into the provider's own AS.
	OnNet HostingKind = iota
	// OffNet hostnames resolve to caches deployed inside eyeball ISPs
	// when the querying probe's AS (or its provider) hosts a cache —
	// the Akamai model. This is why the paper's 34 hostnames produced
	// 218 distinct destination ASes.
	OffNet
)

// Hostname is one content DNS name.
type Hostname struct {
	Name string
	// Provider is the content provider's home AS.
	Provider asn.ASN
	// Kind selects on-net vs off-net serving.
	Kind HostingKind
	// Prefixes are the provider's serving prefixes (on-net answers).
	Prefixes []asn.Prefix
	// Continents, when non-nil, gives each serving prefix's region
	// (parallel to Prefixes): the resolver maps clients to the prefix
	// serving their continent, as CDN DNS does.
	Continents []geo.Continent
}

// Cache is an off-net replica deployed inside a host AS.
type Cache struct {
	Provider asn.ASN
	HostAS   asn.ASN
	Prefix   asn.Prefix // addressed from the HOST AS's space
}

// SOARecord ties a mail/web domain to its authoritative zone.
type SOARecord struct {
	Domain string // e.g. "dishaccess.example"
	Zone   string // e.g. "dishnetwork.example"
}

// DB is the queryable DNS database.
type DB struct {
	hosts  map[string]*Hostname
	caches map[asn.ASN][]Cache // provider -> replicas
	soa    map[string]string   // domain -> zone
}

// New returns an empty DNS database.
func New() *DB {
	return &DB{
		hosts:  make(map[string]*Hostname),
		caches: make(map[asn.ASN][]Cache),
		soa:    make(map[string]string),
	}
}

// AddHostname registers a content hostname.
func (d *DB) AddHostname(h Hostname) error {
	if h.Name == "" || h.Provider.IsZero() {
		return fmt.Errorf("dnsdb: hostname needs a name and provider AS")
	}
	if h.Kind == OnNet && len(h.Prefixes) == 0 {
		return fmt.Errorf("dnsdb: on-net hostname %q needs serving prefixes", h.Name)
	}
	if h.Continents != nil && len(h.Continents) != len(h.Prefixes) {
		return fmt.Errorf("dnsdb: hostname %q has %d continents for %d prefixes",
			h.Name, len(h.Continents), len(h.Prefixes))
	}
	cp := h
	cp.Prefixes = append([]asn.Prefix(nil), h.Prefixes...)
	cp.Continents = append([]geo.Continent(nil), h.Continents...)
	d.hosts[h.Name] = &cp
	return nil
}

// AddCache registers an off-net replica for a provider.
func (d *DB) AddCache(c Cache) {
	d.caches[c.Provider] = append(d.caches[c.Provider], c)
}

// AddSOA registers that domain's zone authority.
func (d *DB) AddSOA(r SOARecord) { d.soa[r.Domain] = r.Zone }

// Zone returns the authoritative zone for a domain, or the domain itself
// when no explicit SOA record exists (a domain is its own zone).
func (d *DB) Zone(domain string) string {
	if z, ok := d.soa[domain]; ok {
		return z
	}
	return domain
}

// Hostnames returns all registered hostnames sorted by name.
func (d *DB) Hostnames() []Hostname {
	out := make([]Hostname, 0, len(d.hosts))
	for _, h := range d.hosts {
		out = append(out, *h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Answer is a resolved hostname: the address to traceroute to and the AS
// that actually serves it (which, for off-net caches, is not the
// provider).
type Answer struct {
	Addr    asn.Addr
	ServeAS asn.ASN
}

// Resolve answers a DNS query from a probe in clientAS (on clientCont,
// ContinentNone when unknown) whose provider chain is upstreams (nearest
// first). Off-net hostnames prefer a cache in the client's own AS, then
// in an upstream, then fall back to on-net. On-net answers prefer the
// serving prefix regionalized to the client's continent. rng breaks the
// remaining ties deterministically.
func (d *DB) Resolve(name string, clientAS asn.ASN, clientCont geo.Continent, upstreams []asn.ASN, rng *rand.Rand) (Answer, error) {
	h, ok := d.hosts[name]
	if !ok {
		return Answer{}, fmt.Errorf("dnsdb: NXDOMAIN %q", name)
	}
	// Host addresses sit at offsets 1024+ so they stay clear of router
	// infrastructure space inside covering prefixes (cache /24s wrap
	// the offset harmlessly).
	hostOff := func() uint32 { return 1024 + uint32(rng.Intn(2048)) }
	if h.Kind == OffNet {
		if c, ok := d.findCache(h.Provider, clientAS); ok {
			return Answer{Addr: c.Prefix.Nth(hostOff()), ServeAS: c.HostAS}, nil
		}
		for _, up := range upstreams {
			if c, ok := d.findCache(h.Provider, up); ok {
				return Answer{Addr: c.Prefix.Nth(hostOff()), ServeAS: c.HostAS}, nil
			}
		}
	}
	if len(h.Prefixes) == 0 {
		return Answer{}, fmt.Errorf("dnsdb: %q has no on-net prefixes and no reachable cache", name)
	}
	// Regional prefix selection.
	if clientCont != geo.ContinentNone && len(h.Continents) == len(h.Prefixes) {
		var regional []asn.Prefix
		for i, c := range h.Continents {
			if c == clientCont {
				regional = append(regional, h.Prefixes[i])
			}
		}
		if len(regional) > 0 {
			p := regional[rng.Intn(len(regional))]
			return Answer{Addr: p.Nth(hostOff()), ServeAS: h.Provider}, nil
		}
	}
	p := h.Prefixes[rng.Intn(len(h.Prefixes))]
	return Answer{Addr: p.Nth(hostOff()), ServeAS: h.Provider}, nil
}

func (d *DB) findCache(provider, host asn.ASN) (Cache, bool) {
	for _, c := range d.caches[provider] {
		if c.HostAS == host {
			return c, true
		}
	}
	return Cache{}, false
}

// CacheHosts returns the ASes hosting caches for a provider, sorted.
func (d *DB) CacheHosts(provider asn.ASN) []asn.ASN {
	var out []asn.ASN
	for _, c := range d.caches[provider] {
		out = append(out, c.HostAS)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
