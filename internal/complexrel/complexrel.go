// Package complexrel plays the role of the Giotsas et al. (IMC'14)
// complex-relationship dataset the paper consumes in §4.1: a published
// list of AS pairs whose relationship is hybrid (differs by city) plus
// partial-transit arrangements.
//
// The paper does not re-derive this dataset; it downloads it. We model
// that by EXTRACTING it from ground truth at a configurable coverage —
// published datasets are never complete — so the classify stage can
// apply it exactly as §4.1 does (geolocate the interconnection, look up
// the pair+city, override the relationship).
package complexrel

import (
	"math/rand"
	"sort"

	"routelab/internal/asn"
	"routelab/internal/geo"
	"routelab/internal/topology"
)

// HybridEntry is one published hybrid relationship: at City, B's role
// from A differs from the pair's base relationship.
type HybridEntry struct {
	A, B asn.ASN
	City geo.CityID
	Role topology.Rel // B's role from A's perspective at City
}

// PartialEntry is one published partial-transit arrangement: B provides
// A transit, but only toward the listed prefixes.
type PartialEntry struct {
	A, B     asn.ASN
	Prefixes []asn.Prefix
}

// Dataset is the queryable complex-relationship collection.
type Dataset struct {
	hybrid  map[hybridKey]topology.Rel
	partial map[topology.LinkKey][]asn.Prefix
}

type hybridKey struct {
	a, b asn.ASN
	city geo.CityID
}

// New returns an empty dataset.
func New() *Dataset {
	return &Dataset{
		hybrid:  make(map[hybridKey]topology.Rel),
		partial: make(map[topology.LinkKey][]asn.Prefix),
	}
}

// AddHybrid records a hybrid entry (both directions).
func (d *Dataset) AddHybrid(e HybridEntry) {
	d.hybrid[hybridKey{e.A, e.B, e.City}] = e.Role
	d.hybrid[hybridKey{e.B, e.A, e.City}] = e.Role.Invert()
}

// AddPartial records a partial-transit entry.
func (d *Dataset) AddPartial(e PartialEntry) {
	k := topology.MakeLinkKey(e.A, e.B)
	d.partial[k] = append(d.partial[k], e.Prefixes...)
}

// HybridRole looks up b's role from a's perspective at a city.
func (d *Dataset) HybridRole(a, b asn.ASN, city geo.CityID) (topology.Rel, bool) {
	r, ok := d.hybrid[hybridKey{a, b, city}]
	return r, ok
}

// PartialTransit reports whether the pair has a published partial-
// transit arrangement covering the prefix.
func (d *Dataset) PartialTransit(a, b asn.ASN, p asn.Prefix) bool {
	for _, q := range d.partial[topology.MakeLinkKey(a, b)] {
		if q == p {
			return true
		}
	}
	return false
}

// NumHybrid returns the number of (pair, city) hybrid entries.
func (d *Dataset) NumHybrid() int { return len(d.hybrid) / 2 }

// NumPartial returns the number of partial-transit pairs.
func (d *Dataset) NumPartial() int { return len(d.partial) }

// FromGroundTruth extracts the dataset from a topology at the given
// coverage fraction (published datasets are incomplete; 1.0 means
// everything the ground truth contains).
func FromGroundTruth(topo *topology.Topology, rng *rand.Rand, coverage float64) *Dataset {
	d := New()
	var hybridLinks, partialLinks []*topology.Link
	topo.Links(func(l *topology.Link) {
		if l.IsHybrid() {
			hybridLinks = append(hybridLinks, l)
		}
		if l.PartialTransitFor != nil {
			partialLinks = append(partialLinks, l)
		}
	})
	sortLinks(hybridLinks)
	sortLinks(partialLinks)
	for _, l := range hybridLinks {
		if rng.Float64() >= coverage {
			continue
		}
		cities := make([]geo.CityID, 0, len(l.HybridRoles))
		for c := range l.HybridRoles {
			cities = append(cities, c)
		}
		sort.Slice(cities, func(i, j int) bool { return cities[i] < cities[j] })
		for _, c := range cities {
			d.AddHybrid(HybridEntry{A: l.Lo, B: l.Hi, City: c, Role: l.HybridRoles[c]})
		}
	}
	for _, l := range partialLinks {
		if rng.Float64() >= coverage {
			continue
		}
		ps := make([]asn.Prefix, 0, len(l.PartialTransitFor))
		for p := range l.PartialTransitFor {
			ps = append(ps, p)
		}
		sort.Slice(ps, func(i, j int) bool {
			if ps[i].Addr != ps[j].Addr {
				return ps[i].Addr < ps[j].Addr
			}
			return ps[i].Len < ps[j].Len
		})
		// Hi provides Lo transit for these prefixes.
		d.AddPartial(PartialEntry{A: l.Lo, B: l.Hi, Prefixes: ps})
	}
	return d
}

func sortLinks(ls []*topology.Link) {
	sort.Slice(ls, func(i, j int) bool {
		if ls[i].Lo != ls[j].Lo {
			return ls[i].Lo < ls[j].Lo
		}
		return ls[i].Hi < ls[j].Hi
	})
}
