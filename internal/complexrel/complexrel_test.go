package complexrel

import (
	"math/rand"
	"testing"

	"routelab/internal/asn"
	"routelab/internal/topology"
)

func TestHybridLookup(t *testing.T) {
	d := New()
	d.AddHybrid(HybridEntry{A: 1, B: 2, City: 7, Role: topology.RelCustomer})
	if r, ok := d.HybridRole(1, 2, 7); !ok || r != topology.RelCustomer {
		t.Errorf("HybridRole(1,2,7) = %v %v", r, ok)
	}
	// Inverse direction is derived.
	if r, ok := d.HybridRole(2, 1, 7); !ok || r != topology.RelProvider {
		t.Errorf("HybridRole(2,1,7) = %v %v", r, ok)
	}
	if _, ok := d.HybridRole(1, 2, 8); ok {
		t.Error("different city must miss")
	}
	if _, ok := d.HybridRole(1, 3, 7); ok {
		t.Error("different pair must miss")
	}
	if d.NumHybrid() != 1 {
		t.Errorf("NumHybrid = %d", d.NumHybrid())
	}
}

func TestPartialTransitLookup(t *testing.T) {
	d := New()
	p := asn.NewPrefix(asn.AddrFrom4(10, 0, 0, 0), 24)
	q := asn.NewPrefix(asn.AddrFrom4(10, 0, 1, 0), 24)
	d.AddPartial(PartialEntry{A: 1, B: 2, Prefixes: []asn.Prefix{p}})
	if !d.PartialTransit(1, 2, p) || !d.PartialTransit(2, 1, p) {
		t.Error("partial transit must match either order")
	}
	if d.PartialTransit(1, 2, q) {
		t.Error("uncovered prefix must miss")
	}
	if d.NumPartial() != 1 {
		t.Errorf("NumPartial = %d", d.NumPartial())
	}
}

func TestFromGroundTruthFullCoverage(t *testing.T) {
	topo := topology.Generate(19, topology.TestConfig())
	d := FromGroundTruth(topo, rand.New(rand.NewSource(19)), 1.0)
	wantHybrid, wantPartial := 0, 0
	topo.Links(func(l *topology.Link) {
		wantHybrid += len(l.HybridRoles)
		if l.PartialTransitFor != nil {
			wantPartial++
		}
	})
	if d.NumHybrid() != wantHybrid {
		t.Errorf("NumHybrid = %d, want %d", d.NumHybrid(), wantHybrid)
	}
	if d.NumPartial() != wantPartial {
		t.Errorf("NumPartial = %d, want %d", d.NumPartial(), wantPartial)
	}
	// Every entry must agree with ground truth.
	topo.Links(func(l *topology.Link) {
		for city, role := range l.HybridRoles {
			if got, ok := d.HybridRole(l.Lo, l.Hi, city); !ok || got != role {
				t.Errorf("hybrid %v-%v@%d = %v %v, want %v", l.Lo, l.Hi, city, got, ok, role)
			}
		}
		for p := range l.PartialTransitFor {
			if !d.PartialTransit(l.Lo, l.Hi, p) {
				t.Errorf("partial %v-%v %s missing", l.Lo, l.Hi, p)
			}
		}
	})
}

func TestFromGroundTruthPartialCoverage(t *testing.T) {
	topo := topology.Generate(19, topology.TestConfig())
	full := FromGroundTruth(topo, rand.New(rand.NewSource(1)), 1.0)
	none := FromGroundTruth(topo, rand.New(rand.NewSource(1)), 0.0)
	if none.NumHybrid() != 0 || none.NumPartial() != 0 {
		t.Error("zero coverage must be empty")
	}
	if full.NumHybrid() == 0 {
		t.Skip("topology generated no hybrid links")
	}
	half := FromGroundTruth(topo, rand.New(rand.NewSource(1)), 0.5)
	if half.NumHybrid() > full.NumHybrid() {
		t.Error("partial coverage cannot exceed full")
	}
}

func TestFromGroundTruthDeterministic(t *testing.T) {
	topo := topology.Generate(23, topology.TestConfig())
	a := FromGroundTruth(topo, rand.New(rand.NewSource(5)), 0.7)
	b := FromGroundTruth(topo, rand.New(rand.NewSource(5)), 0.7)
	if a.NumHybrid() != b.NumHybrid() || a.NumPartial() != b.NumPartial() {
		t.Error("same seed must extract the same dataset")
	}
}
