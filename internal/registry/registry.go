// Package registry models the whois/RIR data plane of the synthetic
// Internet: organization records with contact e-mail domains and per-AS
// registration records with a single registered country.
//
// Two real-world deficiencies the paper leans on are reproduced here:
//
//   - An AS that operates in many countries still has exactly ONE
//     registered country per RIR record (§6 "whois data still points to
//     just one country"), and an AS registered in several RIRs shows a
//     DIFFERENT country in each, so country attribution from whois is
//     systematically lossy.
//   - Some organizations register contact addresses at shared mail
//     providers, which would cause false sibling merges if used naively
//     (§4.2, Cai et al.); sibling inference must filter these.
package registry

import (
	"fmt"
	"sort"

	"routelab/internal/asn"
	"routelab/internal/geo"
)

// OrgID identifies an organization. The zero value is "no organization".
type OrgID string

// RIR names a regional Internet registry.
type RIR string

// The five regional Internet registries.
const (
	ARIN    RIR = "ARIN"
	RIPE    RIR = "RIPE"
	APNIC   RIR = "APNIC"
	LACNIC  RIR = "LACNIC"
	AFRINIC RIR = "AFRINIC"
)

// RIRForContinent returns the registry responsible for a continent.
func RIRForContinent(c geo.Continent) RIR {
	switch c {
	case geo.NA:
		return ARIN
	case geo.EU:
		return RIPE
	case geo.AS, geo.OC:
		return APNIC
	case geo.SA:
		return LACNIC
	case geo.AF:
		return AFRINIC
	default:
		return ARIN
	}
}

// FreemailDomains lists shared mail providers whose appearance in whois
// contact records carries no organizational signal. Sibling inference
// must skip contacts hosted here (the paper also skips RIR-hosted mail).
var FreemailDomains = map[string]bool{
	"hotmail.example":  true,
	"gmail.example":    true,
	"yahoo.example":    true,
	"ripe.example":     true, // RIR-hosted contact
	"arin.example":     true,
	"registro.example": true,
}

// Org is an organization record.
type Org struct {
	ID   OrgID
	Name string
	// EmailDomains are the mail domains the org registers contacts under.
	// Several domains may belong to one org (dish.com / dishaccess.tv in
	// the paper); DNS SOA records tie them together.
	EmailDomains []string
	Phone        string
}

// ASRecord is the whois record of one AS.
type ASRecord struct {
	ASN asn.ASN
	Org OrgID
	// Country is the single registered country exposed by whois lookups,
	// regardless of how many countries the AS actually operates in.
	Country geo.CountryCode
	// Registry is the RIR holding the primary record.
	Registry RIR
	// AltCountries lists divergent registrations for ASes present in
	// multiple RIR regions. Whois returns only Country; AltCountries
	// models the "each RIR shows a different country" limitation and is
	// reachable only through LookupVia.
	AltCountries map[RIR]geo.CountryCode
	// Email is the registered contact address ("noc@example.net").
	Email string
}

// EmailDomain returns the domain part of the contact address, or "".
func (r ASRecord) EmailDomain() string {
	for i := len(r.Email) - 1; i >= 0; i-- {
		if r.Email[i] == '@' {
			return r.Email[i+1:]
		}
	}
	return ""
}

// Registry is the queryable whois database.
type Registry struct {
	orgs map[OrgID]*Org
	as   map[asn.ASN]*ASRecord
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{orgs: make(map[OrgID]*Org), as: make(map[asn.ASN]*ASRecord)}
}

// AddOrg registers an organization; re-adding an ID overwrites it.
func (g *Registry) AddOrg(o Org) {
	cp := o
	cp.EmailDomains = append([]string(nil), o.EmailDomains...)
	g.orgs[o.ID] = &cp
}

// AddAS registers an AS record; re-adding an ASN overwrites it.
func (g *Registry) AddAS(r ASRecord) error {
	if r.ASN.IsZero() {
		return fmt.Errorf("registry: refusing to add record for the zero ASN")
	}
	cp := r
	if r.AltCountries != nil {
		cp.AltCountries = make(map[RIR]geo.CountryCode, len(r.AltCountries))
		for k, v := range r.AltCountries {
			cp.AltCountries[k] = v
		}
	}
	g.as[r.ASN] = &cp
	return nil
}

// Whois returns the primary record for an AS.
func (g *Registry) Whois(a asn.ASN) (ASRecord, bool) {
	r, ok := g.as[a]
	if !ok {
		return ASRecord{}, false
	}
	return *r, true
}

// LookupVia returns the country a particular RIR reports for the AS. For
// multi-RIR ASes this differs from the primary record's country.
func (g *Registry) LookupVia(a asn.ASN, rir RIR) (geo.CountryCode, bool) {
	r, ok := g.as[a]
	if !ok {
		return "", false
	}
	if r.Registry == rir {
		return r.Country, true
	}
	if cc, ok := r.AltCountries[rir]; ok {
		return cc, true
	}
	return "", false
}

// Org returns an organization record.
func (g *Registry) Org(id OrgID) (Org, bool) {
	o, ok := g.orgs[id]
	if !ok {
		return Org{}, false
	}
	cp := *o
	cp.EmailDomains = append([]string(nil), o.EmailDomains...)
	return cp, true
}

// RegisteredCountry returns the whois country of an AS, or "".
func (g *Registry) RegisteredCountry(a asn.ASN) geo.CountryCode {
	if r, ok := g.as[a]; ok {
		return r.Country
	}
	return ""
}

// ASNs returns every registered ASN in ascending order.
func (g *Registry) ASNs() []asn.ASN {
	out := make([]asn.ASN, 0, len(g.as))
	for a := range g.as {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of AS records.
func (g *Registry) Len() int { return len(g.as) }
