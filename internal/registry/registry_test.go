package registry

import (
	"testing"

	"routelab/internal/asn"
	"routelab/internal/geo"
)

func TestWhoisRoundTrip(t *testing.T) {
	g := New()
	g.AddOrg(Org{ID: "org-level3", Name: "Level 3", EmailDomains: []string{"level3.example"}})
	rec := ASRecord{
		ASN: 3356, Org: "org-level3", Country: "AA", Registry: ARIN,
		Email: "noc@level3.example",
	}
	if err := g.AddAS(rec); err != nil {
		t.Fatal(err)
	}
	got, ok := g.Whois(3356)
	if !ok {
		t.Fatal("whois miss")
	}
	if got.Org != "org-level3" || got.Country != "AA" {
		t.Fatalf("got %+v", got)
	}
	if got.EmailDomain() != "level3.example" {
		t.Errorf("EmailDomain = %q", got.EmailDomain())
	}
	if _, ok := g.Whois(1); ok {
		t.Error("whois hit for unregistered AS")
	}
}

func TestAddASRejectsZero(t *testing.T) {
	g := New()
	if err := g.AddAS(ASRecord{}); err == nil {
		t.Error("zero ASN accepted")
	}
}

func TestMultiRIRCountries(t *testing.T) {
	g := New()
	err := g.AddAS(ASRecord{
		ASN: 701, Org: "org-vz", Country: "AB", Registry: ARIN,
		AltCountries: map[RIR]geo.CountryCode{RIPE: "BC", APNIC: "CD"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Whois exposes only the primary country — the paper's limitation.
	if g.RegisteredCountry(701) != "AB" {
		t.Errorf("primary country = %v", g.RegisteredCountry(701))
	}
	if cc, ok := g.LookupVia(701, RIPE); !ok || cc != "BC" {
		t.Errorf("RIPE view = %v %v", cc, ok)
	}
	if cc, ok := g.LookupVia(701, ARIN); !ok || cc != "AB" {
		t.Errorf("ARIN view = %v %v", cc, ok)
	}
	if _, ok := g.LookupVia(701, LACNIC); ok {
		t.Error("LACNIC should have no record")
	}
	if _, ok := g.LookupVia(9999, ARIN); ok {
		t.Error("unknown AS should miss")
	}
}

func TestEmailDomainEdge(t *testing.T) {
	if (ASRecord{Email: "no-at-sign"}).EmailDomain() != "" {
		t.Error("want empty domain for malformed email")
	}
	if (ASRecord{}).EmailDomain() != "" {
		t.Error("want empty domain for empty email")
	}
}

func TestRIRForContinent(t *testing.T) {
	cases := map[geo.Continent]RIR{
		geo.NA: ARIN, geo.EU: RIPE, geo.AS: APNIC,
		geo.OC: APNIC, geo.SA: LACNIC, geo.AF: AFRINIC,
	}
	for cont, want := range cases {
		if got := RIRForContinent(cont); got != want {
			t.Errorf("RIRForContinent(%s) = %s, want %s", cont, got, want)
		}
	}
	if RIRForContinent(geo.ContinentNone) != ARIN {
		t.Error("unknown continent should default to ARIN")
	}
}

func TestASNsSortedAndLen(t *testing.T) {
	g := New()
	for _, a := range []asn.ASN{300, 100, 200} {
		if err := g.AddAS(ASRecord{ASN: a, Country: "AA", Registry: ARIN}); err != nil {
			t.Fatal(err)
		}
	}
	got := g.ASNs()
	if len(got) != 3 || got[0] != 100 || got[1] != 200 || got[2] != 300 {
		t.Errorf("ASNs = %v", got)
	}
	if g.Len() != 3 {
		t.Errorf("Len = %d", g.Len())
	}
}

func TestOrgIsolation(t *testing.T) {
	g := New()
	g.AddOrg(Org{ID: "o1", EmailDomains: []string{"a.example"}})
	o, ok := g.Org("o1")
	if !ok {
		t.Fatal("org miss")
	}
	o.EmailDomains[0] = "mutated.example"
	again, _ := g.Org("o1")
	if again.EmailDomains[0] != "a.example" {
		t.Error("caller mutation leaked into registry")
	}
	if _, ok := g.Org("nope"); ok {
		t.Error("unknown org should miss")
	}
}

func TestFreemailList(t *testing.T) {
	if !FreemailDomains["hotmail.example"] {
		t.Error("hotmail.example should be freemail")
	}
	if FreemailDomains["level3.example"] {
		t.Error("level3.example should not be freemail")
	}
}
