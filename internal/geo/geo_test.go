package geo

import (
	"math/rand"
	"testing"
)

func newTestWorld(seed int64) *World {
	return NewWorld(rand.New(rand.NewSource(seed)), Config{})
}

func TestWorldDeterministic(t *testing.T) {
	a, b := newTestWorld(7), newTestWorld(7)
	if a.NumCities() != b.NumCities() {
		t.Fatalf("same seed, different city counts: %d vs %d", a.NumCities(), b.NumCities())
	}
	for i := 1; i <= a.NumCities(); i++ {
		if a.City(CityID(i)) != b.City(CityID(i)) {
			t.Fatalf("city %d differs between identical seeds", i)
		}
	}
}

func TestWorldCounts(t *testing.T) {
	w := newTestWorld(1)
	cfg := DefaultConfig()
	total := 0
	for _, cont := range Continents {
		got := len(w.Countries(cont))
		want := cfg.CountriesPerContinent[cont]
		if got != want {
			t.Errorf("%s: %d countries, want %d", cont, got, want)
		}
		total += got
	}
	if len(w.AllCountries()) != total {
		t.Errorf("AllCountries = %d, want %d", len(w.AllCountries()), total)
	}
}

func TestCountryCodesUnique(t *testing.T) {
	w := newTestWorld(2)
	seen := map[CountryCode]bool{}
	for _, cc := range w.AllCountries() {
		if seen[cc] {
			t.Fatalf("duplicate country code %s", cc)
		}
		seen[cc] = true
		if len(cc) != 2 {
			t.Fatalf("country code %q not two letters", cc)
		}
	}
}

func TestCityLookups(t *testing.T) {
	w := newTestWorld(3)
	for _, cont := range Continents {
		for _, cc := range w.Countries(cont) {
			c := w.Country(cc)
			if c == nil {
				t.Fatalf("missing country %s", cc)
			}
			if len(c.Cities) == 0 {
				t.Fatalf("country %s has no cities", cc)
			}
			for _, id := range c.Cities {
				city := w.City(id)
				if city.Country != cc || city.Continent != cont {
					t.Fatalf("city %d misfiled: %+v", id, city)
				}
				if w.CountryOf(id) != cc || w.ContinentOf(id) != cont {
					t.Fatalf("lookup mismatch for city %d", id)
				}
			}
		}
	}
}

func TestUnknownCity(t *testing.T) {
	w := newTestWorld(4)
	if w.City(0) != (City{}) {
		t.Error("City(0) should be zero")
	}
	if w.ContinentOf(0) != ContinentNone || w.CountryOf(0) != "" {
		t.Error("unknown city should have no location")
	}
	if w.SameCountry(0, 0) {
		t.Error("two unknowns are not the same country")
	}
}

func TestIntercontinental(t *testing.T) {
	w := newTestWorld(5)
	eu := w.Country(w.Countries(EU)[0]).Cities[0]
	eu2 := w.Country(w.Countries(EU)[1]).Cities[0]
	as := w.Country(w.Countries(AS)[0]).Cities[0]
	if w.Intercontinental(eu, eu2) {
		t.Error("two EU cities flagged intercontinental")
	}
	if !w.Intercontinental(eu, as) {
		t.Error("EU-AS pair not flagged intercontinental")
	}
	if w.Intercontinental(eu, 0) {
		t.Error("unknown city must not be intercontinental")
	}
}

func TestSameCountry(t *testing.T) {
	w := newTestWorld(6)
	cc := w.Countries(NA)[0]
	cities := w.Country(cc).Cities
	if !w.SameCountry(cities[0], cities[0]) {
		t.Error("a city is in its own country")
	}
	other := w.Countries(NA)[1]
	if w.SameCountry(cities[0], w.Country(other).Cities[0]) {
		t.Error("cities of different countries reported same")
	}
}

func TestRandomCityInCountry(t *testing.T) {
	w := newTestWorld(8)
	rng := rand.New(rand.NewSource(9))
	cc := w.Countries(AF)[3]
	for i := 0; i < 50; i++ {
		id := w.RandomCity(rng, cc)
		if w.CountryOf(id) != cc {
			t.Fatalf("RandomCity returned city of %s, want %s", w.CountryOf(id), cc)
		}
	}
	if w.RandomCity(rng, "ZZ") != 0 {
		t.Error("RandomCity of unknown country should be 0")
	}
}

func TestContinentStrings(t *testing.T) {
	if AF.String() != "AF" || AF.Name() != "Africa" {
		t.Error("AF strings")
	}
	if ContinentNone.String() != "??" || Continent(99).Name() != "Unknown" {
		t.Error("unknown continent strings")
	}
}
