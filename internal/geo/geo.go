// Package geo models the geographic substrate of the synthetic Internet:
// continents, countries, and cities. The paper's geography analyses
// (continental vs intercontinental paths, domestic-path preference,
// undersea cables) all key off this package.
//
// The world is generated deterministically from a seed so that every
// experiment run is reproducible. Country codes are synthetic two-letter
// codes; they play the role of the ISO codes found in whois records.
package geo

import (
	"fmt"
	"math/rand"
)

// Continent identifies one of the six populated continents, using the
// paper's Figure 3 abbreviations.
type Continent uint8

const (
	// ContinentNone marks an unknown location.
	ContinentNone Continent = iota
	AF                      // Africa
	NA                      // North America
	EU                      // Europe
	SA                      // South America
	AS                      // Asia
	OC                      // Oceania
)

// Continents lists the populated continents in the order the paper's
// Figure 3 reports them (Oceania is measured in Table 3 only).
var Continents = []Continent{AF, NA, EU, SA, AS, OC}

// String returns the paper's two-letter continent code.
func (c Continent) String() string {
	switch c {
	case AF:
		return "AF"
	case NA:
		return "NA"
	case EU:
		return "EU"
	case SA:
		return "SA"
	case AS:
		return "AS"
	case OC:
		return "OC"
	default:
		return "??"
	}
}

// Name returns the continent's full English name.
func (c Continent) Name() string {
	switch c {
	case AF:
		return "Africa"
	case NA:
		return "North America"
	case EU:
		return "Europe"
	case SA:
		return "South America"
	case AS:
		return "Asia"
	case OC:
		return "Oceania"
	default:
		return "Unknown"
	}
}

// CountryCode is a synthetic two-letter country identifier, unique within
// the world. The zero value "" means unknown.
type CountryCode string

// CityID identifies a city within a World. IDs start at 1; 0 is unknown.
type CityID uint16

// Country is one country of the synthetic world.
type Country struct {
	Code      CountryCode
	Continent Continent
	Cities    []CityID
}

// City is one city of the synthetic world.
type City struct {
	ID        CityID
	Name      string
	Country   CountryCode
	Continent Continent
}

// World holds the generated geography and answers location queries.
type World struct {
	countries map[CountryCode]*Country
	cities    []City // index CityID-1
	byCont    map[Continent][]CountryCode
}

// Config sizes the generated world. The zero value is replaced by
// DefaultConfig.
type Config struct {
	// CountriesPerContinent maps each continent to its country count.
	CountriesPerContinent map[Continent]int
	// MinCities and MaxCities bound the cities generated per country.
	MinCities, MaxCities int
}

// DefaultConfig mirrors the real world's rough country distribution; the
// exact counts only matter in that Table 1 and Table 3 report per-country
// and per-continent aggregates.
func DefaultConfig() Config {
	return Config{
		CountriesPerContinent: map[Continent]int{
			AF: 30, NA: 18, EU: 40, SA: 12, AS: 34, OC: 8,
		},
		MinCities: 1,
		MaxCities: 7,
	}
}

// NewWorld generates a world from cfg using rng. Passing a zero Config
// selects DefaultConfig.
func NewWorld(rng *rand.Rand, cfg Config) *World {
	if cfg.CountriesPerContinent == nil {
		cfg = DefaultConfig()
	}
	w := &World{
		countries: make(map[CountryCode]*Country),
		byCont:    make(map[Continent][]CountryCode),
	}
	code := 0
	for _, cont := range Continents {
		n := cfg.CountriesPerContinent[cont]
		for i := 0; i < n; i++ {
			cc := CountryCode(fmt.Sprintf("%c%c", 'A'+code/26, 'A'+code%26))
			code++
			c := &Country{Code: cc, Continent: cont}
			nc := cfg.MinCities
			if cfg.MaxCities > cfg.MinCities {
				nc += rng.Intn(cfg.MaxCities - cfg.MinCities + 1)
			}
			for j := 0; j < nc; j++ {
				id := CityID(len(w.cities) + 1)
				w.cities = append(w.cities, City{
					ID:        id,
					Name:      fmt.Sprintf("%s-%02d", cc, j+1),
					Country:   cc,
					Continent: cont,
				})
				c.Cities = append(c.Cities, id)
			}
			w.countries[cc] = c
			w.byCont[cont] = append(w.byCont[cont], cc)
		}
	}
	return w
}

// Countries returns the country codes of a continent, in generation order.
func (w *World) Countries(c Continent) []CountryCode { return w.byCont[c] }

// AllCountries returns every country code, grouped by continent in the
// canonical continent order.
func (w *World) AllCountries() []CountryCode {
	var out []CountryCode
	for _, c := range Continents {
		out = append(out, w.byCont[c]...)
	}
	return out
}

// Country returns the country record, or nil if unknown.
func (w *World) Country(cc CountryCode) *Country { return w.countries[cc] }

// City returns the city record; the zero City is returned for unknown IDs.
func (w *World) City(id CityID) City {
	if id == 0 || int(id) > len(w.cities) {
		return City{}
	}
	return w.cities[id-1]
}

// NumCities returns the number of generated cities.
func (w *World) NumCities() int { return len(w.cities) }

// ContinentOf returns the continent of a city, or ContinentNone.
func (w *World) ContinentOf(id CityID) Continent { return w.City(id).Continent }

// CountryOf returns the country of a city, or "".
func (w *World) CountryOf(id CityID) CountryCode { return w.City(id).Country }

// SameCountry reports whether two cities are in the same (known) country.
func (w *World) SameCountry(a, b CityID) bool {
	ca, cb := w.CountryOf(a), w.CountryOf(b)
	return ca != "" && ca == cb
}

// Intercontinental reports whether two cities are on different (known)
// continents; crossing between them requires an undersea cable or a very
// long terrestrial haul.
func (w *World) Intercontinental(a, b CityID) bool {
	ca, cb := w.ContinentOf(a), w.ContinentOf(b)
	return ca != ContinentNone && cb != ContinentNone && ca != cb
}

// RandomCity picks a uniform random city of a country.
func (w *World) RandomCity(rng *rand.Rand, cc CountryCode) CityID {
	c := w.countries[cc]
	if c == nil || len(c.Cities) == 0 {
		return 0
	}
	return c.Cities[rng.Intn(len(c.Cities))]
}
