package bgp

import (
	"fmt"
	"maps"
	"slices"

	"routelab/internal/asn"
	"routelab/internal/topology"
)

// overlay holds a computation's what-if mutations of the sealed graph:
// links taken down, peerings added, and per-adjacency LocalPref
// overrides. Ordinary computations carry a nil overlay and pay nothing;
// the what-if engine (internal/whatif) creates one on the fork it
// mutates. Forks deep-clone the overlay, so a frozen what-if base can
// itself be forked further.
type overlay struct {
	// failed marks links that are down in this computation: process
	// advertises nothing across them and FailLink withdraws whatever was
	// installed when the failure was applied.
	failed map[topology.LinkKey]bool
	// links registers the added peerings by canonical key, so FailLink
	// can target them and AddPeering rejects duplicates.
	links map[topology.LinkKey]*topology.Link
	// extra[i] appends what-if adjacencies to AS i's base neighbor list.
	// The adj-RIB-in slot of extra[i][k] is len(e.nbrs[i]) + k; rows are
	// widened lazily by deliver on first write past the inherited width.
	extra map[int32][]extraNbr
	// lp overrides the local preference AS key[0] assigns to routes
	// learned from neighbor key[1], bypassing the policy computation.
	lp map[[2]asn.ASN]int
}

// extraNbr is one side of an added peering, carrying the same
// precomputed delivery slots the engine's dense indexes provide for
// base adjacencies.
type extraNbr struct {
	n        topology.Neighbor
	peerIdx  int32 // dense index of n.ASN
	backSlot int32 // slot of the owning AS inside n.ASN's row
}

// clone deep-copies the overlay (nil stays nil) for Fork.
func (ov *overlay) clone() *overlay {
	if ov == nil {
		return nil
	}
	cp := &overlay{
		failed: maps.Clone(ov.failed),
		links:  maps.Clone(ov.links),
		lp:     maps.Clone(ov.lp),
		extra:  make(map[int32][]extraNbr, len(ov.extra)),
	}
	for i, xs := range ov.extra {
		cp.extra[i] = slices.Clone(xs)
	}
	return cp
}

func (c *Computation) ensureOverlay() *overlay {
	if c.ov == nil {
		c.ov = &overlay{
			failed: make(map[topology.LinkKey]bool),
			links:  make(map[topology.LinkKey]*topology.Link),
			extra:  make(map[int32][]extraNbr),
			lp:     make(map[[2]asn.ASN]int),
		}
	}
	return c.ov
}

// rowLen is AS i's full adj-RIB-in width: base neighbors plus any
// what-if peerings added to this computation.
func (c *Computation) rowLen(i int32) int {
	n := len(c.e.nbrs[i])
	if c.ov != nil {
		n += len(c.ov.extra[i])
	}
	return n
}

// slotOf returns the adj-RIB-in slot of neighbor j inside AS i's row,
// searching base adjacencies first, then what-if peerings.
func (c *Computation) slotOf(i, j int32) (int32, bool) {
	b := c.e.asns[j]
	for s, n := range c.e.nbrs[i] {
		if n.ASN == b {
			return int32(s), true
		}
	}
	if c.ov != nil {
		for k, ex := range c.ov.extra[i] {
			if ex.peerIdx == j {
				return int32(len(c.e.nbrs[i]) + k), true
			}
		}
	}
	return 0, false
}

// FailLink takes the adjacency between a and b down for this
// computation only: the routes currently installed across it are
// withdrawn immediately and process never advertises over it again.
// Call Converge to settle the reroute. Works on base topology links and
// on peerings previously added with AddPeering; failing an
// already-failed link is a no-op.
func (c *Computation) FailLink(a, b asn.ASN) error {
	if c.frozen.Load() {
		panic("bgp: FailLink on a frozen Computation (it has live forks; mutate a Fork instead)")
	}
	i, iok := c.idx(a)
	j, jok := c.idx(b)
	if !iok || !jok {
		return fmt.Errorf("bgp: FailLink(%s, %s): no such AS", a, b)
	}
	key := topology.MakeLinkKey(a, b)
	if c.e.topo.Link(a, b) == nil && (c.ov == nil || c.ov.links[key] == nil) {
		return fmt.Errorf("bgp: FailLink(%s, %s): not adjacent", a, b)
	}
	ov := c.ensureOverlay()
	if ov.failed[key] {
		return nil
	}
	ov.failed[key] = true
	c.dropAcross(i, j)
	c.dropAcross(j, i)
	return nil
}

// dropAcross withdraws the route AS i currently holds from neighbor j.
func (c *Computation) dropAcross(i, j int32) {
	s, ok := c.slotOf(i, j)
	if !ok {
		return
	}
	if c.deliver(i, s, nil) {
		c.nChanges++
		c.enqueue(i)
	}
}

// AddPeering attaches a candidate link to this computation only: both
// endpoints gain an extra adjacency and are forced to re-advertise, so
// the next Converge settles routing as if the peering had always
// existed. The sealed topology is never touched — build the candidate
// with topology.ProposeLink, which validates the endpoints against the
// sealed graph and canonicalizes the link.
func (c *Computation) AddPeering(l *topology.Link) error {
	if c.frozen.Load() {
		panic("bgp: AddPeering on a frozen Computation (it has live forks; mutate a Fork instead)")
	}
	if l == nil || l.Lo == l.Hi {
		return fmt.Errorf("bgp: AddPeering: bad candidate link")
	}
	i, iok := c.idx(l.Lo)
	j, jok := c.idx(l.Hi)
	if !iok || !jok {
		return fmt.Errorf("bgp: AddPeering(%s, %s): no such AS", l.Lo, l.Hi)
	}
	if c.e.topo.Link(l.Lo, l.Hi) != nil {
		return fmt.Errorf("bgp: AddPeering(%s, %s): already adjacent in the topology", l.Lo, l.Hi)
	}
	ov := c.ensureOverlay()
	if ov.links[l.Key()] != nil {
		return fmt.Errorf("bgp: AddPeering(%s, %s): already added", l.Lo, l.Hi)
	}
	ov.links[l.Key()] = l
	// Each side records where its advertisements land on the other: the
	// next free slot past the peer's current full width.
	slotOnLo := int32(len(c.e.nbrs[i]) + len(ov.extra[i]))
	slotOnHi := int32(len(c.e.nbrs[j]) + len(ov.extra[j]))
	ov.extra[i] = append(ov.extra[i], extraNbr{
		n:        topology.Neighbor{ASN: l.Hi, Role: l.HiRole, Link: l},
		peerIdx:  j,
		backSlot: slotOnHi,
	})
	ov.extra[j] = append(ov.extra[j], extraNbr{
		n:        topology.Neighbor{ASN: l.Lo, Role: l.HiRole.Invert(), Link: l},
		peerIdx:  i,
		backSlot: slotOnLo,
	})
	c.force[i] = true
	c.enqueue(i)
	c.force[j] = true
	c.enqueue(j)
	return nil
}

// SetLocalPref overrides the local preference AS at assigns to routes
// learned from neighbor from, for this computation only. The neighbor
// is forced to re-advertise, so the installed route is repriced through
// the normal delivery path and the next Converge settles any resulting
// best-path moves.
func (c *Computation) SetLocalPref(at, from asn.ASN, pref int) error {
	if c.frozen.Load() {
		panic("bgp: SetLocalPref on a frozen Computation (it has live forks; mutate a Fork instead)")
	}
	i, iok := c.idx(at)
	j, jok := c.idx(from)
	if !iok || !jok {
		return fmt.Errorf("bgp: SetLocalPref(%s, %s): no such AS", at, from)
	}
	if _, adj := c.slotOf(i, j); !adj {
		return fmt.Errorf("bgp: SetLocalPref(%s, %s): not adjacent", at, from)
	}
	c.ensureOverlay().lp[[2]asn.ASN{at, from}] = pref
	c.force[j] = true
	c.enqueue(j)
	return nil
}

// Counters reports the computation's cumulative process-event and
// best-route-change counts. Snapshotting them around an apply+Converge
// gives the reconvergence churn a what-if delta cost.
func (c *Computation) Counters() (events, changes int) {
	return c.nProcessed, c.nChanges
}

// BestChange records one AS whose installed best route differs between
// two computations of the same prefix.
type BestChange struct {
	AS asn.ASN
	// Before and After are public route copies; nil means no route on
	// that side.
	Before, After *Route
}

// BestDiff compares c's installed best routes against base and returns
// every AS whose routing decision differs, in ascending ASN order. Age
// is ignored — the diff reports decision changes, not re-installations.
// Within one fork chain unchanged routes share the parent's *Route, so
// the common case is a single pointer compare; the structural fallback
// keeps the diff exact across independently built computations (the
// differential oracle in internal/whatif pins fork-diff ≡ rebuild-diff
// through exactly this path).
func (c *Computation) BestDiff(base *Computation) []BestChange {
	if c.e != base.e || c.prefix != base.prefix {
		panic("bgp: BestDiff across engines or prefixes")
	}
	var out []BestChange
	for i := range c.best {
		nb, ob := c.best[i], base.best[i]
		if nb == ob {
			continue
		}
		if nb != nil && ob != nil && sameRoute(*ob, *nb) {
			continue
		}
		bc := BestChange{AS: c.e.asns[i]}
		if ob != nil {
			r := ob.public()
			bc.Before = &r
		}
		if nb != nil {
			r := nb.public()
			bc.After = &r
		}
		out = append(out, bc)
	}
	return out
}
