package bgp

import (
	"testing"

	"routelab/internal/asn"
	"routelab/internal/topology"
)

func ribFixture(t *testing.T) (*topology.Topology, *RIB) {
	t.Helper()
	topo := topology.Generate(99, topology.TestConfig())
	e := New(topo, 99)
	cdn := topo.Names["cdn-major"]
	rib := e.ComputeRIB(topo.AS(cdn).Prefixes, 2)
	return topo, rib
}

func TestRIBRouteAndPrefixes(t *testing.T) {
	topo, rib := ribFixture(t)
	cdn := topo.Names["cdn-major"]
	if len(rib.Prefixes()) != len(topo.AS(cdn).Prefixes) {
		t.Fatalf("indexed %d prefixes", len(rib.Prefixes()))
	}
	// Prefixes are ordered longest mask first.
	for i := 1; i < len(rib.Prefixes()); i++ {
		if rib.Prefixes()[i-1].Len < rib.Prefixes()[i].Len {
			t.Fatal("prefix index not longest-first")
		}
	}
	p := topo.AS(cdn).Prefixes[0]
	if _, ok := rib.Route(cdn, p); !ok {
		t.Fatal("origin lacks its own route")
	}
	if _, ok := rib.Route(99999, p); ok {
		t.Fatal("unknown AS has a route")
	}
}

func TestRIBLookupLongestMatch(t *testing.T) {
	topo, rib := ribFixture(t)
	cdn := topo.Names["cdn-major"]
	stub := topo.ASesOfClass(topology.Stub)[0]
	// An address inside a /24 also covered by the /18: the lookup must
	// return the more specific route when the AS holds one.
	var p24 asn.Prefix
	for _, p := range topo.AS(cdn).Prefixes {
		if p.Len == 24 {
			p24 = p
			break
		}
	}
	if p24.IsZero() {
		t.Skip("major has no /24 at this seed")
	}
	rt, ok := rib.Lookup(stub, p24.Nth(7))
	if !ok {
		t.Fatal("stub cannot reach the /24")
	}
	if rt.Prefix != p24 {
		// Selective announcement may hide the /24 from this stub; then
		// the covering /18 is correct longest-match behavior.
		if rt.Prefix.Len >= p24.Len {
			t.Fatalf("lookup returned %v for an address in %v", rt.Prefix, p24)
		}
	}
	if _, ok := rib.Lookup(stub, asn.AddrFrom4(9, 9, 9, 9)); ok {
		t.Fatal("lookup matched an uncovered address")
	}
}

func TestRIBASPath(t *testing.T) {
	topo, rib := ribFixture(t)
	cdn := topo.Names["cdn-major"]
	p := topo.AS(cdn).Prefixes[0]
	stub := topo.ASesOfClass(topology.Stub)[3]
	path := rib.ASPath(stub, p)
	if len(path) < 2 {
		t.Fatalf("path = %v", path)
	}
	if path[0] != stub || path[len(path)-1] != cdn {
		t.Fatalf("path endpooints: %v", path)
	}
	if rib.ASPath(stub, asn.NewPrefix(asn.AddrFrom4(9, 0, 0, 0), 24)) != nil {
		t.Fatal("path for an uncovered prefix")
	}
}

func TestRIBRoutesForShared(t *testing.T) {
	topo, rib := ribFixture(t)
	cdn := topo.Names["cdn-major"]
	p := topo.AS(cdn).Prefixes[0]
	m := rib.RoutesFor(p)
	if len(m) < topo.NumASes()/2 {
		t.Fatalf("only %d ASes hold a route to the major", len(m))
	}
}

func TestComputeFullRIBMatchesPerPrefix(t *testing.T) {
	topo := topology.Generate(101, topology.TestConfig())
	e := New(topo, 101)
	prefixes := topo.OriginatedPrefixes()[:6]
	rib := e.ComputeRIB(prefixes, 3) // parallel workers
	for _, p := range prefixes {
		single := e.ComputePrefix(p)
		for a, want := range single {
			got, ok := rib.Route(a, p)
			if !ok || !sameRoute(got, want) {
				t.Fatalf("parallel RIB diverges from single computation at %v / %v", a, p)
			}
		}
	}
}

func TestComputePrefixUnknownOrigin(t *testing.T) {
	topo := topology.Generate(101, topology.TestConfig())
	e := New(topo, 101)
	if m := e.ComputePrefix(asn.NewPrefix(asn.AddrFrom4(9, 0, 0, 0), 24)); m != nil {
		t.Fatal("unknown prefix produced routes")
	}
}
