package bgp

import (
	"fmt"
	"sort"
	"sync/atomic"

	"routelab/internal/asn"
	"routelab/internal/obs"
	"routelab/internal/topology"
)

// Cached obs handles (see internal/obs: Reset zeroes in place, so
// init-time handles stay attached). Hot-path counters accumulate in
// Computation fields and flush once per Converge, so instrumentation
// adds no per-event atomics.
var (
	obsConvergeCalls    = obs.Default().Counter("bgp.converge.calls")
	obsConvergeEvents   = obs.Default().Counter("bgp.converge.events")
	obsConvergeChanges  = obs.Default().Counter("bgp.converge.changes")
	obsConvergeDiverged = obs.Default().Counter("bgp.converge.diverged")
	obsAnnounce         = obs.Default().Counter("bgp.announce.total")
	obsAnnouncePoisoned = obs.Default().Counter("bgp.announce.poisoned")
	obsPoisonedASes     = obs.Default().Counter("bgp.announce.poisoned_ases")
	obsWithdraw         = obs.Default().Counter("bgp.withdraw.total")
	obsInternHits       = obs.Default().Counter("bgp.intern.hits")
	obsInternMisses     = obs.Default().Counter("bgp.intern.misses")
	obsRowClones        = obs.Default().Counter("bgp.fork.row_clones")
)

// Engine computes ground-truth routing over a topology. It is stateless
// after construction and safe for concurrent use; all per-prefix state
// lives in Computation.
type Engine struct {
	topo *topology.Topology
	seed int64

	// Dense indexes for the hot path. asns[i] is the AS at index i;
	// index[a] is the inverse. nbrs[i] aliases the topology's neighbor
	// slice. backSlot[i][s] is the slot of AS i inside the neighbor list
	// of its s-th neighbor, so advertisement delivery is O(1).
	asns     []asn.ASN
	index    map[asn.ASN]int32
	nbrs     [][]topology.Neighbor
	backSlot [][]int32
}

// New returns an engine. The seed drives the deterministic-but-arbitrary
// parts of the ground truth (IGP costs, per-link interconnection city
// assignment); two engines with the same topology and seed agree exactly.
func New(topo *topology.Topology, seed int64) *Engine {
	e := &Engine{topo: topo, seed: seed}
	e.asns = topo.ASNs()
	e.index = make(map[asn.ASN]int32, len(e.asns))
	for i, a := range e.asns {
		e.index[a] = int32(i)
	}
	e.nbrs = make([][]topology.Neighbor, len(e.asns))
	for i, a := range e.asns {
		e.nbrs[i] = topo.Neighbors(a)
	}
	e.backSlot = make([][]int32, len(e.asns))
	slotOf := make(map[[2]asn.ASN]int32, len(e.asns)*4)
	for i, a := range e.asns {
		for s, n := range e.nbrs[i] {
			slotOf[[2]asn.ASN{n.ASN, a}] = int32(s)
		}
	}
	for i, a := range e.asns {
		e.backSlot[i] = make([]int32, len(e.nbrs[i]))
		for s, n := range e.nbrs[i] {
			e.backSlot[i][s] = slotOf[[2]asn.ASN{a, n.ASN}]
		}
	}
	return e
}

// Topology returns the engine's topology.
func (e *Engine) Topology() *topology.Topology { return e.topo }

// maxEvents caps the event-driven convergence; policy bonuses step
// outside the Gao–Rexford safety conditions, so divergence is
// theoretically possible. The cap is far above anything a converging
// run needs.
const maxEventsPerAS = 64

// Computation is an incremental per-prefix routing computation. Announce,
// Withdraw, and Converge may be interleaved, which is how the PEERING
// experiments change announcements over time. Not safe for concurrent use.
type Computation struct {
	e      *Engine
	prefix asn.Prefix

	anns map[asn.ASN]Announcement // active announcements, by origin

	// adjIn[i][s] is the route AS i currently holds from its s-th
	// neighbor (nil = none). best[i] is the installed best route.
	adjIn [][]*Route
	best  []*Route

	// sharedRow[i] marks adjIn rows borrowed from a frozen parent by
	// Fork; deliver clones such a row before its first write (nil for
	// root computations — no COW overhead).
	sharedRow []bool
	// rowClones counts COW clones for the obs flush.
	rowClones int

	// pool interns AS paths (chained to the parent pool after Fork).
	pool *pathPool
	// origin caches materialized origin routes per announcing AS;
	// invalidated by Announce/Withdraw. Entries are immutable and shared
	// with forks.
	origin map[asn.ASN]*Route
	// advScratch is the reusable advertisement buffer: advertisement
	// fills it per neighbor and process copies it to the heap only when
	// the route is actually installed, so suppressed re-advertisements
	// allocate nothing.
	advScratch Route

	// frozen is set by Freeze/Fork; Announce and Withdraw panic once
	// set. Atomic so concurrent Forks of one parent are race-free.
	frozen atomic.Bool

	// ov holds this computation's what-if mutations (failed links, added
	// peerings, LocalPref overrides); nil for ordinary computations, so
	// the base hot path pays only a nil check. See delta.go.
	ov *overlay

	// buckets is a path-length-bucketed priority queue of AS indexes
	// whose advertisements must be recomputed. Processing shortest
	// installed routes first approximates BFS propagation and slashes
	// path-exploration churn. queued dedupes, force marks
	// announcement-policy changes.
	buckets [][]int32
	nQueued int
	queued  []bool
	force   []bool

	clock     int // monotone event counter; feeds Route.Age
	converged bool

	nProcessed, nChanges int
	// flushedProcessed/flushedChanges track what the obs counters have
	// already seen, so each Converge flushes only its own delta.
	flushedProcessed, flushedChanges int
}

// NewComputation starts an empty computation for a prefix.
func (e *Engine) NewComputation(prefix asn.Prefix) *Computation {
	n := len(e.asns)
	c := &Computation{
		e:         e,
		prefix:    prefix,
		anns:      make(map[asn.ASN]Announcement),
		adjIn:     make([][]*Route, n),
		best:      make([]*Route, n),
		pool:      newPathPool(nil),
		origin:    make(map[asn.ASN]*Route),
		buckets:   make([][]int32, 4*48),
		queued:    make([]bool, n),
		force:     make([]bool, n),
		converged: true,
	}
	return c
}

func (c *Computation) idx(a asn.ASN) (int32, bool) {
	i, ok := c.e.index[a]
	return i, ok
}

func (c *Computation) enqueue(i int32) {
	if c.queued[i] {
		return
	}
	c.queued[i] = true
	c.nQueued++
	p := 0
	if r := c.best[i]; r != nil {
		// Mirror the classic three-phase computation: customer-learned
		// routes settle first, then peer, then provider; shorter paths
		// within each class. Origin routes (FromRel none) lead.
		cls := 0
		switch r.FromRel {
		case topology.RelCustomer, topology.RelSibling:
			cls = 1
		case topology.RelPeer:
			cls = 2
		case topology.RelProvider:
			cls = 3
		}
		l := r.pathLen
		if l > 47 {
			l = 47
		}
		p = cls*48 + l
	}
	c.buckets[p] = append(c.buckets[p], i)
}

// Announce activates an announcement (replacing any previous announcement
// by the same origin) and marks the origin for reprocessing. Call
// Converge to propagate.
func (c *Computation) Announce(a Announcement) {
	if c.frozen.Load() {
		panic("bgp: Announce on a frozen Computation (it has live forks; mutate a Fork instead)")
	}
	a.Prefix = c.prefix
	c.anns[a.Origin] = a
	delete(c.origin, a.Origin)
	obsAnnounce.Inc()
	if len(a.Poisoned) > 0 {
		obsAnnouncePoisoned.Inc()
		obsPoisonedASes.Add(int64(len(a.Poisoned)))
	}
	if i, ok := c.idx(a.Origin); ok {
		c.force[i] = true
		c.enqueue(i)
	}
}

// Withdraw removes an origin's announcement.
func (c *Computation) Withdraw(origin asn.ASN) {
	if c.frozen.Load() {
		panic("bgp: Withdraw on a frozen Computation (it has live forks; mutate a Fork instead)")
	}
	delete(c.anns, origin)
	delete(c.origin, origin)
	obsWithdraw.Inc()
	if i, ok := c.idx(origin); ok {
		c.force[i] = true
		c.enqueue(i)
	}
}

// Converge drains the event queue to a fixed point (or the event cap)
// and reports whether it settled.
func (c *Computation) Converge() bool {
	limit := maxEventsPerAS * len(c.e.asns)
	events := 0
	for c.nQueued > 0 {
		i, ok := c.pop()
		if !ok {
			break
		}
		events++
		if events > limit {
			c.converged = false
			c.flushObs()
			return false
		}
		c.process(i)
	}
	c.converged = true
	c.flushObs()
	return true
}

// flushObs publishes this Converge's route-evaluation delta to the obs
// counters — one batch of atomic adds per convergence, nothing per
// event. It is the one flush point the hotatomic lint rule sanctions
// inside the Converge call tree, so every counter (including the
// divergence bail-out) reports from here.
func (c *Computation) flushObs() {
	obsConvergeCalls.Inc()
	if !c.converged {
		obsConvergeDiverged.Inc()
	}
	if d := c.nProcessed - c.flushedProcessed; d > 0 {
		obsConvergeEvents.Add(int64(d))
		c.flushedProcessed = c.nProcessed
	}
	if d := c.nChanges - c.flushedChanges; d > 0 {
		obsConvergeChanges.Add(int64(d))
		c.flushedChanges = c.nChanges
	}
	// Intern-pool and COW counters accumulate in plain fields on the hot
	// path and publish here, once per Converge.
	if c.pool.hits > 0 {
		obsInternHits.Add(int64(c.pool.hits))
		c.pool.hits = 0
	}
	if c.pool.misses > 0 {
		obsInternMisses.Add(int64(c.pool.misses))
		c.pool.misses = 0
	}
	if c.rowClones > 0 {
		obsRowClones.Add(int64(c.rowClones))
		c.rowClones = 0
	}
}

// pop removes the queued AS with the shortest installed route.
func (c *Computation) pop() (int32, bool) {
	for p := range c.buckets {
		b := c.buckets[p]
		for len(b) > 0 {
			i := b[0]
			b = b[1:]
			c.buckets[p] = b
			if c.queued[i] {
				c.queued[i] = false
				c.nQueued--
				return i, true
			}
		}
	}
	return 0, false
}

// Converged reports whether the last Converge reached a fixed point.
func (c *Computation) Converged() bool { return c.converged }

// Best returns the installed best route at an AS.
func (c *Computation) Best(a asn.ASN) (Route, bool) {
	i, ok := c.idx(a)
	if !ok || c.best[i] == nil {
		return Route{}, false
	}
	return c.best[i].public(), true
}

// Step returns the decision step that selects the AS's current best
// route over its runner-up, computed from the current adj-RIB-in.
func (c *Computation) Step(a asn.ASN) (DecisionStep, bool) {
	i, ok := c.idx(a)
	if !ok || c.best[i] == nil {
		return OnlyRoute, false
	}
	nb, second := c.bestTwo(i)
	if nb == nil {
		return OnlyRoute, false
	}
	if second == nil {
		return OnlyRoute, true
	}
	return decisiveStep(nb, second), true
}

// bestTwo scans AS i's candidates for the two most preferred routes.
// Closure-free so a steady-state rescan stays allocation-free (the
// alloc guards in alloc_test.go pin this).
func (c *Computation) bestTwo(i int32) (nb, second *Route) {
	nb = c.originRoute(c.e.asns[i])
	for _, r := range c.adjIn[i] {
		switch {
		case r == nil:
		case nb == nil || prefer(r, nb):
			second = nb
			nb = r
		case second == nil || prefer(r, second):
			second = r
		}
	}
	return nb, second
}

// Alternatives returns every candidate route an AS currently holds in its
// adj-RIB-in (plus its own origin route if it announces), sorted most
// preferred first. The slice is freshly allocated.
func (c *Computation) Alternatives(a asn.ASN) []Route {
	i, ok := c.idx(a)
	if !ok {
		return nil
	}
	var cands []Route
	if r := c.originRoute(a); r != nil {
		cands = append(cands, r.public())
	}
	for _, r := range c.adjIn[i] {
		if r != nil {
			cands = append(cands, r.public())
		}
	}
	sort.Slice(cands, func(x, y int) bool { return prefer(&cands[x], &cands[y]) })
	return cands
}

// Routes copies the current best route of every AS holding one.
func (c *Computation) Routes() map[asn.ASN]Route {
	out := make(map[asn.ASN]Route, len(c.best))
	for i, r := range c.best {
		if r != nil {
			out[c.e.asns[i]] = r.public()
		}
	}
	return out
}

// originRoute materializes a's own origin route, or nil. The built route
// is cached per origin (and invalidated by Announce/Withdraw), so the
// per-event rescans of the origin AS allocate nothing; forks inherit the
// cache entries, which are immutable.
func (c *Computation) originRoute(a asn.ASN) *Route {
	ann, ok := c.anns[a]
	if !ok {
		return nil
	}
	if r, ok := c.origin[a]; ok {
		return r
	}
	ip := c.pool.intern(ann.basePath())
	r := &Route{
		Prefix:    c.prefix,
		Path:      ip.p,
		NextHop:   0,
		FromRel:   topology.RelNone,
		OrgRel:    topology.RelNone,
		LocalPref: 1 << 30, // own routes always win
		Age:       0,
		pathLen:   ip.plen,
		ip:        ip,
	}
	c.origin[a] = r
	return r
}

// prefer reports whether a beats b in the BGP decision process.
// Candidates carry precomputed path lengths and IGP costs.
func prefer(a, b *Route) bool {
	if a.LocalPref != b.LocalPref {
		return a.LocalPref > b.LocalPref
	}
	if a.pathLen != b.pathLen {
		return a.pathLen < b.pathLen
	}
	if a.igpCost != b.igpCost {
		return a.igpCost < b.igpCost
	}
	if a.Age != b.Age {
		return a.Age < b.Age
	}
	return a.NextHop < b.NextHop
}

// decisiveStep reports which decision criterion separated best from the
// runner-up.
func decisiveStep(best, second *Route) DecisionStep {
	switch {
	case best.LocalPref != second.LocalPref:
		return ByLocalPref
	case best.pathLen != second.pathLen:
		return ByPathLen
	case best.igpCost != second.igpCost:
		return ByIGPCost
	case best.Age != second.Age:
		return ByAge
	default:
		return ByRouterID
	}
}

// reselect fully rescans AS i's candidates and updates the best route.
// It reports whether the best route changed.
func (c *Computation) reselect(i int32) bool {
	nb, _ := c.bestTwo(i)
	old := c.best[i]
	c.best[i] = nb
	if nb == nil {
		return old != nil
	}
	return old == nil || !sameRoute(*old, *nb) || old.Age != nb.Age
}

// deliver installs an advertisement (or withdrawal, adv==nil) from
// neighbor slot s into AS i's adj-RIB-in and incrementally updates i's
// best route. It reports whether i's best changed. Rows still shared
// with a frozen fork parent are cloned before their first write (the
// copy-on-write barrier — the no-op cases above it read shared state
// without ever cloning).
func (c *Computation) deliver(i int32, s int32, adv *Route) bool {
	row := c.adjIn[i]
	var prev *Route
	if int(s) < len(row) {
		prev = row[s]
	}
	if prev == nil && adv == nil {
		return false
	}
	if prev != nil && adv != nil && sameRoute(*prev, *adv) {
		return false // implicit refresh: keep the older installation
	}
	if need := c.rowLen(i); len(row) < need {
		// Missing row, or one narrower than an AddPeering slot demands:
		// allocate at full width. Widening a row borrowed from a frozen
		// parent doubles as its COW clone.
		nr := make([]*Route, need)
		copy(nr, row)
		if c.sharedRow != nil && c.sharedRow[i] {
			c.sharedRow[i] = false
			if row != nil {
				c.rowClones++
			}
		}
		row = nr
		c.adjIn[i] = nr
	} else if c.sharedRow != nil && c.sharedRow[i] {
		row = append(make([]*Route, 0, len(row)), row...)
		c.adjIn[i] = row
		c.sharedRow[i] = false
		c.rowClones++
	}
	row[s] = adv
	cur := c.best[i]
	switch {
	case cur == prev && prev != nil:
		// The best route's source changed or withdrew: full rescan.
		return c.reselect(i)
	case adv != nil && (cur == nil || prefer(adv, cur)):
		// Strictly better than the incumbent: install directly.
		c.best[i] = adv
		return true
	default:
		// A non-best candidate changed; the incumbent stands.
		return false
	}
}

// process recomputes what AS i advertises to each neighbor (base
// adjacencies, then what-if peerings) and delivers the changes,
// enqueueing neighbors whose best routes moved.
func (c *Computation) process(i int32) {
	c.nProcessed++
	a := c.e.asns[i]
	forced := c.force[i]
	c.force[i] = false
	if forced {
		c.reselect(i)
	}
	xAS := c.e.topo.AS(a)
	best := c.best[i]
	for s, n := range c.e.nbrs[i] {
		j, ok := c.idx(n.ASN)
		if !ok {
			continue
		}
		c.propagate(xAS, best, n, j, c.e.backSlot[i][s])
	}
	if c.ov != nil {
		for _, ex := range c.ov.extra[i] {
			c.propagate(xAS, best, ex.n, ex.peerIdx, ex.backSlot)
		}
	}
}

// propagate recomputes what xAS advertises across one adjacency (to
// neighbor n, landing in slot back of AS j's row) and delivers the
// change. A link down in the what-if overlay advertises nothing — the
// withdrawal case of deliver.
func (c *Computation) propagate(xAS *topology.AS, best *Route, n topology.Neighbor, j, back int32) {
	var adv *Route
	if c.ov == nil || !c.ov.failed[n.Link.Key()] {
		adv = c.advertisement(xAS, best, n) // scratch buffer; copied below if installed
	}
	var inst *Route
	if adv != nil {
		// Suppress no-op refreshes before stamping a fresh age — the
		// common steady-state case, which allocates nothing because adv
		// is the reusable scratch route.
		if cur := c.adjInAt(j, back); cur != nil && sameRoute(*cur, *adv) {
			return
		}
		c.clock++
		inst = new(Route)
		*inst = *adv
		inst.Age = c.clock
	}
	if c.deliver(j, back, inst) {
		c.nChanges++
		c.enqueue(j)
	}
}

func (c *Computation) adjInAt(i, s int32) *Route {
	row := c.adjIn[i]
	if int(s) >= len(row) {
		return nil
	}
	return row[s]
}

// advertisement builds the route neighbor n would install upon hearing
// x's best route, or nil when export policy, origin policy, loop
// prevention, or AS_SET filtering suppresses it.
//
// The returned pointer aliases c.advScratch: it is valid only until the
// next advertisement call and must be copied (process does) before being
// installed. The advertised path comes from the intern pool — a map
// probe when this exact extension was derived before, anywhere in the
// fork chain.
func (c *Computation) advertisement(xAS *topology.AS, best *Route, n topology.Neighbor) *Route {
	if best == nil {
		return nil
	}
	x := xAS.ASN
	city := c.e.linkCity(n.Link, c.prefix)
	relOfN := effectiveRel(n.Link, x, n.ASN, c.prefix, city)
	if !exports(best.OrgRel, relOfN) {
		return nil
	}
	if best.IsOrigin() {
		ann := c.anns[x]
		if !ann.permitsNeighbor(n.ASN) || !xAS.MayAnnounce(c.prefix, n.ASN) {
			return nil
		}
	}
	advIP := best.ip
	advPath := best.Path
	advLen := best.pathLen
	if !best.IsOrigin() {
		advIP = c.pool.prepend(best.ip, best.Path, x)
		advPath = advIP.p
		advLen = advIP.plen
	}
	nAS := c.e.topo.AS(n.ASN)
	if advPath.Contains(n.ASN) && !nAS.NoLoopPrevention {
		return nil
	}
	if advPath.HasSet() && nAS.FiltersASSets {
		return nil
	}
	relOfX := effectiveRel(n.Link, n.ASN, x, c.prefix, city)
	// The route's organizational class survives sibling hops; on-net
	// (sibling-learned) routes get the organization's internal-first
	// preference bump.
	orgRel := relOfX
	lp := 0
	if relOfX == topology.RelSibling {
		orgRel = best.OrgRel
		lp = c.e.siblingLocalPref(nAS, orgRel, advPath, c.prefix)
	} else {
		lp = c.e.localPref(nAS, orgRel, advPath, c.prefix)
	}
	if c.ov != nil {
		// A what-if LocalPref override on the receiving adjacency wins
		// over every policy bonus.
		if v, ok := c.ov.lp[[2]asn.ASN{n.ASN, x}]; ok {
			lp = v
		}
	}
	c.advScratch = Route{
		Prefix:     c.prefix,
		Path:       advPath,
		NextHop:    x,
		FromRel:    relOfX,
		OrgRel:     orgRel,
		LocalPref:  lp,
		EgressCity: city,
		pathLen:    advLen,
		igpCost:    c.e.igpCost(n.ASN, x, city),
		ip:         advIP,
	}
	return &c.advScratch
}

// sameRoute compares everything except Age. Interned paths compare by
// handle identity — within one fork chain equal paths share one ipath —
// with the structural comparison kept as the correctness fallback for
// routes from different chains (or built outside the pool).
func sameRoute(a, b Route) bool {
	return a.NextHop == b.NextHop &&
		a.LocalPref == b.LocalPref &&
		a.FromRel == b.FromRel &&
		a.OrgRel == b.OrgRel &&
		a.EgressCity == b.EgressCity &&
		((a.ip != nil && a.ip == b.ip) || a.Path.Equal(b.Path))
}

// DebugStats reports internal convergence counters (process calls and
// best-route changes) for performance investigation.
func (c *Computation) DebugStats() string {
	return fmt.Sprintf("processed=%d changes=%d clock=%d", c.nProcessed, c.nChanges, c.clock)
}
