package bgp

import (
	"testing"

	"routelab/internal/asn"
	"routelab/internal/topology"
)

// converged builds the diamond's anycast base: org announces, the world
// converges, and the computation is returned un-frozen so tests can
// mutate it directly or Fork it first.
func convergedDiamond(t *testing.T) (*Engine, *Computation, map[string]asn.ASN) {
	t.Helper()
	e, p, ids := diamond(t)
	c := e.NewComputation(p)
	c.Announce(Announcement{Origin: ids["org"]})
	if !c.Converge() {
		t.Fatal("base did not converge")
	}
	return e, c, ids
}

func TestFailLinkReroutes(t *testing.T) {
	_, c, ids := convergedDiamond(t)
	base := c.Fork() // keep the frozen base for diffing
	f := c.Fork()

	// t1 currently hears org via one of its customers; failing that link
	// must move t1 onto the other customer.
	before := mustRoute(t, f, ids["t1"])
	other := ids["c1"]
	if before.NextHop == ids["c1"] {
		other = ids["c2"]
	}
	if err := f.FailLink(ids["t1"], before.NextHop); err != nil {
		t.Fatal(err)
	}
	if !f.Converge() {
		t.Fatal("did not reconverge")
	}
	after := mustRoute(t, f, ids["t1"])
	if after.NextHop != other {
		t.Fatalf("t1 next hop after failure = %s, want %s", after.NextHop, other)
	}
	// The diff against the base must mention t1 and must not invent
	// changes at ASes still holding their shared route.
	diff := f.BestDiff(base)
	saw := false
	for _, bc := range diff {
		if bc.AS == ids["t1"] {
			saw = true
			if bc.Before == nil || bc.After == nil {
				t.Fatalf("t1 change should be a move, got %+v", bc)
			}
		}
		if bc.AS == ids["org"] {
			t.Fatal("org's origin route must not change on a t1 link failure")
		}
	}
	if !saw {
		t.Fatalf("diff %v does not mention t1", diff)
	}
}

func TestFailLinkPartitions(t *testing.T) {
	_, c, ids := convergedDiamond(t)
	base := c.Fork()
	f := c.Fork()
	// org's only uplinks are c1 and c2; failing both cuts everyone off.
	if err := f.FailLink(ids["org"], ids["c1"]); err != nil {
		t.Fatal(err)
	}
	if err := f.FailLink(ids["org"], ids["c2"]); err != nil {
		t.Fatal(err)
	}
	if !f.Converge() {
		t.Fatal("did not reconverge")
	}
	if _, ok := f.Best(ids["org"]); !ok {
		t.Fatal("org must keep its origin route")
	}
	for _, name := range []string{"t1", "t2", "c1", "c2", "c3"} {
		if r, ok := f.Best(ids[name]); ok {
			t.Fatalf("%s still routes after the partition: %v", name, r)
		}
	}
	// Everyone but org lost their route: 5 pure-loss entries.
	diff := f.BestDiff(base)
	if len(diff) != 5 {
		t.Fatalf("diff has %d entries, want 5: %v", len(diff), diff)
	}
	for _, bc := range diff {
		if bc.Before == nil || bc.After != nil {
			t.Fatalf("expected pure loss at %s, got %+v", bc.AS, bc)
		}
	}
}

func TestFailLinkValidation(t *testing.T) {
	_, c, ids := convergedDiamond(t)
	f := c.Fork()
	if err := f.FailLink(ids["org"], ids["t2"]); err == nil {
		t.Fatal("failing a non-existent link must error")
	}
	if err := f.FailLink(ids["org"], 9999); err == nil {
		t.Fatal("failing a link to an unknown AS must error")
	}
	if err := f.FailLink(ids["org"], ids["c1"]); err != nil {
		t.Fatal(err)
	}
	// Idempotent: a second failure of the same link is a no-op.
	if err := f.FailLink(ids["c1"], ids["org"]); err != nil {
		t.Fatalf("re-failing the same link: %v", err)
	}
}

func TestAddPeeringRoutes(t *testing.T) {
	e, c, ids := convergedDiamond(t)
	f := c.Fork()
	// org currently reaches t2 only via c1/c2 -> t1 -> t2. A direct
	// org -> t2 customer link gives t2 a 1-hop customer route, which wins
	// on LocalPref.
	l, err := e.Topology().ProposeLink(ids["t2"], ids["org"], topology.RelCustomer)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.AddPeering(l); err != nil {
		t.Fatal(err)
	}
	if !f.Converge() {
		t.Fatal("did not reconverge")
	}
	r := mustRoute(t, f, ids["t2"])
	if r.NextHop != ids["org"] || r.FromRel != topology.RelCustomer {
		t.Fatalf("t2 route after new peering: %v", r)
	}
	if r.Path.Len() != 1 {
		t.Fatalf("t2 path length = %d, want 1", r.Path.Len())
	}
	// The added adjacency can be failed again, restoring the old route.
	if err := f.FailLink(ids["t2"], ids["org"]); err != nil {
		t.Fatal(err)
	}
	if !f.Converge() {
		t.Fatal("did not reconverge after failing the added peering")
	}
	r = mustRoute(t, f, ids["t2"])
	if r.NextHop != ids["t1"] {
		t.Fatalf("t2 next hop after failing the added peering = %s, want %s", r.NextHop, ids["t1"])
	}
}

func TestAddPeeringValidation(t *testing.T) {
	e, c, ids := convergedDiamond(t)
	f := c.Fork()
	if _, err := e.Topology().ProposeLink(ids["org"], ids["c1"], topology.RelProvider); err == nil {
		t.Fatal("proposing an existing link must error")
	}
	if _, err := e.Topology().ProposeLink(ids["org"], ids["org"], topology.RelPeer); err == nil {
		t.Fatal("proposing a self link must error")
	}
	if _, err := e.Topology().ProposeLink(ids["org"], 9999, topology.RelPeer); err == nil {
		t.Fatal("proposing a link to an unknown AS must error")
	}
	l, err := e.Topology().ProposeLink(ids["org"], ids["t2"], topology.RelProvider)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.AddPeering(l); err != nil {
		t.Fatal(err)
	}
	if err := f.AddPeering(l); err == nil {
		t.Fatal("adding the same peering twice must error")
	}
}

func TestProposeLinkOrientationCanonical(t *testing.T) {
	e, _, ids := convergedDiamond(t)
	a, b := ids["org"], ids["t2"]
	l1, err := e.Topology().ProposeLink(a, b, topology.RelProvider)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := e.Topology().ProposeLink(b, a, topology.RelProvider.Invert())
	if err != nil {
		t.Fatal(err)
	}
	if l1.Lo != l2.Lo || l1.Hi != l2.Hi || l1.HiRole != l2.HiRole || len(l1.Cities) != len(l2.Cities) {
		t.Fatalf("orientation not canonical: %+v vs %+v", l1, l2)
	}
}

func TestSetLocalPrefMovesBest(t *testing.T) {
	_, c, ids := convergedDiamond(t)
	f := c.Fork()
	before := mustRoute(t, f, ids["t1"])
	other := ids["c1"]
	if before.NextHop == ids["c1"] {
		other = ids["c2"]
	}
	// Demote the current next hop below every policy value; t1 must move
	// to the other customer.
	if err := f.SetLocalPref(ids["t1"], before.NextHop, 1); err != nil {
		t.Fatal(err)
	}
	if !f.Converge() {
		t.Fatal("did not reconverge")
	}
	after := mustRoute(t, f, ids["t1"])
	if after.NextHop != other {
		t.Fatalf("t1 next hop after demotion = %s, want %s", after.NextHop, other)
	}
	if err := f.SetLocalPref(ids["org"], ids["t2"], 500); err == nil {
		t.Fatal("overriding a non-adjacent pair must error")
	}
}

func TestAnnouncePrepend(t *testing.T) {
	e, p, ids := diamond(t)
	c := e.NewComputation(p)
	c.Announce(Announcement{Origin: ids["org"], Prepend: 3})
	if !c.Converge() {
		t.Fatal("did not converge")
	}
	// t1's path is normally [cX org]; three prepends stretch it to 5.
	r := mustRoute(t, c, ids["t1"])
	if r.Path.Len() != 5 {
		t.Fatalf("t1 path length with prepend 3 = %d, want 5", r.Path.Len())
	}
}

func TestDeltaMutatorsPanicWhenFrozen(t *testing.T) {
	e, c, ids := convergedDiamond(t)
	c.Freeze()
	mustPanicDelta := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s on a frozen computation did not panic", name)
			}
		}()
		fn()
	}
	l, err := e.Topology().ProposeLink(ids["org"], ids["t2"], topology.RelPeer)
	if err != nil {
		t.Fatal(err)
	}
	mustPanicDelta("FailLink", func() { _ = c.FailLink(ids["org"], ids["c1"]) })
	mustPanicDelta("AddPeering", func() { _ = c.AddPeering(l) })
	mustPanicDelta("SetLocalPref", func() { _ = c.SetLocalPref(ids["t1"], ids["c1"], 1) })
}

func TestForkClonesOverlay(t *testing.T) {
	_, c, ids := convergedDiamond(t)
	f1 := c.Fork()
	if err := f1.FailLink(ids["org"], ids["c1"]); err != nil {
		t.Fatal(err)
	}
	if !f1.Converge() {
		t.Fatal("f1 did not reconverge")
	}
	// A second-generation fork must inherit the failure (identical state,
	// empty diff) and stay independently mutable.
	f2 := f1.Fork()
	if diff := f2.BestDiff(f1); len(diff) != 0 {
		t.Fatalf("fresh fork differs from parent: %v", diff)
	}
	if err := f2.FailLink(ids["org"], ids["c2"]); err != nil {
		t.Fatal(err)
	}
	if !f2.Converge() {
		t.Fatal("f2 did not reconverge")
	}
	if _, ok := f2.Best(ids["t1"]); ok {
		t.Fatal("t1 should be cut off in f2")
	}
	// The parent fork is untouched by the child's extra failure.
	if _, ok := f1.Best(ids["t1"]); !ok {
		t.Fatal("t1 must still route in f1")
	}
}
