package bgp

// Allocation guards for the memory-compaction layer (ISSUE 5): the
// intern pool, origin-route cache, and scratch advertisement buffer
// exist so steady-state convergence work allocates nothing. These tests
// pin that with testing.AllocsPerRun so a regression (say, a closure
// sneaking back into bestTwo, or the scratch route escaping) fails CI
// instead of silently re-inflating the allocation profile the
// benchcheck baseline measures.

import (
	"testing"

	"routelab/internal/asn"
	"routelab/internal/topology"
)

// allocFixture returns a converged anycast computation over a generated
// topology, plus a transit AS known to hold a route with alternatives.
func allocFixture(t *testing.T) (*Computation, asn.ASN) {
	t.Helper()
	topo := topology.Generate(17, topology.TestConfig())
	e := New(topo, 17)
	origin := topo.Names["peering"]
	c := e.NewComputation(topo.AS(origin).Prefixes[0])
	c.Announce(Announcement{Origin: origin})
	if !c.Converge() {
		t.Fatal("fixture did not converge")
	}
	// Find an AS with at least two candidates so Step exercises the full
	// two-best scan, not the only-route early exit.
	for i := range c.adjIn {
		if c.best[i] == nil {
			continue
		}
		n := 0
		for _, r := range c.adjIn[i] {
			if r != nil {
				n++
			}
		}
		if n >= 2 {
			return c, c.e.asns[i]
		}
	}
	t.Fatal("no AS with alternatives in fixture")
	return nil, 0
}

func requireAllocs(t *testing.T, what string, max float64, fn func()) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	fn() // warm up caches (origin route, intern pool, obs flush deltas)
	if got := testing.AllocsPerRun(100, fn); got > max {
		t.Errorf("%s: %v allocs/op, want <= %v", what, got, max)
	}
}

// TestAllocsSteadyStateConverge pins that converging an already-settled
// computation is allocation-free.
func TestAllocsSteadyStateConverge(t *testing.T) {
	c, _ := allocFixture(t)
	requireAllocs(t, "Converge on converged computation", 0, func() {
		c.Converge()
	})
}

// TestAllocsBestPathSelection pins that a single best-path decision —
// the Best/Step queries the experiments hammer — allocates nothing.
func TestAllocsBestPathSelection(t *testing.T) {
	c, target := allocFixture(t)
	requireAllocs(t, "Best+Step", 0, func() {
		if _, ok := c.Best(target); !ok {
			t.Fatal("target lost its route")
		}
		if _, ok := c.Step(target); !ok {
			t.Fatal("target lost its decision")
		}
	})
}

// TestAllocsSuppressedReannounce pins the scratch-buffer property: re-
// announcing the identical announcement reprocesses the origin, derives
// every advertisement again, and suppresses them all as no-op refreshes
// — without installing (and so without heap-copying) a single route.
// The small remaining budget is the origin-route rebuild (Announce
// invalidates the cache: base path + intern key + route + map insert)
// and the queue bookkeeping, all O(1) per Converge regardless of
// topology size.
func TestAllocsSuppressedReannounce(t *testing.T) {
	c, _ := allocFixture(t)
	topo := c.e.topo
	origin := topo.Names["peering"]
	ann := Announcement{Origin: origin}
	requireAllocs(t, "identical re-announce + Converge", 16, func() {
		c.Announce(ann)
		c.Converge()
	})
}
