package bgp

import (
	"sort"

	"routelab/internal/asn"
	"routelab/internal/obs"
	"routelab/internal/parallel"
)

// RIB holds converged best routes for a set of prefixes — the global
// routing state the data plane forwards on. Immutable once computed;
// concurrent readers are safe.
type RIB struct {
	routes map[asn.Prefix]map[asn.ASN]Route
	// byLen groups the covered prefixes by descending mask length for
	// longest-prefix matching.
	byLen []asn.Prefix
	// lens are the distinct mask lengths present, descending, so Lookup
	// probes one map key per length instead of scanning every prefix.
	lens []uint8
}

// ComputePrefix converges the default announcement of a single prefix
// (its topology origin announcing to everyone) and returns every AS's
// best route.
func (e *Engine) ComputePrefix(p asn.Prefix) map[asn.ASN]Route {
	origin := e.topo.OriginOf(p)
	if origin.IsZero() {
		return nil
	}
	c := e.NewComputation(p)
	c.Announce(Announcement{Origin: origin})
	c.Converge()
	return c.Routes()
}

// ComputeRIB converges every given prefix and assembles the global RIB.
// Per-prefix computations run concurrently (each one is single-threaded
// and deterministic; the engine and topology are read-only), and results
// are merged at the barrier in input-prefix order, so the RIB is
// byte-identical for any worker count. workers <= 0 selects GOMAXPROCS.
func (e *Engine) ComputeRIB(prefixes []asn.Prefix, workers int) *RIB {
	rib := &RIB{routes: make(map[asn.Prefix]map[asn.ASN]Route, len(prefixes))}
	perPrefix := parallel.MapStage("bgp/compute-rib", prefixes, workers,
		func(_ int, p asn.Prefix) map[asn.ASN]Route {
			return e.ComputePrefix(p)
		})
	routes := 0
	for i, p := range prefixes {
		rib.routes[p] = perPrefix[i]
		routes += len(perPrefix[i])
	}
	rib.indexPrefixes()
	obs.Add("bgp.rib.prefixes", int64(len(prefixes)))
	obs.Add("bgp.rib.routes", int64(routes))
	return rib
}

// ComputeFullRIB converges every prefix the topology originates.
func (e *Engine) ComputeFullRIB(workers int) *RIB {
	return e.ComputeRIB(e.topo.OriginatedPrefixes(), workers)
}

func (r *RIB) indexPrefixes() {
	// Collect into a local, sort, then publish: the index must never
	// reflect map iteration order (maporder), even transiently.
	byLen := r.byLen[:0]
	for p := range r.routes {
		byLen = append(byLen, p)
	}
	sort.Slice(byLen, func(i, j int) bool {
		if byLen[i].Len != byLen[j].Len {
			return byLen[i].Len > byLen[j].Len
		}
		return byLen[i].Addr < byLen[j].Addr
	})
	r.byLen = byLen
	r.lens = r.lens[:0]
	for _, p := range r.byLen {
		if len(r.lens) == 0 || r.lens[len(r.lens)-1] != p.Len {
			r.lens = append(r.lens, p.Len)
		}
	}
}

// Prefixes returns the covered prefixes, longest mask first.
func (r *RIB) Prefixes() []asn.Prefix { return r.byLen }

// Route returns a's best route for an exact prefix.
func (r *RIB) Route(a asn.ASN, p asn.Prefix) (Route, bool) {
	rt, ok := r.routes[p][a]
	return rt, ok
}

// RoutesFor returns the whole best-route map of a prefix (shared; do not
// modify).
func (r *RIB) RoutesFor(p asn.Prefix) map[asn.ASN]Route { return r.routes[p] }

// Lookup longest-prefix-matches ip in a's routes: one map probe per
// distinct mask length, longest first.
func (r *RIB) Lookup(a asn.ASN, ip asn.Addr) (Route, bool) {
	for _, l := range r.lens {
		if rts, ok := r.routes[asn.NewPrefix(ip, l)]; ok {
			if rt, ok := rts[a]; ok {
				return rt, true
			}
		}
	}
	return Route{}, false
}

// ASPath returns the AS-level forwarding path from a toward the exact
// prefix p, starting with a and ending at the origin, or nil when a has
// no route.
func (r *RIB) ASPath(a asn.ASN, p asn.Prefix) []asn.ASN {
	rt, ok := r.Route(a, p)
	if !ok {
		return nil
	}
	return rt.ASPathFrom(a)
}
