// Package bgp implements routelab's ground-truth routing engine: a
// deterministic per-prefix route-vector computation over the topology,
// with the full BGP decision process (LocalPref from business
// relationships and policy overrides, AS-path length, intradomain-cost
// tie-breaking, route age, router ID), RFC 4271 loop prevention (which is
// what makes BGP poisoning work), and incremental reconvergence so the
// PEERING experiments can change announcements mid-flight.
//
// # Concurrency contract
//
// The package splits state into three tiers (documented in detail in
// DESIGN.md §"Concurrency model"):
//
//   - Engine is immutable after New — its dense indexes are built
//     eagerly in the constructor, it holds no lazy caches — so any
//     number of goroutines may share one Engine: Topology, NewComputation,
//     ComputePrefix, ComputeRIB, and the policy helpers are all safe to
//     call concurrently.
//   - Computation is single-owner mutable state. Announce, Withdraw,
//     Converge, and the query methods (Best, Step, Alternatives, Routes)
//     must all be called from the goroutine that owns the computation.
//     Independent Computations (different prefixes, or even the same
//     prefix twice) never share mutable state and may run concurrently.
//   - RIB is immutable once ComputeRIB returns; concurrent readers are
//     safe. Its contents are byte-identical for any worker count because
//     each prefix's computation is self-contained and the merge is done
//     in input-prefix order (see internal/parallel).
package bgp

import (
	"fmt"

	"routelab/internal/asn"
	"routelab/internal/geo"
	"routelab/internal/topology"
)

// Route is one installed best route at an AS.
type Route struct {
	Prefix asn.Prefix
	// Path is the AS path as received from the neighbor, i.e. it does
	// NOT include the owning AS itself. For an origin route it is just
	// the announcement's base path.
	Path asn.Path
	// NextHop is the neighbor the route was learned from; 0 for routes
	// the AS originates itself.
	NextHop asn.ASN
	// FromRel is the EFFECTIVE relationship of NextHop for this prefix
	// (after hybrid and partial-transit overrides). RelNone for origin
	// routes.
	FromRel topology.Rel
	// OrgRel is the route's business class for the owning ORGANIZATION:
	// equal to FromRel unless the route was learned from a sibling, in
	// which case the sibling's own class is inherited. Local preference
	// and export policy key off OrgRel, so multi-AS organizations
	// behave like one AS instead of relaying provider routes org-wide
	// at customer preference.
	OrgRel topology.Rel
	// LocalPref is the computed local preference.
	LocalPref int
	// EgressCity is the interconnection city where the owning AS hands
	// traffic to NextHop (0 for origin routes). The data plane and the
	// hybrid-relationship logic both key off it.
	EgressCity geo.CityID
	// Age is the engine's event-clock value at which this exact
	// advertisement was first installed; lower means older. It feeds the
	// "oldest route" tie-breaker the magnet experiment exposes.
	Age int

	// pathLen and igpCost cache the decision-process inputs so sorting
	// candidates does not recompute them per comparison.
	pathLen int
	igpCost int

	// ip is the interned-path handle (intern.go): within one fork chain,
	// equal paths share one handle, so sameRoute compares by pointer.
	// Always nil on Route values returned by public accessors (see
	// Route.public) so externally visible routes are plain data —
	// reflect.DeepEqual-comparable across independently built
	// computations.
	ip *ipath
}

// public strips computation-internal state from a route copy handed to
// callers.
func (r *Route) public() Route {
	cp := *r
	cp.ip = nil
	return cp
}

// IsOrigin reports whether the owning AS originates the route.
func (r Route) IsOrigin() bool { return r.NextHop == 0 }

// ASPathFrom returns the full AS-level forwarding path starting at owner:
// owner followed by the path's sequence ASes.
func (r Route) ASPathFrom(owner asn.ASN) []asn.ASN {
	return append([]asn.ASN{owner}, r.Path.Sequence()...)
}

func (r Route) String() string {
	return fmt.Sprintf("%s via %s [%s lp=%d age=%d]", r.Prefix, r.NextHop, r.Path, r.LocalPref, r.Age)
}

// DecisionStep names the step of the BGP decision process that selected a
// route over the runner-up — the ground truth the magnet experiment of
// Table 2 tries to reverse-engineer from the outside.
type DecisionStep uint8

const (
	// OnlyRoute: there was no alternative.
	OnlyRoute DecisionStep = iota
	// ByLocalPref: higher local preference (relationship) won.
	ByLocalPref
	// ByPathLen: shorter AS path won.
	ByPathLen
	// ByIGPCost: lower intradomain cost to the egress won (hot potato).
	ByIGPCost
	// ByAge: the older route won.
	ByAge
	// ByRouterID: the lowest-router-ID tie-breaker won.
	ByRouterID
)

// String names the decision step as Table 2 does.
func (d DecisionStep) String() string {
	switch d {
	case OnlyRoute:
		return "only route"
	case ByLocalPref:
		return "best relationship"
	case ByPathLen:
		return "shorter path"
	case ByIGPCost:
		return "intradomain tie-breaker"
	case ByAge:
		return "oldest route"
	case ByRouterID:
		return "router id"
	default:
		return "unknown"
	}
}

// Announcement injects a prefix at an origin AS.
type Announcement struct {
	Prefix asn.Prefix
	// Origin is the AS issuing the announcement.
	Origin asn.ASN
	// Poisoned lists ASes to wrap in an AS_SET sandwiched by the origin
	// (the PEERING poisoning idiom: ORIGIN {poisoned} ORIGIN). Nil for
	// plain announcements.
	Poisoned []asn.ASN
	// Via restricts which neighbors the origin announces to (PEERING's
	// per-mux announcements). Nil means all neighbors, still subject to
	// the origin AS's own SelectiveExport policy.
	Via []asn.ASN
	// Prepend inflates the announced path with this many extra copies of
	// the origin (announcement-side traffic engineering; the what-if
	// engine's prepend delta). 0 for plain announcements.
	Prepend int
}

// basePath builds the path as it leaves the origin.
func (a Announcement) basePath() asn.Path {
	p := asn.PathFromASNs(a.Origin)
	if len(a.Poisoned) > 0 {
		p = p.PrependSet(a.Poisoned).Prepend(a.Origin)
	}
	for i := 0; i < a.Prepend; i++ {
		p = p.Prepend(a.Origin)
	}
	return p
}

// permitsNeighbor applies the Via restriction.
func (a Announcement) permitsNeighbor(n asn.ASN) bool {
	if a.Via == nil {
		return true
	}
	for _, x := range a.Via {
		if x == n {
			return true
		}
	}
	return false
}
