//go:build race

package bgp

// raceEnabled lets allocation guards skip under the race detector, whose
// instrumentation changes allocation counts.
const raceEnabled = true
