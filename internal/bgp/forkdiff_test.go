package bgp

// Differential convergence suite for Computation.Fork (ISSUE 5's
// backbone): a fork that is mutated and reconverged must be
// indistinguishable — full internal state, not just the public RIB view —
// from a from-scratch computation that replayed the identical
// announce/withdraw/converge history. "Identical history" matters: the
// event clock feeds Route.Age, whose tie-breaking makes convergence
// history-dependent, so the oracle replays the exact op sequence
// (including Converge boundaries) rather than just the final
// announcement set.

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"routelab/internal/asn"
	"routelab/internal/topology"
)

// forkOp is one step of a computation's history.
type forkOp struct {
	converge bool // drain the queue
	withdraw bool // withdraw `origin` (else announce `ann`)
	origin   asn.ASN
	ann      Announcement
}

func (o forkOp) apply(c *Computation) {
	switch {
	case o.converge:
		c.Converge()
	case o.withdraw:
		c.Withdraw(o.origin)
	default:
		c.Announce(o.ann)
	}
}

// replay builds a fresh from-scratch computation and applies the history
// in order — the oracle the forked computation is compared against.
func replay(e *Engine, prefix asn.Prefix, hist []forkOp) *Computation {
	c := e.NewComputation(prefix)
	for _, o := range hist {
		o.apply(c)
	}
	return c
}

// routeStateEqual compares two installed routes field by field, Age
// included. The interned-path handle is deliberately ignored: fork and
// oracle live in different pool chains, so handles differ even when the
// routes are identical.
func routeStateEqual(a, b *Route) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	return a.Prefix == b.Prefix &&
		a.NextHop == b.NextHop &&
		a.FromRel == b.FromRel &&
		a.OrgRel == b.OrgRel &&
		a.LocalPref == b.LocalPref &&
		a.EgressCity == b.EgressCity &&
		a.Age == b.Age &&
		a.pathLen == b.pathLen &&
		a.igpCost == b.igpCost &&
		a.Path.Equal(b.Path)
}

// checkSameState asserts got (the fork) and want (the from-scratch
// oracle) agree on every piece of convergence state: best routes,
// adj-RIB-in contents, announcements, event clock, and convergence flag.
func checkSameState(t *testing.T, got, want *Computation) {
	t.Helper()
	if got.clock != want.clock {
		t.Errorf("clock: fork=%d oracle=%d", got.clock, want.clock)
	}
	if got.converged != want.converged {
		t.Errorf("converged: fork=%v oracle=%v", got.converged, want.converged)
	}
	if !reflect.DeepEqual(got.anns, want.anns) {
		t.Errorf("announcements diverge: fork=%v oracle=%v", got.anns, want.anns)
	}
	for i := range got.best {
		a := got.e.asns[i]
		if !routeStateEqual(got.best[i], want.best[i]) {
			t.Errorf("best[%s]: fork=%v oracle=%v", a, got.best[i], want.best[i])
		}
		gRow, wRow := got.adjIn[i], want.adjIn[i]
		for s := range got.e.nbrs[i] {
			var g, w *Route
			if gRow != nil {
				g = gRow[int32(s)]
			}
			if wRow != nil {
				w = wRow[int32(s)]
			}
			if !routeStateEqual(g, w) {
				t.Errorf("adjIn[%s][%d]: fork=%v oracle=%v", a, s, g, w)
			}
		}
	}
	// Public views must agree too (they are derived, but this is what
	// the experiments actually consume).
	if !reflect.DeepEqual(got.Routes(), want.Routes()) {
		t.Error("Routes() maps diverge")
	}
}

// randomOps generates n announce/withdraw ops (with interleaved
// converges) driven by rng: poisoned and Via-restricted announcements
// from the main origin, secondary origins announcing and withdrawing.
func randomOps(rng *rand.Rand, all []asn.ASN, origin asn.ASN, n int) []forkOp {
	var ops []forkOp
	announced := []asn.ASN{origin} // origins touched so far (withdraw pool)
	pick := func() asn.ASN { return all[rng.Intn(len(all))] }
	for len(ops) < n {
		switch rng.Intn(5) {
		case 0: // poisoned re-announcement from the main origin
			poisoned := make([]asn.ASN, 1+rng.Intn(3))
			for i := range poisoned {
				poisoned[i] = pick()
			}
			ops = append(ops, forkOp{ann: Announcement{Origin: origin, Poisoned: poisoned}})
		case 1: // Via-restricted announcement
			via := make([]asn.ASN, 1+rng.Intn(2))
			for i := range via {
				via[i] = pick()
			}
			ops = append(ops, forkOp{ann: Announcement{Origin: origin, Via: via}})
		case 2: // secondary origin appears
			o := pick()
			announced = append(announced, o)
			ops = append(ops, forkOp{ann: Announcement{Origin: o}})
		case 3: // some previously seen origin withdraws
			o := announced[rng.Intn(len(announced))]
			ops = append(ops, forkOp{withdraw: true, origin: o})
		case 4:
			ops = append(ops, forkOp{converge: true})
		}
	}
	ops = append(ops, forkOp{converge: true})
	return ops
}

// forkFixture builds a generated topology, converges the base anycast
// announcement, and returns everything the differential tests need.
func forkFixture(t *testing.T, seed int64) (*Engine, asn.Prefix, []asn.ASN, []forkOp) {
	t.Helper()
	topo := topology.Generate(seed, topology.TestConfig())
	e := New(topo, seed)
	origin := topo.Names["peering"]
	prefix := topo.AS(origin).Prefixes[0]
	hist := []forkOp{
		{ann: Announcement{Origin: origin}},
		{converge: true},
	}
	return e, prefix, topo.ASNs(), hist
}

// TestForkDifferentialOracle is the core property: for a table of
// topology seeds and random mutation histories, fork-and-mutate equals
// from-scratch-with-same-history, state-identically.
func TestForkDifferentialOracle(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 7, 42, 1337} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			e, prefix, all, hist := forkFixture(t, seed)
			origin := hist[0].ann.Origin

			base := replay(e, prefix, hist)
			if !base.Converged() {
				t.Fatal("base did not converge")
			}
			f := base.Fork()

			rng := rand.New(rand.NewSource(seed * 977))
			ops := randomOps(rng, all, origin, 12)
			for i, o := range ops {
				if i == len(ops)/2 {
					// Mid-history re-fork: the chained pool and double-COW
					// path must behave identically to a single fork.
					f = f.Fork()
				}
				o.apply(f)
				hist = append(hist, o)
			}

			checkSameState(t, f, replay(e, prefix, hist))
		})
	}
}

// TestForkOfUnconvergedComputation pins that pending queue events carry
// over: forking before Converge and converging the fork matches a
// from-scratch computation.
func TestForkOfUnconvergedComputation(t *testing.T) {
	e, prefix, all, base := forkFixture(t, 5)
	origin := base[0].ann.Origin
	hist := []forkOp{
		{ann: Announcement{Origin: origin}},
		{converge: true},
		{ann: Announcement{Origin: origin, Poisoned: []asn.ASN{all[3], all[17]}}},
		// not converged at fork time
	}
	c := replay(e, prefix, hist)
	f := c.Fork()
	f.Converge()
	hist = append(hist, forkOp{converge: true})
	checkSameState(t, f, replay(e, prefix, hist))
}

// TestForkParentIsolation pins copy-on-write: driving a fork through an
// aggressive history must leave every observable bit of the frozen
// parent untouched.
func TestForkParentIsolation(t *testing.T) {
	e, prefix, all, hist := forkFixture(t, 11)
	origin := hist[0].ann.Origin
	base := replay(e, prefix, hist)

	// Deep value snapshot of the parent (routes copied, not aliased) plus
	// the row/route pointers, taken before forking.
	snapRoutes := base.Routes()
	snapBestPtr := make([]*Route, len(base.best))
	copy(snapBestPtr, base.best)
	snapBestVal := make([]*Route, len(base.best))
	for i, r := range base.best {
		if r != nil {
			cp := *r
			snapBestVal[i] = &cp
		}
	}
	snapClock := base.clock

	f := base.Fork()
	for _, o := range randomOps(rand.New(rand.NewSource(4242)), all, origin, 16) {
		o.apply(f)
	}
	f.Converge()

	if base.clock != snapClock {
		t.Errorf("parent clock moved: %d -> %d", snapClock, base.clock)
	}
	for i := range base.best {
		if base.best[i] != snapBestPtr[i] {
			t.Fatalf("parent best[%s] pointer changed", base.e.asns[i])
		}
		if !routeStateEqual(base.best[i], snapBestVal[i]) {
			t.Fatalf("parent best[%s] mutated in place", base.e.asns[i])
		}
	}
	if !reflect.DeepEqual(base.Routes(), snapRoutes) {
		t.Error("parent Routes() changed after fork mutation")
	}
}

// TestConcurrentForks drives independent forks of one frozen base from
// parallel goroutines — exactly the alternates-campaign shape — and
// checks each against its from-scratch oracle. Run under -race this also
// proves the frozen parent (shared rows, chained intern pool) is safe to
// read concurrently.
func TestConcurrentForks(t *testing.T) {
	e, prefix, all, hist := forkFixture(t, 21)
	origin := hist[0].ann.Origin
	base := replay(e, prefix, hist)
	base.Freeze()

	const workers = 8
	var wg sync.WaitGroup
	forks := make([]*Computation, workers)
	histories := make([][]forkOp, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			f := base.Fork()
			ops := randomOps(rand.New(rand.NewSource(int64(w)*31+7)), all, origin, 8)
			for _, o := range ops {
				o.apply(f)
			}
			forks[w] = f
			histories[w] = ops
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		oracle := replay(e, prefix, append(append([]forkOp(nil), hist...), histories[w]...))
		checkSameState(t, forks[w], oracle)
	}
}

// TestFrozenComputationPanics pins the freeze contract: mutation of a
// frozen computation is a programming error, loudly.
func TestFrozenComputationPanics(t *testing.T) {
	e, prefix, _, hist := forkFixture(t, 2)
	origin := hist[0].ann.Origin
	base := replay(e, prefix, hist)

	if base.Frozen() {
		t.Fatal("fresh computation reports frozen")
	}
	base.Fork() // freezes
	if !base.Frozen() {
		t.Fatal("Fork did not freeze the parent")
	}
	base.Freeze() // idempotent

	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s on a frozen computation did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("Announce", func() { base.Announce(Announcement{Origin: origin}) })
	mustPanic("Withdraw", func() { base.Withdraw(origin) })
}
