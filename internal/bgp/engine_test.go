package bgp

import (
	"testing"

	"routelab/internal/asn"
	"routelab/internal/geo"
	"routelab/internal/topology"
)

// diamond builds the classic Gao–Rexford test topology:
//
//	  t1 ——— t2        (peer)
//	 /  \    |
//	c1   c2  c3        (customers of the tier above)
//	 \   /
//	  org                (customer of c1 and c2)
//
// org originates a prefix; t1 hears it from customer c1/c2; t2 from t1.
func diamond(t *testing.T) (*Engine, asn.Prefix, map[string]asn.ASN) {
	t.Helper()
	b := topology.NewBuilder()
	ids := map[string]asn.ASN{"t1": 10, "t2": 20, "c1": 31, "c2": 32, "c3": 33, "org": 40}
	for _, a := range ids {
		b.AS(a, topology.SmallISP, "")
	}
	b.Link(ids["t1"], ids["t2"], topology.RelPeer)
	b.Link(ids["c1"], ids["t1"], topology.RelProvider)
	b.Link(ids["c2"], ids["t1"], topology.RelProvider)
	b.Link(ids["c3"], ids["t2"], topology.RelProvider)
	b.Link(ids["org"], ids["c1"], topology.RelProvider)
	b.Link(ids["org"], ids["c2"], topology.RelProvider)
	topo := b.Build()
	e := New(topo, 1)
	return e, topo.AS(ids["org"]).Prefixes[0], ids
}

func mustRoute(t *testing.T, c *Computation, a asn.ASN) Route {
	t.Helper()
	r, ok := c.Best(a)
	if !ok {
		t.Fatalf("%s has no route", a)
	}
	return r
}

func TestBasicPropagation(t *testing.T) {
	e, p, ids := diamond(t)
	c := e.NewComputation(p)
	c.Announce(Announcement{Origin: ids["org"]})
	if !c.Converge() {
		t.Fatal("did not converge")
	}
	// Everyone must have a route.
	for name, a := range ids {
		r := mustRoute(t, c, a)
		if name == "org" {
			if !r.IsOrigin() {
				t.Errorf("org should self-originate, got %v", r)
			}
			continue
		}
		if got := r.Path.Origin(); got != ids["org"] {
			t.Errorf("%s path origin = %v", name, got)
		}
	}
	// t1 hears org via a customer (c1 or c2), one AS away.
	r := mustRoute(t, c, ids["t1"])
	if r.FromRel != topology.RelCustomer || r.Path.Len() != 2 {
		t.Errorf("t1 route: rel=%s len=%d, want customer len 2", r.FromRel, r.Path.Len())
	}
	// t2 hears only via its peer t1.
	r = mustRoute(t, c, ids["t2"])
	if r.NextHop != ids["t1"] || r.FromRel != topology.RelPeer {
		t.Errorf("t2 route: %v", r)
	}
	// c3 hears via provider t2: path c3->t2->t1->cX->org.
	r = mustRoute(t, c, ids["c3"])
	if r.FromRel != topology.RelProvider || r.Path.Len() != 4 {
		t.Errorf("c3 route: %v", r)
	}
}

// The export rule must prevent valleys: c3's provider route must never be
// exported back up or sideways. We verify c1 does NOT learn a path
// through t2 (peer routes are not exported to peers).
func TestNoValleyExport(t *testing.T) {
	e, p, ids := diamond(t)
	c := e.NewComputation(p)
	c.Announce(Announcement{Origin: ids["org"]})
	c.Converge()
	for _, r := range c.Alternatives(ids["t2"]) {
		// t2's only candidate should be via t1 (peer); its customer c3
		// must not offer a route (that would be a valley).
		if r.NextHop == ids["c3"] {
			t.Fatalf("valley: t2 learned org's prefix from its customer c3: %v", r)
		}
	}
}

func TestCustomerPreferredOverPeerAndProvider(t *testing.T) {
	// t1 hears from customer c1 AND from peer t2 (if exported) — build a
	// triangle where the same prefix arrives with different relations.
	b := topology.NewBuilder()
	x := b.AS(100, topology.LargeISP, "").ASN
	cust := b.AS(200, topology.SmallISP, "").ASN
	peer := b.AS(300, topology.LargeISP, "").ASN
	org := b.AS(400, topology.Stub, "").ASN
	b.Link(cust, x, topology.RelProvider) // cust's provider is x
	b.Link(x, peer, topology.RelPeer)     // x peers with peer
	b.Link(org, cust, topology.RelProvider)
	b.Link(org, peer, topology.RelProvider)
	topo := b.Build()
	e := New(topo, 1)
	p := topo.AS(org).Prefixes[0]
	c := e.NewComputation(p)
	c.Announce(Announcement{Origin: org})
	c.Converge()
	r := mustRoute(t, c, x)
	if r.NextHop != cust || r.FromRel != topology.RelCustomer {
		t.Fatalf("x chose %v; want customer route via %s", r, cust)
	}
	alts := c.Alternatives(x)
	if len(alts) != 2 {
		t.Fatalf("x should hold 2 candidates, got %d", len(alts))
	}
	if alts[1].NextHop != peer {
		t.Errorf("runner-up should be the peer route, got %v", alts[1])
	}
	if step, _ := c.Step(x); step != ByLocalPref {
		t.Errorf("decisive step = %v, want best relationship", step)
	}
}

func TestShorterPathWinsWithinClass(t *testing.T) {
	// Two customer routes of different lengths.
	b := topology.NewBuilder()
	x := b.AS(100, topology.LargeISP, "").ASN
	c1 := b.AS(200, topology.SmallISP, "").ASN
	c2 := b.AS(300, topology.SmallISP, "").ASN
	mid := b.AS(350, topology.SmallISP, "").ASN
	org := b.AS(400, topology.Stub, "").ASN
	b.Link(c1, x, topology.RelProvider)
	b.Link(c2, x, topology.RelProvider)
	b.Link(org, c1, topology.RelProvider)  // short: org-c1-x
	b.Link(org, mid, topology.RelProvider) // long: org-mid-c2-x
	b.Link(mid, c2, topology.RelProvider)
	topo := b.Build()
	e := New(topo, 1)
	p := topo.AS(org).Prefixes[0]
	c := e.NewComputation(p)
	c.Announce(Announcement{Origin: org})
	c.Converge()
	r := mustRoute(t, c, x)
	if r.NextHop != c1 || r.Path.Len() != 2 {
		t.Fatalf("x chose %v, want 2-hop customer route via %s", r, c1)
	}
	if step, _ := c.Step(x); step != ByPathLen {
		t.Errorf("decisive step = %v, want shorter path", step)
	}
}

func TestPoisoningForcesAlternate(t *testing.T) {
	e, p, ids := diamond(t)
	c := e.NewComputation(p)
	c.Announce(Announcement{Origin: ids["org"]})
	c.Converge()
	first := mustRoute(t, c, ids["t1"])
	firstHop := first.NextHop // c1 or c2

	// Poison the chosen next hop: org announces ORG {firstHop} ORG.
	c.Announce(Announcement{Origin: ids["org"], Poisoned: []asn.ASN{firstHop}})
	if !c.Converge() {
		t.Fatal("did not reconverge after poisoning")
	}
	second := mustRoute(t, c, ids["t1"])
	if second.NextHop == firstHop {
		t.Fatalf("t1 still routes via poisoned %s", firstHop)
	}
	if _, ok := c.Best(firstHop); ok {
		t.Errorf("poisoned AS %s still holds a route", firstHop)
	}
	// Path length at t1 reflects the AS_SET counting: ORG {X} ORG via cY
	// is 4 (cY, ORG, set, ORG).
	if second.Path.Len() != 4 {
		t.Errorf("poisoned path len = %d, want 4 (%v)", second.Path.Len(), second.Path)
	}
}

func TestPoisonBothUpstreamsKillsRoute(t *testing.T) {
	e, p, ids := diamond(t)
	c := e.NewComputation(p)
	c.Announce(Announcement{Origin: ids["org"], Poisoned: []asn.ASN{ids["c1"], ids["c2"]}})
	c.Converge()
	if _, ok := c.Best(ids["t1"]); ok {
		t.Error("t1 should lose all routes when both upstreams are poisoned")
	}
	if _, ok := c.Best(ids["org"]); !ok {
		t.Error("origin must keep its own route")
	}
}

func TestNoLoopPreventionAcceptsPoison(t *testing.T) {
	e, p, ids := diamond(t)
	e.topo.AS(ids["c1"]).NoLoopPrevention = true
	c := e.NewComputation(p)
	c.Announce(Announcement{Origin: ids["org"], Poisoned: []asn.ASN{ids["c1"]}})
	c.Converge()
	if _, ok := c.Best(ids["c1"]); !ok {
		t.Error("c1 has loop prevention disabled and must accept the poisoned path")
	}
}

func TestASSetFilterDropsPoisonedAnnouncements(t *testing.T) {
	e, p, ids := diamond(t)
	e.topo.AS(ids["t1"]).FiltersASSets = true
	c := e.NewComputation(p)
	c.Announce(Announcement{Origin: ids["org"], Poisoned: []asn.ASN{9999}})
	c.Converge()
	if _, ok := c.Best(ids["t1"]); ok {
		t.Error("t1 filters AS_SETs and must drop the poisoned announcement")
	}
	if _, ok := c.Best(ids["c1"]); !ok {
		t.Error("c1 does not filter AS_SETs and should keep the route")
	}
}

func TestViaRestrictsAnnouncement(t *testing.T) {
	e, p, ids := diamond(t)
	c := e.NewComputation(p)
	c.Announce(Announcement{Origin: ids["org"], Via: []asn.ASN{ids["c1"]}})
	c.Converge()
	r := mustRoute(t, c, ids["t1"])
	if r.NextHop != ids["c1"] {
		t.Errorf("t1 should hear only via c1, got %v", r)
	}
	if alts := c.Alternatives(ids["t1"]); len(alts) != 1 {
		t.Errorf("t1 should hold exactly 1 candidate, got %d", len(alts))
	}
	// c2 must not hear the prefix DIRECTLY from org; it still learns it
	// through its provider t1 (that is the whole point of selective
	// announcement confusing the models: the edge org-c2 exists but is
	// unused for this prefix).
	rc2 := mustRoute(t, c, ids["c2"])
	if rc2.NextHop != ids["t1"] {
		t.Errorf("c2 should hear only via t1, got %v", rc2)
	}
	for _, alt := range c.Alternatives(ids["c2"]) {
		if alt.NextHop == ids["org"] {
			t.Error("c2 heard a direct announcement the Via policy forbade")
		}
	}
}

func TestSelectiveExportPolicy(t *testing.T) {
	e, p, ids := diamond(t)
	org := e.topo.AS(ids["org"])
	org.SelectiveExport = map[asn.Prefix][]asn.ASN{p: {ids["c2"]}}
	c := e.NewComputation(p)
	c.Announce(Announcement{Origin: ids["org"]})
	c.Converge()
	r := mustRoute(t, c, ids["t1"])
	if r.NextHop != ids["c2"] {
		t.Errorf("selective export should leave only the c2 path, got %v", r)
	}
	// c1 hears only the long way around, via its provider t1.
	rc1 := mustRoute(t, c, ids["c1"])
	if rc1.NextHop != ids["t1"] {
		t.Errorf("c1 should hear only via t1, got %v", rc1)
	}
	for _, alt := range c.Alternatives(ids["c1"]) {
		if alt.NextHop == ids["org"] {
			t.Error("c1 heard a direct announcement despite selective export")
		}
	}
}

func TestWithdrawPropagates(t *testing.T) {
	e, p, ids := diamond(t)
	c := e.NewComputation(p)
	c.Announce(Announcement{Origin: ids["org"]})
	c.Converge()
	c.Withdraw(ids["org"])
	if !c.Converge() {
		t.Fatal("did not converge after withdrawal")
	}
	for name, a := range ids {
		if _, ok := c.Best(a); ok {
			t.Errorf("%s still holds a route after withdrawal", name)
		}
	}
}

func TestAnycastAndOldestRouteTieBreak(t *testing.T) {
	// Two origins announce the same prefix (anycast). An AS equidistant
	// from both with equal LocalPref and IGP costs... hard to force IGP
	// equality, so instead verify the magnet property: an AS that
	// already holds a route does not move to a NEW route that ties on
	// LocalPref/length/IGP only when the old one is genuinely preferred;
	// and that ages are tracked (the second announcement's routes are
	// younger).
	e, p, ids := diamond(t)
	c := e.NewComputation(p)
	c.Announce(Announcement{Origin: ids["org"], Via: []asn.ASN{ids["c1"]}})
	c.Converge()
	before := mustRoute(t, c, ids["t1"])
	c.Announce(Announcement{Origin: ids["org"]}) // now via both
	c.Converge()
	after := mustRoute(t, c, ids["t1"])
	if after.NextHop != before.NextHop {
		// Whatever moved it must have been a strictly better step, not age.
		if step, _ := c.Step(ids["t1"]); step == ByAge || step == ByRouterID {
			t.Errorf("t1 moved on a pure tie (step=%v); oldest route must win ties", step)
		}
	}
	// The candidate via c2 must be younger than the one via c1.
	alts := c.Alternatives(ids["t1"])
	var viaC1, viaC2 *Route
	for i := range alts {
		switch alts[i].NextHop {
		case ids["c1"]:
			viaC1 = &alts[i]
		case ids["c2"]:
			viaC2 = &alts[i]
		}
	}
	if viaC1 == nil || viaC2 == nil {
		t.Fatalf("t1 should hold candidates via both customers: %v", alts)
	}
	if viaC1.Age >= viaC2.Age {
		t.Errorf("route via c1 (age %d) should be older than via c2 (age %d)",
			viaC1.Age, viaC2.Age)
	}
}

func TestDomesticBiasFlipsPreference(t *testing.T) {
	// x (domestic-bias) chooses between an international peer route and
	// a domestic provider route toward a domestic origin.
	b := topology.NewBuilder()
	home := b.World().AllCountries()[0]
	abroad := b.World().AllCountries()[1]
	x := b.AS(100, topology.SmallISP, home)
	prov := b.AS(200, topology.LargeISP, home).ASN
	peer := b.AS(300, topology.LargeISP, abroad).ASN
	org := b.AS(400, topology.Stub, home).ASN
	b.Link(x.ASN, prov, topology.RelProvider)
	b.Link(x.ASN, peer, topology.RelPeer)
	b.Link(org, prov, topology.RelProvider)
	b.Link(org, peer, topology.RelProvider)
	topo := b.Build()
	p := topo.AS(org).Prefixes[0]

	run := func(bias bool) Route {
		topo.AS(x.ASN).DomesticBias = bias
		e := New(topo, 1)
		c := e.NewComputation(p)
		c.Announce(Announcement{Origin: org})
		c.Converge()
		r, ok := c.Best(x.ASN)
		if !ok {
			t.Fatal("x has no route")
		}
		return r
	}
	if r := run(false); r.NextHop != peer {
		t.Fatalf("without bias x should prefer the peer route, got %v", r)
	}
	if r := run(true); r.NextHop != prov {
		t.Fatalf("with domestic bias x should prefer the domestic provider, got %v", r)
	}
}

func TestResearchPreference(t *testing.T) {
	// A university prefers the path through its research backbone even
	// though the backbone is its provider and a peer route exists.
	b := topology.NewBuilder()
	univ := b.AS(100, topology.Stub, "")
	ren := b.AS(200, topology.Research, "").ASN
	isp := b.AS(300, topology.LargeISP, "").ASN
	org := b.AS(400, topology.Stub, "").ASN
	b.Link(univ.ASN, ren, topology.RelProvider)
	b.Link(univ.ASN, isp, topology.RelPeer)
	b.Link(org, ren, topology.RelProvider)
	b.Link(org, isp, topology.RelProvider)
	topo := b.Build()
	univ.ResearchPreference = true
	e := New(topo, 1)
	p := topo.AS(org).Prefixes[0]
	c := e.NewComputation(p)
	c.Announce(Announcement{Origin: org})
	c.Converge()
	r := mustRoute(t, c, univ.ASN)
	if r.NextHop != ren {
		t.Fatalf("university should prefer the research path, got %v", r)
	}
	if r.FromRel != topology.RelProvider {
		t.Errorf("research path is via a provider (the violation fixture), got %s", r.FromRel)
	}
}

func TestPartialTransitOverride(t *testing.T) {
	// peer link x—y carries partial transit: y provides x transit for
	// prefix pT only. For pT, y exports its provider-learned route to x;
	// for other prefixes it must not.
	b := topology.NewBuilder()
	x := b.AS(100, topology.SmallISP, "").ASN
	y := b.AS(200, topology.LargeISP, "").ASN
	up := b.AS(300, topology.Tier1, "").ASN
	orgT := b.AS(400, topology.Stub, "").ASN
	orgO := b.AS(500, topology.Stub, "").ASN
	l := b.Link(x, y, topology.RelPeer)
	b.Link(y, up, topology.RelProvider)
	b.Link(orgT, up, topology.RelProvider)
	b.Link(orgO, up, topology.RelProvider)
	topo := b.Build()
	pT := topo.AS(orgT).Prefixes[0]
	pO := topo.AS(orgO).Prefixes[0]
	l.PartialTransitFor = map[asn.Prefix]bool{pT: true}
	e := New(topo, 1)

	cT := e.NewComputation(pT)
	cT.Announce(Announcement{Origin: orgT})
	cT.Converge()
	r, ok := cT.Best(x)
	if !ok {
		t.Fatal("x should reach pT through partial transit")
	}
	if r.NextHop != y || r.FromRel != topology.RelProvider {
		t.Errorf("x's pT route = %v; want provider route via y", r)
	}

	cO := e.NewComputation(pO)
	cO.Announce(Announcement{Origin: orgO})
	cO.Converge()
	if _, ok := cO.Best(x); ok {
		t.Error("x must NOT reach pO via the peer link (no transit for it)")
	}
}

func TestHybridRelationshipByCity(t *testing.T) {
	// Link x—y interconnects in two cities; in city B, y is x's customer
	// instead of peer. Prefixes hashing to city B see customer pricing.
	b := topology.NewBuilder()
	w := b.World()
	cities := w.Country(w.AllCountries()[0]).Cities
	if len(cities) < 2 {
		cities = append(cities, w.Country(w.AllCountries()[1]).Cities[0])
	}
	x := b.AS(100, topology.LargeISP, "").ASN
	y := b.AS(200, topology.LargeISP, "").ASN
	org := b.AS(300, topology.Stub, "").ASN
	b.Link(x, y, topology.RelPeer, cities[0], cities[1])
	b.Link(org, y, topology.RelProvider)
	topo := b.Build()
	e := New(topo, 7)
	// y is x's customer at cities[1] (l.Lo is the smaller ASN, x=100).
	lnk := topo.Link(x, y)
	lnk.HybridRoles = map[geo.CityID]topology.Rel{cities[1]: topology.RelCustomer}

	// Find prefixes that hash to each city.
	var pA, pB asn.Prefix
	for i := 0; i < 64 && (pA.IsZero() || pB.IsZero()); i++ {
		p := b.AddPrefix(org)
		if e.linkCity(lnk, p) == cities[0] {
			if pA.IsZero() {
				pA = p
			}
		} else if pB.IsZero() {
			pB = p
		}
	}
	if pA.IsZero() || pB.IsZero() {
		t.Skip("hash never split prefixes across cities (unlucky seed)")
	}
	relFor := func(p asn.Prefix) topology.Rel {
		c := e.NewComputation(p)
		c.Announce(Announcement{Origin: org})
		c.Converge()
		r, ok := c.Best(x)
		if !ok {
			t.Fatalf("x has no route for %s", p)
		}
		return r.FromRel
	}
	if got := relFor(pA); got != topology.RelPeer {
		t.Errorf("prefix at city A: rel=%s, want peer", got)
	}
	if got := relFor(pB); got != topology.RelCustomer {
		t.Errorf("prefix at city B: rel=%s, want customer (hybrid)", got)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	topo := topology.Generate(5, topology.TestConfig())
	e1 := New(topo, 9)
	e2 := New(topo, 9)
	p := topo.AS(topo.Names["cdn-major"]).Prefixes[0]
	r1 := e1.ComputePrefix(p)
	r2 := e2.ComputePrefix(p)
	if len(r1) != len(r2) {
		t.Fatalf("route counts differ: %d vs %d", len(r1), len(r2))
	}
	for a, x := range r1 {
		y := r2[a]
		if !sameRoute(x, y) || x.Age != y.Age {
			t.Fatalf("route at %s differs: %v vs %v", a, x, y)
		}
	}
}

// On the generated topology, with an origin that has NO special policies
// in play for its prefix, every installed ground-truth path must be
// valley-free with respect to EFFECTIVE relationships. (Sibling edges are
// transparent; research/domestic bonuses change preference, not export.)
func TestGroundTruthPathsValleyFree(t *testing.T) {
	topo := topology.Generate(11, topology.TestConfig())
	e := New(topo, 11)
	checked := 0
	for _, p := range topo.OriginatedPrefixes() {
		if checked >= 12 {
			break
		}
		checked++
		routes := e.ComputePrefix(p)
		for a, r := range routes {
			if r.IsOrigin() {
				continue
			}
			full := r.ASPathFrom(a)
			if err := valleyFreeEffective(topo, e, p, full); err != nil {
				t.Fatalf("prefix %s at %s: %v (path %v)", p, a, err, full)
			}
		}
	}
}

// valleyFreeEffective verifies the Gao–Rexford export invariant along a
// ground-truth forwarding path, using effective per-prefix roles. The
// advertisement traveled origin→source; at every transit AS path[i]
// (0 < i < len-1) the route learned from path[i+1] must be exportable to
// path[i-1]. Sibling edges behave like customer edges on both sides, so
// a path may climb again after crossing one — the classic single-peak
// pattern only holds for sibling-free paths, which we additionally check.
func valleyFreeEffective(topo *topology.Topology, e *Engine, p asn.Prefix, path []asn.ASN) error {
	rels := make([]topology.Rel, len(path)-1)
	for i := 0; i+1 < len(path); i++ {
		l := topo.Link(path[i], path[i+1])
		if l == nil {
			return errLink{path[i], path[i+1]}
		}
		city := e.linkCity(l, p)
		rels[i] = effectiveRel(l, path[i], path[i+1], p, city)
	}
	// Export invariant at every transit AS, tracking the route's
	// organizational class across sibling hops (advertisement direction:
	// origin → source).
	orgRel := topology.RelNone // the origin's own route
	for i := len(path) - 2; i >= 0; i-- {
		toRel := rels[i].Invert() // role of path[i] from the exporter path[i+1]
		if !exports(orgRel, toRel) {
			return errValley{"export rule violated", i}
		}
		if rels[i] == topology.RelSibling {
			// class preserved across the sibling hop
		} else {
			orgRel = rels[i] // the class path[i] received the route with
		}
	}
	// Classic single-peak shape for sibling-free paths.
	for _, r := range rels {
		if r == topology.RelSibling {
			return nil
		}
	}
	const (
		up   = 0
		down = 1
	)
	phase := up
	for i, r := range rels {
		switch r {
		case topology.RelProvider:
			if phase != up {
				return errValley{"provider edge after the summit", i}
			}
		case topology.RelPeer, topology.RelCustomer:
			if phase == down && r == topology.RelPeer {
				return errValley{"peer edge on the downhill", i}
			}
			phase = down
		default:
			return errValley{"unrelated adjacency", i}
		}
	}
	return nil
}

type errLink struct{ a, b asn.ASN }

func (e errLink) Error() string { return "no link " + e.a.String() + "-" + e.b.String() }

type errValley struct {
	msg string
	idx int
}

func (e errValley) Error() string { return e.msg }

func TestContentPeerTE(t *testing.T) {
	// x traffic-engineers content traffic onto peering: toward a
	// CONTENT destination it prefers its peer route over a customer
	// route; toward a stub destination the customer route still wins.
	b := topology.NewBuilder()
	x := b.AS(100, topology.LargeISP, "")
	cust := b.AS(200, topology.SmallISP, "").ASN
	peer := b.AS(300, topology.LargeISP, "").ASN
	contentAS := b.AS(400, topology.Content, "").ASN
	stubAS := b.AS(500, topology.Stub, "").ASN
	b.Link(cust, x.ASN, topology.RelProvider)
	b.Link(x.ASN, peer, topology.RelPeer)
	for _, dst := range []asn.ASN{contentAS, stubAS} {
		b.Link(dst, cust, topology.RelProvider)
		b.Link(dst, peer, topology.RelProvider)
	}
	topo := b.Build()
	x.ContentPeerTE = true
	e := New(topo, 1)

	run := func(dst asn.ASN) Route {
		p := topo.AS(dst).Prefixes[0]
		c := e.NewComputation(p)
		c.Announce(Announcement{Origin: dst})
		c.Converge()
		r, ok := c.Best(x.ASN)
		if !ok {
			t.Fatalf("x has no route toward %v", dst)
		}
		return r
	}
	if r := run(contentAS); r.NextHop != peer {
		t.Errorf("content destination: x chose %v, want TE onto the peer", r.NextHop)
	}
	if r := run(stubAS); r.NextHop != cust {
		t.Errorf("stub destination: x chose %v, want the customer route", r.NextHop)
	}
}

func TestOrgRelPreservedAcrossSiblings(t *testing.T) {
	// s1 and s2 are siblings. s1's only route toward the origin is via
	// its PROVIDER; when s2 hears it from s1, the route must keep
	// provider-class pricing and must NOT be exported to s2's peer.
	b := topology.NewBuilder()
	s1 := b.AS(100, topology.SmallISP, "").ASN
	s2 := b.AS(200, topology.SmallISP, "").ASN
	prov := b.AS(300, topology.LargeISP, "").ASN
	peerOfS2 := b.AS(400, topology.SmallISP, "").ASN
	org := b.AS(500, topology.Stub, "").ASN
	b.Link(s1, s2, topology.RelSibling)
	b.Link(s1, prov, topology.RelProvider)
	b.Link(s2, peerOfS2, topology.RelPeer)
	b.Link(org, prov, topology.RelProvider)
	topo := b.Build()
	e := New(topo, 1)
	p := topo.AS(org).Prefixes[0]
	c := e.NewComputation(p)
	c.Announce(Announcement{Origin: org})
	c.Converge()

	r2, ok := c.Best(s2)
	if !ok {
		t.Fatal("s2 should hear the route from its sibling")
	}
	if r2.FromRel != topology.RelSibling {
		t.Fatalf("s2 FromRel = %v", r2.FromRel)
	}
	if r2.OrgRel != topology.RelProvider {
		t.Errorf("s2 OrgRel = %v, want provider (class preserved)", r2.OrgRel)
	}
	// Provider band (100) plus the organization's on-net bonus (120):
	// above s2's own provider routes, still below any peer route... no —
	// 220 sits above the peer band's 200, flipping exactly one class,
	// which is the §4.2 sibling behavior the paper's refinement explains.
	if r2.LocalPref != 220 {
		t.Errorf("s2 LocalPref = %d, want provider band + on-net bonus = 220", r2.LocalPref)
	}
	// s2 must not leak the org's provider route to its peer.
	if _, ok := c.Best(peerOfS2); ok {
		t.Error("s2 exported an organizational provider route to a peer")
	}
}
